file(REMOVE_RECURSE
  "CMakeFiles/dissect_write.dir/dissect_write.cpp.o"
  "CMakeFiles/dissect_write.dir/dissect_write.cpp.o.d"
  "dissect_write"
  "dissect_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissect_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
