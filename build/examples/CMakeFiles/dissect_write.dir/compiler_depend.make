# Empty compiler generated dependencies file for dissect_write.
# This may be replaced when dependencies are built.
