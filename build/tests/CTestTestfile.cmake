# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_event "/root/repo/build/tests/test_event")
set_tests_properties(test_event PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_os "/root/repo/build/tests/test_os")
set_tests_properties(test_os PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bluestore "/root/repo/build/tests/test_bluestore")
set_tests_properties(test_bluestore PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;30;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crush "/root/repo/build/tests/test_crush")
set_tests_properties(test_crush PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;37;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mon "/root/repo/build/tests/test_mon")
set_tests_properties(test_mon PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;41;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_doca "/root/repo/build/tests/test_doca")
set_tests_properties(test_doca PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;45;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_proxy "/root/repo/build/tests/test_proxy")
set_tests_properties(test_proxy PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;49;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_msgr "/root/repo/build/tests/test_msgr")
set_tests_properties(test_msgr PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;57;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;62;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_client "/root/repo/build/tests/test_client")
set_tests_properties(test_client PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;67;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_benchcore "/root/repo/build/tests/test_benchcore")
set_tests_properties(test_benchcore PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;71;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;75;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;80;doceph_add_test;/root/repo/tests/CMakeLists.txt;0;")
