file(REMOVE_RECURSE
  "CMakeFiles/test_proxy.dir/proxy/test_proxy.cpp.o"
  "CMakeFiles/test_proxy.dir/proxy/test_proxy.cpp.o.d"
  "CMakeFiles/test_proxy.dir/proxy/test_proxy_multiop.cpp.o"
  "CMakeFiles/test_proxy.dir/proxy/test_proxy_multiop.cpp.o.d"
  "CMakeFiles/test_proxy.dir/proxy/test_proxy_reads.cpp.o"
  "CMakeFiles/test_proxy.dir/proxy/test_proxy_reads.cpp.o.d"
  "CMakeFiles/test_proxy.dir/proxy/test_rpc_channel.cpp.o"
  "CMakeFiles/test_proxy.dir/proxy/test_rpc_channel.cpp.o.d"
  "CMakeFiles/test_proxy.dir/proxy/test_slot_fallback.cpp.o"
  "CMakeFiles/test_proxy.dir/proxy/test_slot_fallback.cpp.o.d"
  "test_proxy"
  "test_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
