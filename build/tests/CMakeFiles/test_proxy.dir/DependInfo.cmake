
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/proxy/test_proxy.cpp" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy.cpp.o" "gcc" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy.cpp.o.d"
  "/root/repo/tests/proxy/test_proxy_multiop.cpp" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy_multiop.cpp.o" "gcc" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy_multiop.cpp.o.d"
  "/root/repo/tests/proxy/test_proxy_reads.cpp" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy_reads.cpp.o" "gcc" "tests/CMakeFiles/test_proxy.dir/proxy/test_proxy_reads.cpp.o.d"
  "/root/repo/tests/proxy/test_rpc_channel.cpp" "tests/CMakeFiles/test_proxy.dir/proxy/test_rpc_channel.cpp.o" "gcc" "tests/CMakeFiles/test_proxy.dir/proxy/test_rpc_channel.cpp.o.d"
  "/root/repo/tests/proxy/test_slot_fallback.cpp" "tests/CMakeFiles/test_proxy.dir/proxy/test_slot_fallback.cpp.o" "gcc" "tests/CMakeFiles/test_proxy.dir/proxy/test_slot_fallback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/doceph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
