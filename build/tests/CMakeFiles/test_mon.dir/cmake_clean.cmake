file(REMOVE_RECURSE
  "CMakeFiles/test_mon.dir/mon/test_monitor.cpp.o"
  "CMakeFiles/test_mon.dir/mon/test_monitor.cpp.o.d"
  "test_mon"
  "test_mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
