file(REMOVE_RECURSE
  "CMakeFiles/test_doca.dir/doca/test_doca.cpp.o"
  "CMakeFiles/test_doca.dir/doca/test_doca.cpp.o.d"
  "test_doca"
  "test_doca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
