# Empty dependencies file for test_doca.
# This may be replaced when dependencies are built.
