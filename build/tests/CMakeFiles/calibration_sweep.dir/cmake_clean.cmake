file(REMOVE_RECURSE
  "CMakeFiles/calibration_sweep.dir/cluster/debug_probe.cpp.o"
  "CMakeFiles/calibration_sweep.dir/cluster/debug_probe.cpp.o.d"
  "calibration_sweep"
  "calibration_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
