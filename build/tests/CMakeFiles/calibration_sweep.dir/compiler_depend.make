# Empty compiler generated dependencies file for calibration_sweep.
# This may be replaced when dependencies are built.
