file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cpu_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cpu_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_time_keeper.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_time_keeper.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
