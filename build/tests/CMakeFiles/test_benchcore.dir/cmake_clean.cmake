file(REMOVE_RECURSE
  "CMakeFiles/test_benchcore.dir/benchcore/test_benchcore.cpp.o"
  "CMakeFiles/test_benchcore.dir/benchcore/test_benchcore.cpp.o.d"
  "test_benchcore"
  "test_benchcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
