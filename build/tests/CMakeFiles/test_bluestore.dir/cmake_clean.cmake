file(REMOVE_RECURSE
  "CMakeFiles/test_bluestore.dir/bluestore/test_allocator.cpp.o"
  "CMakeFiles/test_bluestore.dir/bluestore/test_allocator.cpp.o.d"
  "CMakeFiles/test_bluestore.dir/bluestore/test_block_device.cpp.o"
  "CMakeFiles/test_bluestore.dir/bluestore/test_block_device.cpp.o.d"
  "CMakeFiles/test_bluestore.dir/bluestore/test_bluestore.cpp.o"
  "CMakeFiles/test_bluestore.dir/bluestore/test_bluestore.cpp.o.d"
  "CMakeFiles/test_bluestore.dir/bluestore/test_kv.cpp.o"
  "CMakeFiles/test_bluestore.dir/bluestore/test_kv.cpp.o.d"
  "test_bluestore"
  "test_bluestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bluestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
