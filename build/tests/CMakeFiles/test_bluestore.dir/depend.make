# Empty dependencies file for test_bluestore.
# This may be replaced when dependencies are built.
