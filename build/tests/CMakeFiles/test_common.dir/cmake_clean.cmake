file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_buffer.cpp.o"
  "CMakeFiles/test_common.dir/common/test_buffer.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_crc32c.cpp.o"
  "CMakeFiles/test_common.dir/common/test_crc32c.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_encoding.cpp.o"
  "CMakeFiles/test_common.dir/common/test_encoding.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_interval_set.cpp.o"
  "CMakeFiles/test_common.dir/common/test_interval_set.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_status.cpp.o"
  "CMakeFiles/test_common.dir/common/test_status.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
