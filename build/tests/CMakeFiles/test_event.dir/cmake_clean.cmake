file(REMOVE_RECURSE
  "CMakeFiles/test_event.dir/event/test_event_center.cpp.o"
  "CMakeFiles/test_event.dir/event/test_event_center.cpp.o.d"
  "test_event"
  "test_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
