# Empty compiler generated dependencies file for test_msgr.
# This may be replaced when dependencies are built.
