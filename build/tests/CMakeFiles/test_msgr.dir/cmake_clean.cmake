file(REMOVE_RECURSE
  "CMakeFiles/test_msgr.dir/msgr/test_messenger.cpp.o"
  "CMakeFiles/test_msgr.dir/msgr/test_messenger.cpp.o.d"
  "CMakeFiles/test_msgr.dir/msgr/test_msgr_robustness.cpp.o"
  "CMakeFiles/test_msgr.dir/msgr/test_msgr_robustness.cpp.o.d"
  "test_msgr"
  "test_msgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
