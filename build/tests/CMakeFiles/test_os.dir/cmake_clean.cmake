file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_mem_store.cpp.o"
  "CMakeFiles/test_os.dir/os/test_mem_store.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_store_property.cpp.o"
  "CMakeFiles/test_os.dir/os/test_store_property.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_transaction.cpp.o"
  "CMakeFiles/test_os.dir/os/test_transaction.cpp.o.d"
  "test_os"
  "test_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
