# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("event")
subdirs("net")
subdirs("msgr")
subdirs("os")
subdirs("bluestore")
subdirs("crush")
subdirs("mon")
subdirs("osd")
subdirs("client")
subdirs("doca")
subdirs("dpu")
subdirs("proxy")
subdirs("cluster")
subdirs("benchcore")
