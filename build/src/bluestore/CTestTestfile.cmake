# CMake generated Testfile for 
# Source directory: /root/repo/src/bluestore
# Build directory: /root/repo/build/src/bluestore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
