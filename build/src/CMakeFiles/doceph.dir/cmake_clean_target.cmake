file(REMOVE_RECURSE
  "libdoceph.a"
)
