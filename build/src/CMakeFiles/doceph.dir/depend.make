# Empty dependencies file for doceph.
# This may be replaced when dependencies are built.
