
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchcore/experiment.cpp" "src/CMakeFiles/doceph.dir/benchcore/experiment.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/benchcore/experiment.cpp.o.d"
  "/root/repo/src/benchcore/table.cpp" "src/CMakeFiles/doceph.dir/benchcore/table.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/benchcore/table.cpp.o.d"
  "/root/repo/src/bluestore/allocator.cpp" "src/CMakeFiles/doceph.dir/bluestore/allocator.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/bluestore/allocator.cpp.o.d"
  "/root/repo/src/bluestore/block_device.cpp" "src/CMakeFiles/doceph.dir/bluestore/block_device.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/bluestore/block_device.cpp.o.d"
  "/root/repo/src/bluestore/bluestore.cpp" "src/CMakeFiles/doceph.dir/bluestore/bluestore.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/bluestore/bluestore.cpp.o.d"
  "/root/repo/src/bluestore/kv.cpp" "src/CMakeFiles/doceph.dir/bluestore/kv.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/bluestore/kv.cpp.o.d"
  "/root/repo/src/client/rados_bench.cpp" "src/CMakeFiles/doceph.dir/client/rados_bench.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/client/rados_bench.cpp.o.d"
  "/root/repo/src/client/rados_client.cpp" "src/CMakeFiles/doceph.dir/client/rados_client.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/client/rados_client.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/doceph.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/common/buffer.cpp" "src/CMakeFiles/doceph.dir/common/buffer.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/buffer.cpp.o.d"
  "/root/repo/src/common/crc32c.cpp" "src/CMakeFiles/doceph.dir/common/crc32c.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/crc32c.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/doceph.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/logger.cpp" "src/CMakeFiles/doceph.dir/common/logger.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/logger.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/doceph.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/status.cpp.o.d"
  "/root/repo/src/common/thread_name.cpp" "src/CMakeFiles/doceph.dir/common/thread_name.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/common/thread_name.cpp.o.d"
  "/root/repo/src/crush/crush_map.cpp" "src/CMakeFiles/doceph.dir/crush/crush_map.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/crush/crush_map.cpp.o.d"
  "/root/repo/src/crush/hash.cpp" "src/CMakeFiles/doceph.dir/crush/hash.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/crush/hash.cpp.o.d"
  "/root/repo/src/crush/osd_map.cpp" "src/CMakeFiles/doceph.dir/crush/osd_map.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/crush/osd_map.cpp.o.d"
  "/root/repo/src/doca/comm_channel.cpp" "src/CMakeFiles/doceph.dir/doca/comm_channel.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/doca/comm_channel.cpp.o.d"
  "/root/repo/src/doca/dma_engine.cpp" "src/CMakeFiles/doceph.dir/doca/dma_engine.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/doca/dma_engine.cpp.o.d"
  "/root/repo/src/dpu/dpu_device.cpp" "src/CMakeFiles/doceph.dir/dpu/dpu_device.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/dpu/dpu_device.cpp.o.d"
  "/root/repo/src/event/event_center.cpp" "src/CMakeFiles/doceph.dir/event/event_center.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/event/event_center.cpp.o.d"
  "/root/repo/src/mon/mon_client.cpp" "src/CMakeFiles/doceph.dir/mon/mon_client.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/mon/mon_client.cpp.o.d"
  "/root/repo/src/mon/monitor.cpp" "src/CMakeFiles/doceph.dir/mon/monitor.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/mon/monitor.cpp.o.d"
  "/root/repo/src/msgr/messages.cpp" "src/CMakeFiles/doceph.dir/msgr/messages.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/msgr/messages.cpp.o.d"
  "/root/repo/src/msgr/messenger.cpp" "src/CMakeFiles/doceph.dir/msgr/messenger.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/msgr/messenger.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/doceph.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/net/fabric.cpp.o.d"
  "/root/repo/src/os/mem_store.cpp" "src/CMakeFiles/doceph.dir/os/mem_store.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/os/mem_store.cpp.o.d"
  "/root/repo/src/os/transaction.cpp" "src/CMakeFiles/doceph.dir/os/transaction.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/os/transaction.cpp.o.d"
  "/root/repo/src/osd/osd.cpp" "src/CMakeFiles/doceph.dir/osd/osd.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/osd/osd.cpp.o.d"
  "/root/repo/src/proxy/host_backend.cpp" "src/CMakeFiles/doceph.dir/proxy/host_backend.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/proxy/host_backend.cpp.o.d"
  "/root/repo/src/proxy/proxy_object_store.cpp" "src/CMakeFiles/doceph.dir/proxy/proxy_object_store.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/proxy/proxy_object_store.cpp.o.d"
  "/root/repo/src/proxy/rpc_channel.cpp" "src/CMakeFiles/doceph.dir/proxy/rpc_channel.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/proxy/rpc_channel.cpp.o.d"
  "/root/repo/src/proxy/slot_pool.cpp" "src/CMakeFiles/doceph.dir/proxy/slot_pool.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/proxy/slot_pool.cpp.o.d"
  "/root/repo/src/sim/cpu_model.cpp" "src/CMakeFiles/doceph.dir/sim/cpu_model.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/cpu_model.cpp.o.d"
  "/root/repo/src/sim/exec_context.cpp" "src/CMakeFiles/doceph.dir/sim/exec_context.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/exec_context.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/doceph.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/doceph.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/thread.cpp" "src/CMakeFiles/doceph.dir/sim/thread.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/thread.cpp.o.d"
  "/root/repo/src/sim/time_keeper.cpp" "src/CMakeFiles/doceph.dir/sim/time_keeper.cpp.o" "gcc" "src/CMakeFiles/doceph.dir/sim/time_keeper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
