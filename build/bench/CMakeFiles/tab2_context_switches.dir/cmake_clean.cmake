file(REMOVE_RECURSE
  "CMakeFiles/tab2_context_switches.dir/tab2_context_switches.cpp.o"
  "CMakeFiles/tab2_context_switches.dir/tab2_context_switches.cpp.o.d"
  "tab2_context_switches"
  "tab2_context_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_context_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
