# Empty dependencies file for tab2_context_switches.
# This may be replaced when dependencies are built.
