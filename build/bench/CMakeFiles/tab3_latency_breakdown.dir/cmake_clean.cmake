file(REMOVE_RECURSE
  "CMakeFiles/tab3_latency_breakdown.dir/tab3_latency_breakdown.cpp.o"
  "CMakeFiles/tab3_latency_breakdown.dir/tab3_latency_breakdown.cpp.o.d"
  "tab3_latency_breakdown"
  "tab3_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
