file(REMOVE_RECURSE
  "CMakeFiles/ext_read_path.dir/ext_read_path.cpp.o"
  "CMakeFiles/ext_read_path.dir/ext_read_path.cpp.o.d"
  "ext_read_path"
  "ext_read_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_read_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
