file(REMOVE_RECURSE
  "CMakeFiles/ablation_mr_cache.dir/ablation_mr_cache.cpp.o"
  "CMakeFiles/ablation_mr_cache.dir/ablation_mr_cache.cpp.o.d"
  "ablation_mr_cache"
  "ablation_mr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
