# Empty dependencies file for ablation_mr_cache.
# This may be replaced when dependencies are built.
