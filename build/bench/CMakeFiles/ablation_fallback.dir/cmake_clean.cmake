file(REMOVE_RECURSE
  "CMakeFiles/ablation_fallback.dir/ablation_fallback.cpp.o"
  "CMakeFiles/ablation_fallback.dir/ablation_fallback.cpp.o.d"
  "ablation_fallback"
  "ablation_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
