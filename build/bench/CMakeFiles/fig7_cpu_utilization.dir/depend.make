# Empty dependencies file for fig7_cpu_utilization.
# This may be replaced when dependencies are built.
