file(REMOVE_RECURSE
  "CMakeFiles/fig7_cpu_utilization.dir/fig7_cpu_utilization.cpp.o"
  "CMakeFiles/fig7_cpu_utilization.dir/fig7_cpu_utilization.cpp.o.d"
  "fig7_cpu_utilization"
  "fig7_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
