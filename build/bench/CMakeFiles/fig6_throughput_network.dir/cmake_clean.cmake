file(REMOVE_RECURSE
  "CMakeFiles/fig6_throughput_network.dir/fig6_throughput_network.cpp.o"
  "CMakeFiles/fig6_throughput_network.dir/fig6_throughput_network.cpp.o.d"
  "fig6_throughput_network"
  "fig6_throughput_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_throughput_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
