# Empty compiler generated dependencies file for fig6_throughput_network.
# This may be replaced when dependencies are built.
