# Empty dependencies file for fig9_normalized_breakdown.
# This may be replaced when dependencies are built.
