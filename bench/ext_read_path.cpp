// Extension (paper §5.5, "future work"): the symmetric READ path. Client
// reads flow DPU -> host request via RPC, host-side BlueStore read, bulk
// data staged host-side and DMA'd back to the DPU. The paper predicts
// convergence at large sizes with even better relative performance than
// writes (no replication coordination); this bench checks that prediction.
#include "benchcore/table.h"
#include "client/rados_bench.h"
#include "cluster/cluster.h"
#include "cluster/profiles.h"

using namespace doceph;
using namespace doceph::benchcore;

namespace {

struct ReadResult {
  double iops = 0;
  double avg_lat_s = 0;
};

ReadResult run_read_bench(cluster::DeployMode mode, std::uint64_t object_size) {
  sim::Env env;
  auto cfg = cluster::ClusterConfig::paper_testbed(mode, cluster::NetworkKind::gbe_100,
                                                   /*retain_data=*/true);
  // Reads need slots; give the read path a sane staging depth (the write
  // defaults model the paper's single region).
  cfg.proxy.slots = 8;
  cluster::Cluster cl(env, cfg);
  ReadResult out;

  env.run_on_sim_thread([&] {
    if (!cl.start().ok()) return;
    auto io = cl.client().io_ctx(1);

    // Populate a working set.
    constexpr int kObjects = 48;
    BufferList payload;
    payload.append_zero(object_size);
    for (int i = 0; i < kObjects; ++i)
      (void)io.write_full("robj" + std::to_string(i), payload);

    // Closed-loop read phase: 16 readers, 3 simulated seconds.
    constexpr int kReaders = 16;
    const sim::Time end = env.now() + 3'000'000'000;
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::int64_t> lat_sum{0};
    std::mutex m;
    sim::CondVar done_cv(env.keeper());
    int remaining = kReaders;
    {
      std::vector<sim::Thread> readers;
      auto hold = sim::TimeKeeper::AdvanceHold(env.keeper());
      for (int t = 0; t < kReaders; ++t) {
        readers.push_back(env.spawn(
            "bench-reader-" + std::to_string(t), &cl.client_cpu(), [&, t] {
              unsigned seq = static_cast<unsigned>(t);
              while (env.now() < end) {
                const sim::Time t0 = env.now();
                auto r = io.read("robj" + std::to_string(seq++ % kObjects), 0, 0);
                if (r.ok()) {
                  ops.fetch_add(1);
                  lat_sum.fetch_add(env.now() - t0);
                }
              }
              const std::lock_guard<std::mutex> lk(m);
              if (--remaining == 0) done_cv.notify_all();
            }));
      }
      hold.release();
      std::unique_lock<std::mutex> lk(m);
      done_cv.wait(lk, [&] { return remaining == 0; });
      readers.clear();
    }
    out.iops = static_cast<double>(ops.load()) / 3.0;
    out.avg_lat_s =
        ops.load() > 0
            ? static_cast<double>(lat_sum.load()) / static_cast<double>(ops.load()) * 1e-9
            : 0;
    cl.stop();
  });
  return out;
}

}  // namespace

int main() {
  print_banner("Extension (paper §5.5)", "Read path: Baseline vs DoCeph");

  Table t({"size", "Baseline IOPS", "DoCeph IOPS", "Baseline lat (s)",
           "DoCeph lat (s)", "DoCeph/Baseline"});
  for (const std::uint64_t size : {1u << 20, 4u << 20, 16u << 20}) {
    const auto rb = run_read_bench(cluster::DeployMode::baseline, size);
    const auto rd = run_read_bench(cluster::DeployMode::doceph, size);
    t.row({std::to_string(size >> 20) + "MB", Table::num(rb.iops, 1),
           Table::num(rd.iops, 1), Table::num(rb.avg_lat_s, 4),
           Table::num(rd.avg_lat_s, 4),
           Table::pct(rb.iops > 0 ? rd.iops / rb.iops : 0, 0)});
  }
  t.print();
  std::printf(
      "\nPaper's prediction (§5.5): reads should converge at large sizes like\n"
      "writes do, with no replication coordination in the way.\n");
  return 0;
}
