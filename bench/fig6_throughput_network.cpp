// Reproduces paper Fig. 6: throughput under 1 Gbps vs 100 Gbps network
// configurations (Baseline, 4 MB writes). At 1 Gbps the link caps
// throughput; at 100 Gbps the SSDs become the bottleneck while the
// messenger's CPU share stays ~constant (Fig. 5).
#include "benchcore/experiment.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 6", "Throughput under 1Gbps vs 100Gbps (Baseline, 4MB)");

  Table t({"network", "throughput MB/s", "IOPS", "link limit MB/s", "bottleneck"});
  for (const auto net : {cluster::NetworkKind::gbe_1, cluster::NetworkKind::gbe_100}) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::baseline;
    spec.net = net;
    spec.object_size = 4 << 20;
    apply_trace_flags(spec, argc, argv);
    const auto r = run_cached(spec);
    const bool g100 = net == cluster::NetworkKind::gbe_100;
    t.row({g100 ? "100Gbps" : "1Gbps", Table::num(r.mbps, 1), Table::num(r.iops, 1),
           g100 ? "12500" : "125", g100 ? "SSD (2x ~530 MB/s)" : "client NIC"});
  }
  t.print();
  return 0;
}
