// Ablation of the DMA segment size under the 2 MB hardware cap (paper §3.3 /
// [Kashyap et al.]): smaller segments mean more jobs and more per-job setup;
// the cap itself is why segmentation exists at all.
#include "benchcore/experiment.h"
#include "benchcore/table.h"
#include "cluster/profiles.h"
#include "doca/dma_engine.h"

using namespace doceph;
using namespace doceph::benchcore;

int main() {
  print_banner("Ablation", "DMA segment size (16MB writes; hardware cap = 2MB)");

  Table t({"segment", "IOPS", "avg lat (s)", "DMA (s)", "DMA-wait (s)"});
  for (const std::uint64_t seg : {512u << 10, 1u << 20, 2u << 20}) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::doceph;
    spec.object_size = 16 << 20;
    auto p = cluster::default_proxy();
    p.segment_size = seg;
    spec.proxy_override = p;
    const auto r = run_cached(spec);
    t.row({std::to_string(seg >> 10) + "KB", Table::num(r.iops, 1),
           Table::num(r.avg_lat_s, 3), Table::num(r.bd_dma_s, 4),
           Table::num(r.bd_dma_wait_s, 4)});
  }
  t.print();

  // The cap itself: a single job above 2 MB is rejected by the engine.
  sim::Env env;
  doca::PcieLink link;
  doca::DmaEngine dma(env, link, doca::DmaConfig{});
  auto m = std::make_shared<doca::Mmap>(4 << 20);
  const auto st = dma.submit({m, 0, 3 << 20}, {m, 0, 3 << 20},
                             doca::DmaDir::dpu_to_host, [](Status) {});
  std::printf("\n3MB single DMA job -> %s (the constraint that forces "
              "segmentation)\n", st.to_string().c_str());
  return 0;
}
