// Reproduces paper Fig. 5: CPU usage breakdown of each Ceph component under
// 1 Gbps and 100 Gbps network configurations (Baseline, 4 MB writes), plus
// total Ceph CPU normalized to a single core (the figure's right axis).
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 5", "CPU breakdown: Messenger / ObjectStore / OSD");

  Table t({"network", "Messenger", "ObjectStore", "OSD threads", "total Ceph CPU",
           "paper: msgr share", "paper: total"});
  for (const auto net : {cluster::NetworkKind::gbe_1, cluster::NetworkKind::gbe_100}) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::baseline;
    spec.net = net;
    spec.object_size = 4 << 20;
    apply_trace_flags(spec, argc, argv);
    const auto r = run_cached(spec);
    const bool g100 = net == cluster::NetworkKind::gbe_100;
    t.row({g100 ? "100Gbps" : "1Gbps", Table::pct(r.share_messenger),
           Table::pct(r.share_objectstore), Table::pct(r.share_osd),
           Table::pct(r.total_ceph_cores),
           Table::pct(g100 ? paper::kFig5MessengerShare100G
                           : paper::kFig5MessengerShare1G),
           Table::pct(g100 ? paper::kFig5TotalCpu100G : paper::kFig5TotalCpu1G)});
  }
  t.print();
  std::printf(
      "\nKey claim: the Messenger dominates Ceph CPU (~80%%) at BOTH link\n"
      "speeds — the bottleneck is CPU-bound network processing, not the link.\n");
  return 0;
}
