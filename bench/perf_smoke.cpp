// CI perf smoke: one short rados-bench lap per deploy mode, emitted as
// JSON (ops/s, p50/p99, per-stage latencies) and optionally compared
// against a committed baseline. Exits non-zero when DoCeph throughput
// regresses, p99 latency inflates, or host-CPU cores climb past their
// thresholds, so the perf-smoke CI job fails the PR.
//
// With --repeats N > 1 the DoCeph lap is re-run under N distinct universe
// seeds and the per-repeat p99 latency and host-CPU cores are recorded in
// a "doceph_variance" block. Measured characterization: the virtual-clock
// sim is fully deterministic and this workload consumes no seed-dependent
// randomness, so seed-to-seed rel_spread is exactly 0 — any gate trip is
// a real code-induced regression, never noise. The default margins are
// therefore pure headroom for intentional perf-relevant changes (a
// baseline refresh is the answer when one lands, not a wider gate).
//
//   perf_smoke --out BENCH_pr.json [--baseline BENCH_baseline.json]
//              [--threshold 0.20] [--p99-threshold 0.30]
//              [--cores-threshold 0.25] [--shard-gate 1.8]
//              [--measure-ms 1500] [--repeats N]
//              [--trace-out TRACE.json] [--trace-sample N]
//              [--disable-batching]
//
// Two laps per deploy mode: the 1 MB DMA-path lap ("baseline"/"doceph")
// and a 16 KB qd64 fresh-object small-write lap ("baseline_smallwrite"/
// "doceph_smallwrite") that exercises the batched offload hot path (comch
// doorbell coalescing + scatter-gather DMA + write corking) plus the
// chained-KV-checkpoint + backpressure degradation path (every write is a
// new object; the map snapshot outgrows one WAL segment mid-run).
// --measure-ms scales only the 1 MB laps; the small lap has dedicated
// durations sized against the store's nearfull ratio. The small-write lap
// is then re-run with op_shards = kv_shards = 4 ("*_smallwrite_sharded")
// and gated intra-run: DoCeph sharded ops/s must be >= --shard-gate times
// the unsharded lap (0 disables), with zero failed ops.
// --disable-batching strips all batching knobs — that is how the committed
// BENCH_baseline.json is produced, so the delta against it shows the
// batching win.
//
// A threshold of 0 disables that gate (iops/p99/cores each independently).
// --trace-out makes the DoCeph lap sample 1-in-N client ops (default 64)
// through the distributed tracer and writes the merged Chrome trace_event
// JSON there (open with chrome://tracing or Perfetto).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchcore/experiment.h"
#include "common/json.h"

namespace {

using doceph::benchcore::RunResult;
using doceph::benchcore::RunSpec;

void emit_result(doceph::JsonWriter& w, const char* name, const RunResult& r) {
  w.key(name);
  w.begin_object();
  w.kv("ops_per_sec", r.iops);
  w.kv("mbps", r.mbps);
  w.kv("avg_lat_s", r.avg_lat_s);
  w.kv("p50_lat_s", r.p50_lat_s);
  w.kv("p99_lat_s", r.p99_lat_s);
  w.kv("host_cores", r.host_cores);
  w.kv("dpu_cores", r.dpu_cores);
  w.kv("failed_ops", static_cast<std::int64_t>(r.failed_ops));
  w.kv("osd_throttled", static_cast<std::int64_t>(r.osd_throttled));
  w.kv("client_throttled", static_cast<std::int64_t>(r.client_throttled));
  w.kv("proxy_throttled", static_cast<std::int64_t>(r.proxy_throttled));
  w.key("stages_s");
  w.begin_object();
  w.kv("messenger", r.stage_msgr_s);
  w.kv("queue", r.stage_queue_s);
  w.kv("store", r.stage_store_s);
  w.kv("replication", r.stage_repl_s);
  w.kv("reply", r.stage_reply_s);
  w.kv("total", r.stage_total_s);
  w.end_object();
  w.end_object();
}

/// Record (not gate) the run-to-run spread of a metric across repeats.
void emit_spread(doceph::JsonWriter& w, const char* name,
                 const std::vector<double>& samples) {
  double sum = 0;
  for (const double s : samples) sum += s;
  const double mean = sum / static_cast<double>(samples.size());
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  w.key(name);
  w.begin_object();
  w.key("samples");
  w.begin_array();
  for (const double s : samples) w.value(s);
  w.end_array();
  w.kv("mean", mean);
  w.kv("min", *lo);
  w.kv("max", *hi);
  w.kv("rel_spread", mean > 0 ? (*hi - *lo) / mean : 0.0);
  w.end_object();
}

/// Pull `"key": <number>` out of a flat JSON dump. Good enough for the
/// files this tool writes itself; no general JSON parser needed.
bool extract_number(const std::string& json, const std::string& object,
                    const std::string& key, double& out) {
  const auto obj_pos = json.find("\"" + object + "\"");
  if (obj_pos == std::string::npos) return false;
  const auto key_pos = json.find("\"" + key + "\"", obj_pos);
  if (key_pos == std::string::npos) return false;
  const auto colon = json.find(':', key_pos);
  if (colon == std::string::npos) return false;
  out = std::strtod(json.c_str() + colon + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr.json";
  std::string baseline_path;
  double threshold = 0.20;
  double p99_threshold = 0.30;
  double cores_threshold = 0.25;
  double shard_gate = 1.8;
  long measure_ms = 1500;
  long repeats = 1;
  std::string trace_out;
  long trace_sample = 64;
  bool batching = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--out") out_path = next();
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--threshold") threshold = std::strtod(next(), nullptr);
    else if (arg == "--p99-threshold") p99_threshold = std::strtod(next(), nullptr);
    else if (arg == "--cores-threshold") cores_threshold = std::strtod(next(), nullptr);
    else if (arg == "--shard-gate") shard_gate = std::strtod(next(), nullptr);
    else if (arg == "--measure-ms") measure_ms = std::strtol(next(), nullptr, 10);
    else if (arg == "--repeats") repeats = std::max(1l, std::strtol(next(), nullptr, 10));
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--trace-sample")
      trace_sample = std::max(1l, std::strtol(next(), nullptr, 10));
    else if (arg == "--disable-batching") batching = false;
    else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return 2;
    }
  }

  RunSpec spec;
  spec.object_size = 1 << 20;  // 1 MB: exercises the DMA path, stays quick
  spec.concurrency = 8;
  spec.warmup = 500'000'000;
  spec.measure = measure_ms * 1'000'000;
  spec.pg_num = 32;
  spec.batching = batching;

  doceph::JsonWriter w;
  w.begin_object();
  RunResult doceph_result;
  RunResult doceph_small;
  RunResult doceph_small_sharded;
  for (const auto mode :
       {doceph::cluster::DeployMode::baseline, doceph::cluster::DeployMode::doceph}) {
    spec.mode = mode;
    const bool is_doceph = mode == doceph::cluster::DeployMode::doceph;
    // Trace only the DoCeph lap: that is the path (client -> msgr -> DPU
    // comch/DMA -> host BlueStore) the artifact is meant to show.
    spec.trace_out = is_doceph ? trace_out : "";
    spec.trace_sample_every =
        is_doceph && !trace_out.empty() ? static_cast<std::uint32_t>(trace_sample) : 0;
    const RunResult r = doceph::benchcore::run_experiment(spec);
    if (is_doceph) doceph_result = r;
    emit_result(w, is_doceph ? "doceph" : "baseline", r);
    std::fprintf(stderr, "[perf-smoke] %s: %.0f ops/s, p50 %.2f ms, p99 %.2f ms\n",
                 is_doceph ? "doceph" : "baseline", r.iops, r.p50_lat_s * 1e3,
                 r.p99_lat_s * 1e3);
  }

  // Small-write lap (16 KB, qd64, fresh object names): many sub-slot
  // segments per interval — the workload the batched offload hot path is
  // built for. Every write creates a new object, so the 16 KB inline
  // payloads accumulate in the KV map: the baseline lap's snapshot grows
  // past one 32 MiB WAL segment mid-run, exercising the chained
  // checkpoint path (pre-chaining this lap died with no_space).
  // Backpressure is on so the run degrades gracefully instead of
  // collapsing if a queue or the store ever saturates; durations are
  // sized to stay under the 0.85 nearfull ratio (~3300 objects), above
  // which writes shed permanently.
  {
    RunSpec small = spec;
    small.object_size = 16 << 10;
    small.concurrency = 64;
    small.reuse_objects = 0;
    small.backpressure = true;
    small.warmup = 200'000'000;    // 200 ms
    small.measure = 400'000'000;   // 400 ms: ~2700 fresh objects ≈ 43 MiB of
                                   // inline payloads — past one segment,
                                   // safely under 0.85 * 64 MiB nearfull
    small.trace_out.clear();
    small.trace_sample_every = 0;
    for (const auto mode : {doceph::cluster::DeployMode::baseline,
                            doceph::cluster::DeployMode::doceph}) {
      small.mode = mode;
      const bool is_doceph = mode == doceph::cluster::DeployMode::doceph;
      const RunResult r = doceph::benchcore::run_experiment(small);
      if (is_doceph) doceph_small = r;
      emit_result(w, is_doceph ? "doceph_smallwrite" : "baseline_smallwrite", r);
      std::fprintf(stderr,
                   "[perf-smoke] %s_smallwrite: %.0f ops/s, p50 %.2f ms, "
                   "p99 %.2f ms\n",
                   is_doceph ? "doceph" : "baseline", r.iops, r.p50_lat_s * 1e3,
                   r.p99_lat_s * 1e3);
    }

    // Sharded re-run of the same lap (op_shards = kv_shards = 4, DESIGN.md
    // §15): four OSD op lanes, one proxy staging slot per lane, and four
    // independent KV group-commit streams (each with its own full-size WAL
    // ring). Gated intra-run against the unsharded lap below, so a change
    // that quietly re-serializes the write path fails this binary even with
    // no committed baseline on hand. The measure window shrinks so the
    // baseline lap's ~4x higher op rate (~125 MiB of fresh inline payloads
    // over the run) still averages well under each shard's 0.85 * 64 MiB
    // nearfull ceiling with margin for hash imbalance.
    small.shards = 4;
    small.measure = 250'000'000;  // 250 ms
    for (const auto mode : {doceph::cluster::DeployMode::baseline,
                            doceph::cluster::DeployMode::doceph}) {
      small.mode = mode;
      const bool is_doceph = mode == doceph::cluster::DeployMode::doceph;
      const RunResult r = doceph::benchcore::run_experiment(small);
      if (is_doceph) doceph_small_sharded = r;
      emit_result(w,
                  is_doceph ? "doceph_smallwrite_sharded"
                            : "baseline_smallwrite_sharded",
                  r);
      std::fprintf(stderr,
                   "[perf-smoke] %s_smallwrite_sharded: %.0f ops/s, p50 %.2f "
                   "ms, p99 %.2f ms\n",
                   is_doceph ? "doceph" : "baseline", r.iops, r.p50_lat_s * 1e3,
                   r.p99_lat_s * 1e3);
    }
  }

  if (repeats > 1) {
    // Re-run the DoCeph lap under distinct seeds to characterize run-to-run
    // variance of the metrics the gate does NOT yet cover (p99, host CPU).
    std::vector<double> p99s{doceph_result.p99_lat_s};
    std::vector<double> cores{doceph_result.host_cores};
    spec.mode = doceph::cluster::DeployMode::doceph;
    spec.trace_out.clear();  // one trace artifact; repeats run untraced
    spec.trace_sample_every = 0;
    for (long rep = 1; rep < repeats; ++rep) {
      spec.seed = 42 + static_cast<std::uint64_t>(rep);
      const RunResult r = doceph::benchcore::run_experiment(spec);
      p99s.push_back(r.p99_lat_s);
      cores.push_back(r.host_cores);
      std::fprintf(stderr,
                   "[perf-smoke] doceph repeat %ld (seed %llu): p99 %.2f ms, "
                   "host %.3f cores\n",
                   rep, static_cast<unsigned long long>(spec.seed),
                   r.p99_lat_s * 1e3, r.host_cores);
    }
    w.key("doceph_variance");
    w.begin_object();
    w.kv("repeats", static_cast<std::int64_t>(repeats));
    emit_spread(w, "p99_lat_s", p99s);
    emit_spread(w, "host_cores", cores);
    w.end_object();
  }
  w.end_object();

  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
  }
  std::fprintf(stderr, "[perf-smoke] wrote %s\n", out_path.c_str());

  bool failed = false;

  // Intra-run sharding gate: needs no committed baseline, so it guards the
  // sharded write path even on a fresh checkout. op_shards=kv_shards=4 must
  // keep a real speedup over the unsharded small-write lap (acceptance:
  // >= 1.8x over the full 400 ms lap; the shorter sharded window is gated
  // at the same bar) and must finish with zero failed ops — backpressure
  // may defer writes, never drop them.
  if (shard_gate > 0 && doceph_small.iops > 0) {
    const double speedup = doceph_small_sharded.iops / doceph_small.iops;
    std::fprintf(stderr,
                 "[perf-smoke] doceph_smallwrite sharded/unsharded: %.0f / "
                 "%.0f ops/s = %.2fx (gate: >= %.2fx)\n",
                 doceph_small_sharded.iops, doceph_small.iops, speedup,
                 shard_gate);
    if (speedup < shard_gate) {
      std::fprintf(stderr,
                   "[perf-smoke] FAIL: sharded small-write speedup below gate\n");
      failed = true;
    }
    if (doceph_small_sharded.failed_ops > 0) {
      std::fprintf(stderr,
                   "[perf-smoke] FAIL: sharded small-write lap had %llu "
                   "failed ops\n",
                   static_cast<unsigned long long>(doceph_small_sharded.failed_ops));
      failed = true;
    }
  }

  if (baseline_path.empty()) return failed ? 1 : 0;
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "baseline %s missing; skipping regression gate\n",
                 baseline_path.c_str());
    return failed ? 1 : 0;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string baseline_json = ss.str();

  // Gate 1: DoCeph throughput may not DROP past `threshold` — on the 1 MB
  // lap and on the 16 KB small-write lap (the batching hot path).
  const struct {
    const char* object;
    double current;
  } iops_gates[] = {
      {"doceph", doceph_result.iops},
      {"doceph_smallwrite", doceph_small.iops},
  };
  for (const auto& g : iops_gates) {
    double base_iops = 0;
    if (threshold > 0 &&
        extract_number(baseline_json, g.object, "ops_per_sec", base_iops) &&
        base_iops > 0) {
      const double drop = (base_iops - g.current) / base_iops;
      std::fprintf(stderr,
                   "[perf-smoke] %s ops/s: baseline %.0f, this run %.0f "
                   "(%+.1f%%; gate: -%.0f%%)\n",
                   g.object, base_iops, g.current, -drop * 100, threshold * 100);
      if (drop > threshold) {
        std::fprintf(stderr, "[perf-smoke] FAIL: %s throughput regression beyond gate\n",
                     g.object);
        failed = true;
      }
    } else if (threshold > 0) {
      std::fprintf(stderr, "baseline %s has no %s ops_per_sec; skipping iops gate\n",
                   baseline_path.c_str(), g.object);
    }
  }

  // Gates 2+3: p99 latency and host-CPU cores may not GROW past their
  // thresholds. Host cores is the paper's headline metric — DoCeph exists
  // to shrink it — so a silent climb is as much a regression as lost iops.
  const struct {
    const char* key;
    const char* label;
    double current;
    double limit;
  } growth_gates[] = {
      {"p99_lat_s", "p99 latency", doceph_result.p99_lat_s, p99_threshold},
      {"host_cores", "host-CPU cores", doceph_result.host_cores, cores_threshold},
  };
  for (const auto& g : growth_gates) {
    if (g.limit <= 0) continue;
    double base = 0;
    if (!extract_number(baseline_json, "doceph", g.key, base) || base <= 0) {
      std::fprintf(stderr, "baseline %s has no doceph %s; skipping %s gate\n",
                   baseline_path.c_str(), g.key, g.label);
      continue;
    }
    const double growth = (g.current - base) / base;
    std::fprintf(stderr,
                 "[perf-smoke] doceph %s: baseline %.4g, this run %.4g "
                 "(%+.1f%%; gate: +%.0f%%)\n",
                 g.label, base, g.current, growth * 100, g.limit * 100);
    if (growth > g.limit) {
      std::fprintf(stderr, "[perf-smoke] FAIL: %s regression beyond gate\n", g.label);
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
