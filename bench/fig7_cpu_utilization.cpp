// Reproduces paper Fig. 7: host CPU usage, Baseline vs DoCeph, across write
// request sizes 1-16 MB. Utilization follows the paper's single-core
// normalization (0.94 cores busy per storage node = "94.2%").
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 7", "Host CPU utilization: Baseline vs DoCeph");

  Table t({"size", "Baseline host", "DoCeph host", "savings", "DPU (DoCeph)",
           "paper: base", "paper: doceph"});
  for (int i = 0; i < paper::kNumSizes; ++i) {
    RunSpec base, dpu;
    base.mode = cluster::DeployMode::baseline;
    dpu.mode = cluster::DeployMode::doceph;
    base.object_size = dpu.object_size = paper::kSizes[i];
    apply_trace_flags(base, argc, argv);
    apply_trace_flags(dpu, argc, argv);
    const auto rb = run_cached(base);
    const auto rd = run_cached(dpu);
    const double savings = rb.host_cores > 0 ? 1.0 - rd.host_cores / rb.host_cores : 0;
    t.row({paper::kSizeNames[i], Table::pct(rb.host_cores), Table::pct(rd.host_cores),
           Table::pct(savings), Table::num(rd.dpu_cores, 2) + " cores",
           Table::num(paper::kFig7Baseline[i], 1) + "%",
           Table::num(paper::kFig7DoCeph[i], 2) + "%"});
  }
  t.print();
  std::printf(
      "\nKey claim: DoCeph cuts host CPU by ~90%%+ at every request size; the\n"
      "host retains only BlueStore + the backend service, flat and low.\n");
  return 0;
}
