// Google-benchmark microbenchmarks of the hot real-computation primitives:
// crc32c (every message pays it), bufferlist rope operations, and the
// denc-style encoding. These run in real time (no simulation involved).
#include <benchmark/benchmark.h>

#include "common/buffer.h"
#include "common/crc32c.h"
#include "common/encoding.h"
#include "common/histogram.h"
#include "crush/crush_map.h"
#include "os/transaction.h"

namespace {

using namespace doceph;

void BM_Crc32c(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<char> buf(n, 'x');
  std::uint32_t crc = 0;
  for (auto _ : state) {
    crc = crc32c(crc, buf.data(), n);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_BufferListAppend(benchmark::State& state) {
  const Slice chunk = Slice::copy_of(std::string(4096, 'a'));
  for (auto _ : state) {
    BufferList bl;
    for (int i = 0; i < 64; ++i) bl.append(chunk);
    benchmark::DoNotOptimize(bl.length());
  }
}
BENCHMARK(BM_BufferListAppend);

void BM_BufferListSubstr(benchmark::State& state) {
  BufferList bl;
  for (int i = 0; i < 256; ++i) bl.append(Slice::copy_of(std::string(4096, 'b')));
  for (auto _ : state) {
    BufferList sub = bl.substr(123456, 500000);
    benchmark::DoNotOptimize(sub.length());
  }
}
BENCHMARK(BM_BufferListSubstr);

void BM_BufferListCrc(benchmark::State& state) {
  BufferList bl;
  for (int i = 0; i < 256; ++i) bl.append(Slice::copy_of(std::string(4096, 'c')));
  for (auto _ : state) benchmark::DoNotOptimize(bl.crc32c());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256 * 4096);
}
BENCHMARK(BM_BufferListCrc);

void BM_TransactionEncodeDecode(benchmark::State& state) {
  os::Transaction txn;
  txn.create_collection({1, 0});
  txn.write_full({1, 0}, {1, "object-name"}, BufferList::copy_of(std::string(4096, 'd')));
  txn.omap_set({1, 0}, {1, "object-name"}, {{"key", BufferList::copy_of("value")}});
  for (auto _ : state) {
    BufferList bl;
    txn.encode(bl);
    os::Transaction out;
    BufferList::Cursor cur(bl);
    benchmark::DoNotOptimize(out.decode(cur));
  }
}
BENCHMARK(BM_TransactionEncodeDecode);

void BM_CrushSelect(benchmark::State& state) {
  const crush::CrushMap map = crush::CrushMap::build_flat(16);
  std::uint32_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.select(x++, 3));
  }
}
BENCHMARK(BM_CrushSelect);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 1664525u + 1013904223u;
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

BENCHMARK_MAIN();
