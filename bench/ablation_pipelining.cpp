// Ablation of the paper's §3.3 pipelining design: staging-buffer depth
// (DMA-capable slot count) and strict-serial segment handling, at 16 MB
// where segmentation pressure is highest. Shows what the single
// pre-established region costs and what deeper pipelines would buy.
#include "benchcore/experiment.h"
#include "benchcore/table.h"
#include "cluster/profiles.h"

using namespace doceph;
using namespace doceph::benchcore;

int main() {
  print_banner("Ablation", "DMA pipelining: slot depth x serial/pipelined (16MB)");

  Table t({"slots", "pipelined", "IOPS", "avg lat (s)", "DMA-wait (s)",
           "host CPU"});
  for (const int slots : {1, 2, 4, 8}) {
    for (const bool pipelined : {true, false}) {
      RunSpec spec;
      spec.mode = cluster::DeployMode::doceph;
      spec.object_size = 16 << 20;
      auto p = cluster::default_proxy();
      p.slots = slots;
      p.pipelining = pipelined;
      spec.proxy_override = p;
      const auto r = run_cached(spec);
      t.row({std::to_string(slots), pipelined ? "yes" : "no", Table::num(r.iops, 1),
             Table::num(r.avg_lat_s, 3), Table::num(r.bd_dma_wait_s, 4),
             Table::pct(r.host_cores)});
    }
  }
  t.print();
  std::printf(
      "\nReading: DMA-wait collapses as staging depth grows — the paper's\n"
      "pipelining-on-one-region leaves most of that headroom on the table.\n");
  return 0;
}
