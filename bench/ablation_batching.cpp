// Ablation of the batched offload hot path: sweep the scatter-gather DMA
// coalescing depth (segments per flush) and the doorbell flush deadline, at
// a 16 KB small-write workload where per-op fixed costs (comch doorbells,
// DMA job setup, per-send syscalls) dominate. The no-batching row is the
// pre-batching hot path for reference.
#include "benchcore/experiment.h"
#include "benchcore/table.h"
#include "cluster/profiles.h"

using namespace doceph;
using namespace doceph::benchcore;

int main() {
  print_banner("Ablation", "offload batching: SG depth x flush deadline (16KB qd16)");

  Table t({"batch", "max segs", "deadline (us)", "IOPS", "p99 (s)", "DMA-wait (s)",
           "host CPU"});

  // Reference: everything disabled (also strips corking + RPC batching).
  {
    RunSpec spec;
    spec.mode = cluster::DeployMode::doceph;
    spec.object_size = 16 << 10;
    spec.concurrency = 16;
    spec.reuse_objects = 32;  // bounded inline-write set (see RunSpec)
    spec.batching = false;
    const auto r = run_cached(spec);
    t.row({"off", "-", "-", Table::num(r.iops, 1), Table::num(r.p99_lat_s, 4),
           Table::num(r.bd_dma_wait_s, 4), Table::pct(r.host_cores)});
  }

  for (const int max_segments : {4, 16, 64}) {
    for (const sim::Duration deadline : {50'000, 150'000, 500'000}) {
      RunSpec spec;
      spec.mode = cluster::DeployMode::doceph;
      spec.object_size = 16 << 10;
      spec.concurrency = 16;
      spec.reuse_objects = 32;
      spec.batching = true;
      auto p = cluster::default_proxy();
      p.dma_batch.max_segments = max_segments;
      p.dma_batch.flush_delay = deadline;
      p.rpc_batch.flush_delay = deadline / 2;
      spec.proxy_override = p;
      const auto r = run_cached(spec);
      t.row({"on", std::to_string(max_segments),
             Table::num(static_cast<double>(deadline) / 1e3, 0),
             Table::num(r.iops, 1), Table::num(r.p99_lat_s, 4),
             Table::num(r.bd_dma_wait_s, 4), Table::pct(r.host_cores)});
    }
  }
  t.print();
  std::printf(
      "\nReading: deeper coalescing amortizes the DMA setup and doorbell\n"
      "overheads across more segments; past the sweet spot the flush\n"
      "deadline itself shows up in p99.\n");
  return 0;
}
