// Ablation of write-path sharding (DESIGN.md §15): sweep the op-lane and
// KV-shard counts over the 16 KB qd64 fresh-object small-write workload —
// the lap where BENCH_pr8.json showed the single op queue and the single
// KvStore group-commit stream capping DoCeph throughput. The diagonal
// (op = kv) shows the end-to-end win; the off-diagonal rows split the
// knobs to attribute it (op lanes alone vs KV streams alone).
//
//   ablation_shards [--out FILE.json]
//
// --out additionally writes every swept cell as a JSON artifact (ops/s,
// p99, failed ops, per-stage latencies) for CI step summaries and
// scripts/perf_report.py.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchcore/experiment.h"
#include "benchcore/table.h"
#include "common/json.h"

using namespace doceph;
using namespace doceph::benchcore;

namespace {

/// One swept cell: the 16 KB qd64 fresh-object lap under the PR 8
/// backpressure envelope (the acceptance workload for the sharding PR).
RunSpec small_write_spec(int op_shards, int kv_shards) {
  RunSpec spec;
  spec.mode = cluster::DeployMode::doceph;
  spec.object_size = 16 << 10;
  spec.concurrency = 64;
  spec.batching = true;
  spec.backpressure = true;
  spec.warmup = 200'000'000;   // 200 ms
  spec.measure = 250'000'000;  // 250 ms: sized so the fastest sharded cell's
                               // fresh-object KV growth stays under nearfull
  spec.op_shards_override = op_shards;
  spec.kv_shards_override = kv_shards;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return 2;
    }
  }

  print_banner("Ablation", "write-path sharding: op lanes x KV shards (16KB qd64)");

  struct Cell {
    int op_shards;
    int kv_shards;
    RunResult r;
  };
  std::vector<Cell> cells;

  // Diagonal (op = kv): the configuration RunSpec::shards deploys.
  for (const int n : {1, 2, 4, 8}) cells.push_back({n, n, {}});
  // Split rows: each knob alone at the headline count, to attribute the win.
  cells.push_back({4, 1, {}});
  cells.push_back({1, 4, {}});

  double base_iops = 0;
  Table t({"op", "kv", "IOPS", "speedup", "p99 (s)", "queue (s)", "store (s)",
           "failed"});
  for (auto& c : cells) {
    c.r = run_cached(small_write_spec(c.op_shards, c.kv_shards));
    if (c.op_shards == 1 && c.kv_shards == 1) base_iops = c.r.iops;
    t.row({std::to_string(c.op_shards), std::to_string(c.kv_shards),
           Table::num(c.r.iops, 1),
           base_iops > 0 ? Table::num(c.r.iops / base_iops, 2) + "x" : "-",
           Table::num(c.r.p99_lat_s, 4), Table::num(c.r.stage_queue_s, 4),
           Table::num(c.r.stage_store_s, 4),
           std::to_string(c.r.failed_ops)});
  }
  t.print();
  std::printf(
      "\nReading: on the offload path, op lanes carry a proxy staging slot\n"
      "each (the store stage — dominated by DMA-wait on the single slot —\n"
      "falls first); KV shards then parallelize the host WAL group-commit,\n"
      "but only pay off once the lanes feed them (row 1x4 is flat). The\n"
      "diagonal compounds both. Ordering is untouched — ops for one object\n"
      "share a PG, hence a lane, hence a KV shard (DESIGN.md §15).\n");

  if (!out_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("cells");
    w.begin_array();
    for (const auto& c : cells) {
      w.begin_object();
      w.kv("op_shards", static_cast<std::int64_t>(c.op_shards));
      w.kv("kv_shards", static_cast<std::int64_t>(c.kv_shards));
      w.kv("ops_per_sec", c.r.iops);
      w.kv("speedup", base_iops > 0 ? c.r.iops / base_iops : 0.0);
      w.kv("p99_lat_s", c.r.p99_lat_s);
      w.kv("host_cores", c.r.host_cores);
      w.kv("failed_ops", static_cast<std::int64_t>(c.r.failed_ops));
      w.kv("osd_throttled", static_cast<std::int64_t>(c.r.osd_throttled));
      w.key("stages_s");
      w.begin_object();
      w.kv("messenger", c.r.stage_msgr_s);
      w.kv("queue", c.r.stage_queue_s);
      w.kv("store", c.r.stage_store_s);
      w.kv("replication", c.r.stage_repl_s);
      w.kv("reply", c.r.stage_reply_s);
      w.kv("total", c.r.stage_total_s);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
    std::fprintf(stderr, "[ablation-shards] wrote %s\n", out_path.c_str());
  }
  return 0;
}
