// Reproduces paper Fig. 8: average write latency, Baseline vs DoCeph, across
// request sizes. The offload-induced gap is large at 1 MB and shrinks as
// pipelining amortizes the DMA overheads at larger sizes.
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 8", "Average write latency: Baseline vs DoCeph");

  Table t({"size", "Baseline (s)", "DoCeph (s)", "overhead", "paper: base",
           "paper: doceph", "paper overhead"});
  for (int i = 0; i < paper::kNumSizes; ++i) {
    RunSpec base, dpu;
    base.mode = cluster::DeployMode::baseline;
    dpu.mode = cluster::DeployMode::doceph;
    base.object_size = dpu.object_size = paper::kSizes[i];
    apply_trace_flags(base, argc, argv);
    apply_trace_flags(dpu, argc, argv);
    const auto rb = run_cached(base);
    const auto rd = run_cached(dpu);
    const double over = rb.avg_lat_s > 0 ? rd.avg_lat_s / rb.avg_lat_s - 1.0 : 0;
    const double paper_over =
        paper::kFig8DoCeph[i] / paper::kFig8Baseline[i] - 1.0;
    t.row({paper::kSizeNames[i], Table::num(rb.avg_lat_s, 3),
           Table::num(rd.avg_lat_s, 3), Table::pct(over, 0),
           Table::num(paper::kFig8Baseline[i], 2),
           Table::num(paper::kFig8DoCeph[i], 2), Table::pct(paper_over, 0)});
  }
  t.print();
  std::printf(
      "\nKey claim: DoCeph's latency overhead shrinks from ~2/3 at 1 MB to a\n"
      "few percent at 16 MB as segment pipelining hides the DMA costs.\n");
  return 0;
}
