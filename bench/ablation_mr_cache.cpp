// Ablation of memory-region caching (paper §3.3): with the MR cache off,
// every DMA transfer renegotiates its region over the CommChannel, adding a
// round trip per 2 MB segment.
#include "benchcore/experiment.h"
#include "benchcore/table.h"
#include "cluster/profiles.h"

using namespace doceph;
using namespace doceph::benchcore;

int main() {
  print_banner("Ablation", "MR cache: reuse pre-established regions vs per-transfer "
               "negotiation");

  Table t({"size", "MR cache", "IOPS", "avg lat (s)", "DMA-wait (s)"});
  for (const std::uint64_t size : {1u << 20, 16u << 20}) {
    for (const bool cache : {true, false}) {
      RunSpec spec;
      spec.mode = cluster::DeployMode::doceph;
      spec.object_size = size;
      auto p = cluster::default_proxy();
      p.mr_cache = cache;
      spec.proxy_override = p;
      const auto r = run_cached(spec);
      t.row({size == (1u << 20) ? "1MB" : "16MB", cache ? "on" : "off",
             Table::num(r.iops, 1), Table::num(r.avg_lat_s, 3),
             Table::num(r.bd_dma_wait_s, 4)});
    }
  }
  t.print();
  return 0;
}
