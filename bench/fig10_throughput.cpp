// Reproduces paper Fig. 10: average throughput (IOPS), Baseline vs DoCeph,
// across write request sizes 1-16 MB.
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 10", "Throughput (IOPS): Baseline vs DoCeph");

  Table t({"size", "Baseline IOPS", "DoCeph IOPS", "gap", "paper: base",
           "paper: doceph", "paper gap"});
  for (int i = 0; i < paper::kNumSizes; ++i) {
    RunSpec base, dpu;
    base.mode = cluster::DeployMode::baseline;
    dpu.mode = cluster::DeployMode::doceph;
    base.object_size = dpu.object_size = paper::kSizes[i];
    apply_trace_flags(base, argc, argv);
    apply_trace_flags(dpu, argc, argv);
    const auto rb = run_cached(base);
    const auto rd = run_cached(dpu);
    const double gap = rb.iops > 0 ? 1.0 - rd.iops / rb.iops : 0;
    const double paper_gap = 1.0 - paper::kFig10DoCeph[i] / paper::kFig10Baseline[i];
    t.row({paper::kSizeNames[i], Table::num(rb.iops, 0), Table::num(rd.iops, 0),
           Table::pct(gap, 0), Table::num(paper::kFig10Baseline[i], 0),
           Table::num(paper::kFig10DoCeph[i], 0), Table::pct(paper_gap, 0)});
  }
  t.print();
  std::printf(
      "\nKey claim: DoCeph's throughput gap narrows from ~30%% at 1 MB to a\n"
      "few percent at large sizes while host CPU drops by ~90%%+ (Fig. 7).\n");
  return 0;
}
