// Exercises the paper's §4 robustness machinery under injected DMA errors:
// adaptive fallback to the RPC path, cooldown, and probe-based reactivation.
// The system must keep committing writes correctly at every error rate.
#include "benchcore/experiment.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main() {
  print_banner("Ablation", "DMA error injection: fallback + cooldown + probe");

  Table t({"error rate", "IOPS", "avg lat (s)", "fallback events",
           "RPC fallback MB"});
  for (const double rate : {0.0, 0.001, 0.01, 0.05}) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::doceph;
    spec.object_size = 4 << 20;
    spec.dma_failure_rate = rate;
    const auto r = run_cached(spec);
    t.row({Table::pct(rate, 1), Table::num(r.iops, 1), Table::num(r.avg_lat_s, 3),
           std::to_string(r.dma_fallback_events),
           Table::num(static_cast<double>(r.rpc_fallback_bytes) / 1e6, 1)});
  }
  t.print();
  std::printf(
      "\nReading: throughput degrades gracefully; every write still commits\n"
      "(completed segments are preserved, the rest re-routes over RPC).\n");
  return 0;
}
