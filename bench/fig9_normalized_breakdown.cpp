// Reproduces paper Fig. 9: Table 3's latency breakdown normalized per
// request size. The headline trend: DMA-wait's share is largest at 1 MB and
// falls as pipelining overlaps segment transfers at larger sizes.
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Figure 9", "Normalized latency breakdown (share of total)");

  Table t({"size", "Host write", "DMA", "DMA-wait", "Others",
           "paper DMA-wait share"});
  for (int i = 0; i < paper::kNumSizes; ++i) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::doceph;
    spec.object_size = paper::kSizes[i];
    apply_trace_flags(spec, argc, argv);
    const auto r = run_cached(spec);
    const double total = r.bd_total_s > 0 ? r.bd_total_s : 1;
    t.row({paper::kSizeNames[i], Table::pct(r.bd_host_write_s / total),
           Table::pct(r.bd_dma_s / total), Table::pct(r.bd_dma_wait_s / total),
           Table::pct(r.bd_others_s / total),
           Table::pct(paper::kTab3DmaWait[i] / paper::kTab3Total[i])});
  }
  t.print();
  return 0;
}
