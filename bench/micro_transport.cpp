// Microbenchmarks of the simulated transports, reported in *simulated* time
// (the metric the reproduction is built on): CommChannel RPC round trip,
// DMA engine segment throughput, and a messenger message round trip. Uses
// plain timing harnesses (google-benchmark measures wall time, which for a
// simulation only measures the simulator itself — also reported for
// context).
#include <cstdio>

#include "benchcore/table.h"
#include "doca/comm_channel.h"
#include "doca/dma_engine.h"
#include "msgr/messenger.h"
#include "msgr/messages.h"
#include "proxy/rpc_channel.h"
#include "sim/env.h"

using namespace doceph;
using namespace doceph::benchcore;

namespace {

/// Simulated time for one CommChannel RPC round trip (small payload).
double comch_rpc_rtt_us() {
  sim::Env env;
  doca::PcieLink link;
  auto [host, dpu] = doca::CommChannel::create_pair(env, link);
  proxy::RpcChannel server(env, host);
  proxy::RpcChannel client(env, dpu);
  event::EventCenter sc(env), cc(env);
  sim::Thread st(env.keeper(), env.stats(), "server", nullptr, [&] { sc.run(); }, true);
  sim::Thread ct(env.keeper(), env.stats(), "client", nullptr, [&] { cc.run(); }, true);
  server.set_request_handler([](BufferList, bool,
                                proxy::RpcChannel::Responder respond,
                                const trace::TraceContext&) {
    respond(BufferList::copy_of("pong"));
  });
  server.start(sc);
  client.start(cc);

  double rtt_us = 0;
  env.run_on_sim_thread([&] {
    constexpr int kIters = 100;
    const sim::Time t0 = env.now();
    for (int i = 0; i < kIters; ++i)
      (void)client.call(BufferList::copy_of("ping"), 1'000'000'000);
    rtt_us = static_cast<double>(env.now() - t0) / kIters / 1000.0;
  });
  sc.stop();
  cc.stop();
  return rtt_us;
}

/// Simulated DMA throughput for back-to-back 2 MB segments.
double dma_gbps(int jobs) {
  sim::Env env;
  doca::PcieLink link;
  doca::DmaEngine dma(env, link, doca::DmaConfig{});
  auto src = std::make_shared<doca::Mmap>(2 << 20);
  auto dst = std::make_shared<doca::Mmap>(2 << 20);
  double gbps = 0;
  env.run_on_sim_thread([&] {
    std::mutex m;
    sim::CondVar cv(env.keeper());
    int done = 0;
    const sim::Time t0 = env.now();
    for (int i = 0; i < jobs; ++i) {
      (void)dma.submit({src, 0, 2 << 20}, {dst, 0, 2 << 20}, doca::DmaDir::dpu_to_host,
                       [&](Status) {
                         const std::lock_guard<std::mutex> lk(m);
                         ++done;
                         cv.notify_all();
                       });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == jobs; });
    const double secs = sim::to_seconds(env.now() - t0);
    gbps = static_cast<double>(jobs) * (2 << 20) / secs / 1e9;
  });
  return gbps;
}

/// Simulated round trip of a small message through the full messenger stack.
double messenger_rtt_us() {
  sim::Env env;
  net::Fabric fabric(env);
  auto& na = fabric.add_node("a");
  auto& nb = fabric.add_node("b");
  msgr::Messenger ma(env, fabric, na, nullptr, "client.1");
  msgr::Messenger mb(env, fabric, nb, nullptr, "osd.0");

  struct Echo : msgr::Dispatcher {
    void ms_dispatch(const msgr::MessageRef& m) override {
      if (m->type() == msgr::MsgType::osd_op) {
        auto reply = std::make_shared<msgr::MOSDOpReply>();
        reply->tid = m->tid;
        m->connection->send_message(reply);
      }
    }
  } echo;
  struct Collect : msgr::Dispatcher {
    sim::Env& env;
    std::mutex m;
    sim::CondVar cv;
    int got = 0;
    explicit Collect(sim::Env& e) : env(e), cv(e.keeper()) {}
    void ms_dispatch(const msgr::MessageRef&) override {
      const std::lock_guard<std::mutex> lk(m);
      ++got;
      cv.notify_all();
    }
  } collect(env);
  ma.set_dispatcher(&collect);
  mb.set_dispatcher(&echo);
  (void)mb.bind(6800);
  ma.start();
  mb.start();

  double rtt_us = 0;
  env.run_on_sim_thread([&] {
    auto con = ma.get_connection(mb.addr());
    constexpr int kIters = 100;
    const sim::Time t0 = env.now();
    for (int i = 0; i < kIters; ++i) {
      auto op = std::make_shared<msgr::MOSDOp>();
      op->tid = static_cast<std::uint64_t>(i);
      op->object = "o";
      con->send_message(op);
      std::unique_lock<std::mutex> lk(collect.m);
      collect.cv.wait(lk, [&] { return collect.got > i; });
    }
    rtt_us = static_cast<double>(env.now() - t0) / kIters / 1000.0;
  });
  ma.shutdown();
  mb.shutdown();
  return rtt_us;
}

}  // namespace

int main() {
  print_banner("Micro", "Transport primitives (simulated time)");
  Table t({"primitive", "metric", "value"});
  t.row({"CommChannel RPC", "round trip", Table::num(comch_rpc_rtt_us(), 1) + " us"});
  t.row({"DMA engine", "2MB x32 pipelined", Table::num(dma_gbps(32), 2) + " GB/s"});
  t.row({"DMA engine", "2MB single job", Table::num(dma_gbps(1), 2) + " GB/s"});
  t.row({"Messenger", "small msg round trip",
         Table::num(messenger_rtt_us(), 1) + " us"});
  t.print();
  return 0;
}
