// Reproduces paper Table 3: average latency time breakdown (seconds) of
// DoCeph write requests: Host write / DMA / DMA-wait / Others / Total.
// Note on semantics (see EXPERIMENTS.md): our Host-write includes host-side
// queueing at the SSD, which the paper books under Others.
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Table 3", "DoCeph latency breakdown (seconds)");

  Table t({"row", "1MB", "4MB", "8MB", "16MB"});
  RunResult r[paper::kNumSizes];
  for (int i = 0; i < paper::kNumSizes; ++i) {
    RunSpec spec;
    spec.mode = cluster::DeployMode::doceph;
    spec.object_size = paper::kSizes[i];
    apply_trace_flags(spec, argc, argv);
    r[i] = run_cached(spec);
  }
  auto row = [&](const char* name, double RunResult::* f, const double* ref) {
    std::vector<std::string> cells{name};
    for (int i = 0; i < paper::kNumSizes; ++i) cells.push_back(Table::num(r[i].*f, 4));
    t.row(std::move(cells));
    std::vector<std::string> pcells{std::string("  (paper ") + name + ")"};
    for (int i = 0; i < paper::kNumSizes; ++i) pcells.push_back(Table::num(ref[i], 4));
    t.row(std::move(pcells));
  };
  row("Host write", &RunResult::bd_host_write_s, paper::kTab3HostWrite);
  row("DMA", &RunResult::bd_dma_s, paper::kTab3Dma);
  row("DMA-wait", &RunResult::bd_dma_wait_s, paper::kTab3DmaWait);
  row("Others", &RunResult::bd_others_s, paper::kTab3Others);
  row("Total avg latency", &RunResult::bd_total_s, paper::kTab3Total);
  t.print();
  return 0;
}
