// Reproduces paper Table 2: context switches of Messenger vs ObjectStore
// threads (Baseline, 4 MB writes, 100 Gbps). The paper reports counts per
// measurement interval; the reproducible quantity is the ratio (~10x),
// driven by the messenger's per-wakeup socket processing.
#include "benchcore/experiment.h"
#include "benchcore/paper.h"
#include "benchcore/table.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  print_banner("Table 2", "Context switches: Messenger vs ObjectStore");

  RunSpec spec;
  spec.mode = cluster::DeployMode::baseline;
  spec.object_size = 4 << 20;
  apply_trace_flags(spec, argc, argv);
  const auto r = run_cached(spec);

  const double per_s_m = static_cast<double>(r.ctx_messenger) / r.window_s;
  const double per_s_o = static_cast<double>(r.ctx_objectstore) / r.window_s;
  const double ratio = per_s_o > 0 ? per_s_m / per_s_o : 0;

  Table t({"component", "ctx switches/s", "measured ratio", "paper count",
           "paper ratio"});
  t.row({"Messenger", Table::num(per_s_m, 0), Table::num(ratio, 2) + "x",
         Table::num(paper::kTab2Messenger, 0), Table::num(paper::kTab2Ratio, 2) + "x"});
  t.row({"ObjectStore", Table::num(per_s_o, 0), "1x",
         Table::num(paper::kTab2ObjectStore, 0), "1x"});
  t.print();
  std::printf(
      "\nKey claim: the messenger's TCP/IP socket path voluntarily context\n"
      "switches ~an order of magnitude more often than the storage backend.\n");
  return 0;
}
