#include "dbg/lockdep.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/thread_name.h"

namespace doceph::dbg::lockdep {
namespace {

#ifdef DOCEPH_LOCKDEP
constexpr bool kEnabledDefault = true;
#else
constexpr bool kEnabledDefault = false;
#endif

std::atomic<bool> g_enabled{kEnabledDefault};

struct ClassInfo {
  std::string name;
  bool rank_ordered = false;
};

struct EdgeInfo {
  std::string first_thread;  ///< thread that first recorded this edge
};

/// Registry + order graph. Guarded by a bare std::mutex: the engine must not
/// recurse into itself, and these sections never block on anything else.
struct Engine {
  std::mutex m;
  std::unordered_map<std::string, ClassId> by_name;
  std::vector<ClassInfo> classes;  // index = ClassId - 1
  // held-class -> acquired-class. Map (not multimap): one witness per edge.
  std::map<std::pair<ClassId, ClassId>, EdgeInfo> edges;
  std::map<ClassId, std::set<ClassId>> out;
  Handler handler;  // empty = default print-and-abort
};

Engine& engine() {
  static Engine* e = new Engine;  // leaked: threads may release at exit
  return *e;
}

struct Held {
  const void* instance;
  ClassId cls;
};

thread_local std::vector<Held> t_held;

const ClassInfo& info_locked(const Engine& e, ClassId cls) {
  static const ClassInfo kUnknown{"<untracked>", false};
  if (cls == kInvalidClass || cls > e.classes.size()) return kUnknown;
  return e.classes[cls - 1];
}

/// DFS: is `to` reachable from `from` in the order graph? On success fills
/// `path` with the class chain from..to. Requires e.m held.
bool reachable_locked(const Engine& e, ClassId from, ClassId to,
                      std::vector<ClassId>& path, std::set<ClassId>& seen) {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  if (!seen.insert(from).second) return false;
  auto it = e.out.find(from);
  if (it == e.out.end()) return false;
  for (const ClassId next : it->second) {
    if (reachable_locked(e, next, to, path, seen)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

std::string held_dump_locked(const Engine& e) {
  std::ostringstream os;
  os << "held locks (oldest first):\n";
  if (t_held.empty()) os << "  (none)\n";
  for (std::size_t i = 0; i < t_held.size(); ++i) {
    os << "  #" << i << ' ' << info_locked(e, t_held[i].cls).name
       << " (instance " << t_held[i].instance << ")\n";
  }
  return os.str();
}

void fire_locked(Engine& e, std::unique_lock<std::mutex>& lk, Violation v) {
  // Run the handler (or default) without the engine lock: a recording
  // handler may itself allocate/log, and an aborting one never returns.
  Handler h = e.handler;
  lk.unlock();
  if (h) {
    h(v);
    lk.lock();
    return;
  }
  std::fprintf(stderr, "%s", v.report.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

Handler set_handler(Handler h) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lk(e.m);
  Handler prev = std::move(e.handler);
  e.handler = std::move(h);
  return prev;
}

ClassId register_class(const std::string& name, bool rank_ordered) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lk(e.m);
  auto it = e.by_name.find(name);
  if (it != e.by_name.end()) {
    e.classes[it->second - 1].rank_ordered |= rank_ordered;
    return it->second;
  }
  e.classes.push_back(ClassInfo{name, rank_ordered});
  const auto id = static_cast<ClassId>(e.classes.size());
  e.by_name.emplace(name, id);
  return id;
}

std::string class_name(ClassId cls) {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lk(e.m);
  if (cls == kInvalidClass || cls > e.classes.size()) return "<invalid>";
  return e.classes[cls - 1].name;
}

void acquire(const void* instance, ClassId cls) {
  if (!enabled() || cls == kInvalidClass) {
    t_held.push_back(Held{instance, cls});
    return;
  }
  Engine& e = engine();
  std::unique_lock<std::mutex> lk(e.m);

  // (b) recursive self-deadlock / unannotated same-class nesting.
  for (const Held& h : t_held) {
    const bool same_instance = h.instance == instance;
    const bool same_class = h.cls == cls;
    if (!same_instance && !(same_class && !info_locked(e, cls).rank_ordered)) continue;
    std::ostringstream os;
    os << "== doceph lockdep: RECURSIVE LOCK ==\n"
       << "thread: " << current_thread_name() << '\n'
       << "acquiring: " << info_locked(e, cls).name << " (instance " << instance
       << ")\n"
       << (same_instance
               ? "already held by this thread (self-deadlock)\n"
               : "another instance of this class is already held; two threads "
                 "doing this in opposite instance order deadlock (register "
                 "the class rank_ordered if an instance order is enforced)\n")
       << held_dump_locked(e);
    fire_locked(e, lk, Violation{Violation::Kind::recursive_lock, os.str()});
    t_held.push_back(Held{instance, cls});
    return;
  }

  // (a) order edges from every held class; report the first cycle found.
  for (const Held& h : t_held) {
    if (h.cls == cls || h.cls == kInvalidClass) continue;
    const auto key = std::make_pair(h.cls, cls);
    if (e.edges.contains(key)) continue;
    std::vector<ClassId> path;
    std::set<ClassId> seen;
    if (reachable_locked(e, cls, h.cls, path, seen)) {
      // path is filled callee-first: [h.cls, ..., cls] reversed.
      std::ostringstream os;
      os << "== doceph lockdep: LOCK-ORDER INVERSION ==\n"
         << "thread: " << current_thread_name() << '\n'
         << "acquiring: " << info_locked(e, cls).name << " (instance " << instance
         << ")\n"
         << held_dump_locked(e) << "dependency cycle:\n";
      // Reconstruct forward order: cls -> ... -> h.cls -> cls(attempted).
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        auto next = std::next(it);
        if (next == path.rend()) break;
        const auto ekey = std::make_pair(*it, *next);
        os << "  " << info_locked(e, *it).name << " -> "
           << info_locked(e, *next).name;
        auto edge = e.edges.find(ekey);
        if (edge != e.edges.end())
          os << "   [first taken in this order on thread '"
             << edge->second.first_thread << "']";
        os << '\n';
      }
      os << "  " << info_locked(e, h.cls).name << " -> " << info_locked(e, cls).name
         << "   <- attempted now\n";
      fire_locked(e, lk, Violation{Violation::Kind::lock_inversion, os.str()});
      t_held.push_back(Held{instance, cls});
      return;  // do not record the cycle-closing edge
    }
    e.edges.emplace(key, EdgeInfo{current_thread_name()});
    e.out[h.cls].insert(cls);
  }
  t_held.push_back(Held{instance, cls});
}

void acquire_trylock(const void* instance, ClassId cls) {
  if (!enabled() || cls == kInvalidClass) {
    t_held.push_back(Held{instance, cls});
    return;
  }
  Engine& e = engine();
  const std::lock_guard<std::mutex> lk(e.m);
  for (const Held& h : t_held) {
    if (h.cls == cls || h.cls == kInvalidClass) continue;
    const auto key = std::make_pair(h.cls, cls);
    if (e.edges.contains(key)) continue;
    std::vector<ClassId> path;
    std::set<ClassId> seen;
    if (reachable_locked(e, cls, h.cls, path, seen)) continue;  // skip, no report
    e.edges.emplace(key, EdgeInfo{current_thread_name()});
    e.out[h.cls].insert(cls);
  }
  t_held.push_back(Held{instance, cls});
}

void release(const void* instance) noexcept {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->instance == instance) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

void cond_wait_check(const void* wait_mutex, bool in_sim_thread, const char* what) {
  if (!enabled() || !in_sim_thread) return;
  bool extra = false;
  for (const Held& h : t_held) extra |= h.instance != wait_mutex;
  if (!extra) return;
  Engine& e = engine();
  std::unique_lock<std::mutex> lk(e.m);
  std::ostringstream os;
  os << "== doceph lockdep: CONDVAR WAIT WHILE HOLDING LOCKS ==\n"
     << "thread: " << current_thread_name() << " (registered sim thread)\n"
     << "waiting on: " << what << " (mutex " << wait_mutex << ")\n"
     << "the wait parks this thread in simulated time, but it still holds:\n"
     << held_dump_locked(e)
     << "any thread contending on those locks stalls the simulation.\n";
  fire_locked(e, lk, Violation{Violation::Kind::cond_wait_holding, os.str()});
}

std::size_t held_count() noexcept { return t_held.size(); }

bool is_held(const void* instance) noexcept {
  for (const Held& h : t_held)
    if (h.instance == instance) return true;
  return false;
}

void reset_graph_for_testing() {
  Engine& e = engine();
  const std::lock_guard<std::mutex> lk(e.m);
  e.edges.clear();
  e.out.clear();
}

}  // namespace doceph::dbg::lockdep
