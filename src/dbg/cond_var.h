#pragma once

#include "dbg/mutex.h"
#include "sim/time_keeper.h"

namespace doceph::dbg {

/// sim::CondVar with lockdep instrumentation: the drop-in condition variable
/// for code using dbg::Mutex. Semantics are sim::CondVar's (waits park the
/// thread in simulated time; notifies wake it at the current instant), plus
/// check (c) from dbg/lockdep.h: a registered sim thread must not wait while
/// holding any tracked lock other than the one it is waiting with — the
/// extra lock would stay held across the park and stall every contender,
/// i.e. stall simulated time.
///
/// Header-only by design: dbg's compiled core stays free of sim so the
/// dependency arrow runs sim -> dbg only.
///
/// Thread-safety analysis: wait() atomically releases and reacquires the
/// lock inside the substrate, invisible to the analysis — which matches the
/// caller-visible contract (the lock is held before and after), so no
/// annotation is needed or possible (the mutex identity lives inside `lk`).
class CondVar {
 public:
  /// `name` appears in lockdep reports (e.g. "bluestore.aio_cv").
  explicit CondVar(sim::TimeKeeper& tk, const char* name = "dbg::CondVar") noexcept
      : cv_(tk), name_(name) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) {
    pre_wait(lk);
    cv_.wait(lk.inner());
  }

  /// Waits until notified or `deadline` (simulated); false on timeout.
  [[nodiscard]] bool wait_until(UniqueLock& lk, sim::Time deadline) {
    pre_wait(lk);
    return cv_.wait_until(lk.inner(), deadline);
  }

  [[nodiscard]] bool wait_for(UniqueLock& lk, sim::Duration d) {
    pre_wait(lk);
    return cv_.wait_for(lk.inner(), d);
  }

  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  /// Waits until pred() or the deadline; returns pred() (std-compatible).
  template <typename Pred>
  bool wait_until(UniqueLock& lk, sim::Time deadline, Pred pred) {
    while (!pred()) {
      if (!wait_until(lk, deadline)) return pred();
    }
    return true;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  [[nodiscard]] sim::TimeKeeper& keeper() const noexcept { return cv_.keeper(); }

 private:
  void pre_wait(UniqueLock& lk) {
    lockdep::cond_wait_check(lk.mutex(), cv_.keeper().current_thread_registered(),
                             name_);
  }

  sim::CondVar cv_;
  const char* name_;
};

}  // namespace doceph::dbg
