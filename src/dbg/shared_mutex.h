#pragma once

#include <shared_mutex>

#include "dbg/lockdep.h"

namespace doceph::dbg {

/// A std::shared_mutex with lockdep instrumentation — the reader/writer
/// counterpart of dbg::Mutex. Both shared and exclusive acquisitions are
/// tracked in the lock-order graph under one class: an inversion is a
/// deadlock risk regardless of which side each thread takes (a waiting
/// writer blocks later readers), so the checker does not distinguish modes.
///
/// Satisfies SharedLockable: std::unique_lock<dbg::SharedMutex> and
/// std::shared_lock<dbg::SharedMutex> work unchanged.
class SharedMutex {
 public:
  explicit SharedMutex(const char* class_name)
      : cls_(lockdep::register_class(class_name, /*rank_ordered=*/false)) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // ---- exclusive --------------------------------------------------------------
  void lock() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }
  void unlock() {
    m_.unlock();
    lockdep::release(this);
  }
  bool try_lock() {
    if (!m_.try_lock()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  // ---- shared -----------------------------------------------------------------
  void lock_shared() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock_shared();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }
  void unlock_shared() {
    m_.unlock_shared();
    lockdep::release(this);
  }
  bool try_lock_shared() {
    if (!m_.try_lock_shared()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  [[nodiscard]] lockdep::ClassId lockdep_class() const noexcept { return cls_; }

 private:
  std::shared_mutex m_;
  lockdep::ClassId cls_;
};

}  // namespace doceph::dbg
