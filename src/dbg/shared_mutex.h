#pragma once

#include <shared_mutex>

#include "dbg/lockdep.h"
#include "dbg/thread_safety.h"

namespace doceph::dbg {

/// A std::shared_mutex with lockdep instrumentation — the reader/writer
/// counterpart of dbg::Mutex. Both shared and exclusive acquisitions are
/// tracked in the lock-order graph under one class: an inversion is a
/// deadlock risk regardless of which side each thread takes (a waiting
/// writer blocks later readers), so the checker does not distinguish modes.
///
/// As a Clang thread-safety capability the two modes ARE distinguished:
/// DOCEPH_GUARDED_BY members need exclusive hold to write, shared to read.
///
/// Satisfies SharedLockable, but prefer the annotated dbg::ReadLockGuard /
/// dbg::WriteLockGuard below — std::shared_lock / std::unique_lock carry no
/// annotations in libstdc++, so the analysis cannot see them.
class DOCEPH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* class_name)
      : cls_(lockdep::register_class(class_name, /*rank_ordered=*/false)) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // ---- exclusive --------------------------------------------------------------
  void lock() DOCEPH_ACQUIRE() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }
  void unlock() DOCEPH_RELEASE() {
    m_.unlock();
    lockdep::release(this);
  }
  bool try_lock() DOCEPH_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  // ---- shared -----------------------------------------------------------------
  void lock_shared() DOCEPH_ACQUIRE_SHARED() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock_shared();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }
  void unlock_shared() DOCEPH_RELEASE_SHARED() {
    m_.unlock_shared();
    lockdep::release(this);
  }
  bool try_lock_shared() DOCEPH_TRY_ACQUIRE_SHARED(true) {
    if (!m_.try_lock_shared()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  [[nodiscard]] lockdep::ClassId lockdep_class() const noexcept { return cls_; }

 private:
  std::shared_mutex m_;
  lockdep::ClassId cls_;
};

/// Scoped exclusive (writer) lock over dbg::SharedMutex.
class DOCEPH_SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& m) DOCEPH_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~WriteLockGuard() DOCEPH_RELEASE() { m_.unlock(); }  // NOLINT(bugprone-exception-escape): lockdep bookkeeping in unlock; a throw terminates, by design

  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// Scoped shared (reader) lock over dbg::SharedMutex.
class DOCEPH_SCOPED_CAPABILITY ReadLockGuard {
 public:
  explicit ReadLockGuard(SharedMutex& m) DOCEPH_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~ReadLockGuard() DOCEPH_RELEASE_GENERIC() { m_.unlock_shared(); }  // NOLINT(bugprone-exception-escape): lockdep bookkeeping in unlock; a throw terminates, by design

  ReadLockGuard(const ReadLockGuard&) = delete;
  ReadLockGuard& operator=(const ReadLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

}  // namespace doceph::dbg
