#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace doceph::dbg {

/// Runtime lockdep: a lock-order checker in the spirit of the Linux kernel's
/// lockdep, scaled to this codebase. Every dbg::Mutex belongs to a named
/// *lock class* (e.g. "bluestore.store", "msgr.messenger"); instances of the
/// same class share one node in a global lock-order graph. While checking is
/// enabled the engine maintains, per thread, the stack of held locks and, on
/// every acquisition, records held-class -> acquired-class edges. It reports:
///
///  (a) lock-order inversion — acquiring B while holding A after some thread
///      has acquired A while holding B (any cycle, not just length 2);
///  (b) recursive self-deadlock — re-acquiring a mutex instance the calling
///      thread already holds (including same-class instance pairs, which are
///      a potential ABBA between two threads unless the class is explicitly
///      registered as rank-ordered);
///  (c) condvar-wait-while-holding — waiting on a dbg::CondVar while holding
///      any tracked lock other than the one associated with the wait, from a
///      thread registered with a TimeKeeper. Such a wait parks the thread in
///      simulated time while the extra lock stays held, stalling every other
///      thread that needs it — the classic way a simulation wedges.
///
/// Checking costs one hash lookup + small vector scan per lock op and is
/// disabled by default; enable per-build with -DDOCEPH_LOCKDEP=ON or per
/// test/process with set_enabled(true). The engine itself is always compiled
/// so any build can run the checker's own tests.
///
/// Violations go to the installed handler; the default prints the report to
/// stderr and aborts. Tests install a recording handler; when a handler
/// returns normally the offending operation proceeds (the report has been
/// made; aborting twice on one bug helps nobody).
namespace lockdep {

using ClassId = std::uint32_t;
constexpr ClassId kInvalidClass = 0;

struct Violation {
  enum class Kind {
    lock_inversion,     ///< cycle in the lock-order graph
    recursive_lock,     ///< same instance (or same class) already held
    cond_wait_holding,  ///< condvar wait with an unrelated tracked lock held
  };
  Kind kind;
  std::string report;  ///< multi-line human-readable report
};

using Handler = std::function<void(const Violation&)>;

/// Master switch. Starts as `true` when built with -DDOCEPH_LOCKDEP=ON
/// (compile definition DOCEPH_LOCKDEP), else `false`.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Replace the violation handler (pass nullptr to restore the default
/// print-and-abort behavior). Returns the previous handler.
Handler set_handler(Handler h);

/// Intern a lock class. Same name -> same id, across all call sites.
/// `rank_ordered` permits holding several *instances* of this class at once
/// (callers guarantee a consistent instance order, e.g. by address); the
/// default treats same-class nesting as a potential ABBA deadlock.
ClassId register_class(const std::string& name, bool rank_ordered = false);

/// Name of a registered class (for reports/tests).
[[nodiscard]] std::string class_name(ClassId cls);

/// Called by dbg::Mutex before blocking on the underlying mutex: runs checks
/// (a)/(b) against the calling thread's held set, records order edges, and
/// pushes the lock onto the held stack. The push happens even when a check
/// fires and the handler returns, keeping bookkeeping consistent with the
/// acquisition that is about to happen anyway.
void acquire(const void* instance, ClassId cls);

/// Bookkeeping for a lock acquired via a *successful* try_lock: pushes the
/// held entry and records order edges, but never fires a violation —
/// probing locks in reverse order is a legitimate deadlock-avoidance idiom
/// (try_lock cannot block). An edge that would close a cycle is skipped so
/// the probe does not poison the graph for checked acquisitions.
void acquire_trylock(const void* instance, ClassId cls);

/// Called by dbg::Mutex after releasing: pops the lock from the held stack
/// (out-of-order release is fine).
void release(const void* instance) noexcept;

/// Check (c): about to wait on a condvar whose associated mutex is
/// `wait_mutex`. `in_sim_thread` is whether the caller is registered with a
/// TimeKeeper (the wait stalls simulated time only then). `what` names the
/// condvar's wrapper for the report.
void cond_wait_check(const void* wait_mutex, bool in_sim_thread, const char* what);

/// Number of tracked locks the calling thread currently holds.
[[nodiscard]] std::size_t held_count() noexcept;

/// Does the calling thread currently hold `instance`? Backed by the
/// thread-local held stack, which is maintained even with checking disabled,
/// so this is always accurate for locks taken through dbg wrappers. Powers
/// dbg::Mutex::assert_held() (the runtime side of the static
/// ASSERT_CAPABILITY annotation used in condvar predicates).
[[nodiscard]] bool is_held(const void* instance) noexcept;

/// Test hook: forget all recorded order edges (class registrations persist).
/// Lets independent test cases seed contradictory orders without tripping
/// over each other. Not for production code.
void reset_graph_for_testing();

}  // namespace lockdep
}  // namespace doceph::dbg
