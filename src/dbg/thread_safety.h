#pragma once

// Clang Thread Safety Analysis macros — the compile-time half of the dbg::
// concurrency contract (DESIGN.md §11). dbg::Mutex / dbg::SharedMutex are
// declared as capabilities, guarded state carries DOCEPH_GUARDED_BY, and
// the `*_locked()` helper convention becomes DOCEPH_REQUIRES. Built with
// `-DDOCEPH_THREAD_SAFETY=ON` (Clang: -Wthread-safety -Wthread-safety-beta
// -Werror=thread-safety) every lock-contract violation is a compile error;
// under GCC every macro expands to nothing, so annotations are free.
//
// Waiver policy: DOCEPH_NO_THREAD_SAFETY_ANALYSIS is a last resort and MUST
// carry a comment explaining why the analysis cannot see the invariant
// (e.g. lock identity only known at runtime, intentionally unlocked
// teardown). A bare waiver is a review error.

#if defined(__clang__) && !defined(SWIG)
#define DOCEPH_TS_ATTR(x) __attribute__((x))
#else
#define DOCEPH_TS_ATTR(x)  // no-op: GCC/MSVC have no thread-safety analysis
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define DOCEPH_CAPABILITY(x) DOCEPH_TS_ATTR(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define DOCEPH_SCOPED_CAPABILITY DOCEPH_TS_ATTR(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define DOCEPH_GUARDED_BY(x) DOCEPH_TS_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define DOCEPH_PT_GUARDED_BY(x) DOCEPH_TS_ATTR(pt_guarded_by(x))

/// Function callable only while holding the given capabilities exclusively.
#define DOCEPH_REQUIRES(...) \
  DOCEPH_TS_ATTR(requires_capability(__VA_ARGS__))

/// Function callable only while holding the given capabilities (shared OK).
#define DOCEPH_REQUIRES_SHARED(...) \
  DOCEPH_TS_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the given capabilities held
/// (it acquires them itself — deadlock otherwise).
#define DOCEPH_EXCLUDES(...) DOCEPH_TS_ATTR(locks_excluded(__VA_ARGS__))

/// Function acquires the capability exclusively / shared and holds it on
/// return. On a scoped type's member, no-arg form refers to the managed lock.
#define DOCEPH_ACQUIRE(...) DOCEPH_TS_ATTR(acquire_capability(__VA_ARGS__))
#define DOCEPH_ACQUIRE_SHARED(...) \
  DOCEPH_TS_ATTR(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic form releases either mode).
#define DOCEPH_RELEASE(...) DOCEPH_TS_ATTR(release_capability(__VA_ARGS__))
#define DOCEPH_RELEASE_SHARED(...) \
  DOCEPH_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define DOCEPH_RELEASE_GENERIC(...) \
  DOCEPH_TS_ATTR(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define DOCEPH_TRY_ACQUIRE(...) \
  DOCEPH_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define DOCEPH_TRY_ACQUIRE_SHARED(...) \
  DOCEPH_TS_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define DOCEPH_ASSERT_CAPABILITY(x) DOCEPH_TS_ATTR(assert_capability(x))
#define DOCEPH_ASSERT_SHARED_CAPABILITY(x) \
  DOCEPH_TS_ATTR(assert_shared_capability(x))

/// Function returning a reference to the capability guarding it.
#define DOCEPH_RETURN_CAPABILITY(x) DOCEPH_TS_ATTR(lock_returned(x))

/// Waiver: the analysis is wrong or cannot model this function. ALWAYS pair
/// with a comment stating the reason (see DESIGN.md §11 waiver policy).
#define DOCEPH_NO_THREAD_SAFETY_ANALYSIS \
  DOCEPH_TS_ATTR(no_thread_safety_analysis)
