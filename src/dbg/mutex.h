#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "dbg/lockdep.h"
#include "dbg/thread_safety.h"

namespace doceph::dbg {

/// A std::mutex with lockdep instrumentation (see dbg/lockdep.h). Every
/// mutex names its lock class; instances of a class share one node in the
/// lock-order graph. With checking disabled the overhead is one relaxed
/// atomic load and a thread-local vector push/pop per lock/unlock.
///
/// Also a Clang thread-safety *capability* (dbg/thread_safety.h): members
/// declared DOCEPH_GUARDED_BY(a dbg::Mutex) are statically checked to be
/// touched only under it when built with -DDOCEPH_THREAD_SAFETY=ON.
///
/// `rank_ordered` permits holding several instances of the class at once
/// (the caller guarantees a consistent instance order); default forbids it.
///
/// Checks fire *before* blocking on the underlying mutex, so an about-to-
/// deadlock acquisition is reported instead of hanging. A violation handler
/// may throw to abort the acquisition (the lock is then not taken).
class DOCEPH_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* class_name, bool rank_ordered = false)
      : cls_(lockdep::register_class(class_name, rank_ordered)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DOCEPH_ACQUIRE() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }

  void unlock() DOCEPH_RELEASE() {
    m_.unlock();
    lockdep::release(this);
  }

  /// Deadlock-free probe: held-set bookkeeping happens on success, but no
  /// violation can fire — reverse-order trylock is a legitimate idiom.
  bool try_lock() DOCEPH_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  /// Runtime + static assertion that the calling thread holds this mutex.
  /// Statically this re-establishes the capability in contexts the analysis
  /// cannot follow — chiefly condvar predicate lambdas, which Clang analyzes
  /// as separate functions with no knowledge of the wait()'s lock. The
  /// runtime side is a real check against the thread-local held stack (kept
  /// even with lockdep checking off), so the annotation can never be used to
  /// paper over an actually-unlocked access.
  void assert_held() const DOCEPH_ASSERT_CAPABILITY(this) {
    if (!lockdep::is_held(this)) {
      std::fprintf(stderr,
                   "doceph dbg::Mutex::assert_held: mutex (class %u) not held "
                   "by this thread\n",
                   cls_);
      std::abort();
    }
  }

  /// The raw mutex, for the TimeKeeper/CondVar substrate only. Locking it
  /// directly bypasses all checking (lockdep AND the static analysis);
  /// doceph_lint.py rejects calls outside src/sim/time_keeper.* and
  /// src/dbg/.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }
  [[nodiscard]] lockdep::ClassId lockdep_class() const noexcept { return cls_; }

 private:
  std::mutex m_;
  lockdep::ClassId cls_;
};

/// Scoped lock over dbg::Mutex (drop-in for std::lock_guard<std::mutex>).
/// A real class rather than a std::lock_guard alias so Clang's analysis
/// sees it as a scoped capability (libstdc++'s lock_guard carries no
/// annotations).
class DOCEPH_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) DOCEPH_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() DOCEPH_RELEASE() { m_.unlock(); }  // NOLINT(bugprone-exception-escape): lockdep bookkeeping in unlock; a throw terminates, by design

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Movable lock over dbg::Mutex (drop-in for std::unique_lock<std::mutex>).
/// `inner()` exposes the underlying std::unique_lock so sim::CondVar (the
/// unchecked substrate) can park on it; use dbg::CondVar instead of reaching
/// for it directly.
///
/// Thread-safety analysis: a scoped capability supporting defer/manual
/// lock/unlock. Moving a UniqueLock is NOT modelled by the analysis — a
/// function that receives or returns one by move must carry
/// DOCEPH_NO_THREAD_SAFETY_ANALYSIS with a reason.
class DOCEPH_SCOPED_CAPABILITY UniqueLock {
 public:
  UniqueLock() noexcept = default;
  explicit UniqueLock(Mutex& m) DOCEPH_ACQUIRE(m)
      : mx_(&m), inner_(m.native(), std::defer_lock) {
    lock_impl();
  }
  UniqueLock(Mutex& m, std::defer_lock_t) noexcept DOCEPH_EXCLUDES(m)
      : mx_(&m), inner_(m.native(), std::defer_lock) {}

  UniqueLock(UniqueLock&& o) noexcept DOCEPH_NO_THREAD_SAFETY_ANALYSIS
      // waiver: capability transfer by move is outside the analysis model.
      : mx_(o.mx_),
        inner_(std::move(o.inner_)) {
    o.mx_ = nullptr;
  }
  UniqueLock& operator=(UniqueLock&& o) noexcept
      DOCEPH_NO_THREAD_SAFETY_ANALYSIS {
    // waiver: capability transfer by move is outside the analysis model.
    if (this == &o) return *this;
    if (owns_lock()) unlock_impl();
    mx_ = o.mx_;
    inner_ = std::move(o.inner_);
    o.mx_ = nullptr;
    return *this;
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  ~UniqueLock() DOCEPH_RELEASE() {  // NOLINT(bugprone-exception-escape): lockdep bookkeeping in unlock; a throw terminates, by design
    if (owns_lock()) unlock_impl();
  }

  void lock() DOCEPH_ACQUIRE() { lock_impl(); }

  bool try_lock() DOCEPH_TRY_ACQUIRE(true) {
    if (!inner_.try_lock()) return false;
    lockdep::acquire_trylock(mx_, mx_->lockdep_class());
    return true;
  }

  void unlock() DOCEPH_RELEASE() { unlock_impl(); }

  [[nodiscard]] bool owns_lock() const noexcept { return inner_.owns_lock(); }
  [[nodiscard]] Mutex* mutex() const noexcept { return mx_; }
  [[nodiscard]] std::unique_lock<std::mutex>& inner() noexcept { return inner_; }

 private:
  // Unannotated bodies shared by the annotated entry points above (the
  // constructor may not call the ACQUIRE()-annotated lock(): the analysis
  // would see a double-acquire of the capability being established).
  void lock_impl() {
    lockdep::acquire(mx_, mx_->lockdep_class());
    try {
      inner_.lock();
    } catch (...) {
      lockdep::release(mx_);
      throw;
    }
  }

  void unlock_impl() {
    inner_.unlock();
    lockdep::release(mx_);
  }

  Mutex* mx_ = nullptr;
  std::unique_lock<std::mutex> inner_;
};

}  // namespace doceph::dbg
