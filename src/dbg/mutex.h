#pragma once

#include <mutex>

#include "dbg/lockdep.h"

namespace doceph::dbg {

/// A std::mutex with lockdep instrumentation (see dbg/lockdep.h). Every
/// mutex names its lock class; instances of a class share one node in the
/// lock-order graph. With checking disabled the overhead is one relaxed
/// atomic load and a thread-local vector push/pop per lock/unlock.
///
/// `rank_ordered` permits holding several instances of the class at once
/// (the caller guarantees a consistent instance order); default forbids it.
///
/// Checks fire *before* blocking on the underlying mutex, so an about-to-
/// deadlock acquisition is reported instead of hanging. A violation handler
/// may throw to abort the acquisition (the lock is then not taken).
class Mutex {
 public:
  explicit Mutex(const char* class_name, bool rank_ordered = false)
      : cls_(lockdep::register_class(class_name, rank_ordered)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    lockdep::acquire(this, cls_);
    try {
      m_.lock();
    } catch (...) {
      lockdep::release(this);
      throw;
    }
  }

  void unlock() {
    m_.unlock();
    lockdep::release(this);
  }

  /// Deadlock-free probe: held-set bookkeeping happens on success, but no
  /// violation can fire — reverse-order trylock is a legitimate idiom.
  bool try_lock() {
    if (!m_.try_lock()) return false;
    lockdep::acquire_trylock(this, cls_);
    return true;
  }

  /// The raw mutex, for the TimeKeeper/CondVar substrate only. Locking it
  /// directly bypasses all checking.
  [[nodiscard]] std::mutex& native() noexcept { return m_; }
  [[nodiscard]] lockdep::ClassId lockdep_class() const noexcept { return cls_; }

 private:
  std::mutex m_;
  lockdep::ClassId cls_;
};

/// Scoped lock over dbg::Mutex (drop-in for std::lock_guard<std::mutex>).
using LockGuard = std::lock_guard<Mutex>;

/// Movable lock over dbg::Mutex (drop-in for std::unique_lock<std::mutex>).
/// `inner()` exposes the underlying std::unique_lock so sim::CondVar (the
/// unchecked substrate) can park on it; use dbg::CondVar instead of reaching
/// for it directly.
class UniqueLock {
 public:
  UniqueLock() noexcept = default;
  explicit UniqueLock(Mutex& m) : mx_(&m), inner_(m.native(), std::defer_lock) {
    lock();
  }
  UniqueLock(Mutex& m, std::defer_lock_t) noexcept
      : mx_(&m), inner_(m.native(), std::defer_lock) {}

  UniqueLock(UniqueLock&& o) noexcept
      : mx_(o.mx_), inner_(std::move(o.inner_)) {
    o.mx_ = nullptr;
  }
  UniqueLock& operator=(UniqueLock&& o) noexcept {
    if (this == &o) return *this;
    if (owns_lock()) unlock();
    mx_ = o.mx_;
    inner_ = std::move(o.inner_);
    o.mx_ = nullptr;
    return *this;
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  ~UniqueLock() {
    if (owns_lock()) unlock();
  }

  void lock() {
    lockdep::acquire(mx_, mx_->lockdep_class());
    try {
      inner_.lock();
    } catch (...) {
      lockdep::release(mx_);
      throw;
    }
  }

  bool try_lock() {
    if (!inner_.try_lock()) return false;
    lockdep::acquire_trylock(mx_, mx_->lockdep_class());
    return true;
  }

  void unlock() {
    inner_.unlock();
    lockdep::release(mx_);
  }

  [[nodiscard]] bool owns_lock() const noexcept { return inner_.owns_lock(); }
  [[nodiscard]] Mutex* mutex() const noexcept { return mx_; }
  [[nodiscard]] std::unique_lock<std::mutex>& inner() noexcept { return inner_; }

 private:
  Mutex* mx_ = nullptr;
  std::unique_lock<std::mutex> inner_;
};

}  // namespace doceph::dbg
