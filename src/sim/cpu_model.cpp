#include "sim/cpu_model.h"

#include <cassert>

#include "sim/exec_context.h"

namespace doceph::sim {

CpuDomain::CpuDomain(TimeKeeper& tk, std::string name, int cores, double speed)
    : tk_(tk), name_(std::move(name)), cores_(cores), speed_(speed), core_free_(tk) {
  assert(cores_ > 0 && speed_ > 0.0);
}

void CpuDomain::charge(Duration work_ns) {
  if (work_ns <= 0) return;
  const auto scaled = static_cast<Duration>(static_cast<double>(work_ns) / speed_);

  {
    std::unique_lock<std::mutex> lk(mutex_);
    core_free_.wait(lk, [this] { return busy_threads_ < cores_; });
    ++busy_threads_;
  }

  tk_.sleep_for(scaled);

  {
    const std::lock_guard<std::mutex> lk(mutex_);
    --busy_threads_;
  }
  core_free_.notify_one();

  busy_ns_.fetch_add(static_cast<std::uint64_t>(scaled), std::memory_order_relaxed);
  if (const auto& stats = ExecContext::current().stats)
    stats->cpu_ns.fetch_add(static_cast<std::uint64_t>(scaled), std::memory_order_relaxed);
}

}  // namespace doceph::sim
