#pragma once

#include <cstdint>
#include <memory>

#include "common/fault.h"
#include "common/trace.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/thread.h"
#include "sim/time_keeper.h"

namespace doceph::sim {

/// One simulation universe: clock + thread stats + timed-event service +
/// seed. Everything in a cluster (fabric, daemons, devices, benches) hangs
/// off one Env; tests create a fresh Env each and destroy it at the end.
class Env {
 public:
  explicit Env(TimeKeeper::Mode mode = TimeKeeper::Mode::virtual_time,
               std::uint64_t seed = 42)
      : keeper_(mode), scheduler_(keeper_, stats_), seed_(seed), faults_(seed),
        tracer_(seed) {
    tracer_.set_clock([this] { return keeper_.now(); });
  }

  [[nodiscard]] TimeKeeper& keeper() noexcept { return keeper_; }
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] EventScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Deterministic fault-injection registry shared by every component in
  /// this universe (see common/fault.h for the determinism contract).
  [[nodiscard]] fault::FaultRegistry& faults() noexcept { return faults_; }

  /// Universe-wide distributed tracer: every daemon, device and store in
  /// this Env records spans here (see common/trace.h for the determinism
  /// contract). Sampling is off until set_sample_every() arms it.
  [[nodiscard]] trace::Tracer& tracer() noexcept { return tracer_; }

  [[nodiscard]] Time now() const { return keeper_.now(); }

  /// Spawn a named sim thread bound to a CPU domain (may be null).
  /// Set `daemon` for service threads that park forever when idle.
  Thread spawn(std::string name, CpuDomain* domain, std::function<void()> body,
               bool daemon = false) {
    return Thread(keeper_, stats_, std::move(name), domain, std::move(body), daemon);
  }

  /// Block clock advancement while constructing multiple threads/components
  /// from an unregistered (external) thread.
  [[nodiscard]] TimeKeeper::AdvanceHold hold() { return TimeKeeper::AdvanceHold(keeper_); }

  /// Derive a deterministic RNG for a component.
  [[nodiscard]] Rng make_rng(std::uint64_t salt) const {
    return Rng(Rng::derive_seed(seed_, salt));
  }

  /// Run `body` to completion on a registered sim thread and join. The
  /// entry point for drivers (tests, benches, examples): blocking sim
  /// primitives are only legal on such threads.
  void run_on_sim_thread(const std::function<void()>& body,
                         const std::string& name = "driver") {
    Thread t(keeper_, stats_, name, nullptr, body);
    t.join();
  }

 private:
  TimeKeeper keeper_;
  StatsRegistry stats_;
  EventScheduler scheduler_;
  std::uint64_t seed_;
  fault::FaultRegistry faults_;
  trace::Tracer tracer_;
};

}  // namespace doceph::sim
