#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "sim/time_keeper.h"

namespace doceph::sim {

/// A pool of modeled CPU cores belonging to one execution domain (the host
/// of a storage node, or its DPU's ARM complex).
///
/// `charge(work)` occupies one core for work/speed of simulated time: the
/// calling thread queues if all cores are busy, then sleeps for the scaled
/// duration. Queueing delay and saturation therefore *emerge* exactly as on
/// real hardware, and cumulative busy time drives the utilization metrics in
/// Figs. 5 and 7.
class CpuDomain {
 public:
  /// `speed` scales work: 1.0 = reference core; BlueField-3 ARM cores use
  /// < 1.0, so offloaded work takes proportionally longer there.
  CpuDomain(TimeKeeper& tk, std::string name, int cores, double speed);

  CpuDomain(const CpuDomain&) = delete;
  CpuDomain& operator=(const CpuDomain&) = delete;

  /// Consume `work_ns` of reference-core CPU. Blocks (in simulated time) for
  /// queueing + execution. Accounts to the domain and to the calling
  /// thread's ThreadStats (from the ambient ExecContext).
  void charge(Duration work_ns);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int cores() const noexcept { return cores_; }
  [[nodiscard]] double speed() const noexcept { return speed_; }

  /// Cumulative busy core-nanoseconds (scaled, i.e. as observed on this
  /// domain's cores). Sample twice and divide by (elapsed * cores) for
  /// utilization over a window.
  [[nodiscard]] std::uint64_t busy_ns() const noexcept {
    return busy_ns_.load(std::memory_order_relaxed);
  }

  /// Utilization in [0,1] over a window given two busy_ns samples.
  static double utilization(std::uint64_t busy_start, std::uint64_t busy_end,
                            Duration window, int cores) noexcept {
    if (window <= 0 || cores <= 0) return 0.0;
    return static_cast<double>(busy_end - busy_start) /
           (static_cast<double>(window) * cores);
  }

 private:
  TimeKeeper& tk_;
  std::string name_;
  int cores_;
  double speed_;

  std::mutex mutex_;
  CondVar core_free_;
  int busy_threads_ = 0;
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace doceph::sim
