#pragma once

#include <atomic>
#include <functional>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace doceph::sim {

/// Thread classification, mirroring the paper's perf-based attribution
/// (§5.2): Ceph thread-naming conventions decide which component a thread's
/// CPU time belongs to.
enum class ThreadClass : int {
  messenger,    ///< "msgr-worker-*"
  objectstore,  ///< "bstore_*"
  osd,          ///< "tp_osd_tp*"
  client,       ///< bench / librados threads
  other,
};

std::string_view thread_class_name(ThreadClass c) noexcept;

/// Classify a thread by its name, following Ceph conventions.
ThreadClass classify_thread_name(std::string_view name) noexcept;

/// Per-thread counters. cpu_ns counts *modeled* CPU work charged through the
/// CpuModel; ctx_switches counts voluntary blocking events (each time the
/// thread actually blocks at a wait point), mirroring the kernel's
/// voluntary_ctxt_switches the paper reads for Table 2.
struct ThreadStats {
  std::string name;
  std::string group;  ///< CPU-domain name ("host-0", "dpu-0", "client", "")
  ThreadClass cls = ThreadClass::other;
  std::atomic<std::uint64_t> cpu_ns{0};
  std::atomic<std::uint64_t> ctx_switches{0};

  explicit ThreadStats(std::string n, std::string g = "")
      : name(std::move(n)), group(std::move(g)), cls(classify_thread_name(name)) {}
};

/// Aggregated view of one thread class.
struct ClassTotals {
  std::uint64_t cpu_ns = 0;
  std::uint64_t ctx_switches = 0;
  int threads = 0;
};

/// Registry of every sim thread's stats; owned by the SimEnv. Snapshots are
/// the raw material for Fig. 5 (CPU breakdown) and Table 2 (context switches).
class StatsRegistry {
 public:
  /// Register stats for a (new) thread; the registry keeps them alive for
  /// the lifetime of the simulation so late snapshots still see exited
  /// threads' totals. `group` tags the thread's CPU domain so aggregations
  /// can scope to storage nodes only (Fig. 5 excludes client threads).
  std::shared_ptr<ThreadStats> add(std::string name, std::string group = "");

  /// Totals per class at this instant, restricted to threads whose group
  /// starts with `group_prefix` (empty = everything).
  [[nodiscard]] std::vector<std::pair<ThreadClass, ClassTotals>> totals_by_class(
      std::string_view group_prefix = "") const;

  /// Sum of cpu_ns over threads of a class (optionally group-scoped).
  [[nodiscard]] std::uint64_t class_cpu_ns(ThreadClass c,
                                           std::string_view group_prefix = "") const;
  [[nodiscard]] std::uint64_t class_ctx_switches(
      ThreadClass c, std::string_view group_prefix = "") const;

  /// Visit every thread's stats (diagnostics).
  void for_each(const std::function<void(const ThreadStats&)>& fn) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadStats>> threads_;
};

}  // namespace doceph::sim
