#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"

#include "sim/thread.h"
#include "sim/time_keeper.h"

namespace doceph::sim {

/// Global timed-callback service: device models (links, DMA engines, disks)
/// schedule completion callbacks at absolute simulated times. Callbacks run
/// on the scheduler's own thread, outside its lock, in timestamp order
/// (FIFO at equal timestamps) — keep them short: flip state, notify a
/// CondVar, never block.
class EventScheduler {
 public:
  EventScheduler(TimeKeeper& tk, StatsRegistry& stats);
  ~EventScheduler();

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  /// Run `cb` at simulated time `t` (immediately if t is in the past).
  EventId schedule_at(Time t, Callback cb);
  EventId schedule_after(Duration d, Callback cb) {
    return schedule_at(tk_.now() + std::max<Duration>(d, 0), cb);
  }

  /// Best-effort cancel; returns true if the event had not yet fired.
  bool cancel(EventId id);

  /// Stop the service; pending events are dropped. Called by the destructor.
  void stop();

  [[nodiscard]] TimeKeeper& keeper() const noexcept { return tk_; }

 private:
  void run();

  TimeKeeper& tk_;
  dbg::Mutex mutex_{"sim.scheduler"};
  dbg::CondVar wakeup_;
  // (time, seq) -> callback: map iteration order gives temporal + FIFO order.
  std::map<std::pair<Time, EventId>, Callback> queue_;
  EventId next_id_ = 1;
  bool stopping_ = false;
  Thread thread_;  // must be last: starts running in the constructor
};

}  // namespace doceph::sim
