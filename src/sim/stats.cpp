#include "sim/stats.h"

namespace doceph::sim {

std::string_view thread_class_name(ThreadClass c) noexcept {
  switch (c) {
    case ThreadClass::messenger: return "Messenger";
    case ThreadClass::objectstore: return "ObjectStore";
    case ThreadClass::osd: return "OSD";
    case ThreadClass::client: return "Client";
    case ThreadClass::other: return "Other";
  }
  return "?";
}

ThreadClass classify_thread_name(std::string_view name) noexcept {
  if (name.starts_with("msgr-worker-")) return ThreadClass::messenger;
  if (name.starts_with("bstore_")) return ThreadClass::objectstore;
  if (name.starts_with("tp_osd_tp")) return ThreadClass::osd;
  if (name.starts_with("client") || name.starts_with("bench")) return ThreadClass::client;
  return ThreadClass::other;
}

std::shared_ptr<ThreadStats> StatsRegistry::add(std::string name, std::string group) {
  auto stats = std::make_shared<ThreadStats>(std::move(name), std::move(group));
  const std::lock_guard<std::mutex> lock(mutex_);
  threads_.push_back(stats);
  return stats;
}

std::vector<std::pair<ThreadClass, ClassTotals>> StatsRegistry::totals_by_class(
    std::string_view group_prefix) const {
  constexpr int kNumClasses = 5;
  ClassTotals totals[kNumClasses];
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& t : threads_) {
      if (!t->group.starts_with(group_prefix)) continue;
      auto& tot = totals[static_cast<int>(t->cls)];
      tot.cpu_ns += t->cpu_ns.load(std::memory_order_relaxed);
      tot.ctx_switches += t->ctx_switches.load(std::memory_order_relaxed);
      tot.threads++;
    }
  }
  std::vector<std::pair<ThreadClass, ClassTotals>> out;
  out.reserve(kNumClasses);
  for (int i = 0; i < kNumClasses; ++i)
    out.emplace_back(static_cast<ThreadClass>(i), totals[i]);
  return out;
}

std::uint64_t StatsRegistry::class_cpu_ns(ThreadClass c,
                                          std::string_view group_prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& t : threads_)
    if (t->cls == c && t->group.starts_with(group_prefix))
      sum += t->cpu_ns.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t StatsRegistry::class_ctx_switches(ThreadClass c,
                                                std::string_view group_prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& t : threads_)
    if (t->cls == c && t->group.starts_with(group_prefix))
      sum += t->ctx_switches.load(std::memory_order_relaxed);
  return sum;
}

void StatsRegistry::for_each(
    const std::function<void(const ThreadStats&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& t : threads_) fn(*t);
}

}  // namespace doceph::sim

