#include "sim/exec_context.h"

namespace doceph::sim {

ExecContext& ExecContext::current() noexcept {
  thread_local ExecContext ctx;
  return ctx;
}

}  // namespace doceph::sim
