#include "sim/time_keeper.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/thread_name.h"

namespace doceph::sim {
namespace {

// Which keeper (if any) the current OS thread is registered with, plus its
// record. A thread belongs to at most one keeper at a time.
thread_local TimeKeeper* t_keeper = nullptr;
thread_local void* t_rec = nullptr;

}  // namespace

TimeKeeper::TimeKeeper(Mode mode)
    : mode_(mode), real_start_(std::chrono::steady_clock::now()) {
  if (mode_ == Mode::virtual_time) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

TimeKeeper::~TimeKeeper() {  // NOLINT(bugprone-exception-escape): teardown stops the watchdog; a throw terminates, by design
  {
    const dbg::LockGuard lock(mutex_);
    watchdog_stop_ = true;
    watchdog_cv_.notify_all();
    assert(threads_.empty() && "threads still registered at TimeKeeper teardown");
  }
  if (watchdog_.joinable()) watchdog_.join();
}

Time TimeKeeper::now() const {
  if (mode_ == Mode::real_time) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - real_start_)
        .count();
  }
  const dbg::LockGuard lock(mutex_);
  return now_;
}

void TimeKeeper::register_current_thread(std::shared_ptr<ThreadStats> stats,
                                         bool daemon) {
  assert(t_keeper == nullptr && "thread already registered with a TimeKeeper");
  auto* rec = new ThreadRec;
  rec->name = current_thread_name();
  rec->stats = std::move(stats);
  rec->daemon = daemon;
  {
    const dbg::LockGuard lock(mutex_);
    threads_.push_back(rec);
    ++epoch_;
    parked_suspect_ = false;
  }
  t_keeper = this;
  t_rec = rec;
}

void TimeKeeper::unregister_current_thread() {
  assert(t_keeper == this && "thread not registered with this TimeKeeper");
  auto* rec = static_cast<ThreadRec*>(t_rec);
  {
    const dbg::LockGuard lock(mutex_);
    assert(!rec->blocked);
    threads_.erase(std::find(threads_.begin(), threads_.end(), rec));
    ++epoch_;
    parked_suspect_ = false;
    // Remaining threads may now all be blocked; let time move on.
    maybe_advance_locked();
  }
  delete rec;
  t_keeper = nullptr;
  t_rec = nullptr;
}

bool TimeKeeper::current_thread_registered() const { return t_keeper == this; }

int TimeKeeper::registered_threads() const {
  const dbg::LockGuard lock(mutex_);
  return static_cast<int>(threads_.size());
}

void TimeKeeper::set_deadlock_handler(std::function<void(const std::string&)> h) {
  const dbg::LockGuard lock(mutex_);
  deadlock_handler_ = std::move(h);
}

void TimeKeeper::set_deadlock_grace(std::chrono::milliseconds grace) {
  const dbg::LockGuard lock(mutex_);
  grace_ = grace;
}

TimeKeeper::ThreadRec& TimeKeeper::current_rec() {
  assert(t_keeper == this &&
         "calling thread must be registered with this TimeKeeper before blocking");
  return *static_cast<ThreadRec*>(t_rec);
}

void TimeKeeper::sleep_for(Duration d) { sleep_until(now() + std::max<Duration>(d, 0)); }

void TimeKeeper::sleep_until(Time t) {
  ThreadRec& rec = current_rec();
  dbg::UniqueLock lk(mutex_);
  (void)wait_locked(lk, rec, t);
}

bool TimeKeeper::wait_locked(dbg::UniqueLock& lk, ThreadRec& rec,
                             Time deadline) {
  if (mode_ == Mode::real_time) {
    rec.blocked = true;
    rec.notified = false;
    ++blocked_;
    if (rec.stats) rec.stats->ctx_switches.fetch_add(1, std::memory_order_relaxed);
    if (deadline == kTimeInfinity) {
      while (rec.blocked) rec.cv.wait(lk.inner());
    } else {
      const auto abs = real_start_ + std::chrono::nanoseconds(deadline);
      while (rec.blocked) {
        if (rec.cv.wait_until(lk.inner(), abs) == std::cv_status::timeout && rec.blocked) {
          rec.blocked = false;
          --blocked_;
          break;
        }
      }
    }
    return rec.notified;
  }

  // Virtual time.
  if (deadline <= now_) return false;  // already due; no block, no switch
  rec.blocked = true;
  rec.deadline = deadline;
  rec.notified = false;
  ++blocked_;
  if (rec.stats) rec.stats->ctx_switches.fetch_add(1, std::memory_order_relaxed);
  maybe_advance_locked();
  while (rec.blocked) rec.cv.wait(lk.inner());
  return rec.notified;
}

void TimeKeeper::notify_locked(ThreadRec& rec) {
  if (!rec.blocked) return;
  rec.blocked = false;
  rec.notified = true;
  --blocked_;
  ++epoch_;
  parked_suspect_ = false;
  rec.cv.notify_one();
}

void TimeKeeper::hold_advance() {
  const dbg::LockGuard lock(mutex_);
  ++holds_;
  ++epoch_;
  parked_suspect_ = false;
}

void TimeKeeper::release_advance() {
  const dbg::LockGuard lock(mutex_);
  --holds_;
  ++epoch_;
  if (holds_ == 0) maybe_advance_locked();
}

void TimeKeeper::maybe_advance_locked() {
  if (mode_ == Mode::real_time) return;
  if (threads_.empty() || blocked_ != static_cast<int>(threads_.size())) return;

  Time min_deadline = kTimeInfinity;
  for (const auto* rec : threads_)
    if (rec->blocked) min_deadline = std::min(min_deadline, rec->deadline);

  if (holds_ > 0) {
    // An external thread holds advancement. If every registered thread is
    // blocked, someone had better release that hold — arm the watchdog so a
    // registered thread blocking under its own hold (a bug) gets reported
    // instead of hanging silently.
    bool any_nondaemon = false;
    for (const auto* rec : threads_) any_nondaemon |= !rec->daemon;
    if (any_nondaemon) {
      parked_suspect_ = true;
      watchdog_cv_.notify_all();
    }
    return;
  }

  if (min_deadline == kTimeInfinity) {
    // Nothing scheduled. If only daemon service threads are parked, the
    // system is quiescent; an external notify will resume it. A parked
    // non-daemon is *suspicious* — but an unregistered external thread may
    // be about to spawn or notify, so hand the case to the watchdog rather
    // than deciding now.
    bool any_nondaemon = false;
    for (const auto* rec : threads_) any_nondaemon |= !rec->daemon;
    if (any_nondaemon) {
      parked_suspect_ = true;
      watchdog_cv_.notify_all();
    }
    return;
  }

  now_ = std::max(now_, min_deadline);
  ++epoch_;
  parked_suspect_ = false;
  for (auto* rec : threads_) {
    if (rec->blocked && rec->deadline <= now_) {
      rec->blocked = false;  // timeout wake: notified stays false
      --blocked_;
      rec->cv.notify_one();
    }
  }
}

void TimeKeeper::watchdog_loop() {
  dbg::UniqueLock lk(mutex_);
  while (!watchdog_stop_) {
    if (!parked_suspect_) {
      watchdog_cv_.wait(lk.inner());
      continue;
    }
    const std::uint64_t epoch_at_park = epoch_;
    watchdog_cv_.wait_for(lk.inner(), grace_);
    if (watchdog_stop_) break;
    if (!parked_suspect_ || epoch_ != epoch_at_park) continue;  // progress happened

    const std::string dump = state_dump_locked();
    parked_suspect_ = false;
    if (holds_ > 0) {
      // Could be a slow (real-time) external constructor rather than a
      // deadlock; warn loudly but keep waiting.
      std::fprintf(stderr,
                   "WARNING: all sim threads blocked while an AdvanceHold is "
                   "held — possible hold-while-blocking bug\n%s",
                   dump.c_str());
      continue;
    }
    if (deadlock_handler_) {
      // Run the handler without the lock (it may query the keeper), then
      // wake every blocked thread so shutdown predicates can unwind.
      auto handler = deadlock_handler_;
      lk.unlock();
      handler(dump);
      lk.lock();
      for (auto* rec : threads_) notify_locked(*rec);
      continue;
    }
    std::fprintf(stderr,
                 "FATAL: simulation deadlock — all %zu threads blocked forever\n%s",
                 threads_.size(), dump.c_str());
    std::abort();
  }
}

std::string TimeKeeper::state_dump_locked() const {
  std::ostringstream os;
  os << "simulated now=" << now_ << "ns, threads:\n";
  for (const auto* rec : threads_) {
    os << "  " << rec->name << ": " << (rec->blocked ? "BLOCKED" : "RUNNABLE");
    if (rec->blocked) {
      if (rec->deadline == kTimeInfinity)
        os << " (forever)";
      else
        os << " (until " << rec->deadline << "ns)";
    }
    os << '\n';
  }
  return os.str();
}

// ---- CondVar ----------------------------------------------------------------

CondVar::~CondVar() { assert(waiters_.empty() && "CondVar destroyed with waiters"); }

void CondVar::wait(std::unique_lock<std::mutex>& user_lock) {
  (void)wait_until(user_lock, kTimeInfinity);
}

bool CondVar::wait_until(std::unique_lock<std::mutex>& user_lock, Time deadline) {
  TimeKeeper::ThreadRec& rec = tk_.current_rec();
  dbg::UniqueLock lk(tk_.mutex_);
  waiters_.push_back(&rec);
  user_lock.unlock();
  const bool notified = tk_.wait_locked(lk, rec, deadline);
  // Remove ourselves if still queued (timeout, or a blanket wake that did not
  // come through notify_one/notify_all). Unconditional: prevents any stale
  // pointer from lingering in the deque after this frame unwinds.
  auto it = std::find(waiters_.begin(), waiters_.end(), &rec);
  if (it != waiters_.end()) waiters_.erase(it);
  lk.unlock();
  user_lock.lock();
  return notified;
}

bool CondVar::wait_for(std::unique_lock<std::mutex>& user_lock, Duration d) {
  return wait_until(user_lock, tk_.now() + std::max<Duration>(d, 0));
}

void CondVar::notify_one() {
  const dbg::LockGuard lk(tk_.mutex_);
  while (!waiters_.empty()) {
    auto* rec = waiters_.front();
    waiters_.pop_front();
    if (rec->blocked) {
      tk_.notify_locked(*rec);
      break;
    }
    // else: already timed out; it will not re-queue — skip it.
  }
}

void CondVar::notify_all() {
  const dbg::LockGuard lk(tk_.mutex_);
  for (auto* rec : waiters_) tk_.notify_locked(*rec);
  waiters_.clear();
}

}  // namespace doceph::sim
