#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "sim/time.h"

namespace doceph::sim {

/// A serially reusable device (a link direction, a DMA engine, an SSD write
/// channel): requests occupy it back-to-back. `reserve` books occupancy and
/// returns the completion instant; callers schedule their completion events
/// there. This is the token-bucket equivalent in event-driven form.
class SerialResource {
 public:
  SerialResource() = default;

  /// Book `occupancy` starting no earlier than `now`; returns completion time.
  Time reserve(Time now, Duration occupancy) {
    const std::lock_guard<std::mutex> lk(mutex_);
    const Time start = std::max(now, next_free_);
    next_free_ = start + std::max<Duration>(occupancy, 0);
    busy_ns_ += std::max<Duration>(occupancy, 0);
    return next_free_;
  }

  /// Earliest instant a new request could start.
  [[nodiscard]] Time next_free() const {
    const std::lock_guard<std::mutex> lk(mutex_);
    return next_free_;
  }

  /// Cumulative booked occupancy (for utilization reporting).
  [[nodiscard]] Duration busy_ns() const {
    const std::lock_guard<std::mutex> lk(mutex_);
    return busy_ns_;
  }

 private:
  mutable std::mutex mutex_;
  Time next_free_ = 0;
  Duration busy_ns_ = 0;
};

/// Occupancy helper: time to move `bytes` at `bytes_per_sec`.
inline Duration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0.0) return 0;
  return static_cast<Duration>(static_cast<double>(bytes) / bytes_per_sec * 1e9);
}

}  // namespace doceph::sim
