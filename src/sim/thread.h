#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "sim/exec_context.h"
#include "sim/stats.h"
#include "sim/time_keeper.h"

namespace doceph::sim {

class CpuDomain;

/// A named simulation thread: a std::thread that, before running its body,
/// names itself, registers with the TimeKeeper, allocates ThreadStats in the
/// registry, and installs the ambient ExecContext (keeper + CPU domain).
/// The constructor returns only after registration completed, so simulated
/// time cannot advance past the new thread's first wait.
///
/// join() is safe from registered sim threads: it first waits on an exit
/// latch in *simulated* time (so the clock can keep advancing while the
/// target winds down), then reaps the OS thread. Joins in the destructor.
/// `daemon` marks service threads that park forever when idle (see
/// TimeKeeper::register_current_thread).
class Thread {
 public:
  Thread() = default;

  Thread(TimeKeeper& tk, StatsRegistry& stats, std::string name, CpuDomain* domain,
         std::function<void()> body, bool daemon = false);

  Thread(Thread&&) = default;
  /// Joins the currently owned thread first, which blocks (in simulated
  /// time) and can throw via std::thread::join — hence not noexcept.
  Thread& operator=(Thread&& other) {
    if (this == &other) return *this;
    join();
    impl_ = std::move(other.impl_);
    latch_ = std::move(other.latch_);
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() { join(); }  // NOLINT(bugprone-exception-escape): join at scope exit; a throw terminates, by design

  void join();
  [[nodiscard]] bool joinable() const noexcept { return impl_.joinable(); }

 private:
  struct ExitLatch {
    TimeKeeper& tk;
    dbg::Mutex m{"sim.thread_exit"};
    dbg::CondVar cv;
    bool exited = false;
    explicit ExitLatch(TimeKeeper& keeper)
        : tk(keeper), cv(keeper, "sim.thread_exit") {}
  };

  std::thread impl_;
  std::shared_ptr<ExitLatch> latch_;
};

}  // namespace doceph::sim
