#include "sim/scheduler.h"

#include <vector>

namespace doceph::sim {

EventScheduler::EventScheduler(TimeKeeper& tk, StatsRegistry& stats)
    : tk_(tk),
      wakeup_(tk, "sim.scheduler.wakeup"),
      thread_(tk, stats, "sim-scheduler", /*domain=*/nullptr, [this] { run(); },
              /*daemon=*/true) {}

EventScheduler::~EventScheduler() {  // NOLINT(bugprone-exception-escape): teardown joins the dispatch thread; a throw terminates, by design
  stop();
  thread_.join();
}

EventScheduler::EventId EventScheduler::schedule_at(Time t, Callback cb) {
  const dbg::LockGuard lk(mutex_);
  const EventId id = next_id_++;
  queue_.emplace(std::make_pair(t, id), std::move(cb));
  wakeup_.notify_one();
  return id;
}

bool EventScheduler::cancel(EventId id) {
  const dbg::LockGuard lk(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first.second == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void EventScheduler::stop() {
  const dbg::LockGuard lk(mutex_);
  stopping_ = true;
  wakeup_.notify_all();
}

void EventScheduler::run() {
  dbg::UniqueLock lk(mutex_);
  while (!stopping_) {
    if (queue_.empty()) {
      wakeup_.wait(lk);
      continue;
    }
    const Time next = queue_.begin()->first.first;
    if (tk_.now() < next) {
      // Wait until the head is due or a new (possibly earlier) event arrives.
      (void)wakeup_.wait_until(lk, next);
      continue;
    }
    // Collect everything due, then run outside the lock so callbacks can
    // schedule further events or notify other threads freely.
    std::vector<Callback> due;
    const Time now = tk_.now();
    while (!queue_.empty() && queue_.begin()->first.first <= now) {
      due.push_back(std::move(queue_.begin()->second));
      queue_.erase(queue_.begin());
    }
    lk.unlock();
    for (auto& cb : due) cb();
    lk.lock();
  }
}

}  // namespace doceph::sim
