#pragma once

#include <memory>

#include "sim/stats.h"

namespace doceph::sim {

class TimeKeeper;
class CpuDomain;

/// Ambient per-thread execution context, established by sim::Thread (or
/// manually via ScopedExecContext for externally created threads). Cost
/// models use it to find the calling thread's CPU domain and stats without
/// threading them through every call.
struct ExecContext {
  TimeKeeper* keeper = nullptr;
  CpuDomain* domain = nullptr;          ///< may be null (housekeeping threads)
  std::shared_ptr<ThreadStats> stats;   ///< may be null

  /// Context of the calling thread (default-empty if none installed).
  static ExecContext& current() noexcept;
};

/// RAII installation of an ExecContext on the current thread.
class ScopedExecContext {
 public:
  ScopedExecContext(TimeKeeper* keeper, CpuDomain* domain,
                    std::shared_ptr<ThreadStats> stats) {
    prev_ = ExecContext::current();
    ExecContext::current() = ExecContext{keeper, domain, std::move(stats)};
  }
  ~ScopedExecContext() { ExecContext::current() = std::move(prev_); }  // NOLINT(bugprone-exception-escape): restores thread-local context; a throw terminates, by design
  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext prev_;
};

}  // namespace doceph::sim
