#include "sim/thread.h"

#include <future>

#include "common/thread_name.h"
#include "sim/cpu_model.h"

namespace doceph::sim {

Thread::Thread(TimeKeeper& tk, StatsRegistry& stats, std::string name,
               CpuDomain* domain, std::function<void()> body, bool daemon)
    : latch_(std::make_shared<ExitLatch>(tk)) {
  std::promise<void> registered;
  auto registered_future = registered.get_future();
  impl_ = std::thread([&tk, &stats, name = std::move(name), domain,
                       body = std::move(body), daemon, &registered,
                       latch = latch_]() mutable {
    set_current_thread_name(name);
    auto thread_stats =
        stats.add(std::move(name), domain != nullptr ? domain->name() : "");
    const ScopedExecContext ctx(&tk, domain, thread_stats);
    const TimeKeeper::ThreadGuard guard(tk, thread_stats, daemon);
    registered.set_value();  // spawner may proceed; `registered` dies after this
    body();
    // Signal the exit latch while still registered: a sim-thread joiner
    // wakes in simulated time, and only the (instant, real-time) OS reap
    // remains after we unregister.
    const dbg::LockGuard lk(latch->m);
    latch->exited = true;
    latch->cv.notify_all();
  });
  // Real-time wait (not simulated): the spawner stays RUNNABLE, so the clock
  // cannot advance while we synchronize.
  registered_future.wait();
}

void Thread::join() {
  if (!impl_.joinable()) return;
  if (latch_ != nullptr && latch_->tk.current_thread_registered()) {
    dbg::UniqueLock lk(latch_->m);
    latch_->cv.wait(lk, [&] { return latch_->exited; });
  }
  impl_.join();
}

}  // namespace doceph::sim
