#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dbg/mutex.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace doceph::sim {

class CondVar;

/// The simulation clock and thread coordinator.
///
/// In `virtual_time` mode (the default for tests and benches), every
/// participating thread registers with the keeper and performs ALL blocking
/// through keeper primitives (sleep_* or sim::CondVar). When every registered
/// thread is blocked, the keeper advances the clock to the earliest wake
/// deadline — so a simulated minute of cluster traffic finishes in wall
/// milliseconds, deterministically, regardless of host core count.
///
/// In `real_time` mode the same API maps onto the steady clock and real
/// waits; used by the interactive examples.
///
/// Discipline: a registered thread must never block on a bare std::
/// primitive for unbounded time — that would stall virtual time. std::mutex
/// critical sections are fine (they take zero simulated time).
class TimeKeeper {
 public:
  enum class Mode { virtual_time, real_time };

  explicit TimeKeeper(Mode mode = Mode::virtual_time);
  ~TimeKeeper();

  TimeKeeper(const TimeKeeper&) = delete;
  TimeKeeper& operator=(const TimeKeeper&) = delete;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] Time now() const;

  /// Block the calling (registered) thread for `d` of simulated time.
  void sleep_for(Duration d);
  void sleep_until(Time t);

  /// Register / unregister the calling thread. Threads must be registered
  /// before sleeping or waiting on a sim::CondVar. `stats` may be null
  /// (e.g. housekeeping threads).
  ///
  /// `daemon` marks service threads that legitimately park forever waiting
  /// for work (event loops, thread pools, the scheduler). When every
  /// registered thread is blocked without a deadline, the keeper reports a
  /// deadlock only if a non-daemon thread is among them; an all-daemon
  /// quiescent system simply parks until an external notify.
  void register_current_thread(std::shared_ptr<ThreadStats> stats, bool daemon = false);
  void unregister_current_thread();

  /// RAII registration for externally created threads (gtest main thread...).
  class ThreadGuard {
   public:
    ThreadGuard(TimeKeeper& tk, std::shared_ptr<ThreadStats> stats = nullptr,
                bool daemon = false)
        : tk_(tk) {
      tk_.register_current_thread(std::move(stats), daemon);
    }
    ~ThreadGuard() { tk_.unregister_current_thread(); }  // NOLINT(bugprone-exception-escape): unregister takes the keeper lock; a throw terminates, by design
    ThreadGuard(const ThreadGuard&) = delete;
    ThreadGuard& operator=(const ThreadGuard&) = delete;

   private:
    TimeKeeper& tk_;
  };

  [[nodiscard]] int registered_threads() const;

  /// True iff the calling thread is registered with *this* keeper.
  [[nodiscard]] bool current_thread_registered() const;

  /// Invoked if the simulation deadlocks: every registered thread blocked
  /// with no wake deadline, at least one of them a non-daemon, and no state
  /// change for the grace period (an unregistered external thread — e.g. a
  /// test's main — may legitimately be about to spawn or notify, so the
  /// check is watchdog-based rather than instantaneous). Default prints a
  /// state dump and aborts. Tests override this to assert on detection;
  /// the handler should set shutdown predicates — all threads are then
  /// woken so predicate loops can unwind.
  void set_deadlock_handler(std::function<void(const std::string&)> h);

  /// Grace period (real time) before a suspected deadlock is reported.
  void set_deadlock_grace(std::chrono::milliseconds grace);

  /// While any AdvanceHold is alive the clock will not advance, even if all
  /// registered threads are blocked. Unregistered external threads (a test's
  /// main, cluster bring-up code) take one while spawning/configuring so the
  /// simulation cannot run ahead between two constructions; drop it before
  /// joining or waiting for results.
  class AdvanceHold {
   public:
    explicit AdvanceHold(TimeKeeper& tk) : tk_(&tk) { tk_->hold_advance(); }
    ~AdvanceHold() { release(); }  // NOLINT(bugprone-exception-escape): release takes the keeper lock; a throw terminates, by design
    AdvanceHold(AdvanceHold&& o) noexcept : tk_(o.tk_) { o.tk_ = nullptr; }
    AdvanceHold& operator=(AdvanceHold&&) = delete;
    AdvanceHold(const AdvanceHold&) = delete;
    AdvanceHold& operator=(const AdvanceHold&) = delete;

    /// Early release (idempotent).
    void release() {
      if (tk_ != nullptr) {
        tk_->release_advance();
        tk_ = nullptr;
      }
    }

   private:
    TimeKeeper* tk_;
  };

 private:
  friend class CondVar;

  struct ThreadRec {
    std::string name;
    std::shared_ptr<ThreadStats> stats;
    bool daemon = false;
    bool blocked = false;
    Time deadline = kTimeInfinity;
    bool notified = false;
    std::condition_variable cv;
  };

  /// Returns this thread's record; requires prior registration with *this*.
  ThreadRec& current_rec();

  /// Core wait: blocks rec until notified or simulated `deadline` passes.
  /// Requires `lk` to hold mutex_. Returns true iff woken by a notify.
  bool wait_locked(dbg::UniqueLock& lk, ThreadRec& rec, Time deadline);

  /// Wake a blocked record with "notified" semantics. Requires mutex_ held.
  void notify_locked(ThreadRec& rec);

  /// If all registered threads are blocked, advance the clock to the
  /// earliest deadline and wake the threads due then. Requires mutex_ held.
  void maybe_advance_locked();

  [[nodiscard]] std::string state_dump_locked() const;

  void watchdog_loop();
  void hold_advance();
  void release_advance();

  // Lockdep-tracked: the keeper's mutex is the terminal node of the lock
  // hierarchy — every notify/now() reaches it, so nothing may be acquired
  // while holding it.
  mutable dbg::Mutex mutex_{"sim.timekeeper"};
  Mode mode_;
  Time now_ = 0;  // virtual mode only
  std::chrono::steady_clock::time_point real_start_;
  std::vector<ThreadRec*> threads_;
  int blocked_ = 0;
  std::function<void(const std::string&)> deadlock_handler_;

  // Deadlock watchdog (virtual mode): `epoch_` bumps on every state change
  // (register/unregister/notify/advance). When the system parks with a
  // non-daemon blocked forever, the watchdog samples the epoch; if it is
  // unchanged after the grace period, the deadlock path fires.
  std::uint64_t epoch_ = 0;
  int holds_ = 0;
  bool parked_suspect_ = false;
  std::chrono::milliseconds grace_{2000};
  bool watchdog_stop_ = false;
  std::condition_variable watchdog_cv_;  // real; paired with mutex_
  std::thread watchdog_;
};

/// Condition variable integrated with the TimeKeeper: waits park the thread
/// in simulated time; notifies wake it at the current simulated instant.
/// Usage is identical to std::condition_variable (user mutex + predicate
/// loop); wait_until/wait_for return false on timeout.
class CondVar {
 public:
  explicit CondVar(TimeKeeper& tk) noexcept : tk_(tk) {}
  ~CondVar();

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(std::unique_lock<std::mutex>& user_lock);
  [[nodiscard]] bool wait_until(std::unique_lock<std::mutex>& user_lock, Time deadline);
  [[nodiscard]] bool wait_for(std::unique_lock<std::mutex>& user_lock, Duration d);

  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& user_lock, Pred pred) {
    while (!pred()) wait(user_lock);
  }

  /// Waits until pred() or the deadline; returns pred() (std-compatible).
  template <typename Pred>
  bool wait_until(std::unique_lock<std::mutex>& user_lock, Time deadline, Pred pred) {
    while (!pred()) {
      if (!wait_until(user_lock, deadline)) return pred();
    }
    return true;
  }

  void notify_one();
  void notify_all();

  [[nodiscard]] TimeKeeper& keeper() const noexcept { return tk_; }

 private:
  TimeKeeper& tk_;
  std::deque<TimeKeeper::ThreadRec*> waiters_;  // guarded by tk_.mutex_
};

}  // namespace doceph::sim
