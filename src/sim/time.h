#pragma once

#include <cstdint>
#include <limits>

namespace doceph::sim {

/// Simulated time: nanoseconds since simulation start.
using Time = std::int64_t;
/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

inline constexpr Duration operator""_ns(unsigned long long v) {
  return static_cast<Duration>(v);
}
inline constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v) * 1000;
}
inline constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * 1000 * 1000;
}
inline constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * 1000 * 1000 * 1000;
}

inline constexpr double to_seconds(Duration d) { return static_cast<double>(d) * 1e-9; }
inline constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9);
}

}  // namespace doceph::sim
