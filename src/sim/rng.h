#pragma once

#include <cstdint>
#include <random>

namespace doceph::sim {

/// Deterministic per-component random source. Components derive their own
/// streams from the environment seed + a stable salt so that adding a
/// component does not perturb others' sequences.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent stream (splitmix-style mixing of seed and salt).
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t seed,
                                                 std::uint64_t salt) noexcept {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// True with probability p.
  bool chance(double p) { return uniform01() < p; }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace doceph::sim
