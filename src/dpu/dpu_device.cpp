#include "dpu/dpu_device.h"

namespace doceph::dpu {

DpuDevice::DpuDevice(sim::Env& env, net::Fabric& fabric, const std::string& name,
                     DpuProfile profile)
    : env_(env),
      name_(name),
      profile_(profile),
      cpu_(env.keeper(), name, profile.cores, profile.core_speed),
      net_(fabric.add_node(name, profile.nic, profile.stack)),
      pcie_(profile.pcie),
      dma_(env, pcie_, profile.dma, name) {
  comch_name_ = name;  // scope comch fault specs to this device
  reset_comch();
}

void DpuDevice::reset_comch() {
  doca::CommChannelConfig comch_cfg = profile_.comch;
  comch_cfg.name = comch_name_;
  auto [host_end, dpu_end] = doca::CommChannel::create_pair(env_, pcie_, comch_cfg);
  host_ch_ = std::move(host_end);
  dpu_ch_ = std::move(dpu_end);
}

}  // namespace doceph::dpu
