#pragma once

#include <memory>
#include <string>

#include "doca/comm_channel.h"
#include "doca/dma_engine.h"
#include "doca/pcie_link.h"
#include "net/fabric.h"
#include "sim/cpu_model.h"
#include "sim/env.h"

namespace doceph::dpu {

/// Characteristics of the BlueField-3-class SoC we model: ARM core complex
/// (slower than the host's x86 cores), its own network identity (the
/// ConnectX NIC terminates here in DPU mode), and the PCIe attachment.
struct DpuProfile {
  int cores = 16;        ///< BF-3: 16x Cortex-A78
  double core_speed = 0.45;  ///< per-core throughput vs. the EPYC host core
  net::NicProfile nic;       ///< the integrated ConnectX-7
  net::StackModel stack;     ///< DPU-side kernel stack costs (same code path)
  doca::PcieLinkConfig pcie;
  doca::DmaConfig dma;
  doca::CommChannelConfig comch;
};

/// One DPU: an execution domain with its own cores and OS, a fabric
/// endpoint, and the DOCA devices (comm channel + DMA engine) that connect
/// it to its host. In DoCeph mode the whole OSD runs on `cpu()` and talks
/// to the host exclusively through these devices.
class DpuDevice {
 public:
  DpuDevice(sim::Env& env, net::Fabric& fabric, const std::string& name,
            DpuProfile profile);

  DpuDevice(const DpuDevice&) = delete;
  DpuDevice& operator=(const DpuDevice&) = delete;

  [[nodiscard]] sim::CpuDomain& cpu() noexcept { return cpu_; }
  [[nodiscard]] net::NetNode& net_node() noexcept { return net_; }
  [[nodiscard]] doca::PcieLink& pcie() noexcept { return pcie_; }
  [[nodiscard]] doca::DmaEngine& dma() noexcept { return dma_; }

  /// Host-side / DPU-side endpoints of the control channel.
  [[nodiscard]] doca::CommChannelRef host_comch() noexcept { return host_ch_; }
  [[nodiscard]] doca::CommChannelRef dpu_comch() noexcept { return dpu_ch_; }

  /// Re-establish the control channel after a teardown closed it (the
  /// CommChannel negotiation a restarted host service performs in real
  /// DOCA). The old endpoints stay closed; callers must fetch the new ones
  /// via host_comch()/dpu_comch().
  void reset_comch();

  [[nodiscard]] const DpuProfile& profile() const noexcept { return profile_; }
  /// Device name ("dpu.0", ...): scopes trace domains and fault matches.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  sim::Env& env_;
  std::string name_;
  DpuProfile profile_;
  sim::CpuDomain cpu_;
  net::NetNode& net_;
  doca::PcieLink pcie_;
  doca::DmaEngine dma_;
  std::string comch_name_;
  doca::CommChannelRef host_ch_;
  doca::CommChannelRef dpu_ch_;
};

}  // namespace doceph::dpu
