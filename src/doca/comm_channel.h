#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/buffer.h"
#include "common/result.h"
#include "doca/pcie_link.h"
#include "event/event_center.h"
#include "sim/cpu_model.h"
#include "sim/env.h"

namespace doceph::doca {

/// Message-based host<->DPU control channel (DOCA Comch). Messages are
/// size-capped (the hardware limit that forces bulk data onto the DMA
/// engine), delivered in order over the PCIe link model, and received either
/// by callback into an EventCenter or by blocking recv.
struct CommChannelConfig {
  std::size_t max_msg_size = 4080;       ///< DOCA comch default-ish cap
  sim::Duration per_msg_overhead = 6'000;  ///< driver/doorbell ns per message
  double cpu_ns_per_byte = 0.15;           ///< send/recv marshalling cost
  /// Fault scope: "doca.comch_stall"/"doca.comch_drop" specs match against
  /// "<name>/h2d" or "<name>/d2h" per message direction.
  std::string name;
};

class CommChannel;
using CommChannelRef = std::shared_ptr<CommChannel>;

/// One endpoint of the channel. Endpoints are created in pairs via
/// CommChannel::create_pair.
class CommChannel {
 public:
  /// side 0 = host, side 1 = DPU (affects which PCIe direction is booked).
  static std::pair<CommChannelRef, CommChannelRef> create_pair(
      sim::Env& env, PcieLink& link, CommChannelConfig cfg = {});

  /// Send one message (<= max_msg_size). The calling thread's CPU domain is
  /// charged for marshalling. Errc::too_large if over the cap;
  /// Errc::not_connected after close.
  Status send(BufferList msg);

  /// Deliver inbound messages as callbacks in `center`'s thread.
  void set_recv_handler(event::EventCenter& center,
                        std::function<void(BufferList)> handler);

  /// Blocking receive (sim time); empty optional on timeout/close.
  std::optional<BufferList> recv(sim::Duration timeout);

  void close();
  [[nodiscard]] bool closed() const;

  [[nodiscard]] const CommChannelConfig& config() const noexcept;

  /// Messages sent from this endpoint (diagnostics).
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  struct Core;
  CommChannel(std::shared_ptr<Core> core, int side)
      : core_(std::move(core)), side_(side) {}

  std::shared_ptr<Core> core_;
  int side_;
  std::uint64_t sent_ = 0;
};

}  // namespace doceph::doca
