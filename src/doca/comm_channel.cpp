#include "doca/comm_channel.h"

#include <algorithm>
#include <atomic>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "sim/exec_context.h"

namespace doceph::doca {

struct CommChannel::Core : std::enable_shared_from_this<CommChannel::Core> {
  Core(sim::Env& e, PcieLink& l, CommChannelConfig c) : env(e), link(l), cfg(c) {}

  sim::Env& env;
  PcieLink& link;
  CommChannelConfig cfg;

  struct Side {
    std::deque<BufferList> inbox;  // delivered, unconsumed
    event::EventCenter::Handle center;
    std::function<void(BufferList)> handler;
    bool notify_pending = false;
    std::unique_ptr<dbg::CondVar> recv_cv;  // for blocking recv
  };

  dbg::Mutex m{"doca.comch"};
  Side side[2] DOCEPH_GUARDED_BY(m);
  bool closed DOCEPH_GUARDED_BY(m) = false;

  // Earliest permitted delivery per direction after a comch_stall fault;
  // keeps fragmented RPC messages in order (index = receiving side).
  std::atomic<std::int64_t> min_deliver[2] = {{0}, {0}};

  void deliver(int to, BufferList msg) {
    const dbg::LockGuard lk(m);
    if (closed) return;  // late delivery after teardown: drop
    Side& s = side[to];
    s.inbox.push_back(std::move(msg));
    if (s.recv_cv) s.recv_cv->notify_all();
    arm_locked(to);
  }

  /// Queue a handler drain for side `to` if one is registered and not
  /// already pending. Requires m held.
  void arm_locked(int to) DOCEPH_REQUIRES(m) {
    Side& s = side[to];
    if (s.handler != nullptr && !s.notify_pending && !s.inbox.empty()) {
      s.notify_pending = true;
      s.center.dispatch([self = shared_from_this(), to] {
        // Drain everything available, invoking the handler per message with
        // the marshalling cost charged to the handler thread's domain.
        while (true) {
          BufferList msg;
          std::function<void(BufferList)> handler;
          {
            const dbg::LockGuard lk2(self->m);
            Side& side = self->side[to];
            side.notify_pending = false;
            if (side.inbox.empty() || side.handler == nullptr) return;
            msg = std::move(side.inbox.front());
            side.inbox.pop_front();
            handler = side.handler;
            side.notify_pending = true;  // keep draining in this dispatch
          }
          if (auto* d = sim::ExecContext::current().domain) {
            d->charge(self->cfg.per_msg_overhead +
                      static_cast<sim::Duration>(self->cfg.cpu_ns_per_byte *
                                                 static_cast<double>(msg.length())));
          }
          handler(std::move(msg));
        }
      });
    }
  }
};

std::pair<CommChannelRef, CommChannelRef> CommChannel::create_pair(
    sim::Env& env, PcieLink& link, CommChannelConfig cfg) {
  auto core = std::make_shared<Core>(env, link, cfg);
  CommChannelRef host(new CommChannel(core, 0));
  CommChannelRef dpu(new CommChannel(core, 1));
  return {std::move(host), std::move(dpu)};
}

const CommChannelConfig& CommChannel::config() const noexcept { return core_->cfg; }

Status CommChannel::send(BufferList msg) {
  Core& c = *core_;
  {
    const dbg::LockGuard lk(c.m);
    if (c.closed) return Status(Errc::not_connected, "comm channel closed");
  }
  if (msg.length() > c.cfg.max_msg_size)
    return Status(Errc::too_large, "message exceeds comch cap");

  // Marshalling cost on the sender.
  if (auto* d = sim::ExecContext::current().domain) {
    d->charge(c.cfg.per_msg_overhead +
              static_cast<sim::Duration>(c.cfg.cpu_ns_per_byte *
                                         static_cast<double>(msg.length())));
  }

  const int to = 1 - side_;
  const sim::Time now = c.env.now();
  sim::Time arrival = side_ == 0 ? c.link.reserve_h2d(now, msg.length())
                                 : c.link.reserve_d2h(now, msg.length());
  ++sent_;

  // Fault hooks: a dropped message silently never arrives (the peer sees a
  // stalled channel — this is how chaos tests partition DPU from host); a
  // stall adds delivery latency. Scope is "<name>/h2d" or "<name>/d2h".
  auto& faults = c.env.faults();
  if (faults.any_armed()) {
    const std::string scope = c.cfg.name + (side_ == 0 ? "/h2d" : "/d2h");
    if (faults.should_fire("doca.comch_drop", now, scope)) return Status::OK();
    const fault::FaultHit stall = faults.hit("doca.comch_stall", now, scope);
    if (stall.fired) {
      arrival += static_cast<sim::Duration>(stall.delay_ns != 0 ? stall.delay_ns
                                                                : 1'000'000);
      std::int64_t cur = c.min_deliver[to].load(std::memory_order_relaxed);
      while (cur < arrival && !c.min_deliver[to].compare_exchange_weak(
                                  cur, arrival, std::memory_order_relaxed)) {
      }
    }
    arrival = std::max(arrival,
                       sim::Time{c.min_deliver[to].load(std::memory_order_relaxed)});
  }
  c.env.scheduler().schedule_at(
      arrival, [core = core_, to, msg = std::move(msg)]() mutable {
        core->deliver(to, std::move(msg));
      });
  return Status::OK();
}

void CommChannel::set_recv_handler(event::EventCenter& center,
                                   std::function<void(BufferList)> handler) {
  Core& c = *core_;
  const dbg::LockGuard lk(c.m);
  c.side[side_].center = center.handle();
  c.side[side_].handler = std::move(handler);
  c.arm_locked(side_);  // drain anything queued before the handler existed
}

std::optional<BufferList> CommChannel::recv(sim::Duration timeout) {
  Core& c = *core_;
  dbg::UniqueLock lk(c.m);
  Core::Side& s = c.side[side_];
  if (!s.recv_cv) s.recv_cv = std::make_unique<dbg::CondVar>(c.env.keeper(), "doca.comch.recv");
  const sim::Time deadline = c.env.now() + timeout;
  while (s.inbox.empty() && !c.closed) {
    if (!s.recv_cv->wait_until(lk, deadline)) break;
  }
  if (s.inbox.empty()) return std::nullopt;
  BufferList msg = std::move(s.inbox.front());
  s.inbox.pop_front();
  lk.unlock();
  if (auto* d = sim::ExecContext::current().domain) {
    d->charge(c.cfg.per_msg_overhead +
              static_cast<sim::Duration>(c.cfg.cpu_ns_per_byte *
                                         static_cast<double>(msg.length())));
  }
  return msg;
}

void CommChannel::close() {
  Core& c = *core_;
  const dbg::LockGuard lk(c.m);
  c.closed = true;
  for (auto& s : c.side) {
    // Detach handlers: pending dispatches hold the Core alive, but the
    // registered EventCenters are about to be destroyed by their owners.
    s.center = {};
    s.handler = nullptr;
    if (s.recv_cv) s.recv_cv->notify_all();
  }
}

bool CommChannel::closed() const {
  const dbg::LockGuard lk(core_->m);
  return core_->closed;
}

}  // namespace doceph::doca
