#pragma once

#include <cstdint>
#include <memory>

#include "common/buffer.h"

namespace doceph::doca {

/// A registered memory region visible to the DMA engine (DOCA's doca_mmap).
/// In this simulation both sides live in one process, so "export/import" is
/// sharing the MmapRef; the negotiation *cost* is modeled by the CommChannel
/// round trips the proxy performs (see ProxyConfig::mr_cache).
class Mmap {
 public:
  explicit Mmap(std::size_t size) : storage_(Slice::allocate(size)) {
    std::memset(storage_.mutable_data(), 0, size);
  }

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] char* data() noexcept { return storage_.mutable_data(); }
  [[nodiscard]] const char* data() const noexcept { return storage_.data(); }

  /// Zero-copy view of [off, off+len) as a BufferList slice.
  [[nodiscard]] BufferList view(std::size_t off, std::size_t len) const {
    BufferList bl;
    bl.append(storage_.subslice(off, len));
    return bl;
  }

 private:
  Slice storage_;
};

using MmapRef = std::shared_ptr<Mmap>;

/// A region handle within an Mmap (DOCA's doca_buf).
struct Buf {
  MmapRef mmap;
  std::size_t off = 0;
  std::size_t len = 0;

  [[nodiscard]] bool valid() const noexcept {
    return mmap != nullptr && off + len <= mmap->size();
  }
  [[nodiscard]] char* data() const noexcept { return mmap->data() + off; }
};

}  // namespace doceph::doca
