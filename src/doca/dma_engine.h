#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "doca/mmap.h"
#include "doca/pcie_link.h"
#include "sim/env.h"

namespace doceph::doca {

/// The DPU's DMA copy engine (DOCA DMA). Jobs move bytes between host and
/// DPU memory regions over the PCIe link without CPU involvement. The
/// defining hardware constraint from the paper (§3.3, [Kashyap et al.]):
/// a single job may move at most ~2 MB, which forces DoCeph's segmentation
/// and pipelining machinery into existence.
struct DmaConfig {
  std::uint64_t max_transfer = 2 << 20;  ///< hardware job-size cap
  double bw_bytes_per_sec = 2.6e9;       ///< effective engine bandwidth
  /// Job setup (descriptor write + doorbell + completion): latency added to
  /// each job but overlappable across jobs — pipelined segments hide it.
  sim::Duration setup_latency = 280'000;  // 280 us, fit from paper Table 3
  int queue_depth = 64;
};

enum class DmaDir { dpu_to_host, host_to_dpu };

/// One source->destination extent of a scatter-gather job. Lengths must
/// match; a single extent may not exceed the hardware transfer cap.
struct DmaExtent {
  Buf src;
  Buf dst;
};

class DmaEngine {
 public:
  using JobCb = std::function<void(Status)>;
  /// Per-extent completion fan-out for scatter-gather jobs: called once per
  /// extent (in extent order within each pass) with the extent's index.
  using ExtentCb = std::function<void(std::size_t index, Status)>;

  /// `name` scopes this engine's faults: a "doca.dma_error" spec with
  /// match=<name> hits only this engine.
  DmaEngine(sim::Env& env, PcieLink& link, DmaConfig cfg, std::string name = "");

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Submit a copy job; `cb` fires at modeled completion (success or
  /// injected failure). Fails fast with too_large (over the hardware cap),
  /// invalid_argument (bad bufs / length mismatch) or busy (queue full).
  /// A sampled `ctx` records a "doca.dma_job" span for this job (the source
  /// offset disambiguates same-op segments).
  Status submit(const Buf& src, const Buf& dst, DmaDir dir, JobCb cb,
                const trace::TraceContext& ctx = {});

  /// Submit one scatter-gather job: consecutive extents are greedy-packed
  /// into engine passes, splitting ONLY at the hardware transfer cap, so a
  /// batch of small payloads pays one setup latency per <=2MB pass instead
  /// of one per extent. `cb` fires once per extent. Fault injection stays
  /// per-extent: "doca.dma_error" is consulted once per extent with scope
  /// "<name>#<index>", and a firing fails only that extent — the rest of
  /// the pass completes normally. A sampled `ctx` records one
  /// "doca.dma_job" span per extent (disambiguated by source offset).
  Status submit_sg(const std::vector<DmaExtent>& extents, DmaDir dir,
                   ExtentCb cb, const trace::TraceContext& ctx = {});

  [[nodiscard]] const DmaConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return jobs_done_; }
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t jobs_failed() const noexcept { return failed_; }
  /// Total engine passes issued: one per submit(), one per <=cap chunk of
  /// each scatter-gather job. passes < extents is the amortization win.
  [[nodiscard]] std::uint64_t sg_passes() const noexcept { return passes_; }
  [[nodiscard]] int inflight() const noexcept { return inflight_.load(); }

  /// Error injection, backed by the env's FaultRegistry "doca.dma_error"
  /// point scoped to this engine's name: every job fails with probability
  /// `rate`; `fail_next(n)` deterministically fails the next n jobs.
  /// Equivalent to `fault set doca.dma_error p=<rate> match=<name>` on the
  /// admin socket.
  void set_failure_rate(double rate);
  void fail_next(int n);

 private:
  sim::Env& env_;
  PcieLink& link_;
  DmaConfig cfg_;
  std::string name_;

  sim::SerialResource engine_;

  std::atomic<int> inflight_{0};
  std::atomic<std::uint64_t> jobs_done_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> passes_{0};
};

}  // namespace doceph::doca
