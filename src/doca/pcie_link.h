#pragma once

#include "sim/resource.h"

namespace doceph::doca {

/// Model of the PCIe path between a host and its DPU: full-duplex bandwidth
/// (independent per direction) plus a per-transaction latency floor. Shared
/// by the CommChannel and the DMA engine of one DpuDevice, so heavy DMA
/// traffic delays control messages exactly as on real hardware.
struct PcieLinkConfig {
  double bw_bytes_per_sec = 26e9;   ///< ~PCIe Gen5 x8 effective
  sim::Duration latency = 2'000;    ///< 2 us per transaction
};

class PcieLink {
 public:
  explicit PcieLink(PcieLinkConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const PcieLinkConfig& config() const noexcept { return cfg_; }

  /// Book a host->DPU transfer; returns completion time.
  sim::Time reserve_h2d(sim::Time now, std::uint64_t bytes) {
    return h2d_.reserve(now, sim::transfer_time(bytes, cfg_.bw_bytes_per_sec)) +
           cfg_.latency;
  }
  sim::Time reserve_d2h(sim::Time now, std::uint64_t bytes) {
    return d2h_.reserve(now, sim::transfer_time(bytes, cfg_.bw_bytes_per_sec)) +
           cfg_.latency;
  }

  [[nodiscard]] sim::Duration busy_h2d() const { return h2d_.busy_ns(); }
  [[nodiscard]] sim::Duration busy_d2h() const { return d2h_.busy_ns(); }

 private:
  PcieLinkConfig cfg_;
  sim::SerialResource h2d_;
  sim::SerialResource d2h_;
};

}  // namespace doceph::doca
