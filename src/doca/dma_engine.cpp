#include "doca/dma_engine.h"

#include <cstring>

namespace doceph::doca {

DmaEngine::DmaEngine(sim::Env& env, PcieLink& link, DmaConfig cfg, std::string name)
    : env_(env), link_(link), cfg_(cfg), name_(std::move(name)) {}

void DmaEngine::set_failure_rate(double rate) {
  fault::FaultSpec spec;
  spec.probability = rate;
  spec.match = name_;
  env_.faults().set("doca.dma_error", std::move(spec));
}

void DmaEngine::fail_next(int n) { env_.faults().fire_next("doca.dma_error", n, name_); }

Status DmaEngine::submit(const Buf& src, const Buf& dst, DmaDir dir, JobCb cb,
                         const trace::TraceContext& ctx) {
  if (!src.valid() || !dst.valid() || src.len != dst.len || src.len == 0)
    return Status(Errc::invalid_argument, "bad dma buffers");
  if (src.len > cfg_.max_transfer)
    return Status(Errc::too_large,
                  "dma job exceeds hardware transfer cap (" +
                      std::to_string(cfg_.max_transfer) + " bytes)");
  if (inflight_.load(std::memory_order_relaxed) >= cfg_.queue_depth)
    return Status(Errc::busy, "dma queue full");

  inflight_.fetch_add(1);
  const sim::Time now = env_.now();
  const bool fail = env_.faults().should_fire("doca.dma_error", now, name_);
  // The engine serializes jobs at its own (lower) bandwidth; the PCIe link
  // is booked too so DMA and CommChannel traffic contend realistically.
  // Setup is latency, not occupancy: pipelined segments hide it (§3.3).
  const sim::Time engine_done =
      engine_.reserve(now, sim::transfer_time(src.len, cfg_.bw_bytes_per_sec));
  const sim::Time pcie_done = dir == DmaDir::dpu_to_host
                                  ? link_.reserve_d2h(now, src.len)
                                  : link_.reserve_h2d(now, src.len);
  const sim::Time done = std::max(engine_done, pcie_done) + cfg_.setup_latency;
  if (ctx.sampled()) {
    // The modeled completion time is known at submit, so the job span is
    // recorded retrospectively up front (crash-safe: it is in the ring even
    // if the callback never runs).
    env_.tracer().record_span("doca.dma_job", "dma." + name_, ctx, now, done,
                              src.off);
  }

  env_.scheduler().schedule_at(done, [this, src, dst, fail, cb = std::move(cb)] {
    inflight_.fetch_sub(1);
    if (fail) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      cb(Status(Errc::channel_error, "dma transfer error"));
      return;
    }
    std::memcpy(dst.data(), src.data(), src.len);
    jobs_done_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(src.len, std::memory_order_relaxed);
    cb(Status::OK());
  });
  return Status::OK();
}

}  // namespace doceph::doca
