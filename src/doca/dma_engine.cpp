#include "doca/dma_engine.h"

#include <cstring>

namespace doceph::doca {

DmaEngine::DmaEngine(sim::Env& env, PcieLink& link, DmaConfig cfg, std::string name)
    : env_(env), link_(link), cfg_(cfg), name_(std::move(name)) {}

void DmaEngine::set_failure_rate(double rate) {
  fault::FaultSpec spec;
  spec.probability = rate;
  spec.match = name_;
  env_.faults().set("doca.dma_error", std::move(spec));
}

void DmaEngine::fail_next(int n) { env_.faults().fire_next("doca.dma_error", n, name_); }

Status DmaEngine::submit(const Buf& src, const Buf& dst, DmaDir dir, JobCb cb,
                         const trace::TraceContext& ctx) {
  return submit_sg({DmaExtent{src, dst}}, dir,
                   [cb = std::move(cb)](std::size_t, Status st) { cb(std::move(st)); },
                   ctx);
}

Status DmaEngine::submit_sg(const std::vector<DmaExtent>& extents, DmaDir dir,
                            ExtentCb cb, const trace::TraceContext& ctx) {
  if (extents.empty()) return Status(Errc::invalid_argument, "empty sg list");
  for (const auto& e : extents) {
    if (!e.src.valid() || !e.dst.valid() || e.src.len != e.dst.len ||
        e.src.len == 0)
      return Status(Errc::invalid_argument, "bad dma buffers");
    if (e.src.len > cfg_.max_transfer)
      return Status(Errc::too_large,
                    "dma job exceeds hardware transfer cap (" +
                        std::to_string(cfg_.max_transfer) + " bytes)");
  }

  // Greedy-pack consecutive extents into engine passes; the hardware
  // transfer cap is the ONLY split point.
  struct Pass {
    std::size_t first = 0;
    std::size_t count = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Pass> passes;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    if (passes.empty() ||
        passes.back().bytes + extents[i].src.len > cfg_.max_transfer)
      passes.push_back({i, 0, 0});
    passes.back().count++;
    passes.back().bytes += extents[i].src.len;
  }
  if (inflight_.load(std::memory_order_relaxed) +
          static_cast<int>(passes.size()) >
      cfg_.queue_depth)
    return Status(Errc::busy, "dma queue full");

  const sim::Time now = env_.now();
  // Fault consult is per extent, in extent order, so an armed
  // "doca.dma_error" fails only the matched extent of a batch (a spec's
  // match string can address one extent as "<name>#<index>").
  std::vector<char> fail(extents.size(), 0);
  for (std::size_t i = 0; i < extents.size(); ++i)
    fail[i] = env_.faults().should_fire("doca.dma_error", now,
                                        name_ + "#" + std::to_string(i))
                  ? 1
                  : 0;

  auto fan_out = std::make_shared<ExtentCb>(std::move(cb));
  for (const auto& p : passes) {
    inflight_.fetch_add(1);
    // The engine serializes passes at its own (lower) bandwidth; the PCIe
    // link is booked too so DMA and CommChannel traffic contend
    // realistically. Setup is latency, not occupancy — and for a packed
    // pass it is paid once per pass, not per extent: that amortization is
    // the point of scatter-gather (§3.3).
    const sim::Time engine_done =
        engine_.reserve(now, sim::transfer_time(p.bytes, cfg_.bw_bytes_per_sec));
    const sim::Time pcie_done = dir == DmaDir::dpu_to_host
                                    ? link_.reserve_d2h(now, p.bytes)
                                    : link_.reserve_h2d(now, p.bytes);
    const sim::Time done = std::max(engine_done, pcie_done) + cfg_.setup_latency;
    if (ctx.sampled()) {
      // The modeled completion time is known at submit, so extent spans are
      // recorded retrospectively up front (crash-safe: they are in the ring
      // even if the callback never runs).
      for (std::size_t i = p.first; i < p.first + p.count; ++i)
        env_.tracer().record_span("doca.dma_job", "dma." + name_, ctx, now,
                                  done, extents[i].src.off);
    }

    std::vector<DmaExtent> pass_ext(extents.begin() + p.first,
                                    extents.begin() + p.first + p.count);
    std::vector<char> pass_fail(fail.begin() + p.first,
                                fail.begin() + p.first + p.count);
    env_.scheduler().schedule_at(
        done, [this, first = p.first, pass_ext = std::move(pass_ext),
               pass_fail = std::move(pass_fail), fan_out] {
          inflight_.fetch_sub(1);
          for (std::size_t j = 0; j < pass_ext.size(); ++j) {
            if (pass_fail[j]) {
              failed_.fetch_add(1, std::memory_order_relaxed);
              (*fan_out)(first + j,
                         Status(Errc::channel_error, "dma transfer error"));
              continue;
            }
            const auto& e = pass_ext[j];
            std::memcpy(e.dst.data(), e.src.data(), e.src.len);
            jobs_done_.fetch_add(1, std::memory_order_relaxed);
            bytes_.fetch_add(e.src.len, std::memory_order_relaxed);
            (*fan_out)(first + j, Status::OK());
          }
        });
  }
  passes_.fetch_add(passes.size(), std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace doceph::doca
