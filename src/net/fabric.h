#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "dbg/mutex.h"
#include "common/result.h"
#include "event/event_center.h"
#include "net/address.h"
#include "net/stack_model.h"
#include "sim/env.h"
#include "sim/resource.h"

namespace doceph::net {

class Fabric;
class Socket;
using SocketRef = std::shared_ptr<Socket>;

/// NIC characteristics of a node: full-duplex bandwidth and one-way wire
/// latency to any peer (the fabric models a non-blocking switch).
struct NicProfile {
  double bw_bytes_per_sec = 100e9 / 8;  ///< 100 Gbps default
  sim::Duration latency = 5000;         ///< 5 us one-way
};

/// One endpoint on the fabric (a host, or a DPU's own network identity).
class NetNode {
 public:
  using AcceptFn = std::function<void(SocketRef)>;

  [[nodiscard]] std::int32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const NicProfile& nic() const noexcept { return nic_; }
  [[nodiscard]] const StackModel& stack() const noexcept { return stack_; }

  /// Accept connections on `port`; `on_accept` is dispatched to `center`
  /// with the server-side socket. Fails with `exists` if the port is taken.
  Status listen(std::uint16_t port, event::EventCenter& center, AcceptFn on_accept);
  void unlisten(std::uint16_t port);

 private:
  friend class Fabric;
  friend class Socket;
  NetNode(Fabric& fabric, std::int32_t id, std::string name, NicProfile nic,
          StackModel stack)
      : fabric_(fabric), id_(id), name_(std::move(name)), nic_(nic), stack_(stack) {}

  struct ListenerEntry {
    event::EventCenter::Handle center;
    AcceptFn on_accept;
  };

  Fabric& fabric_;
  std::int32_t id_;
  std::string name_;
  NicProfile nic_;
  StackModel stack_;

  dbg::Mutex mutex_{"net.node"};
  std::map<std::uint16_t, ListenerEntry> listeners_ DOCEPH_GUARDED_BY(mutex_);
  std::uint16_t next_ephemeral_ DOCEPH_GUARDED_BY(mutex_) = 50000;

  // Full-duplex NIC occupancy.
  sim::SerialResource tx_;
  sim::SerialResource rx_;
};

/// The simulated network: a set of nodes joined by a non-blocking switch.
/// Streams between nodes are rate-limited by both endpoints' NICs and
/// delayed by wire latency; the kernel-stack cost model charges the CPUs.
class Fabric {
 public:
  explicit Fabric(sim::Env& env) : env_(env) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Create a node. Returned reference is stable for the Fabric's lifetime.
  NetNode& add_node(std::string name, NicProfile nic = {}, StackModel stack = {});

  [[nodiscard]] NetNode* node(std::int32_t id);

  /// Open a stream from `from` to `to`. The caller's side is returned
  /// immediately; the acceptor side is delivered to the listener's center
  /// after one wire latency. Read/write handlers are registered on the
  /// returned socket by its owner.
  Result<SocketRef> connect(NetNode& from, Address to);

  [[nodiscard]] sim::Env& env() noexcept { return env_; }

 private:
  friend class Socket;
  sim::Env& env_;
  dbg::Mutex mutex_{"net.fabric"};
  std::vector<std::unique_ptr<NetNode>> nodes_ DOCEPH_GUARDED_BY(mutex_);
};

/// A full-duplex stream socket (the sim analogue of a connected TCP socket).
///
/// Threading contract: the owner registers an EventCenter and handlers;
/// send/recv are called from that owner thread (handlers run there). The
/// fabric delivers data and readiness notifications internally.
///
/// Backpressure: each direction has a window (socket buffer). send() accepts
/// at most the free window and returns the byte count; 0 means would-block —
/// wait for the write handler. recv() opens the window, waking the writer.
class Socket {
 public:
  /// Try to send the contents of `bl`; accepted bytes are *consumed from the
  /// front of bl*. Returns bytes accepted (0 = would-block), or
  /// Errc::not_connected after either side closed.
  Result<std::size_t> send(BufferList& bl);

  /// Drain up to `max` readable bytes (may return empty = would-block).
  BufferList recv(std::size_t max);

  /// Bytes currently readable.
  [[nodiscard]] std::size_t readable() const;

  /// True when the peer closed and all data has been drained.
  [[nodiscard]] bool eof() const;

  /// Close both directions; the peer observes EOF after draining.
  void close();
  [[nodiscard]] bool closed() const;

  /// Readable notification: dispatched to `center` when data (or EOF)
  /// becomes available and the socket was previously drained. The handler
  /// must drain (loop recv until empty) — notifications are edge-style.
  void set_read_handler(event::EventCenter& center, std::function<void()> h);

  /// Writable notification: dispatched after a would-block send once window
  /// space frees up.
  void set_write_handler(event::EventCenter& center, std::function<void()> h);

  /// Detach this side's handlers. In-flight deliveries that already fired
  /// may still invoke the old handler once; deliveries after the owning
  /// EventCenter dies are dropped (handlers are registered via
  /// EventCenter::Handle).
  void clear_handlers();

  /// send() invocations by this side that actually moved bytes — each one
  /// paid the stack model's per-syscall cost, so corking tests can observe
  /// coalescing directly.
  [[nodiscard]] std::uint64_t send_calls() const noexcept;

  [[nodiscard]] Address local_addr() const;
  [[nodiscard]] Address remote_addr() const;

 private:
  friend class Fabric;
  struct Core;
  Socket(std::shared_ptr<Core> core, int side) : core_(std::move(core)), side_(side) {}

  std::shared_ptr<Core> core_;
  int side_;  // 0 = connecting side, 1 = accepting side
};

}  // namespace doceph::net
