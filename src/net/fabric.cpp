#include "net/fabric.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace doceph::net {

// ---- Socket::Core ------------------------------------------------------------

/// Shared state of one connection. half[s] carries data from side s to side
/// 1-s. A single Core is referenced by both endpoint Sockets, so there is no
/// reference cycle and teardown is automatic. Notification lambdas capture a
/// shared_ptr to the Core so queued dispatches survive socket teardown.
struct Socket::Core : std::enable_shared_from_this<Socket::Core> {
  Core(sim::Env& e, NetNode* n0, NetNode* n1, std::uint16_t p0, std::uint16_t p1,
       std::size_t win)
      : env(e), node{n0, n1}, port{p0, p1}, window(win) {}

  sim::Env& env;
  NetNode* node[2];
  std::uint16_t port[2];
  std::size_t window;

  struct Half {
    std::deque<BufferList> q;  // delivered, unread
    std::size_t q_bytes = 0;
    std::size_t in_flight = 0;  // accepted by sender, not yet read by receiver
    bool closed = false;

    event::EventCenter::Handle rd_center;
    std::function<void()> on_readable;
    bool rd_pending = false;  // a readable dispatch is queued

    event::EventCenter::Handle wr_center;
    std::function<void()> on_writable;
    bool wr_blocked = false;  // sender saw would-block
  };

  dbg::Mutex m{"net.socket_core"};
  Half half[2] DOCEPH_GUARDED_BY(m);

  // Earliest permitted delivery time per direction after a net.delay fault;
  // keeps the stream in order. Atomic (not under m) so send() can clamp
  // without taking the core lock on the NIC booking path.
  std::atomic<std::int64_t> min_deliver[2]{};

  // send() invocations that moved bytes, per side (cork diagnostics).
  std::atomic<std::uint64_t> send_calls[2]{};

  /// Queue a readable notification for half[hi] if armed.
  void notify_readable_locked(int hi) DOCEPH_REQUIRES(m) {
    Half& h = half[hi];
    if (h.on_readable == nullptr || h.rd_pending) return;
    h.rd_pending = true;
    h.rd_center.dispatch([self = shared_from_this(), hi] {
      std::function<void()> handler;
      {
        const dbg::LockGuard lk(self->m);
        self->half[hi].rd_pending = false;
        handler = self->half[hi].on_readable;
      }
      if (handler) handler();
    });
  }

  /// Wake a blocked writer on half[hi].
  void notify_writable_locked(int hi) DOCEPH_REQUIRES(m) {
    Half& h = half[hi];
    if (!h.wr_blocked || h.on_writable == nullptr) return;
    h.wr_blocked = false;
    h.wr_center.dispatch([self = shared_from_this(), hi] {
      std::function<void()> handler;
      {
        const dbg::LockGuard lk(self->m);
        handler = self->half[hi].on_writable;
      }
      if (handler) handler();
    });
  }
};

// ---- Socket ------------------------------------------------------------------

Result<std::size_t> Socket::send(BufferList& bl) {
  Core& c = *core_;

  // Fault hooks (free when nothing is armed). Scope is "src>dst" so a spec
  // can target one direction of one link; `match=nodename` hits both
  // directions. Drops and partitions black-hole the chunk after the sender
  // has accepted it — the peer just sees silence, like a real blackhole.
  bool blackhole = false;
  std::uint64_t extra_delay = 0;
  auto& faults = c.env.faults();
  if (faults.any_armed()) {
    const sim::Time fnow = c.env.now();
    const std::string scope = c.node[side_]->name() + ">" + c.node[1 - side_]->name();
    if (faults.should_fire("net.disconnect", fnow, scope)) {
      close();
      return Status(Errc::not_connected, "fault injected: net.disconnect");
    }
    blackhole = faults.should_fire("net.partition", fnow, scope);
    blackhole = faults.should_fire("net.drop", fnow, scope) || blackhole;
    const fault::FaultHit delay_hit = faults.hit("net.delay", fnow, scope);
    if (delay_hit.fired)
      extra_delay = delay_hit.delay_ns != 0 ? delay_hit.delay_ns : 1'000'000;
  }

  std::size_t take = 0;
  BufferList data;
  {
    const dbg::LockGuard lk(c.m);
    Core::Half& h = c.half[side_];
    if (h.closed || c.half[1 - side_].closed)
      return Status(Errc::not_connected, "socket closed");
    const std::size_t avail = c.window > h.in_flight ? c.window - h.in_flight : 0;
    take = std::min(avail, bl.length());
    if (take == 0) {
      h.wr_blocked = true;
      return std::size_t{0};
    }
    h.in_flight += take;
    data = bl.substr(0, take);
  }
  bl = bl.substr(take, bl.length() - take);
  c.send_calls[side_].fetch_add(1, std::memory_order_relaxed);

  // CPU: user->kernel copy etc., on the calling thread's domain. Done
  // outside the core lock — charging advances simulated time.
  NetNode* src = c.node[side_];
  NetNode* dst = c.node[1 - side_];
  src->stack().charge(take);

  // NIC path: source TX serialization, wire latency, destination RX. The RX
  // side is booked cut-through — it starts when the first bit arrives, so a
  // chunk through equal-speed NICs pays bytes/bw once, not twice.
  const sim::Time now = c.env.now();
  const sim::Duration occ_tx = sim::transfer_time(take, src->nic().bw_bytes_per_sec);
  const sim::Duration occ_rx = sim::transfer_time(take, dst->nic().bw_bytes_per_sec);
  const sim::Time tx_done = src->tx_.reserve(now, occ_tx);
  const sim::Time tx_start = tx_done - occ_tx;
  const sim::Time rx_end = dst->rx_.reserve(tx_start + src->nic().latency, occ_rx);
  sim::Time rx_done = std::max(rx_end, tx_done + src->nic().latency);

  // A black-holed chunk stays charged against the window: the pipe wedges
  // exactly like a real one-way partition until the peer resets it.
  if (blackhole) return take;

  // Delay faults must not reorder the byte stream: remember the latest
  // faulted delivery time per direction and clamp later chunks past it.
  if (extra_delay > 0) {
    sim::Time target = rx_done + static_cast<sim::Duration>(extra_delay);
    std::int64_t cur = c.min_deliver[side_].load(std::memory_order_relaxed);
    while (cur < target && !c.min_deliver[side_].compare_exchange_weak(
                               cur, target, std::memory_order_relaxed)) {
    }
  }
  rx_done = std::max(
      rx_done, sim::Time{c.min_deliver[side_].load(std::memory_order_relaxed)});

  auto core = core_;
  const int side = side_;
  c.env.scheduler().schedule_at(rx_done, [core, side, data = std::move(data)]() mutable {
    const dbg::LockGuard lk(core->m);
    Core::Half& h = core->half[side];
    h.q_bytes += data.length();
    h.q.push_back(std::move(data));
    core->notify_readable_locked(side);
  });
  return take;
}

BufferList Socket::recv(std::size_t max) {
  Core& c = *core_;
  BufferList out;
  {
    const dbg::LockGuard lk(c.m);
    Core::Half& h = c.half[1 - side_];
    while (!h.q.empty() && out.length() < max) {
      BufferList& front = h.q.front();
      const std::size_t want = max - out.length();
      if (front.length() <= want) {
        out.claim_append(front);
        h.q.pop_front();
      } else {
        out.append(front.substr(0, want));
        front = front.substr(want, front.length() - want);
      }
    }
    h.q_bytes -= out.length();
    h.in_flight -= out.length();
    if (out.length() > 0) c.notify_writable_locked(1 - side_);
  }
  // CPU: kernel->user copy for what we took (a bare EAGAIN-style recv still
  // pays the syscall entry).
  c.node[side_]->stack().charge(out.length());
  return out;
}

std::size_t Socket::readable() const {
  const dbg::LockGuard lk(core_->m);
  return core_->half[1 - side_].q_bytes;
}

bool Socket::eof() const {
  const dbg::LockGuard lk(core_->m);
  const Socket::Core::Half& h = core_->half[1 - side_];
  return h.closed && h.q.empty();
}

void Socket::close() {
  Core& c = *core_;
  const dbg::LockGuard lk(c.m);
  if (c.half[side_].closed && c.half[1 - side_].closed) return;
  c.half[side_].closed = true;
  c.half[1 - side_].closed = true;
  // Peer learns via EOF-readability and (if blocked) writability.
  c.notify_readable_locked(side_);      // peer reads half[side_]
  c.notify_writable_locked(1 - side_);  // peer writes half[1 - side_]
}

bool Socket::closed() const {
  const dbg::LockGuard lk(core_->m);
  return core_->half[side_].closed;
}

void Socket::set_read_handler(event::EventCenter& center, std::function<void()> h) {
  const dbg::LockGuard lk(core_->m);
  Core::Half& half = core_->half[1 - side_];
  half.rd_center = center.handle();
  half.on_readable = std::move(h);
  if (half.q_bytes > 0 || half.closed) core_->notify_readable_locked(1 - side_);
}

void Socket::set_write_handler(event::EventCenter& center, std::function<void()> h) {
  const dbg::LockGuard lk(core_->m);
  Core::Half& half = core_->half[side_];
  half.wr_center = center.handle();
  half.on_writable = std::move(h);
}

void Socket::clear_handlers() {
  const dbg::LockGuard lk(core_->m);
  Core::Half& rd = core_->half[1 - side_];
  rd.rd_center = {};
  rd.on_readable = nullptr;
  Core::Half& wr = core_->half[side_];
  wr.wr_center = {};
  wr.on_writable = nullptr;
}

std::uint64_t Socket::send_calls() const noexcept {
  return core_->send_calls[side_].load(std::memory_order_relaxed);
}

Address Socket::local_addr() const {
  return {core_->node[side_]->id(), core_->port[side_]};
}

Address Socket::remote_addr() const {
  return {core_->node[1 - side_]->id(), core_->port[1 - side_]};
}

// ---- NetNode -----------------------------------------------------------------

Status NetNode::listen(std::uint16_t port, event::EventCenter& center,
                       AcceptFn on_accept) {
  const dbg::LockGuard lk(mutex_);
  if (listeners_.contains(port))
    return Status(Errc::exists, name_ + " port " + std::to_string(port) + " in use");
  listeners_[port] = ListenerEntry{center.handle(), std::move(on_accept)};
  return Status::OK();
}

void NetNode::unlisten(std::uint16_t port) {
  const dbg::LockGuard lk(mutex_);
  listeners_.erase(port);
}

// ---- Fabric ------------------------------------------------------------------

NetNode& Fabric::add_node(std::string name, NicProfile nic, StackModel stack) {
  const dbg::LockGuard lk(mutex_);
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(
      std::unique_ptr<NetNode>(new NetNode(*this, id, std::move(name), nic, stack)));
  return *nodes_.back();
}

NetNode* Fabric::node(std::int32_t id) {
  const dbg::LockGuard lk(mutex_);
  if (id < 0 || id >= static_cast<std::int32_t>(nodes_.size())) return nullptr;
  return nodes_[static_cast<std::size_t>(id)].get();
}

Result<SocketRef> Fabric::connect(NetNode& from, Address to) {
  NetNode* dst = node(to.node);
  if (dst == nullptr) return Status(Errc::invalid_argument, "no such node");

  NetNode::ListenerEntry listener;
  {
    const dbg::LockGuard lk(dst->mutex_);
    auto it = dst->listeners_.find(to.port);
    if (it == dst->listeners_.end())
      return Status(Errc::not_connected,
                    "connection refused: " + to.to_string());
    listener = it->second;
  }

  std::uint16_t src_port = 0;
  {
    const dbg::LockGuard lk(from.mutex_);
    src_port = from.next_ephemeral_++;
  }

  constexpr std::size_t kDefaultWindow = 1 << 20;  // 1 MiB per direction
  auto core = std::make_shared<Socket::Core>(env_, &from, dst, src_port, to.port,
                                             kDefaultWindow);
  SocketRef client(new Socket(core, 0));
  SocketRef server(new Socket(core, 1));

  // A partition swallows the SYN: the caller gets its socket and hears
  // nothing back, exactly like connecting into a blackhole.
  if (env_.faults().any_armed() &&
      env_.faults().should_fire("net.partition", env_.now(),
                                from.name() + ">" + dst->name())) {
    return client;
  }

  // Handshake: the acceptor learns about the connection one wire latency
  // later (SYN). Data sent immediately by the client also rides the wire, so
  // ordering is preserved by delivery timestamps.
  env_.scheduler().schedule_after(from.nic().latency, [listener, server]() mutable {
    listener.center.dispatch(
        [on_accept = listener.on_accept, server = std::move(server)]() mutable {
          on_accept(std::move(server));
        });
  });
  return client;
}

}  // namespace doceph::net
