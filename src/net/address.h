#pragma once

#include <cstdint>
#include <string>

#include "common/encoding.h"

namespace doceph::net {

/// A fabric endpoint address: node id + port (the sim analogue of ip:port).
struct Address {
  std::int32_t node = -1;
  std::uint16_t port = 0;

  [[nodiscard]] bool valid() const noexcept { return node >= 0; }

  [[nodiscard]] std::string to_string() const {
    return "n" + std::to_string(node) + ":" + std::to_string(port);
  }

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  void encode(BufferList& bl) const {
    doceph::encode(node, bl);
    doceph::encode(port, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(node, cur) && doceph::decode(port, cur);
  }
};

}  // namespace doceph::net
