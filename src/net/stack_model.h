#pragma once

#include <cstdint>

#include "sim/cpu_model.h"
#include "sim/exec_context.h"
#include "sim/time.h"

namespace doceph::net {

/// CPU cost model of the kernel TCP/IP path, charged on the thread that
/// performs the (simulated) syscall. This is the mechanism behind the
/// paper's core observation: the messenger's socket traffic burns host CPU
/// in per-byte copies and per-packet processing, so its CPU share tracks
/// throughput (Fig. 5), and offloading the messenger moves exactly these
/// charges onto the DPU's cores (Fig. 7).
struct StackModel {
  sim::Duration per_syscall = 1500;   ///< ns per send/recv entry (mode switch)
  double per_byte_ns = 0.45;          ///< user<->kernel copy + checksum, per byte
  sim::Duration per_frame = 250;      ///< per-MTU segment processing, ns
  std::uint32_t mtu = 9000;           ///< jumbo frames (100G fabrics)

  [[nodiscard]] sim::Duration cost(std::uint64_t bytes) const noexcept {
    const std::uint64_t frames = bytes == 0 ? 0 : (bytes + mtu - 1) / mtu;
    return per_syscall + static_cast<sim::Duration>(per_byte_ns * static_cast<double>(bytes)) +
           per_frame * static_cast<sim::Duration>(frames);
  }

  /// Charge the calling thread's CPU domain for moving `bytes` through the
  /// stack (one syscall). No-op for threads without a domain.
  void charge(std::uint64_t bytes) const {
    if (auto* domain = sim::ExecContext::current().domain)
      domain->charge(cost(bytes));
  }
};

}  // namespace doceph::net
