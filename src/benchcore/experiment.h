#pragma once

#include <optional>
#include <string>

#include "cluster/cluster.h"
#include "proxy/proxy_object_store.h"

namespace doceph::benchcore {

/// One experimental configuration (a cell of the paper's sweep).
struct RunSpec {
  cluster::DeployMode mode = cluster::DeployMode::baseline;
  cluster::NetworkKind net = cluster::NetworkKind::gbe_100;
  std::uint64_t object_size = 4 << 20;
  int concurrency = 16;                       // rados bench -t 16 (paper §5.1)
  sim::Duration warmup = 1'000'000'000;       // 1 s
  sim::Duration measure = 4'000'000'000;      // 4 s
  std::uint32_t pg_num = 64;
  std::uint64_t seed = 42;

  /// Hot-path batching (comch doorbell coalescing, scatter-gather DMA,
  /// messenger write corking). Off by default: the paper's hot path has no
  /// coalescing and the figure sweeps (and their committed bench_cache
  /// cells) reproduce the paper. perf_smoke and ablation_batching opt in.
  bool batching = false;

  /// >0: writers cycle through a bounded object working set (see
  /// BenchConfig::reuse_objects). Documented opt-in for bounding metadata
  /// growth; fresh-object small-write floods now degrade gracefully via
  /// chained KV checkpoints + backpressure instead of dying with no_space.
  std::uint64_t reuse_objects = 0;

  /// End-to-end backpressure: bounded OSD/proxy queues replying
  /// Errc::throttled, nearfull write shedding, and client AIMD flow
  /// control. Off by default — the paper profiles predate admission
  /// control, and the committed figure cells must stay byte-identical.
  bool backpressure = false;

  /// Write-path sharding (DESIGN.md §15): sets OsdConfig::op_shards and
  /// ClusterConfig::kv_shards together. 1 (default) keeps the committed
  /// figure cells byte-identical; >1 adds a `_shN` cache-key suffix.
  int shards = 1;
  /// Ablation overrides splitting the diagonal: 0 = follow `shards`.
  int op_shards_override = 0;
  int kv_shards_override = 0;

  /// Ablation overrides for the proxy (DoCeph mode only).
  std::optional<proxy::ProxyConfig> proxy_override;
  /// DMA error injection rate (fallback experiments).
  double dma_failure_rate = 0.0;

  /// Dump the cluster-wide admin surface ("perf dump", historic ops) to
  /// stderr at the end of the measured window. Diagnostic; not cached.
  bool dump_admin = false;

  /// Distributed tracing: sample every Nth client op (0 = off) and, when
  /// `trace_out` is set, write the merged Chrome trace_event JSON for the
  /// run there. A `%k` in the path expands to cache_key(), so multi-cell
  /// figure harnesses can emit one trace per cell. Traced runs always
  /// execute (run_cached() bypasses the result cache); the trace fields are
  /// deliberately not part of the cache key.
  std::uint32_t trace_sample_every = 0;
  std::string trace_out;

  /// Stable cache key for this configuration.
  [[nodiscard]] std::string cache_key() const;
};

/// Parse the shared tracing flags (`--trace-out <file>`,
/// `--trace-sample <n>`) out of a harness's argv into the spec. Passing
/// only --trace-out defaults the sampler to 1-in-64. Unknown arguments are
/// left for the harness to reject or ignore.
void apply_trace_flags(RunSpec& spec, int argc, char** argv);

/// Everything the paper's tables/figures need from one run.
struct RunResult {
  // Throughput / latency (Figs. 8, 10; Fig. 6).
  double iops = 0;
  double mbps = 0;
  double avg_lat_s = 0;
  double p50_lat_s = 0;
  double p99_lat_s = 0;

  // CPU (Figs. 5, 7): average cores busy over the measurement window.
  double host_cores = 0;   // per storage node (paper's single-core-normalized %)
  double dpu_cores = 0;

  // Per-class share of storage-node CPU (Fig. 5). Fractions of ceph total.
  double share_messenger = 0;
  double share_objectstore = 0;
  double share_osd = 0;
  double total_ceph_cores = 0;  // messenger+objectstore+osd+other, in cores

  // Context switches over the window (Table 2), storage nodes only.
  std::uint64_t ctx_messenger = 0;
  std::uint64_t ctx_objectstore = 0;
  double window_s = 0;

  // DoCeph proxy breakdown (Table 3 / Fig. 9), averaged per request.
  double bd_host_write_s = 0;
  double bd_dma_s = 0;
  double bd_dma_wait_s = 0;
  double bd_others_s = 0;
  double bd_total_s = 0;

  // OpTracker stage decomposition (Fig. 2 pipeline), averaged per OSD op
  // over the measured window. The clamped event chain makes the five stages
  // sum exactly to the OSD-side latency (recv -> reply_sent).
  double stage_msgr_s = 0;   // recv -> ms_dispatch queue
  double stage_queue_s = 0;  // op queue wait (tp_osd_tp dequeue)
  double stage_store_s = 0;  // ObjectStore prep + WAL commit
  double stage_repl_s = 0;   // waiting on replica acks
  double stage_reply_s = 0;  // commit/acks -> reply on the wire
  double stage_total_s = 0;  // recv -> reply_sent, per op

  std::uint64_t ops = 0;
  std::uint64_t failed_ops = 0;  ///< measured-window ops that returned an error
  std::uint64_t dma_fallback_events = 0;
  std::uint64_t rpc_fallback_bytes = 0;

  // Backpressure telemetry (0 unless spec.backpressure): throttled bounces
  // by layer over the measured window.
  std::uint64_t osd_throttled = 0;
  std::uint64_t client_throttled = 0;
  std::uint64_t proxy_throttled = 0;
};

/// Execute the spec on a fresh simulated cluster (warmup, then measure).
RunResult run_experiment(const RunSpec& spec);

/// run_experiment with an on-disk cache (bench_cache/<key>): the paper
/// sweep is shared by several figure binaries, so later ones reuse earlier
/// results. Set DOCEPH_NO_CACHE=1 (or remove the directory) to force reruns.
RunResult run_cached(const RunSpec& spec);

}  // namespace doceph::benchcore
