#pragma once

#include <string>
#include <vector>

namespace doceph::benchcore {

/// Fixed-width console table, used by every figure/table binary to print
/// the same rows/series the paper reports (plus a paper-reference column
/// where applicable).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  // 0.82 -> "82.0%"

  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Uniform banner for bench binaries.
void print_banner(const std::string& id, const std::string& what);

}  // namespace doceph::benchcore
