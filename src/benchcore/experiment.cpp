#include "benchcore/experiment.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "client/rados_bench.h"

namespace doceph::benchcore {
namespace {

/// Storage-node-scoped class CPU totals (host-* and dpu-* domains; excludes
/// client, MON, and infrastructure threads), mirroring the paper's perf
/// attribution over Ceph daemons only.
std::uint64_t storage_class_cpu(const sim::StatsRegistry& stats, sim::ThreadClass c) {
  return stats.class_cpu_ns(c, "host-") + stats.class_cpu_ns(c, "dpu-");
}
std::uint64_t storage_class_ctx(const sim::StatsRegistry& stats, sim::ThreadClass c) {
  return stats.class_ctx_switches(c, "host-") + stats.class_ctx_switches(c, "dpu-");
}

}  // namespace

std::string RunSpec::cache_key() const {
  std::ostringstream os;
  os << (mode == cluster::DeployMode::baseline ? "base" : "doceph") << "_"
     << (net == cluster::NetworkKind::gbe_100 ? "100g" : "1g") << "_"
     << (object_size >> 10) << "k_c" << concurrency << "_m"
     << measure / 1'000'000 << "ms_pg" << pg_num << "_s" << seed;
  if (proxy_override) {
    os << "_px" << proxy_override->slots << "_" << (proxy_override->pipelining ? 1 : 0)
       << (proxy_override->mr_cache ? 1 : 0) << "_"
       << (proxy_override->segment_size >> 10) << "k";
  }
  if (dma_failure_rate > 0) os << "_f" << static_cast<int>(dma_failure_rate * 1e4);
  if (reuse_objects > 0) os << "_r" << reuse_objects;
  if (backpressure) os << "_bp";
  {
    // Sharded cells (DESIGN.md §15): `_shN` on the diagonal, `_shOPxKV`
    // when the ablation overrides split op- and kv-shard counts. Nothing
    // at 1/1 so the committed paper cells keep their keys.
    const int op_sh = op_shards_override > 0 ? op_shards_override : shards;
    const int kv_sh = kv_shards_override > 0 ? kv_shards_override : shards;
    if (op_sh != kv_sh)
      os << "_sh" << op_sh << "x" << kv_sh;
    else if (op_sh > 1)
      os << "_sh" << op_sh;
  }
  if (batching) {
    // Batched cells key on the coalescing knobs too (swept by
    // ablation_batching): depth and flush deadlines change the numbers.
    const auto& db = proxy_override ? proxy_override->dma_batch
                                    : cluster::default_proxy().dma_batch;
    const auto& rb = proxy_override ? proxy_override->rpc_batch
                                    : cluster::default_proxy().rpc_batch;
    os << "_batch" << db.max_segments << "_" << db.flush_delay / 1'000 << "u"
       << rb.flush_delay / 1'000;
  }
  return os.str();
}

void apply_trace_flags(RunSpec& spec, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) {
      spec.trace_out = argv[++i];
      if (spec.trace_sample_every == 0) spec.trace_sample_every = 64;
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      spec.trace_sample_every =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
}

RunResult run_experiment(const RunSpec& spec) {
  sim::Env env(sim::TimeKeeper::Mode::virtual_time, spec.seed);
  env.tracer().set_sample_every(spec.trace_sample_every);
  auto cfg = cluster::ClusterConfig::paper_testbed(spec.mode, spec.net,
                                                   /*retain_data=*/false);
  cfg.pg_num = spec.pg_num;
  // Write-path sharding: op lanes and KV shards move together unless an
  // ablation override splits them (both clamped >= 1 downstream).
  cfg.osd_template.op_shards =
      spec.op_shards_override > 0 ? spec.op_shards_override : spec.shards;
  cfg.kv_shards =
      spec.kv_shards_override > 0 ? spec.kv_shards_override : spec.shards;
  if (spec.proxy_override) cfg.proxy = *spec.proxy_override;
  // Sharded deployments provision one staging slot per op lane (DESIGN.md
  // §15): the paper's single pre-established slot is the unsharded hot
  // path's calibration, and keeping it would re-serialize every lane at the
  // offload boundary (the store stage pins at the DMA-wait on slot 0 and
  // the lanes buy ~nothing). An explicit proxy_override still wins.
  if (!spec.proxy_override && cfg.osd_template.op_shards > 1) {
    cfg.proxy.slots = std::max(cfg.proxy.slots, cfg.osd_template.op_shards);
  }
  // spec.batching governs the enabled flags of every coalescing knob (the
  // proxy_override only tunes depths/deadlines), so batched and unbatched
  // cells differ in exactly one dimension.
  cfg.msgr.cork.enabled = spec.batching;
  cfg.proxy.rpc_batch.enabled = spec.batching;
  cfg.proxy.dma_batch.enabled = spec.batching;
  cfg.backend.rpc_batch.enabled = spec.batching;
  if (spec.backpressure) {
    // End-to-end admission control: bounded queues at every layer, typed
    // throttled bounces, nearfull write shedding, client AIMD windowing.
    cfg.osd_template.max_queue_depth = 256;
    cfg.osd_template.max_conn_inflight = 128;
    cfg.osd_template.throttle_retry_delay = 2'000'000;  // 2 ms
    cfg.osd_template.nearfull_ratio = 0.85;
    cfg.proxy.max_worker_queue = 512;
    cfg.proxy.slot_acquire_timeout = 5'000'000'000;  // 5 s
    cfg.client.flow_control = true;
  }

  cluster::Cluster cl(env, cfg);
  RunResult result;

  env.run_on_sim_thread([&] {
    const Status st = cl.start();
    if (!st.ok()) {
      std::fprintf(stderr, "cluster start failed: %s\n", st.to_string().c_str());
      return;
    }
    if (spec.dma_failure_rate > 0) {
      for (int i = 0; i < cl.num_nodes(); ++i) {
        if (cl.dpu(i) != nullptr)
          cl.dpu(i)->dma().set_failure_rate(spec.dma_failure_rate);
      }
    }

    // Warmup: fill pipelines, establish connections, steady-state the
    // backends; excluded from every measurement.
    client::BenchConfig wcfg;
    wcfg.concurrency = spec.concurrency;
    wcfg.object_size = spec.object_size;
    wcfg.duration = spec.warmup;
    wcfg.prefix = "warm";
    wcfg.reuse_objects = spec.reuse_objects;
    client::RadosBench warm(cl.client(), wcfg);
    (void)warm.run(&cl.client_cpu());

    // Reset per-request instrumentation, then sample counters. Perf blocks
    // and op history restart here so dumps cover only measured traffic.
    cl.reset_observability();
    std::uint64_t fb0 = 0, rpcb0 = 0;
    for (int i = 0; i < cl.num_nodes(); ++i) {
      if (auto* p = cl.proxy_store(i)) {
        p->reset_breakdown();
        fb0 += p->fallback().failures();
        rpcb0 += p->rpc_fallback_bytes();
      }
    }
    const auto cpu0 = cl.cpu_sample();
    auto& stats = env.stats();
    const std::uint64_t msgr0 = storage_class_cpu(stats, sim::ThreadClass::messenger);
    const std::uint64_t os0 = storage_class_cpu(stats, sim::ThreadClass::objectstore);
    const std::uint64_t osd0 = storage_class_cpu(stats, sim::ThreadClass::osd);
    const std::uint64_t oth0 = storage_class_cpu(stats, sim::ThreadClass::other);
    const std::uint64_t cxm0 = storage_class_ctx(stats, sim::ThreadClass::messenger);
    const std::uint64_t cxo0 = storage_class_ctx(stats, sim::ThreadClass::objectstore);

    client::BenchConfig bcfg;
    bcfg.concurrency = spec.concurrency;
    bcfg.object_size = spec.object_size;
    bcfg.duration = spec.measure;
    bcfg.prefix = "bench";
    bcfg.reuse_objects = spec.reuse_objects;
    client::RadosBench bench(cl.client(), bcfg);
    const auto bres = bench.run(&cl.client_cpu());

    const auto cpu1 = cl.cpu_sample();
    result.iops = bres.iops();
    result.mbps = bres.bandwidth_bytes_per_sec(spec.object_size) / 1e6;
    result.avg_lat_s = bres.avg_latency_s();
    result.p50_lat_s = bres.latency.quantile(0.5) * 1e-9;
    result.p99_lat_s = bres.p99_latency_s();
    result.ops = bres.ops;
    result.failed_ops = bres.failed;
    result.window_s = bres.seconds;

    result.host_cores = cl.host_cores_used(cpu0, cpu1);
    result.dpu_cores = cl.dpu_cores_used(cpu0, cpu1);

    const double msgr = static_cast<double>(
        storage_class_cpu(stats, sim::ThreadClass::messenger) - msgr0);
    const double objs = static_cast<double>(
        storage_class_cpu(stats, sim::ThreadClass::objectstore) - os0);
    const double osdc =
        static_cast<double>(storage_class_cpu(stats, sim::ThreadClass::osd) - osd0);
    const double other =
        static_cast<double>(storage_class_cpu(stats, sim::ThreadClass::other) - oth0);
    const double total = msgr + objs + osdc + other;
    if (total > 0) {
      result.share_messenger = msgr / total;
      result.share_objectstore = objs / total;
      result.share_osd = osdc / total;
    }
    const double window = static_cast<double>(cpu1.at - cpu0.at);
    const int nodes = cl.num_nodes();
    if (window > 0 && nodes > 0) result.total_ceph_cores = total / window / nodes;

    result.ctx_messenger =
        storage_class_ctx(stats, sim::ThreadClass::messenger) - cxm0;
    result.ctx_objectstore =
        storage_class_ctx(stats, sim::ThreadClass::objectstore) - cxo0;

    // Proxy breakdown (averaged over nodes' requests).
    proxy::BreakdownSnapshot bd;
    std::uint64_t fb1 = 0, rpcb1 = 0;
    for (int i = 0; i < nodes; ++i) {
      if (auto* p = cl.proxy_store(i)) {
        const auto b = p->breakdown();
        bd.count += b.count;
        bd.total_ns += b.total_ns;
        bd.dma_ns += b.dma_ns;
        bd.dma_wait_ns += b.dma_wait_ns;
        bd.host_write_ns += b.host_write_ns;
        fb1 += p->fallback().failures();
        rpcb1 += p->rpc_fallback_bytes();
      }
    }
    result.bd_total_s = bd.avg(bd.total_ns);
    result.bd_dma_s = bd.avg(bd.dma_ns);
    result.bd_dma_wait_s = bd.avg(bd.dma_wait_ns);
    result.bd_host_write_s = bd.avg(bd.host_write_ns);
    result.bd_others_s = bd.others_ns_avg();
    result.dma_fallback_events = fb1 - fb0;
    result.rpc_fallback_bytes = rpcb1 - rpcb0;

    // OpTracker stage decomposition, summed over every OSD's histograms.
    {
      std::uint64_t n = 0;
      std::uint64_t msgr_ns = 0, queue_ns = 0, store_ns = 0, repl_ns = 0,
                    reply_ns = 0, total_ns = 0;
      for (int i = 0; i < nodes; ++i) {
        const auto& c = cl.osd(i).perf_counters();
        n += c->hist(osd::l_osd_op_lat).count;
        total_ns += c->hist(osd::l_osd_op_lat).sum;
        msgr_ns += c->hist(osd::l_osd_op_msgr_lat).sum;
        queue_ns += c->hist(osd::l_osd_op_queue_lat).sum;
        store_ns += c->hist(osd::l_osd_op_store_lat).sum;
        repl_ns += c->hist(osd::l_osd_op_repl_lat).sum;
        reply_ns += c->hist(osd::l_osd_op_reply_lat).sum;
      }
      if (n > 0) {
        const auto avg_s = [n](std::uint64_t sum) {
          return static_cast<double>(sum) / static_cast<double>(n) * 1e-9;
        };
        result.stage_msgr_s = avg_s(msgr_ns);
        result.stage_queue_s = avg_s(queue_ns);
        result.stage_store_s = avg_s(store_ns);
        result.stage_repl_s = avg_s(repl_ns);
        result.stage_reply_s = avg_s(reply_ns);
        result.stage_total_s = avg_s(total_ns);
      }
    }

    // Backpressure telemetry: throttled bounces by layer (counters were
    // reset at the start of the measured window; all zero with the knobs
    // off, so legacy cells are unaffected).
    for (int i = 0; i < nodes; ++i) {
      result.osd_throttled += cl.osd(i).perf_counters()->get(osd::l_osd_op_throttled);
      if (auto* p = cl.proxy_store(i)) {
        const auto& pc = p->perf_counters();
        result.proxy_throttled += pc->get(proxy::l_dpu_throttle_queue) +
                                  pc->get(proxy::l_dpu_throttle_slot);
      }
    }
    result.client_throttled =
        cl.client().perf_counters()->get(client::l_client_op_throttled);

    if (spec.dump_admin) {
      for (const char* cmd : {"perf dump", "dump_historic_ops"}) {
        std::fprintf(stderr, "[bench admin] %s: %s\n", cmd,
                     cl.admin_dump(cmd).c_str());
      }
    }

    cl.stop();

    // Dump traces after stop so every span has been closed at a
    // deterministic virtual time (same seed => byte-identical file).
    if (!spec.trace_out.empty()) {
      std::string path = spec.trace_out;
      if (const auto pos = path.find("%k"); pos != std::string::npos)
        path.replace(pos, 2, spec.cache_key());
      std::ofstream out(path);
      if (out) {
        out << cl.dump_traces() << "\n";
        std::fprintf(stderr, "[bench] wrote trace %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "[bench] cannot write trace %s\n", path.c_str());
      }
    }
  });
  return result;
}

// ---- cache ---------------------------------------------------------------------

namespace {

constexpr const char* kCacheDir = "bench_cache";

#define DOCEPH_RESULT_FIELDS(X)                                                   \
  X(iops) X(mbps) X(avg_lat_s) X(p50_lat_s) X(p99_lat_s) X(host_cores)            \
  X(dpu_cores)                                                                    \
  X(share_messenger) X(share_objectstore) X(share_osd) X(total_ceph_cores)        \
  X(window_s) X(bd_host_write_s) X(bd_dma_s) X(bd_dma_wait_s) X(bd_others_s)      \
  X(bd_total_s) X(stage_msgr_s) X(stage_queue_s) X(stage_store_s)                 \
  X(stage_repl_s) X(stage_reply_s) X(stage_total_s)

bool load_cached(const std::string& key, RunResult& out) {
  std::ifstream in(std::string(kCacheDir) + "/" + key);
  if (!in) return false;
  std::string name;
  double value = 0;
  while (in >> name >> value) {
#define DOCEPH_LOAD(f) \
  if (name == #f) {    \
    out.f = value;     \
    continue;          \
  }
    DOCEPH_RESULT_FIELDS(DOCEPH_LOAD)
#undef DOCEPH_LOAD
    if (name == "ctx_messenger") out.ctx_messenger = static_cast<std::uint64_t>(value);
    if (name == "ctx_objectstore")
      out.ctx_objectstore = static_cast<std::uint64_t>(value);
    if (name == "ops") out.ops = static_cast<std::uint64_t>(value);
    if (name == "failed_ops") out.failed_ops = static_cast<std::uint64_t>(value);
    if (name == "dma_fallback_events")
      out.dma_fallback_events = static_cast<std::uint64_t>(value);
    if (name == "rpc_fallback_bytes")
      out.rpc_fallback_bytes = static_cast<std::uint64_t>(value);
    if (name == "osd_throttled") out.osd_throttled = static_cast<std::uint64_t>(value);
    if (name == "client_throttled")
      out.client_throttled = static_cast<std::uint64_t>(value);
    if (name == "proxy_throttled")
      out.proxy_throttled = static_cast<std::uint64_t>(value);
  }
  return true;
}

void store_cached(const std::string& key, const RunResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(kCacheDir, ec);
  std::ofstream out(std::string(kCacheDir) + "/" + key);
  if (!out) return;
  out.precision(12);
#define DOCEPH_STORE(f) out << #f << " " << r.f << "\n";
  DOCEPH_RESULT_FIELDS(DOCEPH_STORE)
#undef DOCEPH_STORE
  out << "ctx_messenger " << r.ctx_messenger << "\n";
  out << "ctx_objectstore " << r.ctx_objectstore << "\n";
  out << "ops " << r.ops << "\n";
  out << "failed_ops " << r.failed_ops << "\n";
  out << "dma_fallback_events " << r.dma_fallback_events << "\n";
  out << "rpc_fallback_bytes " << r.rpc_fallback_bytes << "\n";
  out << "osd_throttled " << r.osd_throttled << "\n";
  out << "client_throttled " << r.client_throttled << "\n";
  out << "proxy_throttled " << r.proxy_throttled << "\n";
}

}  // namespace

RunResult run_cached(const RunSpec& spec) {
  const std::string key = spec.cache_key();
  // The trace artifact is the whole point of a traced run, so a cached
  // result (which has no trace file) must not satisfy it. The run still
  // refreshes the numeric cache for later untraced callers.
  const bool tracing = spec.trace_sample_every > 0 || !spec.trace_out.empty();
  const bool no_cache = std::getenv("DOCEPH_NO_CACHE") != nullptr;
  RunResult result;
  if (!no_cache && !tracing && load_cached(key, result)) {
    std::fprintf(stderr, "[bench] cache hit: %s\n", key.c_str());
    return result;
  }
  std::fprintf(stderr, "[bench] running: %s\n", key.c_str());
  result = run_experiment(spec);
  if (!no_cache) store_cached(key, result);
  return result;
}

}  // namespace doceph::benchcore
