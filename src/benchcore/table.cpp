#include "benchcore/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace doceph::benchcore {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), c.c_str());
    }
    std::printf("\n");
  };
  auto rule = [&] {
    std::printf("+");
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  rule();
  print_row(headers_);
  rule();
  for (const auto& r : rows_) print_row(r);
  rule();
}

void print_banner(const std::string& id, const std::string& what) {
  std::printf("\n==============================================================\n");
  std::printf("  %s — %s\n", id.c_str(), what.c_str());
  std::printf("  (simulated reproduction; compare shape, not absolute values)\n");
  std::printf("==============================================================\n");
}

}  // namespace doceph::benchcore
