#pragma once

#include <cstdint>

/// The numbers the paper reports (its §5), kept verbatim so every bench can
/// print a side-by-side paper column. Indexed by request size where the
/// evaluation sweeps 1/4/8/16 MB.
namespace doceph::benchcore::paper {

inline constexpr std::uint64_t kSizes[] = {1u << 20, 4u << 20, 8u << 20, 16u << 20};
inline constexpr const char* kSizeNames[] = {"1MB", "4MB", "8MB", "16MB"};
inline constexpr int kNumSizes = 4;

// Fig. 5: share of total Ceph CPU per component (4 MB writes).
inline constexpr double kFig5MessengerShare1G = 0.8105;
inline constexpr double kFig5MessengerShare100G = 0.8248;
// Fig. 5 right axis: total Ceph CPU normalized to a single core.
inline constexpr double kFig5TotalCpu1G = 0.24;
inline constexpr double kFig5TotalCpu100G = 0.7008;

// Table 2: context switches per measurement interval.
inline constexpr double kTab2Messenger = 7475;
inline constexpr double kTab2ObjectStore = 751;
inline constexpr double kTab2Ratio = 9.95;

// Fig. 7: host CPU utilization (%) by request size.
inline constexpr double kFig7Baseline[] = {94.2, 70.1, 68.9, 67.2};
inline constexpr double kFig7DoCeph[] = {5.5, 5.75, 5.53, 5.39};

// Fig. 8: average latency (seconds). The text states 1 MB and 16 MB
// explicitly; 4/8 MB are derived from Fig. 10's IOPS via Little's law
// (16 outstanding ops / IOPS), which matches the stated points exactly.
inline constexpr double kFig8Baseline[] = {0.03, 0.13, 0.27, 0.54};
inline constexpr double kFig8DoCeph[] = {0.05, 0.14, 0.30, 0.57};

// Table 3: DoCeph latency breakdown (seconds).
inline constexpr double kTab3HostWrite[] = {0.0008, 0.0024, 0.0046, 0.0084};
inline constexpr double kTab3Dma[] = {0.0028, 0.0042, 0.00523, 0.00846};
inline constexpr double kTab3DmaWait[] = {0.0224, 0.0336, 0.0418, 0.0676};
inline constexpr double kTab3Others[] = {0.024, 0.0998, 0.24837, 0.48554};
inline constexpr double kTab3Total[] = {0.05, 0.14, 0.3, 0.57};

// Fig. 10: IOPS.
inline constexpr double kFig10Baseline[] = {435, 119, 60, 28};
inline constexpr double kFig10DoCeph[] = {304, 112, 52, 27};

}  // namespace doceph::benchcore::paper
