#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "dbg/mutex.h"

namespace doceph::trace {

/// Propagated identity of one sampled request (Dapper-style): carried in
/// every Message wire header, RpcChannel fragment, os::Transaction and DMA
/// job, so any layer can attach spans to the op's tree without plumbing.
/// `span_id` is the would-be parent of spans created from this context.
struct TraceContext {
  static constexpr std::uint8_t kSampled = 1;
  /// Fixed wire footprint: trace_id + span_id + flags.
  static constexpr std::size_t kWireSize = 8 + 8 + 1;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint8_t flags = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
  [[nodiscard]] bool sampled() const noexcept {
    return valid() && (flags & kSampled) != 0;
  }

  void encode(BufferList& bl) const;
  [[nodiscard]] bool decode(BufferList::Cursor& cur);

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One completed (or still-open) span. `end == -1` marks a span that was
/// still open when observed — the flight recorder's "partial span".
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;
  std::string domain;
  std::int64_t start = 0;
  std::int64_t end = -1;
};

class Tracer;

/// RAII span: created via Tracer::span() with an explicit virtual-clock
/// start, ended explicitly (or by the destructor at the tracer's clock).
/// While open it is registered with the tracer so the flight recorder can
/// snapshot in-flight work; end() retires it into its domain's ring.
/// Movable, not copyable; an unsampled parent yields an inactive no-op Span.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span();

  /// Close at an explicit virtual time (idempotent).
  void end(std::int64_t at);
  /// Close at the tracer's clock.
  void end();

  /// Context for child spans: {trace_id, this span's id, flags}. Zero for
  /// an inactive span.
  [[nodiscard]] const TraceContext& context() const noexcept { return ctx_; }
  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, const TraceContext& ctx) : tracer_(tracer), ctx_(ctx) {}

  Tracer* tracer_ = nullptr;
  TraceContext ctx_;
};

/// Per-domain lock-free ring of completed spans: slots are claimed with an
/// atomic fetch-add and published with a per-slot stamp (seqlock-style), so
/// the hot path never takes a lock and readers skip slots caught mid-write.
/// On overflow the oldest records are overwritten (flight-recorder
/// semantics); `dropped()` counts the overwrites.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);

  void push(const SpanRecord& rec);
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 = empty; else claim index + 1
    SpanRecord rec;
  };
  std::size_t cap_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Universe-wide trace collector (one per sim::Env, like FaultRegistry).
///
/// Determinism contract: everything is a pure function of (env seed, op
/// identity) — trace ids derive from the seed-salted op key, the sampling
/// decision is a hash of the trace id, and span ids derive from
/// (trace_id, parent, name, domain, start, index). No global counters, so
/// two same-seed runs produce byte-identical dumps regardless of thread
/// interleaving. Times are virtual-clock ns via the injected clock.
class Tracer {
 public:
  explicit Tracer(std::uint64_t seed);

  /// Virtual clock used by Span destructors / end(). Set once at Env
  /// construction, before any sampled traffic.
  void set_clock(std::function<std::int64_t()> now) { clock_ = std::move(now); }

  /// Sample 1-in-N ops (deterministic hash of the trace id). 0 disables
  /// tracing entirely (root_context returns an invalid context).
  void set_sample_every(std::uint32_t n) noexcept { sample_every_.store(n); }
  [[nodiscard]] std::uint32_t sample_every() const noexcept {
    return sample_every_.load();
  }

  /// Ring capacity for domains created after this call (test hook).
  void set_ring_capacity(std::size_t n) noexcept { ring_capacity_.store(n); }

  /// Root context for a new op with stable identity `key` (e.g.
  /// client_id << 32 | tid). Invalid context when tracing is off or the op
  /// is not sampled — callers propagate nothing in that case.
  [[nodiscard]] TraceContext root_context(std::uint64_t key) const;

  /// Open a span under `parent` starting at virtual time `start`. Inactive
  /// no-op unless parent.sampled(). `index` disambiguates same-name
  /// same-start siblings (segment number, byte offset).
  [[nodiscard]] Span span(std::string_view name, std::string_view domain,
                          const TraceContext& parent, std::int64_t start,
                          std::uint64_t index = 0);

  /// Record a completed span retrospectively; returns the child context
  /// (zero unless parent.sampled()).
  TraceContext record_span(std::string_view name, std::string_view domain,
                           const TraceContext& parent, std::int64_t start,
                           std::int64_t end_at, std::uint64_t index = 0);

  // ---- export ----------------------------------------------------------------
  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto): one
  /// "X" complete event per retired span, pid = domain, tid = trace index,
  /// canonically sorted so same-seed runs dump byte-identical files.
  /// `domain_filter` keeps only domains containing the substring.
  [[nodiscard]] std::string dump_chrome_json(std::string_view domain_filter = {}) const;

  /// Retired spans, canonically sorted (tests, aggregators).
  [[nodiscard]] std::vector<SpanRecord> completed(
      std::string_view domain_filter = {}) const;
  /// Spans currently open (begin seen, no end), canonically sorted.
  [[nodiscard]] std::vector<SpanRecord> open_spans() const;
  /// Total ring overwrites across domains.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Clear retired spans (open spans survive): scopes dumps to a measured
  /// window, like perf-counter resets.
  void reset();

  // ---- flight recorder -------------------------------------------------------
  /// Snapshot everything (open partial spans, retired rings, the supplied
  /// fault firings) into a JSON document kept in memory (last 8 retained;
  /// also written to `<dir>/flight_<n>.json` when a directory was set).
  /// Called automatically on osd.hard_crash / failed remount.
  void flight_snapshot(std::string_view reason,
                       const std::vector<std::string>& fault_firings);
  [[nodiscard]] std::string last_flight_json() const;
  [[nodiscard]] std::size_t flight_count() const;
  void set_flight_dir(std::string dir);

 private:
  friend class Span;
  void end_span(const TraceContext& ctx, std::int64_t at);
  SpanRing& ring_for(const std::string& domain);
  [[nodiscard]] std::int64_t clock_now() const {
    return clock_ ? clock_() : 0;
  }

  std::uint64_t salt_;
  std::function<std::int64_t()> clock_;
  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::size_t> ring_capacity_{4096};

  mutable dbg::Mutex mutex_{"trace.tracer"};
  std::map<std::string, std::unique_ptr<SpanRing>> rings_ DOCEPH_GUARDED_BY(mutex_);
  std::map<std::uint64_t, SpanRecord> open_ DOCEPH_GUARDED_BY(mutex_);
  std::deque<std::pair<std::string, std::string>> flights_  // (reason, json)
      DOCEPH_GUARDED_BY(mutex_);
  std::uint64_t flight_seq_ DOCEPH_GUARDED_BY(mutex_) = 0;
  std::string flight_dir_ DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::trace
