#pragma once

#include <cstddef>
#include <cstdint>

namespace doceph {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum Ceph uses for message integrity. Software slice-by-8
/// implementation; tables are built once on first use.
///
/// `crc` is the running value (start with 0 or a seed); data may be null only
/// if len == 0. Compatible with iSCSI/ext4/Ceph crc32c.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) noexcept;

/// Convenience overload starting from crc 0.
inline std::uint32_t crc32c(const void* data, std::size_t len) noexcept {
  return crc32c(0, data, len);
}

}  // namespace doceph
