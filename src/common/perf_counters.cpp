#include "common/perf_counters.h"

#include <algorithm>
#include <cassert>

#include "common/json.h"

namespace doceph::perf {

PerfCounters::PerfCounters(std::string name, int lower, int upper)
    : name_(std::move(name)), lower_(lower) {
  assert(upper > lower + 1 && "empty metric range");
  entries_.resize(static_cast<std::size_t>(upper - lower - 1) + kSinkSlots);
  entries_[0].name = "_unclaimed";
}

std::size_t PerfCounters::index(int idx) const noexcept {
  // Valid metric indices are (lower_, lower_+size): map them to slots
  // [1, size]; everything else (including undeclared slots) hits the sink.
  const long off = static_cast<long>(idx) - lower_ - 1 + kSinkSlots;
  if (off < kSinkSlots || off >= static_cast<long>(entries_.size())) return 0;
  if (entries_[static_cast<std::size_t>(off)].name.empty()) return 0;
  return static_cast<std::size_t>(off);
}

void PerfCounters::reset() noexcept {
  for (auto& e : entries_) {
    e.value.store(0, std::memory_order_relaxed);
    if (e.hist) e.hist->reset();
  }
}

void PerfCounters::dump(JsonWriter& w) const {
  w.key(name_);
  w.begin_object();
  for (std::size_t i = kSinkSlots; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    if (e.name.empty()) continue;
    w.key(e.name);
    if (e.type == Type::histogram) {
      e.hist->snapshot().to_json(w);
    } else {
      w.value(e.value.load(std::memory_order_relaxed));
    }
  }
  w.end_object();
}

// ---- Builder ---------------------------------------------------------------------

Builder::Builder(std::string name, int lower, int upper)
    : pc_(new PerfCounters(std::move(name), lower, upper)) {}

Builder& Builder::add(int idx, std::string metric_name, Type t) {
  assert(pc_ && "create() already called");
  const long off =
      static_cast<long>(idx) - pc_->lower_ - 1 + PerfCounters::kSinkSlots;
  assert(off >= PerfCounters::kSinkSlots &&
         off < static_cast<long>(pc_->entries_.size()) && "index out of range");
  auto& e = pc_->entries_[static_cast<std::size_t>(off)];
  assert(e.name.empty() && "index declared twice");
  e.name = std::move(metric_name);
  e.type = t;
  if (t == Type::histogram) e.hist = std::make_unique<Histogram>();
  return *this;
}

Builder& Builder::add_counter(int idx, std::string metric_name) {
  return add(idx, std::move(metric_name), Type::counter);
}
Builder& Builder::add_gauge(int idx, std::string metric_name) {
  return add(idx, std::move(metric_name), Type::gauge);
}
Builder& Builder::add_histogram(int idx, std::string metric_name) {
  return add(idx, std::move(metric_name), Type::histogram);
}

PerfCountersRef Builder::create() { return PerfCountersRef(std::move(pc_)); }

// ---- Collection ------------------------------------------------------------------

void Collection::add(PerfCountersRef pc) {
  const std::lock_guard<std::mutex> lk(mutex_);
  std::erase_if(blocks_,
                [&](const PerfCountersRef& b) { return b->name() == pc->name(); });
  blocks_.push_back(std::move(pc));
}

void Collection::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mutex_);
  std::erase_if(blocks_, [&](const PerfCountersRef& b) { return b->name() == name; });
}

void Collection::clear() {
  const std::lock_guard<std::mutex> lk(mutex_);
  blocks_.clear();
}

void Collection::dump(JsonWriter& w) const {
  std::vector<PerfCountersRef> blocks;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    blocks = blocks_;
  }
  w.begin_object();
  for (const auto& b : blocks) b->dump(w);
  w.end_object();
}

std::string Collection::dump_json() const {
  JsonWriter w;
  dump(w);
  return w.str();
}

void Collection::reset_all() {
  std::vector<PerfCountersRef> blocks;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    blocks = blocks_;
  }
  for (const auto& b : blocks) b->reset();
}

PerfCountersRef Collection::get(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& b : blocks_) {
    if (b->name() == name) return b;
  }
  return nullptr;
}

}  // namespace doceph::perf
