#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace doceph {

/// Error category used across module boundaries. Modules do not throw across
/// their public APIs; they return Status / Result<T> (see result.h).
enum class Errc : int {
  ok = 0,
  not_found,
  exists,
  invalid_argument,
  io_error,
  timed_out,
  not_connected,
  shutting_down,
  no_space,
  too_large,        ///< e.g. a DMA job above the hardware transfer cap
  channel_error,    ///< transport-level failure (RPC / DMA / socket)
  corrupt,          ///< checksum or decode failure
  busy,
  not_supported,
  range_error,
  throttled,        ///< server overloaded; retry after the suggested delay
};

/// Human-readable name of an error code.
std::string_view errc_name(Errc c) noexcept;

/// A cheap, copyable status: an error code plus optional context message.
/// An ok() Status carries no allocation.
class Status {
 public:
  Status() noexcept = default;
  /*implicit*/ Status(Errc code) noexcept : code_(code) {}  // NOLINT
  Status(Errc code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  [[nodiscard]] bool ok() const noexcept { return code_ == Errc::ok; }
  [[nodiscard]] Errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return msg_; }

  /// "ok" or "not_found: missing object foo".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

  static Status OK() noexcept { return {}; }

 private:
  Errc code_ = Errc::ok;
  std::string msg_;
};

}  // namespace doceph
