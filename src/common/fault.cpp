#include "common/fault.h"

#include <algorithm>
#include <cstdlib>

#include "common/json.h"

namespace doceph::fault {

namespace {

constexpr std::size_t kMaxLog = 1u << 16;

// Local splitmix64 finalizer (same mixing as sim::Rng::derive_seed, kept
// here so common/ stays independent of sim/).
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xCBF29CE484222325ull) noexcept {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

bool scope_matches(const std::string& match, std::string_view scope) noexcept {
  return match.empty() || scope.find(match) != std::string_view::npos;
}

}  // namespace

std::uint64_t FaultRegistry::entry_seed(std::uint64_t seed, std::string_view point,
                                        std::string_view match) noexcept {
  std::uint64_t salt = fnv1a(match, fnv1a(point));
  return mix64(seed + 0x9E3779B97F4A7C15ull * (salt | 1));
}

FaultRegistry::Entry FaultRegistry::make_entry(std::string_view point,
                                               FaultSpec spec) const {
  Entry e;
  e.rng.seed(entry_seed(seed_, point, spec.match));
  e.spec = std::move(spec);
  return e;
}

void FaultRegistry::refresh_armed_locked() {
  std::uint64_t n = 0;
  for (const auto& [point, entries] : points_) n += entries.size();
  armed_entries_.store(n, std::memory_order_relaxed);
}

void FaultRegistry::set(const std::string& point, FaultSpec spec) {
  // A spec with no trigger can never fire; treat it as a disarm so call
  // sites like set_failure_rate(0.0) don't leave dead entries pinning the
  // any_armed() fast path off.
  const bool armable = spec.probability > 0.0 || spec.fire_at_hit >= 0 ||
                       spec.fire_at_time >= 0 || spec.force_next > 0;
  const dbg::LockGuard lk(mutex_);
  auto& entries = points_[point];
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const Entry& e) { return e.spec.match == spec.match; });
  if (!armable) {
    if (it != entries.end()) entries.erase(it);
    if (entries.empty()) points_.erase(point);
  } else if (it != entries.end()) {
    *it = make_entry(point, std::move(spec));
  } else {
    entries.push_back(make_entry(point, std::move(spec)));
  }
  refresh_armed_locked();
}

void FaultRegistry::fire_next(const std::string& point, std::int64_t n,
                              const std::string& match) {
  const dbg::LockGuard lk(mutex_);
  auto& entries = points_[point];
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const Entry& e) { return e.spec.match == match; });
  if (it != entries.end()) {
    it->spec.force_next += n;
  } else {
    FaultSpec spec;
    spec.force_next = n;
    spec.match = match;
    entries.push_back(make_entry(point, std::move(spec)));
  }
  refresh_armed_locked();
}

bool FaultRegistry::clear(const std::string& point) {
  const dbg::LockGuard lk(mutex_);
  bool removed = points_.erase(point) != 0;
  refresh_armed_locked();
  return removed;
}

void FaultRegistry::clear_all() {
  const dbg::LockGuard lk(mutex_);
  points_.clear();
  refresh_armed_locked();
}

FaultHit FaultRegistry::hit(std::string_view point, std::int64_t now,
                            std::string_view scope) {
  FaultHit result;
  if (!any_armed()) return result;
  const dbg::LockGuard lk(mutex_);
  auto pit = points_.find(point);
  if (pit == points_.end()) return result;
  for (Entry& e : pit->second) {
    if (!scope_matches(e.spec.match, scope)) continue;
    ++e.hit_count;
    if (e.spec.count >= 0 &&
        e.fire_count >= static_cast<std::uint64_t>(e.spec.count)) {
      continue;
    }
    bool fired = false;
    if (e.spec.force_next > 0) {
      fired = true;
      --e.spec.force_next;
    } else if (e.spec.fire_at_hit >= 0) {
      fired = e.hit_count == static_cast<std::uint64_t>(e.spec.fire_at_hit);
    } else if (e.spec.fire_at_time >= 0) {
      fired = now >= e.spec.fire_at_time;
    } else if (e.spec.probability > 0.0) {
      // Exactly one draw per evaluated hit: fire-or-not for hit #k is a
      // pure function of (seed, k), never of thread timing.
      fired = std::uniform_real_distribution<double>(0.0, 1.0)(e.rng) < e.spec.probability;
    }
    if (!fired) continue;
    ++e.fire_count;
    result.fired = true;
    result.delay_ns = std::max(result.delay_ns, e.spec.delay_ns);
    // Always-on time-window specs (fire_at_time with unlimited budget) model
    // standing state — a partition, a stalled link — whose per-hit fire count
    // tracks retry cadence, not injected events. Keep those out of the log so
    // same-seed log comparison stays exact. Bound the log as a backstop.
    const bool state_like = e.spec.fire_at_time >= 0 && e.spec.count < 0;
    if (state_like || log_.size() >= kMaxLog) continue;
    std::string rec(point);
    if (!e.spec.match.empty()) {
      rec += '@';
      rec += e.spec.match;
    }
    rec += '#';
    rec += std::to_string(e.hit_count);
    log_.push_back(std::move(rec));
  }
  return result;
}

std::uint64_t FaultRegistry::hits(std::string_view point) const {
  const dbg::LockGuard lk(mutex_);
  auto pit = points_.find(point);
  if (pit == points_.end()) return 0;
  std::uint64_t n = 0;
  for (const Entry& e : pit->second) n += e.hit_count;
  return n;
}

std::uint64_t FaultRegistry::fires(std::string_view point) const {
  const dbg::LockGuard lk(mutex_);
  auto pit = points_.find(point);
  if (pit == points_.end()) return 0;
  std::uint64_t n = 0;
  for (const Entry& e : pit->second) n += e.fire_count;
  return n;
}

std::vector<std::string> FaultRegistry::firing_log() const {
  const dbg::LockGuard lk(mutex_);
  return log_;
}

std::string FaultRegistry::list_json() const {
  const dbg::LockGuard lk(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("seed");
  w.value(static_cast<std::uint64_t>(seed_));
  w.key("points");
  w.begin_array();
  for (const auto& [point, entries] : points_) {
    for (const Entry& e : entries) {
      w.begin_object();
      w.kv("point", point);
      if (!e.spec.match.empty()) w.kv("match", e.spec.match);
      if (e.spec.probability > 0.0) w.kv("probability", e.spec.probability);
      if (e.spec.fire_at_hit >= 0) w.kv("fire_at_hit", e.spec.fire_at_hit);
      if (e.spec.fire_at_time >= 0) w.kv("fire_at_time", e.spec.fire_at_time);
      if (e.spec.count >= 0) w.kv("count", e.spec.count);
      if (e.spec.force_next > 0) w.kv("force_next", e.spec.force_next);
      if (e.spec.delay_ns > 0) w.kv("delay_ns", e.spec.delay_ns);
      w.kv("hits", e.hit_count);
      w.kv("fires", e.fire_count);
      w.end_object();
    }
  }
  w.end_array();
  w.key("fired");
  w.begin_array();
  for (const std::string& rec : log_) w.value(rec);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string FaultRegistry::admin_command(const std::vector<std::string>& args) {
  auto error = [](const std::string& msg) {
    JsonWriter w;
    w.begin_object();
    w.kv("error", msg);
    w.end_object();
    return w.str();
  };
  auto ack = [](const std::string& msg) {
    JsonWriter w;
    w.begin_object();
    w.kv("status", msg);
    w.end_object();
    return w.str();
  };
  if (args.empty()) return error("usage: fault set|list|clear ...");
  const std::string& verb = args[0];
  if (verb == "list") return list_json();
  if (verb == "clear") {
    if (args.size() > 1) {
      return ack(clear(args[1]) ? "cleared " + args[1] : "nothing armed at " + args[1]);
    }
    clear_all();
    return ack("cleared all");
  }
  if (verb == "set") {
    if (args.size() < 2) return error("usage: fault set <point> [k=v ...]");
    const std::string& point = args[1];
    FaultSpec spec;
    for (std::size_t i = 2; i < args.size(); ++i) {
      const std::string& kv = args[i];
      auto eq = kv.find('=');
      if (eq == std::string::npos) return error("expected k=v, got '" + kv + "'");
      std::string k = kv.substr(0, eq);
      std::string v = kv.substr(eq + 1);
      if (k == "match") {
        spec.match = v;
      } else if (k == "p" || k == "probability") {
        spec.probability = std::strtod(v.c_str(), nullptr);
      } else if (k == "at_hit") {
        spec.fire_at_hit = std::strtoll(v.c_str(), nullptr, 10);
      } else if (k == "at_time") {
        spec.fire_at_time = std::strtoll(v.c_str(), nullptr, 10);
      } else if (k == "count") {
        spec.count = std::strtoll(v.c_str(), nullptr, 10);
      } else if (k == "force") {
        spec.force_next = std::strtoll(v.c_str(), nullptr, 10);
      } else if (k == "delay_ns") {
        spec.delay_ns = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        return error("unknown key '" + k + "'");
      }
    }
    set(point, std::move(spec));
    return ack("armed " + point);
  }
  return error("unknown verb '" + verb + "'");
}

}  // namespace doceph::fault
