#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace doceph {

class JsonWriter;

/// Thread-safe latency/size histogram with logarithmic buckets
/// (2 sub-buckets per power of two) plus exact running sum/min/max.
/// Values are arbitrary non-negative integers (typically nanoseconds).
class Histogram {
 public:
  Histogram();

  void record(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Approximate quantile (q in [0,1]) from the log buckets; exact at the
    /// bucket boundaries, interpolated within.
    [[nodiscard]] double quantile(double q) const noexcept;

    /// Emit {count, sum, min, max, mean, p50, p95, p99, buckets:[[ub,n]...]}
    /// into `w` (only non-empty buckets appear). The shared serialization for
    /// perf-counter dumps and benchcore latency tables.
    void to_json(JsonWriter& w) const;
    [[nodiscard]] std::string to_json() const;

    std::vector<std::uint64_t> buckets;  ///< per-bucket counts
  };

  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Merge another histogram's contents into this one.
  void merge(const Histogram& other);

  static constexpr int kSubBuckets = 2;   // per power of two
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  /// Inclusive upper bound of bucket `i` (used by quantile interpolation).
  static std::uint64_t bucket_upper_bound(int i) noexcept;

 private:
  static int bucket_index(std::uint64_t v) noexcept;

  mutable std::mutex mutex_;  // doceph-lint: allow(bare-mutex) leaf observability primitive, recorded from hot paths under component locks
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace doceph
