#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace doceph {
class JsonWriter;
}

namespace doceph::perf {

/// Metric kinds, following Ceph's PerfCounters taxonomy.
enum class Type : std::uint8_t {
  counter,    ///< monotonically increasing u64 (inc)
  gauge,      ///< instantaneous value (set/inc/dec)
  histogram,  ///< Histogram-backed distribution of times or sizes (rec)
};

/// One daemon subsystem's counters (e.g. "osd", "msgr", "dpu"): a dense
/// index-addressed block built once by `Builder`, then updated lock-free
/// from hot paths — counter/gauge updates are single relaxed atomics;
/// histogram records take the histogram's own mutex (off the per-message
/// fast path by design, used for per-op latencies only).
///
/// Indices come from a caller-owned enum bounded by [lower, upper), Ceph's
/// l_osd_first/l_osd_last idiom; lookups are bounds-checked subtraction,
/// never string hashing.
class PerfCounters {
 public:
  void inc(int idx, std::uint64_t by = 1) noexcept {
    entry(idx).value.fetch_add(by, std::memory_order_relaxed);
  }
  void dec(int idx, std::uint64_t by = 1) noexcept {
    entry(idx).value.fetch_sub(by, std::memory_order_relaxed);
  }
  void set(int idx, std::uint64_t v) noexcept {
    entry(idx).value.store(v, std::memory_order_relaxed);
  }
  /// Record one sample into a histogram metric.
  void rec(int idx, std::uint64_t sample) noexcept {
    auto& e = entry(idx);
    if (e.hist) e.hist->record(sample);
  }

  [[nodiscard]] std::uint64_t get(int idx) const noexcept {
    return entry(idx).value.load(std::memory_order_relaxed);
  }
  /// Snapshot a histogram metric (empty snapshot for scalar metrics).
  [[nodiscard]] Histogram::Snapshot hist(int idx) const {
    const auto& e = entry(idx);
    return e.hist ? e.hist->snapshot() : Histogram::Snapshot{};
  }

  /// Zero every metric (between benchmark phases).
  void reset() noexcept;

  /// Emit `"name": { metric: value | histogram-object, ... }` into an open
  /// JSON object.
  void dump(JsonWriter& w) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int lower_bound() const noexcept { return lower_; }
  [[nodiscard]] int upper_bound() const noexcept {
    return lower_ + static_cast<int>(entries_.size());
  }

 private:
  friend class Builder;
  struct Entry {
    std::string name;
    Type type = Type::counter;
    std::atomic<std::uint64_t> value{0};
    std::unique_ptr<Histogram> hist;

    Entry() = default;
    // Movable so std::vector can size the table; only used at build time,
    // before any concurrent access.
    Entry(Entry&& o) noexcept
        : name(std::move(o.name)),
          type(o.type),
          value(o.value.load(std::memory_order_relaxed)),
          hist(std::move(o.hist)) {}
    Entry& operator=(Entry&&) = delete;
  };

  PerfCounters(std::string name, int lower, int upper);

  Entry& entry(int idx) noexcept { return entries_[index(idx)]; }
  [[nodiscard]] const Entry& entry(int idx) const noexcept {
    return entries_[index(idx)];
  }
  [[nodiscard]] std::size_t index(int idx) const noexcept;

  std::string name_;
  int lower_;
  std::vector<Entry> entries_;
  // Slot 0 sinks out-of-range or never-declared indices so a bad index can
  // never corrupt a neighbor (and shows up as "_unclaimed" in dumps).
  static constexpr int kSinkSlots = 1;
};
using PerfCountersRef = std::shared_ptr<PerfCounters>;

/// Declares the metrics of one PerfCounters block, then materializes it.
class Builder {
 public:
  /// `(lower, upper)` bound the index enum *exclusively*: valid metric
  /// indices are lower+1 .. upper-1 (the l_xxx_first/l_xxx_last idiom).
  Builder(std::string name, int lower, int upper);

  Builder& add_counter(int idx, std::string metric_name);
  Builder& add_gauge(int idx, std::string metric_name);
  Builder& add_histogram(int idx, std::string metric_name);

  [[nodiscard]] PerfCountersRef create();

 private:
  Builder& add(int idx, std::string metric_name, Type t);
  std::unique_ptr<PerfCounters> pc_;
};

/// A daemon's set of PerfCounters blocks (one per subsystem), the thing a
/// `perf dump` admin command serializes. Thread-safe add/remove/dump.
class Collection {
 public:
  void add(PerfCountersRef pc);
  void remove(const std::string& name);
  void clear();

  /// {"subsys1": {...}, "subsys2": {...}}
  [[nodiscard]] std::string dump_json() const;
  void dump(JsonWriter& w) const;

  /// Zero every metric of every block.
  void reset_all();

  [[nodiscard]] PerfCountersRef get(const std::string& name) const;

 private:
  mutable std::mutex mutex_;  // doceph-lint: allow(bare-mutex) leaf observability primitive, bumped from hot paths under component locks
  std::vector<PerfCountersRef> blocks_;
};

}  // namespace doceph::perf
