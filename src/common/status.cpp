#include "common/status.h"

namespace doceph {

std::string_view errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::io_error: return "io_error";
    case Errc::timed_out: return "timed_out";
    case Errc::not_connected: return "not_connected";
    case Errc::shutting_down: return "shutting_down";
    case Errc::no_space: return "no_space";
    case Errc::too_large: return "too_large";
    case Errc::channel_error: return "channel_error";
    case Errc::corrupt: return "corrupt";
    case Errc::busy: return "busy";
    case Errc::not_supported: return "not_supported";
    case Errc::range_error: return "range_error";
    case Errc::throttled: return "throttled";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string s{errc_name(code_)};
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace doceph
