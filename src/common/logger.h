#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace doceph::log {

enum class Level : int { trace = 0, debug, info, warn, error, off };

/// Global log threshold; messages below it are dropped before formatting.
void set_level(Level lvl) noexcept;
Level level() noexcept;

inline bool enabled(Level lvl) noexcept { return lvl >= level(); }

/// One log line; flushed to stderr (with level, subsystem, and thread name)
/// when the Record is destroyed at the end of the statement.
class Record {
 public:
  Record(Level lvl, std::string_view subsys);
  ~Record();
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  std::ostringstream& stream() noexcept { return os_; }

 private:
  Level lvl_;
  std::ostringstream os_;
};

/// Swallows a stream expression so the DLOG ternary has type void in both
/// arms. `&` binds looser than `<<`, so chained inserters evaluate first.
struct Voidify {
  void operator&(std::ostream&) const noexcept {}
};

}  // namespace doceph::log

/// Usage: DLOG(info, "msgr") << "accepted connection from " << addr;
///
/// Expands to a single expression (glog's ternary/voidify idiom) so an
/// unbraced `if (x) DLOG(...) << ...; else ...;` cannot dangle-else: there
/// is no `if` in the macro for the `else` to capture. The Record temporary
/// still flushes at the end of the full statement.
#define DLOG(lvl, subsys)                                          \
  !::doceph::log::enabled(::doceph::log::Level::lvl)               \
      ? (void)0                                                    \
      : ::doceph::log::Voidify() &                                 \
            ::doceph::log::Record(::doceph::log::Level::lvl, subsys).stream()
