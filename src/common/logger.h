#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace doceph::log {

enum class Level : int { trace = 0, debug, info, warn, error, off };

/// Global log threshold; messages below it are dropped before formatting.
void set_level(Level lvl) noexcept;
Level level() noexcept;

inline bool enabled(Level lvl) noexcept { return lvl >= level(); }

/// One log line; flushed to stderr (with level, subsystem, and thread name)
/// when the Record is destroyed at the end of the statement.
class Record {
 public:
  Record(Level lvl, std::string_view subsys);
  ~Record();
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  std::ostringstream& stream() noexcept { return os_; }

 private:
  Level lvl_;
  std::ostringstream os_;
};

}  // namespace doceph::log

/// Usage: DLOG(info, "msgr") << "accepted connection from " << addr;
#define DLOG(lvl, subsys)                                   \
  if (::doceph::log::enabled(::doceph::log::Level::lvl))    \
  ::doceph::log::Record(::doceph::log::Level::lvl, subsys).stream()
