#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace doceph {

/// Escape `s` for embedding inside a JSON string literal (quotes excluded).
std::string json_escape(std::string_view s);

/// Minimal streaming JSON writer: objects, arrays, scalar values, with
/// automatic comma placement. No pretty-printing — dumps are meant for
/// machine diffing and `python -m json.tool`. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("ops"); w.value(42);
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    just_keyed_ = true;
  }

  void value(std::string_view v) {
    comma();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(double v);

  /// Embed a pre-serialized JSON fragment verbatim (nested daemon dumps).
  void raw_value(std::string_view json) {
    comma();
    out_ += json;
  }

  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
    just_keyed_ = false;
  }
  void comma() {
    if (need_comma_ && !just_keyed_) out_ += ',';
    need_comma_ = true;
    just_keyed_ = false;
  }

  std::string out_;
  bool need_comma_ = false;
  bool just_keyed_ = false;
};

}  // namespace doceph
