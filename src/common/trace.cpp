#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "common/encoding.h"
#include "common/json.h"

namespace doceph::trace {
namespace {

/// splitmix64 finalizer: the same avalanche FaultRegistry uses for its
/// per-entry seeds; all trace/span ids are chains of this over stable
/// inputs, never counters, so ids are interleaving-independent.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kSampleSalt = 0x73616d706c65ULL;  // "sample"
constexpr std::size_t kMaxFlights = 8;
constexpr std::size_t kFlightCompletedCap = 512;
constexpr std::size_t kFlightFiringsCap = 64;

std::uint64_t derive_span_id(std::uint64_t trace_id, std::uint64_t parent_id,
                             std::string_view name, std::string_view domain,
                             std::int64_t start, std::uint64_t index) noexcept {
  std::uint64_t h = trace_id;
  h = mix(h ^ parent_id);
  h = mix(h ^ fnv1a(name));
  h = mix(h ^ fnv1a(domain));
  h = mix(h ^ static_cast<std::uint64_t>(start));
  h = mix(h ^ index);
  return h == 0 ? 1 : h;
}

/// Canonical order: makes dumps a pure function of the recorded set, not of
/// ring-append interleaving.
bool span_less(const SpanRecord& a, const SpanRecord& b) {
  return std::tie(a.trace_id, a.start, a.domain, a.name, a.span_id, a.end) <
         std::tie(b.trace_id, b.start, b.domain, b.name, b.span_id, b.end);
}

std::string hex_id(std::uint64_t v) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void span_to_json(JsonWriter& w, const SpanRecord& s) {
  w.begin_object();
  w.kv("trace_id", hex_id(s.trace_id));
  w.kv("span_id", hex_id(s.span_id));
  w.kv("parent_id", hex_id(s.parent_id));
  w.kv("name", s.name);
  w.kv("domain", s.domain);
  w.kv("start_ns", static_cast<std::int64_t>(s.start));
  if (s.end >= 0) {
    w.kv("end_ns", static_cast<std::int64_t>(s.end));
    w.kv("dur_ns", static_cast<std::int64_t>(s.end - s.start));
  } else {
    w.kv("partial", true);
  }
  w.end_object();
}

}  // namespace

// ---- TraceContext --------------------------------------------------------------

void TraceContext::encode(BufferList& bl) const {
  doceph::encode(trace_id, bl);
  doceph::encode(span_id, bl);
  doceph::encode(flags, bl);
}

bool TraceContext::decode(BufferList::Cursor& cur) {
  return doceph::decode(trace_id, cur) && doceph::decode(span_id, cur) &&
         doceph::decode(flags, cur);
}

// ---- Span ----------------------------------------------------------------------

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    ctx_ = other.ctx_;
    other.tracer_ = nullptr;
    other.ctx_ = {};
  }
  return *this;
}

Span::~Span() { end(); }

void Span::end(std::int64_t at) {
  if (tracer_ == nullptr) return;
  tracer_->end_span(ctx_, at);
  tracer_ = nullptr;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  end(t->clock_now());
}

// ---- SpanRing ------------------------------------------------------------------

SpanRing::SpanRing(std::size_t capacity)
    : cap_(capacity == 0 ? 1 : capacity), slots_(new Slot[cap_]) {}

void SpanRing::push(const SpanRecord& rec) {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[idx % cap_];
  s.stamp.store(0, std::memory_order_release);  // invalidate for readers
  s.rec = rec;
  s.stamp.store(idx + 1, std::memory_order_release);  // publish
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(cap_);
  for (std::size_t i = 0; i < cap_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;
    SpanRecord rec = s.rec;
    if (s.stamp.load(std::memory_order_acquire) != before) continue;  // torn
    out.push_back(std::move(rec));
  }
  return out;
}

std::uint64_t SpanRing::dropped() const noexcept {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return h > cap_ ? h - cap_ : 0;
}

// ---- Tracer --------------------------------------------------------------------

Tracer::Tracer(std::uint64_t seed) : salt_(mix(seed ^ fnv1a("doceph.tracer"))) {}

TraceContext Tracer::root_context(std::uint64_t key) const {
  const std::uint32_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0) return {};
  TraceContext ctx;
  ctx.trace_id = mix(salt_ ^ mix(key));
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  const bool sampled = n == 1 || mix(ctx.trace_id ^ kSampleSalt) % n == 0;
  if (!sampled) return {};
  ctx.flags = TraceContext::kSampled;
  return ctx;
}

SpanRing& Tracer::ring_for(const std::string& domain) {
  auto it = rings_.find(domain);
  if (it == rings_.end()) {
    it = rings_
             .emplace(domain, std::make_unique<SpanRing>(
                                  ring_capacity_.load(std::memory_order_relaxed)))
             .first;
  }
  return *it->second;
}

Span Tracer::span(std::string_view name, std::string_view domain,
                  const TraceContext& parent, std::int64_t start,
                  std::uint64_t index) {
  if (!parent.sampled()) return {};
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.parent_id = parent.span_id;
  rec.span_id =
      derive_span_id(parent.trace_id, parent.span_id, name, domain, start, index);
  rec.name = std::string(name);
  rec.domain = std::string(domain);
  rec.start = start;
  TraceContext ctx{parent.trace_id, rec.span_id, parent.flags};
  {
    const dbg::LockGuard lk(mutex_);
    open_[rec.span_id] = std::move(rec);
  }
  return Span(this, ctx);
}

TraceContext Tracer::record_span(std::string_view name, std::string_view domain,
                                 const TraceContext& parent, std::int64_t start,
                                 std::int64_t end_at, std::uint64_t index) {
  if (!parent.sampled()) return {};
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.parent_id = parent.span_id;
  rec.span_id =
      derive_span_id(parent.trace_id, parent.span_id, name, domain, start, index);
  rec.name = std::string(name);
  rec.domain = std::string(domain);
  rec.start = start;
  rec.end = end_at;
  const TraceContext ctx{parent.trace_id, rec.span_id, parent.flags};
  {
    const dbg::LockGuard lk(mutex_);
    ring_for(rec.domain).push(rec);
  }
  return ctx;
}

void Tracer::end_span(const TraceContext& ctx, std::int64_t at) {
  const dbg::LockGuard lk(mutex_);
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  SpanRecord rec = std::move(it->second);
  open_.erase(it);
  rec.end = at < rec.start ? rec.start : at;
  ring_for(rec.domain).push(rec);
}

std::vector<SpanRecord> Tracer::completed(std::string_view domain_filter) const {
  std::vector<SpanRecord> out;
  {
    const dbg::LockGuard lk(mutex_);
    for (const auto& [domain, ring] : rings_) {
      if (!domain_filter.empty() && domain.find(domain_filter) == std::string::npos)
        continue;
      auto spans = ring->snapshot();
      out.insert(out.end(), std::make_move_iterator(spans.begin()),
                 std::make_move_iterator(spans.end()));
    }
  }
  std::sort(out.begin(), out.end(), span_less);
  return out;
}

std::vector<SpanRecord> Tracer::open_spans() const {
  std::vector<SpanRecord> out;
  {
    const dbg::LockGuard lk(mutex_);
    out.reserve(open_.size());
    for (const auto& [id, rec] : open_) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(), span_less);
  return out;
}

std::uint64_t Tracer::dropped() const {
  const dbg::LockGuard lk(mutex_);
  std::uint64_t n = 0;
  for (const auto& [domain, ring] : rings_) n += ring->dropped();
  return n;
}

void Tracer::reset() {
  const dbg::LockGuard lk(mutex_);
  rings_.clear();
}

std::string Tracer::dump_chrome_json(std::string_view domain_filter) const {
  const auto spans = completed(domain_filter);

  // Deterministic pid/tid assignment: domains and trace ids in sorted order.
  std::map<std::string, int> pids;
  std::map<std::uint64_t, int> tids;
  for (const auto& s : spans) {
    pids.emplace(s.domain, 0);
    tids.emplace(s.trace_id, 0);
  }
  int next = 1;
  for (auto& [domain, pid] : pids) pid = next++;
  next = 1;
  for (auto& [id, tid] : tids) tid = next++;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [domain, pid] : pids) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("name", "process_name");
    w.key("args");
    w.begin_object();
    w.kv("name", domain);
    w.end_object();
    w.end_object();
  }
  for (const auto& s : spans) {
    w.begin_object();
    w.kv("ph", "X");
    w.kv("pid", pids.at(s.domain));
    w.kv("tid", tids.at(s.trace_id));
    w.kv("name", s.name);
    w.kv("cat", "doceph");
    w.kv("ts", static_cast<double>(s.start) / 1e3);   // us
    w.kv("dur", static_cast<double>(s.end - s.start) / 1e3);
    w.key("args");
    w.begin_object();
    w.kv("trace_id", hex_id(s.trace_id));
    w.kv("span_id", hex_id(s.span_id));
    w.kv("parent_id", hex_id(s.parent_id));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void Tracer::flight_snapshot(std::string_view reason,
                             const std::vector<std::string>& fault_firings) {
  const std::int64_t at = clock_now();
  const auto open = open_spans();
  auto done = completed();
  // Bound the snapshot: keep the most recent completed spans (highest start).
  if (done.size() > kFlightCompletedCap)
    done.erase(done.begin(),
               done.end() - static_cast<std::ptrdiff_t>(kFlightCompletedCap));

  JsonWriter w;
  w.begin_object();
  w.kv("reason", reason);
  w.kv("at_ns", static_cast<std::int64_t>(at));
  w.key("open_spans");
  w.begin_array();
  for (const auto& s : open) span_to_json(w, s);
  w.end_array();
  w.key("completed_spans");
  w.begin_array();
  for (const auto& s : done) span_to_json(w, s);
  w.end_array();
  w.key("fault_firings");
  w.begin_array();
  const std::size_t skip =
      fault_firings.size() > kFlightFiringsCap ? fault_firings.size() - kFlightFiringsCap : 0;
  for (std::size_t i = skip; i < fault_firings.size(); ++i) w.value(fault_firings[i]);
  w.end_array();
  w.end_object();

  std::string dir;
  std::uint64_t seq = 0;
  {
    const dbg::LockGuard lk(mutex_);
    seq = flight_seq_++;
    flights_.emplace_back(std::string(reason), w.str());
    while (flights_.size() > kMaxFlights) flights_.pop_front();
    dir = flight_dir_;
  }
  if (!dir.empty()) {
    std::ofstream out(dir + "/flight_" + std::to_string(seq) + ".json");
    if (out) out << w.str() << "\n";
  }
}

std::string Tracer::last_flight_json() const {
  const dbg::LockGuard lk(mutex_);
  return flights_.empty() ? std::string{} : flights_.back().second;
}

std::size_t Tracer::flight_count() const {
  const dbg::LockGuard lk(mutex_);
  return flights_.size();
}

void Tracer::set_flight_dir(std::string dir) {
  const dbg::LockGuard lk(mutex_);
  flight_dir_ = std::move(dir);
}

}  // namespace doceph::trace
