#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace doceph {

/// Per-daemon command surface modeled on Ceph's admin socket, minus the
/// socket: a registry mapping string commands ("perf dump",
/// "dump_ops_in_flight", ...) to handlers that return JSON. Daemons register
/// their commands at startup and unregister at shutdown; tests and the
/// benchmark harness execute commands directly.
///
/// Commands are matched by longest token prefix, so "perf dump" and
/// "perf reset" coexist and surplus tokens become handler arguments.
/// Handlers run outside the registry lock (they may take daemon locks).
class AdminSocket {
 public:
  /// Returns the command's JSON output; `args` are the tokens after the
  /// matched command prefix.
  using Handler = std::function<std::string(const std::vector<std::string>& args)>;

  /// False (and no-op) if `command` is already registered.
  bool register_command(const std::string& command, std::string help, Handler h);
  void unregister_command(const std::string& command);
  void unregister_all();

  /// Tokenize `command_line`, find the longest registered prefix, run its
  /// handler. Errors: invalid_argument (empty line), not_found (no match).
  Result<std::string> execute(const std::string& command_line) const;

  [[nodiscard]] bool has_command(const std::string& command) const;

  /// {"command": "help text", ...} for every registered command.
  [[nodiscard]] std::string help_json() const;

 private:
  struct Entry {
    std::string help;
    Handler handler;
  };

  mutable std::mutex mutex_;  // doceph-lint: allow(bare-mutex) leaf registry, queried from unregistered test threads
  std::map<std::string, Entry> commands_;
};

}  // namespace doceph
