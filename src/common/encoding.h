#pragma once

#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/buffer.h"

/// Denc-style encoding, modeled after Ceph's encode()/decode() free-function
/// protocol. All integers are encoded little-endian fixed-width. A type T
/// participates either as a primitive handled here or by providing member
/// functions:
///
///   void encode(BufferList& bl) const;
///   bool decode(BufferList::Cursor& cur);   // returns false on malformed input
///
/// Decoders never throw: malformed input yields `false`, which callers
/// propagate (the messenger maps it to Errc::corrupt).
namespace doceph {

namespace detail {

template <typename T>
concept MemberEncodable = requires(const T t, BufferList& bl) { t.encode(bl); };

template <typename T>
concept MemberDecodable =
    requires(T t, BufferList::Cursor& cur) { { t.decode(cur) } -> std::convertible_to<bool>; };

template <std::integral T>
void put_le(BufferList& bl, T v) {
  using U = std::make_unsigned_t<T>;
  auto u = static_cast<U>(v);
  char buf[sizeof(U)];
  for (std::size_t i = 0; i < sizeof(U); ++i) {
    buf[i] = static_cast<char>(u & 0xff);
    u = static_cast<U>(u >> 8);
  }
  bl.append(buf, sizeof(U));
}

template <std::integral T>
bool get_le(BufferList::Cursor& cur, T& v) {
  using U = std::make_unsigned_t<T>;
  unsigned char buf[sizeof(U)];
  if (!cur.copy(sizeof(U), buf)) return false;
  U u = 0;
  for (std::size_t i = sizeof(U); i-- > 0;) u = static_cast<U>((u << 8) | buf[i]);
  v = static_cast<T>(u);
  return true;
}

}  // namespace detail

// ---- integral / bool / enum ------------------------------------------------

template <std::integral T>
void encode(T v, BufferList& bl) {
  detail::put_le(bl, v);
}

template <std::integral T>
[[nodiscard]] bool decode(T& v, BufferList::Cursor& cur) {
  return detail::get_le(cur, v);
}

inline void encode(bool v, BufferList& bl) { encode(static_cast<std::uint8_t>(v), bl); }
[[nodiscard]] inline bool decode(bool& v, BufferList::Cursor& cur) {
  std::uint8_t u = 0;
  if (!decode(u, cur)) return false;
  v = (u != 0);
  return true;
}

template <typename T>
  requires std::is_enum_v<T>
void encode(T v, BufferList& bl) {
  encode(static_cast<std::underlying_type_t<T>>(v), bl);
}

template <typename T>
  requires std::is_enum_v<T>
[[nodiscard]] bool decode(T& v, BufferList::Cursor& cur) {
  std::underlying_type_t<T> u{};
  if (!decode(u, cur)) return false;
  v = static_cast<T>(u);
  return true;
}

inline void encode(double v, BufferList& bl) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  encode(u, bl);
}
[[nodiscard]] inline bool decode(double& v, BufferList::Cursor& cur) {
  std::uint64_t u = 0;
  if (!decode(u, cur)) return false;
  std::memcpy(&v, &u, sizeof(v));
  return true;
}

// ---- strings / buffer lists ------------------------------------------------

inline void encode(const std::string& s, BufferList& bl) {
  encode(static_cast<std::uint32_t>(s.size()), bl);
  bl.append(s);
}
[[nodiscard]] inline bool decode(std::string& s, BufferList::Cursor& cur) {
  std::uint32_t n = 0;
  if (!decode(n, cur)) return false;
  if (cur.remaining() < n) return false;
  s.resize(n);
  return cur.copy(n, s.data());
}

/// A nested BufferList is encoded with a 32-bit length prefix; decode is
/// zero-copy (shares the underlying slices).
inline void encode(const BufferList& data, BufferList& bl) {
  encode(static_cast<std::uint32_t>(data.length()), bl);
  bl.append(data);
}
[[nodiscard]] inline bool decode(BufferList& data, BufferList::Cursor& cur) {
  std::uint32_t n = 0;
  if (!decode(n, cur)) return false;
  return cur.get_buffer_list(n, data);
}

// ---- member-encodable structs ----------------------------------------------

template <detail::MemberEncodable T>
void encode(const T& v, BufferList& bl) {
  v.encode(bl);
}

template <detail::MemberDecodable T>
[[nodiscard]] bool decode(T& v, BufferList::Cursor& cur) {
  return v.decode(cur);
}

// ---- containers --------------------------------------------------------------

template <typename A, typename B>
void encode(const std::pair<A, B>& p, BufferList& bl) {
  encode(p.first, bl);
  encode(p.second, bl);
}
template <typename A, typename B>
[[nodiscard]] bool decode(std::pair<A, B>& p, BufferList::Cursor& cur) {
  return decode(p.first, cur) && decode(p.second, cur);
}

template <typename T>
void encode(const std::vector<T>& v, BufferList& bl) {
  encode(static_cast<std::uint32_t>(v.size()), bl);
  for (const auto& e : v) encode(e, bl);
}
template <typename T>
[[nodiscard]] bool decode(std::vector<T>& v, BufferList::Cursor& cur) {
  std::uint32_t n = 0;
  if (!decode(n, cur)) return false;
  // Defend against hostile sizes: never reserve more than remaining bytes.
  if (n > cur.remaining() && n > cur.remaining() * 8 + 64) return false;
  v.clear();
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T e{};
    if (!decode(e, cur)) return false;
    v.push_back(std::move(e));
  }
  return true;
}

template <typename K, typename V>
void encode(const std::map<K, V>& m, BufferList& bl) {
  encode(static_cast<std::uint32_t>(m.size()), bl);
  for (const auto& [k, v] : m) {
    encode(k, bl);
    encode(v, bl);
  }
}
template <typename K, typename V>
[[nodiscard]] bool decode(std::map<K, V>& m, BufferList::Cursor& cur) {
  std::uint32_t n = 0;
  if (!decode(n, cur)) return false;
  m.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    K k{};
    V v{};
    if (!decode(k, cur) || !decode(v, cur)) return false;
    m.emplace(std::move(k), std::move(v));
  }
  return true;
}

template <typename T>
void encode(const std::optional<T>& o, BufferList& bl) {
  encode(o.has_value(), bl);
  if (o) encode(*o, bl);
}
template <typename T>
[[nodiscard]] bool decode(std::optional<T>& o, BufferList::Cursor& cur) {
  bool has = false;
  if (!decode(has, cur)) return false;
  if (!has) {
    o.reset();
    return true;
  }
  T v{};
  if (!decode(v, cur)) return false;
  o = std::move(v);
  return true;
}

/// Encode a value into a fresh BufferList (convenience for tests and RPC).
template <typename T>
BufferList encode_to_bl(const T& v) {
  BufferList bl;
  encode(v, bl);
  return bl;
}

/// Decode a full value from a BufferList (convenience).
template <typename T>
[[nodiscard]] bool decode_from_bl(T& v, const BufferList& bl) {
  BufferList::Cursor cur(bl);
  return decode(v, cur);
}

}  // namespace doceph
