#pragma once

#include <cassert>
#include <cstdint>
#include <map>

namespace doceph {

/// A set of disjoint, coalesced half-open intervals [off, off+len), keyed by
/// offset. Used by the extent allocator and PG missing-range tracking.
template <typename T = std::uint64_t>
class IntervalSet {
 public:
  using Map = std::map<T, T>;  // offset -> length
  using const_iterator = typename Map::const_iterator;

  [[nodiscard]] bool empty() const noexcept { return m_.empty(); }
  [[nodiscard]] std::size_t num_intervals() const noexcept { return m_.size(); }
  [[nodiscard]] T size() const noexcept { return total_; }

  const_iterator begin() const noexcept { return m_.begin(); }
  const_iterator end() const noexcept { return m_.end(); }

  void clear() noexcept {
    m_.clear();
    total_ = 0;
  }

  /// True iff [off, off+len) is fully contained.
  [[nodiscard]] bool contains(T off, T len = 1) const {
    if (len == 0) return true;
    auto it = find_covering(off);
    return it != m_.end() && off + len <= it->first + it->second;
  }

  /// True iff [off, off+len) intersects any interval.
  [[nodiscard]] bool intersects(T off, T len) const {
    if (len == 0) return false;
    auto it = m_.lower_bound(off);
    if (it != m_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > off) return true;
    }
    return it != m_.end() && it->first < off + len;
  }

  /// Insert [off, off+len); must not overlap existing content (checked).
  void insert(T off, T len) {
    if (len == 0) return;
    assert(!intersects(off, len) && "IntervalSet::insert overlap");
    total_ += len;
    auto it = m_.lower_bound(off);
    // Merge with successor?
    const bool merge_next = it != m_.end() && it->first == off + len;
    // Merge with predecessor?
    bool merge_prev = false;
    if (it != m_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == off) {
        merge_prev = true;
        it = prev;
      }
    }
    if (merge_prev && merge_next) {
      auto next = std::next(it);
      it->second += len + next->second;
      m_.erase(next);
    } else if (merge_prev) {
      it->second += len;
    } else if (merge_next) {
      const T nlen = it->second;
      m_.erase(it);
      m_.emplace(off, len + nlen);
    } else {
      m_.emplace(off, len);
    }
  }

  /// Insert [off, off+len), ignoring parts that are already present.
  void union_insert(T off, T len) {
    while (len > 0) {
      auto it = find_covering(off);
      if (it != m_.end()) {
        const T covered_end = it->first + it->second;
        if (covered_end >= off + len) return;
        len -= covered_end - off;
        off = covered_end;
        continue;
      }
      // Gap from off to the next interval start (or off+len).
      auto next = m_.lower_bound(off);
      const T gap_end = next == m_.end() ? off + len : std::min(off + len, next->first);
      insert(off, gap_end - off);
      len -= gap_end - off;
      off = gap_end;
    }
  }

  /// Erase [off, off+len); the range must be fully contained (checked).
  void erase(T off, T len) {
    if (len == 0) return;
    auto it = find_covering(off);
    assert(it != m_.end() && off + len <= it->first + it->second &&
           "IntervalSet::erase range not contained");
    const T istart = it->first;
    const T ilen = it->second;
    m_.erase(it);
    total_ -= len;
    if (istart < off) m_.emplace(istart, off - istart);
    if (off + len < istart + ilen) m_.emplace(off + len, istart + ilen - (off + len));
  }

  /// First interval of length >= len, or end(). (First-fit allocation.)
  [[nodiscard]] const_iterator find_first_fit(T len) const {
    for (auto it = m_.begin(); it != m_.end(); ++it)
      if (it->second >= len) return it;
    return m_.end();
  }

 private:
  /// Interval containing `off`, or end().
  [[nodiscard]] const_iterator find_covering(T off) const {
    auto it = m_.upper_bound(off);
    if (it == m_.begin()) return m_.end();
    --it;
    return off < it->first + it->second ? it : m_.end();
  }

  Map m_;
  T total_ = 0;
};

}  // namespace doceph
