#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace doceph {

/// A reference-counted, immutable-after-fill view of raw bytes.
/// Copying a Slice is O(1); the underlying storage is shared.
class Slice {
 public:
  Slice() noexcept = default;
  Slice(std::shared_ptr<char[]> store, std::size_t off, std::size_t len) noexcept
      : store_(std::move(store)), off_(off), len_(len) {}

  /// Allocate an uninitialized slice of `len` bytes (single owner until shared).
  static Slice allocate(std::size_t len);
  /// Allocate and fill from `data`.
  static Slice copy_of(const void* data, std::size_t len);
  static Slice copy_of(std::string_view sv) { return copy_of(sv.data(), sv.size()); }

  [[nodiscard]] const char* data() const noexcept { return store_.get() + off_; }
  [[nodiscard]] char* mutable_data() noexcept { return store_.get() + off_; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }

  /// Zero-copy sub-view; `off + len` must be within the slice.
  [[nodiscard]] Slice subslice(std::size_t off, std::size_t len) const;

 private:
  std::shared_ptr<char[]> store_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// A rope of Slices, modeled after Ceph's bufferlist: appending, zero-copy
/// substr/claim, checksumming, and a decode Cursor. This is the unit of
/// payload throughout the messenger, object store, and proxy layers.
class BufferList {
 public:
  BufferList() = default;

  [[nodiscard]] std::size_t length() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  void clear() noexcept {
    slices_.clear();
    len_ = 0;
  }

  void append(Slice s);
  void append(const void* data, std::size_t len);
  void append(std::string_view sv) { append(sv.data(), sv.size()); }
  void append(char c) { append(&c, 1); }
  /// Append `len` zero bytes.
  void append_zero(std::size_t len);
  /// Append another list's slices (zero copy).
  void append(const BufferList& other);
  /// Move another list's slices onto the end of this one; `other` is emptied.
  void claim_append(BufferList& other);

  static BufferList copy_of(const void* data, std::size_t len) {
    BufferList bl;
    bl.append(data, len);
    return bl;
  }
  static BufferList copy_of(std::string_view sv) { return copy_of(sv.data(), sv.size()); }

  /// Zero-copy sub-list [off, off+len). Clamps to the available length.
  [[nodiscard]] BufferList substr(std::size_t off, std::size_t len) const;

  /// Copy out [off, off+len) into dst; returns bytes copied (clamped).
  std::size_t copy_out(std::size_t off, std::size_t len, void* dst) const;

  [[nodiscard]] std::string to_string() const;

  /// CRC-32C over the whole content, continuing from `seed`.
  [[nodiscard]] std::uint32_t crc32c(std::uint32_t seed = 0) const;

  /// Number of underlying slices (for tests / copy-avoidance assertions).
  [[nodiscard]] std::size_t num_slices() const noexcept { return slices_.size(); }
  [[nodiscard]] const std::vector<Slice>& slices() const noexcept { return slices_; }

  /// Flatten into a single contiguous slice (copies only if fragmented).
  [[nodiscard]] Slice contiguous() const;

  /// Byte-wise equality (content, not fragmentation).
  friend bool operator==(const BufferList& a, const BufferList& b);

  /// Sequential reader over a BufferList, used by decoders.
  class Cursor {
   public:
    explicit Cursor(const BufferList& bl) noexcept : bl_(&bl) {}
    explicit Cursor(const BufferList&& bl) = delete;  // no binding to temporaries

    [[nodiscard]] std::size_t remaining() const noexcept { return bl_->len_ - pos_; }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

    /// Copy `len` bytes to dst and advance. Returns false (without moving)
    /// if fewer than `len` bytes remain.
    bool copy(std::size_t len, void* dst);
    /// Extract `len` bytes as a zero-copy BufferList and advance.
    bool get_buffer_list(std::size_t len, BufferList& out);
    bool skip(std::size_t len);

   private:
    const BufferList* bl_;
    std::size_t pos_ = 0;
  };

 private:
  std::vector<Slice> slices_;
  std::size_t len_ = 0;
};

}  // namespace doceph
