#include "common/admin_socket.h"

#include <sstream>

#include "common/json.h"

namespace doceph {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(std::move(tok));
  return out;
}

}  // namespace

bool AdminSocket::register_command(const std::string& command, std::string help,
                                   Handler h) {
  const std::lock_guard<std::mutex> lk(mutex_);
  return commands_.try_emplace(command, Entry{std::move(help), std::move(h)}).second;
}

void AdminSocket::unregister_command(const std::string& command) {
  const std::lock_guard<std::mutex> lk(mutex_);
  commands_.erase(command);
}

void AdminSocket::unregister_all() {
  const std::lock_guard<std::mutex> lk(mutex_);
  commands_.clear();
}

bool AdminSocket::has_command(const std::string& command) const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return commands_.contains(command);
}

Result<std::string> AdminSocket::execute(const std::string& command_line) const {
  const std::vector<std::string> tokens = tokenize(command_line);
  if (tokens.empty()) return Status(Errc::invalid_argument, "empty command");

  // Longest-prefix match so multi-word commands win over their prefixes.
  Handler handler;
  std::size_t matched = 0;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    std::string prefix;
    for (std::size_t n = 1; n <= tokens.size(); ++n) {
      if (n > 1) prefix += ' ';
      prefix += tokens[n - 1];
      auto it = commands_.find(prefix);
      if (it != commands_.end()) {
        handler = it->second.handler;
        matched = n;
      }
    }
  }
  if (matched == 0)
    return Status(Errc::not_found, "unknown command: " + tokens.front());

  const std::vector<std::string> args(tokens.begin() + static_cast<long>(matched),
                                      tokens.end());
  // Outside the lock: handlers may take daemon locks or re-enter the socket.
  return handler(args);
}

std::string AdminSocket::help_json() const {
  std::map<std::string, std::string> help;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    for (const auto& [cmd, e] : commands_) help[cmd] = e.help;
  }
  JsonWriter w;
  w.begin_object();
  for (const auto& [cmd, text] : help) w.kv(cmd, text);
  w.end_object();
  return w.str();
}

}  // namespace doceph
