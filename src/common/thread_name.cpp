#include "common/thread_name.h"

#include <pthread.h>

#include <algorithm>

namespace doceph {
namespace {

thread_local std::string t_name = "unnamed";

}  // namespace

void set_current_thread_name(std::string_view name) {
  t_name.assign(name);
  // The kernel limits names to 15 chars + NUL; truncate for the OS copy only.
  char buf[16];
  const std::size_t n = std::min<std::size_t>(name.size(), 15);
  std::copy_n(name.data(), n, buf);
  buf[n] = '\0';
  pthread_setname_np(pthread_self(), buf);
}

const std::string& current_thread_name() noexcept { return t_name; }

}  // namespace doceph
