#pragma once

#include <string>
#include <string_view>

namespace doceph {

/// Set the calling thread's name (both a process-local registry used by the
/// metrics/attribution machinery and, best-effort, the OS thread name).
/// Names follow Ceph's conventions: "msgr-worker-0", "tp_osd_tp", "bstore_kv_sync"...
void set_current_thread_name(std::string_view name);

/// Name previously set with set_current_thread_name(), or "main"/"unnamed".
const std::string& current_thread_name() noexcept;

}  // namespace doceph
