#pragma once

#include <array>
#include <string_view>

namespace doceph::fault {

/// Central registry of every fault-point name in the tree.
///
/// A fault point is a name passed to FaultRegistry::should_fire()/hit()
/// (consulting side) or set()/fire_next() (arming side). Names are
/// "<layer>.<event>"; the scope string passed alongside selects instances
/// (e.g. match=dpu-0). Every name used anywhere in src/, tests/ or bench/
/// MUST be listed here — scripts/doceph_lint.py cross-checks call-site
/// string literals against this header, so a typo'd point that would arm
/// (or probe) a name nothing ever consults fails lint instead of silently
/// never firing.
///
/// Keep the list sorted by layer, then name. DESIGN.md §7 documents the
/// semantics of each point.
namespace points {

// net/ — consulted per message hop in Fabric (scope "src->dst:port").
inline constexpr std::string_view kNetDelay = "net.delay";
inline constexpr std::string_view kNetDisconnect = "net.disconnect";
inline constexpr std::string_view kNetDrop = "net.drop";
inline constexpr std::string_view kNetPartition = "net.partition";

// doca/ — CommChannel sends and DMA transfers (scope: device name).
// doca.dma_error is batch-aware: on a scatter-gather job it is consulted
// once per extent (scope "<engine>#<extent-index>") and fails only the
// matched extent, not the whole batch.
inline constexpr std::string_view kDocaComchDrop = "doca.comch_drop";
inline constexpr std::string_view kDocaComchStall = "doca.comch_stall";
inline constexpr std::string_view kDocaDmaError = "doca.dma_error";

// proxy/ (DPU side) — batching hot path (scope: batcher/channel name).
// Firing stalls the doorbell: the flush is deferred by the fault's
// delay_ns instead of being sent, then retried.
inline constexpr std::string_view kDpuBatchFlushStall = "dpu.batch_flush_stall";

// bluestore/ — per block-device IO (scope: BlockDeviceConfig::name).
inline constexpr std::string_view kBdevIoError = "bdev.io_error";
inline constexpr std::string_view kBdevLatencySpike = "bdev.latency_spike";

// osd/ — crash/restart points are polled by the cluster chaos monitor;
// osd.overload is consulted inline at client-op dispatch and forces the
// next op to be bounced with Errc::throttled (scope "osd.N").
inline constexpr std::string_view kOsdCrash = "osd.crash";
inline constexpr std::string_view kOsdHardCrash = "osd.hard_crash";
inline constexpr std::string_view kOsdOverload = "osd.overload";
inline constexpr std::string_view kOsdRestart = "osd.restart";

}  // namespace points

/// Every registered point, for enumeration (admin tooling, tests).
inline constexpr std::array<std::string_view, 14> kAllFaultPoints = {
    points::kNetDelay,      points::kNetDisconnect,   points::kNetDrop,
    points::kNetPartition,  points::kDocaComchDrop,   points::kDocaComchStall,
    points::kDocaDmaError,  points::kDpuBatchFlushStall,
    points::kBdevIoError,   points::kBdevLatencySpike,
    points::kOsdCrash,      points::kOsdHardCrash,    points::kOsdOverload,
    points::kOsdRestart,
};

}  // namespace doceph::fault
