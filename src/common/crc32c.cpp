#include "common/crc32c.h"

#include <array>

namespace doceph {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[j][i] = c;
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;  // thread-safe magic static
  return t;
}

inline std::uint32_t load_le32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) noexcept {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;

  // Align to 8 bytes.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --len;
  }

  while (len >= 8) {
    const std::uint32_t lo = load_le32(p) ^ crc;
    const std::uint32_t hi = load_le32(p + 4);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][(lo >> 24) & 0xff] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][(hi >> 24) & 0xff];
    p += 8;
    len -= 8;
  }

  while (len-- > 0) crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  return ~crc;
}

}  // namespace doceph
