#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace doceph {

/// Result<T>: either a value or a non-ok Status. A tiny `expected`-like type;
/// C++20 has no std::expected, and the codebase avoids exceptions across
/// module boundaries.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : v_(std::move(value)) {}  // NOLINT
  /*implicit*/ Result(Status s) : v_(std::move(s)) {      // NOLINT
    assert(!std::get<Status>(v_).ok() && "ok Status carries no value");
  }
  /*implicit*/ Result(Errc c) : Result(Status(c)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace doceph
