#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace doceph::common {

/// Canonical PG-stable lane hash: maps a placement group (pool, seed) onto
/// one of `n` shards. Every layer that fans PG-ordered work across parallel
/// lanes (OSD op shards, DPU proxy write workers) MUST use this exact
/// function so an object's work lands on the same lane at every hop and
/// per-object ordering is preserved end to end (DESIGN.md §15). The mixing
/// constant is JS-hash's; it predates the sharded OSD (the proxy write
/// workers shipped with it), so it is frozen for replay compatibility.
[[nodiscard]] inline std::size_t shard_of_pg(std::int64_t pool,
                                             std::uint32_t pg_seed,
                                             std::size_t n) noexcept {
  if (n <= 1) return 0;
  return (static_cast<std::size_t>(pool) * 1315423911u + pg_seed) % n;
}

/// Deterministic FNV-1a over a key token — the KV-shard router. Never
/// std::hash (implementation-defined: would break same-seed reproducibility
/// across standard libraries).
[[nodiscard]] inline std::size_t shard_of_key(std::string_view token,
                                              std::size_t n) noexcept {
  if (n <= 1) return 0;
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % n);
}

}  // namespace doceph::common
