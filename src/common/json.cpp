#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace doceph {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "0";  // JSON has no inf/nan; counters never legitimately produce them
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
}

}  // namespace doceph
