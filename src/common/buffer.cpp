#include "common/buffer.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"

namespace doceph {

Slice Slice::allocate(std::size_t len) {
  // shared_ptr<char[]> with value-init suppressed: make_shared value-inits,
  // which we avoid for large buffers; use the default_init overload pattern.
  std::shared_ptr<char[]> store(new char[len]);
  return {std::move(store), 0, len};
}

Slice Slice::copy_of(const void* data, std::size_t len) {
  Slice s = allocate(len);
  if (len > 0) std::memcpy(s.mutable_data(), data, len);
  return s;
}

Slice Slice::subslice(std::size_t off, std::size_t len) const {
  assert(off + len <= len_);
  return {store_, off_ + off, len};
}

void BufferList::append(Slice s) {
  if (s.empty()) return;
  len_ += s.size();
  slices_.push_back(std::move(s));
}

void BufferList::append(const void* data, std::size_t len) {
  if (len == 0) return;
  append(Slice::copy_of(data, len));
}

void BufferList::append_zero(std::size_t len) {
  if (len == 0) return;
  Slice s = Slice::allocate(len);
  std::memset(s.mutable_data(), 0, len);
  append(std::move(s));
}

void BufferList::append(const BufferList& other) {
  slices_.insert(slices_.end(), other.slices_.begin(), other.slices_.end());
  len_ += other.len_;
}

void BufferList::claim_append(BufferList& other) {
  for (auto& s : other.slices_) slices_.push_back(std::move(s));
  len_ += other.len_;
  other.slices_.clear();
  other.len_ = 0;
}

BufferList BufferList::substr(std::size_t off, std::size_t len) const {
  BufferList out;
  if (off >= len_) return out;
  len = std::min(len, len_ - off);
  std::size_t pos = 0;
  for (const auto& s : slices_) {
    if (len == 0) break;
    const std::size_t s_end = pos + s.size();
    if (s_end <= off) {
      pos = s_end;
      continue;
    }
    const std::size_t start_in_s = off > pos ? off - pos : 0;
    const std::size_t take = std::min(len, s.size() - start_in_s);
    out.append(s.subslice(start_in_s, take));
    off += take;
    len -= take;
    pos = s_end;
  }
  return out;
}

std::size_t BufferList::copy_out(std::size_t off, std::size_t len, void* dst) const {
  if (off >= len_) return 0;
  len = std::min(len, len_ - off);
  auto* out = static_cast<char*>(dst);
  std::size_t copied = 0;
  std::size_t pos = 0;
  for (const auto& s : slices_) {
    if (copied == len) break;
    const std::size_t s_end = pos + s.size();
    if (s_end <= off + copied) {
      pos = s_end;
      continue;
    }
    const std::size_t start_in_s = (off + copied) - pos;
    const std::size_t take = std::min(len - copied, s.size() - start_in_s);
    std::memcpy(out + copied, s.data() + start_in_s, take);
    copied += take;
    pos = s_end;
  }
  return copied;
}

std::string BufferList::to_string() const {
  std::string out;
  out.resize(len_);
  copy_out(0, len_, out.data());
  return out;
}

std::uint32_t BufferList::crc32c(std::uint32_t seed) const {
  std::uint32_t crc = seed;
  for (const auto& s : slices_) crc = doceph::crc32c(crc, s.data(), s.size());
  return crc;
}

Slice BufferList::contiguous() const {
  if (slices_.size() == 1) return slices_.front();
  Slice s = Slice::allocate(len_);
  copy_out(0, len_, s.mutable_data());
  return s;
}

bool operator==(const BufferList& a, const BufferList& b) {
  if (a.len_ != b.len_) return false;
  // Compare without flattening: walk both ropes.
  std::size_t ia = 0, ib = 0, oa = 0, ob = 0, left = a.len_;
  while (left > 0) {
    const Slice& sa = a.slices_[ia];
    const Slice& sb = b.slices_[ib];
    const std::size_t n = std::min({sa.size() - oa, sb.size() - ob, left});
    if (std::memcmp(sa.data() + oa, sb.data() + ob, n) != 0) return false;
    oa += n;
    ob += n;
    left -= n;
    if (oa == sa.size()) {
      ++ia;
      oa = 0;
    }
    if (ob == sb.size()) {
      ++ib;
      ob = 0;
    }
  }
  return true;
}

bool BufferList::Cursor::copy(std::size_t len, void* dst) {
  if (remaining() < len) return false;
  bl_->copy_out(pos_, len, dst);
  pos_ += len;
  return true;
}

bool BufferList::Cursor::get_buffer_list(std::size_t len, BufferList& out) {
  if (remaining() < len) return false;
  out = bl_->substr(pos_, len);
  pos_ += len;
  return true;
}

bool BufferList::Cursor::skip(std::size_t len) {
  if (remaining() < len) return false;
  pos_ += len;
  return true;
}

}  // namespace doceph
