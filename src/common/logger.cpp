#include "common/logger.h"

#include <cstdio>
#include <mutex>
#include <string>

#include "common/thread_name.h"

namespace doceph::log {
namespace {

std::atomic<Level> g_level{Level::warn};
std::mutex g_out_mutex;  // doceph-lint: allow(bare-mutex) logging must work during lockdep/mutex failure reporting itself

constexpr std::string_view level_name(Level l) {
  switch (l) {
    case Level::trace: return "TRACE";
    case Level::debug: return "DEBUG";
    case Level::info: return "INFO";
    case Level::warn: return "WARN";
    case Level::error: return "ERROR";
    case Level::off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level lvl) noexcept { g_level.store(lvl, std::memory_order_relaxed); }
Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

Record::Record(Level lvl, std::string_view subsys) : lvl_(lvl) {
  os_ << '[' << level_name(lvl) << "][" << subsys << "][" << current_thread_name() << "] ";
}

Record::~Record() {  // NOLINT(bugprone-exception-escape): log emission at scope exit; a throw terminates, by design
  os_ << '\n';
  const std::string line = os_.str();
  const std::lock_guard<std::mutex> lock(g_out_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace doceph::log
