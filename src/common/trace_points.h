#pragma once

#include <array>
#include <string_view>

namespace doceph::trace {

/// Central registry of every span name in the tree.
///
/// A trace point is a span-name literal passed to Tracer::span() or
/// Tracer::record_span(). Names are "<layer>.<event>" (sub-events may nest
/// further dots); the domain string passed alongside selects the instance
/// (e.g. "osd.0", "dma.dpu-0"). Every name used anywhere in src/, tests/
/// or bench/ MUST be listed here — scripts/doceph_lint.py cross-checks
/// call-site string literals against this header, so a typo'd span name
/// that would fracture an op's span tree fails lint instead of silently
/// producing an orphan span.
///
/// Keep the list sorted by layer, then name. DESIGN.md §12 documents the
/// span taxonomy and which Fig.-2 stage each point covers.
namespace points {

// bluestore/ — WAL/KV commit of one transaction (domain "bluestore.<bdev>").
inline constexpr std::string_view kBluestoreTxn = "bluestore.txn";

// client/ — root span of one client op, submit -> completion (domain
// "client.<id>").
inline constexpr std::string_view kClientOp = "client.op";

// doca/ — one DMA copy job, submit -> completion (domain "dma.<engine>").
inline constexpr std::string_view kDocaDmaJob = "doca.dma_job";

// proxy/ (DPU side) — domain "dpu.<name>". dpu.batch parents the
// doca.dma_job spans of every segment that rode one coalesced flush.
inline constexpr std::string_view kDpuBatch = "dpu.batch";
inline constexpr std::string_view kDpuRead = "dpu.read";
inline constexpr std::string_view kDpuRpcSubmitTxn = "dpu.rpc.submit_txn";
inline constexpr std::string_view kDpuWrite = "dpu.write";

// proxy/ (host side) — comch request arrival -> store commit (domain
// "host.<name>").
inline constexpr std::string_view kHostStageBatch = "host.stage_batch";
inline constexpr std::string_view kHostSubmitTxn = "host.submit_txn";

// msgr/ — header arrival -> dispatcher return (domain "msgr.<entity>").
inline constexpr std::string_view kMsgrDispatch = "msgr.dispatch";

// osd/ — recv -> reply_sent, plus the five Fig.-2 stage children that
// exact-sum to it (domain "osd.<id>").
inline constexpr std::string_view kOsdOp = "osd.op";
inline constexpr std::string_view kOsdStageMessenger = "osd.stage.messenger";
inline constexpr std::string_view kOsdStageQueue = "osd.stage.queue";
inline constexpr std::string_view kOsdStageStore = "osd.stage.store";
inline constexpr std::string_view kOsdStageRepl = "osd.stage.replication";
inline constexpr std::string_view kOsdStageReply = "osd.stage.reply";
// osd.shard.enqueue marks the lane-routing decision at dispatch (domain
// "osd.<id>.lane<k>"; instantaneous, emitted only when op_shards > 1 so
// default-shard trace dumps stay byte-identical).
inline constexpr std::string_view kOsdShardEnqueue = "osd.shard.enqueue";
// osd.throttle replaces osd.op for ops bounced at admission (recv ->
// throttled reply sent; no stage children, the op never entered the queue).
inline constexpr std::string_view kOsdThrottle = "osd.throttle";

}  // namespace points

/// Every registered point, for enumeration (admin tooling, tests).
inline constexpr std::array<std::string_view, 18> kAllTracePoints = {
    points::kBluestoreTxn,     points::kClientOp,       points::kDocaDmaJob,
    points::kDpuBatch,         points::kDpuRead,        points::kDpuRpcSubmitTxn,
    points::kDpuWrite,         points::kHostStageBatch, points::kHostSubmitTxn,
    points::kMsgrDispatch,     points::kOsdOp,
    points::kOsdStageMessenger, points::kOsdStageQueue,  points::kOsdStageStore,
    points::kOsdStageRepl,     points::kOsdStageReply,
    points::kOsdShardEnqueue,  points::kOsdThrottle,
};

}  // namespace doceph::trace
