#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "dbg/mutex.h"

namespace doceph::fault {

/// One trigger armed on a fault point. A spec fires when its budget
/// (`count`) is not exhausted and any of its triggers matches the hit:
///
///   - `force_next`   unconditional fires for the next N matching hits
///   - `fire_at_hit`  fire exactly on the k-th matching hit (1-based)
///   - `fire_at_time` fire on every hit at/after the given sim time
///   - `probability`  fire with probability p, drawn from the entry's
///                    private deterministic stream
///
/// `match` scopes the spec to hits whose `scope` string contains it
/// (empty = every hit at the point). `delay_ns` is advisory extra latency
/// the hook applies when the spec fires (latency-spike style faults).
struct FaultSpec {
  double probability = 0.0;
  std::int64_t fire_at_hit = -1;
  std::int64_t fire_at_time = -1;
  std::int64_t count = -1;  ///< max fires; -1 = unlimited, 1 = one-shot
  std::int64_t force_next = 0;
  std::uint64_t delay_ns = 0;
  std::string match;
};

/// Result of consulting a fault point: whether any armed spec fired for
/// this hit, and the largest advisory delay among the specs that fired.
struct FaultHit {
  bool fired = false;
  std::uint64_t delay_ns = 0;
};

/// Deterministically seeded registry of named fault points.
///
/// Instrumented components call `should_fire("net.drop", now, scope)` (or
/// `hit()` when they also want the advisory delay) at the moment the fault
/// would take effect; the call is free when nothing is armed (one relaxed
/// atomic load). Tests, per-daemon config, and the admin socket
/// (`fault set/list/clear`) arm specs.
///
/// Determinism contract: each (point, match) entry owns a private
/// mt19937_64 seeded from splitmix(registry_seed, hash(point, match)), and
/// consumes exactly one draw per probabilistic evaluation, under the
/// registry lock. Whether hit #k fires is therefore a pure function of
/// (seed, k) — independent of thread interleaving and of wall/sim time.
/// The firing log records `point[@match]#hit_index` (no timestamps), so
/// two same-seed runs of a workload with identical per-point hit counts
/// produce byte-identical logs. Scripted time triggers (`fire_at_time`)
/// are deterministic when the consulting site runs at a fixed virtual-time
/// cadence (e.g. the cluster chaos monitor).
class FaultRegistry {
 public:
  explicit FaultRegistry(std::uint64_t seed = 42) : seed_(seed) {}

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Arm (or replace) the spec for (point, spec.match). Replacing resets
  /// that entry's hit/fire counters and random stream. A spec with no
  /// trigger (no probability/at-hit/at-time/force) disarms that entry.
  void set(const std::string& point, FaultSpec spec);

  /// Force the next `n` matching hits at `point` to fire. Merges into an
  /// existing (point, match) entry, preserving its counters and stream.
  void fire_next(const std::string& point, std::int64_t n, const std::string& match = "");

  /// Disarm all specs at `point`; returns true if any were armed.
  bool clear(const std::string& point);
  void clear_all();

  /// Cheap guard for hot paths: false iff no spec is armed anywhere.
  /// (Per-point probes still take the lock; callers gate on this first.)
  [[nodiscard]] bool any_armed() const noexcept {
    return armed_entries_.load(std::memory_order_relaxed) != 0;
  }

  /// Record one hit at `point` and evaluate every armed spec whose match
  /// is contained in `scope`. Returns the combined outcome.
  FaultHit hit(std::string_view point, std::int64_t now, std::string_view scope = {});

  /// Convenience wrapper for hooks that only need a boolean.
  bool should_fire(std::string_view point, std::int64_t now, std::string_view scope = {}) {
    return hit(point, now, scope).fired;
  }

  /// Total hits / fires across all entries at `point`.
  [[nodiscard]] std::uint64_t hits(std::string_view point) const;
  [[nodiscard]] std::uint64_t fires(std::string_view point) const;

  /// Ordered record of every fire: "point[@match]#hit_index".
  [[nodiscard]] std::vector<std::string> firing_log() const;

  /// JSON dump of every armed entry plus counters (admin `fault list`).
  [[nodiscard]] std::string list_json() const;

  /// Admin-socket verbs. `args` excludes the leading "fault" token:
  ///   set <point> [match=S] [p=F] [at_hit=N] [at_time=NS] [count=N]
  ///               [force=N] [delay_ns=NS]
  ///   list
  ///   clear [point]
  /// Returns a JSON reply (never throws; errors are {"error": ...}).
  std::string admin_command(const std::vector<std::string>& args);

 private:
  struct Entry {
    FaultSpec spec;
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
    std::mt19937_64 rng;
  };

  static std::uint64_t entry_seed(std::uint64_t seed, std::string_view point,
                                  std::string_view match) noexcept;
  Entry make_entry(std::string_view point, FaultSpec spec) const;
  void refresh_armed_locked() DOCEPH_REQUIRES(mutex_);

  // hit() is called from arbitrary hot paths, some while component locks
  // are held, so this mutex must stay a leaf: no FaultRegistry method may
  // acquire anything else while holding it. lockdep now verifies that
  // instead of the old plain-std::mutex code merely promising it.
  mutable dbg::Mutex mutex_{"common.fault_registry"};
  std::uint64_t seed_;  // set at construction, immutable afterwards
  std::atomic<std::uint64_t> armed_entries_{0};
  std::map<std::string, std::vector<Entry>, std::less<>> points_
      DOCEPH_GUARDED_BY(mutex_);
  std::vector<std::string> log_ DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::fault
