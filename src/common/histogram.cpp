#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/json.h"

namespace doceph {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 2) return static_cast<int>(v);  // buckets 0 and 1 are exact
  const int log2 = 63 - std::countl_zero(v);
  // Sub-bucket within the power of two: top bit after the leading one.
  const int sub = static_cast<int>((v >> (log2 - 1)) & 1u);
  const int idx = log2 * kSubBuckets + sub;
  return std::min(idx, kNumBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_bound(int i) noexcept {
  if (i < 2) return static_cast<std::uint64_t>(i);
  const int log2 = i / kSubBuckets;
  const int sub = i % kSubBuckets;
  // Upper bound of [2^log2 * (1 + sub/2), 2^log2 * (1 + (sub+1)/2)).
  const std::uint64_t base = 1ull << log2;
  return base + (base >> 1) * static_cast<std::uint64_t>(sub + 1) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  buckets_[static_cast<std::size_t>(bucket_index(value))]++;
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  ++count_;
  sum_ += value;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.buckets = buckets_;
  return s;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

void Histogram::merge(const Histogram& other) {
  const Snapshot o = other.snapshot();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets[i];
  if (o.count > 0) {
    if (count_ == 0 || o.min < min_) min_ = o.min;
    max_ = std::max(max_, o.max);
  }
  count_ += o.count;
  sum_ += o.sum;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t b = buckets[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    if (static_cast<double>(cum + b) >= target) {
      const std::uint64_t lo = i == 0 ? 0 : bucket_upper_bound(i - 1) + 1;
      const std::uint64_t hi = bucket_upper_bound(i);
      const double within = (target - static_cast<double>(cum)) / static_cast<double>(b);
      const double est = static_cast<double>(lo) + within * static_cast<double>(hi - lo);
      // Interpolation can overshoot the observed extremes; clamp to them.
      return std::clamp(est, static_cast<double>(min), static_cast<double>(max));
    }
    cum += b;
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::to_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("count", count);
  w.kv("sum", sum);
  w.kv("min", min);
  w.kv("max", max);
  w.kv("mean", mean());
  w.kv("p50", quantile(0.50));
  w.kv("p95", quantile(0.95));
  w.kv("p99", quantile(0.99));
  w.key("buckets");
  w.begin_array();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    w.begin_array();
    w.value(bucket_upper_bound(static_cast<int>(i)));
    w.value(buckets[i]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

std::string Histogram::Snapshot::to_json() const {
  JsonWriter w;
  to_json(w);
  return w.str();
}

}  // namespace doceph
