#include "cluster/cluster.h"

#include "common/json.h"
#include "common/logger.h"

namespace doceph::cluster {

Cluster::Cluster(sim::Env& env, ClusterConfig cfg)
    : env_(env), cfg_(std::move(cfg)), fabric_(env) {}

Cluster::~Cluster() { stop(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

Status Cluster::start() {
  // Runs on a registered sim thread: while we are RUNNABLE constructing
  // components, the clock cannot run ahead — and our own blocking calls
  // (mkfs, mounts, boots) legitimately advance it.

  // MON node (CPU-only machine).
  mon_net_ = &fabric_.add_node("mon-host", nic_for(cfg_.network), default_stack());
  mon_cpu_ = std::make_unique<sim::CpuDomain>(env_.keeper(), "mon", 4, cfg_.host_speed);
  mon_ = std::make_unique<mon::Monitor>(env_, fabric_, *mon_net_, mon_cpu_.get(),
                                        cfg_.storage_nodes);
  Status st = mon_->start();
  if (!st.ok()) return st;
  const net::Address mon_addr = mon_->addr();

  // Storage nodes.
  for (int i = 0; i < cfg_.storage_nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->host_cpu = std::make_unique<sim::CpuDomain>(
        env_.keeper(), "host-" + std::to_string(i), cfg_.host_cores, cfg_.host_speed);
    node->backing = std::make_shared<bluestore::DeviceBacking>();
    auto store_cfg = cfg_.store_config();
    store_cfg.device.name = "bdev-" + std::to_string(i);
    node->store = std::make_unique<bluestore::BlueStore>(
        env_, node->host_cpu.get(), store_cfg, node->backing);
    st = node->store->mkfs();
    if (!st.ok()) return st;
    st = node->store->mount();
    if (!st.ok()) return st;

    os::ObjectStore* osd_store = node->store.get();
    net::NetNode* osd_net = nullptr;
    sim::CpuDomain* osd_domain = nullptr;

    if (cfg_.mode == DeployMode::baseline) {
      // BlueField in NIC mode: the host owns the public network identity.
      node->host_net = &fabric_.add_node("storage-" + std::to_string(i),
                                         nic_for(cfg_.network), default_stack());
      osd_net = node->host_net;
      osd_domain = node->host_cpu.get();
    } else {
      // DPU mode: the ConnectX terminates on the DPU; the host is reachable
      // only through the proxy channel.
      node->dpu = std::make_unique<dpu::DpuDevice>(
          env_, fabric_, "dpu-" + std::to_string(i), cfg_.dpu_profile());
      node->pstore =
          std::make_unique<proxy::ProxyObjectStore>(env_, *node->dpu, cfg_.proxy);
      node->backend = std::make_unique<proxy::HostBackendService>(
          env_, *node->host_cpu, *node->store, node->dpu->host_comch(),
          node->pstore->slots().host_mmap(), node->pstore->slots().slot_size(),
          cfg_.backend);
      st = node->backend->start();
      if (!st.ok()) return st;
      st = node->pstore->mount();
      if (!st.ok()) return st;
      osd_store = node->pstore.get();
      osd_net = &node->dpu->net_node();
      osd_domain = &node->dpu->cpu();
    }

    auto osd_cfg = cfg_.osd_template;
    osd_cfg.id = i;
    // Only the cork knobs ride along: the messenger keeps its own calibrated
    // cost model (cfg_.msgr.costs model a different aggregation level).
    osd_cfg.msgr.cork = cfg_.msgr.cork;
    node->osd = std::make_unique<osd::OSD>(env_, fabric_, *osd_net, osd_domain,
                                           *osd_store, mon_addr, osd_cfg);
    st = node->osd->init();
    if (!st.ok()) return st;
    nodes_.push_back(std::move(node));
  }

  // Pool, then the client.
  mon_->create_pool(cfg_.pool_id, crush::PoolInfo{.name = "bench",
                                                  .pg_num = cfg_.pg_num,
                                                  .size = cfg_.replicas});

  client_net_ = &fabric_.add_node("client-host", nic_for(cfg_.network), default_stack());
  client_cpu_ = std::make_unique<sim::CpuDomain>(env_.keeper(), "client",
                                                 cfg_.client_cores, cfg_.host_speed);
  client_ = std::make_unique<client::RadosClient>(
      env_, fabric_, *client_net_, client_cpu_.get(), mon_addr, 1, cfg_.client);
  st = client_->connect();
  if (!st.ok()) return st;

  // Arm configured faults, then start the chaos monitor that executes
  // daemon-level fires (osd.crash / osd.restart).
  for (const auto& [point, spec] : cfg_.initial_faults) env_.faults().set(point, spec);
  chaos_stop_.store(false);
  chaos_.emplace(env_.spawn("cluster-chaos", nullptr, [this] { chaos_loop(); }));

  started_ = true;
  return Status::OK();
}

void Cluster::chaos_loop() {
  while (!chaos_stop_.load(std::memory_order_acquire)) {
    auto& faults = env_.faults();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = *nodes_[i];
      const std::string scope = "osd." + std::to_string(i);
      if (faults.any_armed()) {
        if (node.osd && !node.osd_down &&
            faults.should_fire("osd.crash", env_.now(), scope)) {
          DLOG(info, "cluster") << "chaos: crashing " << scope;
          node.osd->shutdown();
          node.osd_down = true;
        } else if (node.osd && !node.osd_down &&
                   faults.should_fire("osd.hard_crash", env_.now(), scope)) {
          DLOG(info, "cluster") << "chaos: hard-killing " << scope;
          (void)hard_kill_osd(static_cast<int>(i));
        } else if (node.osd_down &&
                   faults.should_fire("osd.restart", env_.now(), scope)) {
          node.restart_pending = true;
        }
      }
      // The node stays marked down until a restart actually succeeds; a
      // failed attempt (say, WAL replay tripping an armed bdev fault) is
      // retried on every poll.
      if (node.osd_down && node.restart_pending) {
        DLOG(info, "cluster") << "chaos: restarting " << scope;
        const Status st = restart_osd(static_cast<int>(i));
        if (st.ok()) {
          node.restart_pending = false;
        } else {
          DLOG(warn, "cluster") << "chaos: restart of " << scope
                                << " failed (will retry): " << st.to_string();
        }
      }
    }
    env_.keeper().sleep_for(cfg_.chaos_poll);
  }
}

Status Cluster::hard_kill_osd(int i) {
  Node& node = *nodes_.at(static_cast<std::size_t>(i));
  if (!node.osd || node.osd_down)
    return Status(Errc::invalid_argument, "osd." + std::to_string(i) + " not up");
  node.osd_down = true;
  // Flight recorder: snapshot open spans (the killed op's partial trace)
  // and recent fault firings *before* teardown destroys the TrackedOps
  // holding them.
  env_.tracer().flight_snapshot("osd." + std::to_string(i) + ".hard_crash",
                                env_.faults().firing_log());
  // Power-loss ordering: the NIC dies first (hard_kill downs the messenger
  // before anything else, so no error replies escape the dead node), then
  // the host store crashes — in-flight transactions and queued KV txns drop
  // with errors into the dying daemons, whose replies land on closed
  // connections. Nothing is drained or checkpointed. The OSD object stays
  // alive until the proxy/backend have failed their outstanding ops into
  // it.
  node.osd->hard_kill();
  node.store->simulate_crash();
  if (cfg_.mode == DeployMode::doceph) {
    if (node.pstore) (void)node.pstore->umount();
    if (node.backend) node.backend->shutdown();
  }
  node.osd.reset();
  if (cfg_.mode == DeployMode::doceph) {
    node.pstore.reset();
    node.backend.reset();
  }
  return Status::OK();
}

void Cluster::stop() {
  if (!started_) return;
  started_ = false;
  // Quiesce the chaos monitor before tearing daemons down (it may be
  // mid-restart; join waits that out). Wakes within one poll interval.
  chaos_stop_.store(true, std::memory_order_release);
  if (chaos_) {
    chaos_->join();
    chaos_.reset();
  }
  env_.faults().clear_all();
  if (client_) client_->shutdown();
  for (auto& node : nodes_) {
    if (node->osd) node->osd->shutdown();
  }
  for (auto& node : nodes_) {
    if (node->pstore) (void)node->pstore->umount();
    if (node->store) (void)node->store->umount();
    if (node->backend) node->backend->shutdown();
  }
  if (mon_) mon_->shutdown();
}

Status Cluster::restart_osd(int i) {
  auto& node = *nodes_.at(static_cast<std::size_t>(i));
  if (node.osd) {
    node.osd->shutdown();
    node.osd.reset();
  }

  // Hard-killed node: bring the host store back through the real recovery
  // path (checkpoint locate + WAL replay). This can fail — an armed bdev
  // fault during replay, say — in which case the node stays down and the
  // chaos monitor retries.
  if (!node.store->is_mounted()) {
    const Status st = node.store->mount();
    if (!st.ok()) {
      env_.tracer().flight_snapshot("osd." + std::to_string(i) + ".remount_failed",
                                    env_.faults().firing_log());
      return st;
    }
  }
  if (cfg_.mode == DeployMode::doceph && !node.pstore) {
    // Re-create the DPU-side daemons over the surviving DpuDevice so the
    // proxy re-attaches to the remounted host store (fresh slot pool, fresh
    // RPC channel; the backend maps the new pool's host-side segments).
    // The old comm channel was closed by the teardown; renegotiate it first.
    node.dpu->reset_comch();
    node.pstore =
        std::make_unique<proxy::ProxyObjectStore>(env_, *node.dpu, cfg_.proxy);
    node.backend = std::make_unique<proxy::HostBackendService>(
        env_, *node.host_cpu, *node.store, node.dpu->host_comch(),
        node.pstore->slots().host_mmap(), node.pstore->slots().slot_size(),
        cfg_.backend);
    Status st = node.backend->start();
    if (!st.ok()) return st;
    st = node.pstore->mount();
    if (!st.ok()) return st;
  }

  os::ObjectStore* osd_store = node.store.get();
  net::NetNode* osd_net = node.host_net;
  sim::CpuDomain* osd_domain = node.host_cpu.get();
  if (cfg_.mode == DeployMode::doceph) {
    osd_store = node.pstore.get();
    osd_net = &node.dpu->net_node();
    osd_domain = &node.dpu->cpu();
  }
  auto osd_cfg = cfg_.osd_template;
  osd_cfg.id = i;
  osd_cfg.msgr.cork = cfg_.msgr.cork;
  node.osd = std::make_unique<osd::OSD>(env_, fabric_, *osd_net, osd_domain,
                                        *osd_store, mon_->addr(), osd_cfg);
  const Status st = node.osd->init();
  if (st.ok()) node.osd_down = false;  // only a live OSD counts as up
  return st;
}

void Cluster::wait_all_clean() {
  while (true) {
    bool clean = true;
    for (auto& node : nodes_)
      if (node->osd && !node->osd_down) clean &= node->osd->all_clean();
    if (clean) return;
    env_.keeper().sleep_for(sim::Duration{100} * 1'000'000);  // 100 ms
  }
}

Cluster::ScrubReport Cluster::scrub_replicas() {
  ScrubReport rep;
  const auto map = mon_->current_map();
  for (const auto& [pool_id, pool] : map.pools()) {
    for (std::uint32_t seed = 0; seed < pool.pg_num; ++seed) {
      const crush::pg_t pg{pool_id, seed};
      const os::coll_t coll = pg.to_coll();

      // Per-object digest on every up acting member's host store.
      struct Digest {
        std::uint64_t size = 0;
        std::uint32_t crc = 0;
      };
      std::map<std::string, std::map<int, Digest>> objects;
      std::vector<int> scanned;
      for (const int osd_id : map.pg_to_acting(pg)) {
        Node& node = *nodes_.at(static_cast<std::size_t>(osd_id));
        if (node.osd_down || !node.store->is_mounted()) continue;
        scanned.push_back(osd_id);
        if (!node.store->collection_exists(coll)) continue;
        auto listed = node.store->list_objects(coll);
        if (!listed.ok()) {
          rep.errors.push_back("pg " + pg.to_string() + " osd." +
                               std::to_string(osd_id) + " list: " +
                               listed.status().to_string());
          continue;
        }
        for (const auto& oid : *listed) {
          auto content = node.store->read(coll, oid, 0, 0);
          if (!content.ok()) {
            rep.errors.push_back("pg " + pg.to_string() + " osd." +
                                 std::to_string(osd_id) + " " + oid.name +
                                 ": " + content.status().to_string());
            continue;
          }
          objects[oid.name][osd_id] =
              Digest{content->length(), content->crc32c()};
        }
      }

      for (const auto& [name, per_osd] : objects) {
        ++rep.objects;
        bool diverged = false;
        const Digest& want = per_osd.begin()->second;
        for (const int osd_id : scanned) {
          auto it = per_osd.find(osd_id);
          if (it == per_osd.end()) {
            diverged = true;
            rep.errors.push_back("pg " + pg.to_string() + " " + name +
                                 " missing on osd." + std::to_string(osd_id));
          } else if (it->second.size != want.size || it->second.crc != want.crc) {
            diverged = true;
            rep.errors.push_back("pg " + pg.to_string() + " " + name +
                                 " digest mismatch on osd." +
                                 std::to_string(osd_id));
          }
        }
        if (diverged) ++rep.divergent;
      }
    }
  }
  return rep;
}

Cluster::CpuSample Cluster::cpu_sample() const {
  CpuSample s;
  s.at = env_.now();
  for (const auto& node : nodes_) {
    s.host_busy.push_back(node->host_cpu->busy_ns());
    s.dpu_busy.push_back(node->dpu ? node->dpu->cpu().busy_ns() : 0);
  }
  return s;
}

double Cluster::host_cores_used(const CpuSample& a, const CpuSample& b) const {
  const auto window = static_cast<double>(b.at - a.at);
  if (window <= 0 || a.host_busy.empty()) return 0.0;
  double total = 0;
  for (std::size_t i = 0; i < a.host_busy.size(); ++i)
    total += static_cast<double>(b.host_busy[i] - a.host_busy[i]) / window;
  return total / static_cast<double>(a.host_busy.size());
}

std::string Cluster::admin_dump(const std::string& command) {
  JsonWriter w;
  w.begin_object();
  const auto emit = [&](const std::string& name, AdminSocket& admin) {
    const auto r = admin.execute(command);
    if (!r.ok()) return;
    w.key(name);
    w.raw_value(*r);
  };
  if (mon_) emit("mon.0", mon_->admin_socket());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    if (node.osd) emit("osd." + std::to_string(i), node.osd->admin_socket());
    if (node.pstore) emit("dpu." + std::to_string(i), node.pstore->admin_socket());
  }
  if (client_) emit("client", client_->admin_socket());
  w.end_object();
  return w.str();
}

std::string Cluster::dump_traces(std::string_view domain_filter) const {
  return env_.tracer().dump_chrome_json(domain_filter);
}

void Cluster::reset_observability() {
  env_.tracer().reset();
  if (mon_) mon_->perf_collection().reset_all();
  for (const auto& node : nodes_) {
    if (node->osd) {
      node->osd->perf_collection().reset_all();
      node->osd->op_tracker().clear_history();
    }
    if (node->pstore) node->pstore->perf_collection().reset_all();
    // In DoCeph mode the host BlueStore block belongs to no daemon
    // collection (the OSD fronts the proxy store); reset it directly.
    if (node->store)
      if (auto c = node->store->perf_counters()) c->reset();
  }
  if (client_) {
    client_->perf_collection().reset_all();
    client_->op_tracker().clear_history();
  }
}

double Cluster::dpu_cores_used(const CpuSample& a, const CpuSample& b) const {
  const auto window = static_cast<double>(b.at - a.at);
  if (window <= 0 || a.dpu_busy.empty()) return 0.0;
  double total = 0;
  for (std::size_t i = 0; i < a.dpu_busy.size(); ++i)
    total += static_cast<double>(b.dpu_busy[i] - a.dpu_busy[i]) / window;
  return total / static_cast<double>(a.dpu_busy.size());
}

}  // namespace doceph::cluster
