#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "client/rados_client.h"
#include "cluster/profiles.h"
#include "mon/monitor.h"

namespace doceph::cluster {

/// Assembles the paper's testbed on the simulated fabric: a MON node, a
/// client node, and `storage_nodes` storage servers deployed in Baseline
/// mode (whole OSD on the host) or DoCeph mode (OSD + messenger on the DPU,
/// ProxyObjectStore over CommChannel/DMA, host running only BlueStore + the
/// backend service). Also the metrics tap for every figure in §5.
class Cluster {
 public:
  Cluster(sim::Env& env, ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Bring everything up (MON, stores, OSDs, pool). Call from a sim thread.
  Status start();
  void stop();

  /// The benchmark client (created during start()).
  [[nodiscard]] client::RadosClient& client() noexcept { return *client_; }
  [[nodiscard]] sim::CpuDomain& client_cpu() noexcept { return *client_cpu_; }

  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] mon::Monitor& monitor() noexcept { return *mon_; }

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] osd::OSD& osd(int i) { return *nodes_.at(static_cast<std::size_t>(i))->osd; }
  [[nodiscard]] bluestore::BlueStore& blue_store(int i) {
    return *nodes_.at(static_cast<std::size_t>(i))->store;
  }
  /// Null in baseline mode.
  [[nodiscard]] proxy::ProxyObjectStore* proxy_store(int i) {
    return nodes_.at(static_cast<std::size_t>(i))->pstore.get();
  }
  [[nodiscard]] dpu::DpuDevice* dpu(int i) {
    return nodes_.at(static_cast<std::size_t>(i))->dpu.get();
  }
  [[nodiscard]] sim::CpuDomain& host_cpu(int i) {
    return *nodes_.at(static_cast<std::size_t>(i))->host_cpu;
  }

  /// Wait (sim time) until every OSD reports recovery-clean.
  void wait_all_clean();

  /// Restart a (previously shut down or hard-killed) OSD on the same store
  /// and network identity — the "node comes back" half of a failure drill.
  /// If the node was hard-killed, the host store is remounted first
  /// (checkpoint locate + WAL replay) and, in doceph mode, the DPU-side
  /// proxy + host backend are re-created so the proxy re-attaches to the
  /// remounted store. Call from a sim thread.
  Status restart_osd(int i);

  /// Power-loss kill of one storage node, as the "osd.hard_crash" fault
  /// executes it: the host BlueStore crashes first (in-flight transactions
  /// and queued KV txns drop with errors, nothing is drained), then the OSD
  /// — and in doceph mode the proxy store and host backend — are torn down
  /// and discarded. restart_osd() brings the node back through a real
  /// remount. Call from a sim thread.
  Status hard_kill_osd(int i);

  /// Post-recovery consistency scrub: walk every PG's acting set and
  /// compare per-object digests (size + crc32c of the full content) across
  /// the replicas' host stores.
  struct ScrubReport {
    std::uint64_t objects = 0;    ///< distinct (pg, object) pairs compared
    std::uint64_t divergent = 0;  ///< objects whose replica digests disagree
    std::vector<std::string> errors;  ///< one line per divergence/read error
    [[nodiscard]] bool clean() const noexcept {
      return divergent == 0 && errors.empty();
    }
  };
  /// Call from a sim thread, after wait_all_clean(); nodes currently down
  /// are skipped (they have no authoritative data to compare).
  ScrubReport scrub_replicas();

  // ---- metrics --------------------------------------------------------------
  struct CpuSample {
    sim::Time at = 0;
    std::vector<std::uint64_t> host_busy;  // per storage node
    std::vector<std::uint64_t> dpu_busy;   // per storage node (doceph)
  };
  [[nodiscard]] CpuSample cpu_sample() const;

  /// Average host CPU over the window, in *cores* (the paper's
  /// "normalized to a single core" convention: 0.94 = 94%).
  [[nodiscard]] double host_cores_used(const CpuSample& a, const CpuSample& b) const;
  [[nodiscard]] double dpu_cores_used(const CpuSample& a, const CpuSample& b) const;

  // ---- observability --------------------------------------------------------
  /// Run one admin command against every daemon and aggregate the JSON
  /// replies into an object keyed by daemon name ("mon.0", "osd.N",
  /// "dpu.N", "client"). Daemons that don't register the command are
  /// omitted from the result.
  [[nodiscard]] std::string admin_dump(const std::string& command);

  /// Chrome trace_event JSON covering every daemon in the universe (the
  /// whole cluster shares one Tracer, so client, msgr, DPU, host and
  /// BlueStore spans land in one timeline). Optionally filtered to domains
  /// containing `domain_filter` ("osd.0", "dma", ...).
  [[nodiscard]] std::string dump_traces(std::string_view domain_filter = {}) const;

  /// Zero every perf counter and histogram and drop tracked-op history
  /// across the cluster. Experiments call this between warmup and the
  /// measured window so dumps cover only measured traffic.
  void reset_observability();

 private:
  /// Concurrency contract: the Cluster itself holds no mutex. start()/stop()/
  /// restart_osd()/hard_kill_osd() and the chaos monitor are the only writers
  /// of Node lifecycle state, and the chaos monitor executes restarts/kills
  /// itself (a daemon cannot die from its own tick thread); callers running
  /// drills alongside an armed chaos monitor must target disjoint nodes.
  /// chaos_stop_ is the one cross-thread flag and is atomic.
  struct Node {
    std::unique_ptr<sim::CpuDomain> host_cpu;
    net::NetNode* host_net = nullptr;              // baseline: the public NIC
    std::unique_ptr<dpu::DpuDevice> dpu;           // doceph only
    std::shared_ptr<bluestore::DeviceBacking> backing;
    std::unique_ptr<bluestore::BlueStore> store;   // always on the host
    std::unique_ptr<proxy::HostBackendService> backend;  // doceph only
    std::unique_ptr<proxy::ProxyObjectStore> pstore;     // doceph only
    std::unique_ptr<osd::OSD> osd;
    bool osd_down = false;        // taken down by the chaos monitor
    bool restart_pending = false; // "osd.restart" fired; retried until it works
  };

  /// Body of the chaos monitor thread: polls "osd.crash" / "osd.hard_crash"
  /// / "osd.restart" fault points at cfg_.chaos_poll cadence and executes
  /// the fires (a daemon cannot kill itself from its own tick thread). A
  /// node is marked up again only after a restart actually succeeds; failed
  /// restarts (e.g. a replay hitting an armed bdev fault) are retried every
  /// poll.
  void chaos_loop();

  sim::Env& env_;
  ClusterConfig cfg_;
  net::Fabric fabric_;
  net::NetNode* mon_net_ = nullptr;
  net::NetNode* client_net_ = nullptr;
  std::unique_ptr<sim::CpuDomain> mon_cpu_;
  std::unique_ptr<sim::CpuDomain> client_cpu_;
  std::unique_ptr<mon::Monitor> mon_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<client::RadosClient> client_;
  std::atomic<bool> chaos_stop_{false};
  std::optional<sim::Thread> chaos_;
  bool started_ = false;
};

}  // namespace doceph::cluster
