#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bluestore/bluestore.h"
#include "client/rados_client.h"
#include "common/fault.h"
#include "dpu/dpu_device.h"
#include "msgr/messenger.h"
#include "net/fabric.h"
#include "osd/osd.h"
#include "proxy/host_backend.h"
#include "proxy/proxy_object_store.h"

/// Calibration constants for the paper's testbed (Table 1): two storage
/// nodes (AMD EPYC 9474F host + BlueField-3 DPU + Samsung PM893 SATA SSD),
/// one client node, 100 Gbps Ethernet (1 Gbps for the Fig. 5/6 comparison).
///
/// Derivations are commented inline; EXPERIMENTS.md records how close the
/// resulting numbers land to the paper's.
namespace doceph::cluster {

enum class DeployMode {
  baseline,  ///< full Ceph on the host; BlueField in NIC mode
  doceph,    ///< OSD on the DPU; host runs BlueStore + backend service only
};

enum class NetworkKind { gbe_1, gbe_100 };

inline net::NicProfile nic_for(NetworkKind k) {
  switch (k) {
    case NetworkKind::gbe_1:
      return {.bw_bytes_per_sec = 1e9 / 8, .latency = 30'000};
    case NetworkKind::gbe_100:
      return {.bw_bytes_per_sec = 100e9 / 8, .latency = 5'000};
  }
  return {};
}

/// Kernel TCP/IP stack cost. ~0.45 ns/B covers the user/kernel copy and
/// skb handling at memory bandwidth; with the messenger's 0.3 ns/B crc32c
/// this puts messenger cost at ~0.75 ns/B of traffic — which reproduces the
/// paper's measurement that the messenger burns ~80% of Ceph CPU (Fig. 5).
inline net::StackModel default_stack() {
  return net::StackModel{
      .per_syscall = 1'500, .per_byte_ns = 0.45, .per_frame = 250, .mtu = 9000};
}

/// Messenger bookkeeping: real Ceph burns tens of microseconds of CPU per
/// message on dispatch, throttles and serialization; these drive the per-op
/// (size-independent) CPU floor that makes Baseline utilization fall from
/// ~94% at 1 MB to ~67% at 16 MB as the op rate drops (Fig. 7).
inline msgr::MessengerConfig default_msgr() {
  msgr::MessengerConfig cfg;
  cfg.num_workers = 3;
  cfg.costs = {.per_msg_encode = 60'000, .per_msg_decode = 70'000,
               .crc_per_byte_ns = 0.3};
  // cfg.cork stays disabled here: the paper's hot path has no write
  // coalescing, and the figure sweeps reproduce the paper. Batched runs
  // (RunSpec::batching, perf_smoke, ablation_batching) switch it on.
  return cfg;
}

/// PM893-class SATA SSD behind BlueStore-lite.
inline bluestore::BlueStoreConfig default_store(bool retain_data) {
  bluestore::BlueStoreConfig cfg;
  cfg.device.size_bytes = 256ull << 30;
  cfg.device.write_bw = 530e6;
  cfg.device.read_bw = 550e6;
  cfg.device.write_latency = 60'000;
  cfg.device.read_latency = 90'000;
  cfg.device.retain_data = retain_data;
  cfg.device.retain_below = cfg.wal_off + cfg.wal_len;  // WAL always persists
  // Host-side data-path CPU: ~0.10 ns/B checksum + small per-op costs. Gives
  // Baseline's ObjectStore its ~8-10% share of Ceph CPU (Fig. 5) while
  // keeping the DoCeph host near the paper's ~5-7% of a core (Fig. 7).
  cfg.csum_per_byte_ns = 0.10;
  cfg.kv_costs = {.per_txn = 6'000, .per_byte_ns = 0.05};
  cfg.per_op_prep = 3'000;
  cfg.per_aio = 4'000;
  return cfg;
}

inline osd::OsdConfig default_osd(int id) {
  osd::OsdConfig cfg;
  cfg.id = id;
  cfg.public_port = 6800;
  cfg.op_threads = 2;
  // Real Ceph burns several hundred microseconds of tp_osd_tp CPU per op
  // (dispatch, PG locking, repop bookkeeping); this per-op floor is what
  // makes Baseline utilization fall from ~94% at 1 MB to ~67% at 16 MB as
  // the op rate drops 15x (Fig. 7).
  cfg.per_op_cost = 400'000;
  return cfg;
}

/// BlueField-3: 16 Cortex-A78 cores at roughly 0.45x the per-core throughput
/// of the host's EPYC cores; integrated ConnectX-7; PCIe Gen5.
inline dpu::DpuProfile default_dpu(NetworkKind net) {
  dpu::DpuProfile p;
  p.cores = 16;
  p.core_speed = 0.45;
  p.nic = nic_for(net);
  p.stack = default_stack();
  p.pcie = {.bw_bytes_per_sec = 26e9, .latency = 2'000};
  // DMA engine fit from paper Table 3's DMA row (least squares over
  // 1/4/8/16 MB): ~2.6 GB/s effective engine bandwidth + ~2.4 ms per-job
  // setup/completion overhead (descriptor prep, doorbell, and the polling
  // interval of the completion thread) that pipelining can overlap across
  // jobs. Reproduces the paper's DMA row: 2.8/4.2/5.2/8.5 ms at 1/4/8/16 MB.
  p.dma = {.max_transfer = 2 << 20,
           .bw_bytes_per_sec = 2.6e9,
           .setup_latency = 2'400'000,
           .queue_depth = 64};
  p.comch = {.max_msg_size = 4080,
             .per_msg_overhead = 6'000,
             .cpu_ns_per_byte = 0.15,
             .name = {}};
  return p;
}

/// Proxy defaults: 2 MB segments (hardware cap) and a SINGLE paired
/// staging/write buffer slot per node — the pre-established memory region
/// the paper reuses "instead of performing CommChannel negotiation for each
/// transfer" (§3.3). Serializing each node's staging pipeline through it is
/// what produces the paper's large DMA-wait (44.8% of latency at 1 MB,
/// Table 3/Fig. 9) and its DoCeph IOPS column (Fig. 10); ablations sweep
/// the slot count to show the headroom more buffers would buy.
inline proxy::ProxyConfig default_proxy() {
  proxy::ProxyConfig cfg;
  cfg.segment_size = 2 << 20;
  cfg.slots = 1;
  cfg.write_workers = 8;
  cfg.pipelining = true;
  cfg.mr_cache = true;
  cfg.cooldown = 500'000'000;
  cfg.stage_copy_ns_per_byte = 0.15;
  // rpc_batch / dma_batch stay disabled here for the same reason as the
  // messenger cork: the paper's offload path issues one doorbell and one
  // DMA job per segment, and the calibration (Table 3's DMA row) encodes
  // that. RunSpec::batching flips all three on for batched runs.
  return cfg;
}

inline proxy::HostBackendConfig default_backend() {
  proxy::HostBackendConfig cfg;
  cfg.workers = 2;
  cfg.copy_ns_per_byte = 0.02;
  return cfg;
}

struct ClusterConfig {
  DeployMode mode = DeployMode::baseline;
  NetworkKind network = NetworkKind::gbe_100;

  int storage_nodes = 2;
  std::uint32_t replicas = 2;
  std::uint32_t pg_num = 64;
  os::pool_t pool_id = 1;

  /// Host CPU provisioned to the storage stack. Utilization percentages are
  /// reported per core-normalized convention (see EXPERIMENTS.md): the paper
  /// reports "CPU usage normalized to a single core".
  int host_cores = 8;
  double host_speed = 1.0;
  int client_cores = 16;

  bool retain_data = true;  ///< false for long benches (bounds host RAM)

  /// BlueStore KV shard count for every storage node (the op-lane half of
  /// the sharding contract rides in osd_template.op_shards). Clamped to
  /// >= 1 in store_config(); 1 keeps the paper cells byte-identical.
  int kv_shards = 1;

  msgr::MessengerConfig msgr = default_msgr();
  osd::OsdConfig osd_template = default_osd(0);
  proxy::ProxyConfig proxy = default_proxy();
  proxy::HostBackendConfig backend = default_backend();
  client::ClientConfig client;

  /// Fault specs armed into the env registry during start() — the config
  /// half of fault injection (the admin socket's `fault set` is the runtime
  /// half). Scoping convention: net faults match "src>dst" node names,
  /// devices match "dpu-<i>" / "bdev-<i>", daemon crashes match "osd.<i>".
  std::vector<std::pair<std::string, fault::FaultSpec>> initial_faults;

  /// Poll cadence of the chaos monitor thread that executes "osd.crash"
  /// (graceful shutdown) / "osd.hard_crash" (power-loss kill through
  /// BlueStore::simulate_crash) / "osd.restart" fault fires (daemon
  /// kill/revive cannot run inline in a daemon's own thread).
  sim::Duration chaos_poll = 250'000'000;  // 250 ms

  [[nodiscard]] bluestore::BlueStoreConfig store_config() const {
    bluestore::BlueStoreConfig cfg = default_store(retain_data);
    cfg.kv_shards = std::max(1, kv_shards);  // shard-bounds: knob >= 1
    // Each KV shard owns a full-size WAL ring (DESIGN.md §15), mirroring
    // multi-instance RocksDB where every shard gets its own WAL files.
    // Splitting the single 64 MiB region N ways instead would shrink the
    // per-shard checkpoint ceiling by N (worse with hash imbalance), and
    // fresh-object floods that fit the unsharded store would trip nearfull
    // shedding. At kv_shards == 1 this is the identity, so paper cells are
    // untouched; the data region shifts by (N-1) * 64 MiB of 256 GiB.
    cfg.wal_len *= static_cast<std::uint64_t>(cfg.kv_shards);
    cfg.device.retain_below = cfg.wal_off + cfg.wal_len;
    return cfg;
  }
  [[nodiscard]] dpu::DpuProfile dpu_profile() const { return default_dpu(network); }

  /// The paper's 3-node testbed in the given mode/network.
  static ClusterConfig paper_testbed(DeployMode mode,
                                     NetworkKind net = NetworkKind::gbe_100,
                                     bool retain_data = false) {
    ClusterConfig cfg;
    cfg.mode = mode;
    cfg.network = net;
    cfg.retain_data = retain_data;
    return cfg;
  }
};

}  // namespace doceph::cluster
