#include "proxy/slot_pool.h"

#include <cassert>

namespace doceph::proxy {

SlotPool::SlotPool(sim::Env& env, int slots, std::size_t slot_size)
    : env_(env),
      capacity_(slots),
      slot_size_(slot_size),
      dpu_mmap_(std::make_shared<doca::Mmap>(static_cast<std::size_t>(slots) * slot_size)),
      host_mmap_(std::make_shared<doca::Mmap>(static_cast<std::size_t>(slots) * slot_size)),
      cv_(env.keeper(), "proxy.slot_cv") {
  for (int i = 0; i < slots; ++i) free_.push_back(i);
}

int SlotPool::acquire() {
  const sim::Time t0 = env_.now();
  dbg::UniqueLock lk(mutex_);
  cv_.wait(lk, [&] {
    mutex_.assert_held();  // predicate runs as a separate function
    return !free_.empty();
  });
  const int slot = free_.front();
  free_.pop_front();
  total_wait_ += env_.now() - t0;
  return slot;
}

std::optional<int> SlotPool::acquire_for(sim::Duration timeout) {
  const sim::Time t0 = env_.now();
  dbg::UniqueLock lk(mutex_);
  const bool ok = cv_.wait_until(lk, t0 + timeout, [&] {
    mutex_.assert_held();  // predicate runs as a separate function
    return !free_.empty();
  });
  total_wait_ += env_.now() - t0;
  if (!ok) return std::nullopt;
  const int slot = free_.front();
  free_.pop_front();
  return slot;
}

std::optional<int> SlotPool::try_acquire() {
  const dbg::LockGuard lk(mutex_);
  if (free_.empty()) return std::nullopt;
  const int slot = free_.front();
  free_.pop_front();
  return slot;
}

void SlotPool::release(int slot) {
  assert(slot >= 0 && slot < capacity_);
  const dbg::LockGuard lk(mutex_);
  free_.push_back(slot);
  cv_.notify_one();
}

sim::Duration SlotPool::total_wait_ns() const {
  const dbg::LockGuard lk(mutex_);
  return total_wait_;
}

}  // namespace doceph::proxy
