#pragma once

#include <cstdint>
#include <vector>

#include "common/encoding.h"
#include "os/transaction.h"

namespace doceph::proxy {

/// Operations of the Proxy Interface between the DPU-resident
/// ProxyObjectStore and the host-resident backend (paper §3.2). The binary
/// classification the paper describes: submit_txn/read_obj are data-plane
/// (payload moves via DMA slots when possible), the rest are control-plane
/// RPCs over the CommChannel.
enum class ProxyOp : std::uint8_t {
  ping = 1,
  submit_txn = 2,
  read_obj = 3,
  stage_segment = 11,  ///< one DMA'd segment is ready in a write-buffer slot
  stage_batch = 12,    ///< a coalesced batch of segments landed in one slot
  stat = 4,
  exists = 5,
  omap_get = 6,
  list_objects = 7,
  list_collections = 8,
  coll_exists = 9,
  release_slots = 10,  ///< oneway: read-path slots returned by the DPU
  abort_txn = 13,      ///< oneway: drop staged segments of an aborted token
};

/// Where one chunk of an op's bulk payload lives. `staged`: it was DMA'd
/// into a slot and already copied by the host into that request's write
/// buffer (stage_segment), indexed by a per-request sequence number —
/// Fig. 4's staging-buffer -> write-buffer handoff, which lets the scarce
/// DMA slots recycle immediately. `inline` data rides in the RPC itself
/// (control fallback after a DMA error, or tiny payloads). For the read
/// path, refs point at slots directly (`slot`), since the DPU drains them.
struct DataRef {
  enum class Kind : std::uint8_t { inline_ = 0, staged = 1, slot = 2 };
  Kind kind = Kind::inline_;
  std::uint32_t index = 0;  ///< staged: per-request segment seq; slot: slot id
  std::uint32_t len = 0;
  BufferList data;          ///< used when kind == inline_

  [[nodiscard]] bool inline_data() const noexcept { return kind == Kind::inline_; }

  void encode(BufferList& bl) const {
    doceph::encode(kind, bl);
    doceph::encode(index, bl);
    doceph::encode(len, bl);
    if (kind == Kind::inline_) doceph::encode(data, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    if (!doceph::decode(kind, cur) || !doceph::decode(index, cur) ||
        !doceph::decode(len, cur))
      return false;
    return kind != Kind::inline_ || doceph::decode(data, cur);
  }
};

/// stage_segment request: segment `seg_index` of request `token` has landed
/// in write-buffer `slot`; the host copies it out so the slot can recycle.
struct StageSegment {
  std::uint64_t token = 0;
  std::uint32_t seg_index = 0;
  std::uint32_t slot = 0;
  std::uint32_t len = 0;

  void encode(BufferList& bl) const {
    doceph::encode(token, bl);
    doceph::encode(seg_index, bl);
    doceph::encode(slot, bl);
    doceph::encode(len, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(token, cur) && doceph::decode(seg_index, cur) &&
           doceph::decode(slot, cur) && doceph::decode(len, cur);
  }
};

/// One member of a stage_batch: segment `seg_index` of request `token` lies
/// at byte offset `off` inside the batch's slot.
struct StageBatchEntry {
  std::uint64_t token = 0;
  std::uint32_t seg_index = 0;
  std::uint32_t off = 0;
  std::uint32_t len = 0;

  void encode(BufferList& bl) const {
    doceph::encode(token, bl);
    doceph::encode(seg_index, bl);
    doceph::encode(off, bl);
    doceph::encode(len, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(token, cur) && doceph::decode(seg_index, cur) &&
           doceph::decode(off, cur) && doceph::decode(len, cur);
  }
};

/// stage_batch request: the DPU packed several segments (possibly from
/// different requests) into write-buffer `slot` with one scatter-gather DMA
/// pass; the host copies each out to its request's write buffer and acks
/// the batch as a unit (0, or the first per-entry error).
struct StageBatch {
  std::uint32_t slot = 0;
  std::vector<StageBatchEntry> entries;

  void encode(BufferList& bl) const {
    doceph::encode(slot, bl);
    doceph::encode(entries, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(slot, cur) && doceph::decode(entries, cur);
  }
};

/// A transaction with its bulk payload externalized: `meta` carries the ops
/// with empty data; `parts[i]` lists where op i's payload chunks live.
/// `token` keys the host-side staged segments of this request.
struct WireTxn {
  std::uint64_t token = 0;
  os::Transaction meta;
  std::vector<std::vector<DataRef>> parts;

  void encode(BufferList& bl) const {
    doceph::encode(token, bl);
    meta.encode(bl);
    doceph::encode(parts, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(token, cur) && meta.decode(cur) &&
           doceph::decode(parts, cur);
  }
};

/// Response to submit_txn, with the host-side commit time (paper Table 3's
/// "Host write" row comes from here). `fullness_permille` piggybacks the
/// host store's fullness() (x1000) so the DPU-side OSD can run nearfull
/// admission checks without an extra control RPC.
struct TxnReply {
  std::int32_t result = 0;
  std::int64_t host_write_ns = 0;
  std::uint32_t fullness_permille = 0;

  void encode(BufferList& bl) const {
    doceph::encode(result, bl);
    doceph::encode(host_write_ns, bl);
    doceph::encode(fullness_permille, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(result, cur) && doceph::decode(host_write_ns, cur) &&
           doceph::decode(fullness_permille, cur);
  }
};

/// read_obj request: the DPU offers `slots` it has acquired; the host fills
/// them (or replies inline when the result is tiny).
struct ReadRequest {
  os::coll_t cid;
  os::ghobject_t oid;
  std::uint64_t off = 0;
  std::uint64_t len = 0;
  std::uint64_t inline_max = 4096;
  std::vector<std::uint32_t> slots;

  void encode(BufferList& bl) const {
    cid.encode(bl);
    oid.encode(bl);
    doceph::encode(off, bl);
    doceph::encode(len, bl);
    doceph::encode(inline_max, bl);
    doceph::encode(slots, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return cid.decode(cur) && oid.decode(cur) && doceph::decode(off, cur) &&
           doceph::decode(len, cur) && doceph::decode(inline_max, cur) &&
           doceph::decode(slots, cur);
  }
};

/// read_obj response: either inline data, or the filled slot layout the DPU
/// should DMA back (host->DPU).
struct ReadReply {
  std::int32_t result = 0;
  bool inline_data = false;
  BufferList data;                       ///< when inline
  std::vector<DataRef> refs;             ///< slot refs when not inline
  std::uint64_t total_len = 0;

  void encode(BufferList& bl) const {
    doceph::encode(result, bl);
    doceph::encode(inline_data, bl);
    doceph::encode(total_len, bl);
    if (inline_data) doceph::encode(data, bl);
    doceph::encode(refs, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    if (!doceph::decode(result, cur) || !doceph::decode(inline_data, cur) ||
        !doceph::decode(total_len, cur))
      return false;
    if (inline_data && !doceph::decode(data, cur)) return false;
    return doceph::decode(refs, cur);
  }
};

}  // namespace doceph::proxy
