#pragma once

#include <atomic>
#include <deque>

#include "common/admin_socket.h"
#include "common/perf_counters.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "dpu/dpu_device.h"
#include "os/object_store.h"
#include "proxy/dma_batcher.h"
#include "proxy/fallback.h"
#include "proxy/proxy_protocol.h"
#include "proxy/rpc_channel.h"
#include "proxy/slot_pool.h"
#include "sim/thread.h"

namespace doceph::proxy {

/// Metric indices of the proxy's "dpu" PerfCounters block.
enum {
  l_dpu_first = 93000,
  l_dpu_writes,              ///< write transactions shipped to the host
  l_dpu_dma_bytes,           ///< payload bytes moved by the DMA engine
  l_dpu_rpc_fallback_bytes,  ///< payload bytes that rode the RPC channel
  l_dpu_rpc_timeout,         ///< blocking RPCs that timed out (slot reclaimed)
  l_dpu_write_lat,           ///< enqueue -> host commit, ns histogram
  l_dpu_dma_wait,            ///< per-request DMA wait (slots + serialization)
  l_dpu_batch_flushes,       ///< coalesced SG flushes (one slot+pass+RPC each)
  l_dpu_batch_segments,      ///< segments that rode a coalesced flush
  l_dpu_batch_bytes,         ///< payload bytes moved by coalesced flushes
  l_dpu_batch_stalls,        ///< flushes deferred by dpu.batch_flush_stall
  l_dpu_batch_fill,          ///< segments per flush, histogram
  l_dpu_throttle_queue,      ///< txns bounced: worker queue at max_worker_queue
  l_dpu_throttle_slot,       ///< txns failed: slot_acquire_timeout expired
  l_dpu_worker_queue_depth,    ///< gauge: total queued write txns (all workers)
  l_dpu_worker_queue_depth_hw, ///< gauge: high-water of the above
  l_dpu_last,
};

struct ProxyConfig {
  /// DMA segment size; must not exceed the engine's hardware cap (2 MB).
  std::uint64_t segment_size = 2 << 20;
  /// Paired staging/write buffers (Fig. 4). 16 x 2 MB by default.
  int slots = 16;
  /// Pipeline workers driving concurrent write requests. Requests hash to a
  /// worker by collection, preserving Ceph's per-PG ordering.
  int write_workers = 8;

  /// Ablations (paper §3.3 design choices):
  bool pipelining = true;  ///< false: wait out each segment before staging the next
  bool mr_cache = true;    ///< false: CommChannel negotiation round-trip per segment

  sim::Duration cooldown = 500'000'000;   ///< 500 ms DMA disable after an error
  sim::Duration rpc_timeout = 30'000'000'000;
  std::uint64_t inline_write_max = 4096;  ///< tiny payloads skip the DMA path
  std::uint64_t inline_read_max = 4096;
  double stage_copy_ns_per_byte = 0.25;   ///< DPU staging memcpy cost

  /// Doorbell coalescing on the DPU endpoint of the proxy channel.
  RpcBatchConfig rpc_batch;
  /// Segment coalescing into scatter-gather DMA passes (small-write
  /// amortization; engages only on the pipelined, MR-cached fast path).
  DmaBatchConfig dma_batch;

  // ---- backpressure (OFF by default; paper sweeps unchanged) ------------
  /// Bound on each write worker's queue: a txn arriving while the target
  /// queue holds this many entries is completed immediately with
  /// Errc::throttled instead of enqueued. 0 = unbounded (legacy behavior).
  std::size_t max_worker_queue = 0;
  /// Deadline for staging-slot acquisition on the legacy (non-batched) DMA
  /// path; on expiry the txn fails with Errc::throttled so the throttle
  /// propagates to the OSD/client instead of wedging a write worker.
  /// 0 = block forever (legacy behavior).
  sim::Duration slot_acquire_timeout = 0;
};

/// Latency breakdown accumulators reproducing the taxonomy of paper Table 3.
/// All values are sums in ns over `count` completed write requests.
struct BreakdownSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  /// Engine transfer time (job setup + bytes/bandwidth — the paper's "actual
  /// data transfer time").
  std::uint64_t dma_ns = 0;
  /// Waiting caused by serial DMA transfers: staging-slot acquisition plus
  /// the queueing portion of the DMA phase (wall time minus transfer time).
  std::uint64_t dma_wait_ns = 0;
  std::uint64_t host_write_ns = 0; ///< host-side commit (from TxnReply)

  [[nodiscard]] double avg(std::uint64_t sum) const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count) * 1e-9;
  }
  [[nodiscard]] double others_ns_avg() const {
    if (count == 0) return 0.0;
    const auto others =
        total_ns - std::min(total_ns, dma_ns + dma_wait_ns + host_write_ns);
    return static_cast<double>(others) / static_cast<double>(count) * 1e-9;
  }
};

/// DoCeph's transparent intermediate layer (paper §3.1-3.3): implements the
/// ObjectStore interface on the DPU, forwarding every backend call to the
/// host. Control-plane operations travel as lightweight RPCs over the
/// CommChannel; bulk write payloads are segmented to the 2 MB DMA cap,
/// staged into reusable buffers, and moved by the DMA engine with staging
/// pipelined against in-flight transfers. A DMA error trips the adaptive
/// fallback: segments re-route through RPC during a cooldown, then a probe
/// transfer re-enables the fast path.
class ProxyObjectStore final : public os::ObjectStore {
 public:
  ProxyObjectStore(sim::Env& env, dpu::DpuDevice& dpu, ProxyConfig cfg = {});
  ~ProxyObjectStore() override;

  // ---- ObjectStore ------------------------------------------------------------
  Status mount() override;
  Status umount() override;
  void queue_transaction(os::Transaction txn, OnCommit on_commit) override;
  Result<BufferList> read(const os::coll_t& c, const os::ghobject_t& o,
                          std::uint64_t off, std::uint64_t len) override;
  Result<os::ObjectInfo> stat(const os::coll_t& c, const os::ghobject_t& o) override;
  bool exists(const os::coll_t& c, const os::ghobject_t& o) override;
  Result<std::map<std::string, BufferList>> omap_get(const os::coll_t& c,
                                                     const os::ghobject_t& o) override;
  Result<std::vector<os::ghobject_t>> list_objects(const os::coll_t& c) override;
  std::vector<os::coll_t> list_collections() override;
  bool collection_exists(const os::coll_t& c) override;
  [[nodiscard]] std::string store_type() const override { return "proxy"; }

  /// Host-store fullness as last reported in a TxnReply (piggybacked
  /// permille -> fraction). 0 until the first write completes; lets the
  /// DPU-side OSD run its nearfull admission check without an extra RPC.
  [[nodiscard]] double fullness() const override {
    return static_cast<double>(host_fullness_permille_.load(std::memory_order_relaxed)) /
           1000.0;
  }

  // ---- introspection ------------------------------------------------------------
  [[nodiscard]] SlotPool& slots() noexcept { return slots_; }
  [[nodiscard]] FallbackManager& fallback() noexcept { return fallback_; }
  [[nodiscard]] const ProxyConfig& config() const noexcept { return cfg_; }
  /// The proxy's comch RPC endpoint (batching diagnostics live on it).
  [[nodiscard]] RpcChannel& rpc() noexcept { return rpc_; }

  [[nodiscard]] BreakdownSnapshot breakdown() const;
  void reset_breakdown();

  [[nodiscard]] std::uint64_t dma_bytes() const noexcept { return dma_bytes_.load(); }
  [[nodiscard]] std::uint64_t rpc_fallback_bytes() const noexcept {
    return rpc_fallback_bytes_.load();
  }

  /// Admin command surface of the DPU proxy daemon ("perf dump", ...).
  /// Commands are registered by mount() and unregistered by umount().
  [[nodiscard]] AdminSocket& admin_socket() noexcept { return admin_; }
  [[nodiscard]] perf::Collection& perf_collection() noexcept { return perf_; }
  [[nodiscard]] perf::PerfCountersRef perf_counters() const override {
    return counters_;
  }

 private:
  struct WriteReq {
    os::Transaction txn;
    OnCommit on_commit;
    sim::Time enqueued = 0;
  };

  void write_worker(int idx);
  void process_write(WriteReq req);

  /// Per-request segment pipeline state shared with DMA/stage callbacks.
  struct SegCtx {
    explicit SegCtx(sim::TimeKeeper& tk) : cv(tk, "proxy.seg_cv") {}
    dbg::Mutex m{"proxy.seg_ctx"};
    dbg::CondVar cv;
    int outstanding DOCEPH_GUARDED_BY(m) = 0;
    bool any_failed DOCEPH_GUARDED_BY(m) = false;
    /// slot_acquire_timeout expired on the legacy path: the request aborts
    /// with Errc::throttled after draining whatever was already in flight.
    bool slot_timed_out DOCEPH_GUARDED_BY(m) = false;
    sim::Time first_submit DOCEPH_GUARDED_BY(m) = -1;
    // Accumulated batching/slot wait: mutated by the worker (legacy path)
    // and by batch completion callbacks, so it lives under m.
    sim::Duration dma_wait DOCEPH_GUARDED_BY(m) = 0;
    std::atomic<sim::Time> last_complete{-1};
    // token/next_seg/trace are touched only by the owning write worker
    // before any callback can observe them.
    std::uint64_t token = 0;
    std::uint32_t next_seg = 0;
    trace::TraceContext trace;  ///< the op's context, for per-segment DMA spans
  };

  /// Move one payload chunk to the host, honoring fallback state. Returns
  /// the DataRef to embed; slot release happens from the stage-ack callback.
  DataRef move_segment(BufferList seg, const std::shared_ptr<SegCtx>& ctx);

  Result<BufferList> control_call(ProxyOp op, const BufferList& body);

  /// Blocking RPC with the configured timeout; accounts timed-out calls in
  /// l_dpu_rpc_timeout (the channel slot itself is reclaimed by RpcChannel).
  Result<BufferList> timed_call(BufferList request,
                                const trace::TraceContext& ctx = {});

  sim::Env& env_;
  dpu::DpuDevice& dpu_;
  ProxyConfig cfg_;
  RpcChannel rpc_;
  event::EventCenter center_;
  SlotPool slots_;
  FallbackManager fallback_;
  std::unique_ptr<DmaBatcher> batcher_;

  struct WorkerQueue {
    dbg::Mutex m{"proxy.worker_queue"};
    std::unique_ptr<dbg::CondVar> cv;
    std::deque<WriteReq> q DOCEPH_GUARDED_BY(m);
  };
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<sim::Thread> workers_;
  sim::Thread pump_thread_;
  // Atomic, not guarded: written by mount/umount, read by every write
  // worker under its own per-queue mutex (no single guarding capability).
  std::atomic<bool> stopping_{true};
  bool mounted_ = false;  // lifecycle thread only

  // Table 3 accumulators.
  mutable dbg::Mutex bd_mutex_{"proxy.breakdown"};
  BreakdownSnapshot bd_ DOCEPH_GUARDED_BY(bd_mutex_);

  std::atomic<std::uint64_t> dma_bytes_{0};
  std::atomic<std::uint64_t> rpc_fallback_bytes_{0};
  std::atomic<std::uint64_t> next_token_{1};
  /// Latest host fullness seen in a TxnReply (permille), for fullness().
  std::atomic<std::uint32_t> host_fullness_permille_{0};
  /// Total write txns sitting in worker queues (for the bound + gauges).
  std::atomic<std::int64_t> queued_writes_{0};

  perf::PerfCountersRef counters_;
  perf::Collection perf_;
  AdminSocket admin_;
};

}  // namespace doceph::proxy
