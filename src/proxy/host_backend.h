#pragma once

#include <atomic>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "doca/mmap.h"
#include "event/event_center.h"
#include "os/object_store.h"
#include "proxy/proxy_protocol.h"
#include "proxy/rpc_channel.h"
#include "sim/cpu_model.h"
#include "sim/thread.h"

namespace doceph::proxy {

struct HostBackendConfig {
  int workers = 2;                 ///< host-side RPC execution threads
  /// Names this service's trace domain ("host.<name>").
  std::string name = "backend";
  /// Copy cost (ns/byte) for moving DMA'd payloads from the pre-exported
  /// write buffers into store-owned memory (Fig. 4's post-transfer write
  /// buffers) — the residual host CPU DoCeph cannot eliminate.
  double copy_ns_per_byte = 0.15;
  /// Doorbell coalescing for the host endpoint of the proxy channel
  /// (responses batch under load).
  RpcBatchConfig rpc_batch;
};

/// The lightweight host-side server of Fig. 3: it owns no OSD logic — it
/// listens on the proxy channel, rebuilds transactions whose bulk payload
/// arrived in the DMA write buffers, executes them on the local BlueStore,
/// and answers control-plane RPCs. This (plus BlueStore itself) is ALL that
/// runs on the host in a DoCeph deployment.
class HostBackendService {
 public:
  /// `host_mmap` is the pre-exported write-buffer region shared with the
  /// DPU's SlotPool (the MR cache). `slot_size` must match the pool's.
  HostBackendService(sim::Env& env, sim::CpuDomain& domain, os::ObjectStore& store,
                     doca::CommChannelRef channel, doca::MmapRef host_mmap,
                     std::size_t slot_size, HostBackendConfig cfg = {});
  ~HostBackendService();

  Status start();
  void shutdown();

  [[nodiscard]] std::uint64_t txns_applied() const noexcept { return txns_.load(); }
  [[nodiscard]] std::uint64_t control_rpcs() const noexcept { return control_.load(); }
  [[nodiscard]] std::uint64_t dma_payload_bytes() const noexcept {
    return dma_bytes_.load();
  }

 private:
  void handle_request(BufferList req, bool oneway, RpcChannel::Responder respond,
                      const trace::TraceContext& ctx);
  void do_submit_txn(BufferList body, const RpcChannel::Responder& respond,
                     const trace::TraceContext& ctx);
  void do_stage_segment(BufferList body, const RpcChannel::Responder& respond);
  void do_stage_batch(BufferList body, const RpcChannel::Responder& respond,
                      const trace::TraceContext& ctx);
  void do_control(ProxyOp op, BufferList body, const RpcChannel::Responder& respond);
  void do_read(BufferList body, const RpcChannel::Responder& respond);

  /// Materialize one op's payload from its DataRefs (staged segments were
  /// already copied out of the DMA slots by do_stage_segment).
  BufferList assemble_payload(std::uint64_t token, const std::vector<DataRef>& refs);

  void worker_loop();

  sim::Env& env_;
  sim::CpuDomain& domain_;
  os::ObjectStore& store_;
  RpcChannel rpc_;
  event::EventCenter center_;
  doca::MmapRef host_mmap_;
  std::size_t slot_size_;
  HostBackendConfig cfg_;

  // Work queue: handlers run on worker threads so blocking store calls never
  // stall the channel pump.
  dbg::Mutex queue_mutex_{"proxy.host_backend.queue"};
  dbg::CondVar queue_cv_;
  std::deque<std::function<void()>> queue_ DOCEPH_GUARDED_BY(queue_mutex_);
  bool stopping_ DOCEPH_GUARDED_BY(queue_mutex_) = false;

  // Per-request write buffers (Fig. 4): segments copied out of the DMA
  // slots, keyed by (request token, segment index) until submit_txn.
  dbg::Mutex staged_mutex_{"proxy.host_backend.staged"};
  std::map<std::uint64_t, std::map<std::uint32_t, BufferList>> staged_
      DOCEPH_GUARDED_BY(staged_mutex_);

  sim::Thread pump_thread_;
  std::vector<sim::Thread> workers_;
  bool started_ = false;

  std::atomic<std::uint64_t> txns_{0};
  std::atomic<std::uint64_t> control_{0};
  std::atomic<std::uint64_t> dma_bytes_{0};
};

}  // namespace doceph::proxy
