#include "proxy/rpc_channel.h"

#include "common/encoding.h"
#include "dbg/cond_var.h"
#include "common/logger.h"

namespace doceph::proxy {
namespace {
// req_id + flags + trace context
constexpr std::size_t kFragHeader = 8 + 1 + trace::TraceContext::kWireSize;
}

RpcChannel::RpcChannel(sim::Env& env, doca::CommChannelRef channel)
    : env_(env), ch_(std::move(channel)) {}

void RpcChannel::start(event::EventCenter& center) {
  ch_->set_recv_handler(center, [this](BufferList msg) { on_message(std::move(msg)); });
}

void RpcChannel::detach() { ch_->close(); }

Status RpcChannel::send_fragmented(std::uint64_t req_id, std::uint8_t flags,
                                   BufferList payload,
                                   const trace::TraceContext& ctx) {
  const std::size_t chunk_max = ch_->config().max_msg_size - kFragHeader;
  bytes_sent_.fetch_add(payload.length(), std::memory_order_relaxed);
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(chunk_max, payload.length() - off);
    const bool last = off + n == payload.length();
    BufferList frame;
    encode(req_id, frame);
    encode(static_cast<std::uint8_t>(flags | (last ? kLastPart : 0)), frame);
    encode(ctx, frame);
    frame.append(payload.substr(off, n));
    const Status st = ch_->send(std::move(frame));
    if (!st.ok()) return st;
    off += n;
  } while (off < payload.length());
  return Status::OK();
}

std::uint64_t RpcChannel::call_async(BufferList request, ResponseCb cb,
                                     const trace::TraceContext& ctx) {
  const std::uint64_t id = next_id_.fetch_add(1);
  {
    const dbg::LockGuard lk(mutex_);
    pending_[id] = std::move(cb);
  }
  const Status st = send_fragmented(id, 0, std::move(request), ctx);
  if (!st.ok()) {
    ResponseCb pending;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = pending_.find(id);
      if (it == pending_.end()) return id;
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending(st);
  }
  return id;
}

bool RpcChannel::cancel(std::uint64_t id) {
  const dbg::LockGuard lk(mutex_);
  return pending_.erase(id) != 0;
}

Result<BufferList> RpcChannel::call(BufferList request, sim::Duration timeout,
                                    const trace::TraceContext& ctx) {
  // Heap-shared wait state: on timeout the pending_ callback may still fire
  // later (or be firing right now on the pump thread); it must never touch
  // this frame's stack. The callback keeps the state alive via shared_ptr.
  struct CallState {
    explicit CallState(sim::TimeKeeper& tk) : cv(tk, "proxy.rpc_call_cv") {}
    dbg::Mutex m{"proxy.rpc_call"};
    dbg::CondVar cv;
    bool done = false;
    Result<BufferList> result = BufferList{};
  };
  auto state = std::make_shared<CallState>(env_.keeper());
  const std::uint64_t id = call_async(
      std::move(request),
      [state](Result<BufferList> r) {
        const dbg::LockGuard lk(state->m);
        state->result = std::move(r);
        state->done = true;
        state->cv.notify_all();
      },
      ctx);
  dbg::UniqueLock lk(state->m);
  if (!state->cv.wait_until(lk, env_.now() + timeout, [&] { return state->done; })) {
    lk.unlock();
    if (cancel(id)) {
      // Slot reclaimed: a late response will be dropped as unknown.
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status(Errc::timed_out, "rpc call");
    }
    // The response won the race and claimed the callback; take its result.
    lk.lock();
    state->cv.wait(lk, [&] { return state->done; });
  }
  return state->result;
}

Status RpcChannel::notify(BufferList request, const trace::TraceContext& ctx) {
  return send_fragmented(next_id_.fetch_add(1), kOneway, std::move(request), ctx);
}

void RpcChannel::on_message(BufferList msg) {
  BufferList::Cursor cur(msg);
  std::uint64_t req_id = 0;
  std::uint8_t flags = 0;
  trace::TraceContext ctx;
  if (!decode(req_id, cur) || !decode(flags, cur) || !ctx.decode(cur)) {
    DLOG(warn, "proxy") << "malformed rpc fragment";
    return;
  }
  BufferList chunk;
  (void)cur.get_buffer_list(cur.remaining(), chunk);

  const bool is_response = (flags & kResponse) != 0;
  BufferList full;
  {
    const dbg::LockGuard lk(mutex_);
    const auto key = std::make_pair(req_id, is_response);
    auto it = partial_.find(key);
    if (it != partial_.end()) {
      it->second.claim_append(chunk);
      if ((flags & kLastPart) == 0) return;
      full = std::move(it->second);
      partial_.erase(it);
    } else if ((flags & kLastPart) == 0) {
      partial_[key] = std::move(chunk);
      return;
    } else {
      full = std::move(chunk);
    }
  }

  if (is_response) {
    ResponseCb cb;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = pending_.find(req_id);
      if (it == pending_.end()) return;  // late/duplicate
      cb = std::move(it->second);
      pending_.erase(it);
    }
    cb(std::move(full));
    return;
  }

  if (handler_ == nullptr) {
    DLOG(warn, "proxy") << "rpc request with no handler installed";
    return;
  }
  const bool oneway = (flags & kOneway) != 0;
  Responder respond = [this, req_id](BufferList response) {
    (void)send_fragmented(req_id, kResponse, std::move(response));
  };
  handler_(std::move(full), oneway, oneway ? Responder{} : std::move(respond), ctx);
}

}  // namespace doceph::proxy
