#include "proxy/rpc_channel.h"

#include "common/encoding.h"
#include "dbg/cond_var.h"
#include "common/logger.h"

namespace doceph::proxy {
namespace {
// req_id + flags + trace context
constexpr std::size_t kFragHeader = 8 + 1 + trace::TraceContext::kWireSize;
// [u32 frame_len] container prefix per frame.
constexpr std::size_t kEntryPrefix = 4;
}  // namespace

RpcChannel::RpcChannel(sim::Env& env, doca::CommChannelRef channel)
    : env_(env), ch_(std::move(channel)) {}

void RpcChannel::start(event::EventCenter& center) {
  center_ = &center;
  ch_->set_recv_handler(center, [this](BufferList msg) { on_message(std::move(msg)); });
}

void RpcChannel::detach() {
  {
    const dbg::LockGuard lk(mutex_);
    if (timer_armed_ && center_ != nullptr) {
      (void)center_->cancel_timer(timer_id_);
      timer_armed_ = false;
    }
  }
  ch_->close();
}

void RpcChannel::arm_timer_locked(sim::Duration delay) {
  if (timer_armed_ || center_ == nullptr) return;
  timer_armed_ = true;
  timer_id_ = center_->add_timer(delay, [this] {
    {
      const dbg::LockGuard lk(mutex_);
      timer_armed_ = false;
      flush_locked();
    }
    drain_sends();
  });
}

void RpcChannel::flush_locked() {
  if (batch_entries_.empty()) return;

  // Chaos hook: a fired stall defers the doorbell instead of ringing it.
  const fault::FaultHit stall =
      env_.faults().hit("dpu.batch_flush_stall", env_.now(), ch_->config().name);
  if (stall.fired && center_ != nullptr) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    arm_timer_locked(stall.delay_ns > 0 ? stall.delay_ns
                                        : batch_cfg_.flush_delay);
    return;
  }

  // Pack entries into as few comch messages as fit (normally one; a
  // stall-deferred batch may have outgrown the message cap).
  const std::size_t cap = ch_->config().max_msg_size;
  OutMsg out;
  for (std::size_t i = 0; i < batch_entries_.size(); ++i) {
    BufferList& e = batch_entries_[i];
    if (out.msg.length() != 0 && out.msg.length() + e.length() > cap) {
      sendq_.push_back(std::move(out));
      out = OutMsg{};
    }
    out.msg.claim_append(e);
    if (batch_entry_ids_[i] != 0) out.req_ids.push_back(batch_entry_ids_[i]);
  }
  if (out.msg.length() != 0) sendq_.push_back(std::move(out));
  batch_entries_.clear();
  batch_entry_ids_.clear();
  batch_bytes_ = 0;
}

void RpcChannel::drain_sends() {
  std::vector<ResponseCb> failed;
  Status fail_st = Status::OK();
  {
    dbg::UniqueLock lk(mutex_);
    if (sending_) return;  // the active drainer picks our messages up
    sending_ = true;
    while (!sendq_.empty()) {
      OutMsg out = std::move(sendq_.front());
      sendq_.pop_front();
      lk.unlock();
      const Status st = ch_->send(std::move(out.msg));
      flushes_.fetch_add(1, std::memory_order_relaxed);
      lk.lock();
      if (!st.ok()) {
        // The message fails as a unit: every request frame that rode it
        // gets the send error (responses/oneways have no callback to fail).
        for (const std::uint64_t id : out.req_ids) {
          auto it = pending_.find(id);
          if (it == pending_.end()) continue;
          failed.push_back(std::move(it->second));
          pending_.erase(it);
          inflight_ops_.fetch_sub(1, std::memory_order_relaxed);
        }
        fail_st = st;
      }
    }
    sending_ = false;
  }
  for (auto& cb : failed) cb(fail_st);
}

void RpcChannel::enqueue_frame_locked(BufferList frame, bool is_request,
                                      std::uint64_t req_id) {
  BufferList entry;
  encode(static_cast<std::uint32_t>(frame.length()), entry);
  entry.claim_append(frame);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);

  if (!batch_cfg_.enabled) {
    OutMsg out;
    out.msg = std::move(entry);
    if (is_request) out.req_ids.push_back(req_id);
    sendq_.push_back(std::move(out));
    return;
  }

  // Size doorbell, part 1: flush what's queued before this entry would
  // overflow one message (keeps the common flush a single send).
  if (batch_bytes_ != 0 &&
      batch_bytes_ + entry.length() > ch_->config().max_msg_size)
    flush_locked();

  batch_bytes_ += entry.length();
  batch_entries_.push_back(std::move(entry));
  batch_entry_ids_.push_back(is_request ? req_id : 0);

  if (static_cast<int>(batch_entries_.size()) >= batch_cfg_.max_frames ||
      (inflight_ops_.load(std::memory_order_relaxed) <= 1 &&
       dispatching_.load(std::memory_order_relaxed) == 0) ||
      center_ == nullptr) {
    // Size doorbell (batch full) or idle doorbell (nobody else is in
    // flight and no incoming batch is mid-dispatch, so coalescing would
    // only add latency).
    flush_locked();
  } else {
    arm_timer_locked(batch_cfg_.flush_delay);
  }
}

Status RpcChannel::send_fragmented(std::uint64_t req_id, std::uint8_t flags,
                                   BufferList payload,
                                   const trace::TraceContext& ctx) {
  const std::size_t chunk_max =
      ch_->config().max_msg_size - kEntryPrefix - kFragHeader;
  bytes_sent_.fetch_add(payload.length(), std::memory_order_relaxed);
  const bool is_request = (flags & (kResponse | kOneway)) == 0;

  // All fragments of one payload are enqueued under one mutex_ hold, so
  // they land contiguously in sendq_ and reassemble in order. Send errors
  // surface through the pending callback (drain_sends), not the return.
  {
    const dbg::LockGuard lk(mutex_);
    std::size_t off = 0;
    do {
      const std::size_t n = std::min(chunk_max, payload.length() - off);
      const bool last = off + n == payload.length();
      BufferList frame;
      encode(req_id, frame);
      encode(static_cast<std::uint8_t>(flags | (last ? kLastPart : 0)), frame);
      encode(ctx, frame);
      frame.append(payload.substr(off, n));
      enqueue_frame_locked(std::move(frame), is_request, req_id);
      off += n;
    } while (off < payload.length());
  }
  drain_sends();
  return Status::OK();
}

std::uint64_t RpcChannel::call_async(BufferList request, ResponseCb cb,
                                     const trace::TraceContext& ctx) {
  const std::uint64_t id = next_id_.fetch_add(1);
  {
    const dbg::LockGuard lk(mutex_);
    pending_[id] = std::move(cb);
  }
  inflight_ops_.fetch_add(1, std::memory_order_relaxed);
  // A send failure fires the pending callback with the error from inside
  // drain_sends (possibly synchronously, on this thread).
  (void)send_fragmented(id, 0, std::move(request), ctx);
  return id;
}

bool RpcChannel::cancel(std::uint64_t id) {
  const dbg::LockGuard lk(mutex_);
  if (pending_.erase(id) == 0) return false;
  inflight_ops_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

Result<BufferList> RpcChannel::call(BufferList request, sim::Duration timeout,
                                    const trace::TraceContext& ctx) {
  // Heap-shared wait state: on timeout the pending_ callback may still fire
  // later (or be firing right now on the pump thread); it must never touch
  // this frame's stack. The callback keeps the state alive via shared_ptr.
  struct CallState {
    explicit CallState(sim::TimeKeeper& tk) : cv(tk, "proxy.rpc_call_cv") {}
    dbg::Mutex m{"proxy.rpc_call"};
    dbg::CondVar cv;
    bool done = false;
    Result<BufferList> result = BufferList{};
  };
  auto state = std::make_shared<CallState>(env_.keeper());
  const std::uint64_t id = call_async(
      std::move(request),
      [state](Result<BufferList> r) {
        const dbg::LockGuard lk(state->m);
        state->result = std::move(r);
        state->done = true;
        state->cv.notify_all();
      },
      ctx);
  dbg::UniqueLock lk(state->m);
  if (!state->cv.wait_until(lk, env_.now() + timeout, [&] { return state->done; })) {
    lk.unlock();
    if (cancel(id)) {
      // Slot reclaimed: a late response will be dropped as unknown.
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status(Errc::timed_out, "rpc call");
    }
    // The response won the race and claimed the callback; take its result.
    lk.lock();
    state->cv.wait(lk, [&] { return state->done; });
  }
  return state->result;
}

Status RpcChannel::notify(BufferList request, const trace::TraceContext& ctx) {
  return send_fragmented(next_id_.fetch_add(1), kOneway, std::move(request), ctx);
}

void RpcChannel::on_message(BufferList msg) {
  // One comch message carries one or more [u32 len][frame] entries.
  dispatching_.fetch_add(1, std::memory_order_relaxed);
  BufferList::Cursor cur(msg);
  while (cur.remaining() > 0) {
    std::uint32_t len = 0;
    if (!decode(len, cur) || len > cur.remaining()) {
      DLOG(warn, "proxy") << "malformed rpc container";
      break;
    }
    BufferList frame;
    (void)cur.get_buffer_list(len, frame);
    on_frame(std::move(frame));
  }
  dispatching_.fetch_sub(1, std::memory_order_relaxed);
  // Ring once for everything the dispatch loop enqueued (inline responses
  // to this message's frames): one incoming batch, one outgoing batch.
  {
    const dbg::LockGuard lk(mutex_);
    flush_locked();
  }
  drain_sends();
}

void RpcChannel::on_frame(BufferList frame) {
  BufferList::Cursor cur(frame);
  std::uint64_t req_id = 0;
  std::uint8_t flags = 0;
  trace::TraceContext ctx;
  if (!decode(req_id, cur) || !decode(flags, cur) || !ctx.decode(cur)) {
    DLOG(warn, "proxy") << "malformed rpc fragment";
    return;
  }
  BufferList chunk;
  (void)cur.get_buffer_list(cur.remaining(), chunk);

  const bool is_response = (flags & kResponse) != 0;
  BufferList full;
  {
    const dbg::LockGuard lk(mutex_);
    const auto key = std::make_pair(req_id, is_response);
    auto it = partial_.find(key);
    if (it != partial_.end()) {
      it->second.claim_append(chunk);
      if ((flags & kLastPart) == 0) return;
      full = std::move(it->second);
      partial_.erase(it);
    } else if ((flags & kLastPart) == 0) {
      partial_[key] = std::move(chunk);
      return;
    } else {
      full = std::move(chunk);
    }
  }

  if (is_response) {
    ResponseCb cb;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = pending_.find(req_id);
      if (it == pending_.end()) return;  // late/duplicate
      cb = std::move(it->second);
      pending_.erase(it);
    }
    inflight_ops_.fetch_sub(1, std::memory_order_relaxed);
    cb(std::move(full));
    return;
  }

  if (handler_ == nullptr) {
    DLOG(warn, "proxy") << "rpc request with no handler installed";
    return;
  }
  const bool oneway = (flags & kOneway) != 0;
  Responder respond;
  if (!oneway) {
    // The server side of the idle detector: this op counts as in flight
    // until its response is enqueued (or the responder is dropped — the
    // guard's deleter backstops that path).
    inflight_ops_.fetch_add(1, std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto finish = [this, done] {
      if (!done->exchange(true))
        inflight_ops_.fetch_sub(1, std::memory_order_relaxed);
    };
    auto guard = std::shared_ptr<void>(nullptr, [finish](void*) { finish(); });
    respond = [this, req_id, finish, guard](BufferList response) {
      const Status st = send_fragmented(req_id, kResponse, std::move(response));
      (void)st;
      finish();
    };
  }
  handler_(std::move(full), oneway, std::move(respond), ctx);
}

}  // namespace doceph::proxy
