#include "proxy/host_backend.h"

#include "common/logger.h"

namespace doceph::proxy {

HostBackendService::HostBackendService(sim::Env& env, sim::CpuDomain& domain,
                                       os::ObjectStore& store,
                                       doca::CommChannelRef channel,
                                       doca::MmapRef host_mmap, std::size_t slot_size,
                                       HostBackendConfig cfg)
    : env_(env),
      domain_(domain),
      store_(store),
      rpc_(env, std::move(channel)),
      center_(env),
      host_mmap_(std::move(host_mmap)),
      slot_size_(slot_size),
      cfg_(cfg),
      queue_cv_(env.keeper(), "proxy.host_backend.cv") {}

HostBackendService::~HostBackendService() { shutdown(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

Status HostBackendService::start() {
  rpc_.set_request_handler(
      [this](BufferList req, bool oneway, RpcChannel::Responder respond,
             const trace::TraceContext& ctx) {
        handle_request(std::move(req), oneway, std::move(respond), ctx);
      });
  rpc_.set_batch_config(cfg_.rpc_batch);
  rpc_.start(center_);
  {
    const dbg::LockGuard lk(queue_mutex_);
    stopping_ = false;
  }
  pump_thread_ = sim::Thread(env_.keeper(), env_.stats(), "host-proxy-ch", &domain_,
                             [this] { center_.run(); }, /*daemon=*/true);
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back(env_.keeper(), env_.stats(),
                          "host-worker-" + std::to_string(i), &domain_,
                          [this] { worker_loop(); }, /*daemon=*/true);
  }
  started_ = true;
  return Status::OK();
}

void HostBackendService::shutdown() {
  if (!started_) return;
  started_ = false;
  {
    const dbg::LockGuard lk(queue_mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  workers_.clear();
  rpc_.detach();  // stop channel -> center dispatches before the center dies
  center_.stop();
  pump_thread_.join();
}

void HostBackendService::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      dbg::UniqueLock lk(queue_mutex_);
      queue_cv_.wait(lk, [&] {
        queue_mutex_.assert_held();  // predicate runs as a separate function
        return stopping_ || !queue_.empty();
      });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void HostBackendService::handle_request(BufferList req, bool oneway,
                                        RpcChannel::Responder respond,
                                        const trace::TraceContext& ctx) {
  // Runs on the channel pump thread: decode the op byte, then hand the work
  // to a host worker (store calls block in simulated time).
  BufferList::Cursor cur(req);
  ProxyOp op{};
  if (!decode(op, cur)) {
    DLOG(warn, "proxy") << "host backend: bad request";
    return;
  }
  BufferList body;
  (void)cur.get_buffer_list(cur.remaining(), body);
  (void)oneway;

  const dbg::LockGuard lk(queue_mutex_);
  if (stopping_) return;
  queue_.push_back([this, op, ctx, body = std::move(body),
                    respond = std::move(respond)] {
    switch (op) {
      case ProxyOp::submit_txn:
        do_submit_txn(body, respond, ctx);
        break;
      case ProxyOp::stage_segment:
        do_stage_segment(body, respond);
        break;
      case ProxyOp::stage_batch:
        do_stage_batch(body, respond, ctx);
        break;
      case ProxyOp::read_obj:
        do_read(body, respond);
        break;
      case ProxyOp::release_slots:
        break;  // slot bookkeeping lives on the DPU side; nothing to do here
      case ProxyOp::abort_txn: {
        // The DPU gave up on this request (throttled abort): drop whatever
        // it had already staged so the token's write buffer doesn't leak.
        BufferList::Cursor c(body);
        std::uint64_t token = 0;
        if (decode(token, c)) {
          const dbg::LockGuard slk(staged_mutex_);
          staged_.erase(token);
        }
        break;
      }
      default:
        do_control(op, body, respond);
        break;
    }
  });
  queue_cv_.notify_one();
}

void HostBackendService::do_stage_segment(BufferList body,
                                          const RpcChannel::Responder& respond) {
  StageSegment seg;
  BufferList::Cursor cur(body);
  if (!seg.decode(cur) || static_cast<std::size_t>(seg.len) > slot_size_) {
    if (respond) respond(encode_to_bl(std::int32_t{
        -static_cast<std::int32_t>(Errc::corrupt)}));
    return;
  }
  // Copy out of the shared DMA region into this request's write buffer so
  // the slot can recycle immediately (Fig. 4's staging -> write buffer hop).
  const std::size_t off = static_cast<std::size_t>(seg.slot) * slot_size_;
  BufferList copy;
  copy.append(host_mmap_->data() + off, seg.len);
  domain_.charge(static_cast<sim::Duration>(cfg_.copy_ns_per_byte *
                                            static_cast<double>(seg.len)));
  dma_bytes_.fetch_add(seg.len, std::memory_order_relaxed);
  {
    const dbg::LockGuard lk(staged_mutex_);
    staged_[seg.token][seg.seg_index] = std::move(copy);
  }
  if (respond) respond(encode_to_bl(std::int32_t{0}));
}

void HostBackendService::do_stage_batch(BufferList body,
                                        const RpcChannel::Responder& respond,
                                        const trace::TraceContext& ctx) {
  StageBatch batch;
  BufferList::Cursor cur(body);
  if (!batch.decode(cur)) {
    if (respond) respond(encode_to_bl(std::int32_t{
        -static_cast<std::int32_t>(Errc::corrupt)}));
    return;
  }
  const sim::Time t0 = env_.now();
  auto sp = env_.tracer().span("host.stage_batch", "host." + cfg_.name, ctx, t0,
                               batch.entries.size());
  // The batch is acked as a unit: every entry is copied out (Fig. 4's
  // staging -> write-buffer hop, one doorbell for the whole batch) and the
  // single ack carries 0 or the first per-entry validation error.
  const std::size_t slot_base =
      static_cast<std::size_t>(batch.slot) * slot_size_;
  std::int32_t result = 0;
  for (const auto& e : batch.entries) {
    if (static_cast<std::size_t>(e.off) + e.len > slot_size_) {
      if (result == 0) result = -static_cast<std::int32_t>(Errc::corrupt);
      continue;
    }
    BufferList copy;
    copy.append(host_mmap_->data() + slot_base + e.off, e.len);
    domain_.charge(static_cast<sim::Duration>(cfg_.copy_ns_per_byte *
                                              static_cast<double>(e.len)));
    dma_bytes_.fetch_add(e.len, std::memory_order_relaxed);
    {
      const dbg::LockGuard lk(staged_mutex_);
      staged_[e.token][e.seg_index] = std::move(copy);
    }
  }
  sp.end(env_.now());
  if (respond) respond(encode_to_bl(result));
}

BufferList HostBackendService::assemble_payload(std::uint64_t token,
                                                const std::vector<DataRef>& refs)
    DOCEPH_NO_THREAD_SAFETY_ANALYSIS {
  // waiver: staged_mutex_ is acquired lazily (first staged ref) and held to
  // scope end — conditional acquisition is outside the analysis model.
  BufferList out;
  std::map<std::uint32_t, BufferList>* segs = nullptr;
  dbg::UniqueLock lk(staged_mutex_, std::defer_lock);
  for (const auto& ref : refs) {
    switch (ref.kind) {
      case DataRef::Kind::inline_:
        out.append(ref.data);
        break;
      case DataRef::Kind::staged: {
        if (segs == nullptr) {
          lk.lock();
          segs = &staged_[token];
        }
        auto it = segs->find(ref.index);
        if (it != segs->end()) {
          out.claim_append(it->second);
        } else {
          out.append_zero(ref.len);  // lost segment: keep sizes consistent
        }
        break;
      }
      case DataRef::Kind::slot: {
        // Read-path style direct slot reference (not used for writes in the
        // staged protocol, but accepted for robustness).
        const std::size_t off = static_cast<std::size_t>(ref.index) * slot_size_;
        out.append(host_mmap_->data() + off, ref.len);
        domain_.charge(static_cast<sim::Duration>(cfg_.copy_ns_per_byte *
                                                  static_cast<double>(ref.len)));
        break;
      }
    }
  }
  return out;
}

void HostBackendService::do_submit_txn(BufferList body,
                                       const RpcChannel::Responder& respond,
                                       const trace::TraceContext& ctx) {
  WireTxn wire;
  BufferList::Cursor cur(body);
  if (!wire.decode(cur) || wire.parts.size() != wire.meta.ops().size()) {
    TxnReply reply{.result = -static_cast<std::int32_t>(Errc::corrupt),
                   .host_write_ns = 0};
    if (respond) respond(encode_to_bl(reply));
    return;
  }
  for (std::size_t i = 0; i < wire.meta.ops().size(); ++i) {
    if (!wire.parts[i].empty())
      wire.meta.ops()[i].data = assemble_payload(wire.token, wire.parts[i]);
  }
  {
    const dbg::LockGuard lk(staged_mutex_);
    staged_.erase(wire.token);
  }
  txns_.fetch_add(1, std::memory_order_relaxed);

  const sim::Time t0 = env_.now();
  // Shared, not captured by value: Span is move-only and OnCommit is a
  // copyable std::function.
  auto sp = std::make_shared<trace::Span>(
      env_.tracer().span("host.submit_txn", "host." + cfg_.name, ctx, t0));
  store_.queue_transaction(
      std::move(wire.meta), [this, t0, sp, respond](Status st) {
        sp->end(env_.now());
        TxnReply reply;
        reply.result = st.ok() ? 0 : -static_cast<std::int32_t>(st.code());
        reply.host_write_ns = env_.now() - t0;
        // Piggyback the host store's pressure so the DPU-side OSD can run
        // nearfull admission without an extra control RPC.
        reply.fullness_permille =
            static_cast<std::uint32_t>(store_.fullness() * 1000.0);
        if (respond) respond(encode_to_bl(reply));
      });
}

void HostBackendService::do_read(BufferList body,
                                 const RpcChannel::Responder& respond) {
  ReadRequest req;
  BufferList::Cursor cur(body);
  ReadReply reply;
  if (!req.decode(cur)) {
    reply.result = -static_cast<std::int32_t>(Errc::corrupt);
    if (respond) respond(encode_to_bl(reply));
    return;
  }
  control_.fetch_add(1, std::memory_order_relaxed);
  auto data = store_.read(req.cid, req.oid, req.off, req.len);
  if (!data.ok()) {
    reply.result = -static_cast<std::int32_t>(data.status().code());
    if (respond) respond(encode_to_bl(reply));
    return;
  }
  reply.total_len = data->length();
  if (data->length() <= req.inline_max) {
    reply.inline_data = true;
    reply.data = std::move(*data);
    if (respond) respond(encode_to_bl(reply));
    return;
  }
  // Stage into the offered write-buffer slots (host-side staging for reads,
  // paper §5.5); the DPU DMAs them back and releases the slots.
  std::size_t off = 0;
  for (const std::uint32_t slot : req.slots) {
    if (off >= data->length()) break;
    const std::size_t n =
        std::min<std::size_t>(slot_size_, data->length() - off);
    data->copy_out(off, n, host_mmap_->data() + static_cast<std::size_t>(slot) * slot_size_);
    domain_.charge(
        static_cast<sim::Duration>(cfg_.copy_ns_per_byte * static_cast<double>(n)));
    reply.refs.push_back(DataRef{.kind = DataRef::Kind::slot,
                                 .index = slot,
                                 .len = static_cast<std::uint32_t>(n)});
    off += n;
  }
  if (off < data->length()) {
    // Not enough slots offered: remainder rides inline (correct, if slower).
    DataRef rest;
    rest.kind = DataRef::Kind::inline_;
    rest.len = static_cast<std::uint32_t>(data->length() - off);
    rest.data = data->substr(off, data->length() - off);
    reply.refs.push_back(std::move(rest));
  }
  if (respond) respond(encode_to_bl(reply));
}

void HostBackendService::do_control(ProxyOp op, BufferList body,
                                    const RpcChannel::Responder& respond) {
  control_.fetch_add(1, std::memory_order_relaxed);
  BufferList out;
  BufferList::Cursor cur(body);
  auto fail = [&](Errc c) {
    out.clear();
    encode(static_cast<std::int32_t>(-static_cast<int>(c)), out);
  };

  switch (op) {
    case ProxyOp::ping: {
      encode(std::int32_t{0}, out);
      break;
    }
    case ProxyOp::stat: {
      os::coll_t cid;
      os::ghobject_t oid;
      if (!cid.decode(cur) || !oid.decode(cur)) {
        fail(Errc::corrupt);
        break;
      }
      auto r = store_.stat(cid, oid);
      if (!r.ok()) {
        fail(r.status().code());
        break;
      }
      encode(std::int32_t{0}, out);
      r->encode(out);
      break;
    }
    case ProxyOp::exists: {
      os::coll_t cid;
      os::ghobject_t oid;
      if (!cid.decode(cur) || !oid.decode(cur)) {
        fail(Errc::corrupt);
        break;
      }
      encode(std::int32_t{0}, out);
      encode(store_.exists(cid, oid), out);
      break;
    }
    case ProxyOp::coll_exists: {
      os::coll_t cid;
      if (!cid.decode(cur)) {
        fail(Errc::corrupt);
        break;
      }
      encode(std::int32_t{0}, out);
      encode(store_.collection_exists(cid), out);
      break;
    }
    case ProxyOp::omap_get: {
      os::coll_t cid;
      os::ghobject_t oid;
      if (!cid.decode(cur) || !oid.decode(cur)) {
        fail(Errc::corrupt);
        break;
      }
      auto r = store_.omap_get(cid, oid);
      if (!r.ok()) {
        fail(r.status().code());
        break;
      }
      encode(std::int32_t{0}, out);
      encode(*r, out);
      break;
    }
    case ProxyOp::list_objects: {
      os::coll_t cid;
      if (!cid.decode(cur)) {
        fail(Errc::corrupt);
        break;
      }
      auto r = store_.list_objects(cid);
      if (!r.ok()) {
        fail(r.status().code());
        break;
      }
      encode(std::int32_t{0}, out);
      encode(*r, out);
      break;
    }
    case ProxyOp::list_collections: {
      encode(std::int32_t{0}, out);
      encode(store_.list_collections(), out);
      break;
    }
    default:
      fail(Errc::not_supported);
      break;
  }
  if (respond) respond(std::move(out));
}

}  // namespace doceph::proxy
