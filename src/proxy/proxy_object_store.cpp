#include "proxy/proxy_object_store.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/logger.h"
#include "common/shard.h"

namespace doceph::proxy {

ProxyObjectStore::ProxyObjectStore(sim::Env& env, dpu::DpuDevice& dpu, ProxyConfig cfg)
    : env_(env),
      dpu_(dpu),
      cfg_(cfg),
      rpc_(env, dpu.dpu_comch()),
      center_(env),
      slots_(env, cfg.slots, cfg.segment_size),
      fallback_(cfg.cooldown),
      counters_(perf::Builder("dpu", l_dpu_first, l_dpu_last)
                    .add_counter(l_dpu_writes, "writes")
                    .add_counter(l_dpu_dma_bytes, "dma_bytes")
                    .add_counter(l_dpu_rpc_fallback_bytes, "rpc_fallback_bytes")
                    .add_counter(l_dpu_rpc_timeout, "rpc_timeout")
                    .add_histogram(l_dpu_write_lat, "write_lat")
                    .add_histogram(l_dpu_dma_wait, "dma_wait")
                    .add_counter(l_dpu_batch_flushes, "batch_flushes")
                    .add_counter(l_dpu_batch_segments, "batch_segments")
                    .add_counter(l_dpu_batch_bytes, "batch_bytes")
                    .add_counter(l_dpu_batch_stalls, "batch_stalls")
                    .add_histogram(l_dpu_batch_fill, "batch_fill")
                    .add_counter(l_dpu_throttle_queue, "throttle_queue")
                    .add_counter(l_dpu_throttle_slot, "throttle_slot")
                    .add_gauge(l_dpu_worker_queue_depth, "worker_queue_depth")
                    .add_gauge(l_dpu_worker_queue_depth_hw, "worker_queue_depth_hw")
                    .create()) {
  queues_.reserve(static_cast<std::size_t>(cfg_.write_workers));
  for (int i = 0; i < cfg_.write_workers; ++i) {
    auto q = std::make_unique<WorkerQueue>();
    q->cv = std::make_unique<dbg::CondVar>(env.keeper(), "proxy.queue_cv");
    queues_.push_back(std::move(q));
  }
  perf_.add(counters_);
}

ProxyObjectStore::~ProxyObjectStore() {  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design
  if (mounted_) (void)umount();
}

Status ProxyObjectStore::mount() {
  rpc_.set_batch_config(cfg_.rpc_batch);
  rpc_.start(center_);
  if (cfg_.dma_batch.enabled) {
    batcher_ = std::make_unique<DmaBatcher>(
        env_, dpu_, slots_, rpc_, fallback_, counters_, cfg_.dma_batch,
        cfg_.stage_copy_ns_per_byte, dpu_.name());
    batcher_->start();
  }
  stopping_ = false;
  pump_thread_ = sim::Thread(env_.keeper(), env_.stats(), "dpu-proxy-ch",
                             &dpu_.cpu(), [this] { center_.run(); },
                             /*daemon=*/true);
  for (int i = 0; i < cfg_.write_workers; ++i) {
    workers_.emplace_back(env_.keeper(), env_.stats(),
                          "dpu-dma-pipe-" + std::to_string(i), &dpu_.cpu(),
                          [this, i] { write_worker(i); }, /*daemon=*/true);
  }
  mounted_ = true;
  // Verify the channel end-to-end.
  auto r = control_call(ProxyOp::ping, {});
  if (!r.ok()) {
    (void)umount();
    return r.status();
  }
  admin_.register_command("perf dump", "dump all perf-counter blocks as JSON",
                          [this](const auto&) { return perf_.dump_json(); });
  admin_.register_command("perf reset", "zero every counter and histogram",
                          [this](const auto&) {
                            perf_.reset_all();
                            return std::string("{}");
                          });
  admin_.register_command(
      "fault", "fault set <point> [k=v ...] | fault list | fault clear [point]",
      [this](const auto& args) { return env_.faults().admin_command(args); });
  return Status::OK();
}

Status ProxyObjectStore::umount() {
  if (!mounted_) return Status::OK();
  mounted_ = false;
  std::vector<WriteReq> orphans;
  for (auto& q : queues_) {
    const dbg::LockGuard lk(q->m);
    for (auto& req : q->q) orphans.push_back(std::move(req));
    q->q.clear();
  }
  queued_writes_.fetch_sub(static_cast<std::int64_t>(orphans.size()),
                           std::memory_order_relaxed);
  stopping_ = true;
  for (auto& q : queues_) {
    const dbg::LockGuard lk(q->m);
    q->cv->notify_all();
  }
  workers_.clear();
  // The batcher outlives the workers (their in-flight segments complete
  // through it) but must stop while the channel pump can still deliver
  // stage_batch acks.
  if (batcher_ != nullptr) {
    batcher_->stop();
    batcher_.reset();
  }
  rpc_.detach();  // stop channel -> center dispatches before the center dies
  center_.stop();
  pump_thread_.join();
  for (auto& req : orphans) {
    if (req.on_commit) req.on_commit(Status(Errc::shutting_down, "proxy umount"));
  }
  admin_.unregister_all();
  return Status::OK();
}

// ---- write path -----------------------------------------------------------------

void ProxyObjectStore::queue_transaction(os::Transaction txn, OnCommit on_commit) {
  if (!mounted_) {
    if (on_commit) on_commit(Status(Errc::shutting_down, "proxy not mounted"));
    return;
  }
  // Per-collection ordering: requests for one PG always land on one worker.
  // Uses the same PG hash as the OSD op lanes (common::shard_of_pg), so a
  // PG's proxy worker and its OSD lane agree across the offload boundary.
  const os::coll_t cid = txn.ops().empty() ? os::coll_t{} : txn.ops().front().cid;
  const std::size_t idx = common::shard_of_pg(cid.pool, cid.pg_seed, queues_.size());
  auto& q = *queues_[idx];
  bool bounced = false;
  {
    const dbg::LockGuard lk(q.m);
    if (cfg_.max_worker_queue > 0 && q.q.size() >= cfg_.max_worker_queue) {
      bounced = true;  // complete below, outside the queue lock
    } else {
      q.q.push_back(WriteReq{std::move(txn), std::move(on_commit), env_.now()});
      q.cv->notify_one();
    }
  }
  if (bounced) {
    counters_->inc(l_dpu_throttle_queue);
    if (on_commit) on_commit(Status(Errc::throttled, "DPU worker queue full"));
    return;
  }
  const auto depth = static_cast<std::uint64_t>(
      queued_writes_.fetch_add(1, std::memory_order_relaxed) + 1);
  counters_->set(l_dpu_worker_queue_depth, depth);
  if (depth > counters_->get(l_dpu_worker_queue_depth_hw))
    counters_->set(l_dpu_worker_queue_depth_hw, depth);
}

void ProxyObjectStore::write_worker(int idx) {
  auto& q = *queues_[static_cast<std::size_t>(idx)];
  while (true) {
    WriteReq req;
    {
      dbg::UniqueLock lk(q.m);
      q.cv->wait(lk, [&] {
        q.m.assert_held();  // predicate runs as a separate function
        return stopping_.load() || !q.q.empty();
      });
      if (stopping_.load()) return;
      req = std::move(q.q.front());
      q.q.pop_front();
    }
    counters_->set(
        l_dpu_worker_queue_depth,
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            queued_writes_.fetch_sub(1, std::memory_order_relaxed) - 1, 0)));
    process_write(std::move(req));
  }
}

DataRef ProxyObjectStore::move_segment(BufferList seg,
                                       const std::shared_ptr<SegCtx>& ctx) {
  const auto path = fallback_.choose(env_.now());
  if (path == FallbackManager::Path::rpc) {
    rpc_fallback_bytes_.fetch_add(seg.length(), std::memory_order_relaxed);
    counters_->inc(l_dpu_rpc_fallback_bytes, seg.length());
    DataRef ref;
    ref.kind = DataRef::Kind::inline_;
    ref.len = static_cast<std::uint32_t>(seg.length());
    ref.data = std::move(seg);
    return ref;
  }

  // Coalesced fast path: hand the segment to the batcher, which packs it
  // with companions from concurrent requests into one slot, one
  // scatter-gather DMA pass, and one stage_batch RPC. Probe transfers and
  // the pipelining/mr_cache ablations keep the legacy one-slot-per-segment
  // path (the probe must exercise exactly the plain DMA machinery).
  if (batcher_ != nullptr && cfg_.pipelining && cfg_.mr_cache &&
      path == FallbackManager::Path::dma) {
    const std::uint32_t seg_index = ctx->next_seg;
    const auto seg_len = static_cast<std::uint32_t>(seg.length());
    const sim::Time enq = env_.now();
    {
      const dbg::LockGuard lk(ctx->m);
      ++ctx->outstanding;
    }
    auto done = [this, ctx, enq](Status st, sim::Time submit,
                                 sim::Time complete) {
      sim::Time prev = ctx->last_complete.load(std::memory_order_relaxed);
      while (complete > prev &&
             !ctx->last_complete.compare_exchange_weak(prev, complete)) {
      }
      const dbg::LockGuard lk(ctx->m);
      if (ctx->first_submit < 0 || submit < ctx->first_submit)
        ctx->first_submit = submit;
      ctx->dma_wait += submit > enq ? submit - enq : 0;
      if (!st.ok()) ctx->any_failed = true;
      --ctx->outstanding;
      ctx->cv.notify_all();
    };
    if (batcher_->enqueue(seg, ctx->token, seg_index, ctx->trace,
                          std::move(done))) {
      ctx->next_seg++;
      dma_bytes_.fetch_add(seg_len, std::memory_order_relaxed);
      counters_->inc(l_dpu_dma_bytes, seg_len);
      DataRef ref;
      ref.kind = DataRef::Kind::staged;
      ref.index = seg_index;
      ref.len = seg_len;
      return ref;
    }
    // Rejected (oversized segment or batcher stopped): undo and fall
    // through to the legacy path, which consumes `seg` itself.
    const dbg::LockGuard lk(ctx->m);
    --ctx->outstanding;
    ctx->cv.notify_all();
  }

  // Acquire a paired staging/write buffer; blocked time is DMA-wait. With a
  // deadline configured, starvation surfaces as a throttled txn instead of
  // wedging this worker behind a saturated DMA pipeline.
  const sim::Time w0 = env_.now();
  int slot = -1;
  if (cfg_.slot_acquire_timeout > 0) {
    const auto acquired = slots_.acquire_for(cfg_.slot_acquire_timeout);
    {
      const dbg::LockGuard lk(ctx->m);
      ctx->dma_wait += env_.now() - w0;
    }
    if (!acquired) {
      counters_->inc(l_dpu_throttle_slot);
      const dbg::LockGuard lk(ctx->m);
      ctx->slot_timed_out = true;
      DataRef ref;  // placeholder; process_write aborts the whole request
      ref.kind = DataRef::Kind::inline_;
      ref.len = static_cast<std::uint32_t>(seg.length());
      ref.data = std::move(seg);
      return ref;
    }
    slot = *acquired;
  } else {
    slot = slots_.acquire();
    const dbg::LockGuard lk(ctx->m);
    ctx->dma_wait += env_.now() - w0;
  }

  if (!cfg_.mr_cache) {
    // Without the MR cache each transfer renegotiates its memory region
    // over the CommChannel (one round trip).
    (void)control_call(ProxyOp::ping, {});
  }

  // Stage: copy the payload into the DMA-capable buffer.
  const std::uint32_t seg_index = ctx->next_seg++;
  doca::Buf src = slots_.dpu_buf(slot, seg.length());
  seg.copy_out(0, seg.length(), src.data());
  dpu_.cpu().charge(static_cast<sim::Duration>(cfg_.stage_copy_ns_per_byte *
                                               static_cast<double>(seg.length())));

  doca::Buf dst = slots_.host_buf(slot, seg.length());
  const bool probing = path == FallbackManager::Path::probe;
  const auto seg_len = static_cast<std::uint32_t>(seg.length());
  {
    const dbg::LockGuard lk(ctx->m);
    ++ctx->outstanding;
    if (ctx->first_submit < 0) ctx->first_submit = env_.now();
  }

  auto finish_segment = [this, ctx, slot](bool failed) {
    slots_.release(slot);
    const dbg::LockGuard lk(ctx->m);
    if (failed) ctx->any_failed = true;
    --ctx->outstanding;
    ctx->cv.notify_all();
  };

  const Status submitted = dpu_.dma().submit(
      src, dst, doca::DmaDir::dpu_to_host,
      [this, ctx, slot, seg_index, seg_len, probing,
       finish_segment](Status st) {
        ctx->last_complete.store(env_.now(), std::memory_order_relaxed);
        if (!st.ok()) {
          fallback_.on_dma_failure(env_.now());
          finish_segment(true);
          return;
        }
        if (probing) fallback_.on_dma_success();
        // Hand the slot's content to the host's per-request write buffer;
        // the slot recycles as soon as the host acks the copy (Fig. 4).
        StageSegment msg{.token = ctx->token,
                         .seg_index = seg_index,
                         .slot = static_cast<std::uint32_t>(slot),
                         .len = seg_len};
        BufferList request;
        encode(ProxyOp::stage_segment, request);
        msg.encode(request);
        rpc_.call_async(
            std::move(request),
            [finish_segment](Result<BufferList> r) {
              bool failed = !r.ok();
              if (r.ok()) {
                BufferList::Cursor cur(*r);
                std::int32_t res = 0;
                failed = !decode(res, cur) || res != 0;
              }
              finish_segment(failed);
            },
            ctx->trace);
      },
      ctx->trace);
  if (!submitted.ok()) {
    fallback_.on_dma_failure(env_.now());
    finish_segment(true);
  } else {
    dma_bytes_.fetch_add(seg.length(), std::memory_order_relaxed);
    counters_->inc(l_dpu_dma_bytes, seg.length());
    if (!cfg_.pipelining) {
      // Ablation: strictly serial -- wait out this transfer (and its staging
      // handoff) before touching the next segment.
      dbg::UniqueLock lk(ctx->m);
      ctx->cv.wait(lk, [&] {
        ctx->m.assert_held();
        return ctx->outstanding == 0;
      });
    }
  }

  DataRef ref;
  ref.kind = DataRef::Kind::staged;
  ref.index = seg_index;
  ref.len = seg_len;
  return ref;
}

void ProxyObjectStore::process_write(WriteReq req) {
  const sim::Time t_start = req.enqueued;
  WireTxn wire;

  // Detach bulk payloads from the transaction metadata.
  std::vector<BufferList> payloads(req.txn.ops().size());
  for (std::size_t i = 0; i < req.txn.ops().size(); ++i) {
    payloads[i] = std::move(req.txn.ops()[i].data);
    req.txn.ops()[i].data = BufferList{};
  }
  wire.meta = std::move(req.txn);
  wire.parts.resize(payloads.size());
  wire.token = next_token_.fetch_add(1);

  std::uint64_t total_bytes = 0;
  for (const auto& p : payloads) total_bytes += p.length();
  std::uint64_t dma_bytes_this_request = 0;

  auto ctx = std::make_shared<SegCtx>(env_.keeper());
  ctx->token = wire.token;
  ctx->trace = wire.meta.trace();
  // The request-level DPU span: covers segmentation, DMA, and the host
  // commit round trip (open during the crash window, so a hard kill leaves
  // it partial in the flight recorder).
  auto write_span = env_.tracer().span("dpu.write", "dpu." + dpu_.name(),
                                       ctx->trace, t_start);

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    BufferList& payload = payloads[i];
    if (payload.empty()) continue;
    if (total_bytes <= cfg_.inline_write_max) {
      // Tiny request: not worth a DMA round; ride the control channel.
      DataRef ref;
      ref.kind = DataRef::Kind::inline_;
      ref.len = static_cast<std::uint32_t>(payload.length());
      ref.data = std::move(payload);
      wire.parts[i].push_back(std::move(ref));
      continue;
    }
    std::size_t off = 0;
    while (off < payload.length()) {
      const std::size_t n =
          std::min<std::size_t>(cfg_.segment_size, payload.length() - off);
      DataRef ref = move_segment(payload.substr(off, n), ctx);
      if (ref.kind == DataRef::Kind::staged) dma_bytes_this_request += n;
      wire.parts[i].push_back(std::move(ref));
      off += n;
    }
  }

  // Drain in-flight segments (DMA + staging handoff), then snapshot the
  // callback-shared state — nothing mutates it once outstanding hits zero.
  bool any_failed = false;
  bool slot_timed_out = false;
  sim::Time first_submit = -1;
  sim::Duration dma_wait = 0;
  {
    dbg::UniqueLock lk(ctx->m);
    ctx->cv.wait(lk, [&] {
      ctx->m.assert_held();
      return ctx->outstanding == 0;
    });
    any_failed = ctx->any_failed;
    slot_timed_out = ctx->slot_timed_out;
    first_submit = ctx->first_submit;
    dma_wait = ctx->dma_wait;
  }

  if (slot_timed_out) {
    // Staging starved past slot_acquire_timeout: give up on the whole
    // request with a typed throttle (the OSD/client retry machinery takes
    // it from here) instead of wedging this worker. Oneway abort so the
    // host drops any segments already staged under this token.
    BufferList abort_req;
    encode(ProxyOp::abort_txn, abort_req);
    encode(wire.token, abort_req);
    (void)rpc_.notify(std::move(abort_req), ctx->trace);
    write_span.end(env_.now());
    if (req.on_commit)
      req.on_commit(Status(Errc::throttled,
                           "DPU staging slots exhausted past deadline"));
    return;
  }

  if (any_failed) {
    // Fallback (paper §4): staged segments whose transfer or handoff
    // failed are unusable; conservatively re-send every staged chunk inline
    // over RPC (the cooldown routes subsequent traffic there anyway).
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      std::size_t off = 0;
      for (auto& ref : wire.parts[i]) {
        if (ref.kind == DataRef::Kind::staged) {
          ref.kind = DataRef::Kind::inline_;
          ref.data = payloads[i].substr(off, ref.len);
          rpc_fallback_bytes_.fetch_add(ref.len, std::memory_order_relaxed);
          counters_->inc(l_dpu_rpc_fallback_bytes, ref.len);
        }
        off += ref.len;
      }
    }
  }

  // Ship the transaction (metadata + refs) and wait for the host commit.
  // The RPC span's context travels in the fragment headers, so the host
  // backend parents its commit span under this one.
  BufferList request;
  encode(ProxyOp::submit_txn, request);
  wire.encode(request);
  auto rpc_span = env_.tracer().span("dpu.rpc.submit_txn", "dpu." + dpu_.name(),
                                     write_span.context(), env_.now());
  auto response = timed_call(std::move(request), rpc_span.context());
  rpc_span.end(env_.now());

  Status st;
  TxnReply reply;
  if (!response.ok()) {
    st = response.status();
  } else {
    BufferList::Cursor cur(*response);
    if (!reply.decode(cur)) {
      st = Status(Errc::corrupt, "bad txn reply");
    } else {
      host_fullness_permille_.store(reply.fullness_permille,
                                    std::memory_order_relaxed);
      if (reply.result != 0)
        st = Status(static_cast<Errc>(-reply.result), "host backend error");
    }
  }

  // Table 3 tracks client *write* requests; metadata-only transactions
  // (collection creates etc.) are not part of the taxonomy. The DMA phase
  // splits into transfer time (job setup + bytes/bandwidth, the paper's
  // "actual data transfer time") and DMA-wait (slot acquisition + the
  // serialization remainder of the phase's wall time).
  if (total_bytes > 0) {
    const auto& dma_cfg = dpu_.dma().config();
    std::uint64_t dma_transfer = 0;
    if (first_submit >= 0) {
      dma_transfer = static_cast<std::uint64_t>(dma_cfg.setup_latency) +
                     static_cast<std::uint64_t>(sim::transfer_time(
                         dma_bytes_this_request, dma_cfg.bw_bytes_per_sec));
    }
    std::uint64_t phase_wall = 0;
    if (first_submit >= 0 && ctx->last_complete.load() > first_submit)
      phase_wall =
          static_cast<std::uint64_t>(ctx->last_complete.load() - first_submit);
    const std::uint64_t serialization =
        phase_wall > dma_transfer ? phase_wall - dma_transfer : 0;

    counters_->inc(l_dpu_writes);
    counters_->rec(l_dpu_write_lat, static_cast<std::uint64_t>(env_.now() - t_start));
    counters_->rec(l_dpu_dma_wait,
                   static_cast<std::uint64_t>(dma_wait) + serialization);

    const dbg::LockGuard lk(bd_mutex_);
    bd_.count++;
    bd_.total_ns += static_cast<std::uint64_t>(env_.now() - t_start);
    bd_.dma_ns += dma_transfer;
    bd_.dma_wait_ns += static_cast<std::uint64_t>(dma_wait) + serialization;
    bd_.host_write_ns += static_cast<std::uint64_t>(std::max<std::int64_t>(
        reply.host_write_ns, 0));
  }

  write_span.end(env_.now());
  if (req.on_commit) req.on_commit(st);
}

// ---- control plane / reads ---------------------------------------------------------

Result<BufferList> ProxyObjectStore::timed_call(BufferList request,
                                                const trace::TraceContext& ctx) {
  auto r = rpc_.call(std::move(request), cfg_.rpc_timeout, ctx);
  if (!r.ok() && r.status().code() == Errc::timed_out)
    counters_->inc(l_dpu_rpc_timeout);
  return r;
}

Result<BufferList> ProxyObjectStore::control_call(ProxyOp op, const BufferList& body) {
  BufferList request;
  encode(op, request);
  request.append(body);
  auto r = timed_call(std::move(request));
  if (!r.ok()) return r.status();
  BufferList::Cursor cur(*r);
  std::int32_t result = 0;
  if (!decode(result, cur)) return Status(Errc::corrupt, "bad control reply");
  if (result != 0) return Status(static_cast<Errc>(-result), "host error");
  BufferList rest;
  (void)cur.get_buffer_list(cur.remaining(), rest);
  return rest;
}

Result<BufferList> ProxyObjectStore::read(const os::coll_t& c, const os::ghobject_t& o,
                                          std::uint64_t off, std::uint64_t len) {
  ReadRequest rr;
  rr.cid = c;
  rr.oid = o;
  rr.off = off;
  rr.len = len;
  rr.inline_max = fallback_.dma_enabled() ? cfg_.inline_read_max
                                          : std::numeric_limits<std::uint64_t>::max();
  // Opportunistically offer slots for the bulk path (host-side staging).
  std::vector<int> held;
  if (fallback_.dma_enabled()) {
    for (int i = 0; i < 8; ++i) {
      auto s = slots_.try_acquire();
      if (!s) break;
      held.push_back(*s);
      rr.slots.push_back(static_cast<std::uint32_t>(*s));
    }
  }
  auto release_all = [&] {
    for (const int s : held) slots_.release(s);
    held.clear();
  };

  BufferList body;
  rr.encode(body);
  BufferList request;
  encode(ProxyOp::read_obj, request);
  request.claim_append(body);
  auto response = timed_call(std::move(request));
  if (!response.ok()) {
    release_all();
    return response.status();
  }
  ReadReply reply;
  BufferList::Cursor cur(*response);
  if (!reply.decode(cur)) {
    release_all();
    return Status(Errc::corrupt, "bad read reply");
  }
  if (reply.result != 0) {
    release_all();
    return Status(static_cast<Errc>(-reply.result), "host read error");
  }
  if (reply.inline_data) {
    release_all();
    return reply.data;
  }

  // DMA the filled slots back (host -> DPU), in order.
  BufferList out;
  for (const auto& ref : reply.refs) {
    if (ref.kind == DataRef::Kind::inline_) {
      out.append(ref.data);
      continue;
    }
    dbg::Mutex m{"proxy.read_wait"};
    dbg::CondVar cv(env_.keeper(), "proxy.read_cv");
    bool done = false;
    Status st;
    doca::Buf src = slots_.host_buf(static_cast<int>(ref.index), ref.len);
    doca::Buf dst = slots_.dpu_buf(static_cast<int>(ref.index), ref.len);
    const Status submitted =
        dpu_.dma().submit(src, dst, doca::DmaDir::host_to_dpu, [&](Status s) {
          const dbg::LockGuard lk(m);
          st = s;
          done = true;
          cv.notify_all();
        });
    if (!submitted.ok()) {
      release_all();
      return submitted;
    }
    {
      dbg::UniqueLock lk(m);
      cv.wait(lk, [&] { return done; });
    }
    if (!st.ok()) {
      fallback_.on_dma_failure(env_.now());
      release_all();
      return st;
    }
    out.append(dst.data(), ref.len);
    dpu_.cpu().charge(static_cast<sim::Duration>(cfg_.stage_copy_ns_per_byte *
                                                 static_cast<double>(ref.len)));
  }
  release_all();
  return out;
}

Result<os::ObjectInfo> ProxyObjectStore::stat(const os::coll_t& c,
                                              const os::ghobject_t& o) {
  BufferList body;
  c.encode(body);
  o.encode(body);
  auto r = control_call(ProxyOp::stat, body);
  if (!r.ok()) return r.status();
  os::ObjectInfo info;
  BufferList::Cursor cur(*r);
  if (!info.decode(cur)) return Status(Errc::corrupt, "bad stat reply");
  return info;
}

bool ProxyObjectStore::exists(const os::coll_t& c, const os::ghobject_t& o) {
  BufferList body;
  c.encode(body);
  o.encode(body);
  auto r = control_call(ProxyOp::exists, body);
  if (!r.ok()) return false;
  bool e = false;
  BufferList::Cursor cur(*r);
  return decode(e, cur) && e;
}

Result<std::map<std::string, BufferList>> ProxyObjectStore::omap_get(
    const os::coll_t& c, const os::ghobject_t& o) {
  BufferList body;
  c.encode(body);
  o.encode(body);
  auto r = control_call(ProxyOp::omap_get, body);
  if (!r.ok()) return r.status();
  std::map<std::string, BufferList> m;
  BufferList::Cursor cur(*r);
  if (!decode(m, cur)) return Status(Errc::corrupt, "bad omap reply");
  return m;
}

Result<std::vector<os::ghobject_t>> ProxyObjectStore::list_objects(const os::coll_t& c) {
  BufferList body;
  c.encode(body);
  auto r = control_call(ProxyOp::list_objects, body);
  if (!r.ok()) return r.status();
  std::vector<os::ghobject_t> v;
  BufferList::Cursor cur(*r);
  if (!decode(v, cur)) return Status(Errc::corrupt, "bad list reply");
  return v;
}

std::vector<os::coll_t> ProxyObjectStore::list_collections() {
  auto r = control_call(ProxyOp::list_collections, {});
  if (!r.ok()) return {};
  std::vector<os::coll_t> v;
  BufferList::Cursor cur(*r);
  if (!decode(v, cur)) return {};
  return v;
}

bool ProxyObjectStore::collection_exists(const os::coll_t& c) {
  BufferList body;
  c.encode(body);
  auto r = control_call(ProxyOp::coll_exists, body);
  if (!r.ok()) return false;
  bool e = false;
  BufferList::Cursor cur(*r);
  return decode(e, cur) && e;
}

BreakdownSnapshot ProxyObjectStore::breakdown() const {
  const dbg::LockGuard lk(bd_mutex_);
  return bd_;
}

void ProxyObjectStore::reset_breakdown() {
  const dbg::LockGuard lk(bd_mutex_);
  bd_ = BreakdownSnapshot{};
}

}  // namespace doceph::proxy
