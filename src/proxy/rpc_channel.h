#pragma once

#include <atomic>
#include <functional>
#include <map>

#include "common/trace.h"
#include "dbg/mutex.h"

#include "doca/comm_channel.h"
#include "sim/env.h"

namespace doceph::proxy {

/// Request/response RPC over a size-capped CommChannel: payloads larger than
/// one channel message are fragmented and reassembled transparently. One
/// side acts as client (call/call_async/notify), the other as server
/// (set_request_handler); both roles may be mixed.
class RpcChannel {
 public:
  RpcChannel(sim::Env& env, doca::CommChannelRef channel);

  /// Install the inbound pump; messages are processed in `center`'s thread.
  /// Must be called before any traffic arrives.
  void start(event::EventCenter& center);

  /// Detach from the channel (drops its recv handler). Must be called
  /// before the EventCenter passed to start() is destroyed.
  void detach();

  // ---- client role -----------------------------------------------------------
  using ResponseCb = std::function<void(Result<BufferList>)>;
  /// Fire a request; `cb` runs in the channel's EventCenter thread when the
  /// response arrives (or with a status on channel failure). Returns the
  /// request id, usable with cancel(). `ctx` rides every fragment's header
  /// and reaches the server's RequestHandler (distributed tracing).
  std::uint64_t call_async(BufferList request, ResponseCb cb,
                           const trace::TraceContext& ctx = {});
  /// Drop the pending callback for `id`; a late response is then ignored.
  /// Returns false if the response already claimed the callback (it has run
  /// or is about to).
  bool cancel(std::uint64_t id);
  /// Blocking call (sim time) with timeout. On timeout the pending slot is
  /// reclaimed — a late response cannot touch freed state.
  Result<BufferList> call(BufferList request, sim::Duration timeout,
                          const trace::TraceContext& ctx = {});
  /// One-way request (no response expected).
  Status notify(BufferList request, const trace::TraceContext& ctx = {});

  /// Blocking calls that ended in timed_out (diagnostics).
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_.load(); }

  // ---- server role -----------------------------------------------------------
  /// `respond` may be invoked from any thread, exactly once (skip for oneway).
  /// The TraceContext is the caller's (zero when the request is untraced).
  using Responder = std::function<void(BufferList)>;
  using RequestHandler = std::function<void(BufferList, bool oneway, Responder,
                                            const trace::TraceContext&)>;
  void set_request_handler(RequestHandler h) { handler_ = std::move(h); }

  /// Total payload bytes moved through this endpoint (diagnostics).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_.load(); }

 private:
  enum Flags : std::uint8_t { kResponse = 1, kOneway = 2, kLastPart = 4 };

  Status send_fragmented(std::uint64_t req_id, std::uint8_t flags, BufferList payload,
                         const trace::TraceContext& ctx = {});
  void on_message(BufferList msg);

  sim::Env& env_;
  doca::CommChannelRef ch_;
  RequestHandler handler_;

  dbg::Mutex mutex_{"proxy.rpc"};
  std::atomic<std::uint64_t> next_id_{1};
  std::map<std::uint64_t, ResponseCb> pending_ DOCEPH_GUARDED_BY(mutex_);
  // Reassembly buffers keyed by (req_id, is_response).
  std::map<std::pair<std::uint64_t, bool>, BufferList> partial_
      DOCEPH_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace doceph::proxy
