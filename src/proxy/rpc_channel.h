#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/trace.h"
#include "dbg/mutex.h"

#include "doca/comm_channel.h"
#include "sim/env.h"

namespace doceph::proxy {

/// Doorbell coalescing for RpcChannel: frames queue and flush as one
/// multi-frame comch message, amortizing the per-message driver/doorbell
/// overhead (paid on BOTH endpoints) across the batch. Adaptive: a frame
/// enqueued while no other op is in flight flushes immediately (no added
/// latency when idle); under load frames coalesce until the batch fills
/// (max_frames / message-size cap) or the flush_delay deadline expires.
struct RpcBatchConfig {
  bool enabled = false;
  int max_frames = 16;             ///< doorbell after this many frames
  sim::Duration flush_delay = 20'000;  ///< deadline doorbell (virtual ns)
};

/// Request/response RPC over a size-capped CommChannel: payloads larger than
/// one channel message are fragmented and reassembled transparently. One
/// side acts as client (call/call_async/notify), the other as server
/// (set_request_handler); both roles may be mixed.
///
/// Wire format: every comch message is a container of one or more
/// [u32 frame_len][frame] entries; a frame is [u64 req_id][u8 flags]
/// [TraceContext][payload chunk]. Without batching each message carries
/// exactly one frame; with batching the container is the batch.
class RpcChannel {
 public:
  RpcChannel(sim::Env& env, doca::CommChannelRef channel);

  /// Install the inbound pump; messages are processed in `center`'s thread.
  /// Must be called before any traffic arrives. The center also hosts the
  /// batch deadline timer when batching is enabled.
  void start(event::EventCenter& center);

  /// Configure doorbell coalescing. Call before start() / any traffic —
  /// not a thread-safe hot swap.
  void set_batch_config(RpcBatchConfig cfg) { batch_cfg_ = cfg; }
  [[nodiscard]] const RpcBatchConfig& batch_config() const noexcept {
    return batch_cfg_;
  }

  /// Detach from the channel (drops its recv handler). Must be called
  /// before the EventCenter passed to start() is destroyed.
  void detach();

  // ---- client role -----------------------------------------------------------
  using ResponseCb = std::function<void(Result<BufferList>)>;
  /// Fire a request; `cb` runs in the channel's EventCenter thread when the
  /// response arrives (or with a status on channel failure). Returns the
  /// request id, usable with cancel(). `ctx` rides every fragment's header
  /// and reaches the server's RequestHandler (distributed tracing).
  std::uint64_t call_async(BufferList request, ResponseCb cb,
                           const trace::TraceContext& ctx = {});
  /// Drop the pending callback for `id`; a late response is then ignored.
  /// Returns false if the response already claimed the callback (it has run
  /// or is about to).
  bool cancel(std::uint64_t id);
  /// Blocking call (sim time) with timeout. On timeout the pending slot is
  /// reclaimed — a late response cannot touch freed state.
  Result<BufferList> call(BufferList request, sim::Duration timeout,
                          const trace::TraceContext& ctx = {});
  /// One-way request (no response expected).
  Status notify(BufferList request, const trace::TraceContext& ctx = {});

  /// Blocking calls that ended in timed_out (diagnostics).
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_.load(); }

  // ---- server role -----------------------------------------------------------
  /// `respond` may be invoked from any thread, exactly once (skip for oneway).
  /// The TraceContext is the caller's (zero when the request is untraced).
  using Responder = std::function<void(BufferList)>;
  using RequestHandler = std::function<void(BufferList, bool oneway, Responder,
                                            const trace::TraceContext&)>;
  void set_request_handler(RequestHandler h) { handler_ = std::move(h); }

  /// Total payload bytes moved through this endpoint (diagnostics).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_.load(); }

  // ---- batching diagnostics --------------------------------------------------
  /// Comch messages sent (each is one doorbell on each endpoint).
  [[nodiscard]] std::uint64_t batch_flushes() const noexcept { return flushes_.load(); }
  /// Frames sent; frames/flushes > 1 is the coalescing win.
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_.load(); }
  /// Flushes deferred by a fired "dpu.batch_flush_stall" fault.
  [[nodiscard]] std::uint64_t batch_stalls() const noexcept { return stalls_.load(); }

 private:
  enum Flags : std::uint8_t { kResponse = 1, kOneway = 2, kLastPart = 4 };

  Status send_fragmented(std::uint64_t req_id, std::uint8_t flags, BufferList payload,
                         const trace::TraceContext& ctx = {});
  /// Queue one framed entry; packs on the size/idle doorbells, else arms
  /// the deadline timer. Nothing touches the channel here — callers run
  /// drain_sends() after dropping mutex_.
  void enqueue_frame_locked(BufferList frame, bool is_request,
                            std::uint64_t req_id) DOCEPH_REQUIRES(mutex_);
  /// Pack the pending batch into outbound messages on sendq_ (splitting at
  /// the comch message cap). Does NOT send: CommChannel::send charges
  /// simulated CPU (a virtual-clock sleep), and sleeping while holding
  /// mutex_ would stall every thread blocked on it — and with them the
  /// virtual clock itself (TimeKeeper discipline).
  void flush_locked() DOCEPH_REQUIRES(mutex_);
  /// Send queued messages FIFO. One thread drains at a time (sending_), so
  /// wire order matches pack order; the channel is only ever touched with
  /// mutex_ dropped. Failed request frames get their callbacks run with the
  /// send error.
  void drain_sends();
  void arm_timer_locked(sim::Duration delay) DOCEPH_REQUIRES(mutex_);
  void on_message(BufferList msg);
  void on_frame(BufferList frame);

  sim::Env& env_;
  doca::CommChannelRef ch_;
  RequestHandler handler_;
  event::EventCenter* center_ = nullptr;
  RpcBatchConfig batch_cfg_;

  dbg::Mutex mutex_{"proxy.rpc"};
  std::atomic<std::uint64_t> next_id_{1};
  std::map<std::uint64_t, ResponseCb> pending_ DOCEPH_GUARDED_BY(mutex_);
  // Reassembly buffers keyed by (req_id, is_response).
  std::map<std::pair<std::uint64_t, bool>, BufferList> partial_
      DOCEPH_GUARDED_BY(mutex_);

  // Pending doorbell batch: framed [u32 len][frame] entries, per-entry
  // request ids (0 for responses/oneways; a send failure fails the ids
  // riding the failed message), and the single deadline-timer arm flag (a
  // stale timer firing after an early flush just flushes newer frames
  // early — never starves).
  std::vector<BufferList> batch_entries_ DOCEPH_GUARDED_BY(mutex_);
  std::size_t batch_bytes_ DOCEPH_GUARDED_BY(mutex_) = 0;
  std::vector<std::uint64_t> batch_entry_ids_ DOCEPH_GUARDED_BY(mutex_);
  bool timer_armed_ DOCEPH_GUARDED_BY(mutex_) = false;
  event::EventCenter::TimerId timer_id_ DOCEPH_GUARDED_BY(mutex_) = 0;

  // Outbound messages packed by flush_locked, drained FIFO by the single
  // active drain_sends() caller.
  struct OutMsg {
    BufferList msg;
    std::vector<std::uint64_t> req_ids;  ///< request frames riding it
  };
  std::deque<OutMsg> sendq_ DOCEPH_GUARDED_BY(mutex_);
  bool sending_ DOCEPH_GUARDED_BY(mutex_) = false;

  // Ops in flight through this endpoint (client: request sent, response
  // not yet claimed; server: request dispatched, response not yet sent) —
  // the idle detector for the adaptive doorbell.
  std::atomic<int> inflight_ops_{0};
  // Nonzero while on_message is dispatching the frames of an incoming
  // comch message. Frames are dispatched one at a time, so a responder's
  // inflight count never exceeds 1 and the idle doorbell alone would ring
  // per response; this is the busy signal that lets inline responses to a
  // multi-frame message coalesce (flushed at end of dispatch).
  std::atomic<int> dispatching_{0};

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

}  // namespace doceph::proxy
