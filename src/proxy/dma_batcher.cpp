#include "proxy/dma_batcher.h"

#include "common/logger.h"
#include "proxy/proxy_object_store.h"
#include "proxy/proxy_protocol.h"

namespace doceph::proxy {

struct DmaBatcher::BatchState {
  explicit BatchState(trace::Span sp) : span(std::move(sp)) {}
  std::vector<Entry> entries;
  std::vector<Status> statuses;
  std::size_t remaining = 0;
  int slot = -1;
  sim::Time submit = 0;
  trace::Span span;
};

DmaBatcher::DmaBatcher(sim::Env& env, dpu::DpuDevice& dpu, SlotPool& slots,
                       RpcChannel& rpc, FallbackManager& fallback,
                       perf::PerfCountersRef counters, DmaBatchConfig cfg,
                       double stage_copy_ns_per_byte, std::string name)
    : env_(env),
      dpu_(dpu),
      slots_(slots),
      rpc_(rpc),
      fallback_(fallback),
      counters_(std::move(counters)),
      cfg_(cfg),
      stage_copy_ns_per_byte_(stage_copy_ns_per_byte),
      name_(std::move(name)),
      cv_(env.keeper(), "proxy.dma_batcher_cv") {}

DmaBatcher::~DmaBatcher() { stop(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

void DmaBatcher::start() {
  if (started_) return;
  {
    const dbg::LockGuard lk(m_);
    stopping_ = false;
  }
  thread_ = sim::Thread(env_.keeper(), env_.stats(), "dpu-dma-batch",
                        &dpu_.cpu(), [this] { loop(); }, /*daemon=*/true);
  started_ = true;
}

void DmaBatcher::stop() {
  if (!started_) return;
  {
    const dbg::LockGuard lk(m_);
    stopping_ = true;
    cv_.notify_all();
  }
  thread_.join();
  started_ = false;
}

bool DmaBatcher::enqueue(BufferList& seg, std::uint64_t token,
                         std::uint32_t seg_index,
                         const trace::TraceContext& ctx, DoneCb done) {
  const std::size_t len = seg.length();
  if (len == 0 || len > slots_.slot_size()) return false;
  const dbg::LockGuard lk(m_);
  if (stopping_) return false;
  Entry e;
  e.seg = std::move(seg);
  e.token = token;
  e.seg_index = seg_index;
  e.trace = ctx;
  e.done = std::move(done);
  e.enqueued = env_.now();
  q_bytes_ += len;
  q_.push_back(std::move(e));
  cv_.notify_all();
  return true;
}

void DmaBatcher::loop() {
  while (true) {
    std::vector<Entry> batch;
    {
      dbg::UniqueLock lk(m_);
      cv_.wait(lk, [&] {
        m_.assert_held();  // predicate runs as a separate function
        return stopping_ || !q_.empty();
      });
      if (q_.empty()) return;  // stopping with nothing left to drain
      if (!stopping_) {
        // Deadline coalescing: hold the oldest segment at most flush_delay,
        // flushing early once the batch fills a slot or max_segments.
        const sim::Time deadline = q_.front().enqueued + cfg_.flush_delay;
        (void)cv_.wait_until(lk, deadline, [&] {
          m_.assert_held();
          return stopping_ ||
                 static_cast<int>(q_.size()) >= cfg_.max_segments ||
                 q_bytes_ >= slots_.slot_size();
        });
      }
      // Greedy prefix that shares one slot (order-preserving).
      std::size_t bytes = 0;
      while (!q_.empty() &&
             static_cast<int>(batch.size()) < cfg_.max_segments) {
        const std::size_t n = q_.front().seg.length();
        if (!batch.empty() && bytes + n > slots_.slot_size()) break;
        bytes += n;
        q_bytes_ -= n;
        batch.push_back(std::move(q_.front()));
        q_.pop_front();
      }
    }
    if (batch.empty()) continue;

    // Chaos hook: a fired stall defers this flush by the fault's delay
    // before proceeding (segments keep their completion guarantees, just
    // later — the drill asserts the pipeline survives the hiccup).
    const fault::FaultHit stall =
        env_.faults().hit("dpu.batch_flush_stall", env_.now(), name_);
    if (stall.fired) {
      counters_->inc(l_dpu_batch_stalls);
      const sim::Time until =
          env_.now() + (stall.delay_ns > 0 ? stall.delay_ns : cfg_.flush_delay);
      dbg::UniqueLock lk(m_);
      (void)cv_.wait_until(lk, until, [&] {
        m_.assert_held();
        return stopping_;
      });
    }
    flush(std::move(batch));
  }
}

void DmaBatcher::flush(std::vector<Entry> batch) {
  // One slot hosts the whole batch; blocked time counts toward each
  // member's batching wait (enqueue -> submit).
  const int slot = slots_.acquire();

  std::size_t total = 0;
  for (auto& e : batch) total += e.seg.length();

  // The batch span parents every member's doca.dma_job span; the first
  // sampled member donates the parent context (members of an unsampled-only
  // batch record nothing, as usual).
  trace::TraceContext parent;
  for (const auto& e : batch) {
    if (e.trace.sampled()) {
      parent = e.trace;
      break;
    }
  }
  const sim::Time first_enqueue = batch.front().enqueued;
  auto bs = std::make_shared<BatchState>(
      env_.tracer().span("dpu.batch", "dpu." + name_, parent, first_enqueue,
                         batch.size()));

  // Stage every payload at its running offset in the slot and describe the
  // layout as scatter-gather extents (one engine pass for the lot).
  const doca::Buf src_base = slots_.dpu_buf(slot, total);
  const doca::Buf dst_base = slots_.host_buf(slot, total);
  std::vector<doca::DmaExtent> extents;
  extents.reserve(batch.size());
  std::size_t off = 0;
  for (auto& e : batch) {
    const std::size_t n = e.seg.length();
    e.off_in_slot = static_cast<std::uint32_t>(off);
    const doca::Buf src{src_base.mmap, src_base.off + off, n};
    const doca::Buf dst{dst_base.mmap, dst_base.off + off, n};
    e.seg.copy_out(0, n, src.data());
    dpu_.cpu().charge(static_cast<sim::Duration>(stage_copy_ns_per_byte_ *
                                                 static_cast<double>(n)));
    extents.push_back(doca::DmaExtent{src, dst});
    off += n;
  }

  counters_->inc(l_dpu_batch_flushes);
  counters_->inc(l_dpu_batch_segments, batch.size());
  counters_->inc(l_dpu_batch_bytes, total);
  counters_->rec(l_dpu_batch_fill, batch.size());

  bs->submit = env_.now();
  bs->statuses.assign(batch.size(), Status::OK());
  bs->remaining = batch.size();
  bs->slot = slot;
  bs->entries = std::move(batch);

  const Status submitted = dpu_.dma().submit_sg(
      extents, doca::DmaDir::dpu_to_host,
      [this, bs](std::size_t index, Status st) {
        // Scheduler thread; per-pass fan-out arrives serially.
        bs->statuses[index] = std::move(st);
        if (--bs->remaining == 0) finish_batch(bs);
      },
      bs->span.context());
  if (!submitted.ok()) {
    // The whole batch never reached the engine; members fall back to the
    // RPC path via their owners' any_failed machinery.
    fallback_.on_dma_failure(env_.now());
    slots_.release(slot);
    bs->span.end(env_.now());
    const sim::Time now = env_.now();
    for (auto& e : bs->entries) e.done(submitted, bs->submit, now);
  }
}

void DmaBatcher::finish_batch(const std::shared_ptr<BatchState>& bs) {
  // Per-extent failures resolve their members now; survivors ride one
  // stage_batch RPC and resolve on its ack (the host acks the batch as a
  // unit, so an ack error fails every surviving member).
  const sim::Time now = env_.now();
  StageBatch msg;
  msg.slot = static_cast<std::uint32_t>(bs->slot);
  std::vector<std::size_t> ok_members;
  for (std::size_t i = 0; i < bs->entries.size(); ++i) {
    if (!bs->statuses[i].ok()) {
      fallback_.on_dma_failure(now);
      bs->entries[i].done(bs->statuses[i], bs->submit, now);
      continue;
    }
    const Entry& e = bs->entries[i];
    msg.entries.push_back(StageBatchEntry{
        .token = e.token,
        .seg_index = e.seg_index,
        .off = e.off_in_slot,
        .len = static_cast<std::uint32_t>(e.seg.length())});
    ok_members.push_back(i);
  }
  if (ok_members.empty()) {
    slots_.release(bs->slot);
    bs->span.end(now);
    return;
  }

  BufferList request;
  encode(ProxyOp::stage_batch, request);
  msg.encode(request);
  rpc_.call_async(
      std::move(request),
      [this, bs, ok_members = std::move(ok_members)](Result<BufferList> r) {
        Status st = r.ok() ? Status::OK() : r.status();
        if (r.ok()) {
          BufferList::Cursor cur(*r);
          std::int32_t res = 0;
          if (!decode(res, cur))
            st = Status(Errc::corrupt, "bad stage_batch ack");
          else if (res != 0)
            st = Status(static_cast<Errc>(-res), "stage_batch host error");
        }
        slots_.release(bs->slot);
        const sim::Time done_at = env_.now();
        bs->span.end(done_at);
        for (const std::size_t i : ok_members)
          bs->entries[i].done(st, bs->submit, done_at);
      },
      bs->span.context());
}

}  // namespace doceph::proxy
