#pragma once

#include <deque>
#include <optional>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "doca/mmap.h"
#include "sim/env.h"
#include "sim/time_keeper.h"

namespace doceph::proxy {

/// The paired DMA buffers of Fig. 4: slot i is a staging buffer in DPU
/// memory plus the matching pre-exported write buffer in host memory (the
/// MR cache — regions negotiated once and reused, paper §3.3). acquire()
/// blocks when all slots are busy; that blocked time is the "DMA-wait"
/// component of Table 3.
class SlotPool {
 public:
  SlotPool(sim::Env& env, int slots, std::size_t slot_size);

  /// Block until a slot is free; returns its index.
  int acquire();
  /// Bounded variant: give up after `timeout` (nullopt on timeout). The
  /// proxy's backpressure path uses this so a wedged DMA pipeline surfaces
  /// as a throttled txn instead of a worker blocked forever.
  std::optional<int> acquire_for(sim::Duration timeout);
  /// Non-blocking variant.
  std::optional<int> try_acquire();
  void release(int slot);

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t slot_size() const noexcept { return slot_size_; }

  [[nodiscard]] doca::Buf dpu_buf(int slot, std::size_t len) const {
    return {dpu_mmap_, static_cast<std::size_t>(slot) * slot_size_, len};
  }
  [[nodiscard]] doca::Buf host_buf(int slot, std::size_t len) const {
    return {host_mmap_, static_cast<std::size_t>(slot) * slot_size_, len};
  }
  [[nodiscard]] doca::MmapRef host_mmap() const noexcept { return host_mmap_; }

  /// Cumulative simulated time spent blocked in acquire() (DMA-wait).
  [[nodiscard]] sim::Duration total_wait_ns() const;

 private:
  sim::Env& env_;
  int capacity_;
  std::size_t slot_size_;
  doca::MmapRef dpu_mmap_;
  doca::MmapRef host_mmap_;

  mutable dbg::Mutex mutex_{"proxy.slot_pool"};
  dbg::CondVar cv_;
  std::deque<int> free_ DOCEPH_GUARDED_BY(mutex_);
  sim::Duration total_wait_ DOCEPH_GUARDED_BY(mutex_) = 0;
};

}  // namespace doceph::proxy
