#pragma once

#include <atomic>
#include <cstdint>

#include "dbg/mutex.h"
#include "sim/time.h"

namespace doceph::proxy {

/// The paper's adaptive fallback (§4): after a DMA error the data path
/// reverts to socket-style RPC for a cooldown period, then a single probe
/// transfer decides whether DMA can be re-enabled. Thread-safe; the write
/// workers consult it per segment.
class FallbackManager {
 public:
  explicit FallbackManager(sim::Duration cooldown) : cooldown_(cooldown) {}

  enum class Path {
    dma,    ///< normal fast path
    probe,  ///< cooldown expired: this transfer is the test DMA
    rpc,    ///< DMA disabled: route through the control channel
  };

  /// Pick the path for the next segment.
  Path choose(sim::Time now) {
    const dbg::LockGuard lk(m_);
    if (!disabled_) return Path::dma;
    if (now >= expiry_ && !probe_outstanding_) {
      probe_outstanding_ = true;
      ++probes_;
      return Path::probe;
    }
    return Path::rpc;
  }

  void on_dma_success() {
    const dbg::LockGuard lk(m_);
    if (disabled_) ++recoveries_;
    disabled_ = false;
    probe_outstanding_ = false;
  }

  void on_dma_failure(sim::Time now) {
    const dbg::LockGuard lk(m_);
    disabled_ = true;
    expiry_ = now + cooldown_;
    probe_outstanding_ = false;
    ++failures_;
  }

  [[nodiscard]] bool dma_enabled() const {
    const dbg::LockGuard lk(m_);
    return !disabled_;
  }
  [[nodiscard]] std::uint64_t failures() const {
    const dbg::LockGuard lk(m_);
    return failures_;
  }
  /// Probe transfers handed out by choose() (each cooldown expiry yields one).
  [[nodiscard]] std::uint64_t probes() const {
    const dbg::LockGuard lk(m_);
    return probes_;
  }
  /// disabled -> enabled transitions (successful probes).
  [[nodiscard]] std::uint64_t recoveries() const {
    const dbg::LockGuard lk(m_);
    return recoveries_;
  }

 private:
  mutable dbg::Mutex m_{"proxy.fallback"};
  sim::Duration cooldown_;
  bool disabled_ DOCEPH_GUARDED_BY(m_) = false;
  bool probe_outstanding_ DOCEPH_GUARDED_BY(m_) = false;
  sim::Time expiry_ DOCEPH_GUARDED_BY(m_) = 0;
  std::uint64_t failures_ DOCEPH_GUARDED_BY(m_) = 0;
  std::uint64_t probes_ DOCEPH_GUARDED_BY(m_) = 0;
  std::uint64_t recoveries_ DOCEPH_GUARDED_BY(m_) = 0;
};

}  // namespace doceph::proxy
