#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/perf_counters.h"
#include "common/trace.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "dpu/dpu_device.h"
#include "proxy/fallback.h"
#include "proxy/rpc_channel.h"
#include "proxy/slot_pool.h"
#include "sim/thread.h"

namespace doceph::proxy {

/// Knobs for the DPU-side segment coalescer. Disabled by default (unit
/// tests exercise the legacy one-segment-per-slot path); cluster profiles
/// enable it so the bench paths batch.
struct DmaBatchConfig {
  bool enabled = false;
  int max_segments = 16;  ///< flush once this many segments queue
  /// Deadline doorbell: a queued segment never waits longer than this
  /// (virtual ns) for companions before its batch flushes.
  sim::Duration flush_delay = 150'000;
};

/// Coalesces small write segments from concurrent requests into one
/// staging slot, one scatter-gather DMA pass, and one stage_batch RPC —
/// amortizing the per-job DMA setup latency and the per-message comch
/// doorbell across the batch (the small-IO analogue of the paper's
/// segmentation pipeline, which only helps large writes). Segments larger
/// than a slot, fallback/probe traffic, and the pipelining/mr_cache
/// ablations stay on the legacy path.
class DmaBatcher {
 public:
  /// Per-segment completion: `submit` is when the batch's DMA was issued
  /// (enqueue -> submit is the segment's batching wait), `complete` when
  /// the host acked the staged copy (or the failure time).
  using DoneCb =
      std::function<void(Status, sim::Time submit, sim::Time complete)>;

  DmaBatcher(sim::Env& env, dpu::DpuDevice& dpu, SlotPool& slots,
             RpcChannel& rpc, FallbackManager& fallback,
             perf::PerfCountersRef counters, DmaBatchConfig cfg,
             double stage_copy_ns_per_byte, std::string name);
  ~DmaBatcher();

  DmaBatcher(const DmaBatcher&) = delete;
  DmaBatcher& operator=(const DmaBatcher&) = delete;

  void start();
  /// Drains queued segments (flushing them without further coalescing),
  /// then joins the batcher thread. Call after the write workers have
  /// drained and before the RPC channel detaches.
  void stop();

  /// Queue one segment of request `token`. On accept, `seg` is consumed
  /// and `done` will fire exactly once. Returns false — leaving `seg`
  /// intact — when batching is off, the batcher is stopped, or the segment
  /// cannot share a slot; the caller then takes the legacy path.
  bool enqueue(BufferList& seg, std::uint64_t token, std::uint32_t seg_index,
               const trace::TraceContext& ctx, DoneCb done);

 private:
  struct Entry {
    BufferList seg;
    std::uint64_t token = 0;
    std::uint32_t seg_index = 0;
    std::uint32_t off_in_slot = 0;
    trace::TraceContext trace;
    DoneCb done;
    sim::Time enqueued = 0;
  };
  /// Shared fan-in state of one in-flight batch: per-extent statuses
  /// collected from the scatter-gather job, then the single stage_batch
  /// ack resolves every member.
  struct BatchState;

  void loop();
  void flush(std::vector<Entry> batch);
  void finish_batch(const std::shared_ptr<BatchState>& bs);

  sim::Env& env_;
  dpu::DpuDevice& dpu_;
  SlotPool& slots_;
  RpcChannel& rpc_;
  FallbackManager& fallback_;
  perf::PerfCountersRef counters_;
  DmaBatchConfig cfg_;
  double stage_copy_ns_per_byte_;
  std::string name_;

  dbg::Mutex m_{"proxy.dma_batcher"};
  dbg::CondVar cv_;
  std::deque<Entry> q_ DOCEPH_GUARDED_BY(m_);
  std::size_t q_bytes_ DOCEPH_GUARDED_BY(m_) = 0;
  bool stopping_ DOCEPH_GUARDED_BY(m_) = true;

  sim::Thread thread_;
  bool started_ = false;  // lifecycle thread only
};

}  // namespace doceph::proxy
