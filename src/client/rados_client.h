#pragma once

#include <atomic>
#include <map>
#include <memory>

#include "common/admin_socket.h"
#include "common/perf_counters.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "mon/mon_client.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"
#include "os/types.h"
#include "osd/op_tracker.h"

namespace doceph::client {

/// Metric indices of the per-client "client" PerfCounters block.
enum {
  l_client_first = 92000,
  l_client_op,        ///< ops completed (any status)
  l_client_op_retry,  ///< resends (busy bounce, retarget, no-primary wait)
  l_client_op_lat,    ///< client-observed end-to-end latency, ns histogram
  l_client_last,
};

/// Completion handle for asynchronous object operations (librados
/// AioCompletion). wait() blocks the calling sim thread.
class AioCompletion {
 public:
  explicit AioCompletion(sim::TimeKeeper& tk) : cv_(tk, "client.completion_cv") {}

  /// Block until the operation completed; returns its status.
  Status wait();

  [[nodiscard]] bool complete() const;
  [[nodiscard]] Status status() const;
  [[nodiscard]] std::uint64_t object_version() const { return version_; }
  [[nodiscard]] std::uint64_t object_size() const { return size_; }
  [[nodiscard]] const BufferList& data() const { return data_; }

 private:
  friend class RadosClient;
  mutable dbg::Mutex m_{"client.completion"};
  mutable dbg::CondVar cv_;
  bool done_ = false;
  Status status_;
  std::uint64_t version_ = 0;
  std::uint64_t size_ = 0;
  BufferList data_;
};
using AioCompletionRef = std::shared_ptr<AioCompletion>;

class IoCtx;

/// librados-lite: connects to the MON for maps and embeds an Objecter that
/// targets the primary OSD per object via CRUSH, resends on map changes /
/// wrong-primary bounces, and matches replies by tid.
class RadosClient final : public msgr::Dispatcher {
 public:
  RadosClient(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
              sim::CpuDomain* domain, net::Address mon_addr,
              std::uint64_t client_id = 1);
  ~RadosClient() override;

  /// Start messenger, fetch the map, subscribe. Call from a sim thread.
  Status connect();
  void shutdown();

  /// Handle for I/O against one pool.
  IoCtx io_ctx(os::pool_t pool);

  /// Administrative command to the MON (e.g. pool creation).
  Result<std::string> mon_command(std::vector<std::string> args);

  /// Current cached map epoch.
  [[nodiscard]] crush::epoch_t map_epoch() { return monc_.epoch(); }

  /// Submit an object operation; the completion fires when the primary acks.
  AioCompletionRef aio_operate(os::pool_t pool, const std::string& object,
                               msgr::OsdOpType op, std::uint64_t off,
                               std::uint64_t len, BufferList data);

  // msgr::Dispatcher
  void ms_dispatch(const msgr::MessageRef& m) override;
  void ms_handle_reset(const msgr::ConnectionRef& con) override;

  [[nodiscard]] sim::Env& env() noexcept { return env_; }

  // ---- observability ----------------------------------------------------------
  /// Admin command surface; commands are registered by connect() and
  /// unregistered by shutdown().
  [[nodiscard]] AdminSocket& admin_socket() noexcept { return admin_; }
  [[nodiscard]] perf::Collection& perf_collection() noexcept { return perf_; }
  [[nodiscard]] const perf::PerfCountersRef& perf_counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] osd::OpTracker& op_tracker() noexcept { return tracker_; }

 private:
  struct InFlight {
    std::shared_ptr<msgr::MOSDOp> request;
    AioCompletionRef completion;
    osd::TrackedOpRef tracked;
    int target_osd = -1;
    int attempts = 0;
  };

  /// (Re)send an op to the current primary; reschedules itself on failure.
  void send_op(std::uint64_t tid);
  void finish_op(std::uint64_t tid, const msgr::MessageRef& reply);
  void resend_all_mistargeted();

  sim::Env& env_;
  std::uint64_t client_id_;
  msgr::Messenger msgr_;
  mon::MonClient monc_;

  dbg::Mutex mutex_{"client.objecter"};
  std::map<std::uint64_t, InFlight> in_flight_;
  std::atomic<std::uint64_t> next_tid_{1};
  bool connected_ = false;

  osd::OpTracker tracker_;
  perf::PerfCountersRef counters_;
  perf::Collection perf_;
  AdminSocket admin_;

  static constexpr int kMaxAttempts = 300;
  static constexpr sim::Duration kRetryDelay = 10'000'000;  // 10 ms
};

/// Pool-scoped synchronous + asynchronous object API (librados IoCtx).
class IoCtx {
 public:
  IoCtx() = default;
  IoCtx(RadosClient* client, os::pool_t pool) : client_(client), pool_(pool) {}

  Status write_full(const std::string& object, BufferList data);
  Status write(const std::string& object, std::uint64_t off, BufferList data);
  Result<BufferList> read(const std::string& object, std::uint64_t off,
                          std::uint64_t len);
  Result<os::ObjectInfo> stat(const std::string& object);
  Status remove(const std::string& object);

  AioCompletionRef aio_write_full(const std::string& object, BufferList data);
  AioCompletionRef aio_read(const std::string& object, std::uint64_t off,
                            std::uint64_t len);

  [[nodiscard]] os::pool_t pool() const noexcept { return pool_; }

 private:
  RadosClient* client_ = nullptr;
  os::pool_t pool_ = 0;
};

}  // namespace doceph::client
