#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/admin_socket.h"
#include "common/perf_counters.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "mon/mon_client.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"
#include "os/types.h"
#include "osd/op_tracker.h"
#include "sim/rng.h"

namespace doceph::client {

/// Metric indices of the per-client "client" PerfCounters block.
enum {
  l_client_first = 92000,
  l_client_op,          ///< ops completed (any status)
  l_client_op_retry,    ///< resends (busy bounce, retarget, no-primary, silence)
  l_client_op_timeout,  ///< ops failed by deadline or retry exhaustion
  l_client_op_lat,      ///< client-observed end-to-end latency, ns histogram
  l_client_op_throttled,  ///< throttled bounces received (each is later retried)
  l_client_cwnd,          ///< gauge: current AIMD window (effective queue depth)
  l_client_last,
};

/// Retry/timeout policy. The backoff is exponential with "equal jitter"
/// (delay in [d/2, d], d doubling per attempt up to the cap) so a thundering
/// herd of retries against a recovering OSD spreads out; the jitter stream
/// is seeded from the env, so runs stay deterministic. `resend_timeout`
/// turns a silent primary (partition, crash before reply) into a resend
/// instead of a hang; `op_deadline` bounds the op's total lifetime.
struct ClientConfig {
  int max_attempts = 300;
  sim::Duration retry_delay_base = 10'000'000;    // 10 ms
  sim::Duration retry_delay_max = 1'000'000'000;  // 1 s
  sim::Duration resend_timeout = 5'000'000'000;   // 5 s of reply silence
  sim::Duration op_deadline = 120'000'000'000;    // 120 s hard limit

  // ---- AIMD flow control (OFF by default; paper sweeps unchanged) -------
  /// Cap concurrently-sent ops by a congestion window: halved on each
  /// Errc::throttled bounce, grown by 1/cwnd per successful op. Ops beyond
  /// the window wait client-side instead of hammering an overloaded OSD.
  bool flow_control = false;
  double cwnd_init = 64;
  double cwnd_min = 1;
  double cwnd_max = 4096;
};

/// Completion handle for asynchronous object operations (librados
/// AioCompletion). wait() blocks the calling sim thread.
class AioCompletion {
 public:
  explicit AioCompletion(sim::TimeKeeper& tk) : cv_(tk, "client.completion_cv") {}

  /// Block until the operation completed; returns its status.
  Status wait();

  [[nodiscard]] bool complete() const;
  [[nodiscard]] Status status() const;
  [[nodiscard]] std::uint64_t object_version() const { return version_; }
  [[nodiscard]] std::uint64_t object_size() const { return size_; }
  [[nodiscard]] const BufferList& data() const { return data_; }

 private:
  friend class RadosClient;
  mutable dbg::Mutex m_{"client.completion"};
  mutable dbg::CondVar cv_;
  bool done_ DOCEPH_GUARDED_BY(m_) = false;
  Status status_ DOCEPH_GUARDED_BY(m_);
  // version_/size_/data_ are written under m_ strictly before done_ is
  // published; the lock-free accessors above are only valid once wait()
  // (or complete()) has observed done_, so they stay unannotated.
  std::uint64_t version_ = 0;
  std::uint64_t size_ = 0;
  BufferList data_;
};
using AioCompletionRef = std::shared_ptr<AioCompletion>;

class IoCtx;

/// librados-lite: connects to the MON for maps and embeds an Objecter that
/// targets the primary OSD per object via CRUSH, resends on map changes /
/// wrong-primary bounces, and matches replies by tid.
class RadosClient final : public msgr::Dispatcher {
 public:
  RadosClient(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
              sim::CpuDomain* domain, net::Address mon_addr,
              std::uint64_t client_id = 1, ClientConfig cfg = {});
  ~RadosClient() override;

  /// Start messenger, fetch the map, subscribe. Call from a sim thread.
  Status connect();
  void shutdown();

  /// Handle for I/O against one pool.
  IoCtx io_ctx(os::pool_t pool);

  /// Administrative command to the MON (e.g. pool creation).
  Result<std::string> mon_command(std::vector<std::string> args);

  /// Current cached map epoch.
  [[nodiscard]] crush::epoch_t map_epoch() { return monc_.epoch(); }

  /// Submit an object operation; the completion fires when the primary acks.
  AioCompletionRef aio_operate(os::pool_t pool, const std::string& object,
                               msgr::OsdOpType op, std::uint64_t off,
                               std::uint64_t len, BufferList data);

  // msgr::Dispatcher
  void ms_dispatch(const msgr::MessageRef& m) override;
  void ms_handle_reset(const msgr::ConnectionRef& con) override;

  [[nodiscard]] sim::Env& env() noexcept { return env_; }

  // ---- observability ----------------------------------------------------------
  /// Admin command surface; commands are registered by connect() and
  /// unregistered by shutdown().
  [[nodiscard]] AdminSocket& admin_socket() noexcept { return admin_; }
  [[nodiscard]] perf::Collection& perf_collection() noexcept { return perf_; }
  [[nodiscard]] const perf::PerfCountersRef& perf_counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] osd::OpTracker& op_tracker() noexcept { return tracker_; }

 private:
  struct InFlight {
    std::shared_ptr<msgr::MOSDOp> request;
    AioCompletionRef completion;
    osd::TrackedOpRef tracked;
    int target_osd = -1;
    int attempts = 0;
    bool admitted = false;  ///< holds one flow-control window slot
  };

  /// (Re)send an op to the current primary; reschedules itself on failure.
  void send_op(std::uint64_t tid);
  void finish_op(std::uint64_t tid, const msgr::MessageRef& reply);
  void resend_all_mistargeted();

  /// Complete `tid` with a failure (deadline, retry exhaustion) and bump
  /// l_client_op_timeout. No-op if the op already finished.
  void fail_op(std::uint64_t tid, Status st);
  /// Fires after cfg_.resend_timeout of silence: if the op is still on the
  /// same attempt, the primary went dark — resend (with backoff targeting).
  void on_resend_silence(std::uint64_t tid, int attempt);

  /// Exponential backoff with equal jitter for retry number `attempt`.
  [[nodiscard]] sim::Duration retry_delay(int attempt);

  /// Send ops waiting in admit_queue_ while the window has room.
  void admit_waiters();

  /// Timer lifecycle gate (BlockDevice::IoGate pattern): scheduled retry /
  /// timeout lambdas capture `this`, and the scheduler outlives the client.
  /// Plain std primitives — must work from unregistered teardown threads.
  struct TimerGate {
    std::mutex m;                 // doceph-lint: allow(bare-mutex) teardown gate runs on unregistered threads
    std::condition_variable cv;   // doceph-lint: allow(bare-mutex) paired with the gate mutex above
    bool alive = true;
    int executing = 0;
  };
  /// Run `fn` after `delay` unless the client has been destroyed.
  void schedule_guarded(sim::Duration delay, std::function<void()> fn);

  sim::Env& env_;
  std::uint64_t client_id_;
  ClientConfig cfg_;
  msgr::Messenger msgr_;
  mon::MonClient monc_;

  dbg::Mutex mutex_{"client.objecter"};
  std::map<std::uint64_t, InFlight> in_flight_ DOCEPH_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> next_tid_{1};
  bool connected_ = false;  // connect/shutdown caller thread only
  sim::Rng rng_ DOCEPH_GUARDED_BY(mutex_);  // jitter stream

  // AIMD flow-control state (only touched when cfg_.flow_control is on).
  double cwnd_ DOCEPH_GUARDED_BY(mutex_) = 0;
  int admitted_ DOCEPH_GUARDED_BY(mutex_) = 0;
  std::deque<std::uint64_t> admit_queue_ DOCEPH_GUARDED_BY(mutex_);

  std::shared_ptr<TimerGate> timer_gate_ = std::make_shared<TimerGate>();

  osd::OpTracker tracker_;
  perf::PerfCountersRef counters_;
  perf::Collection perf_;
  AdminSocket admin_;
};

/// Pool-scoped synchronous + asynchronous object API (librados IoCtx).
class IoCtx {
 public:
  IoCtx() = default;
  IoCtx(RadosClient* client, os::pool_t pool) : client_(client), pool_(pool) {}

  Status write_full(const std::string& object, BufferList data);
  Status write(const std::string& object, std::uint64_t off, BufferList data);
  Result<BufferList> read(const std::string& object, std::uint64_t off,
                          std::uint64_t len);
  Result<os::ObjectInfo> stat(const std::string& object);
  Status remove(const std::string& object);

  AioCompletionRef aio_write_full(const std::string& object, BufferList data);
  AioCompletionRef aio_read(const std::string& object, std::uint64_t off,
                            std::uint64_t len);

  [[nodiscard]] os::pool_t pool() const noexcept { return pool_; }

 private:
  RadosClient* client_ = nullptr;
  os::pool_t pool_ = 0;
};

}  // namespace doceph::client
