#include "client/rados_bench.h"

#include <atomic>
#include <iostream>

#include "common/logger.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"

namespace doceph::client {

BenchResult RadosBench::run(sim::CpuDomain* domain) {
  sim::Env& env = client_.env();
  Histogram latency;
  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<std::uint64_t> failed_ops{0};

  // All writers share one payload allocation (the messenger and stores never
  // mutate sent buffers), so generating data is not a bottleneck.
  BufferList payload;
  {
    Slice s = Slice::allocate(cfg_.object_size);
    for (std::uint64_t i = 0; i < cfg_.object_size; ++i)
      s.mutable_data()[i] = static_cast<char>(i * 1315423911u >> 16);
    payload.append(std::move(s));
  }

  const sim::Time start = env.now();
  const sim::Time end = start + cfg_.duration;
  IoCtx io = client_.io_ctx(cfg_.pool);

  // The caller is typically a registered sim thread: it must not block in
  // real time (std::thread::join) while the clock thinks it is runnable.
  // Writers therefore announce completion through a sim CondVar; the joins
  // afterwards return immediately.
  dbg::Mutex done_mutex{"bench.done"};
  dbg::CondVar done_cv(env.keeper(), "bench.done_cv");
  int remaining = cfg_.concurrency;

  {
    auto hold = sim::TimeKeeper::AdvanceHold(env.keeper());
    std::vector<sim::Thread> writers;
    writers.reserve(static_cast<std::size_t>(cfg_.concurrency));
    for (int t = 0; t < cfg_.concurrency; ++t) {
      writers.push_back(env.spawn(
          "bench-writer-" + std::to_string(t), domain,
          [&, t] {
            std::uint64_t seq = 0;
            while (env.now() < end) {
              std::uint64_t i = seq++;
              if (cfg_.reuse_objects > 0) i %= cfg_.reuse_objects;
              const std::string name = cfg_.prefix + "_" + std::to_string(t) + "_" +
                                       std::to_string(i);
              const sim::Time t0 = env.now();
              const Status st = io.write_full(name, payload);
              if (!st.ok()) {
                DLOG(warn, "bench") << "write failed: " << st.to_string();
                failed_ops.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              latency.record(static_cast<std::uint64_t>(env.now() - t0));
              total_ops.fetch_add(1, std::memory_order_relaxed);
            }
            const dbg::LockGuard lk(done_mutex);
            if (--remaining == 0) done_cv.notify_all();
          }));
    }
    hold.release();
    {
      dbg::UniqueLock lk(done_mutex);
      done_cv.wait(lk, [&] {
        done_mutex.assert_held();  // predicate runs as a separate function
        return remaining == 0;
      });
    }
    writers.clear();  // threads already exited; joins return immediately
  }

  BenchResult result;
  result.ops = total_ops.load();
  result.failed = failed_ops.load();
  result.seconds = sim::to_seconds(env.now() - start);
  result.latency = latency.snapshot();

  if (cfg_.dump_admin) {
    AdminSocket& admin = client_.admin_socket();
    for (const char* cmd : {"perf dump", "dump_historic_ops"}) {
      auto r = admin.execute(cmd);
      std::cerr << "[bench admin] " << cmd << ": "
                << (r.ok() ? *r : r.status().to_string()) << "\n";
    }
  }
  return result;
}

}  // namespace doceph::client
