#include "client/rados_client.h"

#include <algorithm>

#include "common/logger.h"

namespace doceph::client {

// ---- AioCompletion ----------------------------------------------------------------

Status AioCompletion::wait() {
  dbg::UniqueLock lk(m_);
  cv_.wait(lk, [&] {
    m_.assert_held();  // predicate runs as a separate function
    return done_;
  });
  return status_;
}

bool AioCompletion::complete() const {
  const dbg::LockGuard lk(m_);
  return done_;
}

Status AioCompletion::status() const {
  const dbg::LockGuard lk(m_);
  return status_;
}

// ---- RadosClient ------------------------------------------------------------------

RadosClient::RadosClient(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
                         sim::CpuDomain* domain, net::Address mon_addr,
                         std::uint64_t client_id, ClientConfig cfg)
    : env_(env),
      client_id_(client_id),
      cfg_(cfg),
      msgr_(env, fabric, node, domain, "client." + std::to_string(client_id)),
      monc_(env, msgr_, mon_addr),
      rng_(env.make_rng(0xC11E17 + client_id)),
      counters_(perf::Builder("client", l_client_first, l_client_last)
                    .add_counter(l_client_op, "op")
                    .add_counter(l_client_op_retry, "op_retry")
                    .add_counter(l_client_op_timeout, "op_timeout")
                    .add_histogram(l_client_op_lat, "op_lat")
                    .add_counter(l_client_op_throttled, "op_throttled")
                    .add_gauge(l_client_cwnd, "cwnd")
                    .create()) {
  msgr_.set_dispatcher(this);
  perf_.add(counters_);
  perf_.add(msgr_.counters());
  const dbg::LockGuard lk(mutex_);
  cwnd_ = cfg_.cwnd_init;
  counters_->set(l_client_cwnd, static_cast<std::uint64_t>(cwnd_));
}

RadosClient::~RadosClient() {  // NOLINT(bugprone-exception-escape): teardown disarms timers; a throw terminates, by design
  shutdown();
  // Disarm pending timers (they outlive us on the scheduler) and wait out
  // any timer body already executing.
  std::unique_lock<std::mutex> lk(timer_gate_->m);
  timer_gate_->alive = false;
  timer_gate_->cv.wait(lk, [&] { return timer_gate_->executing == 0; });
}

void RadosClient::schedule_guarded(sim::Duration delay, std::function<void()> fn) {
  env_.scheduler().schedule_after(delay, [gate = timer_gate_, fn = std::move(fn)] {
    {
      const std::lock_guard<std::mutex> lk(gate->m);
      if (!gate->alive) return;  // client destroyed with the timer pending
      ++gate->executing;
    }
    fn();
    {
      const std::lock_guard<std::mutex> lk(gate->m);
      --gate->executing;
    }
    gate->cv.notify_all();
  });
}

sim::Duration RadosClient::retry_delay(int attempt) {
  sim::Duration d = cfg_.retry_delay_base;
  for (int i = 1; i < attempt && d < cfg_.retry_delay_max; ++i) d *= 2;
  d = std::min(d, cfg_.retry_delay_max);
  const dbg::LockGuard lk(mutex_);
  return d / 2 + static_cast<sim::Duration>(
                     rng_.uniform(0, static_cast<std::uint64_t>(d / 2)));
}

Status RadosClient::connect() {
  msgr_.start();
  monc_.set_map_callback(
      [this](const crush::OSDMap&) { resend_all_mistargeted(); });
  Status st = monc_.init();
  if (!st.ok()) return st;
  st = monc_.subscribe();
  if (!st.ok()) return st;
  admin_.register_command("perf dump", "dump all perf-counter blocks as JSON",
                          [this](const auto&) { return perf_.dump_json(); });
  admin_.register_command("perf reset", "zero every counter and histogram",
                          [this](const auto&) {
                            perf_.reset_all();
                            return std::string("{}");
                          });
  admin_.register_command(
      "fault", "fault set <point> [k=v ...] | fault list | fault clear [point]",
      [this](const auto& args) { return env_.faults().admin_command(args); });
  admin_.register_command("dump_ops_in_flight", "list currently tracked ops",
                          [this](const auto&) { return tracker_.dump_ops_in_flight(); });
  admin_.register_command(
      "dump_historic_ops", "list recently completed ops with event timelines",
      [this](const auto&) { return tracker_.dump_historic_ops(); });
  admin_.register_command(
      "trace dump",
      "dump completed spans as Chrome trace JSON; optional domain-substring arg",
      [this](const std::vector<std::string>& args) {
        return env_.tracer().dump_chrome_json(args.empty() ? std::string_view{}
                                                           : args.front());
      });
  admin_.register_command("trace reset", "discard recorded spans",
                          [this](const auto&) {
                            env_.tracer().reset();
                            return std::string("{}");
                          });
  admin_.register_command(
      "trace flight", "most recent flight-recorder snapshot (crash dump)",
      [this](const auto&) { return env_.tracer().last_flight_json(); });
  connected_ = true;
  return Status::OK();
}

void RadosClient::shutdown() {
  if (!connected_) return;
  connected_ = false;
  // Fail any stragglers so waiters unblock.
  std::map<std::uint64_t, InFlight> orphans;
  {
    const dbg::LockGuard lk(mutex_);
    orphans.swap(in_flight_);
    admit_queue_.clear();
    admitted_ = 0;
  }
  for (auto& [tid, op] : orphans) {
    if (op.tracked != nullptr) {
      op.tracked->mark_event("done", env_.now());
      op.tracked->span().end(env_.now());
      tracker_.finish_op(op.tracked, env_.now());
    }
    const dbg::LockGuard lk(op.completion->m_);
    op.completion->done_ = true;
    op.completion->status_ = Status(Errc::shutting_down, "client shutdown");
    op.completion->cv_.notify_all();
  }
  msgr_.shutdown();
  admin_.unregister_all();
}

IoCtx RadosClient::io_ctx(os::pool_t pool) { return IoCtx(this, pool); }

Result<std::string> RadosClient::mon_command(std::vector<std::string> args) {
  return monc_.command(std::move(args));
}

AioCompletionRef RadosClient::aio_operate(os::pool_t pool, const std::string& object,
                                          msgr::OsdOpType op, std::uint64_t off,
                                          std::uint64_t len, BufferList data) {
  auto request = std::make_shared<msgr::MOSDOp>();
  request->tid = next_tid_.fetch_add(1);
  request->op = op;
  request->client_id = client_id_;
  request->pool = pool;
  request->object = object;
  request->offset = off;
  request->length = len;
  request->data = std::move(data);

  auto completion = std::make_shared<AioCompletion>(env_.keeper());
  std::string desc = "client_op(";
  desc += msgr::osd_op_type_name(op);
  desc += ' ';
  desc += object;
  desc += ')';
  auto tracked = tracker_.create_op(std::move(desc), env_.now());
  // Sampling decision happens once, here at the root: the op's stable
  // identity hashes to a trace id, and the context rides the request so
  // every downstream layer (msgr, OSD, DPU, host store) joins the tree.
  const trace::TraceContext root =
      env_.tracer().root_context((client_id_ << 32) ^ request->tid);
  if (root.sampled()) {
    auto sp = env_.tracer().span(
        "client.op", "client." + std::to_string(client_id_), root, env_.now());
    request->trace = sp.context();
    tracked->set_trace(sp.context());
    tracked->adopt_span(std::move(sp));
  }
  const std::uint64_t tid = request->tid;
  bool send_now = true;
  {
    const dbg::LockGuard lk(mutex_);
    auto& entry = in_flight_[tid];
    entry = InFlight{request, completion, tracked, -1, 0};
    if (cfg_.flow_control) {
      // Window admission: ops beyond cwnd wait client-side instead of
      // piling onto an OSD that just told us it is overloaded.
      if (admitted_ < static_cast<int>(cwnd_)) {
        ++admitted_;
        entry.admitted = true;
      } else {
        send_now = false;
        admit_queue_.push_back(tid);
        if (tracked != nullptr) tracked->mark_event("admit_wait", env_.now());
      }
    }
  }
  if (send_now) send_op(tid);
  // Hard lifetime bound: whatever faults the cluster is under, the op
  // completes (possibly with timed_out) rather than hanging a caller.
  schedule_guarded(cfg_.op_deadline, [this, tid] {
    fail_op(tid, Status(Errc::timed_out, "op deadline exceeded"));
  });
  return completion;
}

void RadosClient::admit_waiters() {
  std::vector<std::uint64_t> to_send;
  {
    const dbg::LockGuard lk(mutex_);
    while (!admit_queue_.empty() && admitted_ < static_cast<int>(cwnd_)) {
      const std::uint64_t tid = admit_queue_.front();
      admit_queue_.pop_front();
      auto it = in_flight_.find(tid);
      if (it == in_flight_.end()) continue;  // failed while waiting (deadline)
      it->second.admitted = true;
      ++admitted_;
      to_send.push_back(tid);
    }
  }
  for (const auto tid : to_send) send_op(tid);
}

void RadosClient::fail_op(std::uint64_t tid, Status st) {
  AioCompletionRef completion;
  osd::TrackedOpRef tracked;
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end()) return;  // completed in time
    completion = it->second.completion;
    tracked = it->second.tracked;
    if (it->second.admitted && admitted_ > 0) --admitted_;
    in_flight_.erase(it);
  }
  if (cfg_.flow_control) admit_waiters();
  counters_->inc(l_client_op_timeout);
  DLOG(warn, "client") << "op tid=" << tid << " failed: " << st.to_string();
  if (tracked != nullptr) {
    tracked->mark_event("done", env_.now());
    tracked->span().end(env_.now());
    tracker_.finish_op(tracked, env_.now());
  }
  const dbg::LockGuard lk(completion->m_);
  completion->done_ = true;
  completion->status_ = std::move(st);
  completion->cv_.notify_all();
}

void RadosClient::on_resend_silence(std::uint64_t tid, int attempt) {
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end()) return;     // completed
    if (it->second.attempts != attempt) return;  // already resent elsewhere
  }
  DLOG(info, "client") << "op tid=" << tid << " silent for "
                       << cfg_.resend_timeout / 1'000'000 << " ms; resending";
  send_op(tid);
}

void RadosClient::send_op(std::uint64_t tid) {
  std::shared_ptr<msgr::MOSDOp> request;
  osd::TrackedOpRef tracked;
  int attempt = 0;
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end()) return;  // already completed
    tracked = it->second.tracked;
    attempt = ++it->second.attempts;
    if (attempt <= cfg_.max_attempts) {
      request = it->second.request;
      if (attempt > 1) counters_->inc(l_client_op_retry);
    }
  }
  if (request == nullptr) {
    fail_op(tid, Status(Errc::timed_out, "op exhausted retries"));
    return;
  }

  const crush::OSDMap map = monc_.map();
  const auto pg = map.object_to_pg(request->pool, request->object);
  const int primary = map.pg_primary(pg);
  msgr::ConnectionRef con;
  if (primary >= 0) con = msgr_.get_connection(map.osd(primary).addr);
  if (con == nullptr) {
    // No primary yet (PG degraded to zero, or connect refused): back off
    // exponentially with jitter so recovering OSDs aren't hammered in sync.
    schedule_guarded(retry_delay(attempt), [this, tid] { send_op(tid); });
    return;
  }
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end()) return;
    it->second.target_osd = primary;
  }
  if (tracked != nullptr) tracked->mark_event("sent", env_.now());
  request->map_epoch = map.epoch();
  con->send_message(request);
  // A partitioned or crashed-but-not-yet-marked-down primary never replies;
  // turn that silence into a resend instead of an op that hangs until the
  // OSD map catches up.
  schedule_guarded(cfg_.resend_timeout,
                   [this, tid, attempt] { on_resend_silence(tid, attempt); });
}

void RadosClient::finish_op(std::uint64_t tid, const msgr::MessageRef& reply) {
  auto* r = static_cast<msgr::MOSDOpReply*>(reply.get());
  if (r->result == -static_cast<std::int32_t>(Errc::throttled)) {
    // Server-side admission bounce: shrink the window multiplicatively and
    // retry after max(server-suggested delay, jittered equal-jitter
    // backoff). The op keeps its window slot — it is still in flight.
    int attempt = 1;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = in_flight_.find(tid);
      if (it == in_flight_.end()) return;  // duplicate reply after resend
      attempt = it->second.attempts;
      if (cfg_.flow_control) {
        cwnd_ = std::max(cfg_.cwnd_min, cwnd_ / 2.0);
        counters_->set(l_client_cwnd, static_cast<std::uint64_t>(cwnd_));
      }
    }
    counters_->inc(l_client_op_throttled);
    const auto delay = std::max<sim::Duration>(
        static_cast<sim::Duration>(r->retry_after_ns), retry_delay(attempt));
    schedule_guarded(delay, [this, tid] { send_op(tid); });
    return;
  }
  if (r->result == -static_cast<std::int32_t>(Errc::busy)) {
    // Wrong primary: our map is stale (or failover mid-flight). Retry with
    // backoff; the subscription will deliver the fresher map.
    int attempt = 1;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = in_flight_.find(tid);
      if (it != in_flight_.end()) attempt = it->second.attempts;
    }
    schedule_guarded(retry_delay(attempt), [this, tid] { send_op(tid); });
    return;
  }
  AioCompletionRef completion;
  osd::TrackedOpRef tracked;
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end()) return;  // duplicate reply after resend
    completion = it->second.completion;
    tracked = it->second.tracked;
    if (it->second.admitted && admitted_ > 0) --admitted_;
    in_flight_.erase(it);
    if (cfg_.flow_control && r->result == 0) {
      // Additive increase: +1 per window's worth of successes.
      cwnd_ = std::min(cfg_.cwnd_max, cwnd_ + 1.0 / std::max(cwnd_, 1.0));
      counters_->set(l_client_cwnd, static_cast<std::uint64_t>(cwnd_));
    }
  }
  if (cfg_.flow_control) admit_waiters();
  if (tracked != nullptr) {
    tracked->mark_event("done", env_.now());
    counters_->inc(l_client_op);
    counters_->rec(l_client_op_lat,
                   static_cast<std::uint64_t>(env_.now() - tracked->initiated_at()));
    tracked->span().end(env_.now());
    tracker_.finish_op(tracked, env_.now());
  }
  const dbg::LockGuard lk(completion->m_);
  completion->done_ = true;
  completion->status_ =
      r->result == 0 ? Status::OK()
                     : Status(static_cast<Errc>(-r->result), "osd error");
  completion->version_ = r->object_version;
  completion->size_ = r->object_size;
  completion->data_ = std::move(r->data);
  completion->cv_.notify_all();
}

void RadosClient::resend_all_mistargeted() {
  const crush::OSDMap map = monc_.map();
  std::vector<std::uint64_t> stale;
  {
    const dbg::LockGuard lk(mutex_);
    for (auto& [tid, op] : in_flight_) {
      const auto pg = map.object_to_pg(op.request->pool, op.request->object);
      if (op.target_osd >= 0 && map.pg_primary(pg) != op.target_osd)
        stale.push_back(tid);
    }
  }
  for (const auto tid : stale) send_op(tid);
}

void RadosClient::ms_dispatch(const msgr::MessageRef& m) {
  if (monc_.handle_message(m)) return;
  if (m->type() == msgr::MsgType::osd_op_reply) {
    finish_op(m->tid, m);
    return;
  }
  DLOG(warn, "client") << "unexpected " << msg_type_name(m->type());
}

void RadosClient::ms_handle_reset(const msgr::ConnectionRef&) {
  // Ops to the dead peer are retried when a new map arrives; additionally
  // nudge everything whose target may be gone.
  resend_all_mistargeted();
}

// ---- IoCtx -----------------------------------------------------------------------

Status IoCtx::write_full(const std::string& object, BufferList data) {
  return client_
      ->aio_operate(pool_, object, msgr::OsdOpType::write_full, 0, 0, std::move(data))
      ->wait();
}

Status IoCtx::write(const std::string& object, std::uint64_t off, BufferList data) {
  return client_
      ->aio_operate(pool_, object, msgr::OsdOpType::write, off, 0, std::move(data))
      ->wait();
}

Result<BufferList> IoCtx::read(const std::string& object, std::uint64_t off,
                               std::uint64_t len) {
  auto c = client_->aio_operate(pool_, object, msgr::OsdOpType::read, off, len, {});
  const Status st = c->wait();
  if (!st.ok()) return st;
  return c->data();
}

Result<os::ObjectInfo> IoCtx::stat(const std::string& object) {
  auto c = client_->aio_operate(pool_, object, msgr::OsdOpType::stat, 0, 0, {});
  const Status st = c->wait();
  if (!st.ok()) return st;
  return os::ObjectInfo{c->object_size(), c->object_version()};
}

Status IoCtx::remove(const std::string& object) {
  return client_->aio_operate(pool_, object, msgr::OsdOpType::remove, 0, 0, {})->wait();
}

AioCompletionRef IoCtx::aio_write_full(const std::string& object, BufferList data) {
  return client_->aio_operate(pool_, object, msgr::OsdOpType::write_full, 0, 0,
                              std::move(data));
}

AioCompletionRef IoCtx::aio_read(const std::string& object, std::uint64_t off,
                                 std::uint64_t len) {
  return client_->aio_operate(pool_, object, msgr::OsdOpType::read, off, len, {});
}

}  // namespace doceph::client
