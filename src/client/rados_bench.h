#pragma once

#include <string>
#include <vector>

#include "client/rados_client.h"
#include "common/histogram.h"

namespace doceph::client {

/// Configuration mirroring `rados bench <sec> write -t <concurrency> -b <size>`,
/// the workload generator in the paper's evaluation (§5.1).
struct BenchConfig {
  os::pool_t pool = 1;
  int concurrency = 16;                    ///< outstanding ops (-t)
  std::uint64_t object_size = 4 << 20;     ///< bytes per object (-b)
  sim::Duration duration = 10'000'000'000; ///< 10 s
  std::string prefix = "bench";            ///< object name prefix
  /// >0: each writer cycles through this many object names instead of a
  /// fresh name per op. Documented opt-in for bounding KV metadata growth
  /// on very long small-object runs; fresh-object floods now degrade
  /// gracefully (chained WAL checkpoints + backpressure) instead of dying
  /// with no_space, so most runs no longer need it.
  std::uint64_t reuse_objects = 0;
  /// Dump the client's admin-socket surface ("perf dump", historic ops) to
  /// stderr when the run completes, so every experiment ships its per-stage
  /// latency table.
  bool dump_admin = false;
};

struct BenchResult {
  std::uint64_t ops = 0;
  std::uint64_t failed = 0;  ///< ops that completed with an error status
  double seconds = 0;
  Histogram::Snapshot latency;  ///< per-op latency, nanoseconds

  [[nodiscard]] double iops() const { return seconds > 0 ? static_cast<double>(ops) / seconds : 0; }
  [[nodiscard]] double bandwidth_bytes_per_sec(std::uint64_t object_size) const {
    return iops() * static_cast<double>(object_size);
  }
  [[nodiscard]] double avg_latency_s() const { return latency.mean() * 1e-9; }
  [[nodiscard]] double p99_latency_s() const { return latency.quantile(0.99) * 1e-9; }
};

/// Closed-loop write benchmark: `concurrency` writer threads, each keeping
/// one op outstanding, writing distinct objects until the clock runs out.
class RadosBench {
 public:
  RadosBench(RadosClient& client, BenchConfig cfg) : client_(client), cfg_(cfg) {}

  /// Run to completion (blocking; call from a sim thread). `domain` is the
  /// CPU domain the writer threads run on (the client node's CPU).
  BenchResult run(sim::CpuDomain* domain = nullptr);

 private:
  RadosClient& client_;
  BenchConfig cfg_;
};

}  // namespace doceph::client
