#pragma once

#include <atomic>
#include <functional>

#include "crush/osd_map.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"

namespace doceph::mon {

/// Client-side monitor session, embedded in OSDs and librados clients. The
/// owner routes mon-originated messages (osd_map, mon_command_reply) into
/// handle_message() from its own dispatcher; MonClient maintains the cached
/// OSDMap and wakes waiters on new epochs.
class MonClient {
 public:
  /// `msgr` is the owner's messenger; `mon_addr` comes from cluster config
  /// (the out-of-band mon host list every Ceph client is given).
  MonClient(sim::Env& env, msgr::Messenger& msgr, net::Address mon_addr);

  /// Fetch the initial map (blocking).
  Status init();

  /// Subscribe to map updates from the current epoch.
  Status subscribe();

  /// Returns true if the message was a mon message and was consumed.
  bool handle_message(const msgr::MessageRef& m);

  /// Latest cached map (copy; maps are small).
  [[nodiscard]] crush::OSDMap map() const;
  [[nodiscard]] crush::epoch_t epoch() const;

  /// Block until the cached epoch is >= `e`.
  void wait_for_epoch(crush::epoch_t e);

  /// Announce an OSD boot / report a peer failure.
  Status send_boot(int osd_id, const net::Address& addr);
  Status report_failure(int failed_osd, int reporter);

  /// Run an administrative command and wait for the reply.
  Result<std::string> command(std::vector<std::string> args);

  /// Invoked (on a messenger thread) whenever a newer map is installed.
  void set_map_callback(std::function<void(const crush::OSDMap&)> cb);

 private:
  msgr::ConnectionRef mon_con();

  sim::Env& env_;
  msgr::Messenger& msgr_;
  net::Address mon_addr_;

  mutable dbg::Mutex mutex_{"mon.client"};
  dbg::CondVar map_cv_;
  crush::OSDMap map_ DOCEPH_GUARDED_BY(mutex_);
  bool have_map_ DOCEPH_GUARDED_BY(mutex_) = false;
  std::function<void(const crush::OSDMap&)> map_cb_ DOCEPH_GUARDED_BY(mutex_);

  std::atomic<std::uint64_t> next_tid_{1};
  struct PendingCommand {
    dbg::CondVar cv;
    // done/result/output are guarded by the owning MonClient's mutex_ — a
    // cross-object guard the static analysis cannot express per instance.
    bool done = false;
    std::int32_t result = 0;
    std::string output;
    explicit PendingCommand(sim::TimeKeeper& tk) : cv(tk, "mon.client.cmd") {}
  };
  std::map<std::uint64_t, std::shared_ptr<PendingCommand>> pending_cmds_
      DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::mon
