#include "mon/monitor.h"

#include "common/logger.h"

namespace doceph::mon {

Monitor::Monitor(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
                 sim::CpuDomain* domain, int num_osds, MonitorConfig cfg)
    : env_(env),
      cfg_(cfg),
      msgr_(env, fabric, node, domain, "mon.0",
            msgr::MessengerConfig{.num_workers = 1, .costs = {}}),
      map_(crush::OSDMap::build(num_osds)) {
  msgr_.set_dispatcher(this);
  counters_ = perf::Builder("mon", l_mon_first, l_mon_last)
                  .add_gauge(l_mon_epoch, "epoch")
                  .add_counter(l_mon_boots, "boots")
                  .add_counter(l_mon_failure_reports, "failure_reports")
                  .add_counter(l_mon_map_publishes, "map_publishes")
                  .add_counter(l_mon_commands, "commands")
                  .create();
  counters_->set(l_mon_epoch, static_cast<std::int64_t>(map_.epoch()));
  perf_.add(counters_);
  perf_.add(msgr_.counters());
}

Monitor::~Monitor() { shutdown(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

Status Monitor::start() {
  const Status st = msgr_.bind(cfg_.port);
  if (!st.ok()) return st;
  msgr_.start();
  admin_.register_command("perf dump", "dump all perf-counter blocks as JSON",
                          [this](const auto&) { return perf_.dump_json(); });
  admin_.register_command("perf reset", "zero every counter and histogram",
                          [this](const auto&) {
                            perf_.reset_all();
                            return std::string("{}");
                          });
  admin_.register_command(
      "fault", "fault set <point> [k=v ...] | fault list | fault clear [point]",
      [this](const auto& args) { return env_.faults().admin_command(args); });
  {
    const dbg::LockGuard lk(mutex_);
    started_ = true;
  }
  return Status::OK();
}

void Monitor::shutdown() {
  {
    const dbg::LockGuard lk(mutex_);
    if (!started_) return;
    started_ = false;
  }
  msgr_.shutdown();
  admin_.unregister_all();
}

void Monitor::create_pool(os::pool_t id, crush::PoolInfo info) {
  const dbg::LockGuard lk(mutex_);
  map_.create_pool(id, std::move(info));
  map_.bump_epoch();
  publish_locked();
}

crush::OSDMap Monitor::current_map() const {
  const dbg::LockGuard lk(mutex_);
  return map_;
}

crush::epoch_t Monitor::epoch() const {
  const dbg::LockGuard lk(mutex_);
  return map_.epoch();
}

void Monitor::ms_dispatch(const msgr::MessageRef& m) {
  switch (m->type()) {
    case msgr::MsgType::mon_get_map: handle_get_map(m); break;
    case msgr::MsgType::mon_subscribe: handle_subscribe(m); break;
    case msgr::MsgType::osd_boot: handle_boot(m); break;
    case msgr::MsgType::osd_failure: handle_failure(m); break;
    case msgr::MsgType::mon_command: handle_command(m); break;
    default:
      DLOG(warn, "mon") << "unexpected message " << msg_type_name(m->type());
  }
}

void Monitor::ms_handle_reset(const msgr::ConnectionRef& con) {
  const dbg::LockGuard lk(mutex_);
  std::erase(subscribers_, con);
}

void Monitor::send_map_locked(const msgr::ConnectionRef& con) {
  auto reply = std::make_shared<msgr::MOSDMap>();
  reply->epoch = map_.epoch();
  map_.encode(reply->map_bl);
  con->send_message(reply);
}

void Monitor::publish_locked() {
  std::erase_if(subscribers_,
                [](const msgr::ConnectionRef& c) { return !c->is_connected(); });
  for (const auto& con : subscribers_) send_map_locked(con);
  counters_->set(l_mon_epoch, static_cast<std::int64_t>(map_.epoch()));
  counters_->inc(l_mon_map_publishes);
}

void Monitor::handle_get_map(const msgr::MessageRef& m) {
  const dbg::LockGuard lk(mutex_);
  send_map_locked(m->connection);
}

void Monitor::handle_subscribe(const msgr::MessageRef& m) {
  auto* sub = static_cast<msgr::MMonSubscribe*>(m.get());
  const dbg::LockGuard lk(mutex_);
  subscribers_.push_back(m->connection);
  if (map_.epoch() > sub->start_epoch) send_map_locked(m->connection);
}

void Monitor::handle_boot(const msgr::MessageRef& m) {
  auto* boot = static_cast<msgr::MOSDBoot*>(m.get());
  const dbg::LockGuard lk(mutex_);
  if (boot->osd_id < 0 || boot->osd_id >= map_.num_osds()) {
    DLOG(warn, "mon") << "boot from unknown osd." << boot->osd_id;
    return;
  }
  DLOG(info, "mon") << "osd." << boot->osd_id << " booted at "
                    << boot->addr.to_string();
  counters_->inc(l_mon_boots);
  map_.mark_up(boot->osd_id, boot->addr);
  map_.mark_in(boot->osd_id);
  failure_reports_.erase(boot->osd_id);
  map_.bump_epoch();
  publish_locked();
}

void Monitor::handle_failure(const msgr::MessageRef& m) {
  auto* fail = static_cast<msgr::MOSDFailure*>(m.get());
  counters_->inc(l_mon_failure_reports);
  const dbg::LockGuard lk(mutex_);
  if (!map_.is_up(fail->failed_osd)) return;  // already down
  auto& reporters = failure_reports_[fail->failed_osd];
  reporters.insert(fail->reporter);
  if (static_cast<int>(reporters.size()) < cfg_.failure_reports_needed) return;
  DLOG(info, "mon") << "marking osd." << fail->failed_osd << " down ("
                    << reporters.size() << " reports)";
  map_.mark_down(fail->failed_osd);
  failure_reports_.erase(fail->failed_osd);
  map_.bump_epoch();
  publish_locked();
}

void Monitor::handle_command(const msgr::MessageRef& m) {
  auto* cmd = static_cast<msgr::MMonCommand*>(m.get());
  counters_->inc(l_mon_commands);
  auto reply = std::make_shared<msgr::MMonCommandReply>();
  reply->tid = m->tid;

  if (cmd->args.size() == 5 && cmd->args[0] == "create_pool") {
    crush::PoolInfo info;
    const auto pool_id = static_cast<os::pool_t>(std::stoul(cmd->args[1]));
    info.name = cmd->args[2];
    info.pg_num = static_cast<std::uint32_t>(std::stoul(cmd->args[3]));
    info.size = static_cast<std::uint32_t>(std::stoul(cmd->args[4]));
    {
      const dbg::LockGuard lk(mutex_);
      map_.create_pool(pool_id, std::move(info));
      map_.bump_epoch();
      publish_locked();
    }
    reply->result = 0;
    reply->output = "pool created";
  } else if (cmd->args.size() == 2 && cmd->args[0] == "osd_out") {
    const int id = std::stoi(cmd->args[1]);
    const dbg::LockGuard lk(mutex_);
    map_.mark_out(id);
    map_.bump_epoch();
    publish_locked();
    reply->result = 0;
  } else {
    reply->result = -static_cast<std::int32_t>(Errc::invalid_argument);
    reply->output = "unknown command";
  }
  m->connection->send_message(reply);
}

}  // namespace doceph::mon
