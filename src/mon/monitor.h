#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/admin_socket.h"
#include "common/perf_counters.h"
#include "crush/osd_map.h"
#include "dbg/mutex.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"

namespace doceph::mon {

/// Metric indices of the monitor's "mon" PerfCounters block.
enum {
  l_mon_first = 94000,
  l_mon_epoch,             ///< current OSDMap epoch (gauge)
  l_mon_boots,             ///< osd_boot messages admitted
  l_mon_failure_reports,   ///< osd_failure reports received
  l_mon_map_publishes,     ///< map epochs pushed to subscribers
  l_mon_commands,          ///< MMonCommand requests handled
  l_mon_last,
};

struct MonitorConfig {
  std::uint16_t port = 6789;
  /// Distinct reporters required before an OSD is marked down (1 suits the
  /// paper's two-OSD testbed; Ceph defaults to 2).
  int failure_reports_needed = 1;
};

/// The cluster monitor: owns the authoritative OSDMap, admits booting OSDs,
/// processes failure reports, serves map fetches and publishes new epochs to
/// subscribers. Single-monitor quorum (no Paxos) — see DESIGN.md deviations.
class Monitor final : public msgr::Dispatcher {
 public:
  Monitor(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
          sim::CpuDomain* domain, int num_osds, MonitorConfig cfg = {});
  ~Monitor() override;

  Status start();
  void shutdown();

  /// Create a pool administratively (also reachable via MMonCommand).
  void create_pool(os::pool_t id, crush::PoolInfo info);

  [[nodiscard]] net::Address addr() const { return msgr_.addr(); }
  [[nodiscard]] crush::OSDMap current_map() const;
  [[nodiscard]] crush::epoch_t epoch() const;

  // msgr::Dispatcher
  void ms_dispatch(const msgr::MessageRef& m) override;
  void ms_handle_reset(const msgr::ConnectionRef& con) override;

  /// Admin command surface of the monitor daemon ("perf dump", ...).
  /// Commands are registered by start() and unregistered by shutdown().
  [[nodiscard]] AdminSocket& admin_socket() noexcept { return admin_; }
  [[nodiscard]] perf::Collection& perf_collection() noexcept { return perf_; }
  [[nodiscard]] const perf::PerfCountersRef& perf_counters() const noexcept {
    return counters_;
  }

 private:
  void handle_get_map(const msgr::MessageRef& m);
  void handle_subscribe(const msgr::MessageRef& m);
  void handle_boot(const msgr::MessageRef& m);
  void handle_failure(const msgr::MessageRef& m);
  void handle_command(const msgr::MessageRef& m);

  /// Send the current map over one connection. Requires mutex_ held.
  void send_map_locked(const msgr::ConnectionRef& con) DOCEPH_REQUIRES(mutex_);
  /// Publish the current map to every subscriber. Requires mutex_ held.
  void publish_locked() DOCEPH_REQUIRES(mutex_);

  sim::Env& env_;
  MonitorConfig cfg_;
  msgr::Messenger msgr_;

  mutable dbg::Mutex mutex_{"mon.monitor"};
  crush::OSDMap map_ DOCEPH_GUARDED_BY(mutex_);
  std::vector<msgr::ConnectionRef> subscribers_ DOCEPH_GUARDED_BY(mutex_);
  // failed osd -> reporters
  std::map<int, std::set<int>> failure_reports_ DOCEPH_GUARDED_BY(mutex_);
  bool started_ DOCEPH_GUARDED_BY(mutex_) = false;

  perf::PerfCountersRef counters_;
  perf::Collection perf_;
  AdminSocket admin_;
};

}  // namespace doceph::mon
