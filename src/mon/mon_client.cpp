#include "mon/mon_client.h"

#include "common/logger.h"

namespace doceph::mon {

MonClient::MonClient(sim::Env& env, msgr::Messenger& msgr, net::Address mon_addr)
    : env_(env), msgr_(msgr), mon_addr_(mon_addr), map_cv_(env.keeper(), "mon.client.map") {}

msgr::ConnectionRef MonClient::mon_con() { return msgr_.get_connection(mon_addr_); }

Status MonClient::init() {
  auto con = mon_con();
  if (con == nullptr) return Status(Errc::not_connected, "monitor unreachable");
  con->send_message(std::make_shared<msgr::MMonGetMap>());
  dbg::UniqueLock lk(mutex_);
  // Predicate lambdas are analyzed as separate functions; assert_held()
  // re-establishes the capability (and really checks it at runtime).
  if (!map_cv_.wait_until(lk, env_.now() + sim::Duration{30} * 1'000'000'000,
                          [&] {
                            mutex_.assert_held();
                            return have_map_;
                          }))
    return Status(Errc::timed_out, "no initial osdmap");
  return Status::OK();
}

Status MonClient::subscribe() {
  auto con = mon_con();
  if (con == nullptr) return Status(Errc::not_connected, "monitor unreachable");
  auto sub = std::make_shared<msgr::MMonSubscribe>();
  {
    const dbg::LockGuard lk(mutex_);
    sub->start_epoch = have_map_ ? map_.epoch() : 0;
  }
  con->send_message(sub);
  return Status::OK();
}

bool MonClient::handle_message(const msgr::MessageRef& m) {
  switch (m->type()) {
    case msgr::MsgType::osd_map: {
      auto* mm = static_cast<msgr::MOSDMap*>(m.get());
      crush::OSDMap incoming;
      BufferList::Cursor cur(mm->map_bl);
      if (!incoming.decode(cur)) {
        DLOG(warn, "monc") << "undecodable osdmap";
        return true;
      }
      std::function<void(const crush::OSDMap&)> cb;
      {
        const dbg::LockGuard lk(mutex_);
        if (have_map_ && incoming.epoch() <= map_.epoch()) return true;
        map_ = incoming;
        have_map_ = true;
        cb = map_cb_;
      }
      // Callback before waking epoch waiters: wait_for_epoch(e) returning
      // must imply the map callback for e already ran, or a waiter can act
      // on (and tear down around) a map whose side effects are still being
      // applied on this dispatch thread.
      if (cb) cb(incoming);
      map_cv_.notify_all();
      return true;
    }
    case msgr::MsgType::mon_command_reply: {
      auto* reply = static_cast<msgr::MMonCommandReply*>(m.get());
      const dbg::LockGuard lk(mutex_);
      auto it = pending_cmds_.find(reply->tid);
      if (it != pending_cmds_.end()) {
        it->second->result = reply->result;
        it->second->output = reply->output;
        it->second->done = true;
        it->second->cv.notify_all();
      }
      return true;
    }
    default:
      return false;
  }
}

crush::OSDMap MonClient::map() const {
  const dbg::LockGuard lk(mutex_);
  return map_;
}

crush::epoch_t MonClient::epoch() const {
  const dbg::LockGuard lk(mutex_);
  return have_map_ ? map_.epoch() : 0;
}

void MonClient::wait_for_epoch(crush::epoch_t e) {
  dbg::UniqueLock lk(mutex_);
  map_cv_.wait(lk, [&] {
    mutex_.assert_held();
    return have_map_ && map_.epoch() >= e;
  });
}

Status MonClient::send_boot(int osd_id, const net::Address& addr) {
  auto con = mon_con();
  if (con == nullptr) return Status(Errc::not_connected, "monitor unreachable");
  auto boot = std::make_shared<msgr::MOSDBoot>();
  boot->osd_id = osd_id;
  boot->addr = addr;
  con->send_message(boot);
  return Status::OK();
}

Status MonClient::report_failure(int failed_osd, int reporter) {
  auto con = mon_con();
  if (con == nullptr) return Status(Errc::not_connected, "monitor unreachable");
  auto fail = std::make_shared<msgr::MOSDFailure>();
  fail->failed_osd = failed_osd;
  fail->reporter = reporter;
  con->send_message(fail);
  return Status::OK();
}

Result<std::string> MonClient::command(std::vector<std::string> args) {
  auto con = mon_con();
  if (con == nullptr) return Status(Errc::not_connected, "monitor unreachable");
  auto cmd = std::make_shared<msgr::MMonCommand>();
  cmd->args = std::move(args);
  cmd->tid = next_tid_.fetch_add(1);

  auto pending = std::make_shared<PendingCommand>(env_.keeper());
  {
    const dbg::LockGuard lk(mutex_);
    pending_cmds_[cmd->tid] = pending;
  }
  con->send_message(cmd);

  dbg::UniqueLock lk(mutex_);
  pending->cv.wait(lk, [&] { return pending->done; });
  pending_cmds_.erase(cmd->tid);
  if (pending->result != 0)
    return Status(static_cast<Errc>(-pending->result), pending->output);
  return pending->output;
}

void MonClient::set_map_callback(std::function<void(const crush::OSDMap&)> cb) {
  const dbg::LockGuard lk(mutex_);
  map_cb_ = std::move(cb);
}

}  // namespace doceph::mon
