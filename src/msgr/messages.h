#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msgr/message.h"

/// Concrete message types. Complex payloads that belong to higher layers
/// (OSDMap, ObjectStore::Transaction) travel as opaque BufferLists so the
/// messenger stays independent of those modules — endpoints decode them.
namespace doceph::msgr {

/// Client object operations (the subset of librados this system exposes).
enum class OsdOpType : std::uint8_t {
  write_full = 1,  ///< replace object content with `data`
  write = 2,       ///< write `data` at offset
  read = 3,
  stat = 4,
  remove = 5,
};

[[nodiscard]] constexpr std::string_view osd_op_type_name(OsdOpType t) noexcept {
  switch (t) {
    case OsdOpType::write_full: return "write_full";
    case OsdOpType::write: return "write";
    case OsdOpType::read: return "read";
    case OsdOpType::stat: return "stat";
    case OsdOpType::remove: return "remove";
  }
  return "unknown";
}

/// Client -> primary OSD I/O request (Ceph's MOSDOp).
class MOSDOp final : public Message {
 public:
  OsdOpType op = OsdOpType::write_full;
  std::uint64_t client_id = 0;
  std::uint32_t pool = 0;
  std::string object;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;         ///< read length (writes use data.length())
  std::uint32_t map_epoch = 0;      ///< client's view, for primary validation

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_op; }
  void encode_payload(BufferList& out) const override {
    encode(op, out);
    encode(client_id, out);
    encode(pool, out);
    encode(object, out);
    encode(offset, out);
    encode(length, out);
    encode(map_epoch, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(op, cur) && decode(client_id, cur) && decode(pool, cur) &&
           decode(object, cur) && decode(offset, cur) && decode(length, cur) &&
           decode(map_epoch, cur);
  }
};

/// Primary OSD -> client completion (Ceph's MOSDOpReply). Read results ride
/// in `data`.
class MOSDOpReply final : public Message {
 public:
  std::int32_t result = 0;         ///< 0 ok, else -(Errc)
  std::uint64_t object_version = 0;
  std::uint64_t object_size = 0;   ///< for stat
  std::uint32_t map_epoch = 0;     ///< primary's epoch (client refresh hint)
  std::uint64_t retry_after_ns = 0;  ///< throttled: server-suggested backoff

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_op_reply; }
  void encode_payload(BufferList& out) const override {
    encode(result, out);
    encode(object_version, out);
    encode(object_size, out);
    encode(map_epoch, out);
    encode(retry_after_ns, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(result, cur) && decode(object_version, cur) &&
           decode(object_size, cur) && decode(map_epoch, cur) &&
           decode(retry_after_ns, cur);
  }
};

/// Primary -> replica replicated transaction (Ceph's MOSDRepOp). The
/// serialized ObjectStore::Transaction is opaque here; bulk payload in data.
class MOSDRepOp final : public Message {
 public:
  std::uint32_t pool = 0;
  std::uint32_t pg_seed = 0;
  std::int32_t from_osd = -1;
  std::uint32_t map_epoch = 0;
  bool recovery_push = false;  ///< true for recovery pushes (idempotent)
  BufferList txn;  ///< encoded Transaction (metadata only)

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_repop; }
  void encode_payload(BufferList& out) const override {
    encode(pool, out);
    encode(pg_seed, out);
    encode(from_osd, out);
    encode(map_epoch, out);
    encode(recovery_push, out);
    encode(txn, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(pool, cur) && decode(pg_seed, cur) && decode(from_osd, cur) &&
           decode(map_epoch, cur) && decode(recovery_push, cur) && decode(txn, cur);
  }
};

/// Replica -> primary commit acknowledgment.
class MOSDRepOpReply final : public Message {
 public:
  std::int32_t result = 0;
  std::int32_t from_osd = -1;

  [[nodiscard]] MsgType type() const noexcept override {
    return MsgType::osd_repop_reply;
  }
  void encode_payload(BufferList& out) const override {
    encode(result, out);
    encode(from_osd, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(result, cur) && decode(from_osd, cur);
  }
};

/// OSD <-> OSD heartbeat (Ceph's MOSDPing).
class MOSDPing final : public Message {
 public:
  enum class Op : std::uint8_t { ping = 1, reply = 2 };
  Op op = Op::ping;
  std::int32_t from_osd = -1;
  std::int64_t stamp_ns = 0;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_ping; }
  void encode_payload(BufferList& out) const override {
    encode(op, out);
    encode(from_osd, out);
    encode(stamp_ns, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(op, cur) && decode(from_osd, cur) && decode(stamp_ns, cur);
  }
};

/// MON -> everyone: full map publication (opaque encoded OSDMap).
class MOSDMap final : public Message {
 public:
  std::uint32_t epoch = 0;
  BufferList map_bl;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_map; }
  void encode_payload(BufferList& out) const override {
    encode(epoch, out);
    encode(map_bl, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(epoch, cur) && decode(map_bl, cur);
  }
};

/// * -> MON: fetch the current map.
class MMonGetMap final : public Message {
 public:
  [[nodiscard]] MsgType type() const noexcept override { return MsgType::mon_get_map; }
  void encode_payload(BufferList&) const override {}
  [[nodiscard]] bool decode_payload(BufferList::Cursor&) override { return true; }
};

/// * -> MON: subscribe to map updates from `start_epoch`.
class MMonSubscribe final : public Message {
 public:
  std::uint32_t start_epoch = 0;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::mon_subscribe; }
  void encode_payload(BufferList& out) const override { encode(start_epoch, out); }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(start_epoch, cur);
  }
};

/// OSD -> MON: boot announcement with the OSD's public address.
class MOSDBoot final : public Message {
 public:
  std::int32_t osd_id = -1;
  net::Address addr;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_boot; }
  void encode_payload(BufferList& out) const override {
    encode(osd_id, out);
    encode(addr, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(osd_id, cur) && decode(addr, cur);
  }
};

/// OSD -> MON: report a peer that stopped answering heartbeats.
class MOSDFailure final : public Message {
 public:
  std::int32_t failed_osd = -1;
  std::int32_t reporter = -1;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::osd_failure; }
  void encode_payload(BufferList& out) const override {
    encode(failed_osd, out);
    encode(reporter, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(failed_osd, cur) && decode(reporter, cur);
  }
};

/// Administrative command (pool creation etc.); free-form strings.
class MMonCommand final : public Message {
 public:
  std::vector<std::string> args;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::mon_command; }
  void encode_payload(BufferList& out) const override { encode(args, out); }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(args, cur);
  }
};

/// Primary -> replica: request the replica's inventory of one PG, used by
/// recovery to compute the push set.
class MPGScan final : public Message {
 public:
  std::uint32_t pool = 0;
  std::uint32_t pg_seed = 0;

  [[nodiscard]] MsgType type() const noexcept override { return MsgType::pg_scan; }
  void encode_payload(BufferList& out) const override {
    encode(pool, out);
    encode(pg_seed, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(pool, cur) && decode(pg_seed, cur);
  }
};

/// One object's identity in a PG inventory: name + size + content crc32c.
struct ObjectSummary {
  std::string name;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;

  friend bool operator==(const ObjectSummary&, const ObjectSummary&) = default;

  void encode(BufferList& bl) const {
    doceph::encode(name, bl);
    doceph::encode(size, bl);
    doceph::encode(crc, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(name, cur) && doceph::decode(size, cur) &&
           doceph::decode(crc, cur);
  }
};

class MPGScanReply final : public Message {
 public:
  std::uint32_t pool = 0;
  std::uint32_t pg_seed = 0;
  std::vector<ObjectSummary> objects;

  [[nodiscard]] MsgType type() const noexcept override {
    return MsgType::pg_scan_reply;
  }
  void encode_payload(BufferList& out) const override {
    encode(pool, out);
    encode(pg_seed, out);
    encode(objects, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(pool, cur) && decode(pg_seed, cur) && decode(objects, cur);
  }
};

class MMonCommandReply final : public Message {
 public:
  std::int32_t result = 0;
  std::string output;

  [[nodiscard]] MsgType type() const noexcept override {
    return MsgType::mon_command_reply;
  }
  void encode_payload(BufferList& out) const override {
    encode(result, out);
    encode(output, out);
  }
  [[nodiscard]] bool decode_payload(BufferList::Cursor& cur) override {
    return decode(result, cur) && decode(output, cur);
  }
};

}  // namespace doceph::msgr
