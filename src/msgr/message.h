#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/buffer.h"
#include "common/encoding.h"
#include "common/trace.h"
#include "net/address.h"
#include "sim/time.h"

namespace doceph::msgr {

class Connection;
using ConnectionRef = std::shared_ptr<Connection>;

/// Wire message types (the subset of Ceph's msg_types.h this system needs).
enum class MsgType : std::uint16_t {
  none = 0,
  osd_op = 1,           ///< client -> OSD I/O request
  osd_op_reply = 2,     ///< OSD -> client completion
  osd_repop = 3,        ///< primary -> replica transaction
  osd_repop_reply = 4,  ///< replica -> primary ack
  osd_ping = 5,         ///< OSD <-> OSD heartbeat
  osd_map = 6,          ///< MON -> * map publication
  mon_get_map = 7,      ///< * -> MON map fetch
  mon_subscribe = 8,    ///< * -> MON map subscription
  osd_boot = 9,         ///< OSD -> MON boot announcement
  osd_failure = 10,     ///< OSD -> MON failure report
  mon_command = 11,     ///< * -> MON administrative command
  mon_command_reply = 12,
  pg_scan = 13,         ///< primary -> replica recovery scan request
  pg_scan_reply = 14,   ///< replica -> primary object inventory
};

std::string_view msg_type_name(MsgType t) noexcept;

/// Base class of every wire message. A message is a scalar "front" payload
/// (encoded by the subclass) plus an optional bulk `data` BufferList that is
/// carried without re-encoding (Ceph's front/data split, which is what lets
/// DoCeph stage bulk data separately from metadata).
class Message {
 public:
  virtual ~Message() = default;

  [[nodiscard]] virtual MsgType type() const noexcept = 0;

  /// Encode the front (scalar) payload.
  virtual void encode_payload(BufferList& out) const = 0;
  /// Decode the front payload; false on malformed input.
  [[nodiscard]] virtual bool decode_payload(BufferList::Cursor& cur) = 0;

  /// Bulk data (object payload); transported verbatim after the front.
  BufferList data;

  /// Transaction id chosen by the sender for matching replies.
  std::uint64_t tid = 0;

  /// Distributed-trace identity, carried in the wire header (zero for
  /// unsampled traffic). The sender sets it; every receiving layer parents
  /// its spans under it (DESIGN.md §12).
  trace::TraceContext trace;

  // ---- set by the receiving messenger --------------------------------------
  /// Connection the message arrived on (reply path); null on the send side.
  ConnectionRef connection;
  /// Advertised address of the sending messenger.
  net::Address src;
  /// Per-connection sequence number.
  std::uint64_t seq = 0;
  /// Sim time the receiving messenger saw this message's header (steps ①–②
  /// of the paper's pipeline); 0 on the send side. This is the anchor for
  /// OpTracker stage breakdowns, so the messenger stage covers payload
  /// wait + decode + CRC.
  sim::Time recv_stamp = 0;
};

using MessageRef = std::shared_ptr<Message>;

/// Construct an empty message of dynamic type `t` (for decode); null if the
/// type is unknown.
MessageRef create_message(MsgType t);

}  // namespace doceph::msgr
