#include "msgr/messenger.h"

#include <cassert>

#include "common/crc32c.h"
#include "common/logger.h"

namespace doceph::msgr {
namespace {

constexpr std::uint32_t kBannerMagic = 0xD0CE0001;
constexpr std::size_t kBannerSize = 4 + 6;          // magic + Address
constexpr std::size_t kHeaderSize =
    2 + 8 + 8 + 4 + 4 + 6 + trace::TraceContext::kWireSize;  // see WireHeader
constexpr std::size_t kFooterSize = 4 + 4;          // front_crc + data_crc
constexpr std::size_t kRecvChunk = 4 << 20;

}  // namespace

// ---- Connection ---------------------------------------------------------------

Connection::Connection(Messenger& msgr, event::EventCenter& center,
                       net::SocketRef sock, bool incoming)
    : msgr_(msgr), center_(center), sock_(std::move(sock)), incoming_(incoming) {}

void Connection::start() {
  auto self = shared_from_this();
  sock_->set_read_handler(center_, [self] { self->handle_readable(); });
  sock_->set_write_handler(center_, [self] { self->handle_writable(); });
  // Both sides introduce themselves with a banner carrying their advertised
  // (listening) address.
  BufferList banner;
  encode(kBannerMagic, banner);
  encode(msgr_.addr(), banner);
  tx_buf_.claim_append(banner);
  try_flush();
}

net::Address Connection::peer_addr() const {
  return peer_advertised_.valid() ? peer_advertised_ : sock_->remote_addr();
}

void Connection::send_message(MessageRef m) {
  auto self = shared_from_this();
  center_.dispatch([self, m = std::move(m)] {
    if (self->state_.load() == State::closed) return;  // dropped, like a reset
    BufferList frame = self->encode_message(*m);
    const std::size_t frame_len = frame.length();
    self->tx_buf_.claim_append(frame);
    self->sent_.fetch_add(1, std::memory_order_relaxed);

    const CorkConfig& cork = self->msgr_.config().cork;
    if (!cork.enabled) {
      self->try_flush();
      return;
    }
    self->corked_msgs_++;
    if (frame_len >= cork.min_bytes ||
        self->tx_buf_.length() >= cork.max_bytes ||
        self->corked_msgs_ >= cork.max_msgs) {
      self->msgr_.counters_->inc(l_msgr_cork_flush_size);
      self->corked_msgs_ = 0;
      self->try_flush();
      return;
    }
    // Small message: hold it for companions; the timer bounds the wait.
    self->msgr_.counters_->inc(l_msgr_cork_queued);
    if (!self->cork_timer_armed_) {
      self->cork_timer_armed_ = true;
      self->center_.add_timer(cork.timeout, [self] {
        // Timer handlers run on the owner worker thread, like this lambda.
        self->cork_timer_armed_ = false;
        if (self->state_.load() == State::closed) return;
        if (self->tx_buf_.length() == 0) return;
        self->msgr_.counters_->inc(l_msgr_cork_flush_timeout);
        self->corked_msgs_ = 0;
        self->try_flush();
      });
    }
  });
}

BufferList Connection::encode_message(const Message& m) {
  BufferList front;
  m.encode_payload(front);

  const auto& costs = msgr_.config().costs;
  const std::uint64_t bytes = front.length() + m.data.length();
  msgr_.charge(costs.per_msg_encode +
               static_cast<sim::Duration>(costs.crc_per_byte_ns *
                                          static_cast<double>(bytes)));
  msgr_.counters_->inc(l_msgr_msg_send);
  msgr_.counters_->inc(l_msgr_bytes_send, bytes);

  BufferList frame;
  encode(static_cast<std::uint16_t>(m.type()), frame);
  encode(next_seq_++, frame);
  encode(m.tid, frame);
  encode(static_cast<std::uint32_t>(front.length()), frame);
  encode(static_cast<std::uint32_t>(m.data.length()), frame);
  encode(msgr_.addr(), frame);
  encode(m.trace, frame);
  assert(frame.length() == kHeaderSize);

  const std::uint32_t front_crc = front.crc32c();
  const std::uint32_t data_crc = m.data.crc32c();
  frame.claim_append(front);
  frame.append(m.data);  // zero-copy share of bulk payload
  encode(front_crc, frame);
  encode(data_crc, frame);
  return frame;
}

void Connection::try_flush() {
  while (tx_buf_.length() > 0) {
    auto r = sock_->send(tx_buf_);
    if (!r.ok()) {
      fail(r.status());
      return;
    }
    if (*r == 0) return;  // would-block: handle_writable resumes
  }
}

void Connection::handle_writable() { try_flush(); }

void Connection::handle_readable() {
  while (true) {
    BufferList chunk = sock_->recv(kRecvChunk);
    if (chunk.empty()) break;
    rx_buf_.claim_append(chunk);
  }
  process_rx();
  if (sock_->eof() && state_.load() != State::closed) {
    fail(Status(Errc::not_connected, "peer closed"));
  }
}

void Connection::process_rx() {
  if (state_.load() == State::banner_wait) {
    if (rx_buf_.length() < kBannerSize) return;
    BufferList::Cursor cur(rx_buf_);
    std::uint32_t magic = 0;
    if (!decode(magic, cur) || magic != kBannerMagic ||
        !peer_advertised_.decode(cur)) {
      fail(Status(Errc::corrupt, "bad banner"));
      return;
    }
    rx_buf_ = rx_buf_.substr(kBannerSize, rx_buf_.length() - kBannerSize);
    state_.store(State::ready);
  }
  while (state_.load() == State::ready && parse_one()) {
  }
}

bool Connection::parse_one() {
  if (!have_header_) {
    if (rx_buf_.length() < kHeaderSize) return false;
    BufferList::Cursor cur(rx_buf_);
    std::uint16_t type_raw = 0;
    if (!decode(type_raw, cur) || !decode(hdr_.seq, cur) || !decode(hdr_.tid, cur) ||
        !decode(hdr_.front_len, cur) || !decode(hdr_.data_len, cur) ||
        !hdr_.src.decode(cur) || !hdr_.trace.decode(cur)) {
      fail(Status(Errc::corrupt, "bad header"));
      return false;
    }
    hdr_.type = static_cast<MsgType>(type_raw);
    rx_buf_ = rx_buf_.substr(kHeaderSize, rx_buf_.length() - kHeaderSize);
    have_header_ = true;
    hdr_stamp_ = msgr_.env().now();
  }

  const std::size_t need = hdr_.front_len + hdr_.data_len + kFooterSize;
  if (rx_buf_.length() < need) return false;

  BufferList front = rx_buf_.substr(0, hdr_.front_len);
  BufferList data = rx_buf_.substr(hdr_.front_len, hdr_.data_len);
  const BufferList footer = rx_buf_.substr(hdr_.front_len + hdr_.data_len, kFooterSize);
  BufferList::Cursor fcur(footer);
  std::uint32_t front_crc = 0, data_crc = 0;
  (void)decode(front_crc, fcur);
  (void)decode(data_crc, fcur);
  rx_buf_ = rx_buf_.substr(need, rx_buf_.length() - need);
  have_header_ = false;

  const auto& costs = msgr_.config().costs;
  msgr_.charge(costs.per_msg_decode +
               static_cast<sim::Duration>(
                   costs.crc_per_byte_ns *
                   static_cast<double>(hdr_.front_len + hdr_.data_len)));

  if (front.crc32c() != front_crc || data.crc32c() != data_crc) {
    fail(Status(Errc::corrupt, "message crc mismatch"));
    return false;
  }

  MessageRef m = create_message(hdr_.type);
  if (m == nullptr) {
    fail(Status(Errc::corrupt, "unknown message type"));
    return false;
  }
  BufferList::Cursor pcur(front);
  if (!m->decode_payload(pcur)) {
    fail(Status(Errc::corrupt, "bad payload"));
    return false;
  }
  m->data = std::move(data);
  m->tid = hdr_.tid;
  m->seq = hdr_.seq;
  m->src = hdr_.src;
  m->trace = hdr_.trace;
  m->connection = shared_from_this();
  // Anchor at header arrival so the op's messenger stage covers payload
  // wait + decode + CRC, not just the dispatch instant.
  m->recv_stamp = hdr_stamp_;
  received_.fetch_add(1, std::memory_order_relaxed);
  msgr_.counters_->inc(l_msgr_msg_recv);
  msgr_.counters_->inc(l_msgr_bytes_recv, hdr_.front_len + hdr_.data_len);
  msgr_.dispatch_message(m);
  return true;
}

void Connection::fail(const Status& why) {
  if (state_.exchange(State::closed) == State::closed) return;
  DLOG(debug, "msgr") << msgr_.entity_name() << " connection to "
                      << peer_addr().to_string() << " failed: " << why.to_string();
  sock_->clear_handlers();  // the worker's EventCenter may outlive us barely
  sock_->close();
  msgr_.connection_reset(shared_from_this());
}

void Connection::mark_down() {
  auto self = shared_from_this();
  center_.dispatch([self] {
    if (self->state_.exchange(State::closed) == State::closed) return;
    self->sock_->clear_handlers();
    self->sock_->close();
  });
}

// ---- Messenger ------------------------------------------------------------------

Messenger::Messenger(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
                     sim::CpuDomain* domain, std::string entity_name,
                     MessengerConfig cfg)
    : env_(env),
      fabric_(fabric),
      node_(node),
      domain_(domain),
      entity_(std::move(entity_name)),
      cfg_(cfg),
      counters_(perf::Builder("msgr", l_msgr_first, l_msgr_last)
                    .add_counter(l_msgr_msg_recv, "msg_recv")
                    .add_counter(l_msgr_msg_send, "msg_send")
                    .add_counter(l_msgr_bytes_recv, "bytes_recv")
                    .add_counter(l_msgr_bytes_send, "bytes_send")
                    .add_counter(l_msgr_cork_queued, "cork_queued")
                    .add_counter(l_msgr_cork_flush_size, "cork_flush_size")
                    .add_counter(l_msgr_cork_flush_timeout, "cork_flush_timeout")
                    .create()) {
  centers_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i)
    centers_.push_back(std::make_unique<event::EventCenter>(env_));
}

Messenger::~Messenger() { shutdown(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

Status Messenger::bind(std::uint16_t port) {
  const Status st =
      node_.listen(port, *centers_[0], [this](net::SocketRef s) { accept(std::move(s)); });
  if (st.ok()) bound_port_ = port;
  return st;
}

void Messenger::start() {
  assert(!started_);
  started_ = true;
  for (int i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back(
        env_.keeper(), env_.stats(),
        "msgr-worker-" + std::to_string(i) + "@" + entity_, domain_,
        [c = centers_[static_cast<std::size_t>(i)].get()] { c->run(); },
        /*daemon=*/true);
  }
}

void Messenger::shutdown() {
  if (!started_) return;
  started_ = false;
  std::vector<ConnectionRef> cons;
  {
    const dbg::LockGuard lk(mutex_);
    for (auto& [addr, con] : outgoing_) cons.push_back(con);
    for (auto& con : accepted_) cons.push_back(con);
    outgoing_.clear();
    accepted_.clear();
  }
  for (auto& con : cons) con->mark_down();
  if (bound_port_ != 0) node_.unlisten(bound_port_);
  for (auto& c : centers_) c->stop();
  workers_.clear();  // joins
}

event::EventCenter& Messenger::pick_center() {
  const std::size_t i = next_center_.fetch_add(1) % centers_.size();
  return *centers_[i];
}

void Messenger::accept(net::SocketRef sock) {
  auto& center = pick_center();
  ConnectionRef con(new Connection(*this, center, std::move(sock), /*incoming=*/true));
  {
    const dbg::LockGuard lk(mutex_);
    accepted_.push_back(con);
  }
  center.dispatch([con] { con->start(); });
}

ConnectionRef Messenger::get_connection(const net::Address& peer) {
  {
    const dbg::LockGuard lk(mutex_);
    auto it = outgoing_.find(peer);
    if (it != outgoing_.end() && it->second->is_connected()) return it->second;
    if (it != outgoing_.end() && it->second->state_.load() == Connection::State::banner_wait)
      return it->second;  // still handshaking; reuse
  }
  auto sock = fabric_.connect(node_, peer);
  if (!sock.ok()) {
    DLOG(debug, "msgr") << entity_ << " connect to " << peer.to_string()
                        << " failed: " << sock.status().to_string();
    return nullptr;
  }
  auto& center = pick_center();
  ConnectionRef con(new Connection(*this, center, std::move(sock).value(),
                                   /*incoming=*/false));
  {
    const dbg::LockGuard lk(mutex_);
    outgoing_[peer] = con;
  }
  center.dispatch([con] { con->start(); });
  return con;
}

void Messenger::dispatch_message(const MessageRef& m) {
  if (dispatcher_ == nullptr) return;
  if (m->trace.sampled()) {
    // Fig.-2 "msgr worker recv/dispatch": header arrival (payload wait +
    // decode + CRC) through the dispatcher's fast-dispatch return.
    auto sp = env_.tracer().span("msgr.dispatch", "msgr." + entity_, m->trace,
                                 m->recv_stamp);
    dispatcher_->ms_dispatch(m);
    sp.end(env_.now());
    return;
  }
  dispatcher_->ms_dispatch(m);
}

void Messenger::connection_reset(const ConnectionRef& con) {
  if (dispatcher_ != nullptr) dispatcher_->ms_handle_reset(con);
}

}  // namespace doceph::msgr
