#include "msgr/messages.h"

namespace doceph::msgr {

std::string_view msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::none: return "none";
    case MsgType::osd_op: return "osd_op";
    case MsgType::osd_op_reply: return "osd_op_reply";
    case MsgType::osd_repop: return "osd_repop";
    case MsgType::osd_repop_reply: return "osd_repop_reply";
    case MsgType::osd_ping: return "osd_ping";
    case MsgType::osd_map: return "osd_map";
    case MsgType::mon_get_map: return "mon_get_map";
    case MsgType::mon_subscribe: return "mon_subscribe";
    case MsgType::osd_boot: return "osd_boot";
    case MsgType::osd_failure: return "osd_failure";
    case MsgType::mon_command: return "mon_command";
    case MsgType::pg_scan: return "pg_scan";
    case MsgType::pg_scan_reply: return "pg_scan_reply";
    case MsgType::mon_command_reply: return "mon_command_reply";
  }
  return "unknown";
}

MessageRef create_message(MsgType t) {
  switch (t) {
    case MsgType::osd_op: return std::make_shared<MOSDOp>();
    case MsgType::osd_op_reply: return std::make_shared<MOSDOpReply>();
    case MsgType::osd_repop: return std::make_shared<MOSDRepOp>();
    case MsgType::osd_repop_reply: return std::make_shared<MOSDRepOpReply>();
    case MsgType::osd_ping: return std::make_shared<MOSDPing>();
    case MsgType::osd_map: return std::make_shared<MOSDMap>();
    case MsgType::mon_get_map: return std::make_shared<MMonGetMap>();
    case MsgType::mon_subscribe: return std::make_shared<MMonSubscribe>();
    case MsgType::osd_boot: return std::make_shared<MOSDBoot>();
    case MsgType::osd_failure: return std::make_shared<MOSDFailure>();
    case MsgType::mon_command: return std::make_shared<MMonCommand>();
    case MsgType::pg_scan: return std::make_shared<MPGScan>();
    case MsgType::pg_scan_reply: return std::make_shared<MPGScanReply>();
    case MsgType::mon_command_reply: return std::make_shared<MMonCommandReply>();
    case MsgType::none: return nullptr;
  }
  return nullptr;
}

}  // namespace doceph::msgr
