#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/perf_counters.h"
#include "common/status.h"
#include "dbg/mutex.h"
#include "event/event_center.h"
#include "msgr/message.h"
#include "net/fabric.h"
#include "sim/cpu_model.h"
#include "sim/env.h"
#include "sim/thread.h"

namespace doceph::msgr {

class Messenger;

/// Receives inbound messages. ms_dispatch runs on a messenger worker thread;
/// implementations must be quick (hand off to a work queue) or accept that
/// they serialize that worker, exactly like Ceph fast dispatch.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;
  virtual void ms_dispatch(const MessageRef& m) = 0;
  /// The connection dropped; queued/unacked messages are gone.
  virtual void ms_handle_reset(const ConnectionRef& con) { (void)con; }
};

/// Metric indices of the per-messenger "msgr" PerfCounters block.
enum {
  l_msgr_first = 90000,
  l_msgr_msg_recv,    ///< messages fully decoded and dispatched
  l_msgr_msg_send,    ///< messages encoded for transmission
  l_msgr_bytes_recv,  ///< payload bytes (front + data) received
  l_msgr_bytes_send,  ///< payload bytes (front + data) sent
  l_msgr_cork_queued,         ///< small messages held back by the cork
  l_msgr_cork_flush_size,     ///< cork flushes rung by the size doorbells
  l_msgr_cork_flush_timeout,  ///< cork flushes rung by the timeout
  l_msgr_last,
};

/// CPU cost model of messenger work itself (serialization and checksums),
/// charged on worker threads — together with the socket stack model this is
/// what makes "msgr-worker-*" dominate Ceph CPU usage (paper Fig. 5).
struct MsgrCostModel {
  sim::Duration per_msg_encode = 2500;  ///< ns per message encode + dispatch
  sim::Duration per_msg_decode = 3500;  ///< ns per message decode + deliver
  double crc_per_byte_ns = 0.3;         ///< crc32c over front+data
};

/// Nagle-like write corking: small same-connection messages coalesce in the
/// connection's tx buffer and leave as one fabric send, amortizing the
/// per-send syscall/frame costs of the stack model. Bounded: a frame of
/// min_bytes or more, a full cork (max_bytes / max_msgs), or the
/// virtual-clock timeout rings the doorbell, so nothing waits longer than
/// `timeout`.
struct CorkConfig {
  bool enabled = false;
  std::size_t min_bytes = 4096;    ///< frames this big flush immediately
  std::size_t max_bytes = 65536;   ///< flush when the tx buffer reaches this
  int max_msgs = 16;               ///< flush after this many corked messages
  sim::Duration timeout = 50'000;  ///< cork deadline (virtual ns)
};

struct MessengerConfig {
  int num_workers = 3;  ///< Ceph default: 3 async msgr workers
  MsgrCostModel costs;
  CorkConfig cork;
};

/// One wire connection. All state is owned by a single worker's event loop;
/// send_message may be called from any thread.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Queue `m` for transmission (thread-safe, async). Messages to the same
  /// connection are delivered in send order.
  void send_message(MessageRef m);

  /// Peer's advertised (listening) address, once known; the raw socket peer
  /// address before the banner completes.
  [[nodiscard]] net::Address peer_addr() const;

  [[nodiscard]] bool is_connected() const noexcept {
    return state_.load() == State::ready;
  }

  /// Hard-close (Ceph mark_down): peer sees reset; no reconnect here.
  void mark_down();

  /// Messages fully handed to the socket layer (tests/diagnostics).
  [[nodiscard]] std::uint64_t sent_count() const noexcept { return sent_.load(); }
  [[nodiscard]] std::uint64_t received_count() const noexcept { return received_.load(); }

  /// send() invocations on the underlying socket that moved bytes — the
  /// per-call stack cost the write cork amortizes (tests/diagnostics).
  [[nodiscard]] std::uint64_t socket_send_calls() const noexcept {
    return sock_ ? sock_->send_calls() : 0;
  }

 private:
  friend class Messenger;
  enum class State { banner_wait, ready, closed };

  Connection(Messenger& msgr, event::EventCenter& center, net::SocketRef sock,
             bool incoming);

  // All run in the owner worker thread:
  void start();
  void handle_readable();
  void handle_writable();
  void enqueue_locked_bytes(BufferList bytes);
  void try_flush();
  void process_rx();
  [[nodiscard]] bool parse_one();
  void fail(const Status& why);
  BufferList encode_message(const Message& m);

  Messenger& msgr_;
  event::EventCenter& center_;
  net::SocketRef sock_;
  std::atomic<State> state_{State::banner_wait};
  bool incoming_;

  net::Address peer_advertised_;  // learned from banner

  // Owner-thread data:
  BufferList rx_buf_;
  BufferList tx_buf_;
  std::uint64_t next_seq_ = 1;
  int corked_msgs_ = 0;           // messages held back since the last flush
  bool cork_timer_armed_ = false;

  // Parser state.
  bool have_header_ = false;
  sim::Time hdr_stamp_ = 0;  // when the current message's header arrived
  struct WireHeader {
    MsgType type = MsgType::none;
    std::uint64_t seq = 0;
    std::uint64_t tid = 0;
    std::uint32_t front_len = 0;
    std::uint32_t data_len = 0;
    net::Address src;
    trace::TraceContext trace;
  } hdr_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
};

/// Async messenger: N worker event loops, a listener, outgoing connection
/// cache, and message framing with crc32c integrity (header/front/data/
/// footer), closely following Ceph's AsyncMessenger structure.
class Messenger {
 public:
  /// `entity_name` is used for worker thread names' suffix and diagnostics
  /// (e.g. "osd.0" => threads "msgr-worker-0@osd.0"). `domain` is the CPU
  /// domain charged for all messenger work — the host in Baseline, the DPU
  /// in DoCeph deployments.
  Messenger(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
            sim::CpuDomain* domain, std::string entity_name, MessengerConfig cfg = {});
  ~Messenger();

  Messenger(const Messenger&) = delete;
  Messenger& operator=(const Messenger&) = delete;

  /// Listen for peers on `port` (optional for pure clients).
  Status bind(std::uint16_t port);

  /// Start the worker threads. Call after bind.
  void start();

  /// Stop workers and close all connections.
  void shutdown();

  void set_dispatcher(Dispatcher* d) noexcept { dispatcher_ = d; }

  /// Find or create a connection to a peer's bound address.
  ConnectionRef get_connection(const net::Address& peer);

  /// Advertised address (node + bound port; port 0 if unbound).
  [[nodiscard]] net::Address addr() const noexcept {
    return {node_.id(), bound_port_};
  }

  [[nodiscard]] sim::Env& env() noexcept { return env_; }
  [[nodiscard]] const MessengerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& entity_name() const noexcept { return entity_; }

  /// The "msgr" perf-counter block (message/byte rates); daemons add it to
  /// their perf::Collection so `perf dump` covers the messenger too.
  [[nodiscard]] const perf::PerfCountersRef& counters() const noexcept {
    return counters_;
  }

 private:
  friend class Connection;

  event::EventCenter& pick_center();
  void accept(net::SocketRef sock);
  void charge(sim::Duration work) const {
    if (domain_ != nullptr) domain_->charge(work);
  }
  void dispatch_message(const MessageRef& m);
  void connection_reset(const ConnectionRef& con);

  sim::Env& env_;
  net::Fabric& fabric_;
  net::NetNode& node_;
  sim::CpuDomain* domain_;
  std::string entity_;
  MessengerConfig cfg_;
  perf::PerfCountersRef counters_;
  Dispatcher* dispatcher_ = nullptr;

  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<event::EventCenter>> centers_;
  std::vector<sim::Thread> workers_;
  std::atomic<std::size_t> next_center_{0};
  bool started_ = false;

  dbg::Mutex mutex_{"msgr.messenger"};
  // by peer bound addr
  std::map<net::Address, ConnectionRef> outgoing_ DOCEPH_GUARDED_BY(mutex_);
  // inbound connections
  std::vector<ConnectionRef> accepted_ DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::msgr
