#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "dbg/cond_var.h"
#include "dbg/mutex.h"

#include "sim/env.h"
#include "sim/time_keeper.h"

namespace doceph::event {

/// An epoll-style event loop, mirroring Ceph AsyncMessenger's EventCenter:
/// one owning thread calls run(); other threads hand it work via dispatch()
/// (the analogue of a readiness notification through the wakeup pipe) and
/// timers fire in the loop thread. All handlers therefore execute serially
/// in the owner thread — connection state machines need no further locking.
class EventCenter {
 public:
  using Handler = std::function<void()>;
  using TimerId = std::uint64_t;

  explicit EventCenter(sim::Env& env);
  ~EventCenter();

  EventCenter(const EventCenter&) = delete;
  EventCenter& operator=(const EventCenter&) = delete;

  /// A weak dispatch handle. Deliveries booked on the simulation scheduler
  /// (socket data, accept handshakes) can fire after the center that should
  /// receive them is destroyed; a raw EventCenter* there is a use-after-free.
  /// A Handle dispatches while the center is alive and silently drops the
  /// event afterwards. Copyable, default-constructed handles drop everything.
  class Handle {
   public:
    Handle() = default;

    /// Queue `h` on the center if it is still alive; otherwise drop it.
    void dispatch(Handler h) const;

    [[nodiscard]] explicit operator bool() const noexcept {
      return state_ != nullptr;
    }

   private:
    friend class EventCenter;
    struct State;
    explicit Handle(std::shared_ptr<State> s) : state_(std::move(s)) {}
    std::shared_ptr<State> state_;
  };

  /// A handle that outlives this center safely.
  [[nodiscard]] Handle handle();

  /// Event loop; call from the owning thread. Returns after stop().
  void run();

  /// Ask the loop to exit (thread-safe); pending handlers are drained first.
  void stop();

  /// Queue `h` to run in the loop thread (thread-safe). Handlers run in
  /// dispatch order, interleaved with due timers.
  void dispatch(Handler h);

  /// Arm a one-shot timer `d` from now; fires in the loop thread.
  TimerId add_timer(sim::Duration d, Handler h);
  /// Best-effort cancel; true if the timer had not fired.
  bool cancel_timer(TimerId id);

  /// True when called from the thread currently inside run().
  [[nodiscard]] bool in_loop_thread() const noexcept {
    return loop_tid_ == std::this_thread::get_id();
  }

  [[nodiscard]] sim::Env& env() noexcept { return env_; }

  /// Number of loop wakeups that found work (diagnostics).
  [[nodiscard]] std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  sim::Env& env_;
  dbg::Mutex mutex_{"event.center"};
  dbg::CondVar cv_;
  std::deque<Handler> pending_ DOCEPH_GUARDED_BY(mutex_);
  std::map<std::pair<sim::Time, TimerId>, Handler> timers_
      DOCEPH_GUARDED_BY(mutex_);
  TimerId next_timer_id_ DOCEPH_GUARDED_BY(mutex_) = 1;
  bool stopping_ DOCEPH_GUARDED_BY(mutex_) = false;
  std::atomic<std::thread::id> loop_tid_{};
  // Atomic, not guarded: wakeups() is a diagnostics read from any thread.
  std::atomic<std::uint64_t> wakeups_{0};
  std::shared_ptr<Handle::State> handle_state_;  // nulled in the destructor
};

}  // namespace doceph::event
