#include "event/event_center.h"

#include <vector>

namespace doceph::event {

/// Shared between a center and its handles: `center` is written once (to
/// null) by the destructor; handles read it under `m` for the duration of
/// the dispatch, so a center can never die mid-dispatch.
struct EventCenter::Handle::State {
  dbg::Mutex m{"event.center.handle"};
  EventCenter* center DOCEPH_GUARDED_BY(m) = nullptr;
};

EventCenter::EventCenter(sim::Env& env)
    : env_(env), cv_(env.keeper(), "event.center.cv") {
  handle_state_ = std::make_shared<Handle::State>();
  const dbg::LockGuard lk(handle_state_->m);
  handle_state_->center = this;
}

EventCenter::~EventCenter() {  // NOLINT(bugprone-exception-escape): teardown joins the loop thread; a throw terminates, by design
  const dbg::LockGuard lk(handle_state_->m);
  handle_state_->center = nullptr;
}

EventCenter::Handle EventCenter::handle() { return Handle(handle_state_); }

void EventCenter::Handle::dispatch(Handler h) const {
  if (state_ == nullptr) return;
  const dbg::LockGuard lk(state_->m);
  if (state_->center != nullptr) state_->center->dispatch(std::move(h));
}

void EventCenter::run() {
  loop_tid_.store(std::this_thread::get_id());
  dbg::UniqueLock lk(mutex_);
  while (true) {
    // Drain dispatched handlers and due timers together, in order.
    std::vector<Handler> batch;
    while (!pending_.empty()) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const sim::Time now = env_.now();
    while (!timers_.empty() && timers_.begin()->first.first <= now) {
      batch.push_back(std::move(timers_.begin()->second));
      timers_.erase(timers_.begin());
    }
    if (!batch.empty()) {
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      for (auto& h : batch) h();
      lk.lock();
      continue;
    }
    if (stopping_) break;  // drained everything; exit
    const sim::Time next =
        timers_.empty() ? sim::kTimeInfinity : timers_.begin()->first.first;
    (void)cv_.wait_until(lk, next);
  }
  loop_tid_.store({});
}

void EventCenter::stop() {
  const dbg::LockGuard lk(mutex_);
  stopping_ = true;
  cv_.notify_all();
}

void EventCenter::dispatch(Handler h) {
  const dbg::LockGuard lk(mutex_);
  pending_.push_back(std::move(h));
  cv_.notify_one();
}

EventCenter::TimerId EventCenter::add_timer(sim::Duration d, Handler h) {
  const dbg::LockGuard lk(mutex_);
  const TimerId id = next_timer_id_++;
  timers_.emplace(std::make_pair(env_.now() + std::max<sim::Duration>(d, 0), id),
                  std::move(h));
  cv_.notify_one();
  return id;
}

bool EventCenter::cancel_timer(TimerId id) {
  const dbg::LockGuard lk(mutex_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace doceph::event
