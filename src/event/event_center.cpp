#include "event/event_center.h"

#include <vector>

namespace doceph::event {

EventCenter::EventCenter(sim::Env& env) : env_(env), cv_(env.keeper()) {}

void EventCenter::run() {
  loop_tid_.store(std::this_thread::get_id());
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    // Drain dispatched handlers and due timers together, in order.
    std::vector<Handler> batch;
    while (!pending_.empty()) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    const sim::Time now = env_.now();
    while (!timers_.empty() && timers_.begin()->first.first <= now) {
      batch.push_back(std::move(timers_.begin()->second));
      timers_.erase(timers_.begin());
    }
    if (!batch.empty()) {
      ++wakeups_;
      lk.unlock();
      for (auto& h : batch) h();
      lk.lock();
      continue;
    }
    if (stopping_) break;  // drained everything; exit
    const sim::Time next =
        timers_.empty() ? sim::kTimeInfinity : timers_.begin()->first.first;
    (void)cv_.wait_until(lk, next);
  }
  loop_tid_.store({});
}

void EventCenter::stop() {
  const std::lock_guard<std::mutex> lk(mutex_);
  stopping_ = true;
  cv_.notify_all();
}

void EventCenter::dispatch(Handler h) {
  const std::lock_guard<std::mutex> lk(mutex_);
  pending_.push_back(std::move(h));
  cv_.notify_one();
}

EventCenter::TimerId EventCenter::add_timer(sim::Duration d, Handler h) {
  const std::lock_guard<std::mutex> lk(mutex_);
  const TimerId id = next_timer_id_++;
  timers_.emplace(std::make_pair(env_.now() + std::max<sim::Duration>(d, 0), id),
                  std::move(h));
  cv_.notify_one();
  return id;
}

bool EventCenter::cancel_timer(TimerId id) {
  const std::lock_guard<std::mutex> lk(mutex_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == id) {
      timers_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace doceph::event
