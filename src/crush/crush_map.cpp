#include "crush/crush_map.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <set>

#include "crush/hash.h"

namespace doceph::crush {

CrushMap CrushMap::build_flat(int num_osds) {
  CrushMap map;
  Bucket root;
  root.id = -1;
  root.type = "root";
  for (int i = 0; i < num_osds; ++i) {
    const item_t host_id = -2 - i;
    Bucket host;
    host.id = host_id;
    host.type = "host";
    host.items.push_back(i);
    host.weights.push_back(kWeightOne);
    map.add_bucket(std::move(host));
    root.items.push_back(host_id);
    root.weights.push_back(kWeightOne);
  }
  map.add_bucket(std::move(root));
  map.set_root(-1);
  return map;
}

void CrushMap::add_bucket(Bucket b) {
  assert(b.id < 0);
  assert(b.items.size() == b.weights.size());
  buckets_[b.id] = std::move(b);
}

const Bucket* CrushMap::bucket(item_t id) const {
  auto it = buckets_.find(id);
  return it == buckets_.end() ? nullptr : &it->second;
}

void CrushMap::set_device_weight(item_t osd, double weight) {
  assert(osd >= 0);
  const auto w = static_cast<std::uint32_t>(std::max(0.0, weight) * kWeightOne);
  for (auto& [id, b] : buckets_) {
    for (std::size_t i = 0; i < b.items.size(); ++i) {
      if (b.items[i] == osd) b.weights[i] = w;
    }
  }
}

double CrushMap::device_weight(item_t osd) const {
  for (const auto& [id, b] : buckets_) {
    for (std::size_t i = 0; i < b.items.size(); ++i) {
      if (b.items[i] == osd)
        return static_cast<double>(b.weights[i]) / kWeightOne;
    }
  }
  return 0.0;
}

item_t CrushMap::straw2_choose(const Bucket& b, std::uint32_t x,
                               std::uint32_t r) const {
  // straw2: each child draws u ~ U(0,1] from hash(x, item, r); its straw is
  // ln(u)/w — the max straw wins. Zero-weight children never win.
  double best = -std::numeric_limits<double>::infinity();
  item_t winner = 0;
  bool found = false;
  for (std::size_t i = 0; i < b.items.size(); ++i) {
    if (b.weights[i] == 0) continue;
    const std::uint32_t h =
        hash32_3(x, static_cast<std::uint32_t>(b.items[i]), r);
    const double u = (static_cast<double>(h) + 1.0) / 4294967296.0;  // (0,1]
    const double w = static_cast<double>(b.weights[i]) / kWeightOne;
    const double straw = std::log(u) / w;
    if (!found || straw > best) {
      best = straw;
      winner = b.items[i];
      found = true;
    }
  }
  return found ? winner : std::numeric_limits<item_t>::min();
}

int CrushMap::descend_to_device(item_t from, std::uint32_t x, std::uint32_t r) const {
  item_t cur = from;
  for (int depth = 0; depth < 16; ++depth) {
    if (cur >= 0) return cur;  // a device
    const Bucket* b = bucket(cur);
    if (b == nullptr) return -1;
    cur = straw2_choose(*b, x, r);
    if (cur == std::numeric_limits<item_t>::min()) return -1;
  }
  return -1;
}

std::vector<int> CrushMap::select(std::uint32_t x, int n,
                                  const std::string& failure_domain) const {
  std::vector<int> out;
  const Bucket* root = bucket(root_);
  if (root == nullptr || n <= 0) return out;

  std::set<item_t> chosen_domains;
  std::set<int> chosen_devices;
  // As in CRUSH firstn: scan replica ranks with bounded retries per rank.
  constexpr std::uint32_t kMaxTries = 64;
  std::uint32_t r = 0;
  while (static_cast<int>(out.size()) < n && r < kMaxTries * static_cast<std::uint32_t>(n)) {
    // First stage: choose a failure-domain bucket below the root.
    item_t domain = root_;
    const Bucket* level = root;
    std::uint32_t rr = r++;
    bool dead_end = false;
    while (level != nullptr && level->type != failure_domain) {
      domain = straw2_choose(*level, x, rr);
      if (domain == std::numeric_limits<item_t>::min()) {
        dead_end = true;
        break;
      }
      if (domain >= 0) break;  // device directly under root (flat map)
      level = bucket(domain);
    }
    if (dead_end) continue;
    if (chosen_domains.contains(domain)) continue;

    // Second stage: descend within the domain to one device.
    const int dev = descend_to_device(domain, x, rr);
    if (dev < 0 || chosen_devices.contains(dev)) continue;
    chosen_domains.insert(domain);
    chosen_devices.insert(dev);
    out.push_back(dev);
  }
  return out;
}

void CrushMap::encode(BufferList& bl) const {
  doceph::encode(root_, bl);
  doceph::encode(buckets_, bl);
}

bool CrushMap::decode(BufferList::Cursor& cur) {
  return doceph::decode(root_, cur) && doceph::decode(buckets_, cur);
}

}  // namespace doceph::crush
