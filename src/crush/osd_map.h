#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crush/crush_map.h"
#include "net/address.h"
#include "os/types.h"

namespace doceph::crush {

using epoch_t = std::uint32_t;

/// A placement group id: pool + seed (Ceph's pg_t).
struct pg_t {
  os::pool_t pool = 0;
  std::uint32_t seed = 0;

  friend bool operator==(const pg_t&, const pg_t&) = default;
  friend auto operator<=>(const pg_t&, const pg_t&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(pool) + "." + std::to_string(seed);
  }
  [[nodiscard]] os::coll_t to_coll() const { return {pool, seed}; }

  void encode(BufferList& bl) const {
    doceph::encode(pool, bl);
    doceph::encode(seed, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(pool, cur) && doceph::decode(seed, cur);
  }
};

struct PoolInfo {
  std::string name;
  std::uint32_t pg_num = 32;
  std::uint32_t size = 2;  ///< replica count

  void encode(BufferList& bl) const {
    doceph::encode(name, bl);
    doceph::encode(pg_num, bl);
    doceph::encode(size, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(name, cur) && doceph::decode(pg_num, cur) &&
           doceph::decode(size, cur);
  }
};

struct OsdInfo {
  bool exists = false;
  bool up = false;
  bool in = false;
  /// Epoch at which this OSD last came up. Scan-based recovery uses it as
  /// the authority rule: the longest-up acting member's data wins (the
  /// miniature stand-in for Ceph's pg-log/pg-info authoritativeness).
  epoch_t up_since = 0;
  net::Address addr;  ///< public (client/peer-facing) messenger address

  void encode(BufferList& bl) const {
    doceph::encode(exists, bl);
    doceph::encode(up, bl);
    doceph::encode(in, bl);
    doceph::encode(up_since, bl);
    addr.encode(bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(exists, cur) && doceph::decode(up, cur) &&
           doceph::decode(in, cur) && doceph::decode(up_since, cur) &&
           addr.decode(cur);
  }
};

/// The cluster map: OSD states, pools, and the CRUSH hierarchy, versioned by
/// epoch. Everyone (clients, OSDs) computes placement locally from the same
/// map; the MON publishes new epochs when state changes.
class OSDMap {
 public:
  OSDMap() = default;

  /// Bootstrap map: `num_osds` slots (down/out until boot), flat CRUSH.
  static OSDMap build(int num_osds);

  [[nodiscard]] epoch_t epoch() const noexcept { return epoch_; }
  void bump_epoch() noexcept { ++epoch_; }

  [[nodiscard]] int num_osds() const noexcept { return static_cast<int>(osds_.size()); }
  [[nodiscard]] const OsdInfo& osd(int id) const { return osds_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] bool is_up(int id) const {
    return id >= 0 && id < num_osds() && osds_[static_cast<std::size_t>(id)].up;
  }

  void mark_up(int id, const net::Address& addr);
  void mark_down(int id);
  /// "out": excluded from placement (CRUSH weight 0).
  void mark_out(int id);
  void mark_in(int id);

  void create_pool(os::pool_t id, PoolInfo info) { pools_[id] = std::move(info); }
  [[nodiscard]] const PoolInfo* pool(os::pool_t id) const {
    auto it = pools_.find(id);
    return it == pools_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<os::pool_t, PoolInfo>& pools() const noexcept {
    return pools_;
  }

  /// Object name -> placement group (stable hash mod pg_num).
  [[nodiscard]] pg_t object_to_pg(os::pool_t pool, const std::string& name) const;

  /// PG -> ordered device list (CRUSH output, unfiltered by up/down).
  [[nodiscard]] std::vector<int> pg_to_raw(const pg_t& pg) const;

  /// PG -> acting set: raw order with down OSDs removed; acting[0] is the
  /// primary.
  [[nodiscard]] std::vector<int> pg_to_acting(const pg_t& pg) const;
  [[nodiscard]] int pg_primary(const pg_t& pg) const;

  /// The acting member whose data is authoritative for recovery: smallest
  /// up_since (been up the longest), ties broken by id. -1 if none up.
  [[nodiscard]] int pg_authority(const pg_t& pg) const;

  [[nodiscard]] CrushMap& crush() noexcept { return crush_; }
  [[nodiscard]] const CrushMap& crush() const noexcept { return crush_; }

  void encode(BufferList& bl) const;
  bool decode(BufferList::Cursor& cur);

 private:
  epoch_t epoch_ = 1;
  std::vector<OsdInfo> osds_;
  std::map<os::pool_t, PoolInfo> pools_;
  CrushMap crush_;
};

}  // namespace doceph::crush
