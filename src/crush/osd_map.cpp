#include "crush/osd_map.h"

#include "crush/hash.h"

namespace doceph::crush {

OSDMap OSDMap::build(int num_osds) {
  OSDMap map;
  map.osds_.resize(static_cast<std::size_t>(num_osds));
  for (auto& o : map.osds_) {
    o.exists = true;
    o.in = true;  // in the CRUSH map, awaiting boot
  }
  map.crush_ = CrushMap::build_flat(num_osds);
  return map;
}

void OSDMap::mark_up(int id, const net::Address& addr) {
  auto& o = osds_.at(static_cast<std::size_t>(id));
  if (!o.up) o.up_since = epoch_ + 1;  // the epoch this boot will publish as
  o.up = true;
  o.addr = addr;
}

void OSDMap::mark_down(int id) { osds_.at(static_cast<std::size_t>(id)).up = false; }

void OSDMap::mark_out(int id) {
  osds_.at(static_cast<std::size_t>(id)).in = false;
  crush_.set_device_weight(id, 0.0);
}

void OSDMap::mark_in(int id) {
  osds_.at(static_cast<std::size_t>(id)).in = true;
  crush_.set_device_weight(id, 1.0);
}

pg_t OSDMap::object_to_pg(os::pool_t pool, const std::string& name) const {
  const PoolInfo* p = this->pool(pool);
  const std::uint32_t pg_num = p != nullptr ? p->pg_num : 1;
  return pg_t{pool, hash_str(name) % pg_num};
}

std::vector<int> OSDMap::pg_to_raw(const pg_t& pg) const {
  const PoolInfo* p = pool(pg.pool);
  if (p == nullptr) return {};
  // Salt the CRUSH input with the pool so different pools spread differently.
  const std::uint32_t x = hash32_2(pg.seed, pg.pool + 1);
  return crush_.select(x, static_cast<int>(p->size));
}

std::vector<int> OSDMap::pg_to_acting(const pg_t& pg) const {
  std::vector<int> acting;
  for (const int osd : pg_to_raw(pg)) {
    if (is_up(osd)) acting.push_back(osd);
  }
  return acting;
}

int OSDMap::pg_primary(const pg_t& pg) const {
  const auto acting = pg_to_acting(pg);
  return acting.empty() ? -1 : acting.front();
}

int OSDMap::pg_authority(const pg_t& pg) const {
  int best = -1;
  for (const int osd : pg_to_acting(pg)) {
    if (best < 0) {
      best = osd;
      continue;
    }
    const auto& a = this->osd(osd);
    const auto& b = this->osd(best);
    if (a.up_since < b.up_since || (a.up_since == b.up_since && osd < best))
      best = osd;
  }
  return best;
}

void OSDMap::encode(BufferList& bl) const {
  doceph::encode(epoch_, bl);
  doceph::encode(osds_, bl);
  doceph::encode(pools_, bl);
  crush_.encode(bl);
}

bool OSDMap::decode(BufferList::Cursor& cur) {
  return doceph::decode(epoch_, cur) && doceph::decode(osds_, cur) &&
         doceph::decode(pools_, cur) && crush_.decode(cur);
}

}  // namespace doceph::crush
