#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/encoding.h"

namespace doceph::crush {

/// Item ids: devices (OSDs) are >= 0; buckets are negative.
using item_t = std::int32_t;

/// One interior node of the CRUSH hierarchy, selecting among its children
/// with the straw2 algorithm (independent weighted draws; max wins) so that
/// weight changes move a minimal fraction of inputs.
struct Bucket {
  item_t id = -1;
  std::string type;  ///< "root", "host", ... (failure-domain matching)
  std::vector<item_t> items;
  std::vector<std::uint32_t> weights;  ///< 16.16 fixed point, like Ceph

  void encode(BufferList& bl) const {
    doceph::encode(id, bl);
    doceph::encode(type, bl);
    doceph::encode(items, bl);
    doceph::encode(weights, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(id, cur) && doceph::decode(type, cur) &&
           doceph::decode(items, cur) && doceph::decode(weights, cur);
  }
};

/// The CRUSH map: a weighted hierarchy plus the replicated-placement rule
/// "chooseleaf firstn N type <failure_domain>" (the rule Ceph uses for
/// replicated pools). Deterministic: any party with the same map computes
/// the same placement — the property RADOS relies on to avoid a metadata
/// service on the data path.
class CrushMap {
 public:
  static constexpr std::uint32_t kWeightOne = 0x10000;  // 1.0 in 16.16

  /// Build the standard two-level hierarchy: root -> one host per OSD ->
  /// OSD, all with weight 1.0. (Hosts are the failure domain, as in the
  /// paper's two-node testbed.)
  static CrushMap build_flat(int num_osds);

  /// Add a bucket; its id must be negative and unused.
  void add_bucket(Bucket b);

  [[nodiscard]] const Bucket* bucket(item_t id) const;
  [[nodiscard]] item_t root() const noexcept { return root_; }
  void set_root(item_t id) noexcept { root_ = id; }

  /// Change a device's weight everywhere it appears (0 = drained/out).
  void set_device_weight(item_t osd, double weight);
  [[nodiscard]] double device_weight(item_t osd) const;

  /// Select `n` distinct devices for input `x` (pg seed), walking from the
  /// root and forcing distinct `failure_domain` buckets. Devices with zero
  /// weight are skipped. Returns fewer than n if the hierarchy is exhausted.
  [[nodiscard]] std::vector<int> select(std::uint32_t x, int n,
                                        const std::string& failure_domain = "host") const;

  void encode(BufferList& bl) const;
  bool decode(BufferList::Cursor& cur);

 private:
  /// straw2 draw over a bucket's children for input x and replica r.
  [[nodiscard]] item_t straw2_choose(const Bucket& b, std::uint32_t x,
                                     std::uint32_t r) const;
  /// Descend from `from` to a single device, drawing with replica salt r.
  [[nodiscard]] int descend_to_device(item_t from, std::uint32_t x,
                                      std::uint32_t r) const;

  std::map<item_t, Bucket> buckets_;
  item_t root_ = -1;
};

}  // namespace doceph::crush
