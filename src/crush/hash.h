#pragma once

#include <cstdint>
#include <string_view>

namespace doceph::crush {

/// Robert Jenkins' 32-bit integer mix, the primitive CRUSH builds its
/// pseudo-random choices on (Ceph's crush_hash32_*).
std::uint32_t hash32_2(std::uint32_t a, std::uint32_t b) noexcept;
std::uint32_t hash32_3(std::uint32_t a, std::uint32_t b, std::uint32_t c) noexcept;

/// Stable string hash used to derive placement seeds from object names
/// (Ceph's rjenkins ceph_str_hash).
std::uint32_t hash_str(std::string_view s) noexcept;

}  // namespace doceph::crush
