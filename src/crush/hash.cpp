#include "crush/hash.h"

namespace doceph::crush {
namespace {

constexpr std::uint32_t kSeed = 1315423911u;

// Jenkins 96-bit mix.
inline void mix(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c) noexcept {
  a -= b; a -= c; a ^= c >> 13;
  b -= c; b -= a; b ^= a << 8;
  c -= a; c -= b; c ^= b >> 13;
  a -= b; a -= c; a ^= c >> 12;
  b -= c; b -= a; b ^= a << 16;
  c -= a; c -= b; c ^= b >> 5;
  a -= b; a -= c; a ^= c >> 3;
  b -= c; b -= a; b ^= a << 10;
  c -= a; c -= b; c ^= b >> 15;
}

}  // namespace

std::uint32_t hash32_2(std::uint32_t a, std::uint32_t b) noexcept {
  std::uint32_t hash = kSeed ^ a ^ b;
  std::uint32_t x = 231232u, y = 1232u;
  mix(a, b, hash);
  mix(x, a, hash);
  mix(b, y, hash);
  return hash;
}

std::uint32_t hash32_3(std::uint32_t a, std::uint32_t b, std::uint32_t c) noexcept {
  std::uint32_t hash = kSeed ^ a ^ b ^ c;
  std::uint32_t x = 231232u, y = 1232u;
  mix(a, b, hash);
  mix(c, x, hash);
  mix(y, a, hash);
  mix(b, x, hash);
  mix(y, c, hash);
  return hash;
}

std::uint32_t hash_str(std::string_view s) noexcept {
  // rjenkins one-at-a-time, as in ceph_str_hash_rjenkins' spirit.
  std::uint32_t hash = kSeed;
  for (const char ch : s) {
    hash = (hash << 5) + hash + static_cast<unsigned char>(ch);
  }
  return hash;
}

}  // namespace doceph::crush
