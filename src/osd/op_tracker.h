#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "dbg/mutex.h"
#include "sim/time.h"

namespace doceph {
class JsonWriter;
}

namespace doceph::osd {

class OpTracker;

/// One request's journey through the Fig. 2 pipeline, as a list of named,
/// monotonically-stamped events. Canonical event names (see DESIGN.md for
/// the mapping to the paper's steps ①–⑨):
///
///   queued      messenger handed the op to the OSD op queue   (after ①–③)
///   dequeued    a tp_osd_tp worker picked it up               (④)
///   sub_op_sent replication messages left for the replicas    (⑤)
///   store_submit  handed to the ObjectStore (in proxy mode this is the
///                 start of the host<->DPU hop)                (⑥,⑦)
///   commit      local WAL commit (or read completion)         (⑧)
///   repl_ack    one replica acknowledged (repeated)           (⑨ per peer)
///   reply_sent  reply handed to the messenger
///
/// The op's creation stamp is the messenger receive stamp, so
/// total = reply_sent - initiated covers the whole OSD-side span.
class TrackedOp {
 public:
  TrackedOp(std::string desc, sim::Time initiated)
      : desc_(std::move(desc)), initiated_(initiated) {}

  void mark_event(const char* event, sim::Time at);

  [[nodiscard]] const std::string& description() const noexcept { return desc_; }
  [[nodiscard]] sim::Time initiated_at() const noexcept { return initiated_; }

  /// Time of the first occurrence of `event` (-1 if never marked).
  [[nodiscard]] sim::Time event_time(const char* event) const;
  /// Time of the last occurrence (for repeated events like repl_ack).
  [[nodiscard]] sim::Time last_event_time(const char* event) const;

  /// Per-stage durations in ns. Consecutive-delta stages whose sum equals
  /// the op's total span *exactly* (overlap between the local commit and
  /// replica acks is resolved by crediting replication only with the tail
  /// beyond the local commit, and reply with the tail beyond both):
  ///
  ///   messenger    = queued - initiated        (rx decode + dispatch)
  ///   queue        = dequeued - queued         (PG queue wait)
  ///   objectstore  = commit - dequeued         (prep + WAL, or read)
  ///   replication  = max(0, last repl_ack - commit)
  ///   reply        = reply_sent - max(commit, last repl_ack)
  struct StageBreakdown {
    std::uint64_t messenger_ns = 0;
    std::uint64_t queue_ns = 0;
    std::uint64_t objectstore_ns = 0;
    std::uint64_t replication_ns = 0;
    std::uint64_t reply_ns = 0;
    std::uint64_t total_ns = 0;

    [[nodiscard]] std::uint64_t sum() const noexcept {
      return messenger_ns + queue_ns + objectstore_ns + replication_ns + reply_ns;
    }
  };
  [[nodiscard]] StageBreakdown stage_breakdown() const;

  /// Trace identity of this op (zero when unsampled): the context of the
  /// op-level span (`osd.op` / `client.op`), so admin-socket op dumps and
  /// trace dumps cross-reference by trace_id/span_id.
  void set_trace(const trace::TraceContext& ctx) noexcept { trace_ = ctx; }
  [[nodiscard]] const trace::TraceContext& trace() const noexcept { return trace_; }

  /// The op-level RAII span, owned here so it lives exactly as long as the
  /// op is in flight (partial on crash, ended at retirement).
  void adopt_span(trace::Span sp) noexcept { span_ = std::move(sp); }
  [[nodiscard]] trace::Span& span() noexcept { return span_; }

  /// {"description":..., "initiated_at":..., "events":[{event,at},...]}
  void dump(JsonWriter& w) const;

 private:
  friend class OpTracker;

  std::string desc_;
  sim::Time initiated_;
  // Both set once at registration (before the op is visible to dumps).
  trace::TraceContext trace_;
  trace::Span span_;
  // Guarded by the owning OpTracker's mutex_, not mutex_ below (set once at
  // registration, read at retirement) — not expressible as a static guard.
  std::uint64_t seq_ = 0;  // tracker registration id

  mutable dbg::Mutex mutex_{"osd.tracked_op"};
  std::vector<std::pair<const char*, sim::Time>> events_
      DOCEPH_GUARDED_BY(mutex_);
};
using TrackedOpRef = std::shared_ptr<TrackedOp>;

/// Registry of in-flight ops plus a bounded ring of completed "historic"
/// ops (slowest-first eviction candidates are simply the oldest — a recency
/// ring, like Ceph's OpHistory). Completed ops faster than
/// `slow_threshold` are dropped unless the threshold is zero (keep all).
class OpTracker {
 public:
  struct Config {
    std::size_t history_size = 20;        ///< historic ring capacity
    sim::Duration slow_threshold = 0;     ///< 0 = keep every completed op
  };

  OpTracker() = default;
  explicit OpTracker(Config cfg) : cfg_(cfg) {}

  /// Register a new op; `initiated` is the messenger receive stamp.
  TrackedOpRef create_op(std::string desc, sim::Time initiated);

  /// Unregister; the op moves to the historic ring if it qualifies.
  void finish_op(const TrackedOpRef& op, sim::Time now);

  [[nodiscard]] std::size_t ops_in_flight() const;
  [[nodiscard]] std::size_t history_count() const;

  /// Visit completed ops, oldest first (snapshot; ops are immutable once
  /// finished).
  void for_each_historic(const std::function<void(const TrackedOp&)>& fn) const;

  /// {"ops_in_flight": n, "ops": [...]}
  [[nodiscard]] std::string dump_ops_in_flight() const;
  /// {"history_size": n, "ops": [...oldest first...]}
  [[nodiscard]] std::string dump_historic_ops() const;

  void clear_history();

 private:
  Config cfg_;
  mutable dbg::Mutex mutex_{"osd.op_tracker"};
  std::uint64_t next_seq_ DOCEPH_GUARDED_BY(mutex_) = 1;
  std::map<std::uint64_t, TrackedOpRef> in_flight_ DOCEPH_GUARDED_BY(mutex_);
  std::deque<TrackedOpRef> history_ DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::osd
