#include "osd/op_tracker.h"

#include <algorithm>
#include <cstring>

#include "common/json.h"

namespace doceph::osd {

void TrackedOp::mark_event(const char* event, sim::Time at) {
  const dbg::LockGuard lk(mutex_);
  events_.emplace_back(event, at);
}

sim::Time TrackedOp::event_time(const char* event) const {
  const dbg::LockGuard lk(mutex_);
  for (const auto& [name, at] : events_) {
    if (std::strcmp(name, event) == 0) return at;
  }
  return -1;
}

sim::Time TrackedOp::last_event_time(const char* event) const {
  const dbg::LockGuard lk(mutex_);
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (std::strcmp(it->first, event) == 0) return it->second;
  }
  return -1;
}

TrackedOp::StageBreakdown TrackedOp::stage_breakdown() const {
  std::vector<std::pair<const char*, sim::Time>> events;
  {
    const dbg::LockGuard lk(mutex_);
    events = events_;
  }
  auto first_of = [&](const char* name) -> sim::Time {
    for (const auto& [n, at] : events)
      if (std::strcmp(n, name) == 0) return at;
    return -1;
  };
  auto last_of = [&](const char* name) -> sim::Time {
    for (auto it = events.rbegin(); it != events.rend(); ++it)
      if (std::strcmp(it->first, name) == 0) return it->second;
    return -1;
  };

  StageBreakdown bd;
  const sim::Time recv = initiated_;
  sim::Time queued = first_of("queued");
  if (queued < recv) queued = recv;
  sim::Time dequeued = first_of("dequeued");
  if (dequeued < queued) dequeued = queued;
  sim::Time commit = first_of("commit");
  if (commit < dequeued) commit = dequeued;  // reads / missing commit
  sim::Time repl = last_of("repl_ack");
  if (repl < commit) repl = commit;  // no replicas, or acks beat the commit
  sim::Time reply = last_of("reply_sent");
  if (reply < repl) reply = repl;

  bd.messenger_ns = static_cast<std::uint64_t>(queued - recv);
  bd.queue_ns = static_cast<std::uint64_t>(dequeued - queued);
  bd.objectstore_ns = static_cast<std::uint64_t>(commit - dequeued);
  bd.replication_ns = static_cast<std::uint64_t>(repl - commit);
  bd.reply_ns = static_cast<std::uint64_t>(reply - repl);
  bd.total_ns = static_cast<std::uint64_t>(reply - recv);
  return bd;
}

void TrackedOp::dump(JsonWriter& w) const {
  std::vector<std::pair<const char*, sim::Time>> events;
  {
    const dbg::LockGuard lk(mutex_);
    events = events_;
  }
  w.begin_object();
  w.kv("description", desc_);
  w.kv("initiated_at_ns", initiated_);
  if (trace_.valid()) {
    w.kv("trace_id", trace_.trace_id);
    w.kv("span_id", trace_.span_id);
  }
  if (!events.empty()) {
    const sim::Time last = events.back().second;
    w.kv("age_ns", last - initiated_);
  }
  w.key("events");
  w.begin_array();
  for (const auto& [name, at] : events) {
    w.begin_object();
    w.kv("event", name);
    w.kv("at_ns", at);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// ---- OpTracker -------------------------------------------------------------------

TrackedOpRef OpTracker::create_op(std::string desc, sim::Time initiated) {
  auto op = std::make_shared<TrackedOp>(std::move(desc), initiated);
  const dbg::LockGuard lk(mutex_);
  op->seq_ = next_seq_++;
  in_flight_.emplace(op->seq_, op);
  return op;
}

void OpTracker::finish_op(const TrackedOpRef& op, sim::Time now) {
  if (!op) return;
  const dbg::LockGuard lk(mutex_);
  if (in_flight_.erase(op->seq_) == 0) return;  // already retired
  if (cfg_.history_size == 0) return;
  if (cfg_.slow_threshold > 0 && now - op->initiated_at() < cfg_.slow_threshold)
    return;
  history_.push_back(op);
  while (history_.size() > cfg_.history_size) history_.pop_front();
}

std::size_t OpTracker::ops_in_flight() const {
  const dbg::LockGuard lk(mutex_);
  return in_flight_.size();
}

std::size_t OpTracker::history_count() const {
  const dbg::LockGuard lk(mutex_);
  return history_.size();
}

void OpTracker::for_each_historic(
    const std::function<void(const TrackedOp&)>& fn) const {
  std::deque<TrackedOpRef> snap;
  {
    const dbg::LockGuard lk(mutex_);
    snap = history_;
  }
  for (const auto& op : snap) fn(*op);
}

std::string OpTracker::dump_ops_in_flight() const {
  std::vector<TrackedOpRef> snap;
  {
    const dbg::LockGuard lk(mutex_);
    snap.reserve(in_flight_.size());
    for (const auto& [seq, op] : in_flight_) snap.push_back(op);
  }
  JsonWriter w;
  w.begin_object();
  w.kv("ops_in_flight", static_cast<std::uint64_t>(snap.size()));
  w.key("ops");
  w.begin_array();
  for (const auto& op : snap) op->dump(w);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string OpTracker::dump_historic_ops() const {
  std::deque<TrackedOpRef> snap;
  {
    const dbg::LockGuard lk(mutex_);
    snap = history_;
  }
  JsonWriter w;
  w.begin_object();
  w.kv("history_size", static_cast<std::uint64_t>(snap.size()));
  w.key("ops");
  w.begin_array();
  for (const auto& op : snap) {
    w.begin_object();
    w.kv("description", op->description());
    const auto bd = op->stage_breakdown();
    w.kv("duration_ns", bd.total_ns);
    w.key("stages");
    w.begin_object();
    w.kv("messenger_ns", bd.messenger_ns);
    w.kv("queue_ns", bd.queue_ns);
    w.kv("objectstore_ns", bd.objectstore_ns);
    w.kv("replication_ns", bd.replication_ns);
    w.kv("reply_ns", bd.reply_ns);
    w.end_object();
    w.key("op");
    op->dump(w);  // full event list follows the summary
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void OpTracker::clear_history() {
  const dbg::LockGuard lk(mutex_);
  history_.clear();
}

}  // namespace doceph::osd
