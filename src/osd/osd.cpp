#include "osd/osd.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/shard.h"
#include "common/json.h"
#include "common/logger.h"
#include "sim/stats.h"

namespace doceph::osd {

using crush::pg_t;
using msgr::MessageRef;

namespace {

std::string osd_op_desc(const msgr::MOSDOp& op) {
  std::string desc = "osd_op(";
  desc += msgr::osd_op_type_name(op.op);
  desc += ' ';
  desc += op.object;
  desc += ')';
  return desc;
}

/// Per-PG ordering token for enqueue_op_on. Bit 63 keeps every token
/// distinct from 0 (the unordered marker); a cross-pool collision below it
/// only over-serializes, never under-serializes.
std::uint64_t pg_ord(std::int64_t pool, std::uint32_t pg_seed) {
  return (1ull << 63) | (static_cast<std::uint64_t>(pool) << 32) | pg_seed;
}

}  // namespace

OSD::OSD(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
         sim::CpuDomain* domain, os::ObjectStore& store, net::Address mon_addr,
         OsdConfig cfg)
    : env_(env),
      cfg_(cfg),
      domain_(domain),
      store_(store),
      msgr_(env, fabric, node, domain, "osd." + std::to_string(cfg.id), cfg.msgr),
      monc_(env, msgr_, mon_addr),
      tick_cv_(env.keeper(), "osd.tick_cv"),
      counters_(perf::Builder("osd", l_osd_first, l_osd_last)
                    .add_counter(l_osd_op, "op")
                    .add_counter(l_osd_op_w, "op_w")
                    .add_counter(l_osd_op_r, "op_r")
                    .add_counter(l_osd_op_in_bytes, "op_in_bytes")
                    .add_counter(l_osd_op_out_bytes, "op_out_bytes")
                    .add_histogram(l_osd_op_lat, "op_lat")
                    .add_histogram(l_osd_op_msgr_lat, "op_msgr_lat")
                    .add_histogram(l_osd_op_queue_lat, "op_queue_lat")
                    .add_histogram(l_osd_op_store_lat, "op_store_lat")
                    .add_histogram(l_osd_op_repl_lat, "op_repl_lat")
                    .add_histogram(l_osd_op_reply_lat, "op_reply_lat")
                    .add_counter(l_osd_op_throttled, "op_throttled")
                    .add_counter(l_osd_throttle_queue, "throttle_queue")
                    .add_counter(l_osd_throttle_conn, "throttle_conn")
                    .add_counter(l_osd_throttle_nearfull, "throttle_nearfull")
                    .add_gauge(l_osd_queue_depth, "queue_depth")
                    .add_gauge(l_osd_queue_depth_hw, "queue_depth_hw")
                    .add_counter(l_osd_shard_enqueues, "shard_enqueues")
                    .add_gauge(l_osd_shard_lane_hw, "shard_lane_hw")
                    .create()) {
  cfg_.op_shards = std::max(1, cfg_.op_shards);  // shard-bounds: knob >= 1
  lanes_.reserve(static_cast<std::size_t>(cfg_.op_shards));
  for (int i = 0; i < cfg_.op_shards; ++i)
    lanes_.push_back(std::make_unique<OpLane>(env.keeper()));
  msgr_.set_dispatcher(this);
  perf_.add(counters_);
  perf_.add(msgr_.counters());
  if (auto store_counters = store_.perf_counters()) perf_.add(store_counters);
}

OSD::~OSD() { shutdown(); }  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design

Status OSD::init() {
  Status st = msgr_.bind(cfg_.public_port);
  if (!st.ok()) return st;
  msgr_.start();

  monc_.set_map_callback([this](const crush::OSDMap& map) {
    // Runs on a messenger worker: refresh heartbeat targets and unblock
    // in-flight writes that were waiting on now-dead replicas.
    //
    // A new map proves every up-marked peer was alive moments ago, so the
    // liveness clock resets; keeping a stale pre-crash timestamp would trip
    // the failure detector the instant a rebooted peer rejoins.
    if (map.epoch() > 0 && !map.is_up(cfg_.id) && started_) {
      // The map says we are down but we are demonstrably running (Ceph's
      // "map wrongly marks me down" case): announce ourselves again.
      (void)monc_.send_boot(cfg_.id, msgr_.addr());
    }
    const dbg::LockGuard lk(mutex_);
    const sim::Time now = env_.now();
    for (int p = 0; p < map.num_osds(); ++p) {
      if (p == cfg_.id || !map.is_up(p)) continue;
      last_heard_[p] = now;
      reported_.erase(p);
    }
    std::vector<std::uint64_t> done;
    for (auto& [tid, op] : in_flight_) {
      std::erase_if(op.waiting_on,
                    [&](int osd) { return osd >= 0 && !map.is_up(osd); });
      if (op.waiting_on.empty()) done.push_back(tid);
    }
    for (const std::uint64_t tid : done) {
      // complete_if_done relocks; defer via the op queue.
      enqueue_op([this, tid] { complete_if_done(tid); });
    }
  });

  st = monc_.init();
  if (!st.ok()) return st;
  st = monc_.subscribe();
  if (!st.ok()) return st;
  st = monc_.send_boot(cfg_.id, msgr_.addr());
  if (!st.ok()) return st;
  while (!monc_.map().is_up(cfg_.id)) monc_.wait_for_epoch(monc_.epoch() + 1);

  {
    // Snapshot before locking: in DoCeph mode list_collections() is an RPC
    // that parks on the proxy call condvar, and osd.state must not be held
    // across that wait.
    const auto colls = store_.list_collections();
    const dbg::LockGuard lk(mutex_);
    for (const auto& c : colls) created_colls_.insert(c);
    client_inflight_.clear();  // a restart forgets pre-crash admissions
  }

  {
    const dbg::LockGuard lk(tick_mutex_);
    stopping_ = false;
  }
  for (auto& lane : lanes_) {
    const dbg::LockGuard lk(lane->mutex);
    lane->stopping = false;
  }
  // op_threads workers per lane; every worker keeps the exact "tp_osd_tp"
  // name (sim/stats classifies OSD CPU by it, and the default single-lane
  // OSD must stay byte-identical).
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (int i = 0; i < cfg_.op_threads; ++i) {
      op_workers_.emplace_back(env_.keeper(), env_.stats(), "tp_osd_tp", domain_,
                               [this, lane] { op_worker(lane); }, /*daemon=*/true);
    }
  }
  ticker_ = sim::Thread(env_.keeper(), env_.stats(),
                        "osd-tick." + std::to_string(cfg_.id), domain_,
                        [this] { tick_thread(); }, /*daemon=*/true);
  register_admin_commands();
  started_ = true;
  return Status::OK();
}

void OSD::register_admin_commands() {
  admin_.register_command("perf dump", "dump all perf-counter blocks as JSON",
                          [this](const auto&) { return perf_.dump_json(); });
  admin_.register_command("perf reset", "zero every counter and histogram",
                          [this](const auto&) {
                            perf_.reset_all();
                            return std::string("{}");
                          });
  admin_.register_command(
      "fault", "fault set <point> [k=v ...] | fault list | fault clear [point]",
      [this](const auto& args) { return env_.faults().admin_command(args); });
  admin_.register_command("dump_ops_in_flight", "list currently tracked ops",
                          [this](const auto&) { return tracker_.dump_ops_in_flight(); });
  admin_.register_command(
      "dump_historic_ops", "list recently completed ops with stage breakdowns",
      [this](const auto&) { return tracker_.dump_historic_ops(); });
  admin_.register_command(
      "trace dump",
      "dump completed spans as Chrome trace JSON; optional domain-substring arg",
      [this](const std::vector<std::string>& args) {
        return env_.tracer().dump_chrome_json(args.empty() ? std::string_view{}
                                                           : args.front());
      });
  admin_.register_command("trace reset", "discard recorded spans",
                          [this](const auto&) {
                            env_.tracer().reset();
                            return std::string("{}");
                          });
  admin_.register_command(
      "trace flight", "most recent flight-recorder snapshot (crash dump)",
      [this](const auto&) { return env_.tracer().last_flight_json(); });
  admin_.register_command(
      "dump_thread_stats", "per-thread modeled CPU time and context switches",
      [this](const auto&) {
        JsonWriter w;
        w.begin_object();
        w.key("threads");
        w.begin_array();
        env_.stats().for_each([&](const sim::ThreadStats& ts) {
          w.begin_object();
          w.kv("name", ts.name);
          w.kv("group", ts.group);
          w.kv("class", sim::thread_class_name(ts.cls));
          w.kv("cpu_ns", ts.cpu_ns.load(std::memory_order_relaxed));
          w.kv("ctx_switches", ts.ctx_switches.load(std::memory_order_relaxed));
          w.end_object();
        });
        w.end_array();
        w.end_object();
        return w.str();
      });
}

void OSD::shutdown() {
  if (!started_) return;
  started_ = false;
  stop_threads();
  msgr_.shutdown();
  admin_.unregister_all();
}

void OSD::hard_kill() {
  if (!started_) return;
  started_ = false;
  // Power loss: the NIC goes down with everything else, so peers see
  // silence — replies queued by still-draining threads land on closed
  // connections and vanish instead of escaping as error responses.
  msgr_.shutdown();
  stop_threads();
  admin_.unregister_all();
}

void OSD::stop_threads() {
  {
    const dbg::LockGuard lk(tick_mutex_);
    stopping_ = true;
    tick_cv_.notify_all();
  }
  for (auto& lane : lanes_) {
    const dbg::LockGuard lk(lane->mutex);
    lane->stopping = true;
    lane->cv.notify_all();
  }
  {
    // Unblock any tick-thread scan waits.
    const dbg::LockGuard lk(mutex_);
    for (auto& [tid, scan] : pending_scans_) {
      scan->done = true;
      scan->cv.notify_all();
    }
  }
  op_workers_.clear();  // joins
  ticker_.join();
}

// ---- dispatch -------------------------------------------------------------------

void OSD::ms_dispatch(const MessageRef& m) {
  if (monc_.handle_message(m)) return;
  switch (m->type()) {
    case msgr::MsgType::osd_op: {
      auto* op = static_cast<msgr::MOSDOp*>(m.get());
      const sim::Time recv = m->recv_stamp != 0 ? m->recv_stamp : env_.now();

      // Admission control, before the op is tracked or queued: a bounced op
      // costs one throttled reply and nothing else. Repops are exempt —
      // throttling mid-replication would wedge the primary's write.
      if (env_.faults().any_armed() &&
          env_.faults().should_fire("osd.overload", env_.now(),
                                    "osd." + std::to_string(cfg_.id))) {
        throttle_client(m, l_osd_throttle_queue, recv);
        break;
      }
      if (cfg_.max_queue_depth > 0 &&
          queue_depth_.load(std::memory_order_relaxed) >= cfg_.max_queue_depth) {
        // The depth bound covers the TOTAL across lanes, so the admission
        // envelope is shard-count invariant.
        throttle_client(m, l_osd_throttle_queue, recv);
        break;
      }
      if (cfg_.nearfull_ratio > 0 && op->op != msgr::OsdOpType::read &&
          op->op != msgr::OsdOpType::stat &&
          store_.fullness() >= cfg_.nearfull_ratio) {
        throttle_client(m, l_osd_throttle_nearfull, recv);
        break;
      }
      if (cfg_.max_conn_inflight > 0) {
        bool over = false;
        {
          const dbg::LockGuard lk(mutex_);
          int& n = client_inflight_[op->client_id];
          if (n >= cfg_.max_conn_inflight) {
            over = true;
          } else {
            ++n;  // released when reply_client answers this op
          }
        }
        if (over) {
          throttle_client(m, l_osd_throttle_conn, recv);
          break;
        }
      }

      TrackedOpRef tracked = tracker_.create_op(osd_op_desc(*op), recv);
      if (m->trace.sampled()) {
        // The op-level span opens at the wire receive stamp and lives in the
        // TrackedOp, so a crash leaves it partial in the flight recorder.
        auto sp = env_.tracer().span("osd.op", "osd." + std::to_string(cfg_.id),
                                     m->trace, recv);
        tracked->set_trace(sp.context());
        tracked->adopt_span(std::move(sp));
      }
      tracked->mark_event("queued", env_.now());
      counters_->inc(l_osd_op_in_bytes, m->data.length());
      // PG-stable routing: object -> pg is epoch-independent, so one object
      // always hashes to the same lane and the same ordering token, and
      // per-object ordering holds across map churn (DESIGN.md §15). The
      // lookup is pure computation — it charges no simulated CPU on either
      // path, so the shards=1 dispatch timing is unchanged by it.
      const crush::pg_t pg = monc_.map().object_to_pg(op->pool, op->object);
      std::size_t lane = 0;
      if (lanes_.size() > 1) {
        lane = lane_of(pg.pool, pg.seed);
        counters_->inc(l_osd_shard_enqueues);
        if (m->trace.sampled()) {
          env_.tracer().record_span(
              "osd.shard.enqueue",
              "osd." + std::to_string(cfg_.id) + ".lane" + std::to_string(lane),
              m->trace, env_.now(), env_.now());
        }
      }
      enqueue_op_on(lane, [this, m, tracked] { handle_client_op(m, tracked); },
                    pg_ord(pg.pool, pg.seed));
      break;
    }
    case msgr::MsgType::osd_repop: {
      // Repops carry their PG on the wire: same hash, same lane as the
      // primary's client op for that object.
      auto* repop = static_cast<msgr::MOSDRepOp*>(m.get());
      enqueue_op_on(lane_of(repop->pool, repop->pg_seed),
                    [this, m] { handle_repop(m); },
                    pg_ord(repop->pool, repop->pg_seed));
      break;
    }
    case msgr::MsgType::osd_repop_reply:
      handle_repop_reply(m);
      break;
    case msgr::MsgType::osd_ping:
      handle_ping(m);
      break;
    case msgr::MsgType::pg_scan: {
      auto* scan = static_cast<msgr::MPGScan*>(m.get());
      enqueue_op_on(lane_of(scan->pool, scan->pg_seed),
                    [this, m] { handle_pg_scan(m); });
      break;
    }
    case msgr::MsgType::pg_scan_reply:
      handle_pg_scan_reply(m);
      break;
    default:
      DLOG(warn, "osd") << "osd." << cfg_.id << " unexpected "
                        << msg_type_name(m->type());
  }
}

void OSD::ms_handle_reset(const msgr::ConnectionRef&) {}

std::size_t OSD::lane_of(std::int64_t pool, std::uint32_t pg_seed) const {
  return common::shard_of_pg(pool, pg_seed, lanes_.size());
}

void OSD::enqueue_op(std::function<void()> fn) {
  enqueue_op_on(0, std::move(fn));
}

void OSD::enqueue_op_on(std::size_t lane, std::function<void()> fn,
                        std::uint64_t ord) {
  OpLane& l = *lanes_[lane];
  const dbg::LockGuard lk(l.mutex);
  if (l.stopping) return;
  l.queue.push_back(OpLane::Entry{ord, std::move(fn)});
  const auto depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  counters_->set(l_osd_queue_depth, depth);
  if (depth > counters_->get(l_osd_queue_depth_hw))
    counters_->set(l_osd_queue_depth_hw, depth);
  if (lanes_.size() > 1) {
    const auto lane_depth = static_cast<std::uint64_t>(l.queue.size());
    if (lane_depth > counters_->get(l_osd_shard_lane_hw))
      counters_->set(l_osd_shard_lane_hw, lane_depth);
  }
  l.cv.notify_one();
}

void OSD::op_worker(std::size_t lane) {
  OpLane& l = *lanes_[lane];
  while (true) {
    OpLane::Entry e;
    {
      dbg::UniqueLock lk(l.mutex);
      l.cv.wait(lk, [&] {
        l.mutex.assert_held();  // predicate runs as a separate function
        // Head-of-line gate: the head stays queued while a same-token op is
        // executing on the other worker, so per-PG store submissions happen
        // in arrival order (DESIGN.md §15.1). Ops behind a gated head wait
        // too — skipping past it would reorder the lane FIFO.
        return l.stopping ||
               (!l.queue.empty() && (l.queue.front().ord == 0 ||
                                     l.executing.count(l.queue.front().ord) == 0));
      });
      if (l.stopping) return;
      e = std::move(l.queue.front());
      l.queue.pop_front();
      if (e.ord != 0) l.executing.insert(e.ord);
      counters_->set(l_osd_queue_depth,
                     queue_depth_.fetch_sub(1, std::memory_order_relaxed) - 1);
    }
    if (domain_ != nullptr) domain_->charge(cfg_.per_op_cost);
    e.fn();
    if (e.ord != 0) {
      const dbg::LockGuard lk(l.mutex);
      l.executing.erase(e.ord);
      l.cv.notify_all();  // release a head gated on this token
    }
  }
}

// ---- client ops ------------------------------------------------------------------

void OSD::reply_client(const MessageRef& req, std::int32_t result,
                       std::uint64_t version, std::uint64_t size, BufferList data,
                       const TrackedOpRef& op) {
  if (cfg_.max_conn_inflight > 0 && req->type() == msgr::MsgType::osd_op) {
    // Release this client's admission slot (taken at dispatch).
    const auto* cop = static_cast<const msgr::MOSDOp*>(req.get());
    const dbg::LockGuard lk(mutex_);
    auto it = client_inflight_.find(cop->client_id);
    if (it != client_inflight_.end() && it->second > 0) --it->second;
  }
  auto reply = std::make_shared<msgr::MOSDOpReply>();
  reply->tid = req->tid;
  reply->result = result;
  reply->object_version = version;
  reply->object_size = size;
  reply->map_epoch = monc_.epoch();
  reply->data = std::move(data);
  reply->trace = req->trace;  // the client messenger traces the reply dispatch
  req->connection->send_message(reply);
  if (op != nullptr) {
    op->mark_event("reply_sent", env_.now());
    account_op(op);
  }
}

void OSD::throttle_client(const MessageRef& req, int counter, sim::Time recv) {
  counters_->inc(l_osd_op_throttled);
  counters_->inc(counter);
  if (req->trace.sampled()) {
    env_.tracer().record_span("osd.throttle", "osd." + std::to_string(cfg_.id),
                              req->trace, recv, env_.now());
  }
  auto reply = std::make_shared<msgr::MOSDOpReply>();
  reply->tid = req->tid;
  reply->result = -static_cast<std::int32_t>(Errc::throttled);
  reply->map_epoch = monc_.epoch();
  reply->retry_after_ns = static_cast<std::uint64_t>(cfg_.throttle_retry_delay);
  reply->trace = req->trace;
  req->connection->send_message(reply);
}

void OSD::account_op(const TrackedOpRef& op) {
  const TrackedOp::StageBreakdown bd = op->stage_breakdown();
  counters_->inc(l_osd_op);
  counters_->rec(l_osd_op_lat, bd.total_ns);
  counters_->rec(l_osd_op_msgr_lat, bd.messenger_ns);
  counters_->rec(l_osd_op_queue_lat, bd.queue_ns);
  counters_->rec(l_osd_op_store_lat, bd.objectstore_ns);
  counters_->rec(l_osd_op_repl_lat, bd.replication_ns);
  counters_->rec(l_osd_op_reply_lat, bd.reply_ns);
  if (op->trace().sampled()) {
    // Retrospective per-stage children of osd.op, rebuilt from the same
    // clamped breakdown the histograms use: boundaries are cumulative, so
    // the stages tile [initiated, reply] exactly (exact-sum by construction).
    const std::string domain = "osd." + std::to_string(cfg_.id);
    auto& tr = env_.tracer();
    const std::int64_t t0 = op->initiated_at();
    const std::int64_t t1 = t0 + static_cast<std::int64_t>(bd.messenger_ns);
    const std::int64_t t2 = t1 + static_cast<std::int64_t>(bd.queue_ns);
    const std::int64_t t3 = t2 + static_cast<std::int64_t>(bd.objectstore_ns);
    const std::int64_t t4 = t3 + static_cast<std::int64_t>(bd.replication_ns);
    const std::int64_t t5 = t4 + static_cast<std::int64_t>(bd.reply_ns);
    tr.record_span("osd.stage.messenger", domain, op->trace(), t0, t1);
    tr.record_span("osd.stage.queue", domain, op->trace(), t1, t2);
    tr.record_span("osd.stage.store", domain, op->trace(), t2, t3);
    tr.record_span("osd.stage.replication", domain, op->trace(), t3, t4);
    tr.record_span("osd.stage.reply", domain, op->trace(), t4, t5);
    op->span().end(t5);
  }
  tracker_.finish_op(op, env_.now());
}

void OSD::ensure_pg_collection(const pg_t& pg, os::Transaction& txn) {
  const dbg::LockGuard lk(mutex_);
  if (created_colls_.contains(pg.to_coll())) return;
  os::Transaction pre;
  pre.create_collection(pg.to_coll());
  pre.append(std::move(txn));
  txn = std::move(pre);
  created_colls_.insert(pg.to_coll());
}

void OSD::handle_client_op(const MessageRef& m, const TrackedOpRef& tracked) {
  tracked->mark_event("dequeued", env_.now());
  auto* op = static_cast<msgr::MOSDOp*>(m.get());
  const crush::OSDMap map = monc_.map();
  const pg_t pg = map.object_to_pg(op->pool, op->object);
  const auto acting = map.pg_to_acting(pg);
  if (acting.empty() || acting.front() != cfg_.id) {
    // Not the primary (stale client map, or mid-failover).
    reply_client(m, -static_cast<std::int32_t>(Errc::busy), 0, 0, {}, tracked);
    return;
  }

  const os::ghobject_t oid{op->pool, op->object};
  switch (op->op) {
    case msgr::OsdOpType::write_full:
    case msgr::OsdOpType::write:
    case msgr::OsdOpType::remove:
      counters_->inc(l_osd_op_w);
      start_write(m, pg, acting, tracked);
      return;
    case msgr::OsdOpType::read: {
      counters_->inc(l_osd_op_r);
      auto r = store_.read(pg.to_coll(), oid, op->offset, op->length);
      tracked->mark_event("commit", env_.now());  // read served by the store
      if (!r.ok()) {
        reply_client(m, -static_cast<std::int32_t>(r.status().code()), 0, 0, {},
                     tracked);
        return;
      }
      ops_served_.fetch_add(1, std::memory_order_relaxed);
      counters_->inc(l_osd_op_out_bytes, r->length());
      reply_client(m, 0, 0, r->length(), std::move(*r), tracked);
      return;
    }
    case msgr::OsdOpType::stat: {
      counters_->inc(l_osd_op_r);
      auto r = store_.stat(pg.to_coll(), oid);
      tracked->mark_event("commit", env_.now());
      if (!r.ok()) {
        reply_client(m, -static_cast<std::int32_t>(r.status().code()), 0, 0, {},
                     tracked);
        return;
      }
      ops_served_.fetch_add(1, std::memory_order_relaxed);
      reply_client(m, 0, r->version, r->size, {}, tracked);
      return;
    }
  }
  reply_client(m, -static_cast<std::int32_t>(Errc::not_supported), 0, 0, {}, tracked);
}

void OSD::start_write(const MessageRef& m, const pg_t& pg,
                      const std::vector<int>& acting, const TrackedOpRef& tracked) {
  auto* op = static_cast<msgr::MOSDOp*>(m.get());
  const os::ghobject_t oid{op->pool, op->object};

  os::Transaction txn;
  switch (op->op) {
    case msgr::OsdOpType::write_full:
      txn.write_full(pg.to_coll(), oid, op->data);
      break;
    case msgr::OsdOpType::write:
      txn.write(pg.to_coll(), oid, op->offset, op->data);
      break;
    case msgr::OsdOpType::remove:
      txn.remove(pg.to_coll(), oid);
      break;
    default:
      reply_client(m, -static_cast<std::int32_t>(Errc::not_supported), 0, 0, {},
                   tracked);
      return;
  }
  // Travels inside the encoded transaction: replicas and (in DoCeph mode)
  // the host-side store attach their commit spans to this op's trace.
  txn.set_trace(tracked->trace());

  const std::uint64_t tid = next_tid_.fetch_add(1);
  {
    const dbg::LockGuard lk(mutex_);
    last_pg_write_[pg] = env_.now();
    InFlightOp inflight;
    inflight.client_msg = m;
    inflight.tracked = tracked;
    inflight.waiting_on.insert(-1);  // local commit
    for (const int r : acting) {
      if (r != cfg_.id) inflight.waiting_on.insert(r);
    }
    in_flight_[tid] = std::move(inflight);
  }

  // Replicate: the transaction (metadata + payload) to each replica.
  const crush::OSDMap map = monc_.map();
  BufferList txn_bl;
  txn.encode(txn_bl);
  for (const int r : acting) {
    if (r == cfg_.id) continue;
    auto con = msgr_.get_connection(map.osd(r).addr);
    if (con == nullptr) {
      const dbg::LockGuard lk(mutex_);
      in_flight_[tid].waiting_on.erase(r);
      continue;
    }
    auto repop = std::make_shared<msgr::MOSDRepOp>();
    repop->tid = tid;
    repop->pool = pg.pool;
    repop->pg_seed = pg.seed;
    repop->from_osd = cfg_.id;
    repop->map_epoch = map.epoch();
    repop->txn = txn_bl;
    repop->trace = tracked->trace();
    con->send_message(repop);
  }
  tracked->mark_event("sub_op_sent", env_.now());

  // Local apply (may prepend create_collection for this OSD only).
  ensure_pg_collection(pg, txn);
  tracked->mark_event("store_submit", env_.now());
  store_.queue_transaction(std::move(txn), [this, tid, tracked](Status st) {
    tracked->mark_event("commit", env_.now());
    {
      const dbg::LockGuard lk(mutex_);
      auto it = in_flight_.find(tid);
      if (it == in_flight_.end()) return;
      if (!st.ok()) it->second.result = -static_cast<std::int32_t>(st.code());
      it->second.waiting_on.erase(-1);
    }
    complete_if_done(tid);
  });
}

void OSD::complete_if_done(std::uint64_t tid) {
  MessageRef client_msg;
  TrackedOpRef tracked;
  std::int32_t result = 0;
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(tid);
    if (it == in_flight_.end() || !it->second.waiting_on.empty()) return;
    client_msg = it->second.client_msg;
    tracked = it->second.tracked;
    result = it->second.result;
    in_flight_.erase(it);
  }
  if (client_msg != nullptr) {
    ops_served_.fetch_add(1, std::memory_order_relaxed);
    reply_client(client_msg, result, 0, 0, {}, tracked);
  }
}

// ---- replica side ----------------------------------------------------------------

void OSD::handle_repop(const MessageRef& m) {
  auto* repop = static_cast<msgr::MOSDRepOp*>(m.get());
  os::Transaction txn;
  BufferList::Cursor cur(repop->txn);
  if (!txn.decode(cur)) {
    DLOG(warn, "osd") << "osd." << cfg_.id << " undecodable repop";
    return;
  }
  const pg_t pg{repop->pool, repop->pg_seed};
  {
    const dbg::LockGuard lk(mutex_);
    last_pg_write_[pg] = env_.now();
  }
  ensure_pg_collection(pg, txn);
  auto con = m->connection;
  const std::uint64_t tid = m->tid;
  const trace::TraceContext ctx = txn.trace();
  store_.queue_transaction(std::move(txn), [this, con, tid, ctx](Status st) {
    auto reply = std::make_shared<msgr::MOSDRepOpReply>();
    reply->tid = tid;
    reply->from_osd = cfg_.id;
    reply->result = st.ok() ? 0 : -static_cast<std::int32_t>(st.code());
    reply->trace = ctx;
    con->send_message(reply);
  });
}

void OSD::handle_repop_reply(const MessageRef& m) {
  auto* reply = static_cast<msgr::MOSDRepOpReply*>(m.get());
  TrackedOpRef tracked;
  {
    const dbg::LockGuard lk(mutex_);
    auto it = in_flight_.find(m->tid);
    if (it == in_flight_.end()) return;  // recovery push ack, or late reply
    if (reply->result != 0) it->second.result = reply->result;
    it->second.waiting_on.erase(reply->from_osd);
    tracked = it->second.tracked;
  }
  if (tracked != nullptr) tracked->mark_event("repl_ack", env_.now());
  complete_if_done(m->tid);
}

// ---- heartbeats ------------------------------------------------------------------

void OSD::handle_ping(const MessageRef& m) {
  auto* ping = static_cast<msgr::MOSDPing*>(m.get());
  if (ping->op == msgr::MOSDPing::Op::ping) {
    auto reply = std::make_shared<msgr::MOSDPing>();
    reply->op = msgr::MOSDPing::Op::reply;
    reply->from_osd = cfg_.id;
    reply->stamp_ns = ping->stamp_ns;
    m->connection->send_message(reply);
    return;
  }
  const dbg::LockGuard lk(mutex_);
  last_heard_[ping->from_osd] = env_.now();
}

void OSD::tick_thread() {
  sim::Time next_hb = env_.now();
  while (true) {
    {
      dbg::UniqueLock lk(tick_mutex_);
      (void)tick_cv_.wait_for(lk, cfg_.tick_interval);
      if (stopping_) return;
    }
    if (env_.now() >= next_hb) {
      do_heartbeats();
      next_hb = env_.now() + cfg_.heartbeat_interval;
    }
    check_recovery();
  }
}

void OSD::do_heartbeats() {
  const crush::OSDMap map = monc_.map();
  const sim::Time now = env_.now();
  for (int p = 0; p < map.num_osds(); ++p) {
    if (p == cfg_.id || !map.is_up(p)) continue;
    auto con = msgr_.get_connection(map.osd(p).addr);
    if (con != nullptr) {
      auto ping = std::make_shared<msgr::MOSDPing>();
      ping->op = msgr::MOSDPing::Op::ping;
      ping->from_osd = cfg_.id;
      ping->stamp_ns = now;
      con->send_message(ping);
    }
    // Grace check.
    bool report = false;
    {
      const dbg::LockGuard lk(mutex_);
      auto it = last_heard_.find(p);
      if (it == last_heard_.end()) {
        last_heard_[p] = now;
      } else if (now - it->second > cfg_.heartbeat_grace &&
                 !reported_.contains(p)) {
        reported_.insert(p);
        report = true;
      }
    }
    if (report) {
      DLOG(info, "osd") << "osd." << cfg_.id << " reporting osd." << p
                        << " as failed";
      (void)monc_.report_failure(p, cfg_.id);
    }
  }
}

// ---- recovery --------------------------------------------------------------------

bool OSD::all_clean() {
  const crush::epoch_t e = monc_.epoch();
  const dbg::LockGuard lk(mutex_);
  return last_seen_epoch_ == e && dirty_pgs_.empty();
}

void OSD::check_recovery() {
  const crush::OSDMap map = monc_.map();
  {
    const dbg::LockGuard lk(mutex_);
    if (map.epoch() != last_seen_epoch_) {
      last_seen_epoch_ = map.epoch();
      dirty_pgs_.clear();
      for (const auto& [pool_id, pool] : map.pools()) {
        for (std::uint32_t s = 0; s < pool.pg_num; ++s) {
          const pg_t pg{pool_id, s};
          // Recovery is driven by the AUTHORITATIVE acting member (longest
          // up), not necessarily the primary: a freshly rejoined primary has
          // stale data and must not push it over the survivor's.
          if (map.pg_authority(pg) == cfg_.id) dirty_pgs_.insert(pg);
        }
      }
    }
  }

  std::set<pg_t> todo;
  {
    const dbg::LockGuard lk(mutex_);
    todo = dirty_pgs_;
  }
  for (const auto& pg : todo) {
    const auto acting = map.pg_to_acting(pg);
    const auto* pool = map.pool(pg.pool);
    if (pool == nullptr) continue;
    if (acting.size() < pool->size) continue;  // degraded: wait for peers
    {
      // Defer while the PG is taking writes: the scan diff cannot tell
      // in-flight replication apart from loss, and pushing against live
      // traffic would thrash (and full-content scans are expensive).
      const dbg::LockGuard lk(mutex_);
      auto it = last_pg_write_.find(pg);
      if (it != last_pg_write_.end() &&
          env_.now() - it->second < cfg_.recovery_quiesce)
        continue;
    }
    recover_pg(pg, acting);
    if (monc_.epoch() != map.epoch()) return;  // map moved: restart next tick
  }
}

Result<std::vector<msgr::ObjectSummary>> OSD::scan_pg_local(const pg_t& pg) {
  std::vector<msgr::ObjectSummary> out;
  if (!store_.collection_exists(pg.to_coll())) return out;
  auto objects = store_.list_objects(pg.to_coll());
  if (!objects.ok()) return objects.status();
  for (const auto& oid : *objects) {
    auto content = store_.read(pg.to_coll(), oid, 0, 0);
    if (!content.ok()) continue;
    out.push_back({oid.name, content->length(), content->crc32c()});
  }
  return out;
}

OSD::ScanHandle OSD::start_pg_scan(const pg_t& pg, int osd) {
  ScanHandle h;
  const crush::OSDMap map = monc_.map();
  if (!map.is_up(osd)) {
    h.error = Status(Errc::not_connected, "peer down");
    return h;
  }
  auto con = msgr_.get_connection(map.osd(osd).addr);
  if (con == nullptr) {
    h.error = Status(Errc::not_connected, "peer unreachable");
    return h;
  }
  auto scan = std::make_shared<msgr::MPGScan>();
  scan->tid = next_tid_.fetch_add(1);
  scan->pool = pg.pool;
  scan->pg_seed = pg.seed;
  h.tid = scan->tid;
  h.pending = std::make_shared<PendingScan>(env_.keeper());
  {
    const dbg::LockGuard lk(mutex_);
    pending_scans_[h.tid] = h.pending;
  }
  con->send_message(scan);
  return h;
}

Result<std::vector<msgr::ObjectSummary>> OSD::wait_pg_scan(ScanHandle& h) {
  if (h.pending == nullptr) return h.error;
  dbg::UniqueLock lk(mutex_);
  const bool ok = h.pending->cv.wait_until(lk, env_.now() + cfg_.heartbeat_grace,
                                           [&] { return h.pending->done; });
  pending_scans_.erase(h.tid);
  if (!ok) return Status(Errc::timed_out, "pg scan");
  return h.pending->objects;
}

Result<std::vector<msgr::ObjectSummary>> OSD::scan_pg_remote(const pg_t& pg, int osd) {
  ScanHandle h = start_pg_scan(pg, osd);
  return wait_pg_scan(h);
}

void OSD::handle_pg_scan(const MessageRef& m) {
  auto* scan = static_cast<msgr::MPGScan*>(m.get());
  auto local = scan_pg_local(pg_t{scan->pool, scan->pg_seed});
  auto reply = std::make_shared<msgr::MPGScanReply>();
  reply->tid = m->tid;
  reply->pool = scan->pool;
  reply->pg_seed = scan->pg_seed;
  if (local.ok()) reply->objects = std::move(*local);
  m->connection->send_message(reply);
}

void OSD::handle_pg_scan_reply(const MessageRef& m) {
  auto* reply = static_cast<msgr::MPGScanReply*>(m.get());
  const dbg::LockGuard lk(mutex_);
  auto it = pending_scans_.find(m->tid);
  if (it == pending_scans_.end()) return;
  it->second->objects = std::move(reply->objects);
  it->second->done = true;
  it->second->cv.notify_all();
}

Status OSD::push_object(const pg_t& pg, int target, const std::string& name,
                        bool remove) {
  const crush::OSDMap map = monc_.map();
  if (!map.is_up(target)) return Status(Errc::not_connected, "peer down");
  auto con = msgr_.get_connection(map.osd(target).addr);
  if (con == nullptr) return Status(Errc::not_connected, "peer unreachable");

  const os::ghobject_t oid{pg.pool, name};
  os::Transaction txn;
  if (remove) {
    txn.remove(pg.to_coll(), oid);
  } else {
    auto content = store_.read(pg.to_coll(), oid, 0, 0);
    if (!content.ok()) return content.status();
    txn.write_full(pg.to_coll(), oid, std::move(*content));
  }
  auto repop = std::make_shared<msgr::MOSDRepOp>();
  repop->tid = next_tid_.fetch_add(1);
  repop->pool = pg.pool;
  repop->pg_seed = pg.seed;
  repop->from_osd = cfg_.id;
  repop->map_epoch = map.epoch();
  repop->recovery_push = true;
  txn.encode(repop->txn);
  con->send_message(repop);
  return Status::OK();
}

void OSD::recover_pg(const pg_t& pg, const std::vector<int>& acting) {
  auto local = scan_pg_local(pg);
  if (!local.ok()) return;
  std::map<std::string, msgr::ObjectSummary> mine;
  for (auto& o : *local) mine[o.name] = o;

  // Parallel scan fan-out: issue every peer's MPGScan up front, then
  // collect — mirroring the repop fan-out, recovery of a wide acting set
  // costs one scan round-trip instead of one sequential RTT per peer. With
  // a single remote peer (replicas=2, the paper testbed) the event
  // sequence is identical to the old sequential loop.
  std::vector<std::pair<int, ScanHandle>> scans;
  for (const int peer : acting) {
    if (peer == cfg_.id) continue;
    scans.emplace_back(peer, start_pg_scan(pg, peer));
  }

  bool clean = true;
  for (auto& [peer, handle] : scans) {
    auto remote = wait_pg_scan(handle);
    if (!remote.ok()) {
      clean = false;
      continue;
    }
    std::map<std::string, msgr::ObjectSummary> theirs;
    for (auto& o : *remote) theirs[o.name] = o;

    for (const auto& [name, summary] : mine) {
      auto it = theirs.find(name);
      if (it == theirs.end() || !(it->second == summary)) {
        clean = false;
        DLOG(info, "osd") << "osd." << cfg_.id << " pushing " << name << " to osd."
                          << peer;
        (void)push_object(pg, peer, name, /*remove=*/false);
      }
    }
    for (const auto& [name, summary] : theirs) {
      if (!mine.contains(name)) {
        clean = false;
        (void)push_object(pg, peer, name, /*remove=*/true);
      }
    }
  }
  if (clean) {
    const dbg::LockGuard lk(mutex_);
    dirty_pgs_.erase(pg);
  }
}

}  // namespace doceph::osd
