#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>

#include "common/admin_socket.h"
#include "common/perf_counters.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "mon/mon_client.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"
#include "os/object_store.h"
#include "osd/op_tracker.h"

namespace doceph::osd {

/// Metric indices of the per-OSD "osd" PerfCounters block.
enum {
  l_osd_first = 91000,
  l_osd_op,            ///< client ops completed (replies sent)
  l_osd_op_w,          ///< writes (write/write_full/remove)
  l_osd_op_r,          ///< reads + stats
  l_osd_op_in_bytes,   ///< client payload bytes received
  l_osd_op_out_bytes,  ///< read payload bytes returned
  l_osd_op_lat,        ///< end-to-end op latency (recv -> reply), ns histogram
  l_osd_op_msgr_lat,   ///< stage: messenger rx + dispatch
  l_osd_op_queue_lat,  ///< stage: op-queue wait
  l_osd_op_store_lat,  ///< stage: ObjectStore prep + WAL commit
  l_osd_op_repl_lat,   ///< stage: replica-ack tail beyond the local commit
  l_osd_op_reply_lat,  ///< stage: reply encode + tx hand-off
  l_osd_op_throttled,  ///< client ops bounced with Errc::throttled (total)
  l_osd_throttle_queue,    ///< ... because the op queue was full
  l_osd_throttle_conn,     ///< ... because the connection hit its in-flight cap
  l_osd_throttle_nearfull, ///< ... because the store is near-full (writes)
  l_osd_queue_depth,       ///< gauge: current op-queue depth (all lanes)
  l_osd_queue_depth_hw,    ///< gauge: high-water op-queue depth (all lanes)
  l_osd_shard_enqueues,    ///< ops hash-routed onto a lane (op_shards > 1)
  l_osd_shard_lane_hw,     ///< gauge: high-water depth of a single lane
  l_osd_last,
};

struct OsdConfig {
  int id = 0;
  std::uint16_t public_port = 6800;
  int op_threads = 2;  ///< "tp_osd_tp" worker count PER LANE

  /// Op-queue lanes: client ops and repops hash by placement group
  /// (common::shard_of_pg — the same PG-stable hash the DPU proxy's write
  /// workers use) onto this many independent dbg::-instrumented queues,
  /// each served by `op_threads` workers. Per-object ordering holds within
  /// a lane (DESIGN.md §15); clamped to >= 1 at the OSD ctor. 1 = the
  /// legacy single dispatch queue.
  int op_shards = 1;

  /// Passed to this OSD's messenger (cluster wiring plumbs the cork knobs
  /// here; the cost model keeps the messenger defaults).
  msgr::MessengerConfig msgr;

  sim::Duration heartbeat_interval = 1'000'000'000;   // 1 s
  sim::Duration heartbeat_grace = 4'000'000'000;      // 4 s
  sim::Duration tick_interval = 500'000'000;          // 500 ms

  /// OSD bookkeeping CPU per request (dispatch, PG lookup, repop
  /// accounting), charged on tp_osd_tp threads.
  sim::Duration per_op_cost = 15'000;  // 15 us

  /// Recovery scans defer while a PG has seen writes within this window:
  /// scan-based diffing cannot distinguish in-flight replication from
  /// genuinely missing objects, and (like Ceph throttling recovery under
  /// client load) catching up proceeds once the PG quiesces.
  sim::Duration recovery_quiesce = 5'000'000'000;  // 5 s

  // ---- admission control / backpressure (all OFF by default; the paper
  // profiles keep them off so the figure sweeps are unchanged) -----------
  /// Bound on op_queue_: a client op arriving while the queue holds this
  /// many entries is bounced with Errc::throttled instead of enqueued.
  /// 0 = unbounded (legacy behavior). Repops are never throttled.
  std::size_t max_queue_depth = 0;
  /// Per-client in-flight cap enforced at dispatch (0 = unlimited).
  int max_conn_inflight = 0;
  /// Server-suggested client backoff carried in throttled replies.
  sim::Duration throttle_retry_delay = 2'000'000;  // 2 ms
  /// Bounce client WRITES with throttled once store_.fullness() reaches
  /// this ratio — early shedding before the allocator or the KV WAL
  /// actually exhausts (so clients never see no_space for transient
  /// pressure). 0 = disabled.
  double nearfull_ratio = 0.0;
};

/// The Object Storage Daemon: client request handling, PG-based
/// primary-copy replication, heartbeats/failure reporting, and scan-based
/// recovery, over a pluggable ObjectStore — the component DoCeph relocates
/// onto the DPU wholesale (paper §3.1: everything here runs on the DPU's
/// ARM cores in DoCeph mode; only the ObjectStore behind it stays on the
/// host, reached through the ProxyObjectStore).
class OSD final : public msgr::Dispatcher {
 public:
  /// `store` must already be mounted. `domain` hosts all OSD threads:
  /// the host CPU domain in Baseline, the DPU domain in DoCeph mode.
  OSD(sim::Env& env, net::Fabric& fabric, net::NetNode& node,
      sim::CpuDomain* domain, os::ObjectStore& store, net::Address mon_addr,
      OsdConfig cfg);
  ~OSD() override;

  /// Boot: bind, fetch the map, announce to the MON, start workers. Must be
  /// called from a sim thread. Returns once the MON marked this OSD up.
  Status init();

  void shutdown();

  /// Power-loss variant of shutdown(): the messenger dies FIRST, so nothing
  /// the dying daemon does afterwards is externally visible — no error
  /// replies or repops escape the dead node (peers just see silence, as
  /// with a real power cut). Store completion callbacks arriving after this
  /// land on closed connections and are dropped. Call from a sim thread.
  void hard_kill();

  [[nodiscard]] int id() const noexcept { return cfg_.id; }
  [[nodiscard]] net::Address addr() const { return msgr_.addr(); }
  [[nodiscard]] crush::epoch_t map_epoch() const { return monc_.epoch(); }

  /// Ops fully processed as primary (diagnostics).
  [[nodiscard]] std::uint64_t ops_served() const noexcept { return ops_served_.load(); }

  // ---- observability ----------------------------------------------------------
  /// Admin command surface ("perf dump", "dump_ops_in_flight", ...). Commands
  /// are registered by init() and unregistered by shutdown().
  [[nodiscard]] AdminSocket& admin_socket() noexcept { return admin_; }
  /// All perf-counter blocks of this daemon ("osd" + its messenger's "msgr").
  [[nodiscard]] perf::Collection& perf_collection() noexcept { return perf_; }
  [[nodiscard]] const perf::PerfCountersRef& perf_counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] OpTracker& op_tracker() noexcept { return tracker_; }

  /// True when every PG this OSD leads has verified replica parity since the
  /// last map change (i.e. recovery is complete).
  [[nodiscard]] bool all_clean();

  // msgr::Dispatcher
  void ms_dispatch(const msgr::MessageRef& m) override;
  void ms_handle_reset(const msgr::ConnectionRef& con) override;

 private:
  /// Shared teardown tail: stop and join op workers and the ticker.
  void stop_threads();

  // ---- op pipeline -----------------------------------------------------------
  /// Route `fn` onto lane 0 (misc deferrals with no PG affinity).
  void enqueue_op(std::function<void()> fn);
  /// Route `fn` onto a specific lane (PG-hashed; see lane_of). A nonzero
  /// `ord` token serializes this op against every other op carrying the
  /// same token: the lane head is not handed to a worker while a same-token
  /// op is still executing, so per-PG store submissions happen in queue
  /// order even with op_threads > 1 (DESIGN.md §15.1).
  void enqueue_op_on(std::size_t lane, std::function<void()> fn,
                     std::uint64_t ord = 0);
  [[nodiscard]] std::size_t lane_of(std::int64_t pool, std::uint32_t pg_seed) const;
  void op_worker(std::size_t lane);

  void handle_client_op(const msgr::MessageRef& m, const TrackedOpRef& op);
  void handle_repop(const msgr::MessageRef& m);
  void handle_repop_reply(const msgr::MessageRef& m);
  void handle_ping(const msgr::MessageRef& m);
  void handle_pg_scan(const msgr::MessageRef& m);
  void handle_pg_scan_reply(const msgr::MessageRef& m);

  void reply_client(const msgr::MessageRef& req, std::int32_t result,
                    std::uint64_t version = 0, std::uint64_t size = 0,
                    BufferList data = {}, const TrackedOpRef& op = nullptr);

  /// Bounce a client op with Errc::throttled + the suggested retry delay.
  /// `counter` is the per-cause l_osd_throttle_* index. Throttled ops are
  /// never tracked and never touch the in-flight accounting.
  void throttle_client(const msgr::MessageRef& req, int counter, sim::Time recv);

  /// Stamp "reply_sent", feed the stage histograms, retire the tracked op.
  void account_op(const TrackedOpRef& op);
  void register_admin_commands();

  /// Prepend create_collection if this OSD has not materialized the PG yet.
  void ensure_pg_collection(const crush::pg_t& pg, os::Transaction& txn);

  // ---- replication ------------------------------------------------------------
  struct InFlightOp {
    msgr::MessageRef client_msg;
    TrackedOpRef tracked;
    std::set<int> waiting_on;  ///< replica osds + (-1) for the local commit
    std::int32_t result = 0;
    std::uint64_t version = 0;
  };
  void start_write(const msgr::MessageRef& m, const crush::pg_t& pg,
                   const std::vector<int>& acting, const TrackedOpRef& op);
  void complete_if_done(std::uint64_t tid);

  // ---- heartbeats / recovery ---------------------------------------------------
  void tick_thread();
  void do_heartbeats();
  void check_recovery();
  void recover_pg(const crush::pg_t& pg, const std::vector<int>& acting);
  Result<std::vector<msgr::ObjectSummary>> scan_pg_local(const crush::pg_t& pg);
  Result<std::vector<msgr::ObjectSummary>> scan_pg_remote(const crush::pg_t& pg, int osd);
  struct ScanHandle;  // in-flight remote scan (parallel recovery fan-out)
  ScanHandle start_pg_scan(const crush::pg_t& pg, int osd);
  Result<std::vector<msgr::ObjectSummary>> wait_pg_scan(ScanHandle& h);
  Status push_object(const crush::pg_t& pg, int target, const std::string& name,
                     bool remove);

  sim::Env& env_;
  OsdConfig cfg_;
  sim::CpuDomain* domain_;
  os::ObjectStore& store_;
  msgr::Messenger msgr_;
  mon::MonClient monc_;

  // Op-queue lanes feeding tp_osd_tp workers (op_shards lanes, op_threads
  // workers each). Lane mutexes share the "osd.queue" lock class; no path
  // holds two lanes at once. queue_depth_ tracks the cross-lane total so
  // admission control reads it without touching any lane lock.
  struct OpLane {
    dbg::Mutex mutex{"osd.queue"};
    dbg::CondVar cv;
    struct Entry {
      std::uint64_t ord = 0;  ///< 0 = unordered; else per-PG serial token
      std::function<void()> fn;
    };
    std::deque<Entry> queue DOCEPH_GUARDED_BY(mutex);
    /// Ordering tokens with an op currently executing on a worker. The lane
    /// head stays queued while its token is in here: with two tp_osd_tp
    /// workers per lane, dispatching consecutive same-PG ops concurrently
    /// would let their store submissions race and acked writes reorder.
    std::unordered_set<std::uint64_t> executing DOCEPH_GUARDED_BY(mutex);
    bool stopping DOCEPH_GUARDED_BY(mutex) = false;
    explicit OpLane(sim::TimeKeeper& tk) : cv(tk, "osd.queue_cv") {}
  };
  std::vector<std::unique_ptr<OpLane>> lanes_;
  std::atomic<std::size_t> queue_depth_{0};
  std::vector<sim::Thread> op_workers_;
  dbg::Mutex tick_mutex_{"osd.tick"};
  bool stopping_ DOCEPH_GUARDED_BY(tick_mutex_) = false;  // ticker only
  dbg::CondVar tick_cv_;
  sim::Thread ticker_;

  dbg::Mutex mutex_{"osd.state"};  // in-flight ops, pg state, heartbeat state
  std::atomic<std::uint64_t> next_tid_{1};
  std::map<std::uint64_t, InFlightOp> in_flight_ DOCEPH_GUARDED_BY(mutex_);
  std::set<os::coll_t> created_colls_ DOCEPH_GUARDED_BY(mutex_);

  // Per-client admitted-op counts (only maintained when max_conn_inflight
  // is enabled; decremented when the reply goes out).
  std::map<std::uint64_t, int> client_inflight_ DOCEPH_GUARDED_BY(mutex_);

  // Heartbeat bookkeeping: peer -> last reply time.
  std::map<int, sim::Time> last_heard_ DOCEPH_GUARDED_BY(mutex_);
  std::set<int> reported_ DOCEPH_GUARDED_BY(mutex_);

  // Recovery bookkeeping: PGs whose acting set changed since last clean scan.
  std::set<crush::pg_t> dirty_pgs_ DOCEPH_GUARDED_BY(mutex_);
  std::map<crush::pg_t, sim::Time> last_pg_write_ DOCEPH_GUARDED_BY(mutex_);
  crush::epoch_t last_seen_epoch_ DOCEPH_GUARDED_BY(mutex_) = 0;

  // Pending remote scans (tick thread blocks on the reply).
  struct PendingScan {
    dbg::CondVar cv;
    bool done = false;
    std::vector<msgr::ObjectSummary> objects;
    explicit PendingScan(sim::TimeKeeper& tk) : cv(tk, "osd.scan") {}
  };
  std::map<std::uint64_t, std::shared_ptr<PendingScan>> pending_scans_
      DOCEPH_GUARDED_BY(mutex_);
  struct ScanHandle {
    std::uint64_t tid = 0;
    std::shared_ptr<PendingScan> pending;  // null when the send failed
    Status error;
  };

  std::atomic<std::uint64_t> ops_served_{0};
  bool started_ = false;

  // ---- observability ----------------------------------------------------------
  OpTracker tracker_;
  perf::PerfCountersRef counters_;
  perf::Collection perf_;
  AdminSocket admin_;
};

}  // namespace doceph::osd
