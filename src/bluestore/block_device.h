#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "dbg/mutex.h"
#include "sim/env.h"
#include "sim/resource.h"

namespace doceph::bluestore {

/// Performance model of one SSD (defaults approximate the paper testbed's
/// Samsung PM893 SATA device).
struct BlockDeviceConfig {
  std::uint64_t size_bytes = 256ull << 30;
  double write_bw = 530e6;             ///< bytes/sec sequential write
  double read_bw = 550e6;              ///< bytes/sec sequential read
  sim::Duration write_latency = 60'000;   ///< per-IO latency (ns)
  sim::Duration read_latency = 90'000;
  /// Offsets below this boundary always retain their bytes (the WAL/KV
  /// region must replay after a crash); beyond it, bytes are retained only
  /// when `retain_data` — benches turn that off so multi-GB write runs don't
  /// hold multi-GB of host RAM, while the timing model is unaffected.
  std::uint64_t retain_below = 1ull << 30;
  bool retain_data = true;
  /// Fault scope: "bdev.io_error"/"bdev.latency_spike" specs match this name.
  std::string name;
};

/// Memory backing that survives BlueStore remount/crash within a process.
/// Sparse: 256 KiB chunks allocated on first write.
class DeviceBacking {
 public:
  static constexpr std::uint64_t kChunk = 256 << 10;

  void write(std::uint64_t off, const BufferList& data);
  void read(std::uint64_t off, std::uint64_t len, char* out) const;
  void discard_all() {
    const dbg::LockGuard lk(mutex_);
    chunks_.clear();
  }

 private:
  mutable dbg::Mutex mutex_{"bluestore.backing"};
  // chunk index -> bytes
  std::map<std::uint64_t, std::vector<char>> chunks_ DOCEPH_GUARDED_BY(mutex_);
};

/// The simulated block device: serializes IO through one channel at the
/// configured bandwidth plus per-IO latency; completion callbacks fire from
/// the event scheduler at the modeled instant.
class BlockDevice {
 public:
  using IoCb = std::function<void(Status)>;
  using ReadCb = std::function<void(Result<BufferList>)>;

  BlockDevice(sim::Env& env, BlockDeviceConfig cfg,
              std::shared_ptr<DeviceBacking> backing = nullptr);

  /// Disarms completions still queued on the (longer-lived) event scheduler
  /// and waits out any completion mid-execution: a crash/teardown may destroy
  /// the device with IO in flight, and a stale completion would otherwise
  /// touch freed memory.
  ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Asynchronous write; data becomes visible in the backing at completion.
  void aio_write(std::uint64_t off, BufferList data, IoCb cb);
  void aio_read(std::uint64_t off, std::uint64_t len, ReadCb cb);

  /// Synchronous read: blocks the calling sim thread for the modeled time.
  Result<BufferList> read(std::uint64_t off, std::uint64_t len);
  /// Synchronous write (used by mkfs and the KV sync thread).
  Status write(std::uint64_t off, BufferList data);

  /// Completes after everything previously submitted has completed.
  void flush(IoCb cb);

  [[nodiscard]] std::uint64_t size() const noexcept { return cfg_.size_bytes; }
  [[nodiscard]] const BlockDeviceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::shared_ptr<DeviceBacking> backing() const noexcept {
    return backing_;
  }

  /// Total bytes written/read (diagnostics, iostat-style).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_; }

 private:
  [[nodiscard]] bool in_range(std::uint64_t off, std::uint64_t len) const noexcept {
    return off + len <= cfg_.size_bytes && off + len >= off;
  }
  [[nodiscard]] bool should_retain(std::uint64_t off) const noexcept {
    return cfg_.retain_data || off < cfg_.retain_below;
  }

  /// Completion gate, shared with every scheduled completion wrapper. Plain
  /// std primitives (not dbg::): the critical sections are tiny, real-time,
  /// and must work from unregistered threads (test teardown).
  struct IoGate {
    std::mutex m;                 // doceph-lint: allow(bare-mutex) teardown gate runs on unregistered threads
    std::condition_variable cv;   // doceph-lint: allow(bare-mutex) paired with the gate mutex above
    bool alive = true;
    int executing = 0;
  };

  /// Schedule `work` at simulated time `done`; `work` is dropped if the
  /// device is destroyed first, and the destructor waits for it otherwise.
  void schedule_io(sim::Time done, std::function<void()> work);

  /// Consult "bdev.io_error" / "bdev.latency_spike" fault points for one IO.
  void fault_adjust(sim::Time& done, bool& fail);

  sim::Env& env_;
  BlockDeviceConfig cfg_;
  std::shared_ptr<DeviceBacking> backing_;
  sim::SerialResource channel_;
  std::shared_ptr<IoGate> gate_ = std::make_shared<IoGate>();
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace doceph::bluestore
