#include "bluestore/kv.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"
#include "common/logger.h"

namespace doceph::bluestore {
namespace {

constexpr std::uint32_t kWalMagic = 0xB1E57A6E;
constexpr std::uint8_t kKindCheckpoint = 1;
constexpr std::uint8_t kKindTxn = 2;
constexpr std::size_t kRecHeader = 4 + 1 + 8 + 8 + 4;  // magic kind gen seq len
constexpr std::size_t kRecTrailer = 4;                 // crc
constexpr std::size_t kChunkHdr = 4 + 4;  // checkpoint chunk_index + total_chunks

/// Serialize one WAL record.
BufferList make_record(std::uint8_t kind, std::uint64_t gen, std::uint64_t seq,
                       const BufferList& payload) {
  BufferList rec;
  doceph::encode(kWalMagic, rec);
  doceph::encode(kind, rec);
  doceph::encode(gen, rec);
  doceph::encode(seq, rec);
  doceph::encode(static_cast<std::uint32_t>(payload.length()), rec);
  rec.append(payload);
  // CRC over everything after the magic.
  const BufferList body = rec.substr(4, rec.length() - 4);
  doceph::encode(body.crc32c(), rec);
  return rec;
}

struct ParsedRecord {
  std::uint8_t kind = 0;
  std::uint64_t gen = 0;
  std::uint64_t seq = 0;
  BufferList payload;
  std::uint64_t total_len = 0;
};

}  // namespace

KvStore::KvStore(sim::Env& env, BlockDevice& dev, std::uint64_t wal_off,
                 std::uint64_t wal_len, sim::CpuDomain* domain, KvCostModel costs)
    : env_(env),
      dev_(dev),
      wal_off_(wal_off),
      wal_len_(wal_len),
      domain_(domain),
      costs_(costs),
      queue_cv_(env.keeper(), "bluestore.kv_queue_cv") {
  assert(wal_len_ >= 2 << 20 && "WAL region too small");
}

KvStore::~KvStore() {  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design
  if (running_) crash();
}

Status KvStore::mkfs() {
  assert(!running_);
  {
    const dbg::WriteLockGuard lk(map_mutex_);
    map_.clear();
    map_bytes_ = 0;
  }
  generation_ = 1;
  active_segment_ = 0;
  return write_checkpoint_locked(0, 1);
}

Status KvStore::write_checkpoint_locked(int segment, std::uint64_t generation) {
  BufferList snapshot;
  {
    const dbg::ReadLockGuard lk(map_mutex_);
    doceph::encode(map_, snapshot);
  }
  // Chained checkpoint: one or two kKindCheckpoint records, each carrying
  // (chunk_index, total_chunks) ahead of its slice of the snapshot (the seq
  // field doubles as the chunk index). The common case is a single chunk at
  // the head of `segment`; an oversized snapshot spills its remainder once
  // into the head of the other segment. Write order — target segment first,
  // spill second — keeps the previous generation's checkpoint recoverable
  // until the chain is complete (the spill write is what overwrites it).
  // Journal headroom: the segment where appends resume after the roll must
  // keep room for subsequent txn records, or the store wedges — every roll
  // would rewrite the same snapshot and still reject the record that forced
  // it. A snapshot that would leave less than this in its own segment
  // spills into the other one instead (the spill chunk is small there, so
  // appends after it see nearly a full segment).
  const std::uint64_t chunk_cap =
      segment_len() - (kRecHeader + kChunkHdr + kRecTrailer);
  const std::uint64_t headroom =
      std::min<std::uint64_t>(4 << 20, segment_len() / 8);
  const std::uint64_t single_cap = chunk_cap - headroom;
  const std::uint32_t total = snapshot.length() > single_cap ? 2 : 1;
  const std::uint64_t first_len =
      std::min<std::uint64_t>(snapshot.length(), chunk_cap);
  const std::uint64_t spill_len = snapshot.length() - first_len;
  if (spill_len > single_cap) {
    return Status(Errc::no_space,
                  "KV checkpoint exceeds WAL region: snapshot " +
                      std::to_string(snapshot.length()) + " B > " +
                      std::to_string(chunk_cap + single_cap) +
                      " B chained capacity");
  }
  auto chunk_record = [&](std::uint32_t index, std::uint64_t off,
                          std::uint64_t len) {
    BufferList payload;
    doceph::encode(index, payload);
    doceph::encode(total, payload);
    payload.append(snapshot.substr(off, len));
    return make_record(kKindCheckpoint, generation, index, payload);
  };

  BufferList first = chunk_record(0, 0, first_len);
  int end_seg = segment;
  std::uint64_t end_off = segment_off(segment) + first.length();
  Status st = dev_.write(segment_off(segment), first);
  if (!st.ok()) return st;
  if (total == 2) {
    BufferList second = chunk_record(1, first_len, spill_len);
    end_seg = 1 - segment;
    end_off = segment_off(end_seg) + second.length();
    st = dev_.write(segment_off(end_seg), second);
    if (!st.ok()) return st;
  }
  active_segment_ = end_seg;
  generation_ = generation;
  append_off_ = end_off;
  next_seq_ = 1;
  return Status::OK();
}

Status KvStore::mount() {
  assert(!running_);
  const Status st = replay();
  if (!st.ok()) return st;
  {
    const dbg::LockGuard lk(queue_mutex_);
    stopping_ = false;
  }
  running_ = true;
  thread_ = sim::Thread(env_.keeper(), env_.stats(), "bstore_kv_sync", domain_,
                        [this] { sync_thread(); }, /*daemon=*/true);
  return Status::OK();
}

Status KvStore::replay() {
  // Helper to parse one record at an absolute offset within a segment.
  auto read_record = [&](std::uint64_t off, std::uint64_t seg_end)
      -> std::optional<ParsedRecord> {
    if (off + kRecHeader + kRecTrailer > seg_end) return std::nullopt;
    auto hdr = dev_.read(off, kRecHeader);
    if (!hdr.ok()) return std::nullopt;
    BufferList::Cursor cur(*hdr);
    std::uint32_t magic = 0;
    ParsedRecord rec;
    std::uint32_t payload_len = 0;
    if (!doceph::decode(magic, cur) || magic != kWalMagic ||
        !doceph::decode(rec.kind, cur) || !doceph::decode(rec.gen, cur) ||
        !doceph::decode(rec.seq, cur) || !doceph::decode(payload_len, cur))
      return std::nullopt;
    if (off + kRecHeader + payload_len + kRecTrailer > seg_end) return std::nullopt;
    auto rest = dev_.read(off + kRecHeader, payload_len + kRecTrailer);
    if (!rest.ok()) return std::nullopt;
    rec.payload = rest->substr(0, payload_len);
    const BufferList crc_bl = rest->substr(payload_len, kRecTrailer);
    BufferList::Cursor ccur(crc_bl);
    std::uint32_t stored_crc = 0;
    (void)doceph::decode(stored_crc, ccur);
    BufferList body = hdr->substr(4, kRecHeader - 4);
    body.append(rec.payload);
    if (body.crc32c() != stored_crc) return std::nullopt;
    rec.total_len = kRecHeader + payload_len + kRecTrailer;
    return rec;
  };

  // Reassemble one checkpoint chain starting at `seg`'s head: a chunk-0
  // record, plus (for a spanning checkpoint) the matching chunk-1 record at
  // the other segment's head. Incomplete chains (crash between the two
  // chunk writes) yield nullopt so discovery falls back to the other
  // generation.
  struct Chain {
    std::uint64_t gen = 0;
    BufferList snapshot;
    int end_seg = 0;
    std::uint64_t end_off = 0;
  };
  auto chunk_of = [](const ParsedRecord& rec)
      -> std::optional<std::pair<std::uint32_t, std::uint32_t>> {
    if (rec.kind != kKindCheckpoint || rec.payload.length() < kChunkHdr)
      return std::nullopt;
    BufferList::Cursor cur(rec.payload);
    std::uint32_t index = 0;
    std::uint32_t total = 0;
    if (!doceph::decode(index, cur) || !doceph::decode(total, cur))
      return std::nullopt;
    return std::make_pair(index, total);
  };
  auto read_chain = [&](int seg) -> std::optional<Chain> {
    auto head = read_record(segment_off(seg), segment_off(seg) + segment_len());
    if (!head) return std::nullopt;
    auto ct = chunk_of(*head);
    if (!ct || ct->first != 0 || ct->second < 1 || ct->second > 2)
      return std::nullopt;
    Chain chain;
    chain.gen = head->gen;
    chain.snapshot =
        head->payload.substr(kChunkHdr, head->payload.length() - kChunkHdr);
    chain.end_seg = seg;
    chain.end_off = segment_off(seg) + head->total_len;
    if (ct->second == 2) {
      const int other = 1 - seg;
      auto spill =
          read_record(segment_off(other), segment_off(other) + segment_len());
      if (!spill || spill->gen != head->gen) return std::nullopt;
      auto sct = chunk_of(*spill);
      if (!sct || sct->first != 1 || sct->second != 2) return std::nullopt;
      chain.snapshot.append(
          spill->payload.substr(kChunkHdr, spill->payload.length() - kChunkHdr));
      chain.end_seg = other;
      chain.end_off = segment_off(other) + spill->total_len;
    }
    return chain;
  };

  // Find the newest complete checkpoint chain.
  std::optional<Chain> best;
  for (int seg = 0; seg < 2; ++seg) {
    auto chain = read_chain(seg);
    if (chain && (!best || chain->gen >= best->gen)) best = std::move(chain);
  }
  if (!best) return Status(Errc::corrupt, "no KV checkpoint found (mkfs?)");
  const std::uint64_t best_gen = best->gen;

  {
    const dbg::WriteLockGuard lk(map_mutex_);
    map_.clear();
    BufferList::Cursor cur(best->snapshot);
    if (!doceph::decode(map_, cur))
      return Status(Errc::corrupt, "bad KV checkpoint payload");
    map_bytes_ = 0;
    for (const auto& [k, v] : map_) map_bytes_ += k.size() + v.length();
  }

  // Replay txn records after the checkpoint. Valid records carry strictly
  // increasing seq under the checkpoint's generation; replay stops at the
  // first hole — a torn/corrupt record (bad CRC), a stale-generation
  // record, or a non-increasing seq. Gaps in seq are tolerated (historical
  // logs could skip numbers when a mid-roll write failed; since the chunked
  // sync_thread stamps seqs only on durable writes, new logs are gapless).
  const std::uint64_t seg_end = segment_off(best->end_seg) + segment_len();
  std::uint64_t off = best->end_off;
  std::uint64_t seq = 0;
  while (true) {
    auto rec = read_record(off, seg_end);
    if (!rec || rec->kind != kKindTxn || rec->gen != best_gen || rec->seq <= seq)
      break;
    KvTxn txn;
    BufferList::Cursor cur(rec->payload);
    if (!txn.decode(cur)) break;
    {
      const dbg::WriteLockGuard lk(map_mutex_);
      apply_locked(txn);
    }
    seq = rec->seq;
    off += rec->total_len;
  }

  active_segment_ = best->end_seg;
  generation_ = best_gen;
  append_off_ = off;
  next_seq_ = seq + 1;
  return Status::OK();
}

Status KvStore::umount() {
  if (!running_) return Status::OK();
  {
    const dbg::LockGuard lk(queue_mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  thread_.join();
  running_ = false;
  return Status::OK();
}

void KvStore::crash() {
  std::deque<std::pair<KvTxn, OnCommit>> dropped;
  {
    const dbg::LockGuard lk(queue_mutex_);
    stopping_ = true;
    dropped.swap(queue_);  // power loss: queued txns never reach the WAL
    queue_cv_.notify_all();
  }
  thread_.join();
  running_ = false;
  for (auto& [txn, cb] : dropped) {
    if (cb) cb(Status(Errc::shutting_down, "kv store crashed"));
  }
}

void KvStore::queue(KvTxn txn, OnCommit cb) {
  const dbg::LockGuard lk(queue_mutex_);
  assert(running_ && !stopping_);
  queue_.emplace_back(std::move(txn), std::move(cb));
  queue_cv_.notify_one();
}

Status KvStore::submit(KvTxn txn) {
  dbg::Mutex m{"bluestore.kv_submit"};
  dbg::CondVar cv(env_.keeper(), "bluestore.kv_submit");
  bool done = false;
  Status result;
  queue(std::move(txn), [&](Status st) {
    const dbg::LockGuard lk(m);
    result = st;
    done = true;
    cv.notify_all();
  });
  dbg::UniqueLock lk(m);
  cv.wait(lk, [&] { return done; });
  return result;
}

void KvStore::sync_thread() {
  while (true) {
    std::deque<std::pair<KvTxn, OnCommit>> batch;
    {
      dbg::UniqueLock lk(queue_mutex_);
      queue_cv_.wait(lk, [&] {
        queue_mutex_.assert_held();  // predicate runs as a separate function
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty() && stopping_) return;
      batch.swap(queue_);
    }

    // Serialize every txn once; records are stamped per chunk below, so a
    // failed write never consumes sequence numbers (no replay-visible gaps).
    std::vector<BufferList> payloads;
    payloads.reserve(batch.size());
    std::uint64_t bytes = 0;
    for (const auto& [txn, cb] : batch) {
      BufferList payload;
      txn.encode(payload);
      bytes += payload.length() + kRecHeader + kRecTrailer;
      payloads.push_back(std::move(payload));
    }

    if (domain_ != nullptr) {
      domain_->charge(costs_.per_txn * static_cast<sim::Duration>(batch.size()) +
                      static_cast<sim::Duration>(costs_.per_byte_ns *
                                                 static_cast<double>(bytes)));
    }

    // Group commit in segment-sized chunks: pack consecutive records while
    // they fit the active segment, make the chunk durable, apply + ack it,
    // then roll to the other segment and continue with the remainder. Each
    // chunk is applied to the map BEFORE any roll so the roll's checkpoint
    // (a map snapshot) covers every record already acknowledged.
    std::size_t idx = 0;
    bool at_fresh_checkpoint = false;  // nothing appended since the last roll
    while (idx < batch.size()) {
      const std::uint64_t seg_end = segment_off(active_segment_) + segment_len();
      BufferList wal_bl;
      std::size_t end = idx;
      while (end < batch.size()) {
        BufferList rec = make_record(kKindTxn, generation_,
                                     next_seq_ + (end - idx), payloads[end]);
        if (append_off_ + wal_bl.length() + rec.length() > seg_end) break;
        wal_bl.claim_append(rec);
        ++end;
      }

      if (end == idx) {
        // The next record does not fit the active segment's tail.
        if (at_fresh_checkpoint) {
          // ... not even at the head of a freshly checkpointed segment: the
          // record can never be stored. Reject it; writing it anyway would
          // overflow into the other segment's checkpoint and the record
          // would silently vanish at the next replay.
          if (auto& cb = batch[idx].second)
            cb(Status(Errc::no_space, "KV txn record exceeds WAL segment"));
          ++idx;
          continue;
        }
        const Status st = write_checkpoint_locked(1 - active_segment_, generation_ + 1);
        if (!st.ok()) {
          // The roll failed before anything was stamped under the new
          // generation: generation_/next_seq_ are untouched, so no sequence
          // numbers leak. Fail the remainder of the batch — committing a
          // later chunk after dropping an earlier one would reorder writes.
          for (std::size_t i = idx; i < batch.size(); ++i)
            if (auto& cb = batch[i].second) cb(st);
          break;
        }
        at_fresh_checkpoint = true;
        continue;
      }

      const Status st = dev_.write(append_off_, wal_bl);  // durable before apply
      if (!st.ok()) {
        // The media is untouched and this chunk's sequence numbers were
        // never consumed; fail the remainder (ordering, as above).
        for (std::size_t i = idx; i < batch.size(); ++i)
          if (auto& cb = batch[i].second) cb(st);
        break;
      }
      append_off_ += wal_bl.length();
      next_seq_ += end - idx;
      at_fresh_checkpoint = false;
      {
        const dbg::WriteLockGuard lk(map_mutex_);
        for (std::size_t i = idx; i < end; ++i) apply_locked(batch[i].first);
      }
      committed_.fetch_add(end - idx, std::memory_order_relaxed);
      for (std::size_t i = idx; i < end; ++i)
        if (auto& cb = batch[i].second) cb(Status::OK());
      idx = end;
    }
  }
}

void KvStore::apply_locked(const KvTxn& txn) {
  for (const auto& [k, v] : txn.sets) {
    auto it = map_.find(k);
    if (it != map_.end())
      map_bytes_ -= k.size() + it->second.length();
    map_bytes_ += k.size() + v.length();
    map_[k] = v;
  }
  for (const auto& k : txn.rms) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      map_bytes_ -= k.size() + it->second.length();
      map_.erase(it);
    }
  }
}

std::optional<BufferList> KvStore::get(const std::string& key) const {
  const dbg::ReadLockGuard lk(map_mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::contains(const std::string& key) const {
  const dbg::ReadLockGuard lk(map_mutex_);
  return map_.contains(key);
}

void KvStore::for_each_prefix(
    const std::string& prefix,
    const std::function<void(const std::string&, const BufferList&)>& fn) const {
  const dbg::ReadLockGuard lk(map_mutex_);
  for (auto it = map_.lower_bound(prefix);
       it != map_.end() && it->first.starts_with(prefix); ++it) {
    fn(it->first, it->second);
  }
}

std::size_t KvStore::num_keys() const {
  const dbg::ReadLockGuard lk(map_mutex_);
  return map_.size();
}

std::uint64_t KvStore::map_bytes() const {
  const dbg::ReadLockGuard lk(map_mutex_);
  return map_bytes_;
}

}  // namespace doceph::bluestore
