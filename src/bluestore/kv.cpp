#include "bluestore/kv.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"
#include "common/logger.h"
#include "common/shard.h"

namespace doceph::bluestore {
namespace {

constexpr std::uint32_t kWalMagic = 0xB1E57A6E;
constexpr std::uint8_t kKindCheckpoint = 1;
constexpr std::uint8_t kKindTxn = 2;
constexpr std::size_t kRecHeader = 4 + 1 + 8 + 8 + 4;  // magic kind gen seq len
constexpr std::size_t kRecTrailer = 4;                 // crc
constexpr std::size_t kChunkHdr = 4 + 4;  // checkpoint chunk_index + total_chunks

/// Serialize one WAL record.
BufferList make_record(std::uint8_t kind, std::uint64_t gen, std::uint64_t seq,
                       const BufferList& payload) {
  BufferList rec;
  doceph::encode(kWalMagic, rec);
  doceph::encode(kind, rec);
  doceph::encode(gen, rec);
  doceph::encode(seq, rec);
  doceph::encode(static_cast<std::uint32_t>(payload.length()), rec);
  rec.append(payload);
  // CRC over everything after the magic.
  const BufferList body = rec.substr(4, rec.length() - 4);
  doceph::encode(body.crc32c(), rec);
  return rec;
}

struct ParsedRecord {
  std::uint8_t kind = 0;
  std::uint64_t gen = 0;
  std::uint64_t seq = 0;
  BufferList payload;
  std::uint64_t total_len = 0;
};

}  // namespace

KvStore::KvStore(sim::Env& env, BlockDevice& dev, std::uint64_t wal_off,
                 std::uint64_t wal_len, sim::CpuDomain* domain, KvCostModel costs,
                 int shards, ShardKeyFn shard_key)
    : env_(env),
      dev_(dev),
      wal_off_(wal_off),
      wal_len_(wal_len),
      domain_(domain),
      costs_(costs),
      shard_key_(std::move(shard_key)) {
  shards = std::max(1, shards);  // *_shards knobs are clamped to >= 1 at parse
  assert(wal_len_ / static_cast<std::uint64_t>(shards) >= 2 << 20 &&
         "WAL sub-region per shard too small");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (std::size_t i = 0; i < static_cast<std::size_t>(shards); ++i)
    shards_.push_back(std::make_unique<Shard>(env.keeper(), i));
}

KvStore::~KvStore() {  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design
  if (running_) crash();
}

std::uint64_t KvStore::shard_wal_off(const Shard& s) const noexcept {
  return wal_off_ + s.index * shard_wal_len();
}

std::size_t KvStore::shard_of(const std::string& key) const {
  if (shards_.size() == 1) return 0;
  const std::string_view token =
      shard_key_ ? shard_key_(key) : std::string_view(key);
  return common::shard_of_key(token, shards_.size());
}

Status KvStore::mkfs() {
  assert(!running_);
  for (auto& sp : shards_) {
    Shard& s = *sp;
    {
      const dbg::WriteLockGuard lk(s.map_mutex);
      s.map.clear();
      s.map_bytes = 0;
    }
    s.generation = 1;
    s.active_segment = 0;
    const Status st = write_checkpoint(s, 0, 1);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status KvStore::write_checkpoint(Shard& s, int segment, std::uint64_t generation) {
  BufferList snapshot;
  {
    const dbg::ReadLockGuard lk(s.map_mutex);
    doceph::encode(s.map, snapshot);
  }
  // Chained checkpoint: one or two kKindCheckpoint records, each carrying
  // (chunk_index, total_chunks) ahead of its slice of the snapshot (the seq
  // field doubles as the chunk index). The common case is a single chunk at
  // the head of `segment`; an oversized snapshot spills its remainder once
  // into the head of the other segment. Write order — target segment first,
  // spill second — keeps the previous generation's checkpoint recoverable
  // until the chain is complete (the spill write is what overwrites it).
  // Journal headroom: the segment where appends resume after the roll must
  // keep room for subsequent txn records, or the store wedges — every roll
  // would rewrite the same snapshot and still reject the record that forced
  // it. A snapshot that would leave less than this in its own segment
  // spills into the other one instead (the spill chunk is small there, so
  // appends after it see nearly a full segment).
  const std::uint64_t chunk_cap =
      segment_len() - (kRecHeader + kChunkHdr + kRecTrailer);
  const std::uint64_t headroom =
      std::min<std::uint64_t>(4 << 20, segment_len() / 8);
  const std::uint64_t single_cap = chunk_cap - headroom;
  const std::uint32_t total = snapshot.length() > single_cap ? 2 : 1;
  const std::uint64_t first_len =
      std::min<std::uint64_t>(snapshot.length(), chunk_cap);
  const std::uint64_t spill_len = snapshot.length() - first_len;
  if (spill_len > single_cap) {
    return Status(Errc::no_space,
                  "KV checkpoint exceeds WAL region: snapshot " +
                      std::to_string(snapshot.length()) + " B > " +
                      std::to_string(chunk_cap + single_cap) +
                      " B chained capacity");
  }
  auto chunk_record = [&](std::uint32_t index, std::uint64_t off,
                          std::uint64_t len) {
    BufferList payload;
    doceph::encode(index, payload);
    doceph::encode(total, payload);
    payload.append(snapshot.substr(off, len));
    return make_record(kKindCheckpoint, generation, index, payload);
  };

  BufferList first = chunk_record(0, 0, first_len);
  int end_seg = segment;
  std::uint64_t end_off = segment_off(s, segment) + first.length();
  Status st = dev_.write(segment_off(s, segment), first);
  if (!st.ok()) return st;
  if (total == 2) {
    BufferList second = chunk_record(1, first_len, spill_len);
    end_seg = 1 - segment;
    end_off = segment_off(s, end_seg) + second.length();
    st = dev_.write(segment_off(s, end_seg), second);
    if (!st.ok()) return st;
  }
  s.active_segment = end_seg;
  s.generation = generation;
  s.append_off = end_off;
  s.next_seq = 1;
  return Status::OK();
}

Status KvStore::mount() {
  assert(!running_);
  for (auto& sp : shards_) {
    const Status st = replay(*sp);
    if (!st.ok()) return st;
  }
  for (auto& sp : shards_) {
    const dbg::LockGuard lk(sp->queue_mutex);
    sp->stopping = false;
  }
  running_ = true;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    // Shard 0 keeps the exact legacy thread name: sim/stats classifies by
    // the "bstore_" prefix and the default single-shard store must stay
    // byte-identical.
    const std::string name =
        s.index == 0 ? "bstore_kv_sync"
                     : "bstore_kv_sync." + std::to_string(s.index);
    s.thread = sim::Thread(env_.keeper(), env_.stats(), name, domain_,
                           [this, &s] { sync_thread(s); }, /*daemon=*/true);
  }
  return Status::OK();
}

Status KvStore::replay(Shard& s) {
  // Helper to parse one record at an absolute offset within a segment.
  auto read_record = [&](std::uint64_t off, std::uint64_t seg_end)
      -> std::optional<ParsedRecord> {
    if (off + kRecHeader + kRecTrailer > seg_end) return std::nullopt;
    auto hdr = dev_.read(off, kRecHeader);
    if (!hdr.ok()) return std::nullopt;
    BufferList::Cursor cur(*hdr);
    std::uint32_t magic = 0;
    ParsedRecord rec;
    std::uint32_t payload_len = 0;
    if (!doceph::decode(magic, cur) || magic != kWalMagic ||
        !doceph::decode(rec.kind, cur) || !doceph::decode(rec.gen, cur) ||
        !doceph::decode(rec.seq, cur) || !doceph::decode(payload_len, cur))
      return std::nullopt;
    if (off + kRecHeader + payload_len + kRecTrailer > seg_end) return std::nullopt;
    auto rest = dev_.read(off + kRecHeader, payload_len + kRecTrailer);
    if (!rest.ok()) return std::nullopt;
    rec.payload = rest->substr(0, payload_len);
    const BufferList crc_bl = rest->substr(payload_len, kRecTrailer);
    BufferList::Cursor ccur(crc_bl);
    std::uint32_t stored_crc = 0;
    (void)doceph::decode(stored_crc, ccur);
    BufferList body = hdr->substr(4, kRecHeader - 4);
    body.append(rec.payload);
    if (body.crc32c() != stored_crc) return std::nullopt;
    rec.total_len = kRecHeader + payload_len + kRecTrailer;
    return rec;
  };

  // Reassemble one checkpoint chain starting at `seg`'s head: a chunk-0
  // record, plus (for a spanning checkpoint) the matching chunk-1 record at
  // the other segment's head. Incomplete chains (crash between the two
  // chunk writes) yield nullopt so discovery falls back to the other
  // generation.
  struct FoundChain {
    std::uint64_t gen = 0;
    BufferList snapshot;
    int end_seg = 0;
    std::uint64_t end_off = 0;
  };
  auto chunk_of = [](const ParsedRecord& rec)
      -> std::optional<std::pair<std::uint32_t, std::uint32_t>> {
    if (rec.kind != kKindCheckpoint || rec.payload.length() < kChunkHdr)
      return std::nullopt;
    BufferList::Cursor cur(rec.payload);
    std::uint32_t index = 0;
    std::uint32_t total = 0;
    if (!doceph::decode(index, cur) || !doceph::decode(total, cur))
      return std::nullopt;
    return std::make_pair(index, total);
  };
  auto read_chain = [&](int seg) -> std::optional<FoundChain> {
    auto head =
        read_record(segment_off(s, seg), segment_off(s, seg) + segment_len());
    if (!head) return std::nullopt;
    auto ct = chunk_of(*head);
    if (!ct || ct->first != 0 || ct->second < 1 || ct->second > 2)
      return std::nullopt;
    FoundChain chain;
    chain.gen = head->gen;
    chain.snapshot =
        head->payload.substr(kChunkHdr, head->payload.length() - kChunkHdr);
    chain.end_seg = seg;
    chain.end_off = segment_off(s, seg) + head->total_len;
    if (ct->second == 2) {
      const int other = 1 - seg;
      auto spill = read_record(segment_off(s, other),
                               segment_off(s, other) + segment_len());
      if (!spill || spill->gen != head->gen) return std::nullopt;
      auto sct = chunk_of(*spill);
      if (!sct || sct->first != 1 || sct->second != 2) return std::nullopt;
      chain.snapshot.append(
          spill->payload.substr(kChunkHdr, spill->payload.length() - kChunkHdr));
      chain.end_seg = other;
      chain.end_off = segment_off(s, other) + spill->total_len;
    }
    return chain;
  };

  // Find the newest complete checkpoint chain.
  std::optional<FoundChain> best;
  for (int seg = 0; seg < 2; ++seg) {
    auto chain = read_chain(seg);
    if (chain && (!best || chain->gen >= best->gen)) best = std::move(chain);
  }
  if (!best) return Status(Errc::corrupt, "no KV checkpoint found (mkfs?)");
  const std::uint64_t best_gen = best->gen;

  {
    const dbg::WriteLockGuard lk(s.map_mutex);
    s.map.clear();
    BufferList::Cursor cur(best->snapshot);
    if (!doceph::decode(s.map, cur))
      return Status(Errc::corrupt, "bad KV checkpoint payload");
    s.map_bytes = 0;
    for (const auto& [k, v] : s.map) s.map_bytes += k.size() + v.length();
  }

  // Replay txn records after the checkpoint. Valid records carry strictly
  // increasing seq under the checkpoint's generation; replay stops at the
  // first hole — a torn/corrupt record (bad CRC), a stale-generation
  // record, or a non-increasing seq. Gaps in seq are tolerated (historical
  // logs could skip numbers when a mid-roll write failed; since the chunked
  // sync_thread stamps seqs only on durable writes, new logs are gapless).
  const std::uint64_t seg_end = segment_off(s, best->end_seg) + segment_len();
  std::uint64_t off = best->end_off;
  std::uint64_t seq = 0;
  while (true) {
    auto rec = read_record(off, seg_end);
    if (!rec || rec->kind != kKindTxn || rec->gen != best_gen || rec->seq <= seq)
      break;
    KvTxn txn;
    BufferList::Cursor cur(rec->payload);
    if (!txn.decode(cur)) break;
    {
      const dbg::WriteLockGuard lk(s.map_mutex);
      apply_locked(s, txn);
    }
    seq = rec->seq;
    off += rec->total_len;
  }

  s.active_segment = best->end_seg;
  s.generation = best_gen;
  s.append_off = off;
  s.next_seq = seq + 1;
  return Status::OK();
}

Status KvStore::umount() {
  if (!running_) return Status::OK();
  for (auto& sp : shards_) {
    const dbg::LockGuard lk(sp->queue_mutex);
    sp->stopping = true;
    sp->queue_cv.notify_all();
  }
  for (auto& sp : shards_) sp->thread.join();
  running_ = false;
  return Status::OK();
}

void KvStore::crash() {
  std::deque<std::pair<KvTxn, OnCommit>> dropped;
  for (auto& sp : shards_) {
    const dbg::LockGuard lk(sp->queue_mutex);
    sp->stopping = true;
    // Power loss: queued txns never reach the WAL (collected in shard
    // order; callbacks fire after every thread has stopped).
    for (auto& item : sp->queue) dropped.push_back(std::move(item));
    sp->queue.clear();
    sp->queue_cv.notify_all();
  }
  for (auto& sp : shards_) sp->thread.join();
  running_ = false;
  for (auto& [txn, cb] : dropped) {
    if (cb) cb(Status(Errc::shutting_down, "kv store crashed"));
  }
}

void KvStore::enqueue_shard(Shard& s, KvTxn txn, OnCommit cb) {
  bool rejected = false;
  {
    const dbg::LockGuard lk(s.queue_mutex);
    // A chain link can land after crash()/umount() already stopped this
    // shard's thread (its predecessor committed on another shard first);
    // enqueuing would strand it, so fail it like a crash-dropped txn.
    if (s.stopping) {
      rejected = true;
    } else {
      s.queue.emplace_back(std::move(txn), std::move(cb));
      s.queue_cv.notify_one();
    }
  }
  if (rejected && cb) cb(Status(Errc::shutting_down, "kv store stopping"));
}

void KvStore::queue_chain_link(const std::shared_ptr<Chain>& chain,
                               std::size_t i) {
  auto& [shard_idx, part] = chain->links[i];
  enqueue_shard(*shards_[shard_idx], std::move(part),
                [this, chain, i](Status st) {
                  // Runs on the link's sync thread, outside any shard lock.
                  if (!st.ok()) {
                    // Later links are never queued: an error truncates the
                    // chain and the caller sees the failure. Links already
                    // durable stay durable (DESIGN.md §15: atomicity is
                    // all-links-durable-once-acked, not all-or-nothing).
                    if (chain->cb) chain->cb(st);
                    return;
                  }
                  if (i + 1 < chain->links.size()) {
                    queue_chain_link(chain, i + 1);
                    return;
                  }
                  cross_shard_commits_.fetch_add(1, std::memory_order_relaxed);
                  if (chain->cb) chain->cb(Status::OK());
                });
}

void KvStore::queue(KvTxn txn, OnCommit cb) {
  assert(running_);
  if (shards_.size() == 1) {
    enqueue_shard(*shards_[0], std::move(txn), std::move(cb));
    return;
  }

  // Partition by shard. The common case (every key of one txn in one shard
  // — BlueStore's collection-token routing guarantees it for single-object
  // txns) must not pay for the split.
  std::map<std::size_t, KvTxn> parts;
  for (auto& [k, v] : txn.sets) parts[shard_of(k)].sets[k] = std::move(v);
  for (auto& k : txn.rms) parts[shard_of(k)].rms.push_back(std::move(k));
  if (parts.empty()) {
    enqueue_shard(*shards_[0], {}, std::move(cb));  // empty txn: still acked
    return;
  }
  if (parts.size() == 1) {
    auto& [idx, part] = *parts.begin();
    enqueue_shard(*shards_[idx], std::move(part), std::move(cb));
    return;
  }

  // Cross-shard: ordered chained commit in ascending shard index. Each link
  // is queued only after the previous link's record is durable; the
  // caller's cb fires after the last link (see DESIGN.md §15).
  auto chain = std::make_shared<Chain>();
  chain->links.reserve(parts.size());
  for (auto& [idx, part] : parts) chain->links.emplace_back(idx, std::move(part));
  chain->cb = std::move(cb);
  queue_chain_link(chain, 0);
}

Status KvStore::submit(KvTxn txn) {
  dbg::Mutex m{"bluestore.kv_submit"};
  dbg::CondVar cv(env_.keeper(), "bluestore.kv_submit");
  bool done = false;
  Status result;
  queue(std::move(txn), [&](Status st) {
    const dbg::LockGuard lk(m);
    result = st;
    done = true;
    cv.notify_all();
  });
  dbg::UniqueLock lk(m);
  cv.wait(lk, [&] { return done; });
  return result;
}

void KvStore::sync_thread(Shard& s) {
  while (true) {
    std::deque<std::pair<KvTxn, OnCommit>> batch;
    {
      dbg::UniqueLock lk(s.queue_mutex);
      s.queue_cv.wait(lk, [&] {
        s.queue_mutex.assert_held();  // predicate runs as a separate function
        return s.stopping || !s.queue.empty();
      });
      if (s.queue.empty() && s.stopping) return;
      batch.swap(s.queue);
    }

    // Serialize every txn once; records are stamped per chunk below, so a
    // failed write never consumes sequence numbers (no replay-visible gaps).
    std::vector<BufferList> payloads;
    payloads.reserve(batch.size());
    std::uint64_t bytes = 0;
    for (const auto& [txn, cb] : batch) {
      BufferList payload;
      txn.encode(payload);
      bytes += payload.length() + kRecHeader + kRecTrailer;
      payloads.push_back(std::move(payload));
    }

    if (domain_ != nullptr) {
      domain_->charge(costs_.per_txn * static_cast<sim::Duration>(batch.size()) +
                      static_cast<sim::Duration>(costs_.per_byte_ns *
                                                 static_cast<double>(bytes)));
    }

    // Group commit in segment-sized chunks: pack consecutive records while
    // they fit the active segment, make the chunk durable, apply + ack it,
    // then roll to the other segment and continue with the remainder. Each
    // chunk is applied to the map BEFORE any roll so the roll's checkpoint
    // (a map snapshot) covers every record already acknowledged.
    std::size_t idx = 0;
    bool at_fresh_checkpoint = false;  // nothing appended since the last roll
    while (idx < batch.size()) {
      const std::uint64_t seg_end =
          segment_off(s, s.active_segment) + segment_len();
      BufferList wal_bl;
      std::size_t end = idx;
      while (end < batch.size()) {
        BufferList rec = make_record(kKindTxn, s.generation,
                                     s.next_seq + (end - idx), payloads[end]);
        if (s.append_off + wal_bl.length() + rec.length() > seg_end) break;
        wal_bl.claim_append(rec);
        ++end;
      }

      if (end == idx) {
        // The next record does not fit the active segment's tail.
        if (at_fresh_checkpoint) {
          // ... not even at the head of a freshly checkpointed segment: the
          // record can never be stored. Reject it; writing it anyway would
          // overflow into the other segment's checkpoint and the record
          // would silently vanish at the next replay.
          if (auto& cb = batch[idx].second)
            cb(Status(Errc::no_space, "KV txn record exceeds WAL segment"));
          ++idx;
          continue;
        }
        const Status st =
            write_checkpoint(s, 1 - s.active_segment, s.generation + 1);
        if (!st.ok()) {
          // The roll failed before anything was stamped under the new
          // generation: generation/next_seq are untouched, so no sequence
          // numbers leak. Fail the remainder of the batch — committing a
          // later chunk after dropping an earlier one would reorder writes.
          for (std::size_t i = idx; i < batch.size(); ++i)
            if (auto& cb = batch[i].second) cb(st);
          break;
        }
        at_fresh_checkpoint = true;
        continue;
      }

      const Status st = dev_.write(s.append_off, wal_bl);  // durable before apply
      if (!st.ok()) {
        // The media is untouched and this chunk's sequence numbers were
        // never consumed; fail the remainder (ordering, as above).
        for (std::size_t i = idx; i < batch.size(); ++i)
          if (auto& cb = batch[i].second) cb(st);
        break;
      }
      s.append_off += wal_bl.length();
      s.next_seq += end - idx;
      at_fresh_checkpoint = false;
      {
        const dbg::WriteLockGuard lk(s.map_mutex);
        for (std::size_t i = idx; i < end; ++i) apply_locked(s, batch[i].first);
      }
      committed_.fetch_add(end - idx, std::memory_order_relaxed);
      for (std::size_t i = idx; i < end; ++i)
        if (auto& cb = batch[i].second) cb(Status::OK());
      idx = end;
    }
  }
}

void KvStore::apply_locked(Shard& s, const KvTxn& txn) {
  for (const auto& [k, v] : txn.sets) {
    auto it = s.map.find(k);
    if (it != s.map.end())
      s.map_bytes -= k.size() + it->second.length();
    s.map_bytes += k.size() + v.length();
    s.map[k] = v;
  }
  for (const auto& k : txn.rms) {
    auto it = s.map.find(k);
    if (it != s.map.end()) {
      s.map_bytes -= k.size() + it->second.length();
      s.map.erase(it);
    }
  }
}

std::optional<BufferList> KvStore::get(const std::string& key) const {
  const Shard& s = *shards_[shard_of(key)];
  const dbg::ReadLockGuard lk(s.map_mutex);
  auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second;
}

bool KvStore::contains(const std::string& key) const {
  const Shard& s = *shards_[shard_of(key)];
  const dbg::ReadLockGuard lk(s.map_mutex);
  return s.map.contains(key);
}

void KvStore::for_each_prefix(
    const std::string& prefix,
    const std::function<void(const std::string&, const BufferList&)>& fn) const {
  if (shards_.size() == 1) {
    const Shard& s = *shards_[0];
    const dbg::ReadLockGuard lk(s.map_mutex);
    for (auto it = s.map.lower_bound(prefix);
         it != s.map.end() && it->first.starts_with(prefix); ++it) {
      fn(it->first, it->second);
    }
    return;
  }
  // Gather per shard (one lock at a time — shard map mutexes share a lock
  // class and must never nest), then merge so callers see globally sorted
  // key order exactly like the unsharded store.
  std::map<std::string, BufferList> merged;
  for (const auto& sp : shards_) {
    const dbg::ReadLockGuard lk(sp->map_mutex);
    for (auto it = sp->map.lower_bound(prefix);
         it != sp->map.end() && it->first.starts_with(prefix); ++it) {
      merged.emplace(it->first, it->second);
    }
  }
  for (const auto& [k, v] : merged) fn(k, v);
}

std::size_t KvStore::num_keys() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    const dbg::ReadLockGuard lk(sp->map_mutex);
    n += sp->map.size();
  }
  return n;
}

std::uint64_t KvStore::map_bytes() const {
  std::uint64_t n = 0;
  for (const auto& sp : shards_) {
    const dbg::ReadLockGuard lk(sp->map_mutex);
    n += sp->map_bytes;
  }
  return n;
}

std::uint64_t KvStore::max_shard_bytes() const {
  std::uint64_t hw = 0;
  for (const auto& sp : shards_) {
    const dbg::ReadLockGuard lk(sp->map_mutex);
    hw = std::max(hw, sp->map_bytes);
  }
  return hw;
}

double KvStore::checkpoint_pressure() const {
  const double cap = static_cast<double>(shard_wal_len());
  return cap > 0 ? static_cast<double>(max_shard_bytes()) / cap : 0.0;
}

}  // namespace doceph::bluestore
