#pragma once

#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <set>
#include <unordered_map>

#include "bluestore/allocator.h"
#include "bluestore/block_device.h"
#include "bluestore/kv.h"
#include "common/perf_counters.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "os/object_store.h"
#include "sim/cpu_model.h"

namespace doceph::bluestore {

/// Metric indices of the store's "bluestore" PerfCounters block.
enum {
  l_bstore_first = 95000,
  l_bstore_txns,        ///< transactions committed
  l_bstore_commit_lat,  ///< queue_transaction -> commit callback, ns histogram
  l_bstore_free_bytes,  ///< gauge: allocator free bytes
  l_bstore_kv_bytes,    ///< gauge: KV map resident bytes (checkpoint pressure)
  l_bstore_nearfull,    ///< gauge: 1 when fullness() >= nearfull_ratio
  l_bstore_kv_shard_bytes_hw,  ///< gauge: resident bytes of the fullest KV shard
  l_bstore_kv_shard_cross,     ///< gauge: cross-shard chained commits completed
  l_bstore_last,
};

struct BlueStoreConfig {
  BlockDeviceConfig device;

  std::uint64_t wal_off = 4096;        ///< KV write-ahead-log region start
  std::uint64_t wal_len = 64 << 20;    ///< two 32 MiB segments
  /// KV shard count: the WAL region and the map split into this many
  /// independent group-commit streams, keyed by collection (DESIGN.md §15).
  /// Clamped to >= 1 at the BlueStore ctor; 1 = the unsharded legacy store.
  int kv_shards = 1;
  std::uint64_t alloc_unit = 64 << 10;
  /// Objects at or below this size live inline in their onode (the
  /// metadata-only path standing in for BlueStore's deferred small writes).
  std::uint64_t inline_threshold = 64 << 10;

  KvCostModel kv_costs;
  sim::Duration per_op_prep = 3000;    ///< ns per transaction op, caller thread
  double csum_per_byte_ns = 0.12;      ///< data checksumming, "bstore_aio" thread
  sim::Duration per_aio = 2000;        ///< ns per device IO completion

  std::size_t onode_cache_capacity = 65536;

  /// High-water fullness ratio above which the store reports near-full (the
  /// l_bstore_nearfull gauge; the OSD's early admission throttle reads the
  /// same fullness() figure against its own configured ratio).
  double nearfull_ratio = 0.85;
};

/// BlueStore-lite: the host-resident storage backend (paper Fig. 3, right).
///
/// Write path (copy-on-write): bulk payloads go to freshly allocated extents
/// via async device writes; the onode update commits atomically through the
/// WAL'd KV store ("bstore_kv_sync" group commit); superseded extents are
/// released only after commit. Small objects are inlined in their onode.
/// Crash at any instant leaves either the old or the new object state.
///
/// Thread taxonomy matches Ceph for the paper's attribution: transaction
/// prep charges the calling thread (tp_osd_tp), device-completion work runs
/// on "bstore_aio", KV commit on "bstore_kv_sync".
class BlueStore final : public os::ObjectStore {
 public:
  BlueStore(sim::Env& env, sim::CpuDomain* domain, BlueStoreConfig cfg,
            std::shared_ptr<DeviceBacking> backing = nullptr);
  ~BlueStore() override;

  /// Format the device (fresh KV checkpoint). Call once before first mount.
  Status mkfs();

  Status mount() override;
  Status umount() override;

  /// Simulated power loss: everything not yet committed through the WAL is
  /// gone; remounting replays the WAL. The DeviceBacking survives.
  void simulate_crash();

  /// False after simulate_crash()/umount(); restart paths use this to tell
  /// a hard-killed store (needs a remount + WAL replay) from a live one.
  [[nodiscard]] bool is_mounted() const noexcept { return mounted_; }

  void queue_transaction(os::Transaction txn, OnCommit on_commit) override;

  Result<BufferList> read(const os::coll_t& c, const os::ghobject_t& o,
                          std::uint64_t off, std::uint64_t len) override;
  Result<os::ObjectInfo> stat(const os::coll_t& c, const os::ghobject_t& o) override;
  bool exists(const os::coll_t& c, const os::ghobject_t& o) override;
  Result<std::map<std::string, BufferList>> omap_get(const os::coll_t& c,
                                                     const os::ghobject_t& o) override;
  Result<std::vector<os::ghobject_t>> list_objects(const os::coll_t& c) override;
  std::vector<os::coll_t> list_collections() override;
  bool collection_exists(const os::coll_t& c) override;

  [[nodiscard]] std::string store_type() const override { return "bluestore"; }

  [[nodiscard]] BlockDevice& device() noexcept { return *dev_; }
  [[nodiscard]] KvStore& kv() noexcept { return *kv_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return alloc_->free_bytes(); }
  [[nodiscard]] std::shared_ptr<DeviceBacking> backing() const {
    return dev_->backing();
  }
  [[nodiscard]] const BlueStoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] perf::PerfCountersRef perf_counters() const override {
    return counters_;
  }

  /// Max over allocator pressure (1 - free/total) and KV checkpoint
  /// pressure (map bytes vs the chained-checkpoint ceiling of both WAL
  /// segments; 1.0 is the point past which rolls fail with no_space).
  /// 0 while unmounted.
  [[nodiscard]] double fullness() const override;

 private:
  struct Onode {
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    BufferList inline_data;            // content when size <= inline_threshold
    std::vector<Extent> extents;       // content otherwise, in logical order
    std::map<std::string, BufferList> omap;

    void encode(BufferList& bl) const;
    bool decode(BufferList::Cursor& cur);
  };

  /// One queued transaction moving through aio -> kv -> commit.
  struct TxContext {
    os::coll_t seq_cid;                 // sequencer key (first op's collection)
    KvTxn kv;
    std::vector<std::vector<Extent>> release_after_commit;
    OnCommit on_commit;
    Status build_status;
    // pending_ios/ios_done/submitted are guarded by the owning store's
    // mutex_ while the txc sits in a sequencer — a cross-object guard the
    // static analysis cannot express per instance.
    int pending_ios = 0;
    bool ios_done = false;
    bool submitted = false;
    std::atomic<bool> finished{false};
  };
  using TxRef = std::shared_ptr<TxContext>;

  static std::string onode_key(const os::coll_t& c, const os::ghobject_t& o);
  static std::string coll_key(const os::coll_t& c);
  static std::string coll_prefix(const os::coll_t& c);

  /// Fetch an onode into the cache (nullopt if absent). Requires mutex_.
  std::optional<Onode> get_onode_locked(const os::coll_t& c, const os::ghobject_t& o)
      DOCEPH_REQUIRES(mutex_);
  void put_onode_locked(const std::string& key, const Onode& onode)
      DOCEPH_REQUIRES(mutex_);
  void erase_onode_locked(const std::string& key) DOCEPH_REQUIRES(mutex_);

  /// Read the full logical content of an onode (inline or from the device).
  /// Called WITHOUT mutex_ held (device reads block).
  BufferList read_content(const Onode& onode);

  /// Build phase: translate `txn` into kv mutations + device writes.
  /// `prefetched` carries whole-object content for RMW ops, read before the
  /// store mutex is taken (device reads block in simulated time and must
  /// never happen under a real mutex).
  void build_txc(os::Transaction& txn, const TxRef& txc,
                 std::vector<std::pair<std::uint64_t, BufferList>>& writes,
                 std::map<std::string, BufferList>& prefetched);

  /// Write `content` for an object, choosing inline vs extents. Appends
  /// device writes to `writes` and returns the new extent list.
  std::vector<Extent> place_content(const BufferList& content, Onode& onode,
                                    std::vector<std::pair<std::uint64_t, BufferList>>& writes);

  void on_ios_complete(const TxRef& txc);
  void submit_ready_locked(const os::coll_t& cid) DOCEPH_REQUIRES(mutex_);
  void finish_txc(const TxRef& txc, Status st);

  /// Hand a completion task to the "bstore_aio" thread (device callbacks run
  /// on the event scheduler, which must never block or charge CPU).
  void aio_enqueue(std::function<void()> task);
  void aio_thread_loop();
  void start_aio_thread();
  void stop_aio_thread();

  /// Wait until every queued transaction for `cid` has committed (used by
  /// read-modify-write paths that must observe stable device extents).
  void flush_collection(const os::coll_t& cid);

  sim::Env& env_;
  sim::CpuDomain* domain_;
  BlueStoreConfig cfg_;
  std::unique_ptr<BlockDevice> dev_;
  std::unique_ptr<KvStore> kv_;
  std::unique_ptr<ExtentAllocator> alloc_;
  bool mounted_ = false;
  perf::PerfCountersRef counters_;

  dbg::Mutex mutex_{"bluestore.store"};  // onode cache + sequencers
  dbg::CondVar seq_drained_;

  // Onode LRU cache.
  struct CacheEntry {
    Onode onode;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CacheEntry> onode_cache_
      DOCEPH_GUARDED_BY(mutex_);
  std::list<std::string> lru_ DOCEPH_GUARDED_BY(mutex_);
  /// Collections whose create has been *built* (possibly not yet committed):
  /// concurrent transactions against a brand-new PG must see it. Guarded by
  /// mutex_; cleared on unmount.
  std::set<std::string> coll_cache_ DOCEPH_GUARDED_BY(mutex_);

  std::map<os::coll_t, std::deque<TxRef>> sequencers_ DOCEPH_GUARDED_BY(mutex_);

  // "bstore_aio" completion thread.
  dbg::Mutex aio_mutex_{"bluestore.aio"};
  dbg::CondVar aio_cv_;
  std::deque<std::function<void()>> aio_queue_ DOCEPH_GUARDED_BY(aio_mutex_);
  bool aio_stop_ DOCEPH_GUARDED_BY(aio_mutex_) = true;
  sim::Thread aio_thread_;
};

}  // namespace doceph::bluestore
