#pragma once

#include <cstdint>
#include <vector>

#include "common/encoding.h"
#include "common/interval_set.h"
#include "common/result.h"
#include "dbg/mutex.h"

namespace doceph::bluestore {

/// A contiguous run of device blocks.
struct Extent {
  std::uint64_t off = 0;
  std::uint64_t len = 0;

  friend bool operator==(const Extent&, const Extent&) = default;

  void encode(BufferList& bl) const {
    doceph::encode(off, bl);
    doceph::encode(len, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(off, cur) && doceph::decode(len, cur);
  }
};

/// First-fit extent allocator over [base, base+size), alloc_unit-aligned.
/// BlueStore-lite rebuilds it on mount from the onodes' extent lists, so it
/// needs no persistence of its own.
class ExtentAllocator {
 public:
  ExtentAllocator(std::uint64_t base, std::uint64_t size, std::uint64_t alloc_unit);

  /// Allocate `len` bytes (rounded up to alloc units), possibly fragmented
  /// across several extents. Errc::no_space if it cannot be satisfied.
  Result<std::vector<Extent>> allocate(std::uint64_t len);

  void release(const std::vector<Extent>& extents);

  /// Mark a range as in use during mount-time rebuild.
  void mark_used(std::uint64_t off, std::uint64_t len);

  [[nodiscard]] std::uint64_t free_bytes() const;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return size_; }
  [[nodiscard]] std::size_t fragments() const;

 private:
  [[nodiscard]] std::uint64_t round_up(std::uint64_t v) const noexcept {
    return (v + alloc_unit_ - 1) / alloc_unit_ * alloc_unit_;
  }

  std::uint64_t base_;
  std::uint64_t size_;
  std::uint64_t alloc_unit_;
  mutable dbg::Mutex mutex_{"bluestore.alloc"};
  IntervalSet<std::uint64_t> free_ DOCEPH_GUARDED_BY(mutex_);
};

}  // namespace doceph::bluestore
