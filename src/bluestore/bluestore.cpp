#include "bluestore/bluestore.h"

#include <algorithm>
#include <cassert>

#include "common/logger.h"

namespace doceph::bluestore {

// ---- Onode encoding -----------------------------------------------------------

void BlueStore::Onode::encode(BufferList& bl) const {
  doceph::encode(size, bl);
  doceph::encode(version, bl);
  doceph::encode(inline_data, bl);
  doceph::encode(extents, bl);
  doceph::encode(omap, bl);
}

bool BlueStore::Onode::decode(BufferList::Cursor& cur) {
  return doceph::decode(size, cur) && doceph::decode(version, cur) &&
         doceph::decode(inline_data, cur) && doceph::decode(extents, cur) &&
         doceph::decode(omap, cur);
}

// ---- keys ----------------------------------------------------------------------

std::string BlueStore::onode_key(const os::coll_t& c, const os::ghobject_t& o) {
  return "O/" + c.to_string() + "/" + o.name;
}
std::string BlueStore::coll_key(const os::coll_t& c) { return "C/" + c.to_string(); }
std::string BlueStore::coll_prefix(const os::coll_t& c) {
  return "O/" + c.to_string() + "/";
}

// ---- lifecycle -----------------------------------------------------------------

BlueStore::BlueStore(sim::Env& env, sim::CpuDomain* domain, BlueStoreConfig cfg,
                     std::shared_ptr<DeviceBacking> backing)
    : env_(env), domain_(domain), cfg_(cfg), seq_drained_(env.keeper(), "bluestore.seq_drained"),
      aio_cv_(env.keeper(), "bluestore.aio_cv") {
  dev_ = std::make_unique<BlockDevice>(env_, cfg_.device, std::move(backing));
  cfg_.kv_shards = std::max(1, cfg_.kv_shards);  // shard-bounds: knob >= 1
  // Shard router: keys are "O/<coll>/<name>" and "C/<coll>" — route by the
  // collection token so one object's onode and its collection key colocate
  // and every single-object transaction stays single-shard.
  KvStore::ShardKeyFn shard_key;
  if (cfg_.kv_shards > 1) {
    shard_key = [](const std::string& key) -> std::string_view {
      const std::string_view k(key);
      const auto a = k.find('/');
      if (a == std::string_view::npos) return k;
      const auto b = k.find('/', a + 1);
      return k.substr(a + 1, b == std::string_view::npos ? b : b - a - 1);
    };
  }
  kv_ = std::make_unique<KvStore>(env_, *dev_, cfg_.wal_off, cfg_.wal_len, domain_,
                                  cfg_.kv_costs, cfg_.kv_shards,
                                  std::move(shard_key));
  counters_ = perf::Builder("bluestore", l_bstore_first, l_bstore_last)
                  .add_counter(l_bstore_txns, "txns")
                  .add_histogram(l_bstore_commit_lat, "commit_lat")
                  .add_gauge(l_bstore_free_bytes, "free_bytes")
                  .add_gauge(l_bstore_kv_bytes, "kv_bytes")
                  .add_gauge(l_bstore_nearfull, "nearfull")
                  .add_gauge(l_bstore_kv_shard_bytes_hw, "kv_shard_bytes_hw")
                  .add_gauge(l_bstore_kv_shard_cross, "kv_shard_cross")
                  .create();
}

BlueStore::~BlueStore() {  // NOLINT(bugprone-exception-escape): teardown must complete; a throw terminates, by design
  if (mounted_) simulate_crash();
}

Status BlueStore::mkfs() { return kv_->mkfs(); }

Status BlueStore::mount() {
  assert(!mounted_);
  const Status st = kv_->mount();
  if (!st.ok()) return st;

  // Rebuild the allocator from the onodes: everything not referenced by an
  // onode extent (and outside the WAL region) is free.
  const std::uint64_t data_base =
      (cfg_.wal_off + cfg_.wal_len + cfg_.alloc_unit - 1) / cfg_.alloc_unit *
      cfg_.alloc_unit;
  alloc_ = std::make_unique<ExtentAllocator>(
      data_base, dev_->size() - data_base, cfg_.alloc_unit);
  Status rebuild = Status::OK();
  kv_->for_each_prefix("O/", [&](const std::string& key, const BufferList& val) {
    Onode onode;
    BufferList::Cursor cur(val);
    if (!onode.decode(cur)) {
      rebuild = Status(Errc::corrupt, "bad onode " + key);
      return;
    }
    for (const auto& e : onode.extents) alloc_->mark_used(e.off, e.len);
  });
  if (!rebuild.ok()) {
    (void)kv_->umount();
    return rebuild;
  }
  start_aio_thread();
  mounted_ = true;
  return Status::OK();
}

Status BlueStore::umount() {
  if (!mounted_) return Status::OK();
  // Drain all in-flight transactions.
  {
    dbg::UniqueLock lk(mutex_);
    seq_drained_.wait(lk, [&] {
      mutex_.assert_held();  // predicate runs as a separate function
      return sequencers_.empty();
    });
    onode_cache_.clear();
    lru_.clear();
    coll_cache_.clear();
  }
  const Status st = kv_->umount();
  stop_aio_thread();
  mounted_ = false;
  return st;
}

void BlueStore::simulate_crash() {
  std::vector<TxRef> pending;
  {
    const dbg::LockGuard lk(mutex_);
    for (auto& [cid, dq] : sequencers_)
      for (auto& txc : dq) pending.push_back(txc);
    sequencers_.clear();
    onode_cache_.clear();
    lru_.clear();
    coll_cache_.clear();
    seq_drained_.notify_all();
  }
  kv_->crash();
  stop_aio_thread();
  for (auto& txc : pending) {
    if (txc->on_commit && !txc->submitted)
      txc->on_commit(Status(Errc::shutting_down, "bluestore crashed"));
  }
  mounted_ = false;
}

// ---- onode cache ---------------------------------------------------------------

std::optional<BlueStore::Onode> BlueStore::get_onode_locked(const os::coll_t& c,
                                                            const os::ghobject_t& o) {
  const std::string key = onode_key(c, o);
  auto it = onode_cache_.find(key);
  if (it != onode_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.onode;
  }
  auto val = kv_->get(key);
  if (!val) return std::nullopt;
  Onode onode;
  BufferList::Cursor cur(*val);
  if (!onode.decode(cur)) return std::nullopt;
  put_onode_locked(key, onode);
  return onode;
}

void BlueStore::put_onode_locked(const std::string& key, const Onode& onode) {
  auto it = onode_cache_.find(key);
  if (it != onode_cache_.end()) {
    it->second.onode = onode;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  onode_cache_[key] = CacheEntry{onode, lru_.begin()};
  if (onode_cache_.size() > cfg_.onode_cache_capacity) {
    onode_cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BlueStore::erase_onode_locked(const std::string& key) {
  auto it = onode_cache_.find(key);
  if (it == onode_cache_.end()) return;
  lru_.erase(it->second.lru_it);
  onode_cache_.erase(it);
}

// ---- content IO ----------------------------------------------------------------

BufferList BlueStore::read_content(const Onode& onode) {
  if (onode.extents.empty()) {
    return onode.inline_data.substr(0, onode.size);
  }
  BufferList out;
  std::uint64_t remaining = onode.size;
  for (const auto& e : onode.extents) {
    const std::uint64_t n = std::min(e.len, remaining);
    if (n == 0) break;
    auto r = dev_->read(e.off, n);
    if (!r.ok()) return out;  // device errors surface as short reads
    out.claim_append(*r);
    remaining -= n;
  }
  return out;
}

std::vector<Extent> BlueStore::place_content(
    const BufferList& content, Onode& onode,
    std::vector<std::pair<std::uint64_t, BufferList>>& writes) {
  onode.size = content.length();
  if (content.length() <= cfg_.inline_threshold) {
    onode.inline_data = content;
    onode.extents.clear();
    return {};
  }
  auto extents = alloc_->allocate(content.length());
  if (!extents.ok()) {
    // Signalled via empty extents + caller checks build_status.
    return {};
  }
  onode.inline_data.clear();
  onode.extents = *extents;
  std::uint64_t pos = 0;
  for (const auto& e : *extents) {
    const std::uint64_t n = std::min<std::uint64_t>(e.len, content.length() - pos);
    writes.emplace_back(e.off, content.substr(pos, n));
    pos += n;
    if (pos >= content.length()) break;
  }
  return *extents;
}

// ---- transaction build / commit -------------------------------------------------

void BlueStore::queue_transaction(os::Transaction txn, OnCommit on_commit) {
  if (!mounted_) {
    if (on_commit) on_commit(Status(Errc::shutting_down, "not mounted"));
    return;
  }
  if (domain_ != nullptr)
    domain_->charge(cfg_.per_op_prep * static_cast<sim::Duration>(txn.num_ops()));

  auto txc = std::make_shared<TxContext>();
  txc->seq_cid = txn.ops().empty() ? os::coll_t{} : txn.ops().front().cid;
  // Per-shard txn parent: with kv_shards > 1 the span's domain names the KV
  // shard this transaction commits through (collection-token routing), so a
  // trace shows which group-commit stream carried it. The default store
  // keeps the legacy domain — byte-identical dumps.
  std::string span_domain = "bluestore." + cfg_.device.name;
  if (kv_->shards() > 1) {
    span_domain += ".kv" + std::to_string(kv_->shard_of(coll_key(txc->seq_cid)));
  }
  // Shared, not captured by value: Span is move-only and on_commit is a
  // copyable std::function. No-op unless the transaction's op was sampled.
  auto sp = std::make_shared<trace::Span>(env_.tracer().span(
      "bluestore.txn", span_domain, txn.trace(), env_.now()));
  txc->on_commit = [this, sp, queued = env_.now(),
                    cb = std::move(on_commit)](Status st) {
    sp->end(env_.now());
    counters_->inc(l_bstore_txns);
    counters_->rec(l_bstore_commit_lat, env_.now() - queued);
    if (cb) cb(std::move(st));
  };

  // Read-modify-write ops must observe stable device content: wait for the
  // collection's in-flight data writes first (write_full — the hot path —
  // never needs this).
  bool needs_rmw = false;
  for (const auto& op : txn.ops()) {
    if (op.op == os::TxnOp::write || op.op == os::TxnOp::zero ||
        op.op == os::TxnOp::truncate)
      needs_rmw = true;
  }
  std::map<std::string, BufferList> prefetched;
  if (needs_rmw) {
    flush_collection(txc->seq_cid);
    // Read current whole-object content for every RMW target, without
    // holding the store mutex (device reads block in simulated time). The
    // PG layer serializes writers per object, so the content is stable.
    for (const auto& op : txn.ops()) {
      if (op.op != os::TxnOp::write && op.op != os::TxnOp::zero &&
          op.op != os::TxnOp::truncate)
        continue;
      const std::string okey = onode_key(op.cid, op.oid);
      if (prefetched.contains(okey)) continue;
      std::optional<Onode> onode;
      {
        const dbg::LockGuard lk(mutex_);
        onode = get_onode_locked(op.cid, op.oid);
      }
      prefetched[okey] = onode ? read_content(*onode) : BufferList{};
    }
  }

  std::vector<std::pair<std::uint64_t, BufferList>> writes;
  build_txc(txn, txc, writes, prefetched);

  {
    const dbg::LockGuard lk(mutex_);
    txc->pending_ios = static_cast<int>(writes.size());
    if (txc->pending_ios == 0) txc->ios_done = true;
    sequencers_[txc->seq_cid].push_back(txc);
    if (txc->ios_done) submit_ready_locked(txc->seq_cid);
  }

  for (auto& [off, data] : writes) {
    const std::uint64_t bytes = data.length();
    dev_->aio_write(off, std::move(data), [this, txc, bytes](Status st) {
      // Device completion arrives on the event scheduler thread, which must
      // never block; hand the (CPU-charged) completion work to "bstore_aio".
      aio_enqueue([this, txc, bytes, st] {
        if (domain_ != nullptr)
          domain_->charge(cfg_.per_aio +
                          static_cast<sim::Duration>(cfg_.csum_per_byte_ns *
                                                     static_cast<double>(bytes)));
        if (!st.ok()) txc->build_status = st;
        on_ios_complete(txc);
      });
    });
  }
}

void BlueStore::aio_enqueue(std::function<void()> task) {
  const dbg::LockGuard lk(aio_mutex_);
  if (aio_stop_) return;  // post-crash stray completion: drop
  aio_queue_.push_back(std::move(task));
  aio_cv_.notify_one();
}

void BlueStore::aio_thread_loop() {
  while (true) {
    std::function<void()> task;
    {
      dbg::UniqueLock lk(aio_mutex_);
      aio_cv_.wait(lk, [&] {
        aio_mutex_.assert_held();
        return aio_stop_ || !aio_queue_.empty();
      });
      if (aio_queue_.empty() && aio_stop_) return;
      task = std::move(aio_queue_.front());
      aio_queue_.pop_front();
    }
    task();
  }
}

void BlueStore::start_aio_thread() {
  {
    const dbg::LockGuard lk(aio_mutex_);
    aio_stop_ = false;
  }
  aio_thread_ = sim::Thread(env_.keeper(), env_.stats(), "bstore_aio", domain_,
                            [this] { aio_thread_loop(); }, /*daemon=*/true);
}

void BlueStore::stop_aio_thread() {
  {
    const dbg::LockGuard lk(aio_mutex_);
    if (aio_stop_) return;
    aio_stop_ = true;
    aio_cv_.notify_all();
  }
  aio_thread_.join();
}

void BlueStore::build_txc(os::Transaction& txn, const TxRef& txc,
                          std::vector<std::pair<std::uint64_t, BufferList>>& writes,
                          std::map<std::string, BufferList>& prefetched) {
  const dbg::LockGuard lk(mutex_);
  for (auto& op : txn.ops()) {
    const std::string okey = onode_key(op.cid, op.oid);
    switch (op.op) {
      case os::TxnOp::create_collection: {
        txc->kv.sets[coll_key(op.cid)] = BufferList{};
        coll_cache_.insert(coll_key(op.cid));
        continue;
      }
      case os::TxnOp::remove_collection: {
        txc->kv.rms.push_back(coll_key(op.cid));
        coll_cache_.erase(coll_key(op.cid));
        kv_->for_each_prefix(coll_prefix(op.cid),
                             [&](const std::string& key, const BufferList& val) {
                               Onode onode;
                               BufferList::Cursor cur(val);
                               if (onode.decode(cur) && !onode.extents.empty())
                                 txc->release_after_commit.push_back(onode.extents);
                               txc->kv.rms.push_back(key);
                               erase_onode_locked(key);
                             });
        continue;
      }
      default:
        break;
    }

    if (!kv_->contains(coll_key(op.cid)) && !coll_cache_.contains(coll_key(op.cid))) {
      txc->build_status = Status(Errc::not_found, "collection " + op.cid.to_string());
      continue;
    }

    if (op.op == os::TxnOp::remove) {
      auto onode = get_onode_locked(op.cid, op.oid);
      if (onode && !onode->extents.empty())
        txc->release_after_commit.push_back(onode->extents);
      txc->kv.rms.push_back(okey);
      erase_onode_locked(okey);
      continue;
    }

    Onode onode = get_onode_locked(op.cid, op.oid).value_or(Onode{});
    onode.version++;

    switch (op.op) {
      case os::TxnOp::touch:
        break;
      case os::TxnOp::write_full: {
        if (!onode.extents.empty()) txc->release_after_commit.push_back(onode.extents);
        place_content(op.data, onode, writes);
        if (op.data.length() > cfg_.inline_threshold && onode.extents.empty()) {
          txc->build_status = Status(Errc::no_space, "allocation failed");
          continue;
        }
        break;
      }
      case os::TxnOp::write:
      case os::TxnOp::zero:
      case os::TxnOp::truncate: {
        // COW read-modify-write of the whole object, using the content
        // prefetched before the store mutex was taken.
        std::string content = prefetched[okey].to_string();
        if (op.op == os::TxnOp::write) {
          const std::size_t end = op.off + op.data.length();
          if (content.size() < end) content.resize(end, '\0');
          op.data.copy_out(0, op.data.length(), content.data() + op.off);
        } else if (op.op == os::TxnOp::zero) {
          const std::size_t end = op.off + op.len;
          if (content.size() < end) content.resize(end, '\0');
          std::fill_n(content.begin() + static_cast<long>(op.off), op.len, '\0');
        } else {
          content.resize(op.off, '\0');
        }
        if (!onode.extents.empty()) txc->release_after_commit.push_back(onode.extents);
        const BufferList content_bl = BufferList::copy_of(content);
        place_content(content_bl, onode, writes);
        if (content_bl.length() > cfg_.inline_threshold && onode.extents.empty()) {
          txc->build_status = Status(Errc::no_space, "allocation failed");
          continue;
        }
        break;
      }
      case os::TxnOp::omap_set:
        for (auto& [k, v] : op.kv) onode.omap[k] = v;
        break;
      case os::TxnOp::omap_rm_keys:
        for (const auto& k : op.keys) onode.omap.erase(k);
        break;
      default:
        txc->build_status = Status(Errc::not_supported, "txn op");
        continue;
    }

    BufferList encoded;
    onode.encode(encoded);
    txc->kv.sets[okey] = std::move(encoded);
    put_onode_locked(okey, onode);
  }
}

void BlueStore::on_ios_complete(const TxRef& txc) {
  const dbg::LockGuard lk(mutex_);
  if (--txc->pending_ios > 0) return;
  txc->ios_done = true;
  submit_ready_locked(txc->seq_cid);
}

void BlueStore::submit_ready_locked(const os::coll_t& cid) {
  auto it = sequencers_.find(cid);
  if (it == sequencers_.end()) return;
  auto& dq = it->second;
  while (!dq.empty() && dq.front()->ios_done && !dq.front()->submitted) {
    TxRef txc = dq.front();
    txc->submitted = true;
    dq.pop_front();
    if (!txc->build_status.ok()) {
      // Nothing reached the device/kv atomically; report the build error.
      finish_txc(txc, txc->build_status);
      continue;
    }
    kv_->queue(std::move(txc->kv), [this, txc](Status st) { finish_txc(txc, st); });
  }
  if (dq.empty()) {
    sequencers_.erase(it);
    seq_drained_.notify_all();
  }
}

void BlueStore::finish_txc(const TxRef& txc, Status st) {
  if (txc->finished.exchange(true)) {
    std::fprintf(stderr,
                 "BUG: finish_txc called twice (st=%s, build=%s, submitted=%d)\n",
                 st.to_string().c_str(), txc->build_status.to_string().c_str(),
                 txc->submitted ? 1 : 0);
    return;
  }
  if (st.ok()) {
    for (const auto& extents : txc->release_after_commit) alloc_->release(extents);
  }
  // Refresh the capacity gauges on every commit: allocator headroom, KV
  // checkpoint pressure, and the near-full flag the admission throttle
  // mirrors (OsdConfig::nearfull_ratio reads the same fullness() figure).
  counters_->set(l_bstore_free_bytes, alloc_->free_bytes());
  counters_->set(l_bstore_kv_bytes, kv_->map_bytes());
  counters_->set(l_bstore_nearfull,
                 fullness() >= cfg_.nearfull_ratio ? 1 : 0);
  if (kv_->shards() > 1) {
    counters_->set(l_bstore_kv_shard_bytes_hw, kv_->max_shard_bytes());
    counters_->set(l_bstore_kv_shard_cross, kv_->cross_shard_commits());
  }
  if (txc->on_commit) txc->on_commit(st);
}

double BlueStore::fullness() const {
  if (!mounted_ || !alloc_) return 0.0;
  const double total = static_cast<double>(alloc_->total_bytes());
  const double alloc_used =
      total > 0 ? 1.0 - static_cast<double>(alloc_->free_bytes()) / total : 0.0;
  // KV pressure against the chained-checkpoint ceiling: a snapshot may span
  // both WAL segments of its shard (two max-packed chunks), so 1.0 is the
  // hard limit beyond which checkpoint rolls fail with no_space. Above ~0.5
  // the shard is already in the degraded spanning regime (rolls rewrite
  // both segments); a nearfull_ratio between the two sheds load before the
  // ceiling becomes fatal. Sharded stores gauge the FULLEST shard — it hits
  // the ceiling first, and hash imbalance makes it the binding constraint.
  return std::max(alloc_used, kv_->checkpoint_pressure());
}

void BlueStore::flush_collection(const os::coll_t& cid) {
  dbg::UniqueLock lk(mutex_);
  seq_drained_.wait(lk, [&] {
    mutex_.assert_held();
    return !sequencers_.contains(cid);
  });
}

// ---- reads ----------------------------------------------------------------------

Result<BufferList> BlueStore::read(const os::coll_t& c, const os::ghobject_t& o,
                                   std::uint64_t off, std::uint64_t len) {
  std::optional<Onode> onode;
  {
    const dbg::LockGuard lk(mutex_);
    if (!kv_->contains(coll_key(c))) return Status(Errc::not_found, "collection");
    onode = get_onode_locked(c, o);
  }
  if (!onode) return Status(Errc::not_found, o.to_string());
  if (off >= onode->size) return BufferList{};
  const std::uint64_t want =
      len == 0 ? onode->size - off : std::min<std::uint64_t>(len, onode->size - off);

  if (onode->extents.empty()) return onode->inline_data.substr(off, want);

  // Read only the extents overlapping [off, off+want).
  BufferList out;
  std::uint64_t logical = 0;
  for (const auto& e : onode->extents) {
    if (out.length() >= want) break;
    const std::uint64_t e_end = logical + e.len;
    const std::uint64_t read_from = std::max(off + out.length(), logical);
    if (read_from < e_end) {
      const std::uint64_t n =
          std::min<std::uint64_t>(e_end - read_from, want - out.length());
      auto r = dev_->read(e.off + (read_from - logical), n);
      if (!r.ok()) return r.status();
      out.claim_append(*r);
    }
    logical = e_end;
  }
  return out;
}

Result<os::ObjectInfo> BlueStore::stat(const os::coll_t& c, const os::ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  if (!kv_->contains(coll_key(c))) return Status(Errc::not_found, "collection");
  auto onode = get_onode_locked(c, o);
  if (!onode) return Status(Errc::not_found, o.to_string());
  return os::ObjectInfo{onode->size, onode->version};
}

bool BlueStore::exists(const os::coll_t& c, const os::ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  return kv_->contains(onode_key(c, o));
}

Result<std::map<std::string, BufferList>> BlueStore::omap_get(const os::coll_t& c,
                                                              const os::ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  if (!kv_->contains(coll_key(c))) return Status(Errc::not_found, "collection");
  auto onode = get_onode_locked(c, o);
  if (!onode) return Status(Errc::not_found, o.to_string());
  return onode->omap;
}

Result<std::vector<os::ghobject_t>> BlueStore::list_objects(const os::coll_t& c) {
  if (!kv_->contains(coll_key(c))) return Status(Errc::not_found, "collection");
  std::vector<os::ghobject_t> out;
  const std::string prefix = coll_prefix(c);
  kv_->for_each_prefix(prefix, [&](const std::string& key, const BufferList&) {
    out.push_back(os::ghobject_t{c.pool, key.substr(prefix.size())});
  });
  return out;
}

std::vector<os::coll_t> BlueStore::list_collections() {
  std::vector<os::coll_t> out;
  kv_->for_each_prefix("C/", [&](const std::string& key, const BufferList&) {
    const std::string id = key.substr(2);
    const auto dot = id.find('.');
    if (dot == std::string::npos) return;
    out.push_back(os::coll_t{
        static_cast<os::pool_t>(std::stoul(id.substr(0, dot))),
        static_cast<std::uint32_t>(std::stoul(id.substr(dot + 1)))});
  });
  return out;
}

bool BlueStore::collection_exists(const os::coll_t& c) {
  return kv_->contains(coll_key(c));
}

}  // namespace doceph::bluestore
