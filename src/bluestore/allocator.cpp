#include "bluestore/allocator.h"

#include <cassert>
#include <string>

namespace doceph::bluestore {

ExtentAllocator::ExtentAllocator(std::uint64_t base, std::uint64_t size,
                                 std::uint64_t alloc_unit)
    : base_(base), size_(size / alloc_unit * alloc_unit), alloc_unit_(alloc_unit) {
  assert(alloc_unit_ > 0);
  if (size_ > 0) free_.insert(base_, size_);
}

Result<std::vector<Extent>> ExtentAllocator::allocate(std::uint64_t len) {
  len = round_up(len == 0 ? alloc_unit_ : len);
  const dbg::LockGuard lk(mutex_);
  if (free_.size() < len) {
    return Status(Errc::no_space,
                  "allocator exhausted: requested " + std::to_string(len) +
                      " B, " + std::to_string(free_.size()) + " B free in " +
                      std::to_string(free_.num_intervals()) + " fragment(s)");
  }

  std::vector<Extent> out;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    // Prefer a single extent that fits; otherwise take the largest prefix of
    // the first free interval (first-fit with fragmentation).
    auto it = free_.find_first_fit(remaining);
    if (it != free_.end()) {
      out.push_back({it->first, remaining});
      free_.erase(it->first, remaining);
      remaining = 0;
      break;
    }
    auto first = free_.begin();
    assert(first != free_.end());
    const std::uint64_t take = std::min(first->second, remaining);
    out.push_back({first->first, take});
    free_.erase(first->first, take);
    remaining -= take;
  }
  return out;
}

void ExtentAllocator::release(const std::vector<Extent>& extents) {
  const dbg::LockGuard lk(mutex_);
  for (const auto& e : extents) {
    if (e.len > 0) free_.insert(e.off, e.len);
  }
}

void ExtentAllocator::mark_used(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return;
  const dbg::LockGuard lk(mutex_);
  free_.erase(off, round_up(len));
}

std::uint64_t ExtentAllocator::free_bytes() const {
  const dbg::LockGuard lk(mutex_);
  return free_.size();
}

std::size_t ExtentAllocator::fragments() const {
  const dbg::LockGuard lk(mutex_);
  return free_.num_intervals();
}

}  // namespace doceph::bluestore
