#include "bluestore/block_device.h"

#include <algorithm>
#include <cstring>

#include "dbg/cond_var.h"
#include "sim/time_keeper.h"

namespace doceph::bluestore {

void DeviceBacking::write(std::uint64_t off, const BufferList& data) {
  const dbg::LockGuard lk(mutex_);
  std::uint64_t pos = 0;
  while (pos < data.length()) {
    const std::uint64_t abs = off + pos;
    const std::uint64_t chunk = abs / kChunk;
    const std::uint64_t in_chunk = abs % kChunk;
    const std::uint64_t n = std::min<std::uint64_t>(kChunk - in_chunk,
                                                    data.length() - pos);
    auto& bytes = chunks_[chunk];
    if (bytes.empty()) bytes.assign(kChunk, '\0');
    data.copy_out(pos, n, bytes.data() + in_chunk);
    pos += n;
  }
}

void DeviceBacking::read(std::uint64_t off, std::uint64_t len, char* out) const {
  const dbg::LockGuard lk(mutex_);
  std::uint64_t pos = 0;
  while (pos < len) {
    const std::uint64_t abs = off + pos;
    const std::uint64_t chunk = abs / kChunk;
    const std::uint64_t in_chunk = abs % kChunk;
    const std::uint64_t n = std::min<std::uint64_t>(kChunk - in_chunk, len - pos);
    auto it = chunks_.find(chunk);
    if (it == chunks_.end()) {
      std::memset(out + pos, 0, n);
    } else {
      std::memcpy(out + pos, it->second.data() + in_chunk, n);
    }
    pos += n;
  }
}

BlockDevice::BlockDevice(sim::Env& env, BlockDeviceConfig cfg,
                         std::shared_ptr<DeviceBacking> backing)
    : env_(env),
      cfg_(cfg),
      backing_(backing ? std::move(backing) : std::make_shared<DeviceBacking>()) {}

BlockDevice::~BlockDevice() {  // NOLINT(bugprone-exception-escape): teardown drains in-flight IO; a throw terminates, by design
  std::unique_lock<std::mutex> lk(gate_->m);
  gate_->alive = false;
  // A wrapper the scheduler thread is already executing holds no reference
  // into *this once work() returns; wait it out (real time, bounded — the
  // completion bodies never block).
  gate_->cv.wait(lk, [&] { return gate_->executing == 0; });
}

void BlockDevice::fault_adjust(sim::Time& done, bool& fail) {
  auto& faults = env_.faults();
  if (!faults.any_armed()) return;
  const sim::Time now = env_.now();
  fail = faults.should_fire("bdev.io_error", now, cfg_.name);
  const fault::FaultHit spike = faults.hit("bdev.latency_spike", now, cfg_.name);
  if (spike.fired)
    done += static_cast<sim::Duration>(spike.delay_ns != 0 ? spike.delay_ns
                                                           : 10'000'000);
}

void BlockDevice::schedule_io(sim::Time done, std::function<void()> work) {
  env_.scheduler().schedule_at(
      done, [gate = gate_, work = std::move(work)] {
        {
          const std::lock_guard<std::mutex> lk(gate->m);
          if (!gate->alive) return;  // device died with this IO in flight
          ++gate->executing;
        }
        work();
        {
          const std::lock_guard<std::mutex> lk(gate->m);
          --gate->executing;
        }
        gate->cv.notify_all();
      });
}

void BlockDevice::aio_write(std::uint64_t off, BufferList data, IoCb cb) {
  if (!in_range(off, data.length())) {
    if (cb) cb(Status(Errc::range_error, "write past device end"));
    return;
  }
  bytes_written_.fetch_add(data.length(), std::memory_order_relaxed);
  sim::Time done =
      channel_.reserve(env_.now(), sim::transfer_time(data.length(), cfg_.write_bw)) +
      cfg_.write_latency;
  bool fail = false;
  fault_adjust(done, fail);
  const bool retain = should_retain(off) && !fail;
  schedule_io(done, [this, off, data = std::move(data), cb = std::move(cb), retain,
                     fail] {
    // A failed IO spends the device time but leaves the media untouched.
    if (retain) backing_->write(off, data);
    if (cb) cb(fail ? Status(Errc::io_error, "fault injected: bdev.io_error")
                    : Status::OK());
  });
}

void BlockDevice::aio_read(std::uint64_t off, std::uint64_t len, ReadCb cb) {
  if (!in_range(off, len)) {
    if (cb) cb(Status(Errc::range_error, "read past device end"));
    return;
  }
  bytes_read_.fetch_add(len, std::memory_order_relaxed);
  sim::Time done =
      channel_.reserve(env_.now(), sim::transfer_time(len, cfg_.read_bw)) +
      cfg_.read_latency;
  bool fail = false;
  fault_adjust(done, fail);
  schedule_io(done, [this, off, len, cb = std::move(cb), fail] {
    if (fail) {
      cb(Status(Errc::io_error, "fault injected: bdev.io_error"));
      return;
    }
    Slice s = Slice::allocate(len);
    backing_->read(off, len, s.mutable_data());
    BufferList bl;
    bl.append(std::move(s));
    cb(std::move(bl));
  });
}

Result<BufferList> BlockDevice::read(std::uint64_t off, std::uint64_t len) {
  dbg::Mutex m{"bluestore.bdev_wait"};
  dbg::CondVar cv(env_.keeper(), "bluestore.bdev_wait");
  bool done = false;
  Result<BufferList> result = BufferList{};
  aio_read(off, len, [&](Result<BufferList> r) {
    const dbg::LockGuard lk(m);
    result = std::move(r);
    done = true;
    cv.notify_all();
  });
  dbg::UniqueLock lk(m);
  cv.wait(lk, [&] { return done; });
  return result;
}

Status BlockDevice::write(std::uint64_t off, BufferList data) {
  dbg::Mutex m{"bluestore.bdev_wait"};
  dbg::CondVar cv(env_.keeper(), "bluestore.bdev_wait");
  bool done = false;
  Status st;
  aio_write(off, std::move(data), [&](Status s) {
    const dbg::LockGuard lk(m);
    st = s;
    done = true;
    cv.notify_all();
  });
  dbg::UniqueLock lk(m);
  cv.wait(lk, [&] { return done; });
  return st;
}

void BlockDevice::flush(IoCb cb) {
  // Everything already booked on the channel is durable once the channel
  // drains; model flush as a zero-length barrier IO.
  const sim::Time done = channel_.reserve(env_.now(), 0);
  schedule_io(done, [cb = std::move(cb)] {
    if (cb) cb(Status::OK());
  });
}

}  // namespace doceph::bluestore
