#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bluestore/block_device.h"
#include "common/encoding.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "dbg/shared_mutex.h"
#include "sim/cpu_model.h"
#include "sim/thread.h"

namespace doceph::bluestore {

/// One atomic KV mutation batch.
struct KvTxn {
  std::map<std::string, BufferList> sets;
  std::vector<std::string> rms;

  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [k, v] : sets) n += k.size() + v.length();
    for (const auto& k : rms) n += k.size();
    return n;
  }

  void encode(BufferList& bl) const {
    doceph::encode(sets, bl);
    doceph::encode(rms, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(sets, cur) && doceph::decode(rms, cur);
  }
};

/// CPU cost of KV work, charged on the "bstore_kv_sync" thread.
struct KvCostModel {
  sim::Duration per_txn = 6000;   ///< ns per committed transaction
  double per_byte_ns = 0.05;      ///< serialization of keys/values
};

/// Ordered in-memory KV store with a crash-safe write-ahead log on a block
/// device region — the metadata engine under BlueStore-lite (RocksDB's role
/// in real BlueStore). A dedicated "bstore_kv_sync" thread group-commits
/// queued transactions, exactly like Ceph's kv_sync_thread.
///
/// WAL layout: the region is split into two segments; records are appended
/// to the active segment. When it fills, a checkpoint (full map snapshot)
/// opens the other segment with a higher generation. mount() locates the
/// newest checkpoint and replays records after it.
///
/// A checkpoint is a CHAIN of one or two records, each tagged with
/// (chunk_index, total_chunks). The common case is a single chunk at the
/// head of the target segment; a snapshot too large to leave journal
/// headroom in one segment spills its remainder once into the head of the
/// other segment instead of failing permanently (the degraded spanning
/// regime). The spill overwrites the
/// previous checkpoint, so write order (target segment first) keeps the old
/// generation recoverable until the chain completes; a crash between the two
/// chunk writes of a SECOND consecutive spanning roll is the one window
/// with no complete chain on disk — strictly narrower than the pre-chain
/// behavior, which wedged the store with `no_space` at the first oversized
/// snapshot. The near-full gauge (`map_bytes()` vs the chained ceiling)
/// exists so upper layers throttle before the ceiling becomes fatal.
class KvStore {
 public:
  using OnCommit = std::function<void(Status)>;

  KvStore(sim::Env& env, BlockDevice& dev, std::uint64_t wal_off,
          std::uint64_t wal_len, sim::CpuDomain* domain, KvCostModel costs = {});
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Initialize an empty store on the device (writes the first checkpoint).
  Status mkfs();

  /// Load state from the WAL (checkpoint + replay) and start the sync thread.
  Status mount();

  /// Graceful stop: drain queued transactions, checkpoint, stop the thread.
  Status umount();

  /// Simulated power loss: stop without checkpoint or drain. Queued but
  /// uncommitted transactions are lost; committed ones replay on mount.
  void crash();

  /// Queue a transaction; `cb` fires after the WAL record is durable. A
  /// transaction whose serialized record does not fit a WAL segment even
  /// right after a fresh checkpoint (the map snapshot shares the segment)
  /// fails with `no_space` — it is never written partially or past the
  /// segment end.
  void queue(KvTxn txn, OnCommit cb);

  /// Synchronous commit helper.
  Status submit(KvTxn txn);

  [[nodiscard]] std::optional<BufferList> get(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Visit all keys with `prefix` (snapshot semantics not guaranteed across
  /// concurrent commits; callers serialize at a higher level).
  void for_each_prefix(const std::string& prefix,
                       const std::function<void(const std::string&,
                                                const BufferList&)>& fn) const;

  [[nodiscard]] std::size_t num_keys() const;

  /// Total bytes of keys + values resident in the map — the size a
  /// checkpoint snapshot will serialize to (plus small encoding overhead).
  /// Compared against one WAL segment this is the KV-pressure half of
  /// BlueStore's fullness() gauge.
  [[nodiscard]] std::uint64_t map_bytes() const;

  /// Committed transaction count (diagnostics).
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }

  /// WAL append cursor: absolute device offset where the next record lands.
  /// Diagnostics/tests only — racy against a concurrently committing sync
  /// thread; read it while the store is quiesced (or crashed).
  [[nodiscard]] std::uint64_t append_offset() const noexcept { return append_off_; }

 private:
  struct Record;  // wire format helpers in kv.cpp

  void sync_thread();
  Status write_checkpoint_locked(int segment, std::uint64_t generation);
  void apply_locked(const KvTxn& txn) DOCEPH_REQUIRES(map_mutex_);
  Status replay();
  [[nodiscard]] std::uint64_t segment_off(int seg) const noexcept {
    return wal_off_ + static_cast<std::uint64_t>(seg) * (wal_len_ / 2);
  }
  [[nodiscard]] std::uint64_t segment_len() const noexcept { return wal_len_ / 2; }

  sim::Env& env_;
  BlockDevice& dev_;
  std::uint64_t wal_off_;
  std::uint64_t wal_len_;
  sim::CpuDomain* domain_;
  KvCostModel costs_;

  mutable dbg::SharedMutex map_mutex_{"bluestore.kv_map"};
  std::map<std::string, BufferList> map_ DOCEPH_GUARDED_BY(map_mutex_);
  std::uint64_t map_bytes_ DOCEPH_GUARDED_BY(map_mutex_) = 0;

  // Sync-thread state.
  dbg::Mutex queue_mutex_{"bluestore.kv_queue"};
  dbg::CondVar queue_cv_;
  std::deque<std::pair<KvTxn, OnCommit>> queue_ DOCEPH_GUARDED_BY(queue_mutex_);
  bool stopping_ DOCEPH_GUARDED_BY(queue_mutex_) = false;
  bool running_ = false;  // mount/umount/crash caller thread only
  sim::Thread thread_;

  // WAL positions (sync thread only, except at mount).
  int active_segment_ = 0;
  std::uint64_t append_off_ = 0;  // absolute device offset
  std::uint64_t generation_ = 1;
  std::uint64_t next_seq_ = 1;
  std::atomic<std::uint64_t> committed_{0};
};

}  // namespace doceph::bluestore
