#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bluestore/block_device.h"
#include "common/encoding.h"
#include "dbg/cond_var.h"
#include "dbg/mutex.h"
#include "dbg/shared_mutex.h"
#include "sim/cpu_model.h"
#include "sim/thread.h"

namespace doceph::bluestore {

/// One atomic KV mutation batch.
struct KvTxn {
  std::map<std::string, BufferList> sets;
  std::vector<std::string> rms;

  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [k, v] : sets) n += k.size() + v.length();
    for (const auto& k : rms) n += k.size();
    return n;
  }

  void encode(BufferList& bl) const {
    doceph::encode(sets, bl);
    doceph::encode(rms, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(sets, cur) && doceph::decode(rms, cur);
  }
};

/// CPU cost of KV work, charged on the "bstore_kv_sync" thread.
struct KvCostModel {
  sim::Duration per_txn = 6000;   ///< ns per committed transaction
  double per_byte_ns = 0.05;      ///< serialization of keys/values
};

/// Ordered in-memory KV store with a crash-safe write-ahead log on a block
/// device region — the metadata engine under BlueStore-lite (RocksDB's role
/// in real BlueStore). A dedicated "bstore_kv_sync" thread group-commits
/// queued transactions, exactly like Ceph's kv_sync_thread.
///
/// Sharding (`shards > 1`): the map and the WAL group-commit stream split
/// into `shards` independent shards. A key routes by a deterministic FNV-1a
/// hash of its shard token (`shard_key` extracts the token — BlueStore
/// passes the collection component so one object's onode and collection
/// keys colocate); each shard owns an equal WAL sub-region, its own
/// checkpoint chain, and its own "bstore_kv_sync" thread. A transaction
/// touching several shards falls back to an ordered chained commit
/// (ascending shard index, each link queued after the previous link's
/// record is durable); the caller's callback fires after the LAST link, so
/// an acknowledged cross-shard txn is durable on every shard. With
/// `shards == 1` (the default) layout, thread naming and timing are
/// byte-identical to the unsharded store.
///
/// WAL layout (per shard): the sub-region is split into two segments;
/// records are appended to the active segment. When it fills, a checkpoint
/// (full shard-map snapshot) opens the other segment with a higher
/// generation. mount() locates the newest checkpoint and replays records
/// after it.
///
/// A checkpoint is a CHAIN of one or two records, each tagged with
/// (chunk_index, total_chunks). The common case is a single chunk at the
/// head of the target segment; a snapshot too large to leave journal
/// headroom in one segment spills its remainder once into the head of the
/// other segment instead of failing permanently (the degraded spanning
/// regime). The spill overwrites the
/// previous checkpoint, so write order (target segment first) keeps the old
/// generation recoverable until the chain completes; a crash between the two
/// chunk writes of a SECOND consecutive spanning roll is the one window
/// with no complete chain on disk — strictly narrower than the pre-chain
/// behavior, which wedged the store with `no_space` at the first oversized
/// snapshot. The near-full gauge (`max_shard_bytes()` vs the chained
/// ceiling) exists so upper layers throttle before the ceiling becomes fatal.
class KvStore {
 public:
  using OnCommit = std::function<void(Status)>;
  /// Extracts the routing token from a key; keys with equal tokens land on
  /// the same shard. Default (empty fn): the whole key.
  using ShardKeyFn = std::function<std::string_view(const std::string&)>;

  KvStore(sim::Env& env, BlockDevice& dev, std::uint64_t wal_off,
          std::uint64_t wal_len, sim::CpuDomain* domain, KvCostModel costs = {},
          int shards = 1, ShardKeyFn shard_key = {});
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Initialize an empty store on the device (writes the first checkpoint
  /// of every shard).
  Status mkfs();

  /// Load state from the WAL (checkpoint + replay, per shard) and start the
  /// sync threads.
  Status mount();

  /// Graceful stop: drain queued transactions, checkpoint, stop the threads.
  Status umount();

  /// Simulated power loss: stop without checkpoint or drain. Queued but
  /// uncommitted transactions are lost; committed ones replay on mount.
  /// A cross-shard chain whose tail links were still queued loses those
  /// links — but the caller was never acked, so the contract holds.
  void crash();

  /// Queue a transaction; `cb` fires after the WAL record is durable (for a
  /// cross-shard txn: after the last link of the chain is durable). A
  /// transaction whose serialized record does not fit a WAL segment even
  /// right after a fresh checkpoint (the map snapshot shares the segment)
  /// fails with `no_space` — it is never written partially or past the
  /// segment end.
  void queue(KvTxn txn, OnCommit cb);

  /// Synchronous commit helper.
  Status submit(KvTxn txn);

  [[nodiscard]] std::optional<BufferList> get(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Visit all keys with `prefix`, in sorted key order across every shard
  /// (snapshot semantics not guaranteed across concurrent commits; callers
  /// serialize at a higher level). Sorted order is load-bearing: allocator
  /// rebuild, list_objects and replica scrubs iterate through here.
  void for_each_prefix(const std::string& prefix,
                       const std::function<void(const std::string&,
                                                const BufferList&)>& fn) const;

  [[nodiscard]] std::size_t num_keys() const;

  /// Total bytes of keys + values resident across all shard maps.
  [[nodiscard]] std::uint64_t map_bytes() const;

  /// Bytes resident in the FULLEST shard — the size its next checkpoint
  /// snapshot will serialize to. Compared against one shard's WAL segment
  /// this is the KV-pressure half of BlueStore's fullness() gauge (the
  /// fullest shard hits the chained-checkpoint ceiling first).
  [[nodiscard]] std::uint64_t max_shard_bytes() const;

  /// Checkpoint pressure in [0, ~1]: fullest shard's resident bytes over
  /// its WAL sub-region. With shards == 1 this is exactly the pre-sharding
  /// map_bytes()/wal_len figure.
  [[nodiscard]] double checkpoint_pressure() const;

  /// Committed transaction count (diagnostics). A cross-shard txn counts
  /// once per shard link.
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_; }

  /// Cross-shard chained commits completed (0 unless shards > 1).
  [[nodiscard]] std::uint64_t cross_shard_commits() const noexcept {
    return cross_shard_commits_;
  }

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Shard a key routes to (tests use this to craft cross-shard txns).
  [[nodiscard]] std::size_t shard_of(const std::string& key) const;

  /// WAL append cursor of one shard: absolute device offset where its next
  /// record lands. Diagnostics/tests only — racy against a concurrently
  /// committing sync thread; read it while the store is quiesced (or
  /// crashed).
  [[nodiscard]] std::uint64_t append_offset(int shard = 0) const noexcept {
    return shards_[static_cast<std::size_t>(shard)]->append_off;
  }

 private:
  struct Record;  // wire format helpers in kv.cpp

  /// All per-shard state. Every shard mutex belongs to the same lock class
  /// ("bluestore.kv_map"/"bluestore.kv_queue"); no code path ever holds two
  /// instances of a class at once — cross-shard work is CHAINED through the
  /// commit queues, never nested under two shard locks (DESIGN.md §15).
  struct Shard {
    Shard(sim::TimeKeeper& tk, std::size_t idx)
        : index(idx), queue_cv(tk, "bluestore.kv_queue_cv") {}

    const std::size_t index;  ///< position in shards_ (fixes the WAL sub-region)

    mutable dbg::SharedMutex map_mutex{"bluestore.kv_map"};
    std::map<std::string, BufferList> map DOCEPH_GUARDED_BY(map_mutex);
    std::uint64_t map_bytes DOCEPH_GUARDED_BY(map_mutex) = 0;

    // Sync-thread state.
    dbg::Mutex queue_mutex{"bluestore.kv_queue"};
    dbg::CondVar queue_cv;
    std::deque<std::pair<KvTxn, OnCommit>> queue DOCEPH_GUARDED_BY(queue_mutex);
    bool stopping DOCEPH_GUARDED_BY(queue_mutex) = false;
    sim::Thread thread;

    // WAL positions (sync thread only, except at mount).
    int active_segment = 0;
    std::uint64_t append_off = 0;  // absolute device offset
    std::uint64_t generation = 1;
    std::uint64_t next_seq = 1;
  };

  /// State of an in-flight cross-shard chained commit.
  struct Chain {
    std::vector<std::pair<std::size_t, KvTxn>> links;  // ascending shard idx
    OnCommit cb;
  };

  void sync_thread(Shard& s);
  void enqueue_shard(Shard& s, KvTxn txn, OnCommit cb);
  void queue_chain_link(const std::shared_ptr<Chain>& chain, std::size_t i);
  Status write_checkpoint(Shard& s, int segment, std::uint64_t generation);
  void apply_locked(Shard& s, const KvTxn& txn) DOCEPH_REQUIRES(s.map_mutex);
  Status replay(Shard& s);
  [[nodiscard]] std::uint64_t shard_wal_off(const Shard& s) const noexcept;
  [[nodiscard]] std::uint64_t shard_wal_len() const noexcept {
    return wal_len_ / shards_.size();
  }
  [[nodiscard]] std::uint64_t segment_off(const Shard& s, int seg) const noexcept {
    return shard_wal_off(s) +
           static_cast<std::uint64_t>(seg) * (shard_wal_len() / 2);
  }
  [[nodiscard]] std::uint64_t segment_len() const noexcept {
    return shard_wal_len() / 2;
  }

  sim::Env& env_;
  BlockDevice& dev_;
  std::uint64_t wal_off_;
  std::uint64_t wal_len_;
  sim::CpuDomain* domain_;
  KvCostModel costs_;
  ShardKeyFn shard_key_;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool running_ = false;  // mount/umount/crash caller thread only
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> cross_shard_commits_{0};
};

}  // namespace doceph::bluestore
