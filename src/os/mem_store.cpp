#include "os/mem_store.h"

#include <algorithm>

namespace doceph::os {

void MemStore::queue_transaction(Transaction txn, OnCommit on_commit) {
  Status st;
  {
    const dbg::LockGuard lk(mutex_);
    st = apply_locked(txn);
  }
  if (on_commit) on_commit(st);
}

Status MemStore::apply_locked(const Transaction& txn) {
  for (const auto& op : txn.ops()) {
    switch (op.op) {
      case TxnOp::create_collection:
        colls_.try_emplace(op.cid);
        continue;
      case TxnOp::remove_collection:
        colls_.erase(op.cid);
        continue;
      default:
        break;
    }

    auto cit = colls_.find(op.cid);
    if (cit == colls_.end())
      return Status(Errc::not_found, "collection " + op.cid.to_string());
    Collection& coll = cit->second;

    if (op.op == TxnOp::remove) {
      coll.erase(op.oid);
      continue;
    }

    Object& obj = coll[op.oid];  // touch/write create on demand
    obj.version++;
    switch (op.op) {
      case TxnOp::touch:
        break;
      case TxnOp::write: {
        const std::size_t end = op.off + op.data.length();
        if (obj.content.size() < end) obj.content.resize(end, '\0');
        op.data.copy_out(0, op.data.length(), obj.content.data() + op.off);
        break;
      }
      case TxnOp::write_full:
        obj.content = op.data.to_string();
        break;
      case TxnOp::zero: {
        const std::size_t end = op.off + op.len;
        if (obj.content.size() < end) obj.content.resize(end, '\0');
        std::fill_n(obj.content.begin() + static_cast<long>(op.off), op.len, '\0');
        break;
      }
      case TxnOp::truncate:
        obj.content.resize(op.off, '\0');
        break;
      case TxnOp::omap_set:
        for (const auto& [k, v] : op.kv) obj.omap[k] = v;
        break;
      case TxnOp::omap_rm_keys:
        for (const auto& k : op.keys) obj.omap.erase(k);
        break;
      default:
        return Status(Errc::not_supported, "bad txn op");
    }
  }
  return Status::OK();
}

Result<BufferList> MemStore::read(const coll_t& c, const ghobject_t& o,
                                  std::uint64_t off, std::uint64_t len) {
  const dbg::LockGuard lk(mutex_);
  auto cit = colls_.find(c);
  if (cit == colls_.end()) return Status(Errc::not_found, "collection");
  auto oit = cit->second.find(o);
  if (oit == cit->second.end()) return Status(Errc::not_found, o.to_string());
  const std::string& content = oit->second.content;
  if (off >= content.size()) return BufferList{};
  const std::uint64_t n =
      len == 0 ? content.size() - off : std::min<std::uint64_t>(len, content.size() - off);
  return BufferList::copy_of(content.data() + off, n);
}

Result<ObjectInfo> MemStore::stat(const coll_t& c, const ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  auto cit = colls_.find(c);
  if (cit == colls_.end()) return Status(Errc::not_found, "collection");
  auto oit = cit->second.find(o);
  if (oit == cit->second.end()) return Status(Errc::not_found, o.to_string());
  return ObjectInfo{oit->second.content.size(), oit->second.version};
}

bool MemStore::exists(const coll_t& c, const ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  auto cit = colls_.find(c);
  return cit != colls_.end() && cit->second.contains(o);
}

Result<std::map<std::string, BufferList>> MemStore::omap_get(const coll_t& c,
                                                             const ghobject_t& o) {
  const dbg::LockGuard lk(mutex_);
  auto cit = colls_.find(c);
  if (cit == colls_.end()) return Status(Errc::not_found, "collection");
  auto oit = cit->second.find(o);
  if (oit == cit->second.end()) return Status(Errc::not_found, o.to_string());
  return oit->second.omap;
}

Result<std::vector<ghobject_t>> MemStore::list_objects(const coll_t& c) {
  const dbg::LockGuard lk(mutex_);
  auto cit = colls_.find(c);
  if (cit == colls_.end()) return Status(Errc::not_found, "collection");
  std::vector<ghobject_t> out;
  out.reserve(cit->second.size());
  for (const auto& [oid, obj] : cit->second) out.push_back(oid);
  return out;
}

std::vector<coll_t> MemStore::list_collections() {
  const dbg::LockGuard lk(mutex_);
  std::vector<coll_t> out;
  out.reserve(colls_.size());
  for (const auto& [cid, coll] : colls_) out.push_back(cid);
  return out;
}

bool MemStore::collection_exists(const coll_t& c) {
  const dbg::LockGuard lk(mutex_);
  return colls_.contains(c);
}

}  // namespace doceph::os
