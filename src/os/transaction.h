#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"
#include "os/types.h"

namespace doceph::os {

/// Mutation kinds supported by the stores (the subset of Ceph's
/// ObjectStore::Transaction ops this system needs).
enum class TxnOp : std::uint8_t {
  touch = 1,          ///< ensure object exists
  write = 2,          ///< write data at offset (extends if needed)
  write_full = 3,     ///< replace entire object content
  zero = 4,           ///< zero range
  truncate = 5,
  remove = 6,
  omap_set = 7,       ///< merge key/value pairs
  omap_rm_keys = 8,
  create_collection = 9,
  remove_collection = 10,
};

/// An ordered batch of mutations applied atomically by a store. Encodable:
/// the DoCeph proxy serializes transactions to ship them from the DPU-side
/// OSD to the host-side BlueStore (bulk data travels separately via DMA).
class Transaction {
 public:
  struct Op {
    TxnOp op{};
    coll_t cid;
    ghobject_t oid;
    std::uint64_t off = 0;
    std::uint64_t len = 0;
    BufferList data;                          // write payload
    std::map<std::string, BufferList> kv;     // omap_set pairs
    std::vector<std::string> keys;            // omap_rm_keys

    void encode(BufferList& bl) const;
    bool decode(BufferList::Cursor& cur);
  };

  // ---- builders --------------------------------------------------------------
  void touch(const coll_t& c, const ghobject_t& o);
  void write(const coll_t& c, const ghobject_t& o, std::uint64_t off, BufferList data);
  void write_full(const coll_t& c, const ghobject_t& o, BufferList data);
  void zero(const coll_t& c, const ghobject_t& o, std::uint64_t off, std::uint64_t len);
  void truncate(const coll_t& c, const ghobject_t& o, std::uint64_t size);
  void remove(const coll_t& c, const ghobject_t& o);
  void omap_set(const coll_t& c, const ghobject_t& o,
                std::map<std::string, BufferList> kv);
  void omap_rm_keys(const coll_t& c, const ghobject_t& o,
                    std::vector<std::string> keys);
  void create_collection(const coll_t& c);
  void remove_collection(const coll_t& c);

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t num_ops() const noexcept { return ops_.size(); }

  /// Bulk payload bytes carried by write/write_full/omap ops — what the
  /// DoCeph data plane moves over DMA.
  [[nodiscard]] std::uint64_t data_bytes() const noexcept;

  [[nodiscard]] std::vector<Op>& ops() noexcept { return ops_; }
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }

  void append(Transaction&& other);

  /// Distributed-trace identity of the op this transaction belongs to.
  /// Encoded with the transaction, so it survives the primary->replica
  /// repop hop and the DPU->host WireTxn hop — the stores at both ends
  /// attach their commit spans to the same trace (DESIGN.md §12).
  void set_trace(const trace::TraceContext& ctx) noexcept { trace_ = ctx; }
  [[nodiscard]] const trace::TraceContext& trace() const noexcept { return trace_; }

  void encode(BufferList& bl) const;
  bool decode(BufferList::Cursor& cur);

 private:
  std::vector<Op> ops_;
  trace::TraceContext trace_;
};

}  // namespace doceph::os
