#pragma once

#include <map>
#include <string>

#include "dbg/mutex.h"
#include "os/object_store.h"

namespace doceph::os {

/// Trivial in-memory ObjectStore: applies transactions synchronously and
/// fires on_commit inline. The reference implementation for store semantics
/// (BlueStore-lite and the proxy are tested against it) and the backend for
/// unit tests that don't need a device model.
class MemStore final : public ObjectStore {
 public:
  Status mount() override { return Status::OK(); }
  Status umount() override { return Status::OK(); }

  void queue_transaction(Transaction txn, OnCommit on_commit) override;

  Result<BufferList> read(const coll_t& c, const ghobject_t& o, std::uint64_t off,
                          std::uint64_t len) override;
  Result<ObjectInfo> stat(const coll_t& c, const ghobject_t& o) override;
  bool exists(const coll_t& c, const ghobject_t& o) override;
  Result<std::map<std::string, BufferList>> omap_get(const coll_t& c,
                                                     const ghobject_t& o) override;
  Result<std::vector<ghobject_t>> list_objects(const coll_t& c) override;
  std::vector<coll_t> list_collections() override;
  bool collection_exists(const coll_t& c) override;

  [[nodiscard]] std::string store_type() const override { return "memstore"; }

  /// Apply one transaction to an object map (shared with tests; must hold
  /// external synchronization).
  struct Object {
    std::string content;
    std::map<std::string, BufferList> omap;
    std::uint64_t version = 0;
  };
  using Collection = std::map<ghobject_t, Object>;

 private:
  Status apply_locked(const Transaction& txn);

  dbg::Mutex mutex_{"os.mem_store"};
  std::map<coll_t, Collection> colls_;
};

}  // namespace doceph::os
