#pragma once

#include <cstdint>
#include <string>

#include "common/encoding.h"

namespace doceph::os {

using pool_t = std::uint32_t;

/// Collection id: one collection per placement group (Ceph's coll_t).
struct coll_t {
  pool_t pool = 0;
  std::uint32_t pg_seed = 0;

  friend bool operator==(const coll_t&, const coll_t&) = default;
  friend auto operator<=>(const coll_t&, const coll_t&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(pool) + "." + std::to_string(pg_seed);
  }

  void encode(BufferList& bl) const {
    doceph::encode(pool, bl);
    doceph::encode(pg_seed, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(pool, cur) && doceph::decode(pg_seed, cur);
  }
};

/// Global object id (Ceph's ghobject_t, simplified to pool + name).
struct ghobject_t {
  pool_t pool = 0;
  std::string name;

  friend bool operator==(const ghobject_t&, const ghobject_t&) = default;
  friend auto operator<=>(const ghobject_t&, const ghobject_t&) = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(pool) + "/" + name;
  }

  void encode(BufferList& bl) const {
    doceph::encode(pool, bl);
    doceph::encode(name, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(pool, cur) && doceph::decode(name, cur);
  }
};

/// stat() result.
struct ObjectInfo {
  std::uint64_t size = 0;
  std::uint64_t version = 0;  ///< bumped on every mutating transaction

  friend bool operator==(const ObjectInfo&, const ObjectInfo&) = default;

  void encode(BufferList& bl) const {
    doceph::encode(size, bl);
    doceph::encode(version, bl);
  }
  bool decode(BufferList::Cursor& cur) {
    return doceph::decode(size, cur) && doceph::decode(version, cur);
  }
};

}  // namespace doceph::os
