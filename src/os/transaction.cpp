#include "os/transaction.h"

namespace doceph::os {

void Transaction::Op::encode(BufferList& bl) const {
  doceph::encode(op, bl);
  cid.encode(bl);
  oid.encode(bl);
  doceph::encode(off, bl);
  doceph::encode(len, bl);
  doceph::encode(data, bl);
  doceph::encode(kv, bl);
  doceph::encode(keys, bl);
}

bool Transaction::Op::decode(BufferList::Cursor& cur) {
  return doceph::decode(op, cur) && cid.decode(cur) && oid.decode(cur) &&
         doceph::decode(off, cur) && doceph::decode(len, cur) &&
         doceph::decode(data, cur) && doceph::decode(kv, cur) &&
         doceph::decode(keys, cur);
}

void Transaction::touch(const coll_t& c, const ghobject_t& o) {
  ops_.push_back(Op{.op = TxnOp::touch, .cid = c, .oid = o});
}

void Transaction::write(const coll_t& c, const ghobject_t& o, std::uint64_t off,
                        BufferList data) {
  Op op{.op = TxnOp::write, .cid = c, .oid = o, .off = off, .len = data.length()};
  op.data = std::move(data);
  ops_.push_back(std::move(op));
}

void Transaction::write_full(const coll_t& c, const ghobject_t& o, BufferList data) {
  Op op{.op = TxnOp::write_full, .cid = c, .oid = o, .off = 0, .len = data.length()};
  op.data = std::move(data);
  ops_.push_back(std::move(op));
}

void Transaction::zero(const coll_t& c, const ghobject_t& o, std::uint64_t off,
                       std::uint64_t len) {
  ops_.push_back(Op{.op = TxnOp::zero, .cid = c, .oid = o, .off = off, .len = len});
}

void Transaction::truncate(const coll_t& c, const ghobject_t& o, std::uint64_t size) {
  ops_.push_back(Op{.op = TxnOp::truncate, .cid = c, .oid = o, .off = size});
}

void Transaction::remove(const coll_t& c, const ghobject_t& o) {
  ops_.push_back(Op{.op = TxnOp::remove, .cid = c, .oid = o});
}

void Transaction::omap_set(const coll_t& c, const ghobject_t& o,
                           std::map<std::string, BufferList> kv) {
  Op op{.op = TxnOp::omap_set, .cid = c, .oid = o};
  op.kv = std::move(kv);
  ops_.push_back(std::move(op));
}

void Transaction::omap_rm_keys(const coll_t& c, const ghobject_t& o,
                               std::vector<std::string> keys) {
  Op op{.op = TxnOp::omap_rm_keys, .cid = c, .oid = o};
  op.keys = std::move(keys);
  ops_.push_back(std::move(op));
}

void Transaction::create_collection(const coll_t& c) {
  ops_.push_back(Op{.op = TxnOp::create_collection, .cid = c});
}

void Transaction::remove_collection(const coll_t& c) {
  ops_.push_back(Op{.op = TxnOp::remove_collection, .cid = c});
}

std::uint64_t Transaction::data_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& op : ops_) {
    total += op.data.length();
    for (const auto& [k, v] : op.kv) total += v.length();
  }
  return total;
}

void Transaction::append(Transaction&& other) {
  for (auto& op : other.ops_) ops_.push_back(std::move(op));
  other.ops_.clear();
  // Merging must not sever the op's trace: a receiver without an identity
  // adopts the donor's (the ensure_pg_collection prepend pattern builds the
  // merged txn from a fresh, traceless one).
  if (!trace_.valid()) trace_ = other.trace_;
}

void Transaction::encode(BufferList& bl) const {
  doceph::encode(ops_, bl);
  doceph::encode(trace_, bl);
}

bool Transaction::decode(BufferList::Cursor& cur) {
  return doceph::decode(ops_, cur) && doceph::decode(trace_, cur);
}

}  // namespace doceph::os
