#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/perf_counters.h"
#include "common/result.h"
#include "os/transaction.h"

namespace doceph::os {

/// The pluggable storage-backend interface (Ceph's ObjectStore). The OSD is
/// written against this; DoCeph exploits exactly this seam: on the DPU the
/// OSD holds a ProxyObjectStore that forwards calls to a host-side BlueStore.
///
/// Writes are asynchronous: queue_transaction returns immediately and
/// `on_commit` fires (possibly on an internal thread) once the batch is
/// durable. Reads are synchronous and may block the calling sim thread.
class ObjectStore {
 public:
  using OnCommit = std::function<void(Status)>;

  virtual ~ObjectStore() = default;

  virtual Status mount() = 0;
  virtual Status umount() = 0;

  /// Apply `txn` atomically; `on_commit` fires after durability. Callbacks
  /// for transactions queued from the same thread fire in queue order.
  virtual void queue_transaction(Transaction txn, OnCommit on_commit) = 0;

  /// Read [off, off+len) of an object (len 0 = whole object).
  virtual Result<BufferList> read(const coll_t& c, const ghobject_t& o,
                                  std::uint64_t off, std::uint64_t len) = 0;

  virtual Result<ObjectInfo> stat(const coll_t& c, const ghobject_t& o) = 0;
  virtual bool exists(const coll_t& c, const ghobject_t& o) = 0;

  virtual Result<std::map<std::string, BufferList>> omap_get(const coll_t& c,
                                                             const ghobject_t& o) = 0;

  /// Objects in a collection, sorted.
  virtual Result<std::vector<ghobject_t>> list_objects(const coll_t& c) = 0;
  virtual std::vector<coll_t> list_collections() = 0;
  virtual bool collection_exists(const coll_t& c) = 0;

  /// Human-readable backend kind ("memstore", "bluestore", "proxy").
  [[nodiscard]] virtual std::string store_type() const = 0;

  /// The store's PerfCounters block, if it exports one (may be null). The
  /// owning daemon folds it into its perf collection for "perf dump".
  [[nodiscard]] virtual perf::PerfCountersRef perf_counters() const {
    return nullptr;
  }

  /// Fraction of backend capacity in use — the max over allocator pressure
  /// and KV/WAL checkpoint pressure for BlueStore-backed stores (it can
  /// exceed 1.0 in the degraded spanning regime). 0 when unknown; the OSD's
  /// near-full admission throttle compares this against its configured
  /// high-water ratio.
  [[nodiscard]] virtual double fullness() const { return 0.0; }
};

using ObjectStoreRef = std::unique_ptr<ObjectStore>;

}  // namespace doceph::os
