#!/usr/bin/env bash
# doceph verification matrix: lint + lockdep + sanitizer test runs.
#
#   scripts/check.sh            # full matrix: lint, Debug+lockdep, TSan
#   scripts/check.sh lint       # doceph_lint.py + clang-tidy
#   scripts/check.sh default    # stock configure + ctest (the tier-1 gate)
#   scripts/check.sh lockdep    # Debug + DOCEPH_LOCKDEP=ON ctest
#   scripts/check.sh tsan       # ThreadSanitizer ctest
#   scripts/check.sh asan       # Address+UB sanitizer ctest
#   scripts/check.sh obs        # observability suites under lockdep + TSan
#   scripts/check.sh thread-safety  # Clang -Wthread-safety build (errors)
#
# Each configuration gets its own build tree (build-<name>/) so the presets
# never contaminate each other; trees are reused across runs for speed.
# Also invocable as `cmake --build build --target check`.
#
# Knobs: JOBS (parallelism), CTEST_FILTER (-R regex; a filter matching no
# tests is an error, not a silent pass), CTEST_TIMEOUT (per-test seconds),
# CTEST_TIMEOUT_ASAN (asan-only override; sanitizer runs are 3-5x slower).
set -u -o pipefail

cd "$(dirname "$0")/.." || exit 1
JOBS=${JOBS:-$(nproc)}
CTEST_TIMEOUT=${CTEST_TIMEOUT:-1200}
FAILED=()

# Compiler cache when available (CI restores ~/.cache/ccache across runs).
LAUNCHER=()
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER=(-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

banner() { printf '\n=== %s ===\n' "$*"; }

run_config() { # name cmake-args...
  local name=$1
  shift
  banner "configure+build: $name ($*)"
  cmake -B "build-$name" -S . "${LAUNCHER[@]}" "$@" \
    > "build-$name.configure.log" 2>&1 || {
    echo "configure failed (build-$name.configure.log)"
    FAILED+=("$name:configure")
    return 1
  }
  # Zero per-config so the post-build stats show THIS build's hit rate.
  [ ${#LAUNCHER[@]} -gt 0 ] && ccache -z > /dev/null
  cmake --build "build-$name" -j "$JOBS" > "build-$name.build.log" 2>&1 || {
    echo "build failed (build-$name.build.log)"
    tail -30 "build-$name.build.log"
    FAILED+=("$name:build")
    return 1
  }
  if [ ${#LAUNCHER[@]} -gt 0 ]; then
    banner "ccache stats: $name"
    ccache -s
  fi
  banner "ctest: $name${CTEST_FILTER:+ (-R $CTEST_FILTER)}"
  # --no-tests=error: a mistyped filter must fail loudly, not pass silently.
  # shellcheck disable=SC2086
  if ! ctest --test-dir "build-$name" --output-on-failure -j "$JOBS" \
    --timeout "$CTEST_TIMEOUT" --no-tests=error \
    ${CTEST_FILTER:+-R "$CTEST_FILTER"}; then
    FAILED+=("$name:ctest")
    return 1
  fi
}

run_lint() {
  banner "doceph_lint"
  # Repo invariants (bare std primitives, stray native(), fault-point
  # registry, perf-counter ranges). Pure python; always available.
  if ! python3 scripts/doceph_lint.py; then
    FAILED+=("lint:doceph_lint")
  fi
  banner "clang-tidy"
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "clang-tidy not installed; skipping lint (install clang-tidy to enable)"
    return 0
  fi
  cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    > build-lint.configure.log 2>&1 || {
    FAILED+=("lint:configure")
    return 1
  }
  local files
  files=$(git ls-files 'src/*.cpp' 'tests/*.cpp')
  if command -v run-clang-tidy > /dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -p build-lint -quiet $files || FAILED+=("lint:clang-tidy")
  else
    # shellcheck disable=SC2086
    clang-tidy -p build-lint --quiet $files || FAILED+=("lint:clang-tidy")
  fi
}

MODE=${1:-all}
CTEST_FILTER=${CTEST_FILTER:-}
case "$MODE" in
  lint) run_lint ;;
  obs)
    # The perf-counter / op-tracker / admin-socket suites (plus the cluster
    # integration that drives them end-to-end) under lockdep and TSan; both
    # must come back clean.
    CTEST_FILTER='test_common|test_osd|test_cluster|test_dbg'
    run_config lockdep -DCMAKE_BUILD_TYPE=Debug -DDOCEPH_LOCKDEP=ON
    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCEPH_TSAN=ON
    ;;
  default) run_config default ;;
  lockdep) run_config lockdep -DCMAKE_BUILD_TYPE=Debug -DDOCEPH_LOCKDEP=ON ;;
  tsan) run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCEPH_TSAN=ON ;;
  asan)
    # Address+UB instrumented tests run several times slower than stock;
    # give each one a bigger ctest --timeout than the 1200s default (override
    # with CTEST_TIMEOUT_ASAN).
    CTEST_TIMEOUT=${CTEST_TIMEOUT_ASAN:-1800}
    run_config asan -DCMAKE_BUILD_TYPE=Debug -DDOCEPH_ASAN_UBSAN=ON
    ;;
  thread-safety)
    # Static lock checking: build only (the annotations are compile-time; the
    # binaries are the same ones `default` already tests).
    if ! command -v clang++ > /dev/null 2>&1; then
      echo "clang++ not installed; skipping thread-safety build (install clang to enable)"
    else
      banner "configure+build: thread-safety (Clang -Wthread-safety)"
      cmake -B build-thread-safety -S . "${LAUNCHER[@]}" \
        -DCMAKE_CXX_COMPILER=clang++ -DDOCEPH_THREAD_SAFETY=ON \
        > build-thread-safety.configure.log 2>&1 || {
        echo "configure failed (build-thread-safety.configure.log)"
        FAILED+=("thread-safety:configure")
      }
      if [ ${#FAILED[@]} -eq 0 ]; then
        cmake --build build-thread-safety -j "$JOBS" \
          > build-thread-safety.build.log 2>&1 || {
          echo "build failed (build-thread-safety.build.log)"
          grep -E 'thread-safety|error:' build-thread-safety.build.log | head -40
          FAILED+=("thread-safety:build")
        }
      fi
    fi
    ;;
  all)
    run_lint
    run_config lockdep -DCMAKE_BUILD_TYPE=Debug -DDOCEPH_LOCKDEP=ON
    run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDOCEPH_TSAN=ON
    ;;
  *)
    echo "usage: $0 [all|lint|default|lockdep|tsan|asan|obs|thread-safety]" >&2
    exit 2
    ;;
esac

banner "summary"
if [ ${#FAILED[@]} -eq 0 ]; then
  echo "verification matrix ($MODE): all green"
else
  echo "FAILURES: ${FAILED[*]}"
  exit 1
fi
