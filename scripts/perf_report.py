#!/usr/bin/env python3
"""Perf-delta report for CI: compare a perf_smoke JSON against the committed
baseline and render a markdown table (per config: IOPS, p50, p99, host-CPU
cores, with signed deltas).

Usage:
    perf_report.py BASELINE.json CURRENT.json

The markdown is appended to $GITHUB_STEP_SUMMARY when that variable is set
(the GitHub Actions job summary) and always echoed to stdout, so the table
shows up in local runs and in the step log too. Exit code is always 0: the
regression *gate* lives in perf_smoke itself; this script only reports.
"""

import json
import os
import sys

# Render order; unknown configs found in either file are appended after.
KNOWN_CONFIGS = ["baseline", "doceph", "baseline_smallwrite", "doceph_smallwrite",
                 "baseline_smallwrite_sharded", "doceph_smallwrite_sharded"]
# Non-result blocks perf_smoke emits alongside the configs.
SKIP_KEYS = {"doceph_variance"}

METRICS = [
    # (json key, header, scale, unit, higher_is_better)
    ("ops_per_sec", "IOPS", 1.0, "", True),
    ("p50_lat_s", "p50", 1e3, " ms", False),
    ("p99_lat_s", "p99", 1e3, " ms", False),
    ("host_cores", "host cores", 1.0, "", False),
]

# Backpressure telemetry (per config; perf_smoke emits these since the
# overload-collapse fix). failed_ops must stay 0 — throttles are the
# graceful path, failures are the collapse the backpressure PR removed.
THROTTLE_KEYS = [
    ("failed_ops", "failed ops"),
    ("osd_throttled", "OSD throttles"),
    ("proxy_throttled", "proxy throttles"),
    ("client_throttled", "client throttles"),
]

# Per-stage OSD latency decomposition (perf_smoke emits stages_s since the
# tracing PR). The stage deltas attribute an IOPS move to the pipeline
# stage that caused it — e.g. the sharding PR shows up as queue + store
# (lanes + KV streams) and replication (parallel fan-out) drops.
STAGE_KEYS = [
    ("messenger", "messenger"),
    ("queue", "queue"),
    ("store", "store"),
    ("replication", "replication"),
]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_report: cannot read {path}: {e}", file=sys.stderr)
        return None


def fmt(value, scale):
    if value is None:
        return "-"
    v = value * scale
    return f"{v:.3f}" if abs(v) < 10 else f"{v:.1f}"


def delta_cell(base, cur, higher_is_better):
    if base is None or cur is None or base == 0:
        return "n/a"
    pct = (cur - base) / base * 100.0
    improved = pct >= 0 if higher_is_better else pct <= 0
    mark = "" if abs(pct) < 0.05 else (" ✅" if improved else " 🔺")
    return f"{pct:+.1f}%{mark}"


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    base_doc = load(argv[1])
    cur_doc = load(argv[2])
    if cur_doc is None:
        return 0  # nothing to report; the bench step already failed loudly

    base_doc = base_doc or {}
    configs = [c for c in KNOWN_CONFIGS if c in base_doc or c in cur_doc]
    for doc in (base_doc, cur_doc):
        for key, val in doc.items():
            if key not in configs and key not in SKIP_KEYS and isinstance(val, dict):
                configs.append(key)

    lines = ["## Perf delta vs committed baseline", ""]
    header = "| config |"
    rule = "|---|"
    for _, title, _, unit, _ in METRICS:
        header += f" {title}{unit} (base → PR) | Δ |"
        rule += "---|---|"
    lines += [header, rule]

    for cfg in configs:
        base = base_doc.get(cfg) or {}
        cur = cur_doc.get(cfg) or {}
        row = f"| {cfg} |"
        for key, _, scale, _, higher in METRICS:
            b, c = base.get(key), cur.get(key)
            row += f" {fmt(b, scale)} → {fmt(c, scale)} | {delta_cell(b, c, higher)} |"
        lines.append(row)

    # Throttle/backpressure table: only for configs whose current run
    # reports the telemetry (older JSONs without the keys render nothing).
    throttled_cfgs = [c for c in configs
                      if any(k in (cur_doc.get(c) or {}) for k, _ in THROTTLE_KEYS)]
    if throttled_cfgs:
        lines += ["", "### Backpressure", "",
                  "| config | " + " | ".join(t for _, t in THROTTLE_KEYS) + " |",
                  "|---|" + "---|" * len(THROTTLE_KEYS)]
        for cfg in throttled_cfgs:
            cur = cur_doc.get(cfg) or {}
            cells = []
            for key, _ in THROTTLE_KEYS:
                v = cur.get(key)
                if key == "failed_ops" and v is not None:
                    cells.append(f"{v} {'✅' if v == 0 else '❌'}")
                else:
                    cells.append("-" if v is None else str(v))
            lines.append(f"| {cfg} | " + " | ".join(cells) + " |")
        lines += ["", "Throttles are retried, not failed: any nonzero "
                  "`failed ops` is a regression of the graceful-degradation "
                  "contract (DESIGN.md §14)."]

    # Per-stage latency deltas: configs where both runs report stages_s.
    staged_cfgs = [c for c in configs
                   if isinstance(cur_doc.get(c), dict)
                   and "stages_s" in (cur_doc.get(c) or {})]
    if staged_cfgs:
        lines += ["", "### Per-stage OSD latency (base → PR)", "",
                  "| config | " + " | ".join(
                      f"{t} (ms) | Δ" for _, t in STAGE_KEYS) + " |",
                  "|---|" + "---|---|" * len(STAGE_KEYS)]
        for cfg in staged_cfgs:
            base_st = (base_doc.get(cfg) or {}).get("stages_s") or {}
            cur_st = (cur_doc.get(cfg) or {}).get("stages_s") or {}
            row = f"| {cfg} |"
            for key, _ in STAGE_KEYS:
                b, c = base_st.get(key), cur_st.get(key)
                row += (f" {fmt(b, 1e3)} → {fmt(c, 1e3)} |"
                        f" {delta_cell(b, c, False)} |")
            lines.append(row)
        lines += ["", "Stages are the Fig.-2 decomposition measured on the "
                  "primary OSD (queue = op-lane wait, store = ObjectStore "
                  "prep + WAL commit, replication = repop fan-out wait)."]

    lines += [
        "",
        "IOPS: higher is better; p50/p99/host cores: lower is better. "
        "The `*_smallwrite` rows are the 16 KB qd16 lap where the batched "
        "offload hot path (comch doorbell coalescing + scatter-gather DMA + "
        "write corking) earns its keep.",
    ]
    report = "\n".join(lines) + "\n"

    print(report)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
