#!/usr/bin/env python3
"""doceph_lint: repo-specific concurrency/observability invariants.

Rules (each finding prints as `path:line: [rule] message`):

  bare-mutex      A bare std::mutex / std::condition_variable /
                  std::shared_mutex DECLARATION in product code (src/)
                  outside the substrate (src/dbg/, src/sim/). Everything
                  above the substrate must use dbg::Mutex/dbg::SharedMutex/
                  dbg::CondVar so lockdep and the Clang thread-safety
                  annotations see it. Justified exceptions carry an inline
                  waiver on the same line:
                      std::mutex m;  // doceph-lint: allow(bare-mutex) <reason>
                  tests/ and bench/ are exempt by design: harness locals
                  there synchronize with unregistered gtest threads, where
                  the sim-time dbg::CondVar cannot be used.

  native          dbg::Mutex::native() escapes the instrumented API; it is
                  reserved for the condvar substrate (src/dbg/,
                  src/sim/time_keeper.*). No waiver.

  fault-point     A FaultRegistry point name used at a call site
                  (should_fire/hit/set/fire_next/clear/hits/fires) that is
                  not declared in src/common/fault_points.h. A typo here
                  arms or probes a point nothing ever consults — it fails
                  lint instead of silently never firing.

  trace-point     A span-name literal passed to Tracer::span()/record_span()
                  that is not declared in src/common/trace_points.h. A typo
                  here produces an orphan span that silently fractures the
                  op's span tree — it fails lint instead.

  counter-range   Two perf-counter enum blocks (`l_X_first = N ... l_X_last`)
                  whose index ranges overlap. Blocks are spaced in 1000-wide
                  decades (msgr 90000, osd 91000, ...); an overlap would let
                  two subsystems write the same slot in merged dumps.

  shard-bounds    A `*_shards` config knob declaration with no bounds check
                  (`std::max` / `std::clamp` / `assert` / `>= 1` mentioning
                  the knob) anywhere in the linted scope. Every shard count
                  must be clamped to >= 1 at its config parse site: a zero
                  slips straight into a `% shards` and a modulo-by-zero
                  (DESIGN.md §15) — it fails lint when the knob is added,
                  not when someone first sets it to 0.

  errc-to-string  An `enum class Errc` enumerator with no matching
                  `case Errc::<name>:` in errc_name()'s switch. A new error
                  code without a name prints as "error N" in every throttle
                  log, test failure and Status::to_string() — it fails lint
                  when the code is added, not when someone finally reads
                  the log.

Modes:
  doceph_lint.py                  lint the tree (src/ tests/ bench/ examples/,
                                  minus tests/lint/ fixtures); exit 1 on any
                                  finding.
  doceph_lint.py --self-test DIR  lint the fixture files under DIR; every
                                  `// doceph-lint-expect: <rule>` annotation
                                  must be matched by >=1 finding of that rule
                                  in that file, or the self-test fails. This
                                  is how tests/lint/ proves the linter still
                                  catches each violation class.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

FAULT_POINTS_HEADER = "src/common/fault_points.h"
TRACE_POINTS_HEADER = "src/common/trace_points.h"

# Directories whose files are linted in default mode.
LINT_ROOTS = ("src", "tests", "bench", "examples")
# Fixture directory: intentional violations, excluded from default mode.
FIXTURE_DIR = "tests/lint"

# bare-mutex: only product code is checked; within it, the substrate
# directories (where bare std primitives are the point) are exempt.
BARE_MUTEX_CHECKED_DIR = "src/"
BARE_MUTEX_ALLOWED_DIRS = ("src/dbg/", "src/sim/")
# native(): the condvar substrate bridges dbg::Mutex to sim::CondVar.
NATIVE_ALLOWED = ("src/dbg/", "src/sim/time_keeper.")

WAIVER_RE = re.compile(r"//\s*doceph-lint:\s*allow\(bare-mutex\)")
EXPECT_RE = re.compile(r"//\s*doceph-lint-expect:\s*([a-z-]+)")

# A *declaration*: the bare type followed by an identifier (member, local or
# global). Deliberately does not match std::lock_guard<std::mutex> etc. —
# the invariant is about where primitive STATE lives, and usages cannot
# outlive their declaration.
BARE_DECL_RE = re.compile(
    r"(?:^|[\s(])(?:mutable\s+)?"
    r"std::(mutex|condition_variable(?:_any)?|shared_mutex|shared_timed_mutex|"
    r"recursive_mutex|timed_mutex)\s+[A-Za-z_]\w*\s*[;{=]"
)

NATIVE_RE = re.compile(r"\.\s*native\s*\(\s*\)")

# Call sites consuming a fault-point name as their first string argument.
# The "<layer>.<event>" shape (a dot) keeps generic .set("key", ...) calls on
# unrelated classes from matching.
FAULT_CALL_RE = re.compile(
    r"\.\s*(should_fire|hit|set|fire_next|clear|hits|fires)\s*\(\s*\"([a-z0-9_]+\.[a-z0-9_]+)\""
)

FAULT_DECL_RE = re.compile(r"\"([a-z0-9_]+\.[a-z0-9_]+)\"")

# Span-name literals at Tracer call sites. Names are "<layer>.<event>" with
# optional further dots (e.g. "osd.stage.queue"); the domain argument that
# follows is free-form and is not checked.
TRACE_CALL_RE = re.compile(
    r"\.\s*(span|record_span)\s*\(\s*\"((?:[a-z0-9_]+\.)+[a-z0-9_]+)\""
)

TRACE_DECL_RE = re.compile(r"\"((?:[a-z0-9_]+\.)+[a-z0-9_]+)\"")

FIRST_RE = re.compile(r"\bl_([A-Za-z0-9_]+)_first\s*=\s*(\d+)")

# shard-bounds: a `*_shards` knob DECLARATION (int member/local with an
# initializer). `op_shards_override`-style names deliberately do not match:
# overrides funnel through the knob they override, which carries the clamp.
SHARD_DECL_RE = re.compile(r"\bint\s+(\w*_shards)\s*=")
# A line "checks" a knob when it mentions the knob together with a clamp
# or an assertion. `>= 1` covers hand-rolled guards and doc'd asserts.
SHARD_CHECK_TOKENS = ("std::max", "std::clamp", "assert", ">= 1")

# errc-to-string: the enum lives in status.h, the name switch in status.cpp.
ERRC_ENUM_HEADER = "src/common/status.h"
ERRC_NAME_IMPL = "src/common/status.cpp"
ERRC_ENUM_RE = re.compile(r"\benum\s+class\s+Errc\b")
ERRC_ENUMERATOR_RE = re.compile(r"^\s*([a-z_][a-z0-9_]*)\s*(?:=\s*[^,]*)?,?\s*$")
ERRC_CASE_RE = re.compile(r"\bcase\s+Errc::([a-z_][a-z0-9_]*)\s*:")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.msg}"


def strip_line_comment(line: str) -> str:
    """Drop // comments so commented-out code never triggers findings.
    (Waivers/expects are read from the raw line before stripping.)"""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def load_fault_registry() -> set[str]:
    path = REPO / FAULT_POINTS_HEADER
    if not path.is_file():
        return set()
    return set(FAULT_DECL_RE.findall(path.read_text()))


def load_trace_registry() -> set[str]:
    path = REPO / TRACE_POINTS_HEADER
    if not path.is_file():
        return set()
    return set(TRACE_DECL_RE.findall(path.read_text()))


def rel(path: Path) -> str:
    try:
        return path.relative_to(REPO).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, registry: set[str], trace_registry: set[str],
              enforce_allowlists: bool = True):
    findings: list[Finding] = []
    text = path.read_text(errors="replace")
    relpath = rel(path)

    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        # Cheap block-comment tracking: good enough for this tree's style
        # (no code after */ on the same line).
        line = raw
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1]
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]
        code = strip_line_comment(line)

        # Rule: bare-mutex
        allowed_dir = enforce_allowlists and (
            not relpath.startswith(BARE_MUTEX_CHECKED_DIR)
            or relpath.startswith(BARE_MUTEX_ALLOWED_DIRS))
        if not allowed_dir and BARE_DECL_RE.search(code) and not WAIVER_RE.search(raw):
            findings.append(Finding(
                path, lineno, "bare-mutex",
                "bare std synchronization primitive outside src/dbg//src/sim/; "
                "use dbg::Mutex/dbg::SharedMutex/dbg::CondVar, or add "
                "'// doceph-lint: allow(bare-mutex) <reason>'"))

        # Rule: native
        native_ok = enforce_allowlists and relpath.startswith(NATIVE_ALLOWED)
        if not native_ok and NATIVE_RE.search(code):
            findings.append(Finding(
                path, lineno, "native",
                "dbg::Mutex::native() escapes lockdep and the thread-safety "
                "analysis; it is reserved for the condvar substrate "
                "(src/dbg/, src/sim/time_keeper.*)"))

        # Rule: fault-point
        for _verb, point in FAULT_CALL_RE.findall(code):
            if point not in registry:
                findings.append(Finding(
                    path, lineno, "fault-point",
                    f'fault point "{point}" is not declared in '
                    f"{FAULT_POINTS_HEADER}; declare it there (typo-proofing: "
                    "unregistered names never fire)"))

        # Rule: trace-point
        for _verb, point in TRACE_CALL_RE.findall(code):
            if point not in trace_registry:
                findings.append(Finding(
                    path, lineno, "trace-point",
                    f'span name "{point}" is not declared in '
                    f"{TRACE_POINTS_HEADER}; declare it there (typo-proofing: "
                    "unregistered names orphan the span from its op tree)"))

    return findings


def collect_counter_blocks(paths):
    """Find perf-counter enum blocks: l_X_first = N ... l_X_last, range
    [N, N + number of enumerators between them]."""
    blocks = []  # (name, lo, hi, path, line)
    for path in paths:
        text = path.read_text(errors="replace")
        lines = text.splitlines()
        for lineno, raw in enumerate(lines, 1):
            m = FIRST_RE.search(strip_line_comment(raw))
            if not m:
                continue
            name, lo = m.group(1), int(m.group(2))
            last_tok = f"l_{name}_last"
            # Count enumerators strictly between _first and _last: each is
            # one identifier starting with l_ followed by ',' (values are
            # sequential — the tree never assigns explicit values inside a
            # block).
            count = 0
            hi = None
            for j in range(lineno, min(lineno + 200, len(lines))):
                code = strip_line_comment(lines[j])
                if last_tok in code:
                    hi = lo + count
                    break
                count += len(re.findall(r"\bl_[A-Za-z0-9_]+\s*,", code))
            if hi is None:
                hi = lo + count  # unterminated block; treat counted range
            blocks.append((name, lo, hi, path, lineno))
    return blocks


def lint_counter_ranges(paths):
    findings: list[Finding] = []
    blocks = collect_counter_blocks(paths)
    blocks.sort(key=lambda b: (b[1], b[2]))
    for i in range(1, len(blocks)):
        pname, plo, phi, ppath, pline = blocks[i - 1]
        name, lo, hi, path, line = blocks[i]
        if lo <= phi and plo <= hi:
            findings.append(Finding(
                path, line, "counter-range",
                f'perf-counter block "{name}" [{lo}, {hi}] overlaps '
                f'"{pname}" [{plo}, {phi}] ({rel(ppath)}:{pline}); merged '
                "dumps would alias slots — move it to a free 1000-wide decade"))
    return findings


def lint_shard_bounds(paths):
    """Rule shard-bounds: every `int *_shards = ...` knob declared in the
    scope must have a bounds-check line (clamp/assert mentioning the knob)
    somewhere in the same scope. The scope is the whole tree in default
    mode (knobs are declared in headers, clamped at the consumer's parse
    site) and the single fixture file under --self-test."""
    decls = []  # (name, path, line)
    checks: set[str] = set()  # knob names with a bounds check
    for path in paths:
        for lineno, raw in enumerate(path.read_text(errors="replace").splitlines(), 1):
            code = strip_line_comment(raw)
            m = SHARD_DECL_RE.search(code)
            if m:
                decls.append((m.group(1), path, lineno))
                continue  # the declaration's own initializer is not a check
            if any(tok in code for tok in SHARD_CHECK_TOKENS):
                # Match by name pattern, not against decls seen so far:
                # checks may precede the declaration across files, so the
                # ordering of `paths` must not matter.
                for m2 in re.finditer(r"\b(\w*_shards)\b", code):
                    checks.add(m2.group(1))
    findings: list[Finding] = []
    for name, path, lineno in decls:
        if name not in checks:
            findings.append(Finding(
                path, lineno, "shard-bounds",
                f'shard knob "{name}" has no bounds check; clamp it to >= 1 '
                "at its config parse site (std::max/std::clamp/assert) — a "
                "zero reaches `% shards` as a modulo-by-zero (DESIGN.md §15)"))
    return findings


def collect_errc_enumerators(path: Path):
    """Enumerators of `enum class Errc` in `path`: [(name, line)]."""
    out = []
    in_enum = False
    for lineno, raw in enumerate(path.read_text(errors="replace").splitlines(), 1):
        code = strip_line_comment(raw)
        if not in_enum:
            if ERRC_ENUM_RE.search(code):
                in_enum = True
            continue
        if "}" in code:
            break
        m = ERRC_ENUMERATOR_RE.match(code)
        if m:
            out.append((m.group(1), lineno))
    return out


def lint_errc_names(enum_path: Path, impl_path: Path):
    """Rule errc-to-string: every Errc enumerator must have a name case."""
    findings: list[Finding] = []
    if not enum_path.is_file() or not impl_path.is_file():
        return findings
    named = set(ERRC_CASE_RE.findall(impl_path.read_text(errors="replace")))
    for name, lineno in collect_errc_enumerators(enum_path):
        if name not in named:
            findings.append(Finding(
                enum_path, lineno, "errc-to-string",
                f'Errc::{name} has no "case Errc::{name}:" in errc_name() '
                f"({rel(impl_path)}); it would print as a raw integer in "
                "every Status::to_string() and throttle log"))
    return findings


def iter_tree_files():
    for root in LINT_ROOTS:
        base = REPO / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".hpp", ".cc", ".cpp"):
                continue
            if rel(path).startswith(FIXTURE_DIR + "/"):
                continue
            yield path


def run_default() -> int:
    registry = load_fault_registry()
    if not registry:
        print(f"doceph_lint: {FAULT_POINTS_HEADER} missing or empty", file=sys.stderr)
        return 2
    trace_registry = load_trace_registry()
    if not trace_registry:
        print(f"doceph_lint: {TRACE_POINTS_HEADER} missing or empty", file=sys.stderr)
        return 2
    files = list(iter_tree_files())
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, registry, trace_registry))
    findings.extend(lint_counter_ranges([p for p in files if rel(p).startswith("src/")]))
    findings.extend(lint_shard_bounds(files))
    findings.extend(lint_errc_names(REPO / ERRC_ENUM_HEADER, REPO / ERRC_NAME_IMPL))
    for f in findings:
        print(f)
    if findings:
        print(f"doceph_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"doceph_lint: OK ({len(files)} files, {len(registry)} fault points, "
          f"{len(trace_registry)} trace points)")
    return 0


def run_self_test(fixture_dir: Path) -> int:
    registry = load_fault_registry()
    trace_registry = load_trace_registry()
    fixtures = sorted(p for p in fixture_dir.rglob("*")
                      if p.suffix in (".h", ".hpp", ".cc", ".cpp"))
    if not fixtures:
        print(f"doceph_lint --self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        expected = EXPECT_RE.findall(path.read_text(errors="replace"))
        if not expected:
            print(f"{rel(path)}: fixture has no doceph-lint-expect annotation", file=sys.stderr)
            failures += 1
            continue
        findings = lint_file(path, registry, trace_registry, enforce_allowlists=False)
        findings.extend(lint_counter_ranges([path]))
        findings.extend(lint_shard_bounds([path]))
        # Self-contained errc fixtures carry both the enum and the switch.
        findings.extend(lint_errc_names(path, path))
        got = {f.rule for f in findings}
        for rule in expected:
            if rule in got:
                print(f"{rel(path)}: [{rule}] flagged as expected")
            else:
                print(f"{rel(path)}: FIXTURE NOT FLAGGED: expected [{rule}], "
                      f"got {sorted(got) or 'nothing'}", file=sys.stderr)
                failures += 1
    if failures:
        print(f"doceph_lint --self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"doceph_lint --self-test: OK ({len(fixtures)} fixtures)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--self-test", metavar="DIR",
                        help="verify every fixture under DIR is flagged")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(Path(args.self_test))
    return run_default()


if __name__ == "__main__":
    sys.exit(main())
