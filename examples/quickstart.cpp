// Quickstart: bring up a DoCeph cluster on the simulated testbed, store and
// fetch an object through the librados-lite API, and peek at where the CPU
// went. Start here.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "client/rados_client.h"
#include "cluster/cluster.h"

using namespace doceph;

int main() {
  // One simulation universe. Everything below runs on a virtual clock, so
  // "seconds" of cluster time cost milliseconds of wall time.
  sim::Env env;

  // The paper's testbed: 2 storage servers (EPYC host + BlueField-3 DPU +
  // SATA SSD), a MON, a client, 100 Gbps Ethernet — deployed in DoCeph mode:
  // the whole OSD (messenger included) runs on the DPU; the host keeps only
  // BlueStore and the lightweight backend service.
  auto cfg = cluster::ClusterConfig::paper_testbed(cluster::DeployMode::doceph);
  cfg.retain_data = true;  // keep object bytes so we can read them back
  cluster::Cluster cluster(env, cfg);

  env.run_on_sim_thread([&] {
    const Status up = cluster.start();
    if (!up.ok()) {
      std::printf("cluster failed to start: %s\n", up.to_string().c_str());
      return;
    }
    std::printf("cluster up: %d OSDs, map epoch %u\n", cluster.num_nodes(),
                cluster.client().map_epoch());

    // librados-lite: pool 1 is created by the harness.
    client::IoCtx io = cluster.client().io_ctx(1);

    std::string payload(8 << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<char>('A' + i % 23);

    const sim::Time t0 = env.now();
    Status st = io.write_full("hello-object", BufferList::copy_of(payload));
    std::printf("write_full(8MB): %s in %.2f ms (replicated 2x, committed on "
                "both hosts)\n",
                st.to_string().c_str(), sim::to_seconds(env.now() - t0) * 1e3);

    auto data = io.read("hello-object", 4 << 20, 64);
    if (data.ok())
      std::printf("read back 64B @4MB: \"%.10s...\" (%zu bytes)\n",
                  data->to_string().c_str(), static_cast<std::size_t>(data->length()));

    auto info = io.stat("hello-object");
    if (info.ok())
      std::printf("stat: size=%llu version=%llu\n",
                  static_cast<unsigned long long>(info->size),
                  static_cast<unsigned long long>(info->version));

    // Where did the CPU go? The OSD + messenger ran on the DPU's ARM cores.
    const auto sample = cluster.cpu_sample();
    std::printf("\nCPU so far (cumulative busy time per storage node):\n");
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      std::printf("  node %d: host %.1f ms | dpu %.1f ms  <- the messenger "
                  "lives here now\n",
                  i, static_cast<double>(sample.host_busy[static_cast<std::size_t>(i)]) / 1e6,
                  static_cast<double>(sample.dpu_busy[static_cast<std::size_t>(i)]) / 1e6);
    }

    // And the proxy's view of the data plane:
    if (auto* proxy = cluster.proxy_store(0)) {
      std::printf("\nproxy[node 0]: %.1f MB moved by DMA, %llu bytes via RPC "
                  "fallback, DMA %s\n",
                  static_cast<double>(proxy->dma_bytes()) / 1e6,
                  static_cast<unsigned long long>(proxy->rpc_fallback_bytes()),
                  proxy->fallback().dma_enabled() ? "enabled" : "in cooldown");
    }

    (void)io.remove("hello-object");
    cluster.stop();
    std::printf("\ndone — total simulated time %.3f s\n", sim::to_seconds(env.now()));
  });
  return 0;
}
