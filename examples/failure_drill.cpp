// Operational drill on a DoCeph cluster: inject DMA errors to watch the
// adaptive fallback/cooldown/probe machinery (paper §4), then kill an OSD to
// watch heartbeat failure detection, MON map updates, degraded writes, and
// scan-based recovery when the node returns — all in simulated time.
//
//   ./build/examples/failure_drill
#include <cstdio>

#include "client/rados_client.h"
#include "cluster/cluster.h"

using namespace doceph;

int main() {
  sim::Env env;
  auto cfg = cluster::ClusterConfig::paper_testbed(cluster::DeployMode::doceph);
  cfg.retain_data = true;
  cfg.pg_num = 16;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;       // fail fast for the demo
  cfg.osd_template.recovery_quiesce = 1'000'000'000;
  cluster::Cluster cl(env, cfg);

  env.run_on_sim_thread([&] {
    if (!cl.start().ok()) return;
    auto io = cl.client().io_ctx(1);

    std::printf("== phase 1: DMA error -> fallback -> cooldown -> probe ==\n");
    cl.dpu(0)->dma().fail_next(1);
    std::string payload(4 << 20, 'x');
    Status st = io.write_full("victim", BufferList::copy_of(payload));
    auto* proxy = cl.proxy_store(0);
    std::printf("write during injected DMA error: %s (fallback events: %llu, "
                "%llu bytes re-sent over RPC)\n",
                st.to_string().c_str(),
                static_cast<unsigned long long>(proxy->fallback().failures()),
                static_cast<unsigned long long>(proxy->rpc_fallback_bytes()));
    std::printf("DMA path now: %s (cooldown)\n",
                proxy->fallback().dma_enabled() ? "enabled" : "disabled");
    env.keeper().sleep_for(600'000'000);  // past the 500 ms cooldown
    (void)io.write_full("probe-trigger", BufferList::copy_of(payload));
    std::printf("after cooldown + probe transfer: DMA %s\n\n",
                proxy->fallback().dma_enabled() ? "re-enabled" : "still disabled");

    std::printf("== phase 2: OSD failure and recovery ==\n");
    for (int i = 0; i < 8; ++i)
      (void)io.write_full("pre" + std::to_string(i), BufferList::copy_of(payload));
    std::printf("8 objects written, both replicas in place\n");

    cl.osd(1).shutdown();
    std::printf("osd.1 killed; waiting for heartbeat grace + MON verdict...\n");
    while (cl.monitor().current_map().is_up(1)) env.keeper().sleep_for(200'000'000);
    std::printf("MON marked osd.1 down at epoch %u (t=%.2fs)\n",
                cl.monitor().epoch(), sim::to_seconds(env.now()));

    st = io.write_full("degraded-write", BufferList::copy_of(payload));
    std::printf("degraded write (single replica): %s\n", st.to_string().c_str());

    std::printf("cluster continues serving; a restarted OSD would boot, get "
                "marked up, and the primary's scan-based recovery would push "
                "it the objects it missed (see tests/cluster coverage).\n");
    cl.stop();
    std::printf("\ndrill complete — %.2f simulated seconds\n",
                sim::to_seconds(env.now()));
  });
  return 0;
}
