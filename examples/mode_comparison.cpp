// Side-by-side deployment comparison — the paper's headline experiment as a
// runnable example: the same RADOS-bench write workload against a Baseline
// cluster (full Ceph on the host, BlueField in NIC mode) and a DoCeph
// cluster (OSD offloaded to the DPU), printing throughput, latency, and the
// host-CPU savings.
//
//   ./build/examples/mode_comparison [object_mb] [seconds]
#include <cstdio>
#include <cstdlib>

#include "client/rados_bench.h"
#include "cluster/cluster.h"

using namespace doceph;

namespace {

struct Outcome {
  double iops, mbps, lat_s, host_cores, dpu_cores;
};

Outcome run(cluster::DeployMode mode, std::uint64_t object_size, double seconds) {
  sim::Env env;
  auto cfg = cluster::ClusterConfig::paper_testbed(mode);
  cluster::Cluster cl(env, cfg);
  Outcome out{};
  env.run_on_sim_thread([&] {
    if (!cl.start().ok()) return;
    client::BenchConfig bcfg;
    bcfg.concurrency = 16;
    bcfg.object_size = object_size;
    bcfg.duration = sim::from_seconds(seconds);
    const auto cpu0 = cl.cpu_sample();
    client::RadosBench bench(cl.client(), bcfg);
    const auto r = bench.run(&cl.client_cpu());
    const auto cpu1 = cl.cpu_sample();
    out.iops = r.iops();
    out.mbps = r.bandwidth_bytes_per_sec(object_size) / 1e6;
    out.lat_s = r.avg_latency_s();
    out.host_cores = cl.host_cores_used(cpu0, cpu1);
    out.dpu_cores = cl.dpu_cores_used(cpu0, cpu1);
    cl.stop();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t object_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 3.0;
  std::printf("workload: 16 concurrent writers, %llu MB objects, %.1f s "
              "(simulated)\n\n",
              static_cast<unsigned long long>(object_mb), seconds);

  const Outcome base = run(cluster::DeployMode::baseline, object_mb << 20, seconds);
  const Outcome dpu = run(cluster::DeployMode::doceph, object_mb << 20, seconds);

  std::printf("%-22s %12s %12s\n", "", "Baseline", "DoCeph");
  std::printf("%-22s %12.1f %12.1f\n", "throughput (IOPS)", base.iops, dpu.iops);
  std::printf("%-22s %12.1f %12.1f\n", "throughput (MB/s)", base.mbps, dpu.mbps);
  std::printf("%-22s %12.4f %12.4f\n", "avg latency (s)", base.lat_s, dpu.lat_s);
  std::printf("%-22s %11.1f%% %11.1f%%\n", "host CPU (1-core norm)",
              base.host_cores * 100, dpu.host_cores * 100);
  std::printf("%-22s %12.2f %12.2f\n", "DPU cores busy", base.dpu_cores,
              dpu.dpu_cores);
  if (base.host_cores > 0) {
    std::printf("\nhost CPU savings: %.1f%% (paper: up to 92%%)\n",
                (1.0 - dpu.host_cores / base.host_cores) * 100);
  }
  return 0;
}
