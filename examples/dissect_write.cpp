// Anatomy of one DoCeph write: traces a single 7 MB object through the
// offloaded pipeline and prints the latency taxonomy of paper Table 3 —
// where the bytes went (DMA segments vs RPC), how long each phase took, and
// what the host actually did.
//
//   ./build/examples/dissect_write
#include <cstdio>

#include "client/rados_client.h"
#include "cluster/cluster.h"

using namespace doceph;

int main() {
  sim::Env env;
  auto cfg = cluster::ClusterConfig::paper_testbed(cluster::DeployMode::doceph);
  cfg.retain_data = true;
  cluster::Cluster cl(env, cfg);

  env.run_on_sim_thread([&] {
    if (!cl.start().ok()) return;
    auto io = cl.client().io_ctx(1);

    constexpr std::size_t kSize = 7 << 20;  // 7 MB -> 4 DMA segments (2MB cap)
    std::string payload(kSize, 'z');

    for (int i = 0; i < cl.num_nodes(); ++i) cl.proxy_store(i)->reset_breakdown();
    const sim::Time t0 = env.now();
    const Status st = io.write_full("dissected", BufferList::copy_of(payload));
    const double e2e = sim::to_seconds(env.now() - t0);

    std::printf("write_full(7MB): %s, end-to-end %.2f ms\n\n",
                st.to_string().c_str(), e2e * 1e3);
    std::printf("the object crossed: client --100GbE--> DPU OSD (messenger,\n"
                "PG, replication) --[2MB DMA segments]--> host write buffers\n"
                "--> BlueStore (WAL'd KV commit + extent writes) ... x2 nodes\n\n");

    for (int i = 0; i < cl.num_nodes(); ++i) {
      auto* p = cl.proxy_store(i);
      const auto bd = p->breakdown();
      if (bd.count == 0) continue;
      std::printf("node %d proxy (%llu request%s — primary or replica copy):\n", i,
                  static_cast<unsigned long long>(bd.count), bd.count == 1 ? "" : "s");
      std::printf("  DMA transfer : %8.3f ms  (job setup + 2.6 GB/s engine)\n",
                  bd.avg(bd.dma_ns) * 1e3);
      std::printf("  DMA-wait     : %8.3f ms  (staging buffer + serialization)\n",
                  bd.avg(bd.dma_wait_ns) * 1e3);
      std::printf("  host write   : %8.3f ms  (BlueStore commit)\n",
                  bd.avg(bd.host_write_ns) * 1e3);
      std::printf("  others       : %8.3f ms  (messenger, queues, RPC)\n",
                  bd.others_ns_avg() * 1e3);
      std::printf("  total        : %8.3f ms\n", bd.avg(bd.total_ns) * 1e3);
      std::printf("  bytes via DMA: %.1f MB in %llu jobs\n",
                  static_cast<double>(p->dma_bytes()) / 1e6,
                  static_cast<unsigned long long>(cl.dpu(i)->dma().jobs_completed()));
    }

    auto back = io.read("dissected", 0, 0);
    std::printf("\nread-back integrity: %s (%zu bytes match: %s)\n",
                back.status().to_string().c_str(),
                back.ok() ? static_cast<std::size_t>(back->length()) : 0,
                back.ok() && back->to_string() == payload ? "yes" : "NO");
    cl.stop();
  });
  return 0;
}
