// End-to-end distributed tracing over the full cluster: a sampled write on
// the DoCeph deployment must produce one connected span tree covering every
// Fig.-2 stage — client submit, messenger dispatch, OSD execution (with the
// five-stage decomposition), DPU proxy comch/DMA, host backend, and the
// BlueStore WAL/KV commit — with stage durations that sum *exactly* to the
// OSD-side latency, and byte-identical dumps from identical seeds. The
// flight recorder is exercised through the real chaos path: a fault-driven
// power-loss kill snapshots the killed op's partial spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

ClusterConfig trace_cfg(DeployMode mode) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 16;
  return cfg;
}

TEST(TracingE2E, SampledWriteCoversEveryFig2Stage) {
  Env env;
  Cluster cl(env, trace_cfg(DeployMode::doceph));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    // Arm the sampler only for the measured op so cluster bring-up traffic
    // stays out of the tree.
    env.tracer().set_sample_every(1);
    auto io = cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("traced", BufferList::copy_of(pattern(1 << 20))).ok());
    // Let the client-side dispatch span of the reply retire.
    env.keeper().sleep_for(10'000'000);

    const auto spans = env.tracer().completed();
    std::set<std::string> names;
    for (const auto& s : spans) names.insert(s.name);
    for (const char* expected :
         {"client.op", "msgr.dispatch", "osd.op", "osd.stage.messenger",
          "osd.stage.queue", "osd.stage.store", "osd.stage.replication",
          "osd.stage.reply", "dpu.write", "dpu.rpc.submit_txn",
          "host.submit_txn", "bluestore.txn", "doca.dma_job"}) {
      EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
    }

    // One client op => one trace, every span on it.
    std::set<std::uint64_t> traces;
    for (const auto& s : spans) traces.insert(s.trace_id);
    EXPECT_EQ(traces.size(), 1u);

    // The five stage spans are children of the (single) osd.op span,
    // contiguous, and exact-sum to its duration — the Fig.-2 decomposition
    // reproduced on the trace itself.
    const auto osd_op = std::find_if(spans.begin(), spans.end(),
                                     [](const auto& s) { return s.name == "osd.op"; });
    ASSERT_NE(osd_op, spans.end());
    EXPECT_EQ(std::count_if(spans.begin(), spans.end(),
                            [](const auto& s) { return s.name == "osd.op"; }),
              1);
    std::vector<trace::SpanRecord> stages;
    for (const auto& s : spans) {
      if (s.name.rfind("osd.stage.", 0) == 0) {
        EXPECT_EQ(s.parent_id, osd_op->span_id) << s.name;
        stages.push_back(s);
      }
    }
    ASSERT_EQ(stages.size(), 5u);
    std::sort(stages.begin(), stages.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    EXPECT_EQ(stages.front().start, osd_op->start);
    EXPECT_EQ(stages.back().end, osd_op->end);
    std::int64_t stage_sum = 0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
      stage_sum += stages[i].end - stages[i].start;
      if (i + 1 < stages.size())
        EXPECT_EQ(stages[i].end, stages[i + 1].start)
            << stages[i].name << " -> " << stages[i + 1].name;
    }
    EXPECT_EQ(stage_sum, osd_op->end - osd_op->start);

    // The admin surface exposes the same data per daemon and aggregated.
    const auto client_dump = cl.client().admin_socket().execute("trace dump");
    ASSERT_TRUE(client_dump.ok());
    EXPECT_NE(client_dump->find("client.op"), std::string::npos);
    const std::string agg = cl.admin_dump("trace dump");
    EXPECT_NE(agg.find("\"osd.0\""), std::string::npos);
    EXPECT_NE(agg.find("\"client\""), std::string::npos);

    // dump_traces merges every domain into one Chrome trace.
    const std::string chrome = cl.dump_traces();
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.find("bluestore.txn"), std::string::npos);

    // OpTracker cross-link: historic dumps carry the op's trace ids.
    const std::string historic = cl.admin_dump("dump_historic_ops");
    EXPECT_NE(historic.find("\"trace_id\""), std::string::npos);

    cl.stop();
  });
}

TEST(TracingE2E, SameSeedRunsDumpByteIdenticalTraces) {
  const auto one_run = [](std::uint64_t seed) {
    Env env(TimeKeeper::Mode::virtual_time, seed);
    std::string dump;
    run_sim(env, [&] {
      Cluster cl(env, trace_cfg(DeployMode::doceph));
      ASSERT_TRUE(cl.start().ok());
      env.tracer().set_sample_every(1);
      auto io = cl.client().io_ctx(1);
      for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(io.write_full("obj" + std::to_string(i),
                                  BufferList::copy_of(pattern(1 << 20)))
                        .ok());
      }
      env.keeper().sleep_for(10'000'000);
      dump = cl.dump_traces();
      cl.stop();
    });
    return dump;
  };
  const std::string a = one_run(42);
  const std::string b = one_run(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, one_run(43));  // ids are seed-salted: different universe, different ids
}

TEST(TracingE2E, HardKillSnapshotsPartialSpansAndFaultFiring) {
  Env env(TimeKeeper::Mode::virtual_time, 777);
  Cluster cl(env, trace_cfg(DeployMode::doceph));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    env.tracer().set_sample_every(1);
    // Power-loss osd.1 ~300ms into the write stream, driven through the
    // real chaos path so the firing lands in the registry log the snapshot
    // captures.
    fault::FaultSpec kill;
    kill.fire_at_time = env.now() + 300'000'000;
    kill.count = 1;
    kill.match = "osd.1";
    env.faults().set("osd.hard_crash", kill);

    auto io = cl.client().io_ctx(1);
    // Keep sampled writes in flight across the kill.
    std::vector<decltype(io.aio_write_full("", BufferList{}))> pending;
    const Time t_end = env.now() + 600'000'000;
    int i = 0;
    while (env.now() < t_end) {
      pending.push_back(io.aio_write_full("obj" + std::to_string(i++),
                                          BufferList::copy_of(pattern(1 << 20))));
      env.keeper().sleep_for(5'000'000);
    }

    ASSERT_GE(env.tracer().flight_count(), 1u);
    const std::string flight = env.tracer().last_flight_json();
    EXPECT_NE(flight.find("\"reason\":\"osd.1.hard_crash\""), std::string::npos);
    // The killed op was mid-flight: its spans appear as partials.
    EXPECT_NE(flight.find("\"partial\":true"), std::string::npos);
    EXPECT_NE(flight.find("client.op"), std::string::npos);
    // ... and the fault that pulled the plug is in the snapshot.
    EXPECT_NE(flight.find("osd.hard_crash@osd.1#"), std::string::npos);
    cl.stop();
  });
}

}  // namespace
}  // namespace doceph::cluster
