// Failure/recovery integration: an OSD dies mid-life, the cluster degrades
// but keeps serving, the OSD returns, and scan-based recovery pushes it the
// objects it missed until both replicas agree byte-for-byte.
#include <gtest/gtest.h>

#include "../test_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

ClusterConfig recovery_cfg(DeployMode mode) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 8;
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  cfg.osd_template.recovery_quiesce = 500'000'000;
  cfg.osd_template.tick_interval = 250'000'000;
  return cfg;
}

class RecoveryTest : public ::testing::TestWithParam<DeployMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, RecoveryTest,
                         ::testing::Values(DeployMode::baseline, DeployMode::doceph),
                         [](const auto& info) {
                           return info.param == DeployMode::baseline ? "Baseline"
                                                                     : "DoCeph";
                         });

TEST_P(RecoveryTest, RejoiningOsdCatchesUp) {
  Env env;
  Cluster cl(env, recovery_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    auto io = cl.client().io_ctx(1);

    // Phase 1: both OSDs healthy.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(io.write_full("obj" + std::to_string(i),
                                BufferList::copy_of(pattern(256 << 10,
                                                            static_cast<unsigned>(i))))
                      .ok());
    }

    // Phase 2: osd.1 dies; the MON notices via osd.0's failure report.
    cl.osd(1).shutdown();
    while (cl.monitor().current_map().is_up(1))
      env.keeper().sleep_for(200'000'000);

    // Degraded writes + an overwrite of existing data osd.1 will have stale.
    for (int i = 6; i < 10; ++i) {
      ASSERT_TRUE(io.write_full("obj" + std::to_string(i),
                                BufferList::copy_of(pattern(256 << 10,
                                                            static_cast<unsigned>(i))))
                      .ok());
    }
    ASSERT_TRUE(
        io.write_full("obj0", BufferList::copy_of(pattern(256 << 10, 100))).ok());

    // Phase 3: osd.1 rejoins and recovery converges once the PGs quiesce.
    ASSERT_TRUE(cl.restart_osd(1).ok());
    while (!cl.monitor().current_map().is_up(1))
      env.keeper().sleep_for(200'000'000);
    cl.wait_all_clean();

    // Every object must now be identical on BOTH hosts' stores.
    const auto map = cl.monitor().current_map();
    for (int i = 0; i < 10; ++i) {
      const std::string name = "obj" + std::to_string(i);
      const auto pg = map.object_to_pg(1, name);
      const std::string expect =
          i == 0 ? pattern(256 << 10, 100) : pattern(256 << 10, static_cast<unsigned>(i));
      for (int n = 0; n < cl.num_nodes(); ++n) {
        auto r = cl.blue_store(n).read(pg.to_coll(), {1, name}, 0, 0);
        ASSERT_TRUE(r.ok()) << "node " << n << " obj " << i << ": "
                            << r.status().to_string();
        EXPECT_EQ(r->to_string(), expect) << "node " << n << " obj " << i;
      }
    }
    cl.stop();
  });
}

TEST_P(RecoveryTest, DeletedObjectsAreRemovedFromRejoiner) {
  Env env;
  Cluster cl(env, recovery_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    auto io = cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("doomed", BufferList::copy_of(pattern(64 << 10))).ok());
    ASSERT_TRUE(io.write_full("keeper", BufferList::copy_of(pattern(64 << 10, 2))).ok());

    cl.osd(1).shutdown();
    while (cl.monitor().current_map().is_up(1))
      env.keeper().sleep_for(200'000'000);

    // Deleted while osd.1 is down: its stale copy must be scrubbed on rejoin.
    ASSERT_TRUE(io.remove("doomed").ok());

    ASSERT_TRUE(cl.restart_osd(1).ok());
    cl.wait_all_clean();

    const auto map = cl.monitor().current_map();
    const auto pg = map.object_to_pg(1, "doomed");
    EXPECT_FALSE(cl.blue_store(1).exists(pg.to_coll(), {1, "doomed"}));
    const auto pg2 = map.object_to_pg(1, "keeper");
    EXPECT_TRUE(cl.blue_store(1).exists(pg2.to_coll(), {1, "keeper"}));
    cl.stop();
  });
}

TEST(RecoveryClientView, FailoverIsTransparentToTheClient) {
  Env env;
  Cluster cl(env, recovery_cfg(DeployMode::baseline));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    auto io = cl.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("stable", BufferList::copy_of("v1")).ok());

    cl.osd(1).shutdown();
    while (cl.monitor().current_map().is_up(1))
      env.keeper().sleep_for(200'000'000);

    // Reads and writes keep working regardless of which OSD led each PG.
    for (int i = 0; i < 8; ++i) {
      const std::string name = "post" + std::to_string(i);
      ASSERT_TRUE(io.write_full(name, BufferList::copy_of(name)).ok());
      auto r = io.read(name, 0, 0);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->to_string(), name);
    }
    auto r = io.read("stable", 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "v1");
    cl.stop();
  });
}

}  // namespace
}  // namespace doceph::cluster
