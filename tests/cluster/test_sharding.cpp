// Full-cluster sharding contract (DESIGN.md §15): per-object write ordering
// must hold at every shard count (ops for one object share a PG, hence a
// lane, hence a KV shard), replicated writes fan out over the sharded
// pipeline, and a fixed shard count keeps same-seed runs byte-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

ClusterConfig sharded_cfg(DeployMode mode, int shards) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 16;
  cfg.osd_template.op_shards = shards;
  cfg.kv_shards = shards;
  return cfg;
}

/// 24 overlapping writes to ONE object (distinct payloads) racing 24
/// writes scattered over other objects to keep every lane busy; the read
/// after the barrier must return the LAST write's payload — per-object
/// ordering survives lane parallelism because one object's ops never
/// change lanes.
void ordering_drill(DeployMode mode, int shards) {
  Env env(TimeKeeper::Mode::virtual_time, 99);
  Cluster cl(env, sharded_cfg(mode, shards));
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok()) << "shards " << shards;
    auto io = cl.client().io_ctx(1);
    constexpr int kWrites = 24;
    std::vector<client::AioCompletionRef> pending;
    for (int i = 0; i < kWrites; ++i) {
      pending.push_back(io.aio_write_full(
          "hot", BufferList::copy_of(pattern(32 << 10, static_cast<unsigned>(i)))));
      pending.push_back(io.aio_write_full(
          "cold" + std::to_string(i),
          BufferList::copy_of(pattern(32 << 10, static_cast<unsigned>(100 + i)))));
    }
    for (auto& c : pending) {
      ASSERT_TRUE(c->wait().ok()) << "shards " << shards;
    }
    const auto got = io.read("hot", 0, 32 << 10);
    ASSERT_TRUE(got.ok()) << "shards " << shards;
    EXPECT_EQ(got->to_string(), pattern(32 << 10, kWrites - 1))
        << "out-of-order write won at shards " << shards;
    cl.stop();
  });
}

TEST(Sharding, PerObjectOrderingHoldsAcrossShardCounts) {
  for (const int shards : {1, 2, 4, 8}) {
    ordering_drill(DeployMode::baseline, shards);
  }
  // The offload path adds the proxy lane routing; cover it at the headline
  // count plus unsharded.
  ordering_drill(DeployMode::doceph, 1);
  ordering_drill(DeployMode::doceph, 4);
}

TEST(Sharding, ThreeWayReplicationFansOutOverShardedLanes) {
  // replicas=3 over 3 storage nodes: every write spawns two concurrent
  // repops that land on the REPLICA OSDs' sharded lanes (routed by the
  // repop's PG ids, not by a re-hash of the name — see Osd::handle_repop).
  Env env(TimeKeeper::Mode::virtual_time, 7);
  auto cfg = sharded_cfg(DeployMode::baseline, 4);
  cfg.storage_nodes = 3;
  cfg.replicas = 3;
  Cluster cl(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(cl.start().ok());
    auto io = cl.client().io_ctx(1);
    std::vector<client::AioCompletionRef> pending;
    for (int i = 0; i < 32; ++i) {
      pending.push_back(io.aio_write_full(
          "rep" + std::to_string(i),
          BufferList::copy_of(pattern(16 << 10, static_cast<unsigned>(i)))));
    }
    for (auto& c : pending) ASSERT_TRUE(c->wait().ok());
    for (int i = 0; i < 32; ++i) {
      const auto got = io.read("rep" + std::to_string(i), 0, 16 << 10);
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(got->to_string(), pattern(16 << 10, static_cast<unsigned>(i))) << i;
    }
    // The sharded dispatch path actually ran: lane enqueues were counted
    // on the primaries AND (via repop routing) the replicas.
    const std::string dump = cl.admin_dump("perf dump");
    EXPECT_NE(dump.find("\"shard_enqueues\""), std::string::npos);
    EXPECT_NE(dump.find("\"shard_lane_hw\""), std::string::npos);
    cl.stop();
  });
}

TEST(Sharding, SameSeedSameShardCountDumpsByteIdenticalTraces) {
  // Determinism is per shard count: two runs with identical seeds AND
  // identical shard counts must dump byte-identical traces (sequential ops
  // — the determinism contract covers a fixed schedule, not racing ops).
  const auto one_run = [](std::uint64_t seed, int shards) {
    Env env(TimeKeeper::Mode::virtual_time, seed);
    std::string dump;
    run_sim(env, [&] {
      Cluster cl(env, sharded_cfg(DeployMode::doceph, shards));
      ASSERT_TRUE(cl.start().ok());
      env.tracer().set_sample_every(1);
      auto io = cl.client().io_ctx(1);
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(io.write_full("obj" + std::to_string(i),
                                  BufferList::copy_of(pattern(256 << 10)))
                        .ok());
      }
      env.keeper().sleep_for(10'000'000);
      dump = cl.dump_traces();
      cl.stop();
    });
    return dump;
  };
  for (const int shards : {2, 4}) {
    const std::string a = one_run(42, shards);
    EXPECT_FALSE(a.empty()) << shards;
    EXPECT_EQ(a, one_run(42, shards)) << "nondeterministic at shards " << shards;
    EXPECT_NE(a, one_run(43, shards)) << shards;  // ids are seed-salted
  }
}

}  // namespace
}  // namespace doceph::cluster
