#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

ClusterConfig small_cfg(DeployMode mode) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 16;
  return cfg;
}

class ObservabilityTest : public ::testing::TestWithParam<DeployMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, ObservabilityTest,
                         ::testing::Values(DeployMode::baseline, DeployMode::doceph),
                         [](const auto& info) {
                           return info.param == DeployMode::baseline ? "Baseline"
                                                                     : "DoCeph";
                         });

TEST_P(ObservabilityTest, StageSumsMatchEndToEndLatency) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    const std::string payload = pattern(1 << 20);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          io.write_full("obj" + std::to_string(i), BufferList::copy_of(payload))
              .ok());
    }

    // Every completed op's stage decomposition must sum exactly to its
    // OSD-side span (the acceptance bound is 1%; the clamped chain is
    // exact by construction). Primary ops exist on at least one OSD.
    std::size_t checked = 0;
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      cluster.osd(i).op_tracker().for_each_historic(
          [&](const osd::TrackedOp& op) {
            const auto bd = op.stage_breakdown();
            EXPECT_EQ(bd.sum(), bd.total_ns) << op.description();
            const sim::Time reply = op.last_event_time("reply_sent");
            ASSERT_GE(reply, 0) << op.description();
            EXPECT_EQ(bd.total_ns,
                      static_cast<std::uint64_t>(reply - op.initiated_at()));
            ++checked;
          });
    }
    EXPECT_GE(checked, 6u);

    // The OSD histograms aggregate the same decomposition: per-metric sums
    // must reproduce the total latency sum exactly.
    std::uint64_t total = 0, parts = 0;
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      const auto& c = cluster.osd(i).perf_counters();
      total += c->hist(osd::l_osd_op_lat).sum;
      parts += c->hist(osd::l_osd_op_msgr_lat).sum +
               c->hist(osd::l_osd_op_queue_lat).sum +
               c->hist(osd::l_osd_op_store_lat).sum +
               c->hist(osd::l_osd_op_repl_lat).sum +
               c->hist(osd::l_osd_op_reply_lat).sum;
    }
    EXPECT_GT(total, 0u);
    EXPECT_EQ(parts, total);
    cluster.stop();
  });
}

TEST_P(ObservabilityTest, DumpOpsInFlightSeesLiveOp) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);

    // aio_operate registers the tracked op before any sim-time passes, so
    // the client-side dump observes it mid-flight deterministically.
    auto c = io.aio_write_full("live", BufferList::copy_of(pattern(1 << 20)));
    const auto live =
        cluster.client().admin_socket().execute("dump_ops_in_flight");
    ASSERT_TRUE(live.ok());
    EXPECT_NE(live->find("client_op(write_full live)"), std::string::npos)
        << *live;

    ASSERT_TRUE(c->wait().ok());
    const auto drained =
        cluster.client().admin_socket().execute("dump_ops_in_flight");
    ASSERT_TRUE(drained.ok());
    EXPECT_NE(drained->find("\"ops_in_flight\":0"), std::string::npos);
    cluster.stop();
  });
}

TEST_P(ObservabilityTest, AdminDumpAggregatesAllDaemons) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("obj", BufferList::copy_of(pattern(64 << 10))).ok());

    const std::string dump = cluster.admin_dump("perf dump");
    EXPECT_NE(dump.find("\"mon.0\""), std::string::npos);
    EXPECT_NE(dump.find("\"osd.0\""), std::string::npos);
    EXPECT_NE(dump.find("\"client\""), std::string::npos);
    EXPECT_NE(dump.find("\"msgr\""), std::string::npos);
    if (GetParam() == DeployMode::doceph) {
      EXPECT_NE(dump.find("\"dpu.0\""), std::string::npos);
      EXPECT_NE(dump.find("\"writes\""), std::string::npos);
    } else {
      // Baseline OSDs front BlueStore directly; its block rides along.
      EXPECT_NE(dump.find("\"bluestore\""), std::string::npos);
    }

    // Commands registered by a subset of daemons aggregate just those.
    const std::string historic = cluster.admin_dump("dump_historic_ops");
    EXPECT_NE(historic.find("\"osd.0\""), std::string::npos);
    EXPECT_EQ(historic.find("\"mon.0\""), std::string::npos);

    // reset_observability zeroes the measured window.
    cluster.reset_observability();
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      EXPECT_EQ(cluster.osd(i).perf_counters()->get(osd::l_osd_op), 0u);
      EXPECT_EQ(cluster.osd(i).op_tracker().history_count(), 0u);
    }
    cluster.stop();

    // Shutdown unregisters every daemon's command surface.
    EXPECT_FALSE(cluster.client().admin_socket().has_command("perf dump"));
    EXPECT_FALSE(cluster.monitor().admin_socket().has_command("perf dump"));
  });
}

}  // namespace
}  // namespace doceph::cluster
