#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "client/rados_bench.h"

namespace doceph::cluster {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

ClusterConfig small_cfg(DeployMode mode) {
  auto cfg = ClusterConfig::paper_testbed(mode, NetworkKind::gbe_100,
                                          /*retain_data=*/true);
  cfg.pg_num = 16;
  return cfg;
}

class IntegrationTest : public ::testing::TestWithParam<DeployMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, IntegrationTest,
                         ::testing::Values(DeployMode::baseline, DeployMode::doceph),
                         [](const auto& info) {
                           return info.param == DeployMode::baseline ? "Baseline"
                                                                     : "DoCeph";
                         });

TEST_P(IntegrationTest, WriteReadStatRemove) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);

    const std::string payload = pattern(3 << 20);
    ASSERT_TRUE(io.write_full("objA", BufferList::copy_of(payload)).ok());

    auto read = io.read("objA", 0, 0);
    ASSERT_TRUE(read.ok()) << read.status().to_string();
    EXPECT_EQ(read->to_string(), payload);

    auto part = io.read("objA", 1 << 20, 4096);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(part->to_string(), payload.substr(1 << 20, 4096));

    auto st = io.stat("objA");
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, payload.size());

    ASSERT_TRUE(io.remove("objA").ok());
    EXPECT_EQ(io.read("objA", 0, 0).status().code(), Errc::not_found);
    EXPECT_EQ(io.stat("missing").status().code(), Errc::not_found);
    cluster.stop();
  });
}

TEST_P(IntegrationTest, DataIsReplicatedToBothOsds) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    const std::string payload = pattern(1 << 20, 5);
    ASSERT_TRUE(io.write_full("replicated", BufferList::copy_of(payload)).ok());

    // With size=2 over 2 OSDs, both host stores hold the object.
    const auto pg = cluster.monitor().current_map().object_to_pg(1, "replicated");
    int copies = 0;
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      auto r = cluster.blue_store(i).read(pg.to_coll(), {1, "replicated"}, 0, 0);
      if (r.ok() && r->to_string() == payload) copies++;
    }
    EXPECT_EQ(copies, 2);
    cluster.stop();
  });
}

TEST_P(IntegrationTest, ManyObjectsManyClientsConcurrently) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    constexpr int kOps = 40;
    std::vector<client::AioCompletionRef> completions;
    completions.reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      completions.push_back(io.aio_write_full(
          "obj" + std::to_string(i),
          BufferList::copy_of(pattern(256 << 10, static_cast<unsigned>(i)))));
    }
    for (auto& c : completions) EXPECT_TRUE(c->wait().ok());
    for (int i = 0; i < kOps; i += 7) {
      auto r = io.read("obj" + std::to_string(i), 0, 0);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->to_string(), pattern(256 << 10, static_cast<unsigned>(i)));
    }
    cluster.stop();
  });
}

TEST_P(IntegrationTest, SameObjectSequentialOverwrites) {
  Env env;
  Cluster cluster(env, small_cfg(GetParam()));
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(io.write_full("same", BufferList::copy_of(pattern(
                                            1 << 20, static_cast<unsigned>(i))))
                      .ok());
    }
    auto r = io.read("same", 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), pattern(1 << 20, 4));
    cluster.stop();
  });
}

TEST_P(IntegrationTest, BenchSmokeRun) {
  Env env;
  auto cfg = small_cfg(GetParam());
  cfg.retain_data = false;  // bench mode
  Cluster cluster(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    client::BenchConfig bcfg;
    bcfg.concurrency = 8;
    bcfg.object_size = 1 << 20;
    bcfg.duration = 2'000'000'000;  // 2 s
    client::RadosBench bench(cluster.client(), bcfg);
    const auto result = bench.run(&cluster.client_cpu());
    EXPECT_GT(result.ops, 100u);       // sane throughput
    EXPECT_GT(result.iops(), 50.0);
    EXPECT_GT(result.avg_latency_s(), 0.0);
    cluster.stop();
  });
}

TEST_P(IntegrationTest, HostCpuAccountingMatchesMode) {
  Env env;
  auto cfg = small_cfg(GetParam());
  cfg.retain_data = false;
  Cluster cluster(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    client::BenchConfig bcfg;
    bcfg.concurrency = 8;
    bcfg.object_size = 4 << 20;
    bcfg.duration = 2'000'000'000;
    const auto s0 = cluster.cpu_sample();
    client::RadosBench bench(cluster.client(), bcfg);
    (void)bench.run(&cluster.client_cpu());
    const auto s1 = cluster.cpu_sample();
    const double host = cluster.host_cores_used(s0, s1);
    const double dpu = cluster.dpu_cores_used(s0, s1);
    if (GetParam() == DeployMode::baseline) {
      EXPECT_GT(host, 0.2);   // messenger burns host CPU
      EXPECT_EQ(dpu, 0.0);
    } else {
      EXPECT_LT(host, 0.3);   // only BlueStore + backend remain
      EXPECT_GT(dpu, 0.1);    // the OSD moved to the DPU
      EXPECT_GT(dpu, host);
    }
    cluster.stop();
  });
}

TEST(ClusterFailover, OsdFailureIsDetectedAndWritesContinue) {
  Env env;
  auto cfg = small_cfg(DeployMode::baseline);
  cfg.osd_template.heartbeat_grace = 2'000'000'000;
  Cluster cluster(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(cluster.start().ok());
    auto io = cluster.client().io_ctx(1);
    ASSERT_TRUE(io.write_full("pre-failure", BufferList::copy_of("v1")).ok());

    // Kill osd.1; osd.0's heartbeats stop being answered, it reports the
    // failure, the MON republishes, and all PGs re-home to osd.0.
    cluster.osd(1).shutdown();
    const auto epoch_before = cluster.monitor().epoch();
    while (cluster.monitor().current_map().is_up(1)) {
      env.keeper().sleep_for(200'000'000);
    }
    EXPECT_GT(cluster.monitor().epoch(), epoch_before);

    // Writes keep working (degraded, single replica).
    ASSERT_TRUE(io.write_full("post-failure", BufferList::copy_of("v2")).ok());
    auto r = io.read("post-failure", 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "v2");
    cluster.stop();
  });
}

}  // namespace
}  // namespace doceph::cluster
