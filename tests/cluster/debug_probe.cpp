// Calibration sweep: key metrics for both modes across the paper's sizes.
#include <cstdio>
#include <cstdlib>

#include "benchcore/experiment.h"
#include "benchcore/paper.h"

using namespace doceph;
using namespace doceph::benchcore;

int main(int argc, char** argv) {
  const sim::Duration measure =
      argc > 1 ? static_cast<sim::Duration>(atof(argv[1]) * 1e9) : 3'000'000'000;

  for (int i = 0; i < paper::kNumSizes; ++i) {
    for (const auto mode :
         {cluster::DeployMode::baseline, cluster::DeployMode::doceph}) {
      RunSpec spec;
      spec.mode = mode;
      spec.object_size = paper::kSizes[i];
      spec.measure = measure;
      const auto r = run_experiment(spec);
      std::printf(
          "%5s %-8s iops=%6.1f lat=%.4f host=%.3f dpu=%.3f msgr%%=%.1f os%%=%.1f "
          "osd%%=%.1f ceph_cores=%.3f ctxM=%llu ctxO=%llu\n",
          paper::kSizeNames[i],
          mode == cluster::DeployMode::baseline ? "base" : "doceph", r.iops,
          r.avg_lat_s, r.host_cores, r.dpu_cores, r.share_messenger * 100,
          r.share_objectstore * 100, r.share_osd * 100, r.total_ceph_cores,
          (unsigned long long)r.ctx_messenger, (unsigned long long)r.ctx_objectstore);
      if (mode == cluster::DeployMode::doceph) {
        std::printf(
            "      breakdown: host_w=%.4f dma=%.4f dma_wait=%.4f others=%.4f "
            "total=%.4f\n",
            r.bd_host_write_s, r.bd_dma_s, r.bd_dma_wait_s, r.bd_others_s,
            r.bd_total_s);
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
