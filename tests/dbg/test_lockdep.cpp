#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dbg/cond_var.h"
#include "dbg/lockdep.h"
#include "dbg/mutex.h"
#include "sim/time_keeper.h"

namespace doceph::dbg {
namespace {

namespace ld = lockdep;

/// Installs a recording handler for the test's lifetime.
class Recorder {
 public:
  Recorder() {
    prev_ = ld::set_handler([this](const ld::Violation& v) { seen.push_back(v); });
  }
  ~Recorder() { ld::set_handler(std::move(prev_)); }  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
  std::vector<ld::Violation> seen;

 private:
  ld::Handler prev_;
};

struct AbortAcquire : std::runtime_error {
  AbortAcquire() : std::runtime_error("lockdep violation") {}
};

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = ld::enabled();
    ld::set_enabled(true);
    ld::reset_graph_for_testing();
  }
  void TearDown() override {
    ld::reset_graph_for_testing();
    ld::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(LockdepTest, ConsistentOrderingStaysSilent) {
  Recorder rec;
  Mutex a("t.consistent.a");
  Mutex b("t.consistent.b");
  for (int i = 0; i < 3; ++i) {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  // a -> b -> c extends the chain without closing anything.
  Mutex c("t.consistent.c");
  {
    const LockGuard lb(b);
    const LockGuard lc(c);
  }
  {
    const LockGuard la(a);
    const LockGuard lc(c);
  }
  EXPECT_TRUE(rec.seen.empty());
  EXPECT_EQ(ld::held_count(), 0u);
}

TEST_F(LockdepTest, DirectInversionDetected) {
  Recorder rec;
  Mutex a("t.inv.a");
  Mutex b("t.inv.b");
  {
    const LockGuard la(a);
    const LockGuard lb(b);  // records a -> b
  }
  {
    const LockGuard lb(b);
    const LockGuard la(a);  // a while holding b: cycle
  }
  ASSERT_EQ(rec.seen.size(), 1u);
  EXPECT_EQ(rec.seen[0].kind, ld::Violation::Kind::lock_inversion);
  EXPECT_NE(rec.seen[0].report.find("t.inv.a"), std::string::npos);
  EXPECT_NE(rec.seen[0].report.find("t.inv.b"), std::string::npos);
  EXPECT_NE(rec.seen[0].report.find("LOCK-ORDER INVERSION"), std::string::npos);
}

TEST_F(LockdepTest, TransitiveCycleDetected) {
  Recorder rec;
  Mutex a("t.cycle3.a");
  Mutex b("t.cycle3.b");
  Mutex c("t.cycle3.c");
  {
    const LockGuard la(a);
    const LockGuard lb(b);  // a -> b
  }
  {
    const LockGuard lb(b);
    const LockGuard lc(c);  // b -> c
  }
  {
    const LockGuard lc(c);
    const LockGuard la(a);  // closes a -> b -> c -> a
  }
  ASSERT_EQ(rec.seen.size(), 1u);
  EXPECT_EQ(rec.seen[0].kind, ld::Violation::Kind::lock_inversion);
  // The report shows the full chain.
  EXPECT_NE(rec.seen[0].report.find("t.cycle3.a"), std::string::npos);
  EXPECT_NE(rec.seen[0].report.find("t.cycle3.b"), std::string::npos);
  EXPECT_NE(rec.seen[0].report.find("t.cycle3.c"), std::string::npos);
}

TEST_F(LockdepTest, InversionReportedOnceNotEveryTime) {
  Recorder rec;
  Mutex a("t.once.a");
  Mutex b("t.once.b");
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  for (int i = 0; i < 5; ++i) {
    const LockGuard lb(b);
    const LockGuard la(a);
  }
  // The cycle-closing edge is never recorded, so each reverse acquisition
  // re-detects the same cycle — but the graph stays acyclic.
  EXPECT_EQ(rec.seen.size(), 5u);
  for (const auto& v : rec.seen)
    EXPECT_EQ(v.kind, ld::Violation::Kind::lock_inversion);
}

TEST_F(LockdepTest, RecursiveSelfLockDetected) {
  // A handler that throws aborts the second acquisition, so the test does
  // not actually self-deadlock on the underlying std::mutex.
  auto prev = ld::set_handler([](const ld::Violation& v) {
    EXPECT_EQ(v.kind, ld::Violation::Kind::recursive_lock);
    EXPECT_NE(v.report.find("RECURSIVE LOCK"), std::string::npos);
    EXPECT_NE(v.report.find("self-deadlock"), std::string::npos);
    throw AbortAcquire();
  });
  Mutex m("t.recursive.m");
  m.lock();
  EXPECT_THROW(m.lock(), AbortAcquire);
  EXPECT_EQ(ld::held_count(), 1u);
  m.unlock();
  EXPECT_EQ(ld::held_count(), 0u);
  ld::set_handler(std::move(prev));
}

TEST_F(LockdepTest, SameClassNestingDetectedUnlessRankOrdered) {
  {
    Recorder rec;
    Mutex m1("t.sameclass.plain");
    Mutex m2("t.sameclass.plain");
    const LockGuard l1(m1);
    const LockGuard l2(m2);  // two instances, no declared order: potential ABBA
    ASSERT_EQ(rec.seen.size(), 1u);
    EXPECT_EQ(rec.seen[0].kind, ld::Violation::Kind::recursive_lock);
  }
  {
    Recorder rec;
    Mutex m1("t.sameclass.ranked", /*rank_ordered=*/true);
    Mutex m2("t.sameclass.ranked", /*rank_ordered=*/true);
    const LockGuard l1(m1);
    const LockGuard l2(m2);
    EXPECT_TRUE(rec.seen.empty());
  }
}

TEST_F(LockdepTest, CondWaitWhileHoldingUnrelatedLock) {
  Recorder rec;
  sim::TimeKeeper tk(sim::TimeKeeper::Mode::virtual_time);
  const sim::TimeKeeper::ThreadGuard guard(tk);

  Mutex other("t.cw.other");
  Mutex m("t.cw.waitm");
  CondVar cv(tk, "t.cw.cv");

  other.lock();
  {
    UniqueLock lk(m);
    // Nobody will notify: the single registered thread is parked, the clock
    // jumps to the deadline, and the wait times out in zero wall time.
    EXPECT_FALSE(cv.wait_for(lk, 1000));
  }
  other.unlock();

  ASSERT_EQ(rec.seen.size(), 1u);
  EXPECT_EQ(rec.seen[0].kind, ld::Violation::Kind::cond_wait_holding);
  EXPECT_NE(rec.seen[0].report.find("t.cw.other"), std::string::npos);
  EXPECT_NE(rec.seen[0].report.find("t.cw.cv"), std::string::npos);
}

TEST_F(LockdepTest, CondWaitHoldingOnlyItsMutexIsFine) {
  Recorder rec;
  sim::TimeKeeper tk(sim::TimeKeeper::Mode::virtual_time);
  const sim::TimeKeeper::ThreadGuard guard(tk);

  Mutex m("t.cwok.m");
  CondVar cv(tk, "t.cwok.cv");
  UniqueLock lk(m);
  EXPECT_FALSE(cv.wait_for(lk, 1000));
  EXPECT_TRUE(rec.seen.empty());
}

TEST_F(LockdepTest, CondWaitCheckIgnoresUnregisteredThreads) {
  Recorder rec;
  Mutex other("t.cwunreg.other");
  const LockGuard l(other);
  // A thread not registered with a TimeKeeper blocks in real time; parking
  // it does not stall simulated time, so no violation.
  ld::cond_wait_check(/*wait_mutex=*/nullptr, /*in_sim_thread=*/false, "t.cwunreg");
  EXPECT_TRUE(rec.seen.empty());
}

TEST_F(LockdepTest, TryLockInReverseOrderIsAllowed) {
  Recorder rec;
  Mutex a("t.try.a");
  Mutex b("t.try.b");
  {
    const LockGuard la(a);
    const LockGuard lb(b);  // a -> b
  }
  {
    const LockGuard lb(b);
    ASSERT_TRUE(a.try_lock());  // reverse probe: legitimate, no report
    a.unlock();
  }
  EXPECT_TRUE(rec.seen.empty());
  // And the probe did not poison the graph: the forward order still works.
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  EXPECT_TRUE(rec.seen.empty());
}

TEST_F(LockdepTest, DisabledCheckerIsSilent) {
  Recorder rec;
  ld::set_enabled(false);
  Mutex a("t.off.a");
  Mutex b("t.off.b");
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  {
    const LockGuard lb(b);
    const LockGuard la(a);
  }
  EXPECT_TRUE(rec.seen.empty());
  ld::set_enabled(true);
}

TEST_F(LockdepTest, UniqueLockDeferAndMove) {
  Mutex m("t.ul.m");
  UniqueLock lk(m, std::defer_lock);
  EXPECT_FALSE(lk.owns_lock());
  EXPECT_EQ(ld::held_count(), 0u);
  lk.lock();
  EXPECT_TRUE(lk.owns_lock());
  EXPECT_EQ(ld::held_count(), 1u);
  UniqueLock moved(std::move(lk));
  EXPECT_TRUE(moved.owns_lock());
  EXPECT_EQ(ld::held_count(), 1u);
  moved.unlock();
  EXPECT_EQ(ld::held_count(), 0u);
}

}  // namespace
}  // namespace doceph::dbg
