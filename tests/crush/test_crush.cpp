#include "crush/crush_map.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "crush/hash.h"
#include "crush/osd_map.h"

namespace doceph::crush {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(hash32_2(1, 2), hash32_2(1, 2));
  EXPECT_EQ(hash32_3(1, 2, 3), hash32_3(1, 2, 3));
  EXPECT_NE(hash32_2(1, 2), hash32_2(2, 1));
  EXPECT_NE(hash32_3(1, 2, 3), hash32_3(1, 2, 4));
  EXPECT_EQ(hash_str("objname"), hash_str("objname"));
  EXPECT_NE(hash_str("a"), hash_str("b"));
}

TEST(CrushMap, SelectsDistinctDevices) {
  const CrushMap map = CrushMap::build_flat(6);
  for (std::uint32_t x = 0; x < 200; ++x) {
    const auto picked = map.select(x, 3);
    ASSERT_EQ(picked.size(), 3u) << "x=" << x;
    const std::set<int> uniq(picked.begin(), picked.end());
    EXPECT_EQ(uniq.size(), 3u) << "x=" << x;
    for (const int osd : picked) {
      EXPECT_GE(osd, 0);
      EXPECT_LT(osd, 6);
    }
  }
}

TEST(CrushMap, DeterministicAcrossCalls) {
  const CrushMap a = CrushMap::build_flat(4);
  const CrushMap b = CrushMap::build_flat(4);
  for (std::uint32_t x = 0; x < 100; ++x) {
    EXPECT_EQ(a.select(x, 2), b.select(x, 2));
  }
}

TEST(CrushMap, DistributionRoughlyUniform) {
  const CrushMap map = CrushMap::build_flat(4);
  std::map<int, int> primary_count;
  constexpr int kSamples = 4000;
  for (std::uint32_t x = 0; x < kSamples; ++x) {
    const auto picked = map.select(x, 1);
    ASSERT_EQ(picked.size(), 1u);
    primary_count[picked[0]]++;
  }
  for (int osd = 0; osd < 4; ++osd) {
    // Expect 1000 each; allow wide tolerance (hash quality, not statistics).
    EXPECT_GT(primary_count[osd], 700) << "osd " << osd;
    EXPECT_LT(primary_count[osd], 1300) << "osd " << osd;
  }
}

TEST(CrushMap, ZeroWeightExcluded) {
  CrushMap map = CrushMap::build_flat(3);
  map.set_device_weight(1, 0.0);
  for (std::uint32_t x = 0; x < 200; ++x) {
    for (const int osd : map.select(x, 2)) EXPECT_NE(osd, 1);
  }
  EXPECT_EQ(map.device_weight(1), 0.0);
  EXPECT_EQ(map.device_weight(0), 1.0);
}

TEST(CrushMap, WeightChangeMovesMinimalData) {
  CrushMap before = CrushMap::build_flat(5);
  CrushMap after = CrushMap::build_flat(5);
  after.set_device_weight(4, 0.0);  // drain osd.4
  constexpr int kSamples = 2000;
  int moved = 0, hit4 = 0;
  for (std::uint32_t x = 0; x < kSamples; ++x) {
    const auto a = before.select(x, 1);
    const auto b = after.select(x, 1);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    if (a[0] == 4) {
      hit4++;
      EXPECT_NE(b[0], 4);
    } else {
      // straw2 property: inputs not on the drained device must not move.
      EXPECT_EQ(a[0], b[0]) << "x=" << x;
      if (a[0] != b[0]) moved++;
    }
  }
  EXPECT_GT(hit4, 200);  // osd.4 held ~1/5 of the data
  EXPECT_EQ(moved, 0);
}

TEST(CrushMap, SelectMoreThanDomainsReturnsFewer) {
  const CrushMap map = CrushMap::build_flat(2);
  const auto picked = map.select(7, 5);
  EXPECT_EQ(picked.size(), 2u);
}

TEST(CrushMap, EncodeDecodeRoundTrip) {
  CrushMap map = CrushMap::build_flat(4);
  map.set_device_weight(2, 0.0);
  BufferList bl;
  map.encode(bl);
  CrushMap copy;
  BufferList::Cursor cur(bl);
  ASSERT_TRUE(copy.decode(cur));
  for (std::uint32_t x = 0; x < 100; ++x) EXPECT_EQ(copy.select(x, 2), map.select(x, 2));
}

TEST(OSDMap, BuildAndStates) {
  OSDMap map = OSDMap::build(3);
  EXPECT_EQ(map.num_osds(), 3);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_FALSE(map.is_up(0));
  map.mark_up(0, {5, 6800});
  map.bump_epoch();
  EXPECT_TRUE(map.is_up(0));
  EXPECT_EQ(map.osd(0).addr, (net::Address{5, 6800}));
  EXPECT_EQ(map.epoch(), 2u);
  map.mark_down(0);
  EXPECT_FALSE(map.is_up(0));
  EXPECT_FALSE(map.is_up(99));  // out of range is just "not up"
}

TEST(OSDMap, ObjectToPgStable) {
  OSDMap map = OSDMap::build(2);
  map.create_pool(1, {.name = "rbd", .pg_num = 64, .size = 2});
  const pg_t a = map.object_to_pg(1, "objA");
  EXPECT_EQ(a, map.object_to_pg(1, "objA"));
  EXPECT_LT(a.seed, 64u);
  EXPECT_EQ(a.pool, 1u);
  // Spread: many names should cover many PGs.
  std::set<std::uint32_t> seeds;
  for (int i = 0; i < 300; ++i)
    seeds.insert(map.object_to_pg(1, "obj" + std::to_string(i)).seed);
  EXPECT_GT(seeds.size(), 40u);
}

TEST(OSDMap, ActingSetFiltersDownOsds) {
  OSDMap map = OSDMap::build(3);
  map.create_pool(1, {.name = "p", .pg_num = 16, .size = 2});
  for (int i = 0; i < 3; ++i) map.mark_up(i, {i, 6800});

  const pg_t pg{1, 5};
  const auto raw = map.pg_to_raw(pg);
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(map.pg_to_acting(pg), raw);
  EXPECT_EQ(map.pg_primary(pg), raw[0]);

  map.mark_down(raw[0]);
  const auto acting = map.pg_to_acting(pg);
  ASSERT_EQ(acting.size(), 1u);
  EXPECT_EQ(acting[0], raw[1]);
  EXPECT_EQ(map.pg_primary(pg), raw[1]);

  map.mark_down(raw[1]);
  EXPECT_EQ(map.pg_primary(pg), -1);
}

TEST(OSDMap, EncodeDecodeRoundTrip) {
  OSDMap map = OSDMap::build(4);
  map.create_pool(7, {.name = "data", .pg_num = 8, .size = 3});
  map.mark_up(1, {1, 6800});
  map.bump_epoch();

  BufferList bl;
  map.encode(bl);
  OSDMap copy;
  BufferList::Cursor cur(bl);
  ASSERT_TRUE(copy.decode(cur));
  EXPECT_EQ(copy.epoch(), map.epoch());
  EXPECT_EQ(copy.num_osds(), 4);
  EXPECT_TRUE(copy.is_up(1));
  ASSERT_NE(copy.pool(7), nullptr);
  EXPECT_EQ(copy.pool(7)->pg_num, 8u);
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(copy.pg_to_raw({7, s}), map.pg_to_raw({7, s}));
  }
}

TEST(OSDMap, PoolsPlaceIndependently) {
  OSDMap map = OSDMap::build(8);
  map.create_pool(1, {.name = "a", .pg_num = 32, .size = 2});
  map.create_pool(2, {.name = "b", .pg_num = 32, .size = 2});
  int differs = 0;
  for (std::uint32_t s = 0; s < 32; ++s) {
    if (map.pg_to_raw({1, s}) != map.pg_to_raw({2, s})) differs++;
  }
  EXPECT_GT(differs, 10);  // pool id salts the placement
}

}  // namespace
}  // namespace doceph::crush
