#pragma once

#include <functional>
#include <string>

#include "sim/env.h"
#include "sim/thread.h"

namespace doceph::testing {

/// Run `body` on a registered sim thread of `env` and join. Blocking sim
/// primitives (device IO, CondVars, sleeps) are only legal on such threads.
inline void run_sim(sim::Env& env, const std::function<void()>& body,
                    const std::string& name = "test-driver") {
  env.run_on_sim_thread(body, name);
}

/// Deterministic pseudo-random payload of n bytes.
inline std::string pattern(std::size_t n, unsigned seed = 7) {
  std::string s(n, '\0');
  unsigned x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    s[i] = static_cast<char>(x >> 24);
  }
  return s;
}

}  // namespace doceph::testing
