#include <gtest/gtest.h>

#include <cstdio>

#include "benchcore/experiment.h"
#include "benchcore/table.h"

namespace doceph::benchcore {
namespace {

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::pct(0.825), "82.5%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(RunSpec, CacheKeyIsStableAndDistinct) {
  RunSpec a;
  RunSpec b;
  EXPECT_EQ(a.cache_key(), b.cache_key());
  b.object_size = 16 << 20;
  EXPECT_NE(a.cache_key(), b.cache_key());
  RunSpec c;
  c.mode = cluster::DeployMode::doceph;
  EXPECT_NE(a.cache_key(), c.cache_key());
  RunSpec d;
  d.proxy_override = cluster::default_proxy();
  d.proxy_override->slots = 4;
  EXPECT_NE(a.cache_key(), d.cache_key());
  RunSpec e;
  e.dma_failure_rate = 0.01;
  EXPECT_NE(a.cache_key(), e.cache_key());
}

TEST(BreakdownSnapshot, OthersIsResidualAndNonNegative) {
  proxy::BreakdownSnapshot bd;
  bd.count = 2;
  bd.total_ns = 100;
  bd.dma_ns = 20;
  bd.dma_wait_ns = 30;
  bd.host_write_ns = 10;
  EXPECT_DOUBLE_EQ(bd.others_ns_avg(), 20.0 * 1e-9);
  // Components exceeding total (overlap) clamp to zero rather than go
  // negative.
  bd.dma_ns = 200;
  EXPECT_DOUBLE_EQ(bd.others_ns_avg(), 0.0);
}

TEST(Experiment, ShortRunProducesCoherentMetrics) {
  RunSpec spec;
  spec.mode = cluster::DeployMode::doceph;
  spec.object_size = 1 << 20;
  spec.concurrency = 8;
  spec.warmup = 200'000'000;
  spec.measure = 800'000'000;
  spec.pg_num = 16;
  const auto r = run_experiment(spec);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.iops, 0.0);
  EXPECT_NEAR(r.mbps, r.iops * 1.048576, r.iops * 0.05);
  EXPECT_GT(r.avg_lat_s, 0.0);
  EXPECT_GT(r.dpu_cores, r.host_cores);  // the offload, in one assertion
  EXPECT_GT(r.share_messenger, 0.3);
  EXPECT_GT(r.bd_total_s, 0.0);
  EXPECT_GE(r.bd_total_s,
            r.bd_dma_s);  // total covers its components on average
  const double share_sum = r.share_messenger + r.share_objectstore + r.share_osd;
  EXPECT_LE(share_sum, 1.0 + 1e-9);
  EXPECT_GT(r.window_s, 0.7);
}

}  // namespace
}  // namespace doceph::benchcore
