// Parameterized sweeps of the fabric's transfer model: sizes x bandwidths x
// latencies, checking both integrity and the analytic delivery-time model.
#include <gtest/gtest.h>

#include <atomic>

#include "../test_util.h"
#include "net/fabric.h"
#include "sim/env.h"

namespace doceph::net {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct SweepParam {
  std::size_t bytes;
  double bw;
  Duration latency;
};

class FabricSweep : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, FabricSweep,
    ::testing::Values(SweepParam{1, 1e9, 1000}, SweepParam{1500, 1e9, 1000},
                      SweepParam{64 << 10, 1e9, 100'000},
                      SweepParam{1 << 20, 125e6, 30'000},    // 1 GbE
                      SweepParam{1 << 20, 12.5e9, 5'000},    // 100 GbE
                      SweepParam{(1 << 20) - 1, 12.5e9, 5'000}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.bytes) + "_bw" +
             std::to_string(static_cast<long long>(info.param.bw)) + "_l" +
             std::to_string(info.param.latency);
    });

TEST_P(FabricSweep, SingleChunkDeliveryTimeAndIntegrity) {
  const auto p = GetParam();
  Env env;
  Fabric fabric(env);
  NicProfile nic{.bw_bytes_per_sec = p.bw, .latency = p.latency};
  auto& a = fabric.add_node("a", nic);
  auto& b = fabric.add_node("b", nic);
  event::EventCenter center(env);
  Thread loop(env.keeper(), env.stats(), "loop", nullptr, [&] { center.run(); }, true);

  std::mutex m;
  CondVar cv(env.keeper());
  BufferList got;
  Time delivered = -1;
  ASSERT_TRUE(b.listen(9000, center, [&](SocketRef s) {
                 s->set_read_handler(center, [&, s] {
                   while (true) {
                     BufferList c = s->recv(1 << 22);
                     if (c.empty()) break;
                     const std::lock_guard<std::mutex> lk(m);
                     got.claim_append(c);
                     delivered = env.now();
                   }
                   cv.notify_all();
                 });
               }).ok());

  const std::string payload = pattern(p.bytes, 5);
  run_sim(env, [&] {
    auto sock = fabric.connect(a, {b.id(), 9000});
    ASSERT_TRUE(sock.ok());
    BufferList bl = BufferList::copy_of(payload);
    const Time t0 = env.now();
    auto acc = (*sock)->send(bl);
    ASSERT_TRUE(acc.ok());
    ASSERT_EQ(*acc, p.bytes);  // all sizes here fit the 1 MiB window
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return got.length() >= p.bytes; });
    // Cut-through model: bytes/bw + one latency, from send time.
    const Time expect = t0 + transfer_time(p.bytes, p.bw) + p.latency;
    EXPECT_EQ(delivered, expect);
  });
  EXPECT_EQ(got.to_string(), payload);
  center.stop();
}

TEST(FabricParams, AsymmetricLatencyUsesSenderSide) {
  Env env;
  Fabric fabric(env);
  auto& fast = fabric.add_node("fast", {.bw_bytes_per_sec = 1e9, .latency = 1'000});
  auto& slow = fabric.add_node("slow", {.bw_bytes_per_sec = 1e9, .latency = 900'000});
  event::EventCenter center(env);
  Thread loop(env.keeper(), env.stats(), "loop", nullptr, [&] { center.run(); }, true);
  std::mutex m;
  CondVar cv(env.keeper());
  Time delivered = -1;
  ASSERT_TRUE(slow.listen(9000, center, [&](SocketRef s) {
                 s->set_read_handler(center, [&, s] {
                   while (!s->recv(1 << 20).empty()) {
                   }
                   const std::lock_guard<std::mutex> lk(m);
                   delivered = env.now();
                   cv.notify_all();
                 });
               }).ok());
  run_sim(env, [&] {
    auto sock = fabric.connect(fast, {slow.id(), 9000});
    ASSERT_TRUE(sock.ok());
    BufferList bl = BufferList::copy_of("ping");
    const Time t0 = env.now();
    (void)(*sock)->send(bl);
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return delivered >= 0; });
    // Propagation delay comes from the sender's NIC profile.
    EXPECT_LT(delivered - t0, 100'000);
  });
  center.stop();
}

TEST(FabricParams, ManySmallMessagesKeepOrder) {
  Env env;
  Fabric fabric(env);
  auto& a = fabric.add_node("a");
  auto& b = fabric.add_node("b");
  event::EventCenter center(env);
  Thread loop(env.keeper(), env.stats(), "loop", nullptr, [&] { center.run(); }, true);
  std::mutex m;
  CondVar cv(env.keeper());
  std::string stream;
  ASSERT_TRUE(b.listen(9000, center, [&](SocketRef s) {
                 s->set_read_handler(center, [&, s] {
                   while (true) {
                     BufferList c = s->recv(4096);
                     if (c.empty()) break;
                     const std::lock_guard<std::mutex> lk(m);
                     stream += c.to_string();
                   }
                   cv.notify_all();
                 });
               }).ok());
  std::string expect;
  run_sim(env, [&] {
    auto sock = fabric.connect(a, {b.id(), 9000});
    ASSERT_TRUE(sock.ok());
    for (int i = 0; i < 200; ++i) {
      const std::string msg = "[m" + std::to_string(i) + "]";
      expect += msg;
      BufferList bl = BufferList::copy_of(msg);
      while (bl.length() > 0) {
        auto r = (*sock)->send(bl);
        ASSERT_TRUE(r.ok());
        if (*r == 0) env.keeper().sleep_for(10'000);
      }
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return stream.size() >= expect.size(); });
  });
  EXPECT_EQ(stream, expect);
  center.stop();
}

}  // namespace
}  // namespace doceph::net
