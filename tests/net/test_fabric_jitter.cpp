// net.delay jitter sweeps: randomly delayed chunks must never reorder the
// byte stream (the socket's in-order delivery floor clamps later chunks
// behind fault-delayed ones), across a grid of fire probabilities and spike
// magnitudes — and the same floor must hold one layer up, for messenger
// message order.
#include <gtest/gtest.h>

#include <atomic>

#include "../test_util.h"
#include "common/fault.h"
#include "msgr/messages.h"
#include "msgr/messenger.h"
#include "net/fabric.h"
#include "sim/env.h"

namespace doceph::net {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct JitterParam {
  double p;                 ///< per-chunk fire probability
  std::uint64_t delay_ns;   ///< spike magnitude
};

class NetDelayJitterSweep : public ::testing::TestWithParam<JitterParam> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, NetDelayJitterSweep,
    ::testing::Values(JitterParam{0.05, 5'000'000}, JitterParam{0.25, 1'000'000},
                      JitterParam{0.5, 200'000}, JitterParam{1.0, 2'000'000}),
    [](const auto& info) {
      return "p" + std::to_string(static_cast<int>(info.param.p * 100)) + "_d" +
             std::to_string(info.param.delay_ns);
    });

TEST_P(NetDelayJitterSweep, ByteStreamOrderSurvivesJitter) {
  const auto param = GetParam();
  Env env(TimeKeeper::Mode::virtual_time, /*seed=*/77);
  Fabric fabric(env);
  auto& a = fabric.add_node("a");
  auto& b = fabric.add_node("b");
  event::EventCenter center(env);
  Thread loop(env.keeper(), env.stats(), "loop", nullptr, [&] { center.run(); }, true);

  fault::FaultSpec jitter;
  jitter.probability = param.p;
  jitter.delay_ns = param.delay_ns;
  jitter.match = "a>b";
  env.faults().set("net.delay", jitter);

  std::mutex m;
  CondVar cv(env.keeper());
  std::string stream;
  ASSERT_TRUE(b.listen(9000, center, [&](SocketRef s) {
                 s->set_read_handler(center, [&, s] {
                   while (true) {
                     BufferList c = s->recv(4096);
                     if (c.empty()) break;
                     const std::lock_guard<std::mutex> lk(m);
                     stream += c.to_string();
                   }
                   cv.notify_all();
                 });
               }).ok());

  std::string expect;
  run_sim(env, [&] {
    auto sock = fabric.connect(a, {b.id(), 9000});
    ASSERT_TRUE(sock.ok());
    for (int i = 0; i < 300; ++i) {
      const std::string msg = "[m" + std::to_string(i) + "]";
      expect += msg;
      BufferList bl = BufferList::copy_of(msg);
      while (bl.length() > 0) {
        auto r = (*sock)->send(bl);
        ASSERT_TRUE(r.ok());
        if (*r == 0) env.keeper().sleep_for(10'000);
      }
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return stream.size() >= expect.size(); });
  });
  // The floor: jittered delivery, identical byte order.
  EXPECT_EQ(stream, expect);
  EXPECT_GE(env.faults().fires("net.delay"), 1u) << "sweep point never fired";
  env.faults().clear_all();
  center.stop();
}

/// Message order one layer up: a connection's messages must dispatch in
/// send order even when every underlying chunk (both directions) is
/// jitter-delayed at random.
TEST(NetDelayJitter, MessengerKeepsMessageOrderUnderJitter) {
  Env env(TimeKeeper::Mode::virtual_time, /*seed=*/78);
  Fabric fabric(env);
  auto& a = fabric.add_node("a");
  auto& b = fabric.add_node("b");

  struct TidRecorder : msgr::Dispatcher {
    explicit TidRecorder(Env& e) : cv(e.keeper()) {}
    void ms_dispatch(const msgr::MessageRef& msg) override {
      const std::lock_guard<std::mutex> lk(m);
      tids.push_back(msg->tid);
      cv.notify_all();
    }
    std::mutex m;
    CondVar cv;
    std::vector<std::uint64_t> tids;
  };

  msgr::Messenger ma(env, fabric, a, nullptr, "client.1");
  msgr::Messenger mb(env, fabric, b, nullptr, "osd.0");
  TidRecorder ra{env};
  TidRecorder rb{env};
  ma.set_dispatcher(&ra);
  mb.set_dispatcher(&rb);
  ASSERT_TRUE(mb.bind(6800).ok());
  ma.start();
  mb.start();

  fault::FaultSpec jitter;  // empty match: every link, both directions
  jitter.probability = 0.35;
  jitter.delay_ns = 800'000;
  env.faults().set("net.delay", jitter);

  constexpr std::uint64_t kMsgs = 100;
  run_sim(env, [&] {
    auto con = ma.get_connection(mb.addr());
    ASSERT_NE(con, nullptr);
    for (std::uint64_t tid = 1; tid <= kMsgs; ++tid) {
      auto op = std::make_shared<msgr::MOSDOp>();
      op->op = msgr::OsdOpType::write_full;
      op->object = "o" + std::to_string(tid);
      op->tid = tid;
      op->data = BufferList::copy_of(pattern(512, static_cast<unsigned>(tid)));
      con->send_message(op);
    }
    std::unique_lock<std::mutex> lk(rb.m);
    rb.cv.wait(lk, [&] { return rb.tids.size() >= kMsgs; });
  });

  std::vector<std::uint64_t> want(kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) want[i] = i + 1;
  EXPECT_EQ(rb.tids, want);
  EXPECT_GE(env.faults().fires("net.delay"), 1u);
  env.faults().clear_all();
  ma.shutdown();
  mb.shutdown();
}

}  // namespace
}  // namespace doceph::net
