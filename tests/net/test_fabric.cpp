#include "net/fabric.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>

#include "sim/env.h"

namespace doceph::net {
namespace {

using namespace doceph::sim;

/// Two nodes, each with its own event loop, plus a sink that accumulates
/// whatever arrives on the accepting side.
struct NetFixture {
  Env env;
  Fabric fabric{env};
  NetNode& a;
  NetNode& b;
  event::EventCenter ca{env};
  event::EventCenter cb{env};
  Thread la, lb;

  std::mutex m;
  CondVar cv{env.keeper()};
  SocketRef server;
  BufferList received;
  bool server_eof = false;
  Time last_delivery = -1;

  explicit NetFixture(NicProfile nic_a = {}, NicProfile nic_b = {},
                      StackModel stack = {})
      : a(fabric.add_node("a", nic_a, stack)),
        b(fabric.add_node("b", nic_b, stack)),
        la(env.keeper(), env.stats(), "loop-a", nullptr, [this] { ca.run(); }, true),
        lb(env.keeper(), env.stats(), "loop-b", nullptr, [this] { cb.run(); }, true) {}

  ~NetFixture() {  // NOLINT(bugprone-exception-escape): test teardown; a throw fails the binary loudly, which is fine
    ca.stop();
    cb.stop();
    // Join the loops before the members they touch (server, cv, m — declared
    // below the threads, so destroyed first) go away: stop() only *asks* the
    // loops to exit, and a handler may still be mid-flight.
    la.join();
    lb.join();
  }

  /// Listen on b:port and drain everything into `received`.
  void start_sink(std::uint16_t port) {
    const Status st = b.listen(port, cb, [this](SocketRef s) {
      {
        const std::lock_guard<std::mutex> lk(m);
        server = s;
      }
      s->set_read_handler(cb, [this, s] {
        while (true) {
          BufferList chunk = s->recv(1 << 22);
          if (chunk.empty()) break;
          const std::lock_guard<std::mutex> lk(m);
          received.claim_append(chunk);
          last_delivery = env.now();
        }
        if (s->eof()) {
          const std::lock_guard<std::mutex> lk(m);
          server_eof = true;
        }
        cv.notify_all();
      });
      cv.notify_all();
    });
    ASSERT_TRUE(st.ok()) << st.to_string();
  }

  /// Send all of `payload` from a sim thread, polling on would-block.
  void send_all(Socket& sock, BufferList payload) {
    while (payload.length() > 0) {
      auto r = sock.send(payload);
      ASSERT_TRUE(r.ok()) << r.status().to_string();
      if (*r == 0) env.keeper().sleep_for(50_us);
    }
  }

  void wait_received(std::size_t n) {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return received.length() >= n; });
  }
};

std::string pattern(std::size_t n) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) s[i] = static_cast<char>('a' + i % 23);
  return s;
}

TEST(Fabric, ConnectToUnknownNodeFails) {
  NetFixture f;
  auto r = f.fabric.connect(f.a, Address{99, 1});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Errc::invalid_argument);
}

TEST(Fabric, ConnectRefusedWithoutListener) {
  NetFixture f;
  auto r = f.fabric.connect(f.a, Address{f.b.id(), 7777});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Errc::not_connected);
}

TEST(Fabric, DuplicateListenFails) {
  NetFixture f;
  EXPECT_TRUE(f.b.listen(7000, f.cb, [](SocketRef) {}).ok());
  EXPECT_EQ(f.b.listen(7000, f.cb, [](SocketRef) {}).code(), Errc::exists);
  f.b.unlisten(7000);
  EXPECT_TRUE(f.b.listen(7000, f.cb, [](SocketRef) {}).ok());
}

TEST(Fabric, SmallTransferDeliversIntact) {
  NetFixture f;
  f.start_sink(7000);
  const std::string msg = "hello across the fabric";
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    f.send_all(**r, BufferList::copy_of(msg));
    f.wait_received(msg.size());
  });
  driver.join();
  EXPECT_EQ(f.received.to_string(), msg);
}

TEST(Fabric, LargeTransferIntegrityAcrossChunks) {
  NetFixture f;
  f.start_sink(7000);
  const std::string payload = pattern(8 << 20);  // 8 MiB > window: many chunks
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    f.send_all(**r, BufferList::copy_of(payload));
    f.wait_received(payload.size());
  });
  driver.join();
  EXPECT_EQ(f.received.length(), payload.size());
  EXPECT_EQ(f.received.to_string(), payload);
}

TEST(Fabric, TransferTimeMatchesBandwidthPlusLatency) {
  NicProfile nic{.bw_bytes_per_sec = 1e9, .latency = 100_us};
  NetFixture f(nic, nic);
  f.start_sink(7000);
  constexpr std::size_t kBytes = 1 << 20;  // fits one window/chunk
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    BufferList bl;
    bl.append_zero(kBytes);
    auto acc = (*r)->send(bl);
    ASSERT_TRUE(acc.ok());
    ASSERT_EQ(*acc, kBytes);  // whole chunk accepted
    f.wait_received(kBytes);
  });
  driver.join();
  // Cut-through: bytes/bw + one latency. 1 MiB at 1 GB/s = ~1.048 ms.
  const Time expect = transfer_time(kBytes, 1e9) + 100_us;
  EXPECT_EQ(f.last_delivery, expect);
}

TEST(Fabric, SlowerReceiverBoundsThroughput) {
  NicProfile fast{.bw_bytes_per_sec = 10e9, .latency = 10_us};
  NicProfile slow{.bw_bytes_per_sec = 1e9, .latency = 10_us};
  NetFixture f(fast, slow);
  f.start_sink(7000);
  constexpr std::size_t kBytes = 1 << 20;
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    BufferList bl;
    bl.append_zero(kBytes);
    (void)(*r)->send(bl);
    f.wait_received(kBytes);
  });
  driver.join();
  // Dominated by the receiver's 1 GB/s NIC.
  EXPECT_GE(f.last_delivery, transfer_time(kBytes, 1e9));
}

TEST(Fabric, BackpressureSendWouldBlockThenResumes) {
  NetFixture f;
  f.start_sink(7000);
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    SocketRef s = *r;
    // Fill more than the 1 MiB window in one call: only part is accepted.
    BufferList bl;
    bl.append_zero(3 << 20);
    auto first = s->send(bl);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(*first, 1u << 20);
    EXPECT_EQ(bl.length(), 2u << 20);
    // Window is now full until the sink drains.
    auto second = s->send(bl);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(*second, 0u);
    f.send_all(*s, std::move(bl));
    f.wait_received(3 << 20);
  });
  driver.join();
  EXPECT_EQ(f.received.length(), 3u << 20);
}

TEST(Fabric, CloseDeliversEofAfterData) {
  NetFixture f;
  f.start_sink(7000);
  const std::string msg = "last words";
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    BufferList bl = BufferList::copy_of(msg);
    // Ensure the data chunk is in flight before closing.
    (void)(*r)->send(bl);
    f.wait_received(msg.size());
    (*r)->close();
    std::unique_lock<std::mutex> lk(f.m);
    f.cv.wait(lk, [&] { return f.server_eof; });
  });
  driver.join();
  EXPECT_EQ(f.received.to_string(), msg);
  EXPECT_TRUE(f.server_eof);
}

TEST(Fabric, SendAfterCloseFails) {
  NetFixture f;
  f.start_sink(7000);
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    (*r)->close();
    BufferList bl = BufferList::copy_of("too late");
    auto res = (*r)->send(bl);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), Errc::not_connected);
  });
  driver.join();
}

TEST(Fabric, AddressesAreConsistent) {
  NetFixture f;
  f.start_sink(7000);
  Thread driver = f.env.spawn("driver", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->remote_addr(), (Address{f.b.id(), 7000}));
    EXPECT_EQ((*r)->local_addr().node, f.a.id());
    {
      std::unique_lock<std::mutex> lk(f.m);
      f.cv.wait(lk, [&] { return f.server != nullptr; });
    }
    EXPECT_EQ(f.server->remote_addr(), (*r)->local_addr());
    EXPECT_EQ(f.server->local_addr(), (*r)->remote_addr());
  });
  driver.join();
}

TEST(Fabric, StackModelChargesSenderDomain) {
  NetFixture f;
  f.start_sink(7000);
  CpuDomain cpu(f.env.keeper(), "host", 4, 1.0);
  constexpr std::size_t kBytes = 1 << 20;
  Thread driver(f.env.keeper(), f.env.stats(), "msgr-worker-0", &cpu, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    ASSERT_TRUE(r.ok());
    BufferList bl;
    bl.append_zero(kBytes);
    (void)(*r)->send(bl);
    f.wait_received(kBytes);
  });
  driver.join();
  const StackModel stack{};
  EXPECT_EQ(f.env.stats().class_cpu_ns(ThreadClass::messenger),
            static_cast<std::uint64_t>(stack.cost(kBytes)));
  EXPECT_GT(cpu.busy_ns(), 0u);
}

TEST(Fabric, TwoStreamsShareNicBandwidth) {
  NicProfile nic{.bw_bytes_per_sec = 1e9, .latency = 10_us};
  NetFixture f(nic, nic);
  f.start_sink(7000);
  f.start_sink(7001);
  constexpr std::size_t kBytes = 1 << 20;
  auto hold = f.env.hold();
  Thread d1 = f.env.spawn("d1", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7000});
    BufferList bl;
    bl.append_zero(kBytes);
    (void)(*r)->send(bl);
  });
  Thread d2 = f.env.spawn("d2", nullptr, [&] {
    auto r = f.fabric.connect(f.a, Address{f.b.id(), 7001});
    BufferList bl;
    bl.append_zero(kBytes);
    (void)(*r)->send(bl);
  });
  Thread waiter = f.env.spawn("waiter", nullptr, [&] { f.wait_received(2 * kBytes); });
  hold.release();
  d1.join();
  d2.join();
  waiter.join();
  // Two 1 MiB chunks serialized over one 1 GB/s NIC: >= 2 * bytes/bw.
  EXPECT_GE(f.last_delivery, 2 * transfer_time(kBytes, 1e9));
}

TEST(StackModel, CostComposition) {
  StackModel s{.per_syscall = 1000, .per_byte_ns = 0.5, .per_frame = 100, .mtu = 1000};
  EXPECT_EQ(s.cost(0), 1000);
  EXPECT_EQ(s.cost(1), 1000 + 0 + 100);   // 0.5ns truncates to 0
  EXPECT_EQ(s.cost(1000), 1000 + 500 + 100);
  EXPECT_EQ(s.cost(2500), 1000 + 1250 + 300);  // 3 frames
}

}  // namespace
}  // namespace doceph::net
