#include "sim/stats.h"

#include <gtest/gtest.h>

namespace doceph::sim {
namespace {

TEST(Stats, ClassifiesCephThreadNames) {
  EXPECT_EQ(classify_thread_name("msgr-worker-0"), ThreadClass::messenger);
  EXPECT_EQ(classify_thread_name("msgr-worker-12"), ThreadClass::messenger);
  EXPECT_EQ(classify_thread_name("bstore_kv_sync"), ThreadClass::objectstore);
  EXPECT_EQ(classify_thread_name("bstore_aio"), ThreadClass::objectstore);
  EXPECT_EQ(classify_thread_name("tp_osd_tp"), ThreadClass::osd);
  EXPECT_EQ(classify_thread_name("tp_osd_tp-3"), ThreadClass::osd);
  EXPECT_EQ(classify_thread_name("client-bench-1"), ThreadClass::client);
  EXPECT_EQ(classify_thread_name("bench-writer"), ThreadClass::client);
  EXPECT_EQ(classify_thread_name("sim-scheduler"), ThreadClass::other);
  EXPECT_EQ(classify_thread_name("msgr"), ThreadClass::other);  // prefix only
}

TEST(Stats, RegistryAggregatesByClass) {
  StatsRegistry reg;
  auto a = reg.add("msgr-worker-0");
  auto b = reg.add("msgr-worker-1");
  auto c = reg.add("bstore_kv_sync");
  a->cpu_ns += 100;
  b->cpu_ns += 50;
  c->cpu_ns += 7;
  a->ctx_switches += 3;
  c->ctx_switches += 1;

  EXPECT_EQ(reg.class_cpu_ns(ThreadClass::messenger), 150u);
  EXPECT_EQ(reg.class_cpu_ns(ThreadClass::objectstore), 7u);
  EXPECT_EQ(reg.class_ctx_switches(ThreadClass::messenger), 3u);

  const auto totals = reg.totals_by_class();
  for (const auto& [cls, t] : totals) {
    if (cls == ThreadClass::messenger) {
      EXPECT_EQ(t.threads, 2);
      EXPECT_EQ(t.cpu_ns, 150u);
    }
    if (cls == ThreadClass::client) {
      EXPECT_EQ(t.threads, 0);
    }
  }
}

TEST(Stats, RegistryKeepsExitedThreadTotals) {
  StatsRegistry reg;
  {
    auto s = reg.add("tp_osd_tp");
    s->cpu_ns += 42;
  }  // shared_ptr dropped by the "thread"
  EXPECT_EQ(reg.class_cpu_ns(ThreadClass::osd), 42u);
}

TEST(Stats, ClassNames) {
  EXPECT_EQ(thread_class_name(ThreadClass::messenger), "Messenger");
  EXPECT_EQ(thread_class_name(ThreadClass::objectstore), "ObjectStore");
  EXPECT_EQ(thread_class_name(ThreadClass::osd), "OSD");
}

}  // namespace
}  // namespace doceph::sim
