#include "sim/time_keeper.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "sim/env.h"
#include "sim/thread.h"

namespace doceph::sim {
namespace {

TEST(TimeKeeper, StartsAtZero) {
  TimeKeeper tk;
  EXPECT_EQ(tk.now(), 0);
}

TEST(TimeKeeper, SingleThreadSleepAdvancesInstantly) {
  TimeKeeper tk;
  const TimeKeeper::ThreadGuard guard(tk);
  tk.sleep_for(5_s);
  EXPECT_EQ(tk.now(), 5_s);
  tk.sleep_until(7_s);
  EXPECT_EQ(tk.now(), 7_s);
  tk.sleep_until(3_s);  // past deadline: no-op
  EXPECT_EQ(tk.now(), 7_s);
}

TEST(TimeKeeper, TwoThreadsInterleaveByDeadline) {
  Env env;
  std::vector<Time> order;
  std::mutex m;
  {
    auto hold = env.hold();
    Thread a = env.spawn("a", nullptr, [&] {
      env.keeper().sleep_until(10_ms);
      const std::lock_guard<std::mutex> lk(m);
      order.push_back(env.now());
    });
    Thread b = env.spawn("b", nullptr, [&] {
      env.keeper().sleep_until(5_ms);
      {
        const std::lock_guard<std::mutex> lk(m);
        order.push_back(env.now());
      }
      env.keeper().sleep_until(20_ms);
      const std::lock_guard<std::mutex> lk(m);
      order.push_back(env.now());
    });
    hold.release();
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 5_ms);
  EXPECT_EQ(order[1], 10_ms);
  EXPECT_EQ(order[2], 20_ms);
}

TEST(TimeKeeper, CondVarNotifyWakesAtCurrentInstant) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  bool ready = false;
  Time woke_at = -1;

  auto hold = env.hold();
  Thread waiter = env.spawn("waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return ready; });
    woke_at = env.now();
  });
  Thread signaler = env.spawn("signaler", nullptr, [&] {
    env.keeper().sleep_for(30_ms);
    {
      const std::lock_guard<std::mutex> lk(m);
      ready = true;
    }
    cv.notify_one();
  });
  hold.release();
  waiter.join();
  signaler.join();
  EXPECT_EQ(woke_at, 30_ms);
}

TEST(TimeKeeper, CondVarWaitUntilTimesOut) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  bool timed_out = false;
  Time at = -1;
  Thread t = env.spawn("t", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    timed_out = !cv.wait_until(lk, 50_ms);
    at = env.now();
  });
  t.join();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(at, 50_ms);
}

TEST(TimeKeeper, CondVarNotifyBeatsTimeout) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  bool got_notify = false;
  auto hold = env.hold();
  Thread waiter = env.spawn("waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    got_notify = cv.wait_until(lk, 100_ms);
  });
  Thread signaler = env.spawn("signaler", nullptr, [&] {
    env.keeper().sleep_for(10_ms);
    cv.notify_one();
  });
  hold.release();
  waiter.join();
  signaler.join();
  EXPECT_TRUE(got_notify);
  EXPECT_EQ(env.now(), 10_ms);
}

TEST(TimeKeeper, NotifyAllWakesEveryWaiter) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  bool go = false;
  std::atomic<int> woke{0};
  auto hold = env.hold();
  std::vector<Thread> waiters;
  for (int i = 0; i < 5; ++i) {
    waiters.push_back(env.spawn("w" + std::to_string(i), nullptr, [&] {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return go; });
      woke.fetch_add(1);
    }));
  }
  Thread signaler = env.spawn("signaler", nullptr, [&] {
    env.keeper().sleep_for(1_ms);
    {
      const std::lock_guard<std::mutex> lk(m);
      go = true;
    }
    cv.notify_all();
  });
  hold.release();
  for (auto& w : waiters) w.join();
  EXPECT_EQ(woke.load(), 5);
}

TEST(TimeKeeper, NotifyOneWakesExactlyOne) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  int tokens = 0;
  std::atomic<int> consumed{0};
  auto hold = env.hold();
  std::vector<Thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.push_back(env.spawn("w" + std::to_string(i), nullptr, [&] {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return tokens > 0; });
      --tokens;
      consumed.fetch_add(1);
    }));
  }
  Thread producer = env.spawn("producer", nullptr, [&] {
    for (int i = 0; i < 3; ++i) {
      env.keeper().sleep_for(1_ms);
      {
        const std::lock_guard<std::mutex> lk(m);
        ++tokens;
      }
      cv.notify_one();
    }
  });
  hold.release();
  for (auto& w : waiters) w.join();
  producer.join();
  EXPECT_EQ(consumed.load(), 3);
  EXPECT_EQ(tokens, 0);
}

TEST(TimeKeeper, DeadlockDetected) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  std::atomic<bool> deadlocked{false};
  bool stop = false;
  env.keeper().set_deadlock_grace(std::chrono::milliseconds(50));
  env.keeper().set_deadlock_handler([&](const std::string& dump) {
    deadlocked.store(true);
    EXPECT_NE(dump.find("BLOCKED"), std::string::npos);
    {
      const std::lock_guard<std::mutex> lk(m);
      stop = true;  // make the waiters' predicates pass before the wake-all
    }
  });
  // Note: Env owns a scheduler thread that waits forever when idle, so two
  // forever-waiters here mean *all* threads are blocked without deadlines.
  std::vector<Thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.push_back(env.spawn("dead" + std::to_string(i), nullptr, [&] {
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return stop; });
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(deadlocked.load());
}

TEST(TimeKeeper, RealTimeModeRoughlyTracksWallClock) {
  TimeKeeper tk(TimeKeeper::Mode::real_time);
  const TimeKeeper::ThreadGuard guard(tk);
  const Time t0 = tk.now();
  tk.sleep_for(20_ms);
  const Time t1 = tk.now();
  EXPECT_GE(t1 - t0, 18_ms);
  EXPECT_LT(t1 - t0, 2_s);
}

TEST(TimeKeeper, RealTimeCondVarNotify) {
  TimeKeeper tk(TimeKeeper::Mode::real_time);
  std::mutex m;
  CondVar cv(tk);
  bool ready = false;
  StatsRegistry stats;
  Thread waiter(tk, stats, "rt-waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return ready; });
  });
  Thread signaler(tk, stats, "rt-signaler", nullptr, [&] {
    tk.sleep_for(5_ms);
    {
      const std::lock_guard<std::mutex> lk(m);
      ready = true;
    }
    cv.notify_one();
  });
  waiter.join();
  signaler.join();
  SUCCEED();
}

TEST(TimeKeeper, ManyThreadsConvergeOnSameTimeline) {
  Env env;
  constexpr int kThreads = 16;
  std::atomic<std::int64_t> sum{0};
  auto hold = env.hold();
  std::vector<Thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(env.spawn("m" + std::to_string(i), nullptr, [&, i] {
      for (int step = 1; step <= 10; ++step) {
        env.keeper().sleep_for(Duration{i + 1} * 1_ms);
      }
      sum.fetch_add(env.now());
    }));
  }
  hold.release();
  for (auto& t : threads) t.join();
  // Thread i finishes at 10*(i+1) ms exactly.
  std::int64_t expect = 0;
  for (int i = 0; i < kThreads; ++i) expect += Duration{10} * (i + 1) * 1_ms;
  EXPECT_EQ(sum.load(), expect);
  EXPECT_EQ(env.now(), Duration{10} * kThreads * 1_ms);
}

TEST(TimeKeeper, CtxSwitchesCountedOnBlocking) {
  Env env;
  auto stats = env.stats().add("ctx-probe");
  Thread t(env.keeper(), env.stats(), "ctx-probe2", nullptr, [&] {
    // The spawned thread has its own stats; use a fresh CondVar timeout wait
    // to check the per-thread counter via the registry instead.
    env.keeper().sleep_for(1_ms);
    env.keeper().sleep_for(1_ms);
  });
  t.join();
  // Two sleeps => at least two voluntary switches recorded for that thread.
  EXPECT_GE(env.stats().class_ctx_switches(ThreadClass::other), 2u);
  (void)stats;
}

}  // namespace
}  // namespace doceph::sim
