#include "sim/cpu_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/env.h"

namespace doceph::sim {
namespace {

TEST(CpuModel, ChargeAdvancesTime) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 4, 1.0);
  Thread t = env.spawn("worker", &cpu, [&] { cpu.charge(10_ms); });
  t.join();
  EXPECT_EQ(env.now(), 10_ms);
  EXPECT_EQ(cpu.busy_ns(), static_cast<std::uint64_t>(10_ms));
}

TEST(CpuModel, SpeedScalesDuration) {
  Env env;
  CpuDomain slow(env.keeper(), "dpu", 4, 0.5);  // half-speed ARM cores
  Thread t = env.spawn("worker", &slow, [&] { slow.charge(10_ms); });
  t.join();
  EXPECT_EQ(env.now(), 20_ms);
}

TEST(CpuModel, ParallelWithinCoreBudget) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 4, 1.0);
  auto hold = env.hold();
  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(env.spawn("w" + std::to_string(i), &cpu, [&] { cpu.charge(10_ms); }));
  hold.release();
  ts.clear();  // joins all via destructors
  // 4 threads on 4 cores run fully parallel.
  EXPECT_EQ(env.now(), 10_ms);
  EXPECT_EQ(cpu.busy_ns(), static_cast<std::uint64_t>(40_ms));
}

TEST(CpuModel, SaturationQueues) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 1, 1.0);
  auto hold = env.hold();
  std::vector<Thread> ts;
  for (int i = 0; i < 3; ++i)
    ts.push_back(env.spawn("w" + std::to_string(i), &cpu, [&] { cpu.charge(10_ms); }));
  hold.release();
  ts.clear();
  // One core, three 10ms jobs: 30ms total.
  EXPECT_EQ(env.now(), 30_ms);
}

TEST(CpuModel, AccountsToThreadStats) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 2, 1.0);
  Thread t(env.keeper(), env.stats(), "msgr-worker-0", &cpu, [&] { cpu.charge(7_ms); });
  t.join();
  EXPECT_EQ(env.stats().class_cpu_ns(ThreadClass::messenger),
            static_cast<std::uint64_t>(7_ms));
  EXPECT_EQ(env.stats().class_cpu_ns(ThreadClass::objectstore), 0u);
}

TEST(CpuModel, UtilizationWindow) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 2, 1.0);
  const auto busy0 = cpu.busy_ns();
  const Time t0 = env.now();
  Thread t = env.spawn("w", &cpu, [&] {
    cpu.charge(5_ms);
    env.keeper().sleep_for(5_ms);  // idle
  });
  t.join();
  const double util =
      CpuDomain::utilization(busy0, cpu.busy_ns(), env.now() - t0, cpu.cores());
  // 5ms busy on one of two cores over 10ms => 25%.
  EXPECT_NEAR(util, 0.25, 1e-9);
}

TEST(CpuModel, ZeroChargeIsNoOp) {
  Env env;
  CpuDomain cpu(env.keeper(), "host", 1, 1.0);
  Thread t = env.spawn("w", &cpu, [&] {
    cpu.charge(0);
    cpu.charge(-5);
  });
  t.join();
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(cpu.busy_ns(), 0u);
}

}  // namespace
}  // namespace doceph::sim
