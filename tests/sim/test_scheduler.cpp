#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "sim/env.h"
#include "sim/resource.h"

namespace doceph::sim {
namespace {

TEST(EventScheduler, FiresAtScheduledTime) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  Time fired_at = -1;
  env.scheduler().schedule_at(25_ms, [&] {
    const std::lock_guard<std::mutex> lk(m);
    fired_at = env.now();
    cv.notify_all();
  });
  Thread waiter = env.spawn("waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return fired_at >= 0; });
  });
  waiter.join();
  EXPECT_EQ(fired_at, 25_ms);
}

TEST(EventScheduler, OrdersEventsByTimeThenFifo) {
  Env env;
  std::vector<int> order;
  std::mutex m;
  CondVar cv(env.keeper());
  std::atomic<int> remaining{4};
  auto record = [&](int id) {
    const std::lock_guard<std::mutex> lk(m);
    order.push_back(id);
    if (remaining.fetch_sub(1) == 1) cv.notify_all();
  };
  auto hold = env.hold();
  env.scheduler().schedule_at(10_ms, [&] { record(2); });
  env.scheduler().schedule_at(5_ms, [&] { record(1); });
  env.scheduler().schedule_at(10_ms, [&] { record(3); });  // same time, later insert
  env.scheduler().schedule_at(20_ms, [&] { record(4); });
  hold.release();
  Thread waiter = env.spawn("waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return remaining.load() == 0; });
  });
  waiter.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventScheduler, CancelPreventsFiring) {
  Env env;
  std::atomic<bool> fired{false};
  auto hold = env.hold();  // keep the clock parked while we schedule + cancel
  const auto id = env.scheduler().schedule_at(10_ms, [&] { fired.store(true); });
  EXPECT_TRUE(env.scheduler().cancel(id));
  EXPECT_FALSE(env.scheduler().cancel(id));  // second cancel fails
  hold.release();
  // Let time pass beyond the (cancelled) event.
  Thread t = env.spawn("t", nullptr, [&] { env.keeper().sleep_for(50_ms); });
  t.join();
  EXPECT_FALSE(fired.load());
}

TEST(EventScheduler, CallbackCanScheduleMore) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  std::vector<Time> chain;
  std::function<void()> hop = [&] {
    const std::lock_guard<std::mutex> lk(m);
    chain.push_back(env.now());
    if (chain.size() < 5) {
      env.scheduler().schedule_after(10_ms, hop);
    } else {
      cv.notify_all();
    }
  };
  env.scheduler().schedule_at(10_ms, hop);
  Thread waiter = env.spawn("waiter", nullptr, [&] {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return chain.size() == 5; });
  });
  waiter.join();
  EXPECT_EQ(chain, (std::vector<Time>{10_ms, 20_ms, 30_ms, 40_ms, 50_ms}));
}

TEST(EventScheduler, PastTimeFiresImmediately) {
  Env env;
  std::mutex m;
  CondVar cv(env.keeper());
  bool fired = false;
  Thread t = env.spawn("t", nullptr, [&] {
    env.keeper().sleep_for(100_ms);
    env.scheduler().schedule_at(5_ms, [&] {  // long past
      const std::lock_guard<std::mutex> lk(m);
      fired = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return fired; });
    EXPECT_EQ(env.now(), 100_ms);  // did not go backwards
  });
  t.join();
  EXPECT_TRUE(fired);
}

TEST(SerialResource, SerializesOccupancy) {
  SerialResource r;
  EXPECT_EQ(r.reserve(0, 10), 10);
  EXPECT_EQ(r.reserve(0, 10), 20);   // queued behind the first
  EXPECT_EQ(r.reserve(50, 10), 60);  // idle gap, starts at now
  EXPECT_EQ(r.busy_ns(), 30);
  EXPECT_EQ(r.next_free(), 60);
}

TEST(SerialResource, TransferTimeHelper) {
  EXPECT_EQ(transfer_time(1'000'000, 1e9), 1_ms);          // 1MB at 1GB/s
  EXPECT_EQ(transfer_time(0, 1e9), 0);
  EXPECT_EQ(transfer_time(100, 0.0), 0);                   // degenerate: free
  EXPECT_NEAR(static_cast<double>(transfer_time(2 << 20, 2.6e9)),
              static_cast<double>((2 << 20)) / 2.6, 1.0);
}

}  // namespace
}  // namespace doceph::sim
