#include <gtest/gtest.h>

#include "../test_util.h"
#include "doca/comm_channel.h"
#include "doca/dma_engine.h"
#include "dpu/dpu_device.h"

namespace doceph::doca {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct DocaFixture {
  Env env;
  PcieLink link;
  DmaEngine dma{env, link, DmaConfig{}};
};

TEST(Mmap, ViewAndBuf) {
  Mmap m(4096);
  std::memcpy(m.data(), "hello", 5);
  EXPECT_EQ(m.view(0, 5).to_string(), "hello");
  Buf b{std::make_shared<Mmap>(128), 64, 64};
  EXPECT_TRUE(b.valid());
  Buf bad{b.mmap, 100, 64};
  EXPECT_FALSE(bad.valid());
  EXPECT_FALSE(Buf{}.valid());
}

TEST(DmaEngine, CopiesBytes) {
  DocaFixture f;
  auto src_m = std::make_shared<Mmap>(1 << 20);
  auto dst_m = std::make_shared<Mmap>(1 << 20);
  const std::string data = pattern(1 << 20);
  std::memcpy(src_m->data(), data.data(), data.size());
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    bool done = false;
    Status st;
    ASSERT_TRUE(f.dma
                    .submit({src_m, 0, data.size()}, {dst_m, 0, data.size()},
                            DmaDir::dpu_to_host,
                            [&](Status s) {
                              const std::lock_guard<std::mutex> lk(m);
                              st = s;
                              done = true;
                              cv.notify_all();
                            })
                    .ok());
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(std::memcmp(dst_m->data(), data.data(), data.size()), 0);
  EXPECT_EQ(f.dma.jobs_completed(), 1u);
  EXPECT_EQ(f.dma.bytes_moved(), data.size());
}

TEST(DmaEngine, RejectsOversizedJob) {
  DocaFixture f;
  auto m = std::make_shared<Mmap>(4 << 20);
  const auto st = f.dma.submit({m, 0, 3 << 20}, {m, 0, 3 << 20},
                               DmaDir::dpu_to_host, [](Status) {});
  EXPECT_EQ(st.code(), Errc::too_large);
}

TEST(DmaEngine, RejectsBadBuffers) {
  DocaFixture f;
  auto m = std::make_shared<Mmap>(1024);
  EXPECT_EQ(f.dma.submit({m, 0, 100}, {m, 0, 200}, DmaDir::dpu_to_host, [](Status) {})
                .code(),
            Errc::invalid_argument);
  EXPECT_EQ(f.dma.submit({nullptr, 0, 10}, {m, 0, 10}, DmaDir::dpu_to_host,
                         [](Status) {})
                .code(),
            Errc::invalid_argument);
  EXPECT_EQ(
      f.dma.submit({m, 0, 0}, {m, 0, 0}, DmaDir::dpu_to_host, [](Status) {}).code(),
      Errc::invalid_argument);
}

TEST(DmaEngine, TimingSetupPlusBandwidth) {
  DocaFixture f;
  auto src = std::make_shared<Mmap>(2 << 20);
  auto dst = std::make_shared<Mmap>(2 << 20);
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    bool done = false;
    Time finished = 0;
    const Time t0 = f.env.now();
    ASSERT_TRUE(f.dma
                    .submit({src, 0, 2 << 20}, {dst, 0, 2 << 20}, DmaDir::dpu_to_host,
                            [&](Status) {
                              const std::lock_guard<std::mutex> lk(m);
                              finished = f.env.now();
                              done = true;
                              cv.notify_all();
                            })
                    .ok());
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    const auto expect = transfer_time(2 << 20, 2.6e9) + 280_us;
    EXPECT_NEAR(static_cast<double>(finished - t0), static_cast<double>(expect),
                static_cast<double>(5_us));
  });
}

TEST(DmaEngine, SegmentsSerializeButSetupOverlaps) {
  DocaFixture f;
  auto src = std::make_shared<Mmap>(8 << 20);
  auto dst = std::make_shared<Mmap>(8 << 20);
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    Time last = 0;
    const Time t0 = f.env.now();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(f.dma
                      .submit({src, static_cast<std::size_t>(i) << 21, 2 << 20},
                              {dst, static_cast<std::size_t>(i) << 21, 2 << 20},
                              DmaDir::dpu_to_host,
                              [&](Status) {
                                const std::lock_guard<std::mutex> lk(m);
                                ++done;
                                last = f.env.now();
                                cv.notify_all();
                              })
                      .ok());
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == 4; });
    // 4 segments serialized at engine bw + ONE setup latency visible at the
    // end (pipelining property the proxy relies on).
    const auto expect = 4 * transfer_time(2 << 20, 2.6e9) + 280_us;
    EXPECT_NEAR(static_cast<double>(last - t0), static_cast<double>(expect),
                static_cast<double>(10_us));
  });
}

TEST(DmaEngine, FailureInjection) {
  DocaFixture f;
  auto m1 = std::make_shared<Mmap>(4096);
  auto m2 = std::make_shared<Mmap>(4096);
  f.dma.fail_next(1);
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    std::vector<Status> results;
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(f.dma
                      .submit({m1, 0, 1024}, {m2, 0, 1024}, DmaDir::dpu_to_host,
                              [&](Status st) {
                                const std::lock_guard<std::mutex> lk(m);
                                results.push_back(st);
                                cv.notify_all();
                              })
                      .ok());
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return results.size() == 2; });
    EXPECT_EQ(results[0].code(), Errc::channel_error);
    EXPECT_TRUE(results[1].ok());
  });
  EXPECT_EQ(f.dma.jobs_failed(), 1u);
}

TEST(CommChannel, RoundTripAndCap) {
  Env env;
  PcieLink link;
  auto [host, dpu] = CommChannel::create_pair(env, link);
  run_sim(env, [&] {
    // DPU -> host with blocking recv on the host side.
    Thread sender = Thread(env.keeper(), env.stats(), "sender", nullptr, [&] {
      EXPECT_TRUE(dpu->send(BufferList::copy_of("ping")).ok());
    });
    auto got = host->recv(1'000'000'000);
    sender.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->to_string(), "ping");

    BufferList big;
    big.append_zero(8192);
    EXPECT_EQ(dpu->send(std::move(big)).code(), Errc::too_large);
  });
}

TEST(CommChannel, HandlerDelivery) {
  Env env;
  PcieLink link;
  auto [host, dpu] = CommChannel::create_pair(env, link);
  event::EventCenter center(env);
  Thread pump(env.keeper(), env.stats(), "pump", nullptr,
              [&] { center.run(); }, /*daemon=*/true);
  std::mutex m;
  CondVar cv(env.keeper());
  std::vector<std::string> got;
  host->set_recv_handler(center, [&](BufferList msg) {
    const std::lock_guard<std::mutex> lk(m);
    got.push_back(msg.to_string());
    cv.notify_all();
  });
  run_sim(env, [&] {
    for (int i = 0; i < 5; ++i)
      ASSERT_TRUE(dpu->send(BufferList::copy_of("m" + std::to_string(i))).ok());
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return got.size() == 5; });
  });
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
  center.stop();
}

TEST(CommChannel, RecvTimesOut) {
  Env env;
  PcieLink link;
  auto [host, dpu] = CommChannel::create_pair(env, link);
  run_sim(env, [&] {
    const Time t0 = env.now();
    auto got = host->recv(5_ms);
    EXPECT_FALSE(got.has_value());
    EXPECT_GE(env.now() - t0, 5_ms);
  });
}

TEST(DpuDevice, WiringComplete) {
  Env env;
  net::Fabric fabric(env);
  dpu::DpuDevice dev(env, fabric, "dpu-0", dpu::DpuProfile{});
  EXPECT_EQ(dev.cpu().cores(), 16);
  EXPECT_LT(dev.cpu().speed(), 1.0);
  EXPECT_EQ(dev.net_node().name(), "dpu-0");
  EXPECT_NE(dev.host_comch(), nullptr);
  EXPECT_NE(dev.dpu_comch(), nullptr);
  EXPECT_EQ(dev.dma().config().max_transfer, 2u << 20);
}

}  // namespace
}  // namespace doceph::doca
