// Scatter-gather DMA: greedy packing into engine passes, the 2 MB hardware
// split boundary, per-extent completion fan-out, and per-extent fault
// injection ("<engine>#<index>" scoping).
#include <gtest/gtest.h>

#include "../test_util.h"
#include "doca/dma_engine.h"

namespace doceph::doca {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct SgFixture {
  Env env;
  PcieLink link;
  DmaEngine dma{env, link, DmaConfig{}, "eng"};

  /// Run a scatter-gather job to completion; returns per-extent statuses.
  std::vector<Status> run_sg(const std::vector<DmaExtent>& extents) {
    std::vector<Status> results(extents.size());
    run_sim(env, [&] {
      std::mutex m;
      CondVar cv(env.keeper());
      std::size_t done = 0;
      ASSERT_TRUE(dma.submit_sg(extents, DmaDir::dpu_to_host,
                                [&](std::size_t i, Status st) {
                                  const std::lock_guard<std::mutex> lk(m);
                                  results[i] = std::move(st);
                                  ++done;
                                  cv.notify_all();
                                })
                      .ok());
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [&] { return done == extents.size(); });
    });
    return results;
  }
};

std::vector<DmaExtent> make_extents(const std::shared_ptr<Mmap>& src,
                                    const std::shared_ptr<Mmap>& dst, int n,
                                    std::size_t len) {
  std::vector<DmaExtent> ext;
  for (int i = 0; i < n; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * len;
    ext.push_back({{src, off, len}, {dst, off, len}});
  }
  return ext;
}

TEST(DmaSg, SmallExtentsShareOnePass) {
  SgFixture f;
  auto src = std::make_shared<Mmap>(64 << 10);
  auto dst = std::make_shared<Mmap>(64 << 10);
  const std::string data = pattern(64 << 10);
  std::memcpy(src->data(), data.data(), data.size());

  const auto results = f.run_sg(make_extents(src, dst, 8, 8 << 10));
  for (const auto& st : results) EXPECT_TRUE(st.ok());
  EXPECT_EQ(f.dma.sg_passes(), 1u);  // 8 x 8 KB fits one <=2MB pass
  EXPECT_EQ(f.dma.jobs_completed(), 8u);
  EXPECT_EQ(f.dma.bytes_moved(), 64u << 10);
  EXPECT_EQ(std::memcmp(dst->data(), data.data(), data.size()), 0);
}

TEST(DmaSg, SplitsOnlyAtHardwareCap) {
  SgFixture f;
  auto src = std::make_shared<Mmap>(5 << 20);
  auto dst = std::make_shared<Mmap>(5 << 20);
  // 5 x 1 MB against a 2 MB cap: passes pack [0,1][2,3][4].
  const auto results = f.run_sg(make_extents(src, dst, 5, 1 << 20));
  for (const auto& st : results) EXPECT_TRUE(st.ok());
  EXPECT_EQ(f.dma.sg_passes(), 3u);
  EXPECT_EQ(f.dma.bytes_moved(), 5u << 20);
}

TEST(DmaSg, ExactCapExtentFillsItsPass) {
  SgFixture f;
  auto src = std::make_shared<Mmap>((2 << 20) + 4096);
  auto dst = std::make_shared<Mmap>((2 << 20) + 4096);
  const std::vector<DmaExtent> ext = {
      {{src, 0, 2 << 20}, {dst, 0, 2 << 20}},
      {{src, 2 << 20, 4096}, {dst, 2 << 20, 4096}},
  };
  const auto results = f.run_sg(ext);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(f.dma.sg_passes(), 2u);
}

TEST(DmaSg, RejectsOversizedExtentAndBadBuffers) {
  SgFixture f;
  auto m = std::make_shared<Mmap>(4 << 20);
  EXPECT_EQ(f.dma
                .submit_sg({{{m, 0, 3 << 20}, {m, 0, 3 << 20}}},
                           DmaDir::dpu_to_host, [](std::size_t, Status) {})
                .code(),
            Errc::too_large);
  EXPECT_EQ(f.dma
                .submit_sg({{{m, 0, 100}, {m, 0, 200}}}, DmaDir::dpu_to_host,
                           [](std::size_t, Status) {})
                .code(),
            Errc::invalid_argument);
  EXPECT_EQ(f.dma.submit_sg({}, DmaDir::dpu_to_host, [](std::size_t, Status) {})
                .code(),
            Errc::invalid_argument);
}

TEST(DmaSg, BatchPaysOneSetupLatency) {
  SgFixture f;
  auto src = std::make_shared<Mmap>(64 << 10);
  auto dst = std::make_shared<Mmap>(64 << 10);
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    std::size_t done = 0;
    Time last = 0;
    const Time t0 = f.env.now();
    ASSERT_TRUE(f.dma
                    .submit_sg(make_extents(src, dst, 16, 4 << 10),
                               DmaDir::dpu_to_host,
                               [&](std::size_t, Status st) {
                                 EXPECT_TRUE(st.ok());
                                 const std::lock_guard<std::mutex> lk(m);
                                 ++done;
                                 last = f.env.now();
                                 cv.notify_all();
                               })
                    .ok());
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == 16; });
    // One pass: bytes/bw + ONE setup — not 16 setups. (16 individual
    // submits would still pipeline the setup, but each would pay its own
    // engine pass; the packed pass is what batching buys.)
    const auto expect = transfer_time(64 << 10, 2.6e9) + 280_us;
    EXPECT_NEAR(static_cast<double>(last - t0), static_cast<double>(expect),
                static_cast<double>(5_us));
  });
}

TEST(DmaSg, PerExtentFaultFailsOnlyMatchedExtent) {
  SgFixture f;
  auto src = std::make_shared<Mmap>(16 << 10);
  auto dst = std::make_shared<Mmap>(16 << 10);
  const std::string data = pattern(16 << 10);
  std::memcpy(src->data(), data.data(), data.size());
  // Address extent 2 of this engine: scope is "eng#2".
  f.env.faults().fire_next("doca.dma_error", 1, "eng#2");

  const auto results = f.run_sg(make_extents(src, dst, 4, 4 << 10));
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].code(), Errc::channel_error);
  EXPECT_TRUE(results[3].ok());
  EXPECT_EQ(f.dma.jobs_failed(), 1u);
  EXPECT_EQ(f.dma.jobs_completed(), 3u);
  // Survivors landed; the failed extent's destination stayed untouched.
  EXPECT_EQ(std::memcmp(dst->data(), data.data(), 8 << 10), 0);
  EXPECT_EQ(std::memcmp(dst->data() + (12 << 10), data.data() + (12 << 10),
                        4 << 10),
            0);
}

TEST(DmaSg, EngineWideFaultFailsWholeBatch) {
  SgFixture f;
  auto src = std::make_shared<Mmap>(8 << 10);
  auto dst = std::make_shared<Mmap>(8 << 10);
  // match="eng" is a substring of every "eng#<i>" scope.
  f.dma.set_failure_rate(1.0);
  const auto results = f.run_sg(make_extents(src, dst, 2, 4 << 10));
  EXPECT_EQ(results[0].code(), Errc::channel_error);
  EXPECT_EQ(results[1].code(), Errc::channel_error);
  EXPECT_EQ(f.dma.jobs_failed(), 2u);
}

}  // namespace
}  // namespace doceph::doca
