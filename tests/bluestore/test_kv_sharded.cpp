// Sharded KvStore coverage (DESIGN.md §15): routing determinism, the
// cross-shard chained commit (atomic ack, crash durability on every
// shard), merged sorted iteration, and remount replay per shard.
#include "bluestore/kv.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "../test_util.h"

namespace doceph::bluestore {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct ShardedKvFixture {
  Env env;
  std::shared_ptr<DeviceBacking> backing = std::make_shared<DeviceBacking>();
  BlockDeviceConfig dev_cfg;
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<KvStore> kv;
  int shards;

  explicit ShardedKvFixture(int n, std::uint64_t wal_len = 16 << 20)
      : shards(n) {
    dev_cfg.size_bytes = 1 << 30;
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr,
                                   KvCostModel{}, n);
  }

  /// Re-open over the same backing (remount or post-crash) at `n` shards.
  void reopen(int n, std::uint64_t wal_len = 16 << 20) {
    kv.reset();
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr,
                                   KvCostModel{}, n);
  }

  static KvTxn set(const std::string& k, const std::string& v) {
    KvTxn t;
    t.sets[k] = BufferList::copy_of(v);
    return t;
  }

  /// Two keys guaranteed to land on DIFFERENT shards (the hash is
  /// deterministic, so scanning a few candidates always finds a pair).
  [[nodiscard]] std::pair<std::string, std::string> cross_shard_pair() const {
    const std::string a = "xs/key0";
    for (int i = 1; i < 64; ++i) {
      const std::string b = "xs/key" + std::to_string(i);
      if (kv->shard_of(b) != kv->shard_of(a)) return {a, b};
    }
    ADD_FAILURE() << "no cross-shard pair in 64 candidates";
    return {a, a};
  }
};

TEST(KvSharded, RoutingIsDeterministicAndCoversAllShards) {
  ShardedKvFixture f(4);
  EXPECT_EQ(f.kv->shards(), 4);
  std::set<std::size_t> hit;
  for (int i = 0; i < 256; ++i) {
    const std::string k = "route/k" + std::to_string(i);
    const std::size_t s = f.kv->shard_of(k);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, f.kv->shard_of(k));  // stable across calls
    hit.insert(s);
  }
  // FNV-1a over 256 distinct keys reaches every one of 4 shards.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(KvSharded, SingleShardOpsLandOnTheRoutedShardOnly) {
  ShardedKvFixture f(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    const std::uint64_t before = f.kv->append_offset(
        static_cast<int>(f.kv->shard_of("solo")));
    ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set("solo", "v")).ok());
    // Only the routed shard's WAL cursor moved.
    for (int s = 0; s < f.kv->shards(); ++s) {
      if (static_cast<std::size_t>(s) == f.kv->shard_of("solo")) {
        EXPECT_GT(f.kv->append_offset(s), before) << s;
      }
    }
    EXPECT_EQ(f.kv->cross_shard_commits(), 0u);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, CrossShardTxnCommitsAtomically) {
  ShardedKvFixture f(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    const auto [a, b] = f.cross_shard_pair();
    KvTxn t;
    t.sets[a] = BufferList::copy_of("A");
    t.sets[b] = BufferList::copy_of("B");
    ASSERT_TRUE(f.kv->submit(std::move(t)).ok());
    // Ack means BOTH sides are visible and the chain counter ticked.
    EXPECT_EQ(f.kv->get(a)->to_string(), "A");
    EXPECT_EQ(f.kv->get(b)->to_string(), "B");
    EXPECT_EQ(f.kv->cross_shard_commits(), 1u);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, AckedCrossShardTxnSurvivesCrashOnEveryShard) {
  ShardedKvFixture f(4);
  std::string ka;
  std::string kb;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    const auto [a, b] = f.cross_shard_pair();
    ka = a;
    kb = b;
    KvTxn t;
    t.sets[a] = BufferList::copy_of(pattern(8 << 10, 1));
    t.sets[b] = BufferList::copy_of(pattern(8 << 10, 2));
    t.rms.push_back("never-existed");
    ASSERT_TRUE(f.kv->submit(std::move(t)).ok());
    f.kv->crash();  // no checkpoint, no drain: mount must replay both shards
  });
  f.reopen(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->contains(ka));
    ASSERT_TRUE(f.kv->contains(kb));
    EXPECT_EQ(f.kv->get(ka)->to_string(), pattern(8 << 10, 1));
    EXPECT_EQ(f.kv->get(kb)->to_string(), pattern(8 << 10, 2));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, CrashWithQueuedChainNeverHangsTheCallback) {
  // A cross-shard chain whose tail link is still queued at crash() may be
  // lost — but its callback must fire (ok or error), never hang, and an
  // un-acked txn makes no durability promise.
  ShardedKvFixture f(4);
  std::atomic<int> fired{0};
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    const auto [a, b] = f.cross_shard_pair();
    for (int i = 0; i < 8; ++i) {
      KvTxn t;
      t.sets[a + std::to_string(i)] = BufferList::copy_of("x");
      t.sets[b + std::to_string(i)] = BufferList::copy_of("y");
      f.kv->queue(std::move(t), [&](Status) { fired.fetch_add(1); });
    }
    f.kv->crash();
  });
  EXPECT_EQ(fired.load(), 8);
  f.reopen(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, ForEachPrefixMergesShardsInSortedOrder) {
  // Keys scatter across shards by hash, but iteration order must be the
  // globally sorted key order — allocator rebuild and list_objects depend
  // on it.
  ShardedKvFixture f(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    std::vector<std::string> keys;
    for (int i = 0; i < 40; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "O/sorted%02d", i);
      keys.emplace_back(buf);
      ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set(keys.back(), "v")).ok());
    }
    ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set("P/other", "v")).ok());
    std::vector<std::string> seen;
    f.kv->for_each_prefix("O/", [&](const std::string& k, const BufferList&) {
      seen.push_back(k);
    });
    EXPECT_EQ(seen, keys);  // keys was built pre-sorted
    EXPECT_EQ(f.kv->num_keys(), 41u);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, RemountAtSameShardCountRestoresEveryShard) {
  ShardedKvFixture f(4);
  constexpr int kKeys = 64;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set(
          "m/" + std::to_string(i), pattern(4 << 10, static_cast<unsigned>(i)))).ok());
    }
    ASSERT_TRUE(f.kv->umount().ok());
  });
  f.reopen(4);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), static_cast<std::size_t>(kKeys));
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_EQ(f.kv->get("m/" + std::to_string(i))->to_string(),
                pattern(4 << 10, static_cast<unsigned>(i)))
          << i;
    }
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, ShardFloodRollsCheckpointsIndependently) {
  // Flood every shard past its first segment so each rolls its own
  // checkpoint chain, then crash: every shard replays from ITS newest
  // checkpoint, independent of the others' generations.
  ShardedKvFixture f(2, 4 << 20);  // 2 shards x 2 x 1 MiB segments
  constexpr int kKeys = 40;        // 40 x 40 KiB ≈ 1.6 MiB spread over 2 shards
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set(
          "flood" + std::to_string(i), pattern(40 << 10, static_cast<unsigned>(i)))).ok())
          << i;
    }
    EXPECT_GT(f.kv->map_bytes(), 1u << 20);
    EXPECT_LE(f.kv->max_shard_bytes(), f.kv->map_bytes());
    EXPECT_GT(f.kv->checkpoint_pressure(), 0.0);
    f.kv->crash();
  });
  f.reopen(2, 4 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), static_cast<std::size_t>(kKeys));
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(f.kv->contains("flood" + std::to_string(i))) << i;
    }
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvSharded, ShardedLayoutMatchesUnshardedAtOne) {
  // shards == 1 must behave exactly like the pre-sharding store: one WAL
  // region, shard_of always 0, checkpoint_pressure == map_bytes / wal_len.
  ShardedKvFixture f(1, 8 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->shards(), 1);
    EXPECT_EQ(f.kv->shard_of("anything"), 0u);
    ASSERT_TRUE(f.kv->submit(ShardedKvFixture::set("k", pattern(1 << 20, 7))).ok());
    EXPECT_EQ(f.kv->max_shard_bytes(), f.kv->map_bytes());
    EXPECT_NEAR(f.kv->checkpoint_pressure(),
                static_cast<double>(f.kv->map_bytes()) / (8 << 20), 1e-9);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

}  // namespace
}  // namespace doceph::bluestore
