#include "bluestore/kv.h"

#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"
#include "common/fault.h"

namespace doceph::bluestore {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct KvFixture {
  Env env;
  std::shared_ptr<DeviceBacking> backing = std::make_shared<DeviceBacking>();
  BlockDeviceConfig dev_cfg;
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<KvStore> kv;

  explicit KvFixture(std::uint64_t wal_len = 8 << 20) {
    dev_cfg.size_bytes = 1 << 30;
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr);
  }

  /// Re-open the store over the same backing (remount or post-crash).
  void reopen(std::uint64_t wal_len = 8 << 20) {
    kv.reset();
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr);
  }

  static KvTxn set(const std::string& k, const std::string& v) {
    KvTxn t;
    t.sets[k] = BufferList::copy_of(v);
    return t;
  }
};

TEST(KvStore, MountWithoutMkfsFails) {
  KvFixture f;
  run_sim(f.env, [&] { EXPECT_EQ(f.kv->mount().code(), Errc::corrupt); });
}

TEST(KvStore, SetGetRemove) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->submit(KvFixture::set("alpha", "1")).ok());
    EXPECT_TRUE(f.kv->submit(KvFixture::set("beta", "2")).ok());
    ASSERT_TRUE(f.kv->get("alpha").has_value());
    EXPECT_EQ(f.kv->get("alpha")->to_string(), "1");
    EXPECT_FALSE(f.kv->get("gamma").has_value());

    KvTxn rm;
    rm.rms.push_back("alpha");
    EXPECT_TRUE(f.kv->submit(std::move(rm)).ok());
    EXPECT_FALSE(f.kv->contains("alpha"));
    EXPECT_TRUE(f.kv->contains("beta"));
    EXPECT_EQ(f.kv->num_keys(), 1u);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, PrefixIteration) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (const char* k : {"O/1.0/a", "O/1.0/b", "O/1.1/c", "C/1.0"})
      ASSERT_TRUE(f.kv->submit(KvFixture::set(k, "x")).ok());
    std::vector<std::string> seen;
    f.kv->for_each_prefix("O/1.0/", [&](const std::string& k, const BufferList&) {
      seen.push_back(k);
    });
    EXPECT_EQ(seen, (std::vector<std::string>{"O/1.0/a", "O/1.0/b"}));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, RemountAfterCleanUmountRestoresState) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->submit(KvFixture::set("k", "committed")).ok());
    ASSERT_TRUE(f.kv->umount().ok());
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->get("k").has_value());
    EXPECT_EQ(f.kv->get("k")->to_string(), "committed");
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, CrashPreservesCommittedLosesQueued) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    // Committed synchronously: must survive.
    ASSERT_TRUE(f.kv->submit(KvFixture::set("durable", "yes")).ok());
  });
  // Queue (not waiting) then crash immediately: may be lost; callback must
  // still fire with an error or have committed — never hang.
  std::atomic<bool> cb_fired{false};
  run_sim(f.env, [&] {
    f.kv->queue(KvFixture::set("maybe", "lost"), [&](Status) { cb_fired.store(true); });
    f.kv->crash();
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->contains("durable"));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, ReplayAppliesInOrder) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < 50; ++i)
      ASSERT_TRUE(f.kv->submit(KvFixture::set("key", "v" + std::to_string(i))).ok());
    f.kv->crash();  // no checkpoint: forces full replay
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->get("key").has_value());
    EXPECT_EQ(f.kv->get("key")->to_string(), "v49");
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, SegmentRollCheckpointsAndSurvives) {
  // Small WAL (2 MiB => 1 MiB segments) with fat values forces segment rolls.
  KvFixture f(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(f.kv
                      ->submit(KvFixture::set("big" + std::to_string(i % 7),
                                              pattern(100 << 10, static_cast<unsigned>(i))))
                      .ok());
    }
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), 7u);
    // Last writes win: key big(59%7=3) has the payload from i=59.
    EXPECT_EQ(f.kv->get("big3")->to_string(), pattern(100 << 10, 59));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, OversizedRecordFailsWithNoSpace) {
  // 2 MiB WAL => 1 MiB segments. A single ~1.5 MiB record can never fit a
  // segment, not even right after a checkpoint roll; committing it must
  // fail with no_space. (Regression: the roll path used to write the
  // re-stamped batch anyway, overflowing the segment — the record silently
  // vanished at the next replay, i.e. an acknowledged commit was lost.)
  KvFixture f(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->submit(KvFixture::set("keep", "safe")).ok());
    const Status st = f.kv->submit(KvFixture::set("huge", pattern(1536 << 10, 1)));
    EXPECT_EQ(st.code(), Errc::no_space) << st.to_string();
    EXPECT_FALSE(f.kv->contains("huge"));
    // The store stays usable and crash-consistent after the rejection.
    ASSERT_TRUE(f.kv->submit(KvFixture::set("after", "ok")).ok());
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->contains("keep"));
    EXPECT_TRUE(f.kv->contains("after"));
    EXPECT_FALSE(f.kv->contains("huge"));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, OversizedBatchSplitsAcrossSegments) {
  // A group-commit burst whose combined record size (~3 MiB) exceeds a
  // whole 1 MiB segment (keys cycle over a small set so the checkpoint's
  // map snapshot still fits a segment). The sync thread must split the
  // batch into segment-sized chunks (rolling a checkpoint in between)
  // rather than writing it past the segment end; every txn commits and
  // survives a crash.
  KvFixture f(2 << 20);
  constexpr int kN = 30;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    for (int i = 0; i < kN; ++i) {
      f.kv->queue(KvFixture::set("k" + std::to_string(i % 7),
                                 pattern(100 << 10, static_cast<unsigned>(i))),
                  [&](Status st) {
                    EXPECT_TRUE(st.ok()) << st.to_string();
                    const std::lock_guard<std::mutex> lk(m);
                    ++done;
                    cv.notify_all();
                  });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kN; });
    lk.unlock();
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), 7u);
    // Last writes win: key k(29 % 7 = 1) carries the payload from i = 29.
    EXPECT_EQ(f.kv->get("k1")->to_string(), pattern(100 << 10, 29));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, CheckpointRollIoErrorLeaksNoSequenceNumbers) {
  // Fill segment 0 so the next fat txn forces a roll, then fail exactly the
  // roll's checkpoint write (the next device IO) with bdev.io_error. The
  // batch must fail with the device error, consume no WAL sequence numbers,
  // and the store must keep committing — both into the old segment's
  // remaining tail and through a later (successful) roll — with everything
  // replaying intact after a crash.
  KvFixture f(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(f.kv
                      ->submit(KvFixture::set("fill" + std::to_string(i % 5),
                                              pattern(100 << 10, static_cast<unsigned>(i))))
                      .ok());
    fault::FaultSpec once;
    once.force_next = 1;
    f.env.faults().set("bdev.io_error", once);
    const Status st = f.kv->submit(KvFixture::set("boom", pattern(100 << 10, 99)));
    EXPECT_EQ(st.code(), Errc::io_error) << st.to_string();
    EXPECT_FALSE(f.kv->contains("boom"));
    EXPECT_EQ(f.env.faults().fires("bdev.io_error"), 1u);
    // Small record: fits the old segment's tail (no roll needed).
    ASSERT_TRUE(f.kv->submit(KvFixture::set("small", "fits")).ok());
    // Fat records: force the roll again, which now succeeds.
    for (int i = 0; i < 4; ++i)
      ASSERT_TRUE(f.kv
                      ->submit(KvFixture::set("post" + std::to_string(i),
                                              pattern(100 << 10, static_cast<unsigned>(50 + i))))
                      .ok());
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_FALSE(f.kv->contains("boom"));
    EXPECT_TRUE(f.kv->contains("small"));
    for (int i = 0; i < 5; ++i)
      EXPECT_TRUE(f.kv->contains("fill" + std::to_string(i))) << i;
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(f.kv->contains("post" + std::to_string(i))) << i;
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, TornTrailingRecordsReplayCommittedPrefix) {
  // Property: tear the WAL tail at an arbitrary point (simulating a write
  // that was cut mid-record by power loss) and replay must stop cleanly at
  // the first bad CRC, restoring exactly a prefix of the committed txns.
  // Each txn i writes both "seq"=i and "k<i>", so the surviving "seq" value
  // identifies the prefix and every k<j> must exist iff j <= prefix.
  constexpr int kTxns = 12;
  for (const std::uint64_t tear_seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    KvFixture f(2 << 20);
    std::uint64_t wal_begin = 0;
    std::uint64_t wal_end = 0;
    run_sim(f.env, [&] {
      ASSERT_TRUE(f.kv->mkfs().ok());
      ASSERT_TRUE(f.kv->mount().ok());
      wal_begin = f.kv->append_offset();  // end of the mkfs checkpoint
      for (int i = 0; i < kTxns; ++i) {
        KvTxn t;
        t.sets["seq"] = BufferList::copy_of(std::to_string(i));
        t.sets["k" + std::to_string(i)] =
            BufferList::copy_of(pattern(4 << 10, static_cast<unsigned>(i)));
        ASSERT_TRUE(f.kv->submit(std::move(t)).ok());
      }
      wal_end = f.kv->append_offset();
      f.kv->crash();
    });
    ASSERT_GT(wal_end, wal_begin);
    std::mt19937_64 rng(tear_seed);
    const std::uint64_t tear = wal_begin + rng() % (wal_end - wal_begin);
    f.backing->write(tear, BufferList::copy_of(std::string(
                               static_cast<std::size_t>(wal_end - tear), '\xa5')));
    f.reopen(2 << 20);
    run_sim(f.env, [&] {
      ASSERT_TRUE(f.kv->mount().ok()) << "tear_seed " << tear_seed;
      int prefix = -1;
      if (const auto s = f.kv->get("seq")) prefix = std::stoi(s->to_string());
      // The tear landed inside some record, so at least one txn is gone.
      EXPECT_LT(prefix, kTxns - 1) << "tear_seed " << tear_seed;
      for (int i = 0; i < kTxns; ++i) {
        EXPECT_EQ(f.kv->contains("k" + std::to_string(i)), i <= prefix)
            << "tear_seed " << tear_seed << " txn " << i << " prefix " << prefix;
      }
      EXPECT_TRUE(f.kv->umount().ok());
    });
  }
}

TEST(KvStore, FreshObjectFloodChainsCheckpointAcrossSegments) {
  // Regression (overload collapse): a fresh-object small-write flood grows
  // the map monotonically — every record carries a NEW key. Pre-chaining,
  // the first roll whose snapshot left no journal room in one 1 MiB
  // segment wedged the store: the checkpoint itself still fit, but the
  // record that forced the roll was rejected with a fatal no_space, and so
  // was everything after it. With chained checkpoints the snapshot spills
  // into the second segment and the flood keeps committing well past one
  // segment's worth of live data.
  KvFixture f(2 << 20);
  constexpr int kKeys = 33;  // 33 x 40 KiB = 1.29 MiB live > one 1 MiB segment
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < kKeys; ++i) {
      const Status st = f.kv->submit(KvFixture::set(
          "obj" + std::to_string(i), pattern(40 << 10, static_cast<unsigned>(i))));
      ASSERT_TRUE(st.ok()) << "txn " << i << ": " << st.to_string();
    }
    EXPECT_GT(f.kv->map_bytes(), 1u << 20);  // live data exceeds one segment
    f.kv->crash();  // replay must reassemble the spanning chain + tail txns
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), static_cast<std::size_t>(kKeys));
    for (int i = 0; i < kKeys; ++i) {
      ASSERT_TRUE(f.kv->contains("obj" + std::to_string(i))) << i;
    }
    EXPECT_EQ(f.kv->get("obj32")->to_string(), pattern(40 << 10, 32));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, CheckpointBeyondChainedCapacityFailsWithNoSpace) {
  // The chained ceiling is still finite: ~1.875 MiB of snapshot for 1 MiB
  // segments (one full chunk + one chunk that keeps journal headroom).
  // Past it the roll must fail with a diagnostic no_space — naming the
  // chained capacity — while everything committed before stays durable.
  KvFixture f(2 << 20);
  // Enough keys to push the snapshot past the ceiling AND fill the journal
  // headroom left by the last successful roll, forcing the failing roll.
  constexpr int kKeys = 60;  // 60 x 40 KiB = 2.3 MiB live
  int first_fail = -1;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < kKeys && first_fail < 0; ++i) {
      const Status st = f.kv->submit(KvFixture::set(
          "obj" + std::to_string(i), pattern(40 << 10, static_cast<unsigned>(i))));
      if (!st.ok()) {
        EXPECT_EQ(st.code(), Errc::no_space) << st.to_string();
        EXPECT_NE(st.to_string().find("chained capacity"), std::string::npos)
            << st.to_string();
        first_fail = i;
      }
    }
    ASSERT_GE(first_fail, 0) << "flood never hit the chained ceiling";
    // Chaining bought more than one segment of live data before the wall.
    EXPECT_GT(f.kv->map_bytes(), 1u << 20);
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < first_fail; ++i) {
      EXPECT_TRUE(f.kv->contains("obj" + std::to_string(i))) << i;
    }
    EXPECT_FALSE(f.kv->contains("obj" + std::to_string(first_fail)));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, GroupCommitBatchesConcurrentWriters) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i) {
      f.kv->queue(KvFixture::set("k" + std::to_string(i), "v"), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kN; });
    EXPECT_EQ(f.kv->num_keys(), static_cast<std::size_t>(kN));
    EXPECT_EQ(f.kv->committed(), static_cast<std::uint64_t>(kN));
    lk.unlock();
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

}  // namespace
}  // namespace doceph::bluestore
