#include "bluestore/kv.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace doceph::bluestore {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

struct KvFixture {
  Env env;
  std::shared_ptr<DeviceBacking> backing = std::make_shared<DeviceBacking>();
  BlockDeviceConfig dev_cfg;
  std::unique_ptr<BlockDevice> dev;
  std::unique_ptr<KvStore> kv;

  explicit KvFixture(std::uint64_t wal_len = 8 << 20) {
    dev_cfg.size_bytes = 1 << 30;
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr);
  }

  /// Re-open the store over the same backing (remount or post-crash).
  void reopen(std::uint64_t wal_len = 8 << 20) {
    kv.reset();
    dev = std::make_unique<BlockDevice>(env, dev_cfg, backing);
    kv = std::make_unique<KvStore>(env, *dev, 4096, wal_len, nullptr);
  }

  static KvTxn set(const std::string& k, const std::string& v) {
    KvTxn t;
    t.sets[k] = BufferList::copy_of(v);
    return t;
  }
};

TEST(KvStore, MountWithoutMkfsFails) {
  KvFixture f;
  run_sim(f.env, [&] { EXPECT_EQ(f.kv->mount().code(), Errc::corrupt); });
}

TEST(KvStore, SetGetRemove) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->submit(KvFixture::set("alpha", "1")).ok());
    EXPECT_TRUE(f.kv->submit(KvFixture::set("beta", "2")).ok());
    ASSERT_TRUE(f.kv->get("alpha").has_value());
    EXPECT_EQ(f.kv->get("alpha")->to_string(), "1");
    EXPECT_FALSE(f.kv->get("gamma").has_value());

    KvTxn rm;
    rm.rms.push_back("alpha");
    EXPECT_TRUE(f.kv->submit(std::move(rm)).ok());
    EXPECT_FALSE(f.kv->contains("alpha"));
    EXPECT_TRUE(f.kv->contains("beta"));
    EXPECT_EQ(f.kv->num_keys(), 1u);
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, PrefixIteration) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (const char* k : {"O/1.0/a", "O/1.0/b", "O/1.1/c", "C/1.0"})
      ASSERT_TRUE(f.kv->submit(KvFixture::set(k, "x")).ok());
    std::vector<std::string> seen;
    f.kv->for_each_prefix("O/1.0/", [&](const std::string& k, const BufferList&) {
      seen.push_back(k);
    });
    EXPECT_EQ(seen, (std::vector<std::string>{"O/1.0/a", "O/1.0/b"}));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, RemountAfterCleanUmountRestoresState) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->submit(KvFixture::set("k", "committed")).ok());
    ASSERT_TRUE(f.kv->umount().ok());
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->get("k").has_value());
    EXPECT_EQ(f.kv->get("k")->to_string(), "committed");
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, CrashPreservesCommittedLosesQueued) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    // Committed synchronously: must survive.
    ASSERT_TRUE(f.kv->submit(KvFixture::set("durable", "yes")).ok());
  });
  // Queue (not waiting) then crash immediately: may be lost; callback must
  // still fire with an error or have committed — never hang.
  std::atomic<bool> cb_fired{false};
  run_sim(f.env, [&] {
    f.kv->queue(KvFixture::set("maybe", "lost"), [&](Status) { cb_fired.store(true); });
    f.kv->crash();
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_TRUE(f.kv->contains("durable"));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, ReplayAppliesInOrder) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < 50; ++i)
      ASSERT_TRUE(f.kv->submit(KvFixture::set("key", "v" + std::to_string(i))).ok());
    f.kv->crash();  // no checkpoint: forces full replay
  });
  f.reopen();
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    ASSERT_TRUE(f.kv->get("key").has_value());
    EXPECT_EQ(f.kv->get("key")->to_string(), "v49");
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, SegmentRollCheckpointsAndSurvives) {
  // Small WAL (2 MiB => 1 MiB segments) with fat values forces segment rolls.
  KvFixture f(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(f.kv
                      ->submit(KvFixture::set("big" + std::to_string(i % 7),
                                              pattern(100 << 10, static_cast<unsigned>(i))))
                      .ok());
    }
    f.kv->crash();
  });
  f.reopen(2 << 20);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mount().ok());
    EXPECT_EQ(f.kv->num_keys(), 7u);
    // Last writes win: key big(59%7=3) has the payload from i=59.
    EXPECT_EQ(f.kv->get("big3")->to_string(), pattern(100 << 10, 59));
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

TEST(KvStore, GroupCommitBatchesConcurrentWriters) {
  KvFixture f;
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.kv->mkfs().ok());
    ASSERT_TRUE(f.kv->mount().ok());
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i) {
      f.kv->queue(KvFixture::set("k" + std::to_string(i), "v"), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kN; });
    EXPECT_EQ(f.kv->num_keys(), static_cast<std::size_t>(kN));
    EXPECT_EQ(f.kv->committed(), static_cast<std::uint64_t>(kN));
    lk.unlock();
    EXPECT_TRUE(f.kv->umount().ok());
  });
}

}  // namespace
}  // namespace doceph::bluestore
