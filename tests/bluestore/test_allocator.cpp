#include "bluestore/allocator.h"

#include <gtest/gtest.h>

#include <random>

namespace doceph::bluestore {
namespace {

constexpr std::uint64_t kUnit = 4096;

TEST(ExtentAllocator, AllocateRoundsUpToUnit) {
  ExtentAllocator a(0, 1 << 20, kUnit);
  auto e = a.allocate(100);
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(e->size(), 1u);
  EXPECT_EQ((*e)[0].len, kUnit);
  EXPECT_EQ(a.free_bytes(), (1u << 20) - kUnit);
}

TEST(ExtentAllocator, ZeroLengthGetsOneUnit) {
  ExtentAllocator a(0, 1 << 20, kUnit);
  auto e = a.allocate(0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)[0].len, kUnit);
}

TEST(ExtentAllocator, SequentialAllocationsAreDisjoint) {
  ExtentAllocator a(1 << 20, 1 << 20, kUnit);
  auto e1 = a.allocate(8192);
  auto e2 = a.allocate(8192);
  ASSERT_TRUE(e1.ok() && e2.ok());
  const auto& x = (*e1)[0];
  const auto& y = (*e2)[0];
  EXPECT_GE(x.off, 1u << 20);
  EXPECT_TRUE(x.off + x.len <= y.off || y.off + y.len <= x.off);
}

TEST(ExtentAllocator, ExhaustionFails) {
  ExtentAllocator a(0, 16 * kUnit, kUnit);
  auto e = a.allocate(16 * kUnit);
  ASSERT_TRUE(e.ok());
  auto f = a.allocate(1);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), Errc::no_space);
  a.release(*e);
  EXPECT_TRUE(a.allocate(1).ok());
}

TEST(ExtentAllocator, FragmentedAllocationSpansExtents) {
  ExtentAllocator a(0, 8 * kUnit, kUnit);
  auto e1 = a.allocate(2 * kUnit);  // [0,2)
  auto e2 = a.allocate(2 * kUnit);  // [2,4)
  auto e3 = a.allocate(2 * kUnit);  // [4,6)
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  a.release(*e2);  // free hole [2,4); free space = hole + [6,8)
  auto big = a.allocate(4 * kUnit);
  ASSERT_TRUE(big.ok());
  EXPECT_GE(big->size(), 2u);  // must fragment
  std::uint64_t total = 0;
  for (const auto& e : *big) total += e.len;
  EXPECT_EQ(total, 4 * kUnit);
}

TEST(ExtentAllocator, PrefersSingleFit) {
  ExtentAllocator a(0, 16 * kUnit, kUnit);
  auto e1 = a.allocate(kUnit);
  auto e2 = a.allocate(kUnit);
  a.release(*e1);  // small hole at 0
  // 2-unit request should take the large tail, not fragment into the hole.
  auto e = a.allocate(2 * kUnit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), 1u);
  (void)e2;
}

TEST(ExtentAllocator, MarkUsedCarvesFreeSpace) {
  ExtentAllocator a(0, 1 << 20, kUnit);
  a.mark_used(0, 100);  // rounds to one unit
  EXPECT_EQ(a.free_bytes(), (1u << 20) - kUnit);
  auto e = a.allocate(kUnit);
  ASSERT_TRUE(e.ok());
  EXPECT_NE((*e)[0].off, 0u);
}

TEST(ExtentAllocator, ReleaseCoalesces) {
  ExtentAllocator a(0, 4 * kUnit, kUnit);
  auto e = a.allocate(4 * kUnit);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(a.free_bytes(), 0u);
  a.release(*e);
  EXPECT_EQ(a.fragments(), 1u);
  EXPECT_EQ(a.free_bytes(), 4 * kUnit);
}

TEST(ExtentAllocator, RandomizedAllocFreeConservesSpace) {
  constexpr std::uint64_t kSpace = 256 * kUnit;
  ExtentAllocator a(0, kSpace, kUnit);
  std::mt19937 rng(99);
  std::vector<std::vector<Extent>> live;
  std::uint64_t live_bytes = 0;

  for (int iter = 0; iter < 2000; ++iter) {
    if (live.empty() || rng() % 2 == 0) {
      const std::uint64_t want = (1 + rng() % 8) * kUnit;
      auto e = a.allocate(want);
      if (e.ok()) {
        std::uint64_t got = 0;
        for (const auto& x : *e) got += x.len;
        EXPECT_EQ(got, want);
        live.push_back(*e);
        live_bytes += want;
      } else {
        EXPECT_LT(a.free_bytes(), want);
      }
    } else {
      const std::size_t idx = rng() % live.size();
      std::uint64_t freed = 0;
      for (const auto& x : live[idx]) freed += x.len;
      a.release(live[idx]);
      live.erase(live.begin() + static_cast<long>(idx));
      live_bytes -= freed;
    }
    EXPECT_EQ(a.free_bytes() + live_bytes, kSpace);
  }
}

TEST(Extent, EncodeDecode) {
  const Extent e{12345, 67890};
  BufferList bl = encode_to_bl(e);
  Extent f;
  ASSERT_TRUE(decode_from_bl(f, bl));
  EXPECT_EQ(f, e);
}

}  // namespace
}  // namespace doceph::bluestore
