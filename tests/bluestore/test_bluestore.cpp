#include "bluestore/bluestore.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/fault.h"

namespace doceph::bluestore {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;
using os::Transaction;

const os::coll_t kColl{1, 0};
const os::ghobject_t kObj{1, "obj"};

BlueStoreConfig test_cfg() {
  BlueStoreConfig cfg;
  cfg.device.size_bytes = 2ull << 30;
  cfg.wal_len = 8 << 20;
  cfg.inline_threshold = 64 << 10;
  return cfg;
}

struct BsFixture {
  Env env;
  BlueStoreConfig cfg = test_cfg();
  std::shared_ptr<DeviceBacking> backing;
  std::unique_ptr<BlueStore> store;

  BsFixture() {
    store = std::make_unique<BlueStore>(env, nullptr, cfg);
    backing = store->backing();
  }

  void fresh_mount() {
    run_sim(env, [&] {
      ASSERT_TRUE(store->mkfs().ok());
      ASSERT_TRUE(store->mount().ok());
      Transaction t;
      t.create_collection(kColl);
      ASSERT_TRUE(commit(std::move(t)).ok());
    });
  }

  /// Synchronous commit from a sim thread.
  Status commit(Transaction t) {
    std::mutex m;
    CondVar cv(env.keeper());
    bool done = false;
    Status out;
    store->queue_transaction(std::move(t), [&](Status st) {
      const std::lock_guard<std::mutex> lk(m);
      out = st;
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
    return out;
  }

  void reopen_after(bool crash) {
    run_sim(env, [&] {
      if (crash) {
        store->simulate_crash();
      } else {
        ASSERT_TRUE(store->umount().ok());
      }
    });
    store = std::make_unique<BlueStore>(env, nullptr, cfg, backing);
    run_sim(env, [&] { ASSERT_TRUE(store->mount().ok()); });
  }
};

TEST(BlueStore, SmallObjectInlineRoundTrip) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of("tiny object"));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    auto r = f.store->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "tiny object");
    // Inline: no data-region device writes beyond the WAL.
    EXPECT_EQ(f.store->free_bytes(), f.store->free_bytes());
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, LargeObjectExtentRoundTrip) {
  BsFixture f;
  f.fresh_mount();
  const std::string big = pattern(3 << 20);
  run_sim(f.env, [&] {
    const std::uint64_t free0 = f.store->free_bytes();
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_LT(f.store->free_bytes(), free0);  // extents allocated
    auto r = f.store->read(kColl, kObj, 0, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), big);
    // Partial read from the middle.
    auto mid = f.store->read(kColl, kObj, 1 << 20, 4096);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid->to_string(), big.substr(1 << 20, 4096));
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, OverwriteReleasesOldExtents) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    const std::uint64_t free0 = f.store->free_bytes();
    for (int i = 0; i < 5; ++i) {
      Transaction t;
      t.write_full(kColl, kObj, BufferList::copy_of(pattern(1 << 20, static_cast<unsigned>(i))));
      ASSERT_TRUE(f.commit(std::move(t)).ok());
    }
    // COW: only the last version's extents remain allocated.
    EXPECT_EQ(f.store->free_bytes(), free0 - (1 << 20));
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), pattern(1 << 20, 4));
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, RemoveReleasesSpaceAndObject) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    const std::uint64_t free0 = f.store->free_bytes();
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(pattern(2 << 20)));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    Transaction rm;
    rm.remove(kColl, kObj);
    ASSERT_TRUE(f.commit(std::move(rm)).ok());
    EXPECT_FALSE(f.store->exists(kColl, kObj));
    EXPECT_EQ(f.store->free_bytes(), free0);
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0).status().code(), Errc::not_found);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, PartialWriteZeroTruncate) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of("0123456789"));
    ASSERT_TRUE(f.commit(std::move(t)).ok());

    Transaction t2;
    t2.write(kColl, kObj, 3, BufferList::copy_of("XYZ"));
    ASSERT_TRUE(f.commit(std::move(t2)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), "012XYZ6789");

    Transaction t3;
    t3.zero(kColl, kObj, 0, 2);
    ASSERT_TRUE(f.commit(std::move(t3)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 3)->to_string(), std::string("\0\0""2", 3));

    Transaction t4;
    t4.truncate(kColl, kObj, 4);
    ASSERT_TRUE(f.commit(std::move(t4)).ok());
    EXPECT_EQ(f.store->stat(kColl, kObj)->size, 4u);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, PartialWriteOnLargeObject) {
  BsFixture f;
  f.fresh_mount();
  const std::string big = pattern(1 << 20);
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    Transaction t2;
    t2.write(kColl, kObj, 512 << 10, BufferList::copy_of("PATCH"));
    ASSERT_TRUE(f.commit(std::move(t2)).ok());
    std::string expect = big;
    expect.replace(512 << 10, 5, "PATCH");
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), expect);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, OmapOps) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    Transaction t;
    t.touch(kColl, kObj);
    t.omap_set(kColl, kObj, {{"pg_log", BufferList::copy_of("entry1")}});
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    auto m = f.store->omap_get(kColl, kObj);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->at("pg_log").to_string(), "entry1");
    Transaction t2;
    t2.omap_rm_keys(kColl, kObj, {"pg_log"});
    ASSERT_TRUE(f.commit(std::move(t2)).ok());
    EXPECT_TRUE(f.store->omap_get(kColl, kObj)->empty());
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, ListObjectsAndCollections) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    Transaction t;
    t.create_collection({1, 1});
    t.touch(kColl, {1, "a"});
    t.touch(kColl, {1, "b"});
    t.touch({1, 1}, {1, "c"});
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    auto l = f.store->list_objects(kColl);
    ASSERT_TRUE(l.ok());
    EXPECT_EQ(l->size(), 2u);
    auto colls = f.store->list_collections();
    EXPECT_EQ(colls.size(), 2u);
    EXPECT_TRUE(f.store->collection_exists({1, 1}));
    EXPECT_FALSE(f.store->collection_exists({9, 9}));
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, WriteToMissingCollectionFails) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full({5, 5}, kObj, BufferList::copy_of("x"));
    EXPECT_EQ(f.commit(std::move(t)).code(), Errc::not_found);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, RemountRestoresEverything) {
  BsFixture f;
  f.fresh_mount();
  const std::string big = pattern(2 << 20);
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    t.write_full(kColl, {1, "small"}, BufferList::copy_of("inline"));
    t.omap_set(kColl, kObj, {{"meta", BufferList::copy_of("m")}});
    ASSERT_TRUE(f.commit(std::move(t)).ok());
  });
  f.reopen_after(/*crash=*/false);
  run_sim(f.env, [&] {
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
    EXPECT_EQ(f.store->read(kColl, {1, "small"}, 0, 0)->to_string(), "inline");
    EXPECT_EQ(f.store->omap_get(kColl, kObj)->at("meta").to_string(), "m");
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, CrashAfterCommitIsDurable) {
  BsFixture f;
  f.fresh_mount();
  const std::string big = pattern(1 << 20);
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(big));
    ASSERT_TRUE(f.commit(std::move(t)).ok());  // commit acked => durable
  });
  f.reopen_after(/*crash=*/true);
  run_sim(f.env, [&] {
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), big);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, CrashMidFlightLeavesOldOrNewNeverGarbage) {
  BsFixture f;
  f.fresh_mount();
  const std::string v1 = pattern(1 << 20, 1);
  const std::string v2 = pattern(1 << 20, 2);
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(v1));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    // Queue v2 but crash before its commit callback.
    Transaction t2;
    t2.write_full(kColl, kObj, BufferList::copy_of(v2));
    f.store->queue_transaction(std::move(t2), [](Status) {});
    f.store->simulate_crash();
  });
  f.store = std::make_unique<BlueStore>(f.env, nullptr, f.cfg, f.backing);
  run_sim(f.env, [&] {
    ASSERT_TRUE(f.store->mount().ok());
    const std::string got = f.store->read(kColl, kObj, 0, 0)->to_string();
    EXPECT_TRUE(got == v1 || got == v2) << "object is neither old nor new";
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, CrashRemountReplaysUnderDeviceFaults) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    for (int i = 0; i < 6; ++i) {
      Transaction t;
      t.write_full(kColl, {1, "o" + std::to_string(i)},
                   BufferList::copy_of(pattern(16 << 10, static_cast<unsigned>(i))));
      ASSERT_TRUE(f.commit(std::move(t)).ok());
    }
    f.store->simulate_crash();
  });
  f.store = std::make_unique<BlueStore>(f.env, nullptr, f.cfg, f.backing);

  // An io_error on the remount's first read (the checkpoint probe) fails
  // the mount cleanly; the store stays unmounted and retryable.
  fault::FaultSpec once;
  once.force_next = 1;
  f.env.faults().set("bdev.io_error", once);
  run_sim(f.env, [&] {
    EXPECT_FALSE(f.store->mount().ok());
    EXPECT_FALSE(f.store->is_mounted());
  });
  EXPECT_EQ(f.env.faults().fires("bdev.io_error"), 1u);

  // Retried under standing latency spikes: every replay read runs 5 ms
  // slow, but the mount converges and all committed objects come back.
  fault::FaultSpec spike;
  spike.fire_at_time = 0;
  spike.delay_ns = 5'000'000;
  f.env.faults().set("bdev.latency_spike", spike);
  run_sim(f.env, [&] {
    const Time t0 = f.env.now();
    ASSERT_TRUE(f.store->mount().ok());
    EXPECT_TRUE(f.store->is_mounted());
    EXPECT_GE(f.env.now() - t0, 5'000'000);  // at least one spiked read
    for (int i = 0; i < 6; ++i) {
      auto r = f.store->read(kColl, {1, "o" + std::to_string(i)}, 0, 0);
      ASSERT_TRUE(r.ok()) << "o" << i << ": " << r.status().to_string();
      EXPECT_EQ(r->to_string(), pattern(16 << 10, static_cast<unsigned>(i)));
    }
    ASSERT_TRUE(f.store->umount().ok());
  });
  EXPECT_GE(f.env.faults().fires("bdev.latency_spike"), 2u);
  f.env.faults().clear_all();
}

TEST(BlueStore, AllocatorRebuiltOnMount) {
  BsFixture f;
  f.fresh_mount();
  std::uint64_t free_after_write = 0;
  run_sim(f.env, [&] {
    Transaction t;
    t.write_full(kColl, kObj, BufferList::copy_of(pattern(4 << 20)));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    free_after_write = f.store->free_bytes();
  });
  f.reopen_after(/*crash=*/false);
  run_sim(f.env, [&] {
    EXPECT_EQ(f.store->free_bytes(), free_after_write);
    // New allocations must not clobber the existing object.
    Transaction t;
    t.write_full(kColl, {1, "other"}, BufferList::copy_of(pattern(4 << 20, 9)));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), pattern(4 << 20));
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, ConcurrentWritersToDistinctObjects) {
  BsFixture f;
  f.fresh_mount();
  constexpr int kWriters = 8;
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    for (int i = 0; i < kWriters; ++i) {
      Transaction t;
      t.write_full(kColl, {1, "obj" + std::to_string(i)},
                   BufferList::copy_of(pattern(256 << 10, static_cast<unsigned>(i))));
      f.store->queue_transaction(std::move(t), [&](Status st) {
        ASSERT_TRUE(st.ok());
        const std::lock_guard<std::mutex> lk(m);
        ++done;
        cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kWriters; });
    lk.unlock();
    for (int i = 0; i < kWriters; ++i) {
      EXPECT_EQ(f.store->read(kColl, {1, "obj" + std::to_string(i)}, 0, 0)->to_string(),
                pattern(256 << 10, static_cast<unsigned>(i)));
    }
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, SameObjectWritesCommitInOrder) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    std::mutex m;
    CondVar cv(f.env.keeper());
    int done = 0;
    // Two back-to-back full writes; the second (small, inline) must not
    // overtake the first (large, aio-bound).
    Transaction big;
    big.write_full(kColl, kObj, BufferList::copy_of(pattern(8 << 20, 1)));
    Transaction small;
    small.write_full(kColl, kObj, BufferList::copy_of("final"));
    auto bump = [&](Status st) {
      ASSERT_TRUE(st.ok());
      const std::lock_guard<std::mutex> lk(m);
      ++done;
      cv.notify_all();
    };
    f.store->queue_transaction(std::move(big), bump);
    f.store->queue_transaction(std::move(small), bump);
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == 2; });
    lk.unlock();
    EXPECT_EQ(f.store->read(kColl, kObj, 0, 0)->to_string(), "final");
    ASSERT_TRUE(f.store->umount().ok());
  });
}

TEST(BlueStore, RemoveCollectionReclaimsObjects) {
  BsFixture f;
  f.fresh_mount();
  run_sim(f.env, [&] {
    const std::uint64_t free0 = f.store->free_bytes();
    Transaction t;
    t.write_full(kColl, {1, "x"}, BufferList::copy_of(pattern(1 << 20)));
    t.write_full(kColl, {1, "y"}, BufferList::copy_of(pattern(1 << 20)));
    ASSERT_TRUE(f.commit(std::move(t)).ok());
    Transaction rm;
    rm.remove_collection(kColl);
    ASSERT_TRUE(f.commit(std::move(rm)).ok());
    EXPECT_FALSE(f.store->collection_exists(kColl));
    EXPECT_EQ(f.store->free_bytes(), free0);
    ASSERT_TRUE(f.store->umount().ok());
  });
}

}  // namespace
}  // namespace doceph::bluestore
