#include "bluestore/block_device.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace doceph::bluestore {
namespace {

using namespace doceph::sim;
using doceph::testing::pattern;
using doceph::testing::run_sim;

BlockDeviceConfig small_cfg() {
  BlockDeviceConfig cfg;
  cfg.size_bytes = 1 << 30;
  cfg.write_bw = 500e6;
  cfg.read_bw = 500e6;
  cfg.write_latency = 50_us;
  cfg.read_latency = 80_us;
  return cfg;
}

TEST(BlockDevice, WriteThenReadBack) {
  Env env;
  BlockDevice dev(env, small_cfg());
  const std::string data = pattern(128 << 10);
  run_sim(env, [&] {
    ASSERT_TRUE(dev.write(4096, BufferList::copy_of(data)).ok());
    auto r = dev.read(4096, data.size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), data);
  });
  EXPECT_EQ(dev.bytes_written(), data.size());
  EXPECT_EQ(dev.bytes_read(), data.size());
}

TEST(BlockDevice, UnwrittenRangesReadZero) {
  Env env;
  BlockDevice dev(env, small_cfg());
  run_sim(env, [&] {
    auto r = dev.read(1 << 20, 64);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), std::string(64, '\0'));
  });
}

TEST(BlockDevice, WriteTimingMatchesModel) {
  Env env;
  BlockDevice dev(env, small_cfg());
  run_sim(env, [&] {
    const Time t0 = env.now();
    ASSERT_TRUE(dev.write(0, BufferList::copy_of(pattern(1 << 20))).ok());
    const Duration took = env.now() - t0;
    // 1 MiB at 500 MB/s ≈ 2.097 ms + 50 us latency.
    const Duration expect = transfer_time(1 << 20, 500e6) + 50_us;
    EXPECT_EQ(took, expect);
  });
}

TEST(BlockDevice, ConcurrentWritesSerializeOnChannel) {
  Env env;
  BlockDevice dev(env, small_cfg());
  run_sim(env, [&] {
    std::mutex m;
    CondVar cv(env.keeper());
    int done = 0;
    Time last = 0;
    for (int i = 0; i < 4; ++i) {
      dev.aio_write(static_cast<std::uint64_t>(i) << 21,
                    BufferList::copy_of(pattern(1 << 20)), [&](Status st) {
                      ASSERT_TRUE(st.ok());
                      const std::lock_guard<std::mutex> lk(m);
                      ++done;
                      last = env.now();
                      cv.notify_all();
                    });
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == 4; });
    // Four 1 MiB writes serialized: >= 4 * bytes/bw.
    EXPECT_GE(last, 4 * transfer_time(1 << 20, 500e6));
  });
}

TEST(BlockDevice, OutOfRangeRejected) {
  Env env;
  BlockDevice dev(env, small_cfg());
  run_sim(env, [&] {
    EXPECT_EQ(dev.write(dev.size() - 10, BufferList::copy_of(pattern(100))).code(),
              Errc::range_error);
    auto r = dev.read(dev.size(), 1);
    EXPECT_EQ(r.status().code(), Errc::range_error);
  });
}

TEST(BlockDevice, BackingSurvivesDeviceRecreation) {
  Env env;
  auto cfg = small_cfg();
  std::shared_ptr<DeviceBacking> backing;
  {
    BlockDevice dev(env, cfg);
    backing = dev.backing();
    run_sim(env, [&] { ASSERT_TRUE(dev.write(0, BufferList::copy_of("persist")).ok()); });
  }
  BlockDevice dev2(env, cfg, backing);
  run_sim(env, [&] {
    auto r = dev2.read(0, 7);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_string(), "persist");
  });
}

TEST(BlockDevice, RetentionOffDiscardsDataRegionOnly) {
  Env env;
  auto cfg = small_cfg();
  cfg.retain_data = false;
  cfg.retain_below = 1 << 20;
  BlockDevice dev(env, cfg);
  run_sim(env, [&] {
    ASSERT_TRUE(dev.write(0, BufferList::copy_of("keep-me")).ok());
    ASSERT_TRUE(dev.write(2 << 20, BufferList::copy_of("drop-me")).ok());
    EXPECT_EQ(dev.read(0, 7)->to_string(), "keep-me");
    EXPECT_EQ(dev.read(2 << 20, 7)->to_string(), std::string(7, '\0'));
  });
}

TEST(BlockDevice, FlushCompletesAfterPriorWrites) {
  Env env;
  BlockDevice dev(env, small_cfg());
  run_sim(env, [&] {
    std::mutex m;
    CondVar cv(env.keeper());
    bool write_done = false, flush_done = false;
    dev.aio_write(0, BufferList::copy_of(pattern(4 << 20)), [&](Status) {
      const std::lock_guard<std::mutex> lk(m);
      write_done = true;
      cv.notify_all();
    });
    dev.flush([&](Status) {
      const std::lock_guard<std::mutex> lk(m);
      // Channel drained => the write's channel occupancy has passed.
      flush_done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return write_done && flush_done; });
    SUCCEED();
  });
}

TEST(BlockDevice, SparseBackingChunkBoundaries) {
  Env env;
  BlockDevice dev(env, small_cfg());
  // Straddle a 256 KiB chunk boundary.
  const std::uint64_t off = DeviceBacking::kChunk - 100;
  const std::string data = pattern(300);
  run_sim(env, [&] {
    ASSERT_TRUE(dev.write(off, BufferList::copy_of(data)).ok());
    EXPECT_EQ(dev.read(off, 300)->to_string(), data);
    // Bytes around the write are still zero.
    EXPECT_EQ(dev.read(off - 10, 10)->to_string(), std::string(10, '\0'));
    EXPECT_EQ(dev.read(off + 300, 10)->to_string(), std::string(10, '\0'));
  });
}

}  // namespace
}  // namespace doceph::bluestore
