#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace doceph {
namespace {

TEST(Histogram, EmptySnapshot) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 100u);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 40u);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

TEST(Histogram, QuantilesApproximate) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto s = h.snapshot();
  // Log buckets give coarse but bounded estimates: within a factor of ~1.6.
  const double p50 = s.quantile(0.5);
  EXPECT_GT(p50, 300.0);
  EXPECT_LT(p50, 800.0);
  const double p99 = s.quantile(0.99);
  EXPECT_GT(p99, 700.0);
  EXPECT_LE(p99, 1100.0);
  EXPECT_LE(s.quantile(1.0), static_cast<double>(s.max) + 1);
}

TEST(Histogram, ZeroAndOneAreExact) {
  Histogram h;
  h.record(0);
  h.record(0);
  h.record(1);
  const auto s = h.snapshot();
  EXPECT_LT(s.quantile(0.3), 0.5);
  EXPECT_LE(s.quantile(0.99), 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  h.record(7);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 7u);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.record(1);
  a.record(100);
  b.record(50);
  a.merge(b);
  const auto s = a.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 151u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
}

TEST(Histogram, MergeIntoEmptyTakesMin) {
  Histogram a, b;
  b.record(9);
  a.merge(b);
  EXPECT_EQ(a.snapshot().min, 9u);
}

TEST(Histogram, BucketBoundsMonotonic) {
  std::uint64_t prev = 0;
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    const auto ub = Histogram::bucket_upper_bound(i);
    EXPECT_GT(ub, prev) << "bucket " << i;
    prev = ub;
  }
}

TEST(Histogram, ConcurrentRecording) {
  Histogram h;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kPer = 10000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPer; ++i) h.record(static_cast<std::uint64_t>(i));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads * kPer));
}

TEST(Histogram, VeryLargeValues) {
  Histogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, ~0ull);
  EXPECT_GT(s.quantile(0.9), 0.0);
}

}  // namespace
}  // namespace doceph
