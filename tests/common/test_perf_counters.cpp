#include "common/perf_counters.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"

namespace doceph::perf {
namespace {

enum {
  l_test_first = 1000,
  l_test_ops,
  l_test_gauge,
  l_test_lat,
  l_test_last,
};

PerfCountersRef make_block(const char* name = "testblock") {
  return Builder(name, l_test_first, l_test_last)
      .add_counter(l_test_ops, "ops")
      .add_gauge(l_test_gauge, "depth")
      .add_histogram(l_test_lat, "lat")
      .create();
}

TEST(PerfCounters, RegistrationAndBasicOps) {
  auto c = make_block();
  EXPECT_EQ(c->name(), "testblock");
  EXPECT_EQ(c->get(l_test_ops), 0u);

  c->inc(l_test_ops);
  c->inc(l_test_ops, 4);
  EXPECT_EQ(c->get(l_test_ops), 5u);

  c->set(l_test_gauge, 17);
  EXPECT_EQ(c->get(l_test_gauge), 17u);
  c->dec(l_test_gauge, 2);
  EXPECT_EQ(c->get(l_test_gauge), 15u);
}

TEST(PerfCounters, HistogramMetric) {
  auto c = make_block();
  for (std::uint64_t v : {100u, 200u, 300u}) c->rec(l_test_lat, v);
  const auto s = c->hist(l_test_lat);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 600u);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.max, 300u);
  // rec() on a scalar metric is a no-op, not a crash.
  c->rec(l_test_ops, 42);
  EXPECT_EQ(c->hist(l_test_ops).count, 0u);
}

TEST(PerfCounters, OutOfRangeIndexHitsSink) {
  auto c = make_block();
  c->inc(l_test_last + 100);
  c->inc(l_test_first - 5);
  // Declared metrics are unaffected by stray indices.
  EXPECT_EQ(c->get(l_test_ops), 0u);
}

TEST(PerfCounters, ResetZeroesEverything) {
  auto c = make_block();
  c->inc(l_test_ops, 9);
  c->set(l_test_gauge, 3);
  c->rec(l_test_lat, 50);
  c->reset();
  EXPECT_EQ(c->get(l_test_ops), 0u);
  EXPECT_EQ(c->get(l_test_gauge), 0u);
  EXPECT_EQ(c->hist(l_test_lat).count, 0u);
}

TEST(PerfCounters, ConcurrentIncrements) {
  auto c = make_block();
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    ts.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) c->inc(l_test_ops);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c->get(l_test_ops), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(PerfCounters, DumpEmitsValidBlock) {
  auto c = make_block();
  c->inc(l_test_ops, 2);
  c->rec(l_test_lat, 10);
  JsonWriter w;
  w.begin_object();
  c->dump(w);
  w.end_object();
  const std::string& out = w.str();
  EXPECT_NE(out.find("\"testblock\""), std::string::npos);
  EXPECT_NE(out.find("\"ops\":2"), std::string::npos);
  EXPECT_NE(out.find("\"lat\""), std::string::npos);
}

TEST(Collection, AddRemoveDump) {
  Collection coll;
  auto a = make_block("block_a");
  auto b = make_block("block_b");
  coll.add(a);
  coll.add(b);
  a->inc(l_test_ops, 7);

  std::string out = coll.dump_json();
  EXPECT_NE(out.find("\"block_a\""), std::string::npos);
  EXPECT_NE(out.find("\"block_b\""), std::string::npos);
  EXPECT_NE(out.find("\"ops\":7"), std::string::npos);

  coll.remove("block_a");
  out = coll.dump_json();
  EXPECT_EQ(out.find("\"block_a\""), std::string::npos);
  EXPECT_NE(out.find("\"block_b\""), std::string::npos);
}

TEST(Collection, ResetAllSpansBlocks) {
  Collection coll;
  auto a = make_block("block_a");
  auto b = make_block("block_b");
  coll.add(a);
  coll.add(b);
  a->inc(l_test_ops, 3);
  b->rec(l_test_lat, 99);
  coll.reset_all();
  EXPECT_EQ(a->get(l_test_ops), 0u);
  EXPECT_EQ(b->hist(l_test_lat).count, 0u);
}

}  // namespace
}  // namespace doceph::perf
