#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/histogram.h"

namespace doceph::trace {
namespace {

TEST(TraceContext, EncodeDecodeRoundTrip) {
  TraceContext in;
  in.trace_id = 0x0123456789abcdefULL;
  in.span_id = 0xfedcba9876543210ULL;
  in.flags = TraceContext::kSampled;

  BufferList bl;
  in.encode(bl);
  EXPECT_EQ(bl.length(), TraceContext::kWireSize);

  TraceContext out;
  BufferList::Cursor cur(bl);
  ASSERT_TRUE(out.decode(cur));
  EXPECT_EQ(out, in);
  EXPECT_TRUE(out.sampled());
}

TEST(TraceContext, DecodeFailsOnTruncation) {
  TraceContext in;
  in.trace_id = 7;
  BufferList bl;
  in.encode(bl);
  for (std::size_t cut = 0; cut < TraceContext::kWireSize; ++cut) {
    BufferList shorter = bl.substr(0, cut);
    TraceContext out;
    BufferList::Cursor cur(shorter);
    EXPECT_FALSE(out.decode(cur)) << "decoded from " << cut << " bytes";
  }
}

TEST(TraceContext, UnsampledContextIsInert) {
  const TraceContext ctx;  // zero
  EXPECT_FALSE(ctx.valid());
  EXPECT_FALSE(ctx.sampled());
  Tracer tracer(1);
  auto sp = tracer.span("client.op", "client.0", ctx, 100);
  EXPECT_FALSE(sp.active());
  sp.end(200);
  EXPECT_TRUE(tracer.completed().empty());
}

TEST(Tracer, SamplingIsDeterministicUnderFixedSeed) {
  Tracer a(42), b(42), c(43);
  a.set_sample_every(4);
  b.set_sample_every(4);
  c.set_sample_every(4);
  int sampled = 0;
  for (std::uint64_t key = 0; key < 256; ++key) {
    const TraceContext ca = a.root_context(key);
    const TraceContext cb = b.root_context(key);
    EXPECT_EQ(ca, cb) << "same seed, same key, different context (key " << key << ")";
    if (ca.sampled()) ++sampled;
    (void)c.root_context(key);  // different seed: only determinism matters
  }
  // ~1 in 4 of 256 keys; the hash is uniform enough that the count cannot
  // collapse to the degenerate extremes.
  EXPECT_GT(sampled, 16);
  EXPECT_LT(sampled, 192);

  a.set_sample_every(0);
  EXPECT_FALSE(a.root_context(1).valid());
  a.set_sample_every(1);
  for (std::uint64_t key = 0; key < 16; ++key)
    EXPECT_TRUE(a.root_context(key).sampled());
}

TEST(Tracer, ChildSpansParentUnderTheGivenContext) {
  Tracer tracer(7);
  tracer.set_sample_every(1);
  const TraceContext root = tracer.root_context(99);
  ASSERT_TRUE(root.sampled());

  auto parent = tracer.span("client.op", "client.0", root, 1000);
  ASSERT_TRUE(parent.active());
  const TraceContext pctx = parent.context();
  EXPECT_EQ(pctx.trace_id, root.trace_id);
  EXPECT_NE(pctx.span_id, root.span_id);

  const TraceContext child =
      tracer.record_span("osd.op", "osd.0", pctx, 1100, 1900);
  EXPECT_EQ(child.trace_id, root.trace_id);
  parent.end(2000);

  const auto spans = tracer.completed();
  ASSERT_EQ(spans.size(), 2u);
  // Canonical order sorts by start: client.op (1000) then osd.op (1100).
  EXPECT_EQ(spans[0].name, "client.op");
  EXPECT_EQ(spans[0].parent_id, root.span_id);
  EXPECT_EQ(spans[1].name, "osd.op");
  EXPECT_EQ(spans[1].parent_id, pctx.span_id);
  EXPECT_EQ(spans[1].end, 1900);
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDrops) {
  Tracer tracer(5);
  tracer.set_sample_every(1);
  tracer.set_ring_capacity(8);
  const TraceContext root = tracer.root_context(1);
  for (int i = 0; i < 20; ++i)
    (void)tracer.record_span("osd.op", "osd.0", root, 100 * i, 100 * i + 50);
  const auto spans = tracer.completed();
  EXPECT_EQ(spans.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Flight-recorder semantics: the survivors are the most recent pushes.
  for (const auto& s : spans) EXPECT_GE(s.start, 100 * 12);
}

TEST(Tracer, ResetClearsCompletedButKeepsOpenSpans) {
  Tracer tracer(3);
  tracer.set_sample_every(1);
  const TraceContext root = tracer.root_context(1);
  (void)tracer.record_span("osd.op", "osd.0", root, 0, 10);
  auto open = tracer.span("client.op", "client.0", root, 5);
  ASSERT_EQ(tracer.completed().size(), 1u);

  tracer.reset();
  EXPECT_TRUE(tracer.completed().empty());
  ASSERT_EQ(tracer.open_spans().size(), 1u);
  EXPECT_EQ(tracer.open_spans()[0].name, "client.op");

  open.end(50);
  ASSERT_EQ(tracer.completed().size(), 1u);
  EXPECT_EQ(tracer.completed()[0].end, 50);
}

TEST(Tracer, DumpIsByteIdenticalRegardlessOfRecordingOrder) {
  const auto record = [](Tracer& t, bool reversed) {
    t.set_sample_every(1);
    const TraceContext root = t.root_context(11);
    std::vector<int> order{0, 1, 2, 3};
    if (reversed) order = {3, 2, 1, 0};
    for (const int i : order) {
      (void)t.record_span("osd.op", "osd." + std::to_string(i % 2), root,
                          100 * i, 100 * i + 40);
    }
  };
  Tracer a(42), b(42);
  record(a, false);
  record(b, true);
  const std::string da = a.dump_chrome_json();
  EXPECT_EQ(da, b.dump_chrome_json());
  EXPECT_NE(da.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(da.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(da.find("\"osd.0\""), std::string::npos);
}

TEST(Tracer, DomainFilterScopesDumps) {
  Tracer tracer(9);
  tracer.set_sample_every(1);
  const TraceContext root = tracer.root_context(2);
  (void)tracer.record_span("osd.op", "osd.0", root, 0, 10);
  (void)tracer.record_span("dpu.write", "dpu.dpu-0", root, 0, 10);
  EXPECT_EQ(tracer.completed("osd").size(), 1u);
  EXPECT_EQ(tracer.completed("dpu").size(), 1u);
  EXPECT_EQ(tracer.completed().size(), 2u);
  EXPECT_EQ(tracer.dump_chrome_json("dpu").find("osd.op"), std::string::npos);
}

TEST(Tracer, FlightSnapshotCapturesPartialSpansAndFirings) {
  Tracer tracer(17);
  tracer.set_sample_every(1);
  const TraceContext root = tracer.root_context(4);
  (void)tracer.record_span("osd.op", "osd.0", root, 0, 10);
  auto open = tracer.span("client.op", "client.0", root, 5);

  tracer.flight_snapshot("osd.0.hard_crash", {"bdev.write_error@osd.0#0"});
  ASSERT_EQ(tracer.flight_count(), 1u);
  const std::string j = tracer.last_flight_json();
  EXPECT_NE(j.find("\"reason\":\"osd.0.hard_crash\""), std::string::npos);
  EXPECT_NE(j.find("\"client.op\""), std::string::npos);
  EXPECT_NE(j.find("\"partial\":true"), std::string::npos);
  EXPECT_NE(j.find("\"osd.op\""), std::string::npos);
  EXPECT_NE(j.find("bdev.write_error@osd.0#0"), std::string::npos);
  open.end(10);
}

// Regression: trace JSON and Histogram JSON share the common JsonWriter, so
// a hostile name (quotes, backslashes) must come out escaped, not truncated
// or syntax-breaking. Span names in product code are registered literals —
// this guards the writer layer itself.
TEST(Tracer, JsonEscapesHostileSpanNames) {
  Tracer tracer(21);
  tracer.set_sample_every(1);
  const TraceContext root = tracer.root_context(6);
  const std::string evil = "evil.\"quote\\name\"";
  (void)tracer.record_span(evil, "osd.0", root, 0, 10);
  const std::string j = tracer.dump_chrome_json();
  EXPECT_NE(j.find("evil.\\\"quote\\\\name\\\""), std::string::npos);
  EXPECT_EQ(j.find("\"evil.\"quote"), std::string::npos);

  Histogram h;
  h.record(42);
  const std::string hj = h.snapshot().to_json();
  EXPECT_NE(hj.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace doceph::trace
